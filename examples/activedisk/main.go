// Activedisk: Section 6's Active Disks — the frequent-sets kernel
// executes on the drives, so only count vectors cross the network.
//
// The example distributes a transaction dataset across four drives,
// runs the same pass-1 counting both ways — shipping the data to the
// client versus shipping the code to the drives — verifies the results
// agree, and reports how many bytes each approach moved.
//
// Run with: go run ./examples/activedisk
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"
	"time"

	"nasd/internal/active"
	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/mining"
	"nasd/internal/rpc"
)

const (
	nDrives = 4
	catalog = 300
	perMB   = 8
)

func main() {
	ctx := context.Background()
	var targets []active.Target
	var clis []*client.Drive
	var shares [][]byte
	want := make([]uint32, catalog)

	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 32768)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			log.Fatal(err)
		}
		active.Register(drv) // install the on-drive kernel
		if err := drv.Store().CreatePartition(1, 0); err != nil {
			log.Fatal(err)
		}
		if err := drv.Keys().AddPartition(1); err != nil {
			log.Fatal(err)
		}

		// Each drive holds its share of the transactions.
		share := mining.Generate(mining.GenConfig{
			CatalogSize: catalog, MeanItems: 8,
			TotalBytes: perMB << 20, Seed: int64(100 + i),
		})
		shares = append(shares, share)
		mining.CountItems(share, want)
		obj, err := drv.Store().Create(1)
		if err != nil {
			log.Fatal(err)
		}
		if err := drv.Store().Write(1, obj, 0, share); err != nil {
			log.Fatal(err)
		}

		l := rpc.NewInProcListener(fmt.Sprintf("drive%d", i))
		srv := drv.Serve(l)
		defer srv.Close()
		conn, err := l.Dial()
		if err != nil {
			log.Fatal(err)
		}
		cli := client.New(conn, uint64(1+i), uint64(50+i))
		clis = append(clis, cli)

		kid, key, err := drv.Keys().CurrentWorkingKey(1)
		if err != nil {
			log.Fatal(err)
		}
		cap := capability.Mint(capability.Public{
			DriveID: uint64(1 + i), Partition: 1, Object: obj, ObjVer: 1,
			Rights: capability.Read | capability.GetAttr,
			Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
		}, key)
		targets = append(targets, active.Target{Drive: cli, Cap: cap, Partition: 1, Object: obj})
	}
	total := nDrives * perMB << 20
	fmt.Printf("%d drives, %d MB of transactions total\n", nDrives, total>>20)

	// Conventional way: pull every byte to the client and count there.
	start := time.Now()
	clientCounts := make([]uint32, catalog)
	var moved int64
	for i, tgt := range targets {
		for off := uint64(0); off < uint64(len(shares[i])); off += mining.ChunkSize {
			n := mining.ChunkSize
			if off+uint64(n) > uint64(len(shares[i])) {
				n = int(uint64(len(shares[i])) - off)
			}
			chunk, err := clis[i].ReadPipelined(ctx, &tgt.Cap, 1, tgt.Object, off, n)
			if err != nil {
				log.Fatal(err)
			}
			moved += int64(len(chunk))
			mining.CountItems(chunk, clientCounts)
		}
	}
	fmt.Printf("client-side scan: %d MB crossed the network in %v\n", moved>>20, time.Since(start).Round(time.Millisecond))

	// Active Disks way: ship the kernel, pull only count vectors.
	start = time.Now()
	driveCounts, err := active.Scan(ctx, targets, catalog)
	if err != nil {
		log.Fatal(err)
	}
	resultBytes := nDrives * catalog * 4
	fmt.Printf("active-disk scan: %d KB crossed the network in %v (%.0fx reduction)\n",
		resultBytes>>10, time.Since(start).Round(time.Millisecond),
		float64(moved)/float64(resultBytes))

	if !reflect.DeepEqual(clientCounts, driveCounts) || !reflect.DeepEqual(driveCounts, want) {
		log.Fatal("count mismatch between client-side and on-drive scans")
	}
	fmt.Println("counts agree; active disk example complete")
}
