// Quickstart: a complete NASD session in one process.
//
// It walks the architecture end to end: format a drive, establish the
// shared master key, create a partition, mint capabilities the way a
// file manager would, and then move data directly between "client" and
// "drive" with the file manager nowhere in the data path. Finally it
// demonstrates the two revocation mechanisms (version bump and working
// key rotation).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
)

func main() {
	ctx := context.Background()

	// --- Drive side -----------------------------------------------------
	// A NASD drive is an object store plus a key hierarchy behind an
	// RPC interface. The master key is shared with the file manager
	// out of band; nothing else is.
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 16384) // 64 MB
	drv, err := drive.NewFormat(dev, drive.Config{ID: 42, Master: master, Secure: true})
	if err != nil {
		log.Fatal(err)
	}
	listener := rpc.NewInProcListener("drive42")
	srv := drv.Serve(listener)
	defer srv.Close()
	fmt.Println("drive 42 up:", listener.Addr())

	// --- File manager side ----------------------------------------------
	// The file manager derives the same key hierarchy from the shared
	// master key, so it can mint capabilities the drive will verify
	// without any per-capability state exchange.
	fmKeys := crypt.NewHierarchy(master)

	adminConn, err := listener.Dial()
	if err != nil {
		log.Fatal(err)
	}
	admin := client.New(adminConn, 42, 1)
	defer admin.Close()
	if err := admin.CreatePartition(ctx, crypt.KeyID{Type: crypt.MasterKey}, master, 1, 0); err != nil {
		log.Fatal(err)
	}
	if err := fmKeys.AddPartition(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition 1 created; file manager holds matching keys")

	mint := func(obj, ver uint64, rights capability.Rights) capability.Capability {
		kid, key, err := fmKeys.CurrentWorkingKey(1)
		if err != nil {
			log.Fatal(err)
		}
		return capability.Mint(capability.Public{
			DriveID: 42, Partition: 1, Object: obj, ObjVer: ver,
			Rights: rights, Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
		}, key)
	}

	// --- Client side ------------------------------------------------------
	// The client receives capabilities from the file manager and then
	// talks to the drive directly: asynchronous oversight.
	clientConn, err := listener.Dial()
	if err != nil {
		log.Fatal(err)
	}
	cli := client.New(clientConn, 42, 2)
	defer cli.Close()

	createCap := mint(0, 0, capability.CreateObj)
	obj, err := cli.Create(ctx, &createCap, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("created object", obj)

	rw := mint(obj, 1, capability.Read|capability.Write|capability.GetAttr)
	payload := []byte("data moves drive<->client; the file manager only grants rights")
	if err := cli.Write(ctx, &rw, 1, obj, 0, payload); err != nil {
		log.Fatal(err)
	}
	got, err := cli.Read(ctx, &rw, 1, obj, 0, len(payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", got)

	attrs, err := cli.GetAttr(ctx, &rw, 1, obj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attributes: size=%d version=%d\n", attrs.Size, attrs.Version)

	// --- Revocation 1: version bump ---------------------------------------
	// The file manager invalidates every outstanding capability for the
	// object by changing its logical version number.
	fmCap := mint(obj, 1, capability.SetAttr)
	newVer, err := cli.BumpVersion(ctx, &fmCap, 1, obj)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cli.Read(ctx, &rw, 1, obj, 0, 4); err != nil {
		fmt.Println("old capability after version bump:", err)
	}
	fresh := mint(obj, newVer, capability.Read)
	if _, err := cli.Read(ctx, &fresh, 1, obj, 0, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fresh capability against version", newVer, "works")

	// --- Revocation 2: working key rotation --------------------------------
	// Rotating the partition's working key kills every capability minted
	// under it, wholesale.
	newKeyID, err := fmKeys.RotateWorkingKey(1)
	if err != nil {
		log.Fatal(err)
	}
	newKey, _ := fmKeys.Lookup(newKeyID)
	if err := admin.SetKey(ctx, crypt.KeyID{Type: crypt.MasterKey}, master, newKeyID, newKey); err != nil {
		log.Fatal(err)
	}
	if _, err := cli.Read(ctx, &fresh, 1, obj, 0, 4); err != nil {
		fmt.Println("capability after key rotation:", err)
	}
	rearmed := mint(obj, newVer, capability.Read)
	data, err := cli.Read(ctx, &rearmed, 1, obj, 0, len(payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-armed after rotation: %q...\n", data[:20])
	fmt.Println("quickstart complete")
}
