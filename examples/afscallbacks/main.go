// Afscallbacks: the AFS port (Section 5.1) fully distributed — drives,
// file manager, and AFS manager on one side; two whole-file-caching
// clients on the other, all over TCP. It demonstrates the mechanism the
// paper redesigned for NASD: because the file manager no longer sees
// writes, callbacks are broken the moment a *write capability is
// issued*, pushed to clients over their callback connections.
//
// Run with: go run ./examples/afscallbacks
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"nasd/internal/afsrpc"
	"nasd/internal/blockdev"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/filemgr"
	"nasd/internal/nasdafs"
	"nasd/internal/rpc"
)

func main() {
	ctx := context.Background()

	// --- server side: drive + file manager + AFS manager ------------------
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 16384)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 1, Master: master, Secure: true})
	if err != nil {
		log.Fatal(err)
	}
	driveLn, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	driveSrv := drv.Serve(driveLn)
	defer driveSrv.Close()

	var clientSeq uint64 = 1
	dialDrive := func() *client.Drive {
		conn, err := rpc.DialTCP(driveLn.Addr())
		if err != nil {
			log.Fatal(err)
		}
		clientSeq++
		return client.New(conn, 1, clientSeq)
	}
	fm, err := filemgr.Format(ctx, filemgr.Config{
		Drives: []filemgr.DriveTarget{{Client: dialDrive(), DriveID: 1, Master: master}},
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr := nasdafs.NewManager(fm, 10<<20, []*client.Drive{dialDrive()})
	afsLn, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	afsSrv := afsrpc.NewServer(mgr)
	go afsSrv.Serve(afsLn)
	defer afsSrv.Close()
	fmt.Printf("drive on %s, AFS manager on %s (volume quota 10 MB)\n",
		driveLn.Addr(), afsLn.Addr())

	// --- client side ---------------------------------------------------------
	newClient := func(id filemgr.Identity, token uint64) *nasdafs.Client {
		rm, err := afsrpc.Dial(func() (rpc.Conn, error) { return rpc.DialTCP(afsLn.Addr()) }, token)
		if err != nil {
			log.Fatal(err)
		}
		c := nasdafs.NewClient(rm, []*client.Drive{dialDrive()}, id)
		rm.SetReceiver(c)
		return c
	}
	writer := newClient(filemgr.Identity{UID: 10}, 1)
	reader := newClient(filemgr.Identity{UID: 20}, 2)

	if err := writer.Create(ctx, "/report", 0o666); err != nil {
		log.Fatal(err)
	}
	if err := writer.StoreData(ctx, "/report", []byte("draft 1")); err != nil {
		log.Fatal(err)
	}
	data, err := reader.FetchData(ctx, "/report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader fetched %q and holds a callback promise (cached=%v)\n",
		data, reader.Cached("/report"))

	// A second fetch is served locally — zero network traffic.
	if _, err := reader.FetchData(ctx, "/report"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("second fetch served from the whole-file cache")

	// The writer updates the file. Issuing the write capability breaks
	// the reader's callback over its push connection before any data
	// moves.
	if err := writer.StoreData(ctx, "/report", []byte("draft 2")); err != nil {
		log.Fatal(err)
	}
	for i := 0; reader.Cached("/report") && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("after writer's store: reader cached=%v (callback broken, %d breaks received)\n",
		reader.Cached("/report"), reader.CallbackBreaks())

	data, err = reader.FetchData(ctx, "/report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader refetched %q — sequential consistency preserved\n", data)
	fmt.Printf("volume usage settled at %d bytes\n", mgr.VolumeUsed())
	fmt.Println("afs callbacks example complete")
}
