// Striping: Cheops storage management over NASD drives (Section 5.2).
//
// The example builds five drives, creates a RAID-0 striped object and a
// RAID-5 object through the Cheops manager, shows the capability-set
// exchange, then kills a drive mid-flight: reads continue degraded
// (reconstructing from parity) and the manager rebuilds the lost
// component onto a spare drive.
//
// Run with: go run ./examples/striping
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/cheops"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
)

func main() {
	ctx := context.Background()
	const nDrives = 5
	var refs []cheops.DriveRef
	var listeners []*rpc.InProcListener
	clientSeq := uint64(100)
	dial := func(i int) *client.Drive {
		conn, err := listeners[i].Dial()
		if err != nil {
			log.Fatal(err)
		}
		clientSeq++
		return client.New(conn, uint64(1+i), clientSeq)
	}

	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 16384)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			log.Fatal(err)
		}
		l := rpc.NewInProcListener(fmt.Sprintf("drive%d", i))
		srv := drv.Serve(l)
		defer srv.Close()
		listeners = append(listeners, l)
		conn, err := l.Dial()
		if err != nil {
			log.Fatal(err)
		}
		clientSeq++
		refs = append(refs, cheops.DriveRef{
			Client:  client.New(conn, uint64(1+i), clientSeq),
			DriveID: uint64(1 + i),
			Master:  master,
		})
	}
	mgr, err := cheops.NewManager(ctx, cheops.ManagerConfig{Drives: refs}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheops manager over %d drives, partition %d\n", nDrives, mgr.Partition())

	// Client-side connections (each client opens its own).
	myDrives := make([]*client.Drive, nDrives)
	for i := range myDrives {
		myDrives[i] = dial(i)
		defer myDrives[i].Close()
	}

	// --- RAID-0 stripe ----------------------------------------------------
	stripeID, err := mgr.Create(ctx, cheops.Stripe0, 64<<10, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	desc, caps, err := mgr.Open(stripeID, capability.Read|capability.Write)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stripe object %d: %d components, %d capabilities handed to the client\n",
		stripeID, desc.Width(), len(caps))

	obj, err := cheops.OpenObject(mgr, myDrives, stripeID, capability.Read|capability.Write)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 1<<20)
	rng.Read(data)
	if err := obj.WriteAt(ctx, 0, data); err != nil {
		log.Fatal(err)
	}
	got, err := obj.ReadAt(ctx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		log.Fatalf("stripe round trip failed: %v", err)
	}
	fmt.Println("wrote and read 1 MB across 4 drives (RAID 0)")

	// --- RAID-5 with failure ------------------------------------------------
	raidID, err := mgr.Create(ctx, cheops.RAID5, 32<<10, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	robj, err := cheops.OpenObject(mgr, myDrives, raidID, capability.Read|capability.Write)
	if err != nil {
		log.Fatal(err)
	}
	rng.Read(data)
	if err := robj.WriteAt(ctx, 0, data); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote 1 MB to a RAID-5 object (rotating parity)")

	// Kill the drive holding component 1.
	victim := robj.Desc().Components[1].Drive
	myDrives[victim].Close()
	fmt.Printf("drive %d connection severed\n", victim+1)

	got, err = robj.ReadAt(ctx, 0, len(data))
	if err != nil {
		log.Fatalf("degraded read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("degraded read returned wrong data")
	}
	fmt.Println("degraded read reconstructed the data from parity")

	// Rebuild onto the spare drive (index 4).
	if err := mgr.ReplaceComponent(ctx, raidID, 1, 4); err != nil {
		log.Fatal(err)
	}
	nd, _ := mgr.Stat(raidID)
	fmt.Printf("component 1 rebuilt onto drive %d\n", nd.Components[1].Drive+1)

	// Fresh open (new capabilities for the new layout), full read.
	myDrives[victim] = dial(victim) // reconnect for other components
	robj2, err := cheops.OpenObject(mgr, myDrives, raidID, capability.Read)
	if err != nil {
		log.Fatal(err)
	}
	got, err = robj2.ReadAt(ctx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		log.Fatalf("post-rebuild read failed: %v", err)
	}
	fmt.Println("post-rebuild read verified; striping example complete")
}
