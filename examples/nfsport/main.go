// Nfsport: the paper's two conventional-filesystem stories side by
// side (Section 5.1).
//
//  1. NASD-NFS: lookups at the file manager piggyback capabilities and
//     data then moves drive-direct; revocation sends clients back to
//     the file manager transparently.
//  2. Traditional NFS: every byte store-and-forwards through the
//     server.
//
// Both run the Andrew-style five-phase workload; the example prints the
// per-phase operation counts to show the two systems do equivalent
// work — which is why the paper measured them within 5%.
//
// Run with: go run ./examples/nfsport
package main

import (
	"context"
	"fmt"
	"log"

	"nasd/internal/andrew"
	"nasd/internal/blockdev"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/filemgr"
	"nasd/internal/nasdnfs"
	"nasd/internal/rpc"
	"nasd/internal/srvnfs"
)

func main() {
	cfg := andrew.Config{Dirs: 4, FilesPerDir: 8, FileSize: 16 << 10, Seed: 3}

	// --- NASD-NFS -------------------------------------------------------
	nasdCounts := runNASD(cfg)
	fmt.Println("NASD-NFS (data drive-direct, namespace at the file manager):")
	printPhases(nasdCounts)

	// --- Traditional NFS --------------------------------------------------
	nfsCounts := runNFS(cfg)
	fmt.Println("\nTraditional NFS (every byte through the server):")
	printPhases(nfsCounts)

	// Same logical work.
	for i := range nasdCounts {
		if nasdCounts[i].Total() != nfsCounts[i].Total() {
			log.Fatalf("phase %d op counts differ: %d vs %d",
				i, nasdCounts[i].Total(), nfsCounts[i].Total())
		}
	}
	fmt.Println("\nidentical per-phase operation counts — the paper's within-5% parity follows")
}

func printPhases(phases []andrew.Counts) {
	for i, p := range phases {
		fmt.Printf("  %-8s %4d ops  (%6d KB read, %6d KB written)\n",
			andrew.PhaseNames()[i], p.Total(), p.BytesR>>10, p.BytesW>>10)
	}
}

func runNASD(cfg andrew.Config) []andrew.Counts {
	const nDrives = 2
	var targets []filemgr.DriveTarget
	var drives []*client.Drive
	seq := uint64(1)
	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 32768)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			log.Fatal(err)
		}
		l := rpc.NewInProcListener(fmt.Sprintf("d%d", i))
		drv.Serve(l)
		dial := func() *client.Drive {
			conn, err := l.Dial()
			if err != nil {
				log.Fatal(err)
			}
			seq++
			return client.New(conn, uint64(1+i), seq)
		}
		targets = append(targets, filemgr.DriveTarget{Client: dial(), DriveID: uint64(1 + i), Master: master})
		drives = append(drives, dial())
	}
	ctx := context.Background()
	fm, err := filemgr.Format(ctx, filemgr.Config{Drives: targets})
	if err != nil {
		log.Fatal(err)
	}
	cli := nasdnfs.New(fm, drives, filemgr.Identity{UID: 10})
	if err := cli.Mkdir(ctx, "/bench", 0o755); err != nil {
		log.Fatal(err)
	}
	phases, err := andrew.Phases(nasdAdapter{cli}, "/bench", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Demonstrate transparent revocation recovery mid-stream.
	if err := cli.Create(ctx, "/bench/revoked", 0o644); err != nil {
		log.Fatal(err)
	}
	if err := cli.Write(ctx, "/bench/revoked", 0, []byte("before")); err != nil {
		log.Fatal(err)
	}
	if err := fm.Revoke(ctx, filemgr.Identity{UID: 10}, "/bench/revoked"); err != nil {
		log.Fatal(err)
	}
	if got, err := cli.Read(ctx, "/bench/revoked", 0, 6); err != nil || string(got) != "before" {
		log.Fatalf("revocation recovery failed: %q %v", got, err)
	}
	fmt.Println("  (revocation mid-stream recovered transparently via re-lookup)")
	return phases
}

func runNFS(cfg andrew.Config) []andrew.Counts {
	server, err := srvnfs.NewServer([]blockdev.Device{
		blockdev.NewMemDisk(4096, 32768),
		blockdev.NewMemDisk(4096, 32768),
	})
	if err != nil {
		log.Fatal(err)
	}
	l := rpc.NewInProcListener("nfs")
	srv := rpc.NewServer(server)
	go srv.Serve(l)
	conn, err := l.Dial()
	if err != nil {
		log.Fatal(err)
	}
	cli := srvnfs.NewClient(conn)
	if err := cli.Mkdir("/bench"); err != nil {
		log.Fatal(err)
	}
	phases, err := andrew.Phases(srvAdapter{cli}, "/bench", cfg)
	if err != nil {
		log.Fatal(err)
	}
	return phases
}

type nasdAdapter struct{ c *nasdnfs.Client }

func (a nasdAdapter) Mkdir(path string) error  { return a.c.Mkdir(context.Background(), path, 0o755) }
func (a nasdAdapter) Create(path string) error { return a.c.Create(context.Background(), path, 0o644) }
func (a nasdAdapter) Write(path string, off uint64, data []byte) error {
	return a.c.Write(context.Background(), path, off, data)
}
func (a nasdAdapter) Read(path string, off uint64, n int) ([]byte, error) {
	return a.c.Read(context.Background(), path, off, n)
}
func (a nasdAdapter) Stat(path string) (uint64, error) {
	attrs, err := a.c.GetAttr(context.Background(), path)
	return attrs.Size, err
}
func (a nasdAdapter) ReadDir(path string) ([]string, error) {
	ents, err := a.c.ReadDir(context.Background(), path)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ents))
	for i, e := range ents {
		out[i] = e.Name
	}
	return out, nil
}

type srvAdapter struct{ c *srvnfs.Client }

func (a srvAdapter) Mkdir(path string) error  { return a.c.Mkdir(path) }
func (a srvAdapter) Create(path string) error { return a.c.Create(path) }
func (a srvAdapter) Write(path string, off uint64, data []byte) error {
	return a.c.Write(path, off, data)
}
func (a srvAdapter) Read(path string, off uint64, n int) ([]byte, error) {
	return a.c.Read(path, off, n)
}
func (a srvAdapter) Stat(path string) (uint64, error) {
	size, _, err := a.c.GetAttr(path)
	return size, err
}
func (a srvAdapter) ReadDir(path string) ([]string, error) { return a.c.ReadDir(path) }
