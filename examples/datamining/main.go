// Datamining: the paper's parallel frequent-sets application (Section
// 5.2 / Figure 9) running end to end on the functional stack: synthetic
// sales transactions in a NASD PFS file striped over four drives, four
// parallel mining clients with producer/consumer threading, and the
// full multi-pass Apriori algorithm on top.
//
// Run with: go run ./examples/datamining
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/cheops"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/mining"
	"nasd/internal/pfs"
	"nasd/internal/rpc"
)

const (
	nDrives = 4
	nMiners = 4
	catalog = 500
	fileMB  = 16
)

func main() {
	ctx := context.Background()

	// Cluster: four secure drives behind in-process transports.
	var refs []cheops.DriveRef
	var listeners []*rpc.InProcListener
	seq := uint64(10)
	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 32768)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			log.Fatal(err)
		}
		l := rpc.NewInProcListener(fmt.Sprintf("drive%d", i))
		srv := drv.Serve(l)
		defer srv.Close()
		listeners = append(listeners, l)
		conn, _ := l.Dial()
		seq++
		refs = append(refs, cheops.DriveRef{Client: client.New(conn, uint64(1+i), seq), DriveID: uint64(1 + i), Master: master})
	}
	mgr, err := cheops.NewManager(ctx, cheops.ManagerConfig{Drives: refs}, true)
	if err != nil {
		log.Fatal(err)
	}
	fs := pfs.NewFS(mgr, pfs.Config{StripeUnit: 512 << 10, Width: nDrives})
	dialAll := func() []*client.Drive {
		out := make([]*client.Drive, nDrives)
		for i, l := range listeners {
			conn, err := l.Dial()
			if err != nil {
				log.Fatal(err)
			}
			seq++
			out[i] = client.New(conn, uint64(1+i), seq)
		}
		return out
	}

	// Generate and load the transaction file.
	fmt.Printf("generating %d MB of sales transactions (catalog %d items)...\n", fileMB, catalog)
	data := mining.Generate(mining.GenConfig{CatalogSize: catalog, MeanItems: 8, TotalBytes: fileMB << 20, Seed: 7})
	if err := fs.Create(ctx, "/sales", nDrives); err != nil {
		log.Fatal(err)
	}
	loader, err := fs.Open("/sales", dialAll(), capability.Read|capability.Write)
	if err != nil {
		log.Fatal(err)
	}
	for off := 0; off < len(data); off += 2 << 20 {
		end := off + 2<<20
		if end > len(data) {
			end = len(data)
		}
		if err := loader.WriteAt(ctx, uint64(off), data[off:end]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded /sales: %d bytes striped over %d drives (512 KB units)\n", len(data), nDrives)

	// Pass 1 in parallel: each miner opens the file itself (its own
	// component capabilities) and scans its round-robin 2 MB chunks
	// with four producer threads.
	var sources []mining.Source
	for m := 0; m < nMiners; m++ {
		f, err := fs.Open("/sales", dialAll(), capability.Read)
		if err != nil {
			log.Fatal(err)
		}
		sources = append(sources, f)
	}
	counts, err := mining.ParallelCount(ctx, sources, uint64(len(data)), mining.ParallelConfig{Catalog: catalog})
	if err != nil {
		log.Fatal(err)
	}
	type pop struct {
		item  int
		count uint32
	}
	var tops []pop
	for it, c := range counts {
		tops = append(tops, pop{it, c})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].count > tops[j].count })
	fmt.Println("pass 1 (parallel, 4 miners): top items:")
	for _, p := range tops[:5] {
		fmt.Printf("  item %3d: %d occurrences\n", p.item, p.count)
	}

	// Full Apriori over the PFS file: the scan callback re-reads the
	// file for each pass, just as the paper's multi-pass algorithm does.
	reader, err := fs.Open("/sales", dialAll(), capability.Read)
	if err != nil {
		log.Fatal(err)
	}
	scan := func(emit func(chunk []byte)) error {
		for off := uint64(0); off < uint64(len(data)); off += mining.ChunkSize {
			n := uint64(mining.ChunkSize)
			if off+n > uint64(len(data)) {
				n = uint64(len(data)) - off
			}
			chunk, err := reader.ReadAt(ctx, off, int(n))
			if err != nil {
				return err
			}
			emit(chunk)
		}
		return nil
	}
	minSupport := uint32(len(data) / 4000) // scale support with volume
	passes, err := mining.Apriori(scan, minSupport, catalog, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range passes {
		fmt.Printf("pass %d: %d frequent %d-itemsets (support >= %d)\n",
			p.K, len(p.Sets), p.K, minSupport)
		show := p.Sets
		if len(show) > 4 {
			show = show[:4]
		}
		for _, s := range show {
			fmt.Printf("  %v (support %d)\n", s, p.Support(s))
		}
	}
	fmt.Println("datamining example complete")
}
