// Package nasd is a from-scratch Go reproduction of "A Cost-Effective,
// High-Bandwidth Storage Architecture" (Gibson et al., ASPLOS 1998) —
// the Network-Attached Secure Disks (NASD) paper.
//
// The repository contains the complete system the paper describes: a
// NASD drive (object store, cryptographic capabilities, RPC interface),
// a file manager with NFS and AFS ports, the Cheops storage manager
// and NASD PFS parallel filesystem, the Apriori data-mining workload,
// Active Disks, and a deterministic discrete-event simulation of the
// paper's 1998 hardware that regenerates every table and figure in its
// evaluation. See README.md for a tour and DESIGN.md for the system
// inventory.
package nasd
