package drive

import (
	"encoding/json"
	"time"

	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// This file carries the drive's measured telemetry: real service-time
// observations per NASD operation, split into the same components the
// paper's Table 1 reports — security (digest verification), object
// system, and media. It complements acct.go, which *models* instruction
// counts on 1998 hardware; telemetry measures what this implementation
// actually does, which is what `nasdbench -stats` and `nasdctl stats`
// print.
//
// The split is measured as follows for each request: digest time is
// timed directly inside authorize/authorizeAdmin; media time is the
// busy-time delta of the instrumented block device (Config.Media)
// across the request; object-system time is the remainder of the
// handler's wall time. Digest time is exact. The media delta is exact
// when requests are served one at a time (how `nasdbench -stats` runs)
// and an approximation under concurrency, where overlapping requests
// share the device's busy time.

// MediaClock reports cumulative nanoseconds a storage medium has spent
// busy. *blockdev.Instrumented implements it.
type MediaClock interface {
	BusyNanos() int64
}

// opMax bounds the per-op metrics table (ops are small consecutive
// constants).
const opMax = 32

// opTel is the measured per-operation metric set.
type opTel struct {
	calls    *telemetry.Counter
	errors   *telemetry.Counter
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
	svc      *telemetry.Histogram // total handler time, ns
	digest   *telemetry.Counter   // cumulative ns verifying capabilities/digests
	object   *telemetry.Counter   // cumulative ns in the object system
	media    *telemetry.Counter   // cumulative ns of media busy time
}

// driveTel is the drive's telemetry state.
type driveTel struct {
	reg   *telemetry.Registry
	ops   [opMax]*opTel
	trace *telemetry.TraceLog
	media MediaClock
}

// newDriveTel builds the per-op metric table inside reg.
func newDriveTel(reg *telemetry.Registry, media MediaClock) *driveTel {
	t := &driveTel{reg: reg, trace: telemetry.NewTraceLog(512), media: media}
	for op := Op(1); op < opMax; op++ {
		name := op.String()
		if len(name) > 3 && name[:3] == "op(" {
			continue // undefined op numbers get no metrics
		}
		prefix := "drive.op." + name
		t.ops[op] = &opTel{
			calls:    reg.Counter(prefix + ".calls"),
			errors:   reg.Counter(prefix + ".errors"),
			bytesIn:  reg.Counter(prefix + ".bytes_in"),
			bytesOut: reg.Counter(prefix + ".bytes_out"),
			svc:      reg.Histogram(prefix + ".svc_ns"),
			digest:   reg.Counter(prefix + ".digest_ns"),
			object:   reg.Counter(prefix + ".object_ns"),
			media:    reg.Counter(prefix + ".media_ns"),
		}
	}
	return t
}

// mediaNanos reads the media clock (0 when the drive has none).
func (t *driveTel) mediaNanos() int64 {
	if t.media == nil {
		return 0
	}
	return t.media.BusyNanos()
}

// phases accumulates one request's per-component time. It is created
// by Handle and threaded through dispatch into the handlers, which is
// how authorize attributes digest-verification time to the request that
// paid it.
type phases struct {
	digest time.Duration
}

// record publishes one completed request into the per-op metrics and
// the trace log.
func (t *driveTel) record(op Op, req *rpc.Request, rep *rpc.Reply, total time.Duration, ph *phases, mediaDelta int64) {
	if int(op) >= opMax || t.ops[op] == nil {
		return
	}
	m := t.ops[op]
	m.calls.Inc()
	status := rpc.StatusOK
	nIn, nOut := len(req.Data), 0
	if rep != nil {
		status = rep.Status
		nOut = len(rep.Data)
	}
	if status != rpc.StatusOK {
		m.errors.Inc()
	}
	m.bytesIn.Add(uint64(nIn))
	m.bytesOut.Add(uint64(nOut))
	m.svc.ObserveDuration(total)
	m.digest.Add(uint64(ph.digest))
	if mediaDelta < 0 {
		mediaDelta = 0
	}
	m.media.Add(uint64(mediaDelta))
	obj := int64(total) - int64(ph.digest) - mediaDelta
	if obj < 0 {
		obj = 0
	}
	m.object.Add(uint64(obj))
	t.trace.Add(telemetry.TraceEvent{
		RequestID: req.Trace,
		Op:        op.String(),
		Status:    status.String(),
		DurNanos:  int64(total),
		Bytes:     nIn + nOut,
		UnixNano:  time.Now().UnixNano(),
	})
}

// Metrics returns the drive's telemetry registry (per-op counters and
// service-time histograms under "drive.op.*", cache counters under
// "drive.cache.*").
func (d *Drive) Metrics() *telemetry.Registry { return d.tel.reg }

// Trace returns the drive's bounded log of recently served requests.
func (d *Drive) Trace() *telemetry.TraceLog { return d.tel.trace }

// StatsReply is the payload of the OpStats request: the drive's full
// metric snapshot plus the tail of its trace log.
type StatsReply struct {
	DriveID uint64                 `json:"drive_id"`
	Metrics telemetry.Snapshot     `json:"metrics"`
	Trace   []telemetry.TraceEvent `json:"trace,omitempty"`
}

// handleStats serves the drive's telemetry snapshot. Like OpFlush it
// requires no capability: it exposes aggregate load, not object data,
// and operators need it exactly when capability plumbing is what they
// are debugging.
func (d *Drive) handleStats(req *rpc.Request) *rpc.Reply {
	a, err := DecodeStatsArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	sr := StatsReply{DriveID: d.id, Metrics: d.tel.reg.Snapshot()}
	if a.TraceN > 0 {
		sr.Trace = d.tel.trace.Recent(int(a.TraceN))
	}
	body, err := json.Marshal(&sr)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusError, "encoding stats: %v", err)
	}
	return &rpc.Reply{Status: rpc.StatusOK, Data: body}
}
