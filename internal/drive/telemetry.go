package drive

import (
	"encoding/json"
	"strconv"
	"sync"
	"time"

	"nasd/internal/capability"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// This file carries the drive's measured telemetry: real service-time
// observations per NASD operation, split into the same components the
// paper's Table 1 reports — security (digest verification), object
// system, and media. It complements acct.go, which *models* instruction
// counts on 1998 hardware; telemetry measures what this implementation
// actually does, which is what `nasdbench -stats` and `nasdctl stats`
// print.
//
// The split is measured as follows for each request: digest time is
// timed directly inside authorize/authorizeAdmin; media time is the
// busy-time delta of the instrumented block device (Config.Media)
// across the request; object-system time is the remainder of the
// handler's wall time. Digest time is exact. The media delta is exact
// when requests are served one at a time (how `nasdbench -stats` runs)
// and an approximation under concurrency, where overlapping requests
// share the device's busy time.

// MediaClock reports cumulative nanoseconds a storage medium has spent
// busy. *blockdev.Instrumented implements it.
type MediaClock interface {
	BusyNanos() int64
}

// mediaTracer is the optional extension of MediaClock that accepts an
// ambient span context for per-I/O media spans (implemented by
// *blockdev.Instrumented). Checked dynamically so MediaClock stays a
// one-method interface for tests and fakes.
type mediaTracer interface {
	SetTraceContext(telemetry.SpanContext)
}

// opMax bounds the per-op metrics table (ops are small consecutive
// constants).
const opMax = 32

// opTel is the measured per-operation metric set.
type opTel struct {
	calls    *telemetry.Counter
	errors   *telemetry.Counter
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
	svc      *telemetry.Histogram // total handler time, ns
	digest   *telemetry.Counter   // cumulative ns verifying capabilities/digests
	object   *telemetry.Counter   // cumulative ns in the object system
	media    *telemetry.Counter   // cumulative ns of media busy time
}

// lockWaitFamilies are the data-path lock meters (PR 3) whose wait
// histograms the drive samples around each request to annotate its span
// with the lock-wait delta. Registry histograms are get-or-create, so
// listing a family the store never registers just yields a zero series.
var lockWaitFamilies = []string{
	"object.lock.wait_ns",
	"object.partlock.wait_ns",
	"cache.lock.wait_ns",
	"layout.lock.wait_ns",
}

// tenantTel is one (partition, op) cell of the per-tenant attribution
// table: the subset of the per-op family worth splitting by tenant.
// The phase counters (digest/object/media ns) stay aggregate-only to
// bound cardinality — the tenant split answers "who is driving load
// and what latency do they see", not the Table 1 decomposition.
type tenantTel struct {
	calls    *telemetry.Counter
	errors   *telemetry.Counter
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
	svc      *telemetry.Histogram
}

// driveTel is the drive's telemetry state.
type driveTel struct {
	reg      *telemetry.Registry
	ops      [opMax]*opTel
	trace    *telemetry.TraceLog
	media    MediaClock
	spans    *telemetry.SpanLog
	events   *telemetry.EventLog
	lockWait []*telemetry.Histogram

	// tenants lazily maps part<<16|op to its per-tenant metric cell.
	// Requests for a handful of partitions dominate, so the read path
	// is an RLock + map hit.
	tenantMu sync.RWMutex
	tenants  map[uint32]*tenantTel
}

// newDriveTel builds the per-op metric table inside reg.
func newDriveTel(reg *telemetry.Registry, media MediaClock, spans *telemetry.SpanLog, events *telemetry.EventLog) *driveTel {
	t := &driveTel{
		reg: reg, trace: telemetry.NewTraceLog(512), media: media,
		spans: spans, events: events, tenants: make(map[uint32]*tenantTel),
	}
	for _, name := range lockWaitFamilies {
		t.lockWait = append(t.lockWait, reg.Histogram(name))
	}
	for op := Op(1); op < opMax; op++ {
		name := op.String()
		if len(name) > 3 && name[:3] == "op(" {
			continue // undefined op numbers get no metrics
		}
		prefix := "drive.op." + name
		t.ops[op] = &opTel{
			calls:    reg.Counter(prefix + ".calls"),
			errors:   reg.Counter(prefix + ".errors"),
			bytesIn:  reg.Counter(prefix + ".bytes_in"),
			bytesOut: reg.Counter(prefix + ".bytes_out"),
			svc:      reg.Histogram(prefix + ".svc_ns"),
			digest:   reg.Counter(prefix + ".digest_ns"),
			object:   reg.Counter(prefix + ".object_ns"),
			media:    reg.Counter(prefix + ".media_ns"),
		}
	}
	return t
}

// tenant returns the per-tenant metric cell for (part, op), creating
// it — and its "drive.part.<P>.op.<name>.*" registry entries — on the
// tenant's first request. The label comes from capability.TenantKey:
// the partition identity in the request's capability is the tenant
// identity.
func (t *driveTel) tenant(part uint16, op Op) *tenantTel {
	key := uint32(part)<<16 | uint32(op)
	t.tenantMu.RLock()
	cell := t.tenants[key]
	t.tenantMu.RUnlock()
	if cell != nil {
		return cell
	}
	t.tenantMu.Lock()
	defer t.tenantMu.Unlock()
	if cell = t.tenants[key]; cell != nil {
		return cell
	}
	prefix := "drive." + capability.TenantKey(part) + ".op." + op.String()
	cell = &tenantTel{
		calls:    t.reg.Counter(prefix + ".calls"),
		errors:   t.reg.Counter(prefix + ".errors"),
		bytesIn:  t.reg.Counter(prefix + ".bytes_in"),
		bytesOut: t.reg.Counter(prefix + ".bytes_out"),
		svc:      t.reg.Histogram(prefix + ".svc_ns"),
	}
	t.tenants[key] = cell
	return cell
}

// mediaNanos reads the media clock (0 when the drive has none).
func (t *driveTel) mediaNanos() int64 {
	if t.media == nil {
		return 0
	}
	return t.media.BusyNanos()
}

// lockWaitNanos sums the cumulative wait time of every data-path lock
// family; Handle takes the delta across a request. Like the media
// delta, the attribution is exact for serialized requests and
// approximate when concurrent requests wait simultaneously.
func (t *driveTel) lockWaitNanos() int64 {
	var sum int64
	for _, h := range t.lockWait {
		sum += h.Sum()
	}
	return sum
}

// phases accumulates one request's per-component time and its tenant
// attribution. It is created by Handle and threaded through dispatch
// into the handlers, which is how authorize attributes
// digest-verification time — and the capability's partition identity —
// to the request that paid it.
type phases struct {
	digest time.Duration
	// tenant is the partition identity decoded from the request's
	// capability (authorize sets it); insecure-mode requests fall back
	// to the partition in the argument record. hasTenant gates it.
	tenant    uint16
	hasTenant bool
}

// setTenant records the request's tenant identity (first writer wins:
// the capability's word outranks the argument record's).
func (ph *phases) setTenant(part uint16) {
	if !ph.hasTenant {
		ph.tenant, ph.hasTenant = part, true
	}
}

// record publishes one completed request into the per-op metrics, the
// trace log, and — when the request carried a trace context — the span
// log. sp is the drive-side handler span (nil when untraced); lockWait
// is the request's lock-wait delta in nanoseconds.
func (t *driveTel) record(op Op, req *rpc.Request, rep *rpc.Reply, total time.Duration, ph *phases, mediaDelta int64, sp *telemetry.Span, lockWait int64) {
	if int(op) >= opMax || t.ops[op] == nil {
		sp.End()
		return
	}
	m := t.ops[op]
	m.calls.Inc()
	status := rpc.StatusOK
	nIn, nOut := len(req.Data), 0
	if rep != nil {
		status = rep.Status
		nOut = len(rep.Data)
	}
	if status != rpc.StatusOK {
		m.errors.Inc()
	}
	m.bytesIn.Add(uint64(nIn))
	m.bytesOut.Add(uint64(nOut))
	// Traced requests leave their (trace ID, duration) as the bucket's
	// exemplar, the link from a tail percentile to its span timeline.
	m.svc.ObserveTrace(int64(total), req.Trace.TraceID)
	if ph.hasTenant {
		tt := t.tenant(ph.tenant, op)
		tt.calls.Inc()
		if status != rpc.StatusOK {
			tt.errors.Inc()
		}
		tt.bytesIn.Add(uint64(nIn))
		tt.bytesOut.Add(uint64(nOut))
		tt.svc.ObserveTrace(int64(total), req.Trace.TraceID)
	}
	m.digest.Add(uint64(ph.digest))
	if mediaDelta < 0 {
		mediaDelta = 0
	}
	m.media.Add(uint64(mediaDelta))
	obj := int64(total) - int64(ph.digest) - mediaDelta
	if obj < 0 {
		obj = 0
	}
	m.object.Add(uint64(obj))
	t.trace.Add(telemetry.TraceEvent{
		RequestID: req.Trace.TraceID,
		Op:        op.String(),
		Status:    status.String(),
		DurNanos:  int64(total),
		Bytes:     nIn + nOut,
		UnixNano:  time.Now().UnixNano(),
	})
	if sp != nil {
		sp.Annotate("status", status.String())
		sp.Annotate("bytes_in", strconv.Itoa(nIn))
		sp.Annotate("bytes_out", strconv.Itoa(nOut))
		if lockWait > 0 {
			sp.Annotate("lock_wait_ns", strconv.FormatInt(lockWait, 10))
		}
		sp.End()
		t.emitPhases(sp, ph.digest, mediaDelta, obj)
	}
}

// emitPhases records the Table 1 cost split as three child spans of the
// completed handler span. The durations are the measured per-component
// times (they sum to the handler's total); their placement is
// synthesized as digest → object-system → media from the handler start,
// since the components are deltas, not instrumented intervals.
func (t *driveTel) emitPhases(sp *telemetry.Span, digest time.Duration, media, obj int64) {
	sc := sp.Context()
	start := sp.StartNanos()
	emit := func(name string, from, dur int64) {
		if dur <= 0 {
			return
		}
		t.spans.Emit(telemetry.SpanRecord{
			TraceID: sc.TraceID,
			SpanID:  telemetry.NextSpanID(),
			Parent:  sc.SpanID,
			Name:    name,
			StartNS: start + from,
			EndNS:   start + from + dur,
		})
	}
	emit("digest", 0, int64(digest))
	emit("object-system", int64(digest), obj)
	emit("media", int64(digest)+obj, media)
}

// Metrics returns the drive's telemetry registry (per-op counters and
// service-time histograms under "drive.op.*", cache counters under
// "drive.cache.*").
func (d *Drive) Metrics() *telemetry.Registry { return d.tel.reg }

// Trace returns the drive's bounded log of recently served requests.
func (d *Drive) Trace() *telemetry.TraceLog { return d.tel.trace }

// Spans returns the drive's span log (per-request hierarchical
// timelines; DESIGN.md §5 "Tracing").
func (d *Drive) Spans() *telemetry.SpanLog { return d.tel.spans }

// Events returns the structured event ring the drive and its store
// record into (DESIGN.md §5 "Events").
func (d *Drive) Events() *telemetry.EventLog { return d.tel.events }

// StatsReply is the payload of the OpStats request: the drive's full
// metric snapshot plus, on request, the tail of its trace log, spans
// from its span log, and the tail of its structured event ring.
type StatsReply struct {
	DriveID uint64                 `json:"drive_id"`
	Metrics telemetry.Snapshot     `json:"metrics"`
	Trace   []telemetry.TraceEvent `json:"trace,omitempty"`
	Spans   []telemetry.SpanRecord `json:"spans,omitempty"`
	Events  []telemetry.Event      `json:"events,omitempty"`
}

// handleStats serves the drive's telemetry snapshot. Like OpFlush it
// requires no capability: it exposes aggregate load, not object data,
// and operators need it exactly when capability plumbing is what they
// are debugging.
func (d *Drive) handleStats(req *rpc.Request) *rpc.Reply {
	a, err := DecodeStatsArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	sr := StatsReply{DriveID: d.id, Metrics: d.tel.reg.Snapshot()}
	if a.TraceN > 0 {
		sr.Trace = d.tel.trace.Recent(int(a.TraceN))
	}
	if a.SpanTrace != 0 {
		sr.Spans = d.tel.spans.ByTrace(a.SpanTrace)
	} else if a.SpanN > 0 {
		sr.Spans = d.tel.spans.Recent(int(a.SpanN))
	}
	if a.EventN > 0 {
		sr.Events = d.tel.events.Recent(int(a.EventN), telemetry.Severity(a.EventMin))
	}
	body, err := json.Marshal(&sr)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusError, "encoding stats: %v", err)
	}
	return &rpc.Reply{Status: rpc.StatusOK, Data: body}
}
