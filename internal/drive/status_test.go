package drive

import (
	"fmt"
	"testing"

	"nasd/internal/object"
	"nasd/internal/rpc"
)

// TestStatusMapping pins the object-error → wire-status table,
// including wrapped errors (the usual shape after fmt.Errorf("%w")).
func TestStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want rpc.Status
	}{
		{object.ErrNoObject, rpc.StatusNoObject},
		{object.ErrNoPartition, rpc.StatusNoPartition},
		{object.ErrQuota, rpc.StatusQuota},
		{object.ErrBadRange, rpc.StatusBadRequest},
		{object.ErrBackendMismatch, rpc.StatusBadRequest},
		{fmt.Errorf("op: %w", object.ErrQuota), rpc.StatusQuota},
		{fmt.Errorf("unmapped"), rpc.StatusError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
