package drive

import (
	"fmt"
	"time"

	"nasd/internal/object"
	"nasd/internal/rpc"
)

// Op identifies one NASD request type.
type Op uint16

// The NASD interface (Section 4.1: "less than 20 requests").
const (
	OpReadObject Op = iota + 1
	OpWriteObject
	OpGetAttr
	OpSetAttr
	OpCreateObject
	OpRemoveObject
	OpVersionObject // construct a copy-on-write object version
	OpCreatePartition
	OpResizePartition
	OpRemovePartition
	OpGetPartition
	OpListObjects
	OpSetKey
	OpBumpVersion // revoke capabilities by changing the logical version
	OpFlush
	OpExecute  // Active Disks extension (Section 6): run a registered kernel
	OpGetStats // telemetry snapshot: per-op counters, histograms, trace tail
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpReadObject:
		return "read"
	case OpWriteObject:
		return "write"
	case OpGetAttr:
		return "getattr"
	case OpSetAttr:
		return "setattr"
	case OpCreateObject:
		return "create"
	case OpRemoveObject:
		return "remove"
	case OpVersionObject:
		return "version"
	case OpCreatePartition:
		return "mkpart"
	case OpResizePartition:
		return "resizepart"
	case OpRemovePartition:
		return "rmpart"
	case OpGetPartition:
		return "getpart"
	case OpListObjects:
		return "list"
	case OpSetKey:
		return "setkey"
	case OpBumpVersion:
		return "bumpver"
	case OpFlush:
		return "flush"
	case OpExecute:
		return "execute"
	case OpGetStats:
		return "stats"
	}
	return fmt.Sprintf("op(%d)", uint16(o))
}

// --- Argument encodings -------------------------------------------------
//
// Every op has a fixed little-endian argument record built with the rpc
// codec. Bulk data travels in the request/reply Data field, never in
// Args.

// reqPartition extracts the partition a request addresses without a
// full decode: every partition-addressed op leads its argument record
// with the partition (a deliberate wire-layout invariant this function
// depends on). It feeds per-tenant telemetry attribution for requests
// that never reach authorize (insecure mode, early decode failures).
// Ops with no partition in their arguments (setkey, flush, stats)
// report false.
func reqPartition(op Op, args []byte) (uint16, bool) {
	switch op {
	case OpReadObject, OpWriteObject, OpGetAttr, OpSetAttr, OpCreateObject,
		OpRemoveObject, OpVersionObject, OpListObjects, OpBumpVersion, OpExecute,
		OpCreatePartition, OpResizePartition, OpRemovePartition, OpGetPartition:
		if len(args) >= 2 {
			return uint16(args[0]) | uint16(args[1])<<8, true
		}
	}
	return 0, false
}

// ReadArgs requests object data.
type ReadArgs struct {
	Partition uint16
	Object    uint64
	Offset    uint64
	Length    uint64
}

// Encode serializes the arguments.
func (a *ReadArgs) Encode() []byte {
	var e rpc.Encoder
	e.U16(a.Partition)
	e.U64(a.Object)
	e.U64(a.Offset)
	e.U64(a.Length)
	return e.Bytes()
}

// DecodeReadArgs parses ReadArgs.
func DecodeReadArgs(b []byte) (ReadArgs, error) {
	d := rpc.NewDecoder(b)
	a := ReadArgs{Partition: d.U16(), Object: d.U64(), Offset: d.U64(), Length: d.U64()}
	return a, d.Err()
}

// WriteArgs stores object data (payload in Request.Data).
type WriteArgs struct {
	Partition uint16
	Object    uint64
	Offset    uint64
}

// Encode serializes the arguments.
func (a *WriteArgs) Encode() []byte {
	var e rpc.Encoder
	e.U16(a.Partition)
	e.U64(a.Object)
	e.U64(a.Offset)
	return e.Bytes()
}

// DecodeWriteArgs parses WriteArgs.
func DecodeWriteArgs(b []byte) (WriteArgs, error) {
	d := rpc.NewDecoder(b)
	a := WriteArgs{Partition: d.U16(), Object: d.U64(), Offset: d.U64()}
	return a, d.Err()
}

// ObjArgs names an object (getattr, remove, version, bumpver).
type ObjArgs struct {
	Partition uint16
	Object    uint64
}

// Encode serializes the arguments.
func (a *ObjArgs) Encode() []byte {
	var e rpc.Encoder
	e.U16(a.Partition)
	e.U64(a.Object)
	return e.Bytes()
}

// DecodeObjArgs parses ObjArgs.
func DecodeObjArgs(b []byte) (ObjArgs, error) {
	d := rpc.NewDecoder(b)
	a := ObjArgs{Partition: d.U16(), Object: d.U64()}
	return a, d.Err()
}

// SetAttrArgs updates selected attributes.
type SetAttrArgs struct {
	Partition uint16
	Object    uint64
	Mask      uint32
	Attrs     object.Attributes
}

// Encode serializes the arguments.
func (a *SetAttrArgs) Encode() []byte {
	var e rpc.Encoder
	e.U16(a.Partition)
	e.U64(a.Object)
	e.U32(a.Mask)
	encodeAttrs(&e, &a.Attrs)
	return e.Bytes()
}

// DecodeSetAttrArgs parses SetAttrArgs.
func DecodeSetAttrArgs(b []byte) (SetAttrArgs, error) {
	d := rpc.NewDecoder(b)
	a := SetAttrArgs{Partition: d.U16(), Object: d.U64(), Mask: d.U32()}
	a.Attrs = decodeAttrs(d)
	return a, d.Err()
}

func encodeAttrs(e *rpc.Encoder, at *object.Attributes) {
	e.U64(at.Size)
	e.U64(at.Version)
	e.I64(at.CreateTime.Unix())
	e.I64(at.ModTime.Unix())
	e.I64(at.AttrModTime.Unix())
	e.U64(at.Prealloc)
	e.U64(at.Cluster)
	e.Raw(at.Uninterp[:])
}

func decodeAttrs(d *rpc.Decoder) object.Attributes {
	var at object.Attributes
	at.Size = d.U64()
	at.Version = d.U64()
	at.CreateTime = time.Unix(d.I64(), 0).UTC()
	at.ModTime = time.Unix(d.I64(), 0).UTC()
	at.AttrModTime = time.Unix(d.I64(), 0).UTC()
	at.Prealloc = d.U64()
	at.Cluster = d.U64()
	copy(at.Uninterp[:], d.Raw(len(at.Uninterp)))
	return at
}

// EncodeAttrsReply serializes attributes for a getattr reply.
func EncodeAttrsReply(at *object.Attributes) []byte {
	var e rpc.Encoder
	encodeAttrs(&e, at)
	return e.Bytes()
}

// DecodeAttrsReply parses a getattr reply.
func DecodeAttrsReply(b []byte) (object.Attributes, error) {
	d := rpc.NewDecoder(b)
	at := decodeAttrs(d)
	return at, d.Err()
}

// Wire values for PartArgs.Backend. Zero (the default for callers that
// do not care) defers to the drive's configured default engine.
const (
	WireBackendDefault uint8 = 0
	WireBackendClassic uint8 = 1
	WireBackendNeedle  uint8 = 2
)

// WireBackend converts an object-layer backend kind to its wire value.
func WireBackend(k object.BackendKind) uint8 {
	if k == object.BackendNeedle {
		return WireBackendNeedle
	}
	return WireBackendClassic
}

// PartArgs names a partition with an optional quota (create/resize).
type PartArgs struct {
	Partition uint16
	Quota     int64
	// Backend selects the partition's storage engine on create
	// (WireBackend* values); ignored by the other partition requests.
	Backend uint8
	// AuthKey names the key whose MAC authorizes this management
	// request (drive or partition key; Figure 5's security header).
	AuthKey KeyRef
}

// KeyRef is the wire form of a crypt.KeyID.
type KeyRef struct {
	Type      uint8
	Partition uint16
	Version   uint32
}

func encodeKeyRef(e *rpc.Encoder, k KeyRef) {
	e.U8(k.Type)
	e.U16(k.Partition)
	e.U32(k.Version)
}

func decodeKeyRef(d *rpc.Decoder) KeyRef {
	return KeyRef{Type: d.U8(), Partition: d.U16(), Version: d.U32()}
}

// Encode serializes the arguments.
func (a *PartArgs) Encode() []byte {
	var e rpc.Encoder
	e.U16(a.Partition)
	e.I64(a.Quota)
	e.U8(a.Backend)
	encodeKeyRef(&e, a.AuthKey)
	return e.Bytes()
}

// DecodePartArgs parses PartArgs.
func DecodePartArgs(b []byte) (PartArgs, error) {
	d := rpc.NewDecoder(b)
	a := PartArgs{Partition: d.U16(), Quota: d.I64(), Backend: d.U8(), AuthKey: decodeKeyRef(d)}
	return a, d.Err()
}

// SetKeyArgs installs a key (the set-security-key request).
type SetKeyArgs struct {
	Target  KeyRef // key being installed
	Key     []byte // new key material
	AuthKey KeyRef // key authorizing the installation
}

// Encode serializes the arguments.
func (a *SetKeyArgs) Encode() []byte {
	var e rpc.Encoder
	encodeKeyRef(&e, a.Target)
	e.Bytes32(a.Key)
	encodeKeyRef(&e, a.AuthKey)
	return e.Bytes()
}

// DecodeSetKeyArgs parses SetKeyArgs.
func DecodeSetKeyArgs(b []byte) (SetKeyArgs, error) {
	d := rpc.NewDecoder(b)
	a := SetKeyArgs{Target: decodeKeyRef(d)}
	a.Key = d.Bytes32()
	a.AuthKey = decodeKeyRef(d)
	return a, d.Err()
}

// ExecuteArgs runs a registered Active Disk kernel against an object.
type ExecuteArgs struct {
	Partition uint16
	Object    uint64
	Kernel    string
	Params    []byte
}

// Encode serializes the arguments.
func (a *ExecuteArgs) Encode() []byte {
	var e rpc.Encoder
	e.U16(a.Partition)
	e.U64(a.Object)
	e.String(a.Kernel)
	e.Bytes32(a.Params)
	return e.Bytes()
}

// DecodeExecuteArgs parses ExecuteArgs.
func DecodeExecuteArgs(b []byte) (ExecuteArgs, error) {
	d := rpc.NewDecoder(b)
	a := ExecuteArgs{Partition: d.U16(), Object: d.U64()}
	a.Kernel = d.String()
	a.Params = d.Bytes32()
	return a, d.Err()
}

// StatsArgs requests a telemetry snapshot. TraceN bounds how many
// recent trace events ride along (0 = none). SpanTrace, when non-zero,
// asks for every span of that trace ID; otherwise SpanN bounds how many
// recent spans ride along. EventN bounds how many structured events of
// at least EventMin severity ride along (0 = none).
type StatsArgs struct {
	TraceN    uint32
	SpanTrace uint64
	SpanN     uint32
	EventN    uint32
	EventMin  uint8 // telemetry.Severity
}

// Encode serializes the arguments.
func (a *StatsArgs) Encode() []byte {
	var e rpc.Encoder
	e.U32(a.TraceN)
	e.U64(a.SpanTrace)
	e.U32(a.SpanN)
	e.U32(a.EventN)
	e.U8(a.EventMin)
	return e.Bytes()
}

// DecodeStatsArgs parses StatsArgs. The event fields are optional on
// the wire so a pre-events client's shorter record still decodes.
func DecodeStatsArgs(b []byte) (StatsArgs, error) {
	d := rpc.NewDecoder(b)
	a := StatsArgs{TraceN: d.U32(), SpanTrace: d.U64(), SpanN: d.U32()}
	if err := d.Err(); err != nil {
		return a, err
	}
	if len(b) > 16 {
		a.EventN = d.U32()
		a.EventMin = d.U8()
	}
	return a, d.Err()
}

// EncodeIDReply serializes a single uint64 reply (create/version).
func EncodeIDReply(id uint64) []byte {
	var e rpc.Encoder
	e.U64(id)
	return e.Bytes()
}

// DecodeIDReply parses a single uint64 reply.
func DecodeIDReply(b []byte) (uint64, error) {
	d := rpc.NewDecoder(b)
	id := d.U64()
	return id, d.Err()
}

// EncodeIDListReply serializes an object ID list.
func EncodeIDListReply(ids []uint64) []byte {
	var e rpc.Encoder
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.U64(id)
	}
	return e.Bytes()
}

// DecodeIDListReply parses an object ID list.
func DecodeIDListReply(b []byte) ([]uint64, error) {
	d := rpc.NewDecoder(b)
	n := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, d.U64())
	}
	return ids, d.Err()
}

// EncodePartReply serializes partition info.
func EncodePartReply(p object.Partition) []byte {
	var e rpc.Encoder
	e.U16(p.ID)
	e.I64(p.QuotaBlocks)
	e.I64(p.UsedBlocks)
	e.I64(p.ObjectCount)
	e.U8(uint8(p.Backend))
	return e.Bytes()
}

// DecodePartReply parses partition info.
func DecodePartReply(b []byte) (object.Partition, error) {
	d := rpc.NewDecoder(b)
	p := object.Partition{ID: d.U16(), QuotaBlocks: d.I64(), UsedBlocks: d.I64(), ObjectCount: d.I64(),
		Backend: object.BackendKind(d.U8())}
	return p, d.Err()
}
