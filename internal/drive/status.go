package drive

import (
	"errors"

	"nasd/internal/object"
	"nasd/internal/rpc"
)

// statusTable is the single place object-store errors become RPC
// statuses. Handlers never map errors ad hoc: errReply walks this
// table in order (first errors.Is match wins) and anything unlisted is
// a generic StatusError.
var statusTable = []struct {
	err    error
	status rpc.Status
}{
	{object.ErrNoObject, rpc.StatusNoObject},
	{object.ErrNoPartition, rpc.StatusNoPartition},
	{object.ErrQuota, rpc.StatusQuota},
	{object.ErrBadRange, rpc.StatusBadRequest},
	// An operation the partition's storage engine does not support
	// (e.g. copy-on-write versions on a needle partition) is a typed,
	// non-retryable client error.
	{object.ErrBackendMismatch, rpc.StatusBadRequest},
}

// statusFor maps object-store errors to RPC statuses via statusTable.
func statusFor(err error) rpc.Status {
	for _, m := range statusTable {
		if errors.Is(err, m.err) {
			return m.status
		}
	}
	return rpc.StatusError
}

func errReply(id uint64, err error) *rpc.Reply {
	return rpc.Errorf(id, statusFor(err), "%v", err)
}
