package drive

import (
	"sync"
	"time"
)

// This file carries the drive's instruction-accounting model, the
// substitute for the paper's ATOM instrumentation and Alpha on-chip
// counters (Table 1). The paper measured, for each request, the total
// instructions to service it and the fraction spent in communications
// (DCE RPC + UDP/IP), then estimated request service time on a 200 MHz
// embedded core at the measured CPI of 2.2.
//
// We reproduce the same quantities from a parametric model: a fixed
// per-request communications cost plus per-byte costs (the prototype's
// protocol stack copied and checksummed every byte, with writes slightly
// more expensive than reads), and an object-system cost with a fixed
// path, a per-byte copy term, and a cold-miss surcharge for metadata and
// disk scheduling. Constants were fit to the paper's sixteen Table 1
// cells; EXPERIMENTS.md records the per-cell deviation.

// CPU parameters used for the paper's service-time estimates.
const (
	// TargetMHz is the embedded-core clock rate of Table 1.
	TargetMHz = 200
	// TargetCPI is the measured cycles per instruction.
	TargetCPI = 2.2
)

// OpCost is the modelled instruction cost of one request.
type OpCost struct {
	Comms  uint64 // communications path (RPC, UDP/IP, interrupts, copies)
	Object uint64 // NASD object system path
}

// Total returns the total instruction count.
func (c OpCost) Total() uint64 { return c.Comms + c.Object }

// CommsPercent returns the communications share of the total.
func (c OpCost) CommsPercent() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(c.Comms) / float64(t)
}

// Time converts the instruction count to a service time on a core
// running at mhz with the given CPI.
func (c OpCost) Time(mhz float64, cpi float64) time.Duration {
	sec := float64(c.Total()) * cpi / (mhz * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// Model constants (instructions). See the fit notes above.
const (
	readCommsFixed   = 33500
	readCommsPerByte = 2.55
	readCommsPerFrag = 1600 // per 8 KB UDP fragment

	readObjFixed   = 2900
	readObjPerByte = 0.065

	readColdFixed   = 7800
	readColdPerByte = 0.137

	writeCommsFixed     = 31500
	writeCommsFirstFrag = 2.3 // per byte within the first 8 KB
	writeCommsPerByte   = 3.5 // per byte beyond the first 8 KB

	writeObjFixed   = 2800
	writeObjPerByte = 0.05

	writeColdFixed   = 7000
	writeColdPerByte = 0.135

	fragSize = 8192

	// ctrlCost approximates small control operations (getattr, create,
	// etc.): one small request plus object-system work.
	ctrlComms = 30000
	ctrlObj   = 4000
)

// CostModel returns the modelled instruction cost for op moving n bytes
// with a warm or cold drive cache.
func CostModel(op Op, n int, cold bool) OpCost {
	b := float64(n)
	frags := uint64((n + fragSize - 1) / fragSize)
	if frags == 0 {
		frags = 1
	}
	switch op {
	case OpReadObject:
		c := OpCost{
			Comms:  uint64(readCommsFixed + readCommsPerByte*b + float64(readCommsPerFrag*frags)),
			Object: uint64(readObjFixed + readObjPerByte*b),
		}
		if cold {
			c.Object += uint64(readColdFixed + readColdPerByte*b)
		}
		return c
	case OpWriteObject:
		first := b
		if first > fragSize {
			first = fragSize
		}
		rest := b - first
		c := OpCost{
			Comms:  uint64(writeCommsFixed + writeCommsFirstFrag*first + writeCommsPerByte*rest),
			Object: uint64(writeObjFixed + writeObjPerByte*b),
		}
		if cold {
			c.Object += uint64(writeColdFixed + writeColdPerByte*b)
		}
		return c
	default:
		return OpCost{Comms: ctrlComms, Object: ctrlObj}
	}
}

// Accounting accumulates modelled instruction costs per operation as a
// drive serves requests, so experiments can report Table 1 quantities
// from live traffic.
type Accounting struct {
	mu       sync.Mutex
	ops      map[Op]int64
	comms    map[Op]int64
	object   map[Op]int64
	bytesIn  int64
	bytesOut int64
}

// NewAccounting returns empty counters.
func NewAccounting() *Accounting {
	return &Accounting{
		ops:    make(map[Op]int64),
		comms:  make(map[Op]int64),
		object: make(map[Op]int64),
	}
}

// Charge records one request's modelled cost.
func (a *Accounting) Charge(op Op, cost OpCost, bytesIn, bytesOut int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ops[op]++
	a.comms[op] += int64(cost.Comms)
	a.object[op] += int64(cost.Object)
	a.bytesIn += int64(bytesIn)
	a.bytesOut += int64(bytesOut)
}

// OpStats summarizes accounting for one operation type.
type OpStats struct {
	Count       int64
	CommsInstr  int64
	ObjectInstr int64
}

// Stats returns per-op summaries and total bytes moved.
func (a *Accounting) Stats() (map[Op]OpStats, int64, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[Op]OpStats, len(a.ops))
	for op, n := range a.ops {
		out[op] = OpStats{Count: n, CommsInstr: a.comms[op], ObjectInstr: a.object[op]}
	}
	return out, a.bytesIn, a.bytesOut
}
