package drive

import (
	"nasd/internal/capability"
	"nasd/internal/qos"
	"nasd/internal/rpc"
)

// qosCostUnit is the byte span one scheduling cost unit represents: a
// 32KiB transfer (a track-sized chunk in the paper's terms) costs one
// unit, so a 1MiB write charges 32x a metadata op and WDRR fairness is
// byte-fairness, not request-count fairness.
const qosCostUnit = 32 << 10

// QoSClassify is the drive-protocol qos.Classifier: it attributes a
// request to the capability's partition tenant (the same identity
// capability.TenantKey gives the telemetry plane) and prices it by
// payload size. Management and observability ops — stats, flush, key
// changes, partition admin — return ok=false to bypass admission: an
// overloaded drive must still answer the operator asking why.
//
// Classification runs before authorization, so it trusts the encoded
// partition without verifying the capability digest. That is safe for
// scheduling: lying about your partition only changes whose queue you
// wait in, and the real authorization check still runs after admission.
func QoSClassify(req *rpc.Request) (qos.Class, bool) {
	op := Op(req.Proc)
	switch op {
	case OpReadObject, OpWriteObject, OpGetAttr, OpSetAttr, OpCreateObject,
		OpRemoveObject, OpVersionObject, OpListObjects, OpBumpVersion, OpExecute:
	default:
		return qos.Class{}, false
	}
	part, ok := qosPartition(req)
	if !ok {
		return qos.Class{}, false
	}
	bytes := len(req.Data)
	if op == OpReadObject {
		if a, err := DecodeReadArgs(req.Args); err == nil && int(a.Length) > bytes {
			bytes = int(a.Length)
		}
	}
	cost := int64((bytes + qosCostUnit - 1) / qosCostUnit)
	if cost < 1 {
		cost = 1
	}
	return qos.Class{
		Tenant: capability.TenantKey(part),
		Op:     op.String(),
		Cost:   cost,
	}, true
}

// qosPartition extracts the tenant partition: the capability's if one
// rides the request (the authoritative identity once validated), else
// the partition leading the argument record (insecure deployments).
func qosPartition(req *rpc.Request) (uint16, bool) {
	if len(req.Cap) > 0 {
		if pub, err := capability.DecodePublic(req.Cap); err == nil {
			return pub.Partition, true
		}
	}
	return reqPartition(Op(req.Proc), req.Args)
}
