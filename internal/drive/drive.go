package drive

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/bufpool"
	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/object"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// Kernel is an Active Disk extension function (Section 6): it consumes
// an object's data as a stream of chunks and returns a small result.
// Kernels run entirely on the drive; only the result crosses the
// network.
type Kernel func(params []byte, data func(off uint64, n int) ([]byte, error), size uint64) ([]byte, error)

// Config configures a drive.
type Config struct {
	// ID is the drive's identity, baked into every capability.
	ID uint64
	// Master is the root of the drive's key hierarchy. The file manager
	// holds the same master key (exchanged out of band) and derives the
	// same hierarchy, so capabilities verify with no per-capability
	// state exchange.
	Master crypt.Key
	// Secure enables capability and digest enforcement. The paper's
	// measurements ran with security disabled ("we disabled these
	// security protocols because our prototype does not currently
	// support such hardware"); functional deployments enable it.
	Secure bool
	// Clock supplies the drive's notion of time for expiry checks.
	Clock func() time.Time
	// Store carries object-system tuning.
	Store object.Config
	// Metrics is the registry the drive publishes telemetry into; nil
	// gets a private registry. Share one registry between the drive,
	// its RPC server, and an instrumented device so /metrics and the
	// stats RPC return the whole picture.
	Metrics *telemetry.Registry
	// Media, when set, supplies the media busy-time clock used to split
	// per-request service time into object-system vs media components
	// (pass the *blockdev.Instrumented wrapping the drive's device).
	Media MediaClock
	// Spans is the log the drive records request span trees into; nil
	// gets a private log. Pass the same log to the device's WithSpanLog
	// so per-I/O media spans land in the same place.
	Spans *telemetry.SpanLog
	// Events is the structured event ring the drive and its store emit
	// state transitions into (start/stop, journal recovery, needle
	// compactions); nil uses the process-wide telemetry.Events ring.
	// Multi-drive processes that want per-drive /events separation pass
	// each drive its own ring.
	Events *telemetry.EventLog
}

// Drive is a NASD drive: object store + keys + request handler.
// It implements rpc.Handler, so it can be served over any transport.
type Drive struct {
	id       uint64
	store    *object.Store
	keys     *crypt.Hierarchy
	verifier *capability.Verifier
	nonces   *crypt.NonceWindow
	secure   bool
	clock    func() time.Time
	acct     *Accounting
	tel      *driveTel

	mu      sync.Mutex
	kernels map[string]Kernel
}

// resolveMetrics gives the drive and its object store one shared
// registry (so lock-contention meters from the object/cache/layout
// layers land next to the drive's op metrics) defaulting to a private
// one, and one shared event ring defaulting to the process-wide
// telemetry.Events.
func resolveMetrics(cfg *Config) {
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.Store.Metrics == nil {
		cfg.Store.Metrics = cfg.Metrics
	}
	if cfg.Events == nil {
		cfg.Events = telemetry.Events
	}
	if cfg.Store.Events == nil {
		cfg.Store.Events = cfg.Events
	}
}

// NewFormat formats dev and returns a fresh drive.
func NewFormat(dev blockdev.Device, cfg Config) (*Drive, error) {
	resolveMetrics(&cfg)
	st, err := object.Format(dev, cfg.Store)
	if err != nil {
		return nil, err
	}
	return fromStore(st, cfg), nil
}

// Open attaches to an existing formatted device.
func Open(dev blockdev.Device, cfg Config) (*Drive, error) {
	resolveMetrics(&cfg)
	st, err := object.Open(dev, cfg.Store)
	if err != nil {
		return nil, err
	}
	d := fromStore(st, cfg)
	// Rebuild key state for existing partitions.
	for _, p := range st.Partitions() {
		if err := d.keys.AddPartition(p.ID); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func fromStore(st *object.Store, cfg Config) *Drive {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	spans := cfg.Spans
	if spans == nil {
		spans = telemetry.NewSpanLog(telemetry.DefaultSpanLogSize)
	}
	events := cfg.Events
	if events == nil {
		events = telemetry.Events
	}
	keys := crypt.NewHierarchy(cfg.Master)
	d := &Drive{
		id:       cfg.ID,
		store:    st,
		keys:     keys,
		verifier: capability.NewVerifier(keys, 0),
		nonces:   crypt.NewNonceWindow(256, 4096),
		secure:   cfg.Secure,
		clock:    clock,
		acct:     NewAccounting(),
		tel:      newDriveTel(reg, cfg.Media, spans, events),
		kernels:  make(map[string]Kernel),
	}
	events.Emitf(telemetry.SevInfo, "drive", "start", "drive %d attached (%d partitions)", cfg.ID, len(st.Partitions()))
	// Hot-path caches publish alongside the drive's op metrics: the
	// capability digest cache and the shared byte-buffer pool.
	d.verifier.Cache().Publish(reg)
	bufpool.Publish(reg)
	// The buffer cache keeps its own counters; publish them as
	// pull-style gauges so hit rates show up in every snapshot.
	reg.Func("drive.cache.hits", func() int64 { return d.store.CacheStats().Hits })
	reg.Func("drive.cache.misses", func() int64 { return d.store.CacheStats().Misses })
	reg.Func("drive.cache.prefetches", func() int64 { return d.store.CacheStats().Prefetches })
	reg.Func("drive.cache.evictions", func() int64 { return d.store.CacheStats().Evictions })
	reg.Func("drive.cache.writebacks", func() int64 { return d.store.CacheStats().WriteBacks })
	return d
}

// ID returns the drive identity.
func (d *Drive) ID() uint64 { return d.id }

// Store exposes the underlying object store (for co-located components
// such as simulations and tests; remote clients go through RPC).
func (d *Drive) Store() *object.Store { return d.store }

// Keys exposes the key hierarchy (for co-located file managers in
// tests; a real file manager derives its own from the shared master).
func (d *Drive) Keys() *crypt.Hierarchy { return d.keys }

// Accounting returns the drive's instruction accounting.
func (d *Drive) Accounting() *Accounting { return d.acct }

// RegisterKernel installs an Active Disk kernel under a name.
func (d *Drive) RegisterKernel(name string, k Kernel) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.kernels[name] = k
}

// --- Authorization -------------------------------------------------------

// authorize performs the complete drive-side admission check for a
// capability-bearing request: nonce freshness, then stateless
// capability validation (Section 4.1). It returns a non-nil reply on
// rejection. curVer is the object's current logical version (0 for
// partition-scope operations). The time spent here is the "security"
// component of the request's Table 1-style cost split, accumulated
// into ph.
func (d *Drive) authorize(req *rpc.Request, ph *phases, part uint16, obj uint64, curVer uint64, op capability.Rights, off, length uint64) *rpc.Reply {
	if !d.secure {
		return nil
	}
	start := time.Now()
	defer func() { ph.digest += time.Since(start) }()
	if err := d.nonces.Check(req.Nonce); err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusReplay, "%v", err)
	}
	pub, err := capability.DecodePublic(req.Cap)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusAuthFailure, "capability: %v", err)
	}
	// The capability's partition identity is the request's tenant for
	// telemetry attribution (capability.TenantKey), recorded even when
	// validation below rejects the request — a tenant's auth failures
	// are part of its story.
	ph.setTenant(pub.Partition)
	chk := capability.Check{
		DriveID: d.id, Part: part, Object: obj, ObjVer: curVer,
		Op: op, Offset: off, Length: length, Now: d.clock(),
	}
	body := req.AppendSigningBody(bufpool.Get(96 + len(req.Cap) + len(req.Args)))
	err = d.verifier.Validate(pub, body, req.ReqDig, chk)
	bufpool.Put(body)
	if err != nil {
		st := rpc.StatusAuthFailure
		if errors.Is(err, capability.ErrExpired) {
			// Expiry is the one renewable rejection: the wire status
			// tells clients to fetch a fresh capability and reissue
			// instead of treating the drive as hostile.
			st = rpc.StatusCapExpired
		}
		return rpc.Errorf(req.MsgID, st, "%v", err)
	}
	return nil
}

// authorizeAdmin checks a management request signed directly under a
// named drive key (master or drive key) rather than a capability.
func (d *Drive) authorizeAdmin(req *rpc.Request, ph *phases, ref KeyRef) *rpc.Reply {
	if !d.secure {
		return nil
	}
	start := time.Now()
	defer func() { ph.digest += time.Since(start) }()
	if err := d.nonces.Check(req.Nonce); err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusReplay, "%v", err)
	}
	id := crypt.KeyID{Type: crypt.KeyType(ref.Type), Partition: ref.Partition, Version: ref.Version}
	if id.Type != crypt.MasterKey && id.Type != crypt.DriveKey {
		return rpc.Errorf(req.MsgID, rpc.StatusAuthFailure, "management requires master or drive key")
	}
	key, err := d.keys.Lookup(id)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusAuthFailure, "unknown key %v", id)
	}
	body := req.AppendSigningBody(bufpool.Get(96 + len(req.Cap) + len(req.Args)))
	ok := crypt.Verify(key, body, req.ReqDig)
	bufpool.Put(body)
	if !ok {
		return rpc.Errorf(req.MsgID, rpc.StatusAuthFailure, "bad management digest")
	}
	return nil
}

// objVersion fetches an object's current logical version number.
func (d *Drive) objVersion(part uint16, obj uint64) (uint64, error) {
	a, err := d.store.GetAttr(part, obj)
	if err != nil {
		return 0, err
	}
	return a.Version, nil
}

// Handle implements rpc.Handler: it decodes, authorizes, executes, and
// charges both the modelled instruction accounting and the measured
// telemetry (service time split into digest / object-system / media)
// for one request.
func (d *Drive) Handle(req *rpc.Request) *rpc.Reply {
	op := Op(req.Proc)
	ph := &phases{}
	// Resume the caller's trace: the drive-side handler span becomes a
	// child of the client span whose context rode in the request header.
	sp := d.tel.spans.StartRemote(req.Trace.TraceID, req.Trace.Parent, "drive."+op.String())
	if mt, ok := d.tel.media.(mediaTracer); ok && sp != nil {
		// Ambient trace context for per-I/O media spans; approximate
		// under concurrent requests, exact when serialized (the same
		// caveat as the media busy-time delta).
		mt.SetTraceContext(sp.Context())
		defer mt.SetTraceContext(telemetry.SpanContext{})
	}
	start := time.Now()
	mediaBefore := d.tel.mediaNanos()
	lockBefore := d.tel.lockWaitNanos()
	rep := d.dispatch(op, req, ph)
	total := time.Since(start)
	if !ph.hasTenant {
		// No capability decoded (insecure mode, admin ops, early decode
		// failures): fall back to the partition leading the argument
		// record, which post-validation always matches the capability's.
		if part, ok := reqPartition(op, req.Args); ok {
			ph.setTenant(part)
		}
	}
	d.tel.record(op, req, rep, total, ph, d.tel.mediaNanos()-mediaBefore, sp, d.tel.lockWaitNanos()-lockBefore)
	nIn, nOut := len(req.Data), 0
	if rep != nil {
		nOut = len(rep.Data)
	}
	cold := false // refined by the caller-visible cache stats when needed
	n := nIn
	if nOut > n {
		n = nOut
	}
	d.acct.Charge(op, CostModel(op, n, cold), nIn, nOut)
	return rep
}

func (d *Drive) dispatch(op Op, req *rpc.Request, ph *phases) *rpc.Reply {
	switch op {
	case OpReadObject:
		return d.handleRead(req, ph)
	case OpWriteObject:
		return d.handleWrite(req, ph)
	case OpGetAttr:
		return d.handleGetAttr(req, ph)
	case OpSetAttr:
		return d.handleSetAttr(req, ph)
	case OpCreateObject:
		return d.handleCreate(req, ph)
	case OpRemoveObject:
		return d.handleRemove(req, ph)
	case OpVersionObject:
		return d.handleVersion(req, ph)
	case OpCreatePartition:
		return d.handleCreatePartition(req, ph)
	case OpResizePartition:
		return d.handleResizePartition(req, ph)
	case OpRemovePartition:
		return d.handleRemovePartition(req, ph)
	case OpGetPartition:
		return d.handleGetPartition(req, ph)
	case OpListObjects:
		return d.handleList(req, ph)
	case OpSetKey:
		return d.handleSetKey(req, ph)
	case OpBumpVersion:
		return d.handleBumpVersion(req, ph)
	case OpFlush:
		if err := d.store.Flush(); err != nil {
			return errReply(req.MsgID, err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case OpExecute:
		return d.handleExecute(req, ph)
	case OpGetStats:
		return d.handleStats(req)
	default:
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "unknown op %d", req.Proc)
	}
}

func (d *Drive) handleRead(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeReadArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	ver, err := d.objVersion(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	if rep := d.authorize(req, ph, a.Partition, a.Object, ver, capability.Read, a.Offset, a.Length); rep != nil {
		return rep
	}
	data, err := d.store.Read(a.Partition, a.Object, a.Offset, int(a.Length))
	if err != nil {
		return errReply(req.MsgID, err)
	}
	rep := &rpc.Reply{Status: rpc.StatusOK, Data: data}
	if len(data) > 0 {
		// The store lends read results out of the buffer pool; hand the
		// buffer back once the transport has serialized the reply. When
		// the drive is called in-process (no transport), OnSent never
		// fires and the buffer simply falls to the GC — Put is optional.
		rep.OnSent = func() { bufpool.Put(data) }
	}
	return rep
}

func (d *Drive) handleWrite(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeWriteArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	ver, err := d.objVersion(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	if rep := d.authorize(req, ph, a.Partition, a.Object, ver, capability.Write, a.Offset, uint64(len(req.Data))); rep != nil {
		return rep
	}
	if err := d.store.Write(a.Partition, a.Object, a.Offset, req.Data); err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK}
}

func (d *Drive) handleGetAttr(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeObjArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	at, err := d.store.GetAttr(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	if rep := d.authorize(req, ph, a.Partition, a.Object, at.Version, capability.GetAttr, 0, 0); rep != nil {
		return rep
	}
	return &rpc.Reply{Status: rpc.StatusOK, Args: EncodeAttrsReply(&at)}
}

func (d *Drive) handleSetAttr(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeSetAttrArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	ver, err := d.objVersion(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	if rep := d.authorize(req, ph, a.Partition, a.Object, ver, capability.SetAttr, 0, 0); rep != nil {
		return rep
	}
	if err := d.store.SetAttr(a.Partition, a.Object, a.Attrs, object.SetAttrMask(a.Mask)); err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK}
}

func (d *Drive) handleCreate(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeObjArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	// Creation uses a partition-scope capability (Object 0, version 0).
	if rep := d.authorize(req, ph, a.Partition, 0, 0, capability.CreateObj, 0, 0); rep != nil {
		return rep
	}
	id, err := d.store.Create(a.Partition)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK, Args: EncodeIDReply(id)}
}

func (d *Drive) handleRemove(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeObjArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	ver, err := d.objVersion(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	if rep := d.authorize(req, ph, a.Partition, a.Object, ver, capability.Remove, 0, 0); rep != nil {
		return rep
	}
	if err := d.store.Remove(a.Partition, a.Object); err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK}
}

func (d *Drive) handleVersion(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeObjArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	ver, err := d.objVersion(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	if rep := d.authorize(req, ph, a.Partition, a.Object, ver, capability.Version, 0, 0); rep != nil {
		return rep
	}
	id, err := d.store.VersionObject(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK, Args: EncodeIDReply(id)}
}

func (d *Drive) handleCreatePartition(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodePartArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	if rep := d.authorizeAdmin(req, ph, a.AuthKey); rep != nil {
		return rep
	}
	var cerr error
	switch a.Backend {
	case WireBackendDefault:
		cerr = d.store.CreatePartition(a.Partition, a.Quota)
	case WireBackendClassic:
		cerr = d.store.CreatePartitionBackend(a.Partition, a.Quota, object.BackendClassic)
	case WireBackendNeedle:
		cerr = d.store.CreatePartitionBackend(a.Partition, a.Quota, object.BackendNeedle)
	default:
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "unknown backend %d", a.Backend)
	}
	if cerr != nil {
		return errReply(req.MsgID, cerr)
	}
	if err := d.keys.AddPartition(a.Partition); err != nil {
		return errReply(req.MsgID, err)
	}
	// Partition management is rare and must survive power loss.
	if err := d.store.Flush(); err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK}
}

func (d *Drive) handleResizePartition(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodePartArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	if rep := d.authorizeAdmin(req, ph, a.AuthKey); rep != nil {
		return rep
	}
	if err := d.store.ResizePartition(a.Partition, a.Quota); err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK}
}

func (d *Drive) handleRemovePartition(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodePartArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	if rep := d.authorizeAdmin(req, ph, a.AuthKey); rep != nil {
		return rep
	}
	if err := d.store.RemovePartition(a.Partition); err != nil {
		return errReply(req.MsgID, err)
	}
	d.keys.RemovePartition(a.Partition)
	if err := d.store.Flush(); err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK}
}

func (d *Drive) handleGetPartition(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodePartArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	if rep := d.authorizeAdmin(req, ph, a.AuthKey); rep != nil {
		return rep
	}
	p, err := d.store.GetPartition(a.Partition)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK, Args: EncodePartReply(p)}
}

func (d *Drive) handleList(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeObjArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	// Listing is the well-known object-list object: partition-scope read.
	if rep := d.authorize(req, ph, a.Partition, 0, 0, capability.Read, 0, 0); rep != nil {
		return rep
	}
	ids, err := d.store.List(a.Partition)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK, Args: EncodeIDListReply(ids)}
}

func (d *Drive) handleSetKey(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeSetKeyArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	if rep := d.authorizeAdmin(req, ph, a.AuthKey); rep != nil {
		return rep
	}
	key, err := crypt.KeyFromBytes(a.Key)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	id := crypt.KeyID{Type: crypt.KeyType(a.Target.Type), Partition: a.Target.Partition, Version: a.Target.Version}
	if err := d.keys.SetKey(id, key); err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK}
}

func (d *Drive) handleBumpVersion(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeObjArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	ver, err := d.objVersion(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	// Version bumps are the revocation path: they require SetAttr rights.
	if rep := d.authorize(req, ph, a.Partition, a.Object, ver, capability.SetAttr, 0, 0); rep != nil {
		return rep
	}
	v, err := d.store.BumpVersion(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	return &rpc.Reply{Status: rpc.StatusOK, Args: EncodeIDReply(v)}
}

func (d *Drive) handleExecute(req *rpc.Request, ph *phases) *rpc.Reply {
	a, err := DecodeExecuteArgs(req.Args)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "%v", err)
	}
	at, err := d.store.GetAttr(a.Partition, a.Object)
	if err != nil {
		return errReply(req.MsgID, err)
	}
	// Executing a kernel reads the object: Read rights required.
	if rep := d.authorize(req, ph, a.Partition, a.Object, at.Version, capability.Read, 0, 0); rep != nil {
		return rep
	}
	d.mu.Lock()
	k, ok := d.kernels[a.Kernel]
	d.mu.Unlock()
	if !ok {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "unknown kernel %q", a.Kernel)
	}
	result, err := k(a.Params, func(off uint64, n int) ([]byte, error) {
		return d.store.Read(a.Partition, a.Object, off, n)
	}, at.Size)
	if err != nil {
		return rpc.Errorf(req.MsgID, rpc.StatusError, "kernel: %v", err)
	}
	return &rpc.Reply{Status: rpc.StatusOK, Data: result}
}

// Serve is a convenience that wraps the drive in an RPC server on l.
// It blocks; run on its own goroutine and close the returned server to
// stop. Options (e.g. rpc.WithWorkers) tune per-connection dispatch.
// The server shares the drive's telemetry registry, so one snapshot
// covers both RPC-plane and drive-plane metrics with NASD op names.
func (d *Drive) Serve(l rpc.Listener, opts ...rpc.ServerOption) *rpc.Server {
	opts = append([]rpc.ServerOption{
		rpc.WithMetrics(d.tel.reg),
		rpc.WithProcNames(func(p uint16) string { return Op(p).String() }),
	}, opts...)
	srv := rpc.NewServer(d, opts...)
	go srv.Serve(l)
	return srv
}

var _ rpc.Handler = (*Drive)(nil)

// String describes the drive.
func (d *Drive) String() string { return fmt.Sprintf("nasd-drive-%d", d.id) }
