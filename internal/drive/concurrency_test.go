package drive

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/crypt"
	"nasd/internal/object"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// newPlainDrive builds a non-secure drive (capability checks off, as in
// the paper's NASD-aware benchmarks) over dev.
func newPlainDrive(t testing.TB, dev blockdev.Device, store object.Config) *Drive {
	t.Helper()
	d, err := NewFormat(dev, Config{ID: 1, Master: crypt.NewRandomKey(), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Handle(&rpc.Request{Proc: uint16(OpCreatePartition),
		Args: (&PartArgs{Partition: 1}).Encode()})
	if rep.Status != rpc.StatusOK {
		t.Fatalf("create partition: %v", rep.Status)
	}
	return d
}

func driveCreate(t testing.TB, d *Drive) uint64 {
	t.Helper()
	rep := d.Handle(&rpc.Request{Proc: uint16(OpCreateObject),
		Args: (&ObjArgs{Partition: 1}).Encode()})
	if rep.Status != rpc.StatusOK {
		t.Fatalf("create: %v %s", rep.Status, rep.Data)
	}
	id, err := DecodeIDReply(rep.Args)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestConcurrentDriveMixedOps drives one drive's Handle entry point —
// what every rpc.WithWorkers worker calls — from many goroutines with a
// mix of create/write/read/resize/remove plus shared-object reads.
// Run under -race by scripts/check.sh; correctness checks catch lost
// updates and torn reads.
func TestConcurrentDriveMixedOps(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 16384)
	d := newPlainDrive(t, dev, object.Config{CacheBlocks: 64})
	shared := driveCreate(t, d)
	sharedData := bytes.Repeat([]byte{1}, 1024)
	if rep := d.Handle(&rpc.Request{Proc: uint16(OpWriteObject),
		Args: (&WriteArgs{Partition: 1, Object: shared}).Encode(),
		Data: sharedData}); rep.Status != rpc.StatusOK {
		t.Fatalf("seed shared: %v", rep.Status)
	}

	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag := byte(w + 2)
			for i := 0; i < iters; i++ {
				id := driveCreate(t, d)
				payload := bytes.Repeat([]byte{tag}, 1300)
				rep := d.Handle(&rpc.Request{Proc: uint16(OpWriteObject),
					Args: (&WriteArgs{Partition: 1, Object: id}).Encode(), Data: payload})
				if rep.Status != rpc.StatusOK {
					errs <- fmt.Errorf("worker %d: write: %v", w, rep.Status)
					return
				}
				rep = d.Handle(&rpc.Request{Proc: uint16(OpReadObject),
					Args: (&ReadArgs{Partition: 1, Object: id, Length: uint64(len(payload))}).Encode()})
				if rep.Status != rpc.StatusOK {
					errs <- fmt.Errorf("worker %d: read: %v", w, rep.Status)
					return
				}
				if !bytes.Equal(rep.Data, payload) {
					errs <- fmt.Errorf("worker %d: lost update: read back wrong bytes", w)
					return
				}
				rep = d.Handle(&rpc.Request{Proc: uint16(OpSetAttr),
					Args: (&SetAttrArgs{Partition: 1, Object: id, Mask: uint32(object.SetSize),
						Attrs: object.Attributes{Size: 500}}).Encode()})
				if rep.Status != rpc.StatusOK {
					errs <- fmt.Errorf("worker %d: resize: %v", w, rep.Status)
					return
				}
				rep = d.Handle(&rpc.Request{Proc: uint16(OpRemoveObject),
					Args: (&ObjArgs{Partition: 1, Object: id}).Encode()})
				if rep.Status != rpc.StatusOK {
					errs <- fmt.Errorf("worker %d: remove: %v", w, rep.Status)
					return
				}
				// Shared-object read: must never tear.
				rep = d.Handle(&rpc.Request{Proc: uint16(OpReadObject),
					Args: (&ReadArgs{Partition: 1, Object: shared, Length: uint64(len(sharedData))}).Encode()})
				if rep.Status != rpc.StatusOK {
					errs <- fmt.Errorf("worker %d: shared read: %v", w, rep.Status)
					return
				}
				if !bytes.Equal(rep.Data, sharedData) {
					errs <- fmt.Errorf("worker %d: torn shared read", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Accounting must have survived the storm.
	rep := d.Handle(&rpc.Request{Proc: uint16(OpGetPartition),
		Args: (&PartArgs{Partition: 1}).Encode()})
	if rep.Status != rpc.StatusOK {
		t.Fatalf("getpartition: %v", rep.Status)
	}
	p, err := DecodePartReply(rep.Args)
	if err != nil {
		t.Fatal(err)
	}
	if p.ObjectCount != 1 { // only the shared object remains
		t.Fatalf("object count = %d, want 1", p.ObjectCount)
	}
	// Lock telemetry flowed into the drive's shared registry.
	snap := d.tel.reg.Snapshot()
	if snap.Counters["object.lock.acquire"] == 0 {
		t.Fatal("object.lock.acquire counter never incremented")
	}
}

// latencyDev models a command-queued disk: every data-block read costs
// fixed service latency, but requests from different callers overlap
// freely (no shared lock around the sleep). Only marker-tagged data
// blocks pay the latency, so metadata reads (onode table, pointer
// blocks) stay fast — the point of the benchmark is object data
// concurrency, not metadata traffic. On a single-CPU host, throughput
// scaling with workers can only come from overlapping these sleeps,
// which the old global store mutex made impossible.
type latencyDev struct {
	blockdev.Device
	latency time.Duration
}

const benchMarker = 0xA5

func (d *latencyDev) ReadBlock(b int64, buf []byte) error {
	if err := d.Device.ReadBlock(b, buf); err != nil {
		return err
	}
	if len(buf) >= 2 && buf[0] == benchMarker && buf[len(buf)-1] == benchMarker {
		time.Sleep(d.latency)
	}
	return nil
}

// BenchmarkConcurrentDrive measures drive read throughput with N
// concurrent workers on N distinct objects over a 100µs-latency device.
// workers=1 is the serialized baseline — exactly the throughput the old
// single-store-mutex design would deliver at any worker count, since it
// admitted one object operation at a time. The acceptance bar is ≥2x
// the baseline at 4 workers; EXPERIMENTS.md records measured runs.
func BenchmarkConcurrentDrive(b *testing.B) {
	const (
		blockSize      = 4096
		blocksPerObj   = 64
		deviceLatency  = 100 * time.Microsecond
		maxWorkerCount = 8
	)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			mem := blockdev.NewMemDisk(blockSize, 8192)
			dev := &latencyDev{Device: mem, latency: deviceLatency}
			d := newPlainDrive(b, dev, object.Config{
				CacheBlocks:     8,  // far below the working set: reads miss
				ReadaheadBlocks: -1, // no prefetch: one media read per request
				Metrics:         telemetry.NewRegistry(),
			})
			ids := make([]uint64, maxWorkerCount)
			payload := bytes.Repeat([]byte{benchMarker}, blockSize)
			for i := range ids {
				ids[i] = driveCreate(b, d)
				for fb := 0; fb < blocksPerObj; fb++ {
					rep := d.Handle(&rpc.Request{Proc: uint16(OpWriteObject),
						Args: (&WriteArgs{Partition: 1, Object: ids[i], Offset: uint64(fb) * blockSize}).Encode(),
						Data: payload})
					if rep.Status != rpc.StatusOK {
						b.Fatalf("seed write: %v", rep.Status)
					}
				}
			}
			var next atomic.Int64
			b.SetBytes(blockSize)
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					id := ids[w]
					for {
						n := next.Add(1)
						if n > int64(b.N) {
							return
						}
						off := uint64(n%blocksPerObj) * blockSize
						rep := d.Handle(&rpc.Request{Proc: uint16(OpReadObject),
							Args: (&ReadArgs{Partition: 1, Object: id, Offset: off, Length: blockSize}).Encode()})
						if rep.Status != rpc.StatusOK {
							b.Errorf("read: %v", rep.Status)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
