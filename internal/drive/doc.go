// Package drive implements a NASD drive: the object system plus
// capability enforcement plus the RPC interface of Section 4.1 — fewer
// than 20 requests covering object data and attributes, object and
// partition lifecycle, copy-on-write versioning, and key management.
// The package also carries the drive-side instruction-accounting model
// calibrated against Table 1 of the paper.
//
// Alongside that modelled cost breakdown the drive measures the real
// one: every request's service time is split into the same three
// components as Table 1 — digest (capability/MAC work, timed inside
// authorize), media (the instrumented block device's busy-time delta),
// and object system (the remainder) — and published into a
// telemetry.Registry as the drive.op.<op>.* family, next to cache
// hit/miss counters and a bounded trace ring of recent requests keyed
// by the client's request ID. The stats op returns the whole snapshot
// over the NASD interface itself; see DESIGN.md §5.
package drive
