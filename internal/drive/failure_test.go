package drive

import (
	"errors"
	"testing"

	"nasd/internal/blockdev"
	"nasd/internal/crypt"
	"nasd/internal/rpc"
)

// Failure injection at the media layer: the drive must surface storage
// errors as RPC error replies, never panics or silent corruption.

func failureRig(t *testing.T) (*Drive, *blockdev.MemDisk, uint64) {
	t.Helper()
	dev := blockdev.NewMemDisk(4096, 4096)
	d, err := NewFormat(dev, Config{ID: 1, Master: crypt.NewRandomKey()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store().CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}
	obj, err := d.Store().Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Write(1, obj, 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	// Push the data to the media so reads must touch the device.
	if err := d.Store().Flush(); err != nil {
		t.Fatal(err)
	}
	return d, dev, obj
}

// readReq builds a read request for the insecure drive.
func readReq(obj uint64, off, n uint64) *rpc.Request {
	return &rpc.Request{
		Proc: uint16(OpReadObject),
		Args: (&ReadArgs{Partition: 1, Object: obj, Offset: off, Length: n}).Encode(),
	}
}

func TestCorruptBlockSurfacesAsError(t *testing.T) {
	_, dev, obj := failureRig(t)
	// Reopen through a fresh drive so its cache is cold and reads must
	// touch the (corrupted) media.
	d2, err := Open(dev, Config{ID: 1, Master: crypt.NewRandomKey()})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the whole device while d2's block and metadata caches are
	// still cold: the read must touch the media somewhere (onode walk or
	// data fill) and surface the failure as an error reply. No probe
	// read first — a probe would warm the caches, and cache hits
	// legitimately never see the media again.
	for b := int64(0); b < 4096; b++ {
		dev.CorruptBlock(b)
	}
	rep := d2.Handle(readReq(obj, 0, 64<<10))
	if rep.Status != rpc.StatusError {
		t.Fatalf("corrupt media read status = %v", rep.Status)
	}
}

func TestTransientErrorThenRecovery(t *testing.T) {
	_, dev, obj := failureRig(t)
	d2, err := Open(dev, Config{ID: 1, Master: crypt.NewRandomKey()})
	if err != nil {
		t.Fatal(err)
	}
	// Find the first block the object read actually touches by
	// injecting transient errors until one fires.
	var hit int64 = -1
	for b := int64(1); b < 4096; b++ {
		dev.FailNext(b, errors.New("transient"))
	}
	rep := d2.Handle(readReq(obj, 0, 4096))
	if rep.Status == rpc.StatusError {
		hit = 1
	}
	if hit < 0 {
		t.Skip("read served fully from cache; transient injection not observable")
	}
	// All injected errors are one-shot, but each attempt may consume
	// only the first one it trips over; bounded retries must converge.
	for attempt := 0; attempt < 16; attempt++ {
		rep = d2.Handle(readReq(obj, 0, 4096))
		if rep.Status == rpc.StatusOK {
			return
		}
	}
	t.Fatalf("reads never recovered from transient errors: %v (%s)", rep.Status, rep.Msg)
}

func TestDeadDeviceFailsCleanly(t *testing.T) {
	d, dev, obj := failureRig(t)
	dev.Fail()
	// Reads may still be served from the drive's cache; writes that
	// must allocate/flush will eventually fail, and nothing panics.
	rep := d.Handle(&rpc.Request{
		Proc: uint16(OpWriteObject),
		Args: (&WriteArgs{Partition: 1, Object: obj, Offset: 1 << 20}).Encode(),
		Data: make([]byte, 1<<20),
	})
	flush := d.Handle(&rpc.Request{Proc: uint16(OpFlush)})
	if rep.Status == rpc.StatusOK && flush.Status == rpc.StatusOK {
		t.Fatal("dead device never surfaced an error")
	}
	dev.Heal()
	if rep := d.Handle(readReq(obj, 0, 4096)); rep.Status != rpc.StatusOK {
		t.Fatalf("read after heal: %v", rep.Status)
	}
}
