package drive

import (
	"math"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/crypt"
	"nasd/internal/rpc"
)

// Table 1 of the paper: total instructions and communications share for
// read/write x cold/warm x four request sizes, plus the estimated
// operation times at 200 MHz / CPI 2.2.
type table1Row struct {
	op       Op
	cold     bool
	size     int
	instr    float64 // paper's total instruction count
	commsPct float64 // paper's communications percentage
	msec     float64 // paper's estimated operation time
}

var table1 = []table1Row{
	{OpReadObject, true, 1, 46e3, 70, 0.51},
	{OpReadObject, true, 8 << 10, 67e3, 79, 0.74},
	{OpReadObject, true, 64 << 10, 247e3, 90, 2.7},
	{OpReadObject, true, 512 << 10, 1488e3, 92, 16.4},
	{OpReadObject, false, 1, 38e3, 92, 0.42},
	{OpReadObject, false, 8 << 10, 57e3, 94, 0.63},
	{OpReadObject, false, 64 << 10, 224e3, 97, 2.5},
	{OpReadObject, false, 512 << 10, 1410e3, 97, 15.6},
	{OpWriteObject, true, 1, 43e3, 73, 0.47},
	{OpWriteObject, true, 8 << 10, 71e3, 82, 0.78},
	{OpWriteObject, true, 64 << 10, 269e3, 92, 3.0},
	{OpWriteObject, true, 512 << 10, 1947e3, 96, 21.3},
	{OpWriteObject, false, 1, 37e3, 92, 0.41},
	{OpWriteObject, false, 8 << 10, 57e3, 94, 0.64},
	{OpWriteObject, false, 64 << 10, 253e3, 97, 2.8},
	{OpWriteObject, false, 512 << 10, 1871e3, 97, 20.4},
}

// TestCostModelMatchesTable1 checks the instruction model lands within
// 20% of every Table 1 cell (EXPERIMENTS.md reports the exact
// deviations). The paper's warm-cache small-request comms share is the
// loosest fit; totals are much tighter.
func TestCostModelMatchesTable1(t *testing.T) {
	for _, row := range table1 {
		c := CostModel(row.op, row.size, row.cold)
		relErr := math.Abs(float64(c.Total())-row.instr) / row.instr
		if relErr > 0.20 {
			t.Errorf("%v cold=%v size=%d: model %d instr, paper %.0f (%.1f%% off)",
				row.op, row.cold, row.size, c.Total(), row.instr, 100*relErr)
		}
		// Communications dominates everywhere in the paper (70-97%);
		// the model must reproduce that domination.
		if pct := c.CommsPercent(); pct < row.commsPct-15 || pct > row.commsPct+10 {
			t.Errorf("%v cold=%v size=%d: comms%% = %.1f, paper %.0f",
				row.op, row.cold, row.size, pct, row.commsPct)
		}
		// Estimated op time at 200 MHz / CPI 2.2 within 20%.
		gotMs := c.Time(TargetMHz, TargetCPI).Seconds() * 1e3
		if math.Abs(gotMs-row.msec)/row.msec > 0.20 {
			t.Errorf("%v cold=%v size=%d: time %.2f ms, paper %.2f ms",
				row.op, row.cold, row.size, gotMs, row.msec)
		}
	}
}

func TestCostModelMonotonicInSize(t *testing.T) {
	for _, op := range []Op{OpReadObject, OpWriteObject} {
		prev := uint64(0)
		for _, size := range []int{1, 1024, 8192, 65536, 524288} {
			c := CostModel(op, size, false).Total()
			if c <= prev {
				t.Errorf("%v: cost not increasing at size %d", op, size)
			}
			prev = c
		}
	}
}

func TestCostModelColdCostsMore(t *testing.T) {
	for _, size := range []int{1, 8192, 65536, 524288} {
		warm := CostModel(OpReadObject, size, false).Total()
		cold := CostModel(OpReadObject, size, true).Total()
		if cold <= warm {
			t.Errorf("size %d: cold (%d) not above warm (%d)", size, cold, warm)
		}
	}
}

func TestOpCostTime(t *testing.T) {
	c := OpCost{Comms: 100_000, Object: 100_000}
	// 200k instructions at CPI 2.2 on 200 MHz = 2.2 ms.
	got := c.Time(200, 2.2)
	want := 2200 * time.Microsecond
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Fatalf("time = %v, want %v", got, want)
	}
}

func TestOpString(t *testing.T) {
	if OpReadObject.String() != "read" || OpSetKey.String() != "setkey" {
		t.Fatal("op names wrong")
	}
	if Op(999).String() == "" {
		t.Fatal("unknown op empty")
	}
}

func TestUnknownOpRejected(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 1024)
	d, err := NewFormat(dev, Config{ID: 1, Master: crypt.NewRandomKey()})
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Handle(&rpc.Request{Proc: 999})
	if rep.Status != rpc.StatusBadRequest {
		t.Fatalf("status = %v", rep.Status)
	}
}

func TestMalformedArgsRejected(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 1024)
	d, err := NewFormat(dev, Config{ID: 1, Master: crypt.NewRandomKey()})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []Op{OpReadObject, OpWriteObject, OpGetAttr, OpSetAttr,
		OpCreateObject, OpCreatePartition, OpSetKey, OpExecute} {
		rep := d.Handle(&rpc.Request{Proc: uint16(op), Args: []byte{1}})
		if rep.Status != rpc.StatusBadRequest {
			t.Errorf("%v with truncated args: %v", op, rep.Status)
		}
	}
}

func TestOpenRebuildsPartitionKeys(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 2048)
	master := crypt.NewRandomKey()
	d, err := NewFormat(dev, Config{ID: 1, Master: master})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store().CreatePartition(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Keys().AddPartition(3); err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Flush(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dev, Config{ID: 1, Master: master})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d2.Keys().CurrentWorkingKey(3); err != nil {
		t.Fatalf("partition keys not rebuilt: %v", err)
	}
}

func TestProtoRoundTrips(t *testing.T) {
	ra := ReadArgs{Partition: 2, Object: 42, Offset: 100, Length: 4096}
	got, err := DecodeReadArgs(ra.Encode())
	if err != nil || got != ra {
		t.Fatalf("ReadArgs: %+v, %v", got, err)
	}
	wa := WriteArgs{Partition: 1, Object: 7, Offset: 9}
	gw, err := DecodeWriteArgs(wa.Encode())
	if err != nil || gw != wa {
		t.Fatalf("WriteArgs: %+v, %v", gw, err)
	}
	sa := SetAttrArgs{Partition: 1, Object: 2, Mask: 5}
	sa.Attrs.Size = 100
	sa.Attrs.CreateTime = time.Unix(1234, 0).UTC()
	copy(sa.Attrs.Uninterp[:], []byte("attrs"))
	gs, err := DecodeSetAttrArgs(sa.Encode())
	if err != nil || gs.Attrs.Size != 100 || gs.Attrs.CreateTime.Unix() != 1234 {
		t.Fatalf("SetAttrArgs: %+v, %v", gs, err)
	}
	ka := SetKeyArgs{
		Target:  KeyRef{Type: 3, Partition: 1, Version: 2},
		Key:     make([]byte, crypt.KeySize),
		AuthKey: KeyRef{Type: 1},
	}
	gk, err := DecodeSetKeyArgs(ka.Encode())
	if err != nil || gk.Target != ka.Target || len(gk.Key) != crypt.KeySize {
		t.Fatalf("SetKeyArgs: %+v, %v", gk, err)
	}
	ea := ExecuteArgs{Partition: 1, Object: 2, Kernel: "freqset", Params: []byte("p")}
	ge, err := DecodeExecuteArgs(ea.Encode())
	if err != nil || ge.Kernel != "freqset" || string(ge.Params) != "p" {
		t.Fatalf("ExecuteArgs: %+v, %v", ge, err)
	}
	ids, err := DecodeIDListReply(EncodeIDListReply([]uint64{1, 2, 3}))
	if err != nil || len(ids) != 3 || ids[2] != 3 {
		t.Fatalf("IDList: %v, %v", ids, err)
	}
}

func TestKernelExecution(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 2048)
	d, err := NewFormat(dev, Config{ID: 1, Master: crypt.NewRandomKey()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store().CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}
	id, err := d.Store().Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store().Write(1, id, 0, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	// A kernel that sums bytes on the drive.
	d.RegisterKernel("sum", func(params []byte, data func(uint64, int) ([]byte, error), size uint64) ([]byte, error) {
		var total byte
		b, err := data(0, int(size))
		if err != nil {
			return nil, err
		}
		for _, v := range b {
			total += v
		}
		return []byte{total}, nil
	})
	args := (&ExecuteArgs{Partition: 1, Object: id, Kernel: "sum"}).Encode()
	rep := d.Handle(&rpc.Request{Proc: uint16(OpExecute), Args: args})
	if rep.Status != rpc.StatusOK || len(rep.Data) != 1 || rep.Data[0] != 15 {
		t.Fatalf("kernel result = %+v", rep)
	}
	// Unknown kernels are rejected.
	args = (&ExecuteArgs{Partition: 1, Object: id, Kernel: "nope"}).Encode()
	if rep := d.Handle(&rpc.Request{Proc: uint16(OpExecute), Args: args}); rep.Status != rpc.StatusBadRequest {
		t.Fatalf("unknown kernel status = %v", rep.Status)
	}
}
