package crypt

import (
	"testing"
	"testing/quick"
)

func TestMACDeterministicAndKeyed(t *testing.T) {
	k1 := DeriveKey(Key{}, "test", 1)
	k2 := DeriveKey(Key{}, "test", 2)
	msg := []byte("read object 42")
	d1 := MAC(k1, msg)
	if d1 != MAC(k1, msg) {
		t.Fatal("MAC not deterministic")
	}
	if d1 == MAC(k2, msg) {
		t.Fatal("different keys produced identical digests")
	}
	if d1 == MAC(k1, []byte("read object 43")) {
		t.Fatal("different messages produced identical digests")
	}
}

func TestMAC2MatchesConcat(t *testing.T) {
	k := NewRandomKey()
	f := func(a, b []byte) bool {
		return MAC2(k, a, b) == MAC(k, append(append([]byte{}, a...), b...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerify(t *testing.T) {
	k := NewRandomKey()
	msg := []byte("hello")
	d := MAC(k, msg)
	if !Verify(k, msg, d) {
		t.Fatal("valid digest rejected")
	}
	d[0] ^= 1
	if Verify(k, msg, d) {
		t.Fatal("tampered digest accepted")
	}
	if Verify(NewRandomKey(), msg, MAC(k, msg)) {
		t.Fatal("wrong key accepted")
	}
}

func TestKeyFromBytes(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, KeySize-1)); err == nil {
		t.Fatal("short key accepted")
	}
	b := make([]byte, KeySize)
	b[3] = 9
	k, err := KeyFromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if k[3] != 9 {
		t.Fatal("bytes not copied")
	}
}

func TestDeriveKeyIndependence(t *testing.T) {
	root := NewRandomKey()
	a := DeriveKey(root, "x", 1)
	b := DeriveKey(root, "x", 2)
	c := DeriveKey(root, "y", 1)
	if a == b || a == c || b == c {
		t.Fatal("derived keys collide")
	}
	if a == root {
		t.Fatal("derived key equals parent")
	}
}

func TestHierarchyPartitionLifecycle(t *testing.T) {
	h := NewHierarchy(NewRandomKey())
	if err := h.AddPartition(1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddPartition(1); err == nil {
		t.Fatal("duplicate AddPartition accepted")
	}
	id, k, err := h.CurrentWorkingKey(1)
	if err != nil {
		t.Fatal(err)
	}
	if id != (KeyID{WorkingKey, 1, 1}) {
		t.Fatalf("id = %v", id)
	}
	got, err := h.Lookup(id)
	if err != nil || got != k {
		t.Fatalf("lookup mismatch: %v", err)
	}
	pid, _, err := h.CurrentPartitionKey(1)
	if err != nil || pid != (KeyID{PartitionKey, 1, 1}) {
		t.Fatalf("partition key id = %v err = %v", pid, err)
	}
	h.RemovePartition(1)
	if _, _, err := h.CurrentWorkingKey(1); err == nil {
		t.Fatal("keys survived RemovePartition")
	}
}

func TestWorkingKeyRotationInvalidatesOld(t *testing.T) {
	h := NewHierarchy(NewRandomKey())
	if err := h.AddPartition(7); err != nil {
		t.Fatal(err)
	}
	oldID, oldKey, _ := h.CurrentWorkingKey(7)
	newID, err := h.RotateWorkingKey(7)
	if err != nil {
		t.Fatal(err)
	}
	if newID.Version != oldID.Version+1 {
		t.Fatalf("new version = %d", newID.Version)
	}
	if _, err := h.Lookup(oldID); err == nil {
		t.Fatal("old working key still resolves after rotation")
	}
	newKey, err := h.Lookup(newID)
	if err != nil {
		t.Fatal(err)
	}
	if newKey == oldKey {
		t.Fatal("rotation did not change the key")
	}
}

func TestRotateUnknownPartition(t *testing.T) {
	h := NewHierarchy(NewRandomKey())
	if _, err := h.RotateWorkingKey(99); err == nil {
		t.Fatal("rotation on unknown partition succeeded")
	}
}

func TestSetKeyVersionDiscipline(t *testing.T) {
	h := NewHierarchy(NewRandomKey())
	if err := h.AddPartition(1); err != nil {
		t.Fatal(err)
	}
	k := NewRandomKey()
	if err := h.SetKey(KeyID{WorkingKey, 1, 3}, k); err == nil {
		t.Fatal("version skip accepted")
	}
	if err := h.SetKey(KeyID{WorkingKey, 1, 2}, k); err != nil {
		t.Fatal(err)
	}
	got, err := h.Lookup(KeyID{WorkingKey, 1, 2})
	if err != nil || got != k {
		t.Fatal("explicit key not installed")
	}
}

func TestSetMasterKeyRederivesNothingAutomatically(t *testing.T) {
	h := NewHierarchy(NewRandomKey())
	if err := h.AddPartition(1); err != nil {
		t.Fatal(err)
	}
	_, before, _ := h.CurrentWorkingKey(1)
	if err := h.SetKey(KeyID{MasterKey, 0, 0}, NewRandomKey()); err != nil {
		t.Fatal(err)
	}
	_, after, _ := h.CurrentWorkingKey(1)
	if before != after {
		t.Fatal("master key change silently changed partition keys")
	}
}

func TestLookupMalformedIDs(t *testing.T) {
	h := NewHierarchy(NewRandomKey())
	if _, err := h.Lookup(KeyID{MasterKey, 1, 0}); err == nil {
		t.Fatal("master key with partition accepted")
	}
	if _, err := h.Lookup(KeyID{DriveKey, 0, 2}); err == nil {
		t.Fatal("drive key with version accepted")
	}
	if _, err := h.Lookup(KeyID{WorkingKey, 5, 1}); err == nil {
		t.Fatal("unknown partition working key resolved")
	}
}

func TestKeyTypeString(t *testing.T) {
	for typ, want := range map[KeyType]string{
		MasterKey: "master", DriveKey: "drive",
		PartitionKey: "partition", WorkingKey: "working",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", typ, typ.String())
		}
	}
}

func TestNonceMonotonicAccepted(t *testing.T) {
	w := NewNonceWindow(8, 10)
	for i := uint64(1); i <= 100; i++ {
		if err := w.Check(Nonce{Client: 1, Counter: i}); err != nil {
			t.Fatalf("counter %d rejected: %v", i, err)
		}
	}
}

func TestNonceReplayRejected(t *testing.T) {
	w := NewNonceWindow(8, 10)
	n := Nonce{Client: 1, Counter: 5}
	if err := w.Check(n); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(n); err != ErrReplay {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestNonceReorderingWithinWindow(t *testing.T) {
	w := NewNonceWindow(8, 10)
	for _, c := range []uint64{10, 12, 11, 15, 13} {
		if err := w.Check(Nonce{Client: 2, Counter: c}); err != nil {
			t.Fatalf("counter %d rejected: %v", c, err)
		}
	}
	// 12 replayed
	if err := w.Check(Nonce{Client: 2, Counter: 12}); err != ErrReplay {
		t.Fatal("replay within window accepted")
	}
}

func TestNonceBehindWindowRejected(t *testing.T) {
	w := NewNonceWindow(8, 10)
	if err := w.Check(Nonce{Client: 3, Counter: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(Nonce{Client: 3, Counter: 900}); err != ErrReplay {
		t.Fatal("ancient nonce accepted")
	}
}

func TestNonceClientsIndependent(t *testing.T) {
	w := NewNonceWindow(8, 10)
	if err := w.Check(Nonce{Client: 1, Counter: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(Nonce{Client: 2, Counter: 5}); err != nil {
		t.Fatal("same counter on different client rejected")
	}
}

func TestNonceClientEviction(t *testing.T) {
	w := NewNonceWindow(8, 4)
	for c := uint64(1); c <= 10; c++ {
		if err := w.Check(Nonce{Client: c, Counter: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Clients() > 4 {
		t.Fatalf("clients = %d, want <= 4", w.Clients())
	}
}

func TestNonceWindowDefaults(t *testing.T) {
	w := NewNonceWindow(0, 0)
	if err := w.Check(Nonce{Client: 1, Counter: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMACPropertyTamperDetection(t *testing.T) {
	k := NewRandomKey()
	f := func(msg []byte, flip uint16) bool {
		if len(msg) == 0 {
			return true
		}
		d := MAC(k, msg)
		mutated := append([]byte{}, msg...)
		mutated[int(flip)%len(mutated)] ^= 1 << (flip % 8)
		if string(mutated) == string(msg) {
			return true // flip of zero bits can't happen: 1<<x is never 0, so unreachable
		}
		return !Verify(k, mutated, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
