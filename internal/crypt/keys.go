// Package crypt implements the cryptographic substrate of a NASD drive:
// keyed message digests, the paper's four-level key hierarchy, and a
// nonce window for replay defence.
//
// The paper proposes hardware MACs built from multiple DES blocks
// [Verbauwhede87, Knudsen96]; the prototype ran with security disabled.
// We substitute HMAC-SHA256 from the standard library — the modern
// realization of the keyed digests [Bellare96] the design calls for —
// and allow per-drive disabling exactly as the paper's measurements did.
package crypt

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// KeySize is the size in bytes of every key in the hierarchy.
const KeySize = 32

// DigestSize is the size in bytes of a keyed digest.
const DigestSize = sha256.Size

// Key is a secret key for keyed digests.
type Key [KeySize]byte

// Digest is a keyed message digest.
type Digest [DigestSize]byte

// NewRandomKey returns a fresh key from the system entropy source.
func NewRandomKey() Key {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		panic("crypt: entropy source failed: " + err.Error())
	}
	return k
}

// KeyFromBytes builds a key from b, which must be exactly KeySize long.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, fmt.Errorf("crypt: key must be %d bytes, got %d", KeySize, len(b))
	}
	copy(k[:], b)
	return k, nil
}

// MAC computes the keyed digest of msg under k.
func MAC(k Key, msg []byte) Digest {
	m := hmac.New(sha256.New, k[:])
	m.Write(msg)
	var d Digest
	m.Sum(d[:0])
	return d
}

// MAC2 computes the keyed digest of the concatenation of two byte slices
// without allocating the concatenation.
func MAC2(k Key, a, b []byte) Digest {
	m := hmac.New(sha256.New, k[:])
	m.Write(a)
	m.Write(b)
	var d Digest
	m.Sum(d[:0])
	return d
}

// Verify reports whether d is the keyed digest of msg under k, in
// constant time.
func Verify(k Key, msg []byte, d Digest) bool {
	want := MAC(k, msg)
	return subtle.ConstantTimeCompare(want[:], d[:]) == 1
}

// Equal compares two digests in constant time.
func Equal(a, b Digest) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// DeriveKey derives a child key from parent for the given label and
// index, giving each level of the hierarchy an independent key.
func DeriveKey(parent Key, label string, index uint64) Key {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], index)
	d := MAC2(parent, []byte("nasd-derive:"+label+":"), idx[:])
	var k Key
	copy(k[:], d[:KeySize])
	return k
}

// KeyType identifies a level of the paper's four-level key hierarchy
// (Section 4.1 / [Gobioff97]): the master key manages the hierarchy, the
// drive key mints drive-wide capabilities, and per-partition partition
// and working keys mint object capabilities. Working keys are the
// routinely rotated level; partition keys survive working-key changes.
type KeyType uint8

const (
	// MasterKey is the root of the hierarchy, held by the drive owner.
	MasterKey KeyType = iota
	// DriveKey manages partitions and mints drive-scope capabilities.
	DriveKey
	// PartitionKey mints capabilities for one partition.
	PartitionKey
	// WorkingKey is the frequently-rotated capability-minting key for
	// one partition.
	WorkingKey
)

// String returns the key type name.
func (t KeyType) String() string {
	switch t {
	case MasterKey:
		return "master"
	case DriveKey:
		return "drive"
	case PartitionKey:
		return "partition"
	case WorkingKey:
		return "working"
	}
	return fmt.Sprintf("KeyType(%d)", uint8(t))
}

// KeyID names one key in a drive's hierarchy: its level, the partition
// it belongs to (zero for master/drive keys) and a version that
// increments on rotation.
type KeyID struct {
	Type      KeyType
	Partition uint16
	Version   uint32
}

// String formats the key ID.
func (id KeyID) String() string {
	return fmt.Sprintf("%s/p%d/v%d", id.Type, id.Partition, id.Version)
}

// ErrNoSuchKey is returned when a key lookup fails.
var ErrNoSuchKey = errors.New("crypt: no such key")

// ErrUnauthorized is returned when a key-management operation is
// attempted with insufficient authority.
var ErrUnauthorized = errors.New("crypt: key operation not authorized")

// Hierarchy holds a drive's key hierarchy. The master and drive keys are
// singletons; partition and working keys exist per partition and are
// versioned so rotation invalidates outstanding capabilities minted
// under old working keys without touching other partitions. It is safe
// for concurrent use: drives consult it from every connection.
type Hierarchy struct {
	mu     sync.RWMutex
	master Key
	drive  Key
	// current versions and keys per partition
	partVer map[uint16]uint32
	partKey map[KeyID]Key
	workVer map[uint16]uint32
	workKey map[KeyID]Key
}

// NewHierarchy creates a hierarchy rooted at master. The drive key is
// derived from the master key.
func NewHierarchy(master Key) *Hierarchy {
	return &Hierarchy{
		master:  master,
		drive:   DeriveKey(master, "drive", 0),
		partVer: make(map[uint16]uint32),
		partKey: make(map[KeyID]Key),
		workVer: make(map[uint16]uint32),
		workKey: make(map[KeyID]Key),
	}
}

// AddPartition installs version-1 partition and working keys for
// partition p. It is idempotent only for new partitions; re-adding an
// existing partition is an error.
func (h *Hierarchy) AddPartition(p uint16) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.partVer[p]; ok {
		return fmt.Errorf("crypt: partition %d already has keys", p)
	}
	h.partVer[p] = 1
	h.workVer[p] = 1
	h.partKey[KeyID{PartitionKey, p, 1}] = DeriveKey(h.drive, "partition", uint64(p)<<32|1)
	h.workKey[KeyID{WorkingKey, p, 1}] = DeriveKey(h.drive, "working", uint64(p)<<32|1)
	return nil
}

// RemovePartition discards all keys for partition p.
func (h *Hierarchy) RemovePartition(p uint16) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id := range h.partKey {
		if id.Partition == p {
			delete(h.partKey, id)
		}
	}
	for id := range h.workKey {
		if id.Partition == p {
			delete(h.workKey, id)
		}
	}
	delete(h.partVer, p)
	delete(h.workVer, p)
}

// SetKey explicitly installs a key (the NASD interface's set-security-key
// request). Installing a master key requires presenting nothing here —
// authorization is enforced by the drive layer, which requires the
// request to be authenticated under the current master or drive key.
// Installing a partition or working key bumps that partition's current
// version.
func (h *Hierarchy) SetKey(id KeyID, k Key) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch id.Type {
	case MasterKey:
		h.master = k
		return nil
	case DriveKey:
		h.drive = k
		return nil
	case PartitionKey:
		cur := h.partVer[id.Partition]
		if id.Version != cur+1 {
			return fmt.Errorf("crypt: partition key version must be %d, got %d", cur+1, id.Version)
		}
		h.partVer[id.Partition] = id.Version
		h.partKey[id] = k
		return nil
	case WorkingKey:
		cur := h.workVer[id.Partition]
		if id.Version != cur+1 {
			return fmt.Errorf("crypt: working key version must be %d, got %d", cur+1, id.Version)
		}
		h.workVer[id.Partition] = id.Version
		h.workKey[id] = k
		return nil
	}
	return fmt.Errorf("crypt: unknown key type %v", id.Type)
}

// RotateWorkingKey derives and installs a fresh working key for
// partition p, returning its new ID. Capabilities minted under the old
// key stop verifying, which is the paper's bulk-revocation mechanism.
func (h *Hierarchy) RotateWorkingKey(p uint16) (KeyID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur, ok := h.workVer[p]
	if !ok {
		return KeyID{}, ErrNoSuchKey
	}
	id := KeyID{WorkingKey, p, cur + 1}
	k := DeriveKey(h.drive, "working", uint64(p)<<32|uint64(id.Version))
	h.workVer[p] = id.Version
	h.workKey[id] = k
	return id, nil
}

// Lookup returns the key named by id. Only current-version partition and
// working keys resolve: once rotated, old versions are forgotten, so
// capabilities minted under them can no longer be validated (that is the
// point of rotation).
func (h *Hierarchy) Lookup(id KeyID) (Key, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	switch id.Type {
	case MasterKey:
		if id.Partition != 0 || id.Version != 0 {
			return Key{}, ErrNoSuchKey
		}
		return h.master, nil
	case DriveKey:
		if id.Partition != 0 || id.Version != 0 {
			return Key{}, ErrNoSuchKey
		}
		return h.drive, nil
	case PartitionKey:
		if h.partVer[id.Partition] != id.Version {
			return Key{}, ErrNoSuchKey
		}
		k, ok := h.partKey[id]
		if !ok {
			return Key{}, ErrNoSuchKey
		}
		return k, nil
	case WorkingKey:
		if h.workVer[id.Partition] != id.Version {
			return Key{}, ErrNoSuchKey
		}
		k, ok := h.workKey[id]
		if !ok {
			return Key{}, ErrNoSuchKey
		}
		return k, nil
	}
	return Key{}, ErrNoSuchKey
}

// CurrentWorkingKey returns the current working key and its ID for
// partition p.
func (h *Hierarchy) CurrentWorkingKey(p uint16) (KeyID, Key, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	v, ok := h.workVer[p]
	if !ok {
		return KeyID{}, Key{}, ErrNoSuchKey
	}
	id := KeyID{WorkingKey, p, v}
	k, ok := h.workKey[id]
	if !ok {
		return KeyID{}, Key{}, ErrNoSuchKey
	}
	return id, k, nil
}

// CurrentPartitionKey returns the current partition key and its ID.
func (h *Hierarchy) CurrentPartitionKey(p uint16) (KeyID, Key, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	v, ok := h.partVer[p]
	if !ok {
		return KeyID{}, Key{}, ErrNoSuchKey
	}
	id := KeyID{PartitionKey, p, v}
	k, ok := h.partKey[id]
	if !ok {
		return KeyID{}, Key{}, ErrNoSuchKey
	}
	return id, k, nil
}
