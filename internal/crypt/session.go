package crypt

import (
	"container/list"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"hash"
	"sync"
	"sync/atomic"

	"nasd/internal/telemetry"
)

// Signer holds reusable HMAC state for one key. hmac.New hashes the key
// into inner/outer pads; Signer pays that once and then serves every
// subsequent digest with a Reset + Write + Sum, which is the dominant
// saving on the drive's per-request digest path (the paper's Table 1
// "security" cost component). Safe for concurrent use; concurrent
// digests under one Signer serialize on its mutex, so share one Signer
// per session/capability, not one per drive.
type Signer struct {
	mu sync.Mutex
	h  hash.Hash
}

// NewSigner returns a reusable HMAC-SHA256 signer for k.
func NewSigner(k Key) *Signer {
	return &Signer{h: hmac.New(sha256.New, k[:])}
}

// MAC computes the keyed digest of the concatenation of parts.
func (s *Signer) MAC(parts ...[]byte) Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h.Reset()
	for _, p := range parts {
		s.h.Write(p)
	}
	var d Digest
	s.h.Sum(d[:0])
	return d
}

// Verify reports whether d is the keyed digest of msg under the
// signer's key, in constant time.
func (s *Signer) Verify(msg []byte, d Digest) bool {
	got := s.MAC(msg)
	return subtle.ConstantTimeCompare(got[:], d[:]) == 1
}

// DigestCache is a small fixed-capacity LRU memoizing the results of
// keyed-digest derivations on hot validation paths — canonically the
// capability private portion, which is a pure function of the public
// fields and the minting key. It deliberately caches derived secrets,
// not authorization decisions: users must still perform every
// non-digest check (key lookup, expiry, rights, region) per request, so
// key rotation and expiry revoke exactly as they do on the cold path.
//
// K is the memo key (must be comparable; e.g. a capability Public
// struct) and V the derived value. Safe for concurrent use.
type DigestCache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[K]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry[K comparable, V any] struct {
	key K
	val V
}

// NewDigestCache returns a cache holding at most capacity entries
// (minimum 1).
func NewDigestCache[K comparable, V any](capacity int) *DigestCache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &DigestCache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *DigestCache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry[K, V]).val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put inserts or refreshes k → v, evicting the least recently used
// entry when full.
func (c *DigestCache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry[K, V]{key: k, val: v})
	if c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.items, old.Value.(*cacheEntry[K, V]).key)
		c.evictions.Add(1)
	}
}

// Purge drops every entry (e.g. on explicit key installation, as a
// belt-and-braces measure beyond the per-request key lookup).
func (c *DigestCache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Len returns the current number of cached entries.
func (c *DigestCache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of DigestCache counters.
type CacheStats struct {
	Hits, Misses, Evictions, Size int64
}

// Stats snapshots the cache counters.
func (c *DigestCache[K, V]) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      int64(c.Len()),
	}
}

// Publish registers the cache's counters as pull gauges in reg under
// the "crypt.digest_cache." prefix.
func (c *DigestCache[K, V]) Publish(reg *telemetry.Registry) {
	reg.Func("crypt.digest_cache.hits", c.hits.Load)
	reg.Func("crypt.digest_cache.misses", c.misses.Load)
	reg.Func("crypt.digest_cache.evictions", c.evictions.Load)
	reg.Func("crypt.digest_cache.size", func() int64 { return int64(c.Len()) })
}
