package crypt

import (
	"fmt"
	"sync"
	"testing"
)

func TestSignerMatchesMAC(t *testing.T) {
	k := NewRandomKey()
	s := NewSigner(k)
	msgs := [][]byte{nil, {}, []byte("a"), []byte("the quick brown fox"), make([]byte, 4096)}
	for i, msg := range msgs {
		if got, want := s.MAC(msg), MAC(k, msg); got != want {
			t.Fatalf("msg %d: Signer.MAC != MAC", i)
		}
	}
	// Multi-part digests match MAC2 and survive interleaved reuse.
	a, b := []byte("part-one"), []byte("part-two")
	if got, want := s.MAC(a, b), MAC2(k, a, b); got != want {
		t.Fatal("Signer.MAC(a, b) != MAC2(k, a, b)")
	}
	if got, want := s.MAC(a), MAC(k, a); got != want {
		t.Fatal("Signer state polluted by previous multi-part digest")
	}
	if !s.Verify(a, MAC(k, a)) {
		t.Fatal("Signer.Verify rejected a valid digest")
	}
	if s.Verify(a, MAC(k, b)) {
		t.Fatal("Signer.Verify accepted a digest of different data")
	}
}

func TestSignerConcurrent(t *testing.T) {
	k := NewRandomKey()
	s := NewSigner(k)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("goroutine-%d", g))
			want := MAC(k, msg)
			for i := 0; i < 200; i++ {
				if s.MAC(msg) != want {
					t.Errorf("goroutine %d: digest changed under concurrency", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDigestCacheLRU(t *testing.T) {
	c := NewDigestCache[int, string](2)
	c.Put(1, "one")
	c.Put(2, "two")
	if v, ok := c.Get(1); !ok || v != "one" {
		t.Fatal("missing entry 1")
	}
	c.Put(3, "three") // evicts 2 (LRU — 1 was just touched)
	if _, ok := c.Get(2); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("entry 1 should have survived (recently used)")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("entry 3 should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, size 2", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 hits, 1 miss", st)
	}
	c.Put(3, "III") // refresh in place, no eviction
	if v, _ := c.Get(3); v != "III" {
		t.Fatal("Put did not refresh existing entry")
	}
	if c.Stats().Evictions != 1 {
		t.Fatal("refresh should not evict")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("Purge left entries behind")
	}
}

func TestDigestCacheConcurrent(t *testing.T) {
	c := NewDigestCache[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 100
				c.Put(k, k*2)
				if v, ok := c.Get(k); ok && v != k*2 {
					t.Errorf("got %d for key %d", v, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
