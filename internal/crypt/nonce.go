package crypt

import (
	"errors"
	"sync"
)

// A Nonce accompanies every authenticated NASD request (Figure 5:
// "protects against replayed and delayed requests"). It is a per-client
// monotonically increasing counter; the drive keeps only a small
// high-water mark per client rather than per-capability state, in
// keeping with the paper's stateless-validation design.
type Nonce struct {
	Client  uint64 // client identity chosen at session setup
	Counter uint64 // strictly increasing per client
}

// ErrReplay is returned for a nonce at or below the client's high-water
// mark.
var ErrReplay = errors.New("crypt: replayed or delayed request rejected")

// NonceWindow validates nonces. It remembers, per client, the highest
// counter seen plus a small window of recently seen counters below it so
// modest reordering is tolerated while replays are rejected. It is safe
// for concurrent use: a drive checks nonces from many connections.
type NonceWindow struct {
	mu         sync.Mutex
	window     uint64
	high       map[uint64]uint64
	seen       map[uint64]map[uint64]bool
	maxClients int
}

// NewNonceWindow returns a window tolerating reordering of up to window
// positions and tracking at most maxClients clients (oldest are evicted
// arbitrarily beyond that; a drive would bound this table in SRAM).
func NewNonceWindow(window uint64, maxClients int) *NonceWindow {
	if window == 0 {
		window = 64
	}
	if maxClients <= 0 {
		maxClients = 4096
	}
	return &NonceWindow{
		window:     window,
		high:       make(map[uint64]uint64),
		seen:       make(map[uint64]map[uint64]bool),
		maxClients: maxClients,
	}
}

// Check validates n and records it. It returns ErrReplay if the nonce
// was already used or fell behind the window.
func (w *NonceWindow) Check(n Nonce) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	h, ok := w.high[n.Client]
	if !ok {
		if len(w.high) >= w.maxClients {
			w.evictOne()
		}
		w.high[n.Client] = n.Counter
		w.seen[n.Client] = map[uint64]bool{n.Counter: true}
		return nil
	}
	switch {
	case n.Counter > h:
		w.high[n.Client] = n.Counter
		s := w.seen[n.Client]
		s[n.Counter] = true
		for c := range s {
			if c+w.window < n.Counter {
				delete(s, c)
			}
		}
		return nil
	case n.Counter+w.window < h:
		return ErrReplay
	default:
		s := w.seen[n.Client]
		if s[n.Counter] {
			return ErrReplay
		}
		s[n.Counter] = true
		return nil
	}
}

func (w *NonceWindow) evictOne() {
	for c := range w.high {
		delete(w.high, c)
		delete(w.seen, c)
		return
	}
}

// Clients returns the number of tracked clients.
func (w *NonceWindow) Clients() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.high)
}
