// Package pfs implements NASD PFS, the paper's minimal parallel
// filesystem (Section 5.2): a simple UNIX-flavoured file interface
// extended with SIO-style parallel access, backed by Cheops striped
// objects. The filesystem manages names and access; file data lives in
// Cheops logical objects whose components are NASD objects, so large
// parallel requests fan out to drives directly from each client.
package pfs

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nasd/internal/capability"
	"nasd/internal/cheops"
	"nasd/internal/client"
)

// Errors.
var (
	ErrNotFound = errors.New("pfs: no such file")
	ErrExists   = errors.New("pfs: file exists")
)

// FS is a NASD PFS instance: a name service over Cheops objects.
type FS struct {
	mgr   *cheops.Manager
	mu    sync.Mutex
	names map[string]uint64

	// Defaults for new files.
	pattern cheops.Pattern
	unit    int64
	width   int
	nextPl  int
}

// Config selects the default layout for new files.
type Config struct {
	Pattern    cheops.Pattern
	StripeUnit int64 // default 512 KB, the Figure 9 stripe unit
	Width      int   // default: all drives
}

// NewFS builds a filesystem over mgr.
func NewFS(mgr *cheops.Manager, cfg Config) *FS {
	if cfg.StripeUnit == 0 {
		cfg.StripeUnit = 512 << 10
	}
	return &FS{
		mgr:     mgr,
		names:   make(map[string]uint64),
		pattern: cfg.Pattern,
		unit:    cfg.StripeUnit,
		width:   cfg.Width,
	}
}

// Create makes a new file with the filesystem's default layout.
func (fs *FS) Create(ctx context.Context, name string, width int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.names[name]; ok {
		return ErrExists
	}
	if width <= 0 {
		width = fs.width
	}
	id, err := fs.mgr.Create(ctx, fs.pattern, fs.unit, width, fs.nextPl)
	if err != nil {
		return err
	}
	fs.nextPl++
	fs.names[name] = id
	return nil
}

// Remove deletes a file.
func (fs *FS) Remove(ctx context.Context, name string) error {
	fs.mu.Lock()
	id, ok := fs.names[name]
	if ok {
		delete(fs.names, name)
	}
	fs.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	return fs.mgr.Remove(ctx, id)
}

// List returns the file names.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.names))
	for n := range fs.names {
		out = append(out, n)
	}
	return out
}

// File is an open PFS file bound to one client's drive connections.
type File struct {
	fs   *FS
	name string
	obj  *cheops.Object
}

// Open opens name for I/O through the caller's drive connections.
// Each parallel client opens the file itself, obtaining its own
// component capabilities — that is what lets bandwidth scale.
func (fs *FS) Open(name string, drives []*client.Drive, rights capability.Rights) (*File, error) {
	fs.mu.Lock()
	id, ok := fs.names[name]
	fs.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	obj, err := cheops.OpenObject(fs.mgr, drives, id, rights)
	if err != nil {
		return nil, fmt.Errorf("pfs: opening %s: %w", name, err)
	}
	return &File{fs: fs, name: name, obj: obj}, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file size at open time (refresh with Stat).
func (f *File) Size() uint64 { return f.obj.Size() }

// Stat refreshes and returns the file size from the manager.
func (f *File) Stat() (uint64, error) {
	fs := f.fs
	fs.mu.Lock()
	id, ok := fs.names[f.name]
	fs.mu.Unlock()
	if !ok {
		return 0, ErrNotFound
	}
	desc, err := fs.mgr.Stat(id)
	if err != nil {
		return 0, err
	}
	return desc.Size, nil
}

// ReadAt reads n bytes at offset off (SIO-style explicit-offset read;
// no shared file pointer, so parallel clients never contend on one).
func (f *File) ReadAt(ctx context.Context, off uint64, n int) ([]byte, error) {
	return f.obj.ReadAt(ctx, off, n)
}

// WriteAt writes data at offset off.
func (f *File) WriteAt(ctx context.Context, off uint64, data []byte) error {
	return f.obj.WriteAt(ctx, off, data)
}

// ListIO issues a batch of reads concurrently and returns the results
// in order (the SIO low-level interface's list-of-requests entry
// point).
func (f *File) ListIO(ctx context.Context, offs []uint64, sizes []int) ([][]byte, error) {
	if len(offs) != len(sizes) {
		return nil, errors.New("pfs: ListIO length mismatch")
	}
	out := make([][]byte, len(offs))
	errs := make([]error, len(offs))
	var wg sync.WaitGroup
	for i := range offs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = f.obj.ReadAt(ctx, offs[i], sizes[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
