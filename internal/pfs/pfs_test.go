package pfs

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/cheops"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/mining"
	"nasd/internal/rpc"
)

var clientSeq atomic.Uint64

var testCtx = context.Background()

type cluster struct {
	mgr  *cheops.Manager
	dial func() []*client.Drive
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	var refs []cheops.DriveRef
	var lns []*rpc.InProcListener
	for i := 0; i < n; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 16384)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		l := rpc.NewInProcListener("d")
		srv := drv.Serve(l)
		t.Cleanup(srv.Close)
		lns = append(lns, l)
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c := client.New(conn, uint64(1+i), clientSeq.Add(1)+500)
		t.Cleanup(func() { c.Close() })
		refs = append(refs, cheops.DriveRef{Client: c, DriveID: uint64(1 + i), Master: master})
	}
	mgr, err := cheops.NewManager(testCtx, cheops.ManagerConfig{Drives: refs}, true)
	if err != nil {
		t.Fatal(err)
	}
	dial := func() []*client.Drive {
		var out []*client.Drive
		for i, l := range lns {
			conn, err := l.Dial()
			if err != nil {
				t.Fatal(err)
			}
			c := client.New(conn, uint64(1+i), clientSeq.Add(1)+500)
			t.Cleanup(func() { c.Close() })
			out = append(out, c)
		}
		return out
	}
	return &cluster{mgr: mgr, dial: dial}
}

func TestCreateOpenReadWrite(t *testing.T) {
	cl := newCluster(t, 4)
	fs := NewFS(cl.mgr, Config{StripeUnit: 64 << 10, Width: 4})
	if err := fs.Create(testCtx, "/data", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(testCtx, "/data", 0); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	f, err := fs.Open("/data", cl.dial(), capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("pfs!"), 100_000) // 400 KB across stripes
	if err := f.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	size, err := f.Stat()
	if err != nil || size != uint64(len(data)) {
		t.Fatalf("stat = %d, %v", size, err)
	}
}

func TestParallelClientsShareFile(t *testing.T) {
	cl := newCluster(t, 4)
	fs := NewFS(cl.mgr, Config{StripeUnit: 32 << 10, Width: 4})
	if err := fs.Create(testCtx, "/shared", 0); err != nil {
		t.Fatal(err)
	}
	writer, err := fs.Open("/shared", cl.dial(), capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 256<<10)
	if err := writer.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	// Four independent clients each read a quarter in parallel.
	quarter := len(data) / 4
	results := make([][]byte, 4)
	errs := make([]error, 4)
	done := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			f, err := fs.Open("/shared", cl.dial(), capability.Read)
			if err != nil {
				errs[i] = err
				done <- i
				return
			}
			results[i], errs[i] = f.ReadAt(testCtx, uint64(i*quarter), quarter)
			done <- i
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], data[i*quarter:(i+1)*quarter]) {
			t.Fatalf("client %d read wrong data", i)
		}
	}
}

func TestListIO(t *testing.T) {
	cl := newCluster(t, 2)
	fs := NewFS(cl.mgr, Config{StripeUnit: 16 << 10, Width: 2})
	if err := fs.Create(testCtx, "/batch", 0); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/batch", cl.dial(), capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("0123456789"), 10_000)
	if err := f.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	outs, err := f.ListIO(testCtx, []uint64{0, 50_000, 99_990}, []int{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]byte{data[:10], data[50_000:50_010], data[99_990:100_000]} {
		if !bytes.Equal(outs[i], want) {
			t.Fatalf("listio[%d] = %q want %q", i, outs[i], want)
		}
	}
	if _, err := f.ListIO(testCtx, []uint64{0}, []int{1, 2}); err == nil {
		t.Fatal("mismatched ListIO accepted")
	}
}

func TestRemoveAndList(t *testing.T) {
	cl := newCluster(t, 2)
	fs := NewFS(cl.mgr, Config{Width: 2})
	if err := fs.Create(testCtx, "/a", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(testCtx, "/b", 0); err != nil {
		t.Fatal(err)
	}
	if got := fs.List(); len(got) != 2 {
		t.Fatalf("list = %v", got)
	}
	if err := fs.Remove(testCtx, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(testCtx, "/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	if _, err := fs.Open("/a", cl.dial(), capability.Read); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open removed: %v", err)
	}
}

// TestMiningOverPFS runs the full parallel pass-1 scan over a striped
// PFS file — the Figure 9 functional pipeline end to end.
func TestMiningOverPFS(t *testing.T) {
	cl := newCluster(t, 4)
	fs := NewFS(cl.mgr, Config{StripeUnit: 512 << 10, Width: 4})
	data := mining.Generate(mining.GenConfig{CatalogSize: 300, TotalBytes: 4 * mining.ChunkSize, Seed: 11})
	if err := fs.Create(testCtx, "/sales", 0); err != nil {
		t.Fatal(err)
	}
	loader, err := fs.Open("/sales", cl.dial(), capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	// Load in 1 MB writes.
	for off := 0; off < len(data); off += 1 << 20 {
		end := off + 1<<20
		if end > len(data) {
			end = len(data)
		}
		if err := loader.WriteAt(testCtx, uint64(off), data[off:end]); err != nil {
			t.Fatal(err)
		}
	}

	want := make([]uint32, 300)
	mining.CountItems(data, want)

	// Three parallel mining clients, each with its own connections.
	var sources []mining.Source
	for i := 0; i < 3; i++ {
		f, err := fs.Open("/sales", cl.dial(), capability.Read)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, f)
	}
	got, err := mining.ParallelCount(testCtx, sources, uint64(len(data)), mining.ParallelConfig{Catalog: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mining counts over PFS differ from direct scan")
	}
}
