package nasdafs

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/filemgr"
	"nasd/internal/rpc"
)

var clientIDs atomic.Uint64

var testCtx = context.Background()

func newEnv(t *testing.T, quota uint64) (*Manager, []*client.Drive, func() []*client.Drive) {
	t.Helper()
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 8192)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 1, Master: master, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	l := rpc.NewInProcListener("d")
	srv := drv.Serve(l)
	t.Cleanup(srv.Close)
	mk := func() []*client.Drive {
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c := client.New(conn, 1, 7000+clientIDs.Add(1))
		t.Cleanup(func() { c.Close() })
		return []*client.Drive{c}
	}
	fm, err := filemgr.Format(testCtx, filemgr.Config{
		Drives: []filemgr.DriveTarget{{Client: mk()[0], DriveID: 1, Master: master}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(fm, quota, mk()), mk(), mk
}

var alice = filemgr.Identity{UID: 10}
var bob = filemgr.Identity{UID: 20}

func TestFetchStoreRoundTrip(t *testing.T) {
	mgr, drives, _ := newEnv(t, 0)
	c := NewClient(mgr, drives, alice)
	if err := c.Create(testCtx, "/vol/..", 0); err == nil {
		t.Fatal("bad path accepted")
	}
	if err := c.Create(testCtx, "/f", 0o644); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("afs"), 5000)
	if err := c.StoreData(testCtx, "/f", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchData(testCtx, "/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch: %v", err)
	}
}

func TestWholeFileCachingServesLocally(t *testing.T) {
	mgr, drives, _ := newEnv(t, 0)
	c := NewClient(mgr, drives, alice)
	if err := c.Create(testCtx, "/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreData(testCtx, "/f", []byte("cached")); err != nil {
		t.Fatal(err)
	}
	if !c.Cached("/f") {
		t.Fatal("file not cached after store")
	}
	// Fetch is served from cache: no new callback registration needed.
	before := mgr.CallbackHolders("/f")
	if _, err := c.FetchData(testCtx, "/f"); err != nil {
		t.Fatal(err)
	}
	if mgr.CallbackHolders("/f") != before {
		t.Fatal("cache hit registered a new callback")
	}
}

func TestCallbackBreakOnWriteCapability(t *testing.T) {
	mgr, drives, mk := newEnv(t, 0)
	writer := NewClient(mgr, drives, alice)
	reader := NewClient(mgr, mk(), bob)
	if err := writer.Create(testCtx, "/shared", 0o666); err != nil {
		t.Fatal(err)
	}
	if err := writer.StoreData(testCtx, "/shared", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.FetchData(testCtx, "/shared"); err != nil {
		t.Fatal(err)
	}
	if !reader.Cached("/shared") {
		t.Fatal("reader did not cache")
	}
	// Writer stores again: the *issuance* of the write capability must
	// break the reader's callback, before any data actually moves.
	if err := writer.StoreData(testCtx, "/shared", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if reader.Cached("/shared") {
		t.Fatal("reader cache still valid after write capability issued")
	}
	if reader.CallbackBreaks() == 0 {
		t.Fatal("no callback break delivered")
	}
	// Reader refetches and sees v2 (sequential consistency).
	got, err := reader.FetchData(testCtx, "/shared")
	if err != nil || string(got) != "v2" {
		t.Fatalf("refetch = %q, %v", got, err)
	}
}

func TestNewCallbacksBlockedDuringOutstandingWrite(t *testing.T) {
	mgr, drives, mk := newEnv(t, 0)
	writer := NewClient(mgr, drives, alice)
	reader := NewClient(mgr, mk(), bob)
	if err := writer.Create(testCtx, "/busy", 0o666); err != nil {
		t.Fatal(err)
	}
	if err := writer.StoreData(testCtx, "/busy", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Acquire a write capability and hold it.
	if _, _, err := mgr.AcquireWrite(testCtx, writer, alice, "/busy", 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.TryAcquireRead(testCtx, reader, bob, "/busy"); !errors.Is(err, ErrWriteLocked) {
		t.Fatalf("read callback issued during outstanding write: %v", err)
	}
	// Relinquish unblocks.
	if err := mgr.Relinquish(testCtx, writer, "/busy"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.TryAcquireRead(testCtx, reader, bob, "/busy"); err != nil {
		t.Fatalf("read after relinquish: %v", err)
	}
}

func TestQuotaEscrowSettledOnRelinquish(t *testing.T) {
	mgr, drives, _ := newEnv(t, 100_000)
	c := NewClient(mgr, drives, alice)
	if err := c.Create(testCtx, "/q", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreData(testCtx, "/q", make([]byte, 40_000)); err != nil {
		t.Fatal(err)
	}
	if used := mgr.VolumeUsed(); used != 40_000 {
		t.Fatalf("settled usage = %d, want 40000", used)
	}
	// Escrow beyond remaining quota is refused up front.
	if _, _, err := mgr.AcquireWrite(testCtx, c, alice, "/q", 200_000); !errors.Is(err, ErrQuota) {
		t.Fatalf("oversized escrow: %v", err)
	}
	// Shrinking settles downward.
	if err := c.StoreData(testCtx, "/q", make([]byte, 10_000)); err != nil {
		t.Fatal(err)
	}
	if used := mgr.VolumeUsed(); used != 10_000 {
		t.Fatalf("usage after shrink = %d, want 10000", used)
	}
}

func TestEscrowRangeEnforcedByDrive(t *testing.T) {
	mgr, drives, _ := newEnv(t, 0)
	c := NewClient(mgr, drives, alice)
	if err := c.Create(testCtx, "/r", 0o644); err != nil {
		t.Fatal(err)
	}
	h, cap, err := mgr.AcquireWrite(testCtx, c, alice, "/r", 8192)
	if err != nil {
		t.Fatal(err)
	}
	// Within escrow: fine.
	if err := drives[h.Drive].Write(testCtx, &cap, h.Partition, h.Object, 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	// Beyond escrow: the drive itself rejects (quota enforced without
	// the file manager seeing the write).
	if err := drives[h.Drive].Write(testCtx, &cap, h.Partition, h.Object, 8192, []byte("x")); !errors.Is(err, client.ErrAuth) {
		t.Fatalf("write beyond escrow: %v", err)
	}
	if err := mgr.Relinquish(testCtx, c, "/r"); err != nil {
		t.Fatal(err)
	}
}

func TestExpiredWriteCapabilityUnblocksReaders(t *testing.T) {
	mgr, drives, mk := newEnv(t, 0)
	mgr.clock = func() time.Time { return time.Now() }
	writer := NewClient(mgr, drives, alice)
	reader := NewClient(mgr, mk(), bob)
	if err := writer.Create(testCtx, "/exp", 0o666); err != nil {
		t.Fatal(err)
	}
	if err := writer.StoreData(testCtx, "/exp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.AcquireWrite(testCtx, writer, alice, "/exp", 100); err != nil {
		t.Fatal(err)
	}
	// Force the outstanding capability to look expired.
	mgr.mu.Lock()
	mgr.writes["/exp"].expiry = time.Now().Add(-time.Second)
	mgr.mu.Unlock()
	// The reader is admitted because the expiry bounds the wait.
	if _, _, err := mgr.TryAcquireRead(testCtx, reader, bob, "/exp"); err != nil {
		t.Fatalf("read blocked by expired write capability: %v", err)
	}
}

func TestStoreDataShrinksFile(t *testing.T) {
	mgr, drives, _ := newEnv(t, 0)
	c := NewClient(mgr, drives, alice)
	if err := c.Create(testCtx, "/shrink", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreData(testCtx, "/shrink", bytes.Repeat([]byte{1}, 10_000)); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreData(testCtx, "/shrink", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	size, err := c.FetchStatus(testCtx, "/shrink")
	if err != nil || size != 4 {
		t.Fatalf("size = %d, %v", size, err)
	}
	// A cold client sees exactly the new content.
	mgrView, err := c.FetchData(testCtx, "/shrink")
	if err != nil || string(mgrView) != "tiny" {
		t.Fatalf("content = %q, %v", mgrView, err)
	}
}
