// Package nasdafs is the paper's AFS port to NASD (Section 5.1).
//
// AFS differs from NFS in three ways the port must preserve:
//
//   - Clients cache whole files and are notified by callbacks when a
//     cached copy may be stale. Because the file manager "no longer
//     knows that a write operation arrived at a drive", callbacks are
//     broken as soon as a write capability is *issued*, and issuing new
//     callbacks on a file with an outstanding write capability is
//     blocked until the capability is relinquished or expires.
//   - Capabilities are acquired and relinquished by explicit RPCs (AFS
//     clients parse directories locally, so there is no lookup to
//     piggyback on).
//   - Per-volume quota is enforced by the file manager even though it
//     no longer sees writes: write capabilities escrow space via their
//     byte-range restriction, and the file manager settles the quota by
//     examining the object's size when the capability is relinquished.
package nasdafs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/filemgr"
	"nasd/internal/object"
)

func objectAttrsWithSize(size uint64) object.Attributes {
	return object.Attributes{Size: size}
}

func objectSetSizeMask() object.SetAttrMask { return object.SetSize }

// Errors.
var (
	// ErrWriteLocked means a write capability is outstanding and new
	// callbacks are blocked; retry after the writer relinquishes.
	ErrWriteLocked = errors.New("nasdafs: write capability outstanding")
	// ErrQuota means the volume quota cannot cover the requested escrow.
	ErrQuota = errors.New("nasdafs: volume quota exceeded")
)

// CallbackReceiver is notified when a cached copy may go stale. The
// in-process Client implements it directly; afsrpc delivers breaks to
// remote receivers over their callback channel.
type CallbackReceiver interface {
	BreakCallback(path string)
}

// ManagerAPI is the protocol between AFS clients and the AFS manager.
// *Manager implements it in-process; afsrpc.Client implements it across
// the network.
type ManagerAPI interface {
	AcquireRead(ctx context.Context, rcv CallbackReceiver, id filemgr.Identity, path string) (filemgr.Handle, capability.Capability, error)
	TryAcquireRead(ctx context.Context, rcv CallbackReceiver, id filemgr.Identity, path string) (filemgr.Handle, capability.Capability, error)
	AcquireWrite(ctx context.Context, rcv CallbackReceiver, id filemgr.Identity, path string, escrowLen uint64) (filemgr.Handle, capability.Capability, error)
	Relinquish(ctx context.Context, rcv CallbackReceiver, path string) error
	Truncate(ctx context.Context, h filemgr.Handle, size uint64) error
	CreateFile(ctx context.Context, id filemgr.Identity, path string, mode uint32) error
}

// Manager is the AFS file manager personality: the filemgr plus
// callback and escrow state. It holds its own drive connections for
// attribute reads and truncation (it must not depend on any client's
// connectivity).
type Manager struct {
	fm     *filemgr.FM
	drives []*client.Drive
	quota  uint64 // volume quota in bytes (0 = unlimited)

	mu        sync.Mutex
	cond      *sync.Cond
	callbacks map[string]map[CallbackReceiver]bool
	writes    map[string]*escrowState
	used      uint64 // settled volume usage in bytes
	escrowed  uint64 // outstanding escrow beyond settled usage
	clock     func() time.Time
}

type escrowState struct {
	holder   CallbackReceiver
	handle   filemgr.Handle
	prevSize uint64
	escrow   uint64 // escrowed object length (capability range end)
	expiry   time.Time
}

// NewManager wraps fm with AFS semantics. quotaBytes bounds the volume
// (0 = unlimited). drives are the manager's own connections, indexed
// like fm's drive table.
func NewManager(fm *filemgr.FM, quotaBytes uint64, drives []*client.Drive) *Manager {
	m := &Manager{
		fm:        fm,
		drives:    drives,
		quota:     quotaBytes,
		callbacks: make(map[string]map[CallbackReceiver]bool),
		writes:    make(map[string]*escrowState),
		clock:     time.Now,
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// VolumeUsed returns the settled volume usage in bytes.
func (m *Manager) VolumeUsed() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// expireStale clears an outstanding write whose capability expired; the
// expiry bound is what keeps callback waiting finite ("expiration times
// set by the file manager in every capability ... allow file managers
// to bound the waiting time for a callback"). Caller holds mu.
func (m *Manager) expireStale(ctx context.Context, path string) {
	es, ok := m.writes[path]
	if ok && m.clock().After(es.expiry) {
		m.settleLocked(ctx, path, es)
	}
}

// settleLocked finalizes an outstanding write: reads the object's real
// size and charges the quota. Caller holds mu.
func (m *Manager) settleLocked(ctx context.Context, path string, es *escrowState) {
	delete(m.writes, path)
	m.escrowed -= es.escrow - es.prevSize
	attrs, err := m.driveGetAttr(ctx, es.handle)
	if err == nil {
		if attrs.Size >= es.prevSize {
			m.used += attrs.Size - es.prevSize
		} else {
			m.used -= es.prevSize - attrs.Size
		}
	}
	m.cond.Broadcast()
}

// AcquireRead issues a read capability for path to c and registers a
// callback promise: c will be notified before the file can change.
// It blocks while a write capability is outstanding.
func (m *Manager) AcquireRead(ctx context.Context, rcv CallbackReceiver, id filemgr.Identity, path string) (filemgr.Handle, capability.Capability, error) {
	m.mu.Lock()
	for {
		m.expireStale(ctx, path)
		if _, busy := m.writes[path]; !busy {
			break
		}
		m.cond.Wait()
	}
	m.mu.Unlock()

	h, _, cap, err := m.fm.Lookup(ctx, id, path, capability.Read|capability.GetAttr)
	if err != nil {
		return filemgr.Handle{}, capability.Capability{}, err
	}
	m.mu.Lock()
	if m.callbacks[path] == nil {
		m.callbacks[path] = make(map[CallbackReceiver]bool)
	}
	m.callbacks[path][rcv] = true
	m.mu.Unlock()
	return h, cap, nil
}

// TryAcquireRead is AcquireRead without blocking: it returns
// ErrWriteLocked when a write capability is outstanding.
func (m *Manager) TryAcquireRead(ctx context.Context, rcv CallbackReceiver, id filemgr.Identity, path string) (filemgr.Handle, capability.Capability, error) {
	m.mu.Lock()
	m.expireStale(ctx, path)
	if _, busy := m.writes[path]; busy {
		m.mu.Unlock()
		return filemgr.Handle{}, capability.Capability{}, ErrWriteLocked
	}
	m.mu.Unlock()
	return m.AcquireRead(ctx, rcv, id, path)
}

// AcquireWrite issues a write capability escrowing room for the file to
// grow to escrowLen bytes. Callbacks on the file are broken first
// (sequential consistency: holders of potentially stale copies are
// notified as soon as a write *may* occur).
func (m *Manager) AcquireWrite(ctx context.Context, rcv CallbackReceiver, id filemgr.Identity, path string, escrowLen uint64) (filemgr.Handle, capability.Capability, error) {
	h, info, _, err := m.fm.Lookup(ctx, id, path, capability.Write)
	if err != nil {
		return filemgr.Handle{}, capability.Capability{}, err
	}
	if escrowLen < info.Size {
		escrowLen = info.Size
	}

	m.mu.Lock()
	m.expireStale(ctx, path)
	if es, busy := m.writes[path]; busy && es.holder != rcv {
		m.mu.Unlock()
		return filemgr.Handle{}, capability.Capability{}, ErrWriteLocked
	}
	if m.quota != 0 {
		grow := escrowLen - info.Size
		if m.used+m.escrowed+grow > m.quota {
			m.mu.Unlock()
			return filemgr.Handle{}, capability.Capability{}, fmt.Errorf("%w: need %d, used %d + escrowed %d of %d",
				ErrQuota, grow, m.used, m.escrowed, m.quota)
		}
	}
	// Break callbacks on everyone but the writer.
	holders := m.callbacks[path]
	delete(m.callbacks, path)
	expiry := m.clock().Add(m.capExpiry())
	m.writes[path] = &escrowState{holder: rcv, handle: h, prevSize: info.Size, escrow: escrowLen, expiry: expiry}
	m.escrowed += escrowLen - info.Size
	m.mu.Unlock()

	for holder := range holders {
		if holder != rcv {
			holder.BreakCallback(path)
		}
	}

	// The capability's byte range is the escrow: the drive enforces that
	// the file cannot grow beyond it.
	cap, err := m.fm.MintRange(h, m.currentVersion(ctx, h), capability.Write|capability.GetAttr, 0, escrowLen)
	if err != nil {
		return filemgr.Handle{}, capability.Capability{}, err
	}
	return h, cap, nil
}

func (m *Manager) capExpiry() time.Duration { return 5 * time.Minute }

func (m *Manager) currentVersion(ctx context.Context, h filemgr.Handle) uint64 {
	attrs, err := m.driveGetAttr(ctx, h)
	if err != nil {
		return 1
	}
	return attrs.Version
}

// driveGetAttr reads size and version through the manager's own drive
// connections (partition-scope capability: the current version is what
// we are fetching).
func (m *Manager) driveGetAttr(ctx context.Context, h filemgr.Handle) (attrs struct {
	Size    uint64
	Version uint64
}, err error) {
	cap := m.fm.MintWildcard(h.Drive, capability.GetAttr)
	a, err := m.drives[h.Drive].GetAttr(ctx, &cap, h.Partition, h.Object)
	if err != nil {
		return attrs, err
	}
	attrs.Size = a.Size
	attrs.Version = a.Version
	return attrs, nil
}

// CreateFile makes a file through the underlying file manager.
func (m *Manager) CreateFile(ctx context.Context, id filemgr.Identity, path string, mode uint32) error {
	_, _, err := m.fm.Create(ctx, id, path, mode)
	return err
}

// Relinquish returns a write capability. The manager examines the
// object to settle the volume quota (Section 5.1: "the file manager
// can examine the object to determine its new size and update the
// quota data structures appropriately").
func (m *Manager) Relinquish(ctx context.Context, rcv CallbackReceiver, path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	es, ok := m.writes[path]
	if !ok || es.holder != rcv {
		return fmt.Errorf("nasdafs: no outstanding write capability for %s", path)
	}
	m.settleLocked(ctx, path, es)
	return nil
}

// Truncate shrinks (or extends) an object on a client's behalf during
// StoreData. The manager uses its own authority: size is policy.
func (m *Manager) Truncate(ctx context.Context, h filemgr.Handle, size uint64) error {
	attrs, err := m.driveGetAttr(ctx, h)
	if err != nil {
		return err
	}
	if attrs.Size == size {
		return nil
	}
	cap := m.fm.MintWildcard(h.Drive, capability.SetAttr)
	return m.drives[h.Drive].SetAttr(ctx, &cap, h.Partition, h.Object,
		objectAttrsWithSize(size), objectSetSizeMask())
}

var _ ManagerAPI = (*Manager)(nil)

// CallbackHolders reports how many clients hold callbacks on path.
func (m *Manager) CallbackHolders(path string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.callbacks[path])
}

// Client is a whole-file-caching AFS client. It works identically
// against an in-process *Manager or a remote afsrpc.Client.
type Client struct {
	mgr    ManagerAPI
	id     filemgr.Identity
	drives []*client.Drive

	mu     sync.Mutex
	cache  map[string][]byte
	valid  map[string]bool
	breaks int
}

// NewClient creates an AFS client for identity id. drives must be
// indexed like the file manager's drive table.
func NewClient(mgr ManagerAPI, drives []*client.Drive, id filemgr.Identity) *Client {
	return &Client{
		mgr:    mgr,
		id:     id,
		drives: drives,
		cache:  make(map[string][]byte),
		valid:  make(map[string]bool),
	}
}

// BreakCallback is invoked by the manager when a cached copy may go
// stale. It implements CallbackReceiver.
func (c *Client) BreakCallback(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.valid[path] = false
	c.breaks++
}

// CallbackBreaks counts callbacks this client has received.
func (c *Client) CallbackBreaks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breaks
}

// Cached reports whether path is validly cached.
func (c *Client) Cached(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.valid[path]
}

// FetchData returns the file's contents, serving from the local cache
// when the callback promise is intact (the AFS fast path) and fetching
// whole-file from the drive otherwise.
func (c *Client) FetchData(ctx context.Context, path string) ([]byte, error) {
	c.mu.Lock()
	if c.valid[path] {
		data := c.cache[path]
		c.mu.Unlock()
		return data, nil
	}
	c.mu.Unlock()

	h, cap, err := c.mgr.AcquireRead(ctx, c, c.id, path)
	if err != nil {
		return nil, err
	}
	attrs, err := c.drives[h.Drive].GetAttr(ctx, &cap, h.Partition, h.Object)
	if err != nil {
		return nil, err
	}
	data, err := c.drives[h.Drive].ReadPipelined(ctx, &cap, h.Partition, h.Object, 0, int(attrs.Size))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.cache[path] = data
	c.valid[path] = true
	c.mu.Unlock()
	return data, nil
}

// StoreData replaces the file's contents: acquire a write capability
// (breaking other clients' callbacks), write drive-direct, relinquish.
func (c *Client) StoreData(ctx context.Context, path string, data []byte) error {
	h, cap, err := c.mgr.AcquireWrite(ctx, c, c.id, path, uint64(len(data)))
	if err != nil {
		return err
	}
	if err := c.drives[h.Drive].WritePipelined(ctx, &cap, h.Partition, h.Object, 0, data); err != nil {
		_ = c.mgr.Relinquish(ctx, c, path)
		return err
	}
	// AFS StoreData replaces the whole file: shrink through the manager
	// (truncation changes size, a policy-relevant attribute, so it is
	// not granted to plain write capabilities).
	if err := c.mgr.Truncate(ctx, h, uint64(len(data))); err != nil {
		_ = c.mgr.Relinquish(ctx, c, path)
		return err
	}
	c.mu.Lock()
	c.cache[path] = append([]byte(nil), data...)
	c.valid[path] = true
	c.mu.Unlock()
	return c.mgr.Relinquish(ctx, c, path)
}

// FetchStatus returns size and version drive-direct.
func (c *Client) FetchStatus(ctx context.Context, path string) (size uint64, err error) {
	h, cap, err := c.mgr.AcquireRead(ctx, c, c.id, path)
	if err != nil {
		return 0, err
	}
	a, err := c.drives[h.Drive].GetAttr(ctx, &cap, h.Partition, h.Object)
	if err != nil {
		return 0, err
	}
	return a.Size, nil
}

// Create makes a file through the file manager.
func (c *Client) Create(ctx context.Context, path string, mode uint32) error {
	return c.mgr.CreateFile(ctx, c.id, path, mode)
}
