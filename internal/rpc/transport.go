package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"nasd/internal/bufpool"
)

// Conn is a reliable, message-oriented connection (the "SAN" of the
// paper: the same interface runs over in-process channels for tests and
// simulations, or TCP for real deployments).
//
// Buffer ownership: Send must not retain msg after it returns — the
// caller may immediately reuse or pool the slice. Recv transfers
// ownership of the returned frame to the caller; built-in transports
// draw frames from bufpool, so callers that fully consume a frame may
// return it with bufpool.Put (and callers that keep references must
// not).
type Conn interface {
	// Send transmits one message.
	Send(msg []byte) error
	// Recv blocks for the next message.
	Recv() ([]byte, error)
	// Close tears down the connection; pending Recv calls fail.
	Close() error
}

// VectorSender is implemented by transports that can transmit one
// message from several non-contiguous buffers without joining them
// (writev on TCP). Like Send, SendVec must not retain the buffers
// after it returns. Use SendVectored to target any Conn.
type VectorSender interface {
	SendVec(bufs net.Buffers) error
}

// SendVectored transmits the concatenation of bufs as one message,
// using vectored I/O when conn supports it and a single pooled join
// otherwise. The caller keeps ownership of every buffer in bufs.
func SendVectored(conn Conn, bufs net.Buffers) error {
	if vs, ok := conn.(VectorSender); ok {
		return vs.SendVec(bufs)
	}
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	joined := bufpool.Get(n)
	off := 0
	for _, b := range bufs {
		off += copy(joined[off:], b)
	}
	err := conn.Send(joined)
	bufpool.Put(joined)
	return err
}

// Listener accepts connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// SendDeadliner is implemented by transports whose Send can be bounded
// in time. Client.Call maps context deadlines onto it so a stalled peer
// cannot hold a sender forever. The zero time clears the deadline.
type SendDeadliner interface {
	SetSendDeadline(t time.Time) error
}

// ErrClosed is returned by operations on closed connections/listeners.
var ErrClosed = errors.New("rpc: connection closed")

// ErrNotSent wraps a call failure that happened before the request left
// the client: the remote demonstrably never saw the request, so
// reissuing it is safe even for non-idempotent operations.
var ErrNotSent = errors.New("rpc: request never sent")

// --- In-process transport ------------------------------------------------

type inprocConn struct {
	out  chan []byte
	in   chan []byte
	once sync.Once
	done chan struct{}
	peer *inprocConn
}

// Pipe returns a connected pair of in-process connections.
func Pipe() (Conn, Conn) {
	a2b := make(chan []byte, 64)
	b2a := make(chan []byte, 64)
	a := &inprocConn{out: a2b, in: b2a, done: make(chan struct{})}
	b := &inprocConn{out: b2a, in: a2b, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *inprocConn) Send(msg []byte) error {
	// Deterministically fail when either side already closed; without
	// this pre-check, a buffered-channel send could race the closure.
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	default:
	}
	// Copy into a pooled frame: the receiver takes ownership, so the
	// loopback path has the same frame lifecycle as TCP.
	cp := bufpool.Get(len(msg))
	copy(cp, msg)
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	case c.out <- cp:
		return nil
	}
}

// SendVec implements VectorSender: the loopback "writev" joins directly
// into the receiver's pooled frame, skipping the intermediate copy a
// flatten-then-Send would make.
func (c *inprocConn) SendVec(bufs net.Buffers) error {
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	default:
	}
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	cp := bufpool.Get(n)
	off := 0
	for _, b := range bufs {
		off += copy(cp[off:], b)
	}
	select {
	case <-c.done:
		bufpool.Put(cp)
		return ErrClosed
	case <-c.peer.done:
		bufpool.Put(cp)
		return ErrClosed
	case c.out <- cp:
		return nil
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	select {
	case <-c.done:
		return nil, ErrClosed
	case msg, ok := <-c.in:
		if !ok {
			return nil, ErrClosed
		}
		return msg, nil
	case <-c.peer.done:
		// Drain anything already queued before reporting closure.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// InProcListener is an in-process listener: servers Accept from it and
// clients Dial it directly, with no global registry.
type InProcListener struct {
	mu     sync.Mutex
	queue  chan Conn
	closed bool
	name   string
}

// NewInProcListener returns a listener with the given display name.
func NewInProcListener(name string) *InProcListener {
	return &InProcListener{queue: make(chan Conn, 16), name: name}
}

// Dial connects to the listener, returning the client side.
func (l *InProcListener) Dial() (Conn, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	l.mu.Unlock()
	client, server := Pipe()
	select {
	case l.queue <- server:
		return client, nil
	default:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("rpc: listener %s backlog full", l.name)
	}
}

// Accept implements Listener.
func (l *InProcListener) Accept() (Conn, error) {
	c, ok := <-l.queue
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close implements Listener.
func (l *InProcListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.queue)
	}
	return nil
}

// Addr implements Listener.
func (l *InProcListener) Addr() string { return "inproc://" + l.name }

// --- TCP transport ---------------------------------------------------------

// maxFrame bounds a single message (16 MB covers the largest experiment
// transfers with room to spare and prevents hostile length prefixes from
// allocating unbounded memory).
const maxFrame = 16 << 20

type tcpConn struct {
	c       net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	lenBuf  [4]byte
	recvLen [4]byte
	// vecs is reused across SendVec calls (guarded by sendMu) so the
	// gather list itself does not allocate per message.
	vecs net.Buffers
}

// NewTCPConn wraps a net.Conn with 4-byte length framing.
func NewTCPConn(c net.Conn) Conn { return &tcpConn{c: c} }

// DialTCP connects to a NASD TCP endpoint.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c), nil
}

func (t *tcpConn) Send(msg []byte) error {
	if len(msg) > maxFrame {
		return fmt.Errorf("rpc: frame too large (%d bytes)", len(msg))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	binary.BigEndian.PutUint32(t.lenBuf[:], uint32(len(msg)))
	// One writev for prefix + body: a split Write pair costs an extra
	// syscall and can emit the 4-byte prefix as its own TCP segment.
	t.vecs = append(t.vecs[:0], t.lenBuf[:], msg)
	v := t.vecs // WriteTo consumes the header it is called on
	_, err := v.WriteTo(t.c)
	clearVecs(t.vecs)
	return err
}

// SendVec implements VectorSender: length prefix plus every buffer in
// one writev, so a reply header and its bulk payload leave without ever
// being joined.
func (t *tcpConn) SendVec(bufs net.Buffers) error {
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	if n > maxFrame {
		return fmt.Errorf("rpc: frame too large (%d bytes)", n)
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	binary.BigEndian.PutUint32(t.lenBuf[:], uint32(n))
	t.vecs = append(t.vecs[:0], t.lenBuf[:])
	t.vecs = append(t.vecs, bufs...)
	v := t.vecs
	_, err := v.WriteTo(t.c)
	clearVecs(t.vecs)
	return err
}

// clearVecs drops buffer references from the reusable gather list so
// pooled buffers handed to a send are not pinned by the conn between
// calls.
func clearVecs(v net.Buffers) {
	for i := range v {
		v[i] = nil
	}
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if _, err := io.ReadFull(t.c, t.recvLen[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(t.recvLen[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: oversized frame (%d bytes)", n)
	}
	msg := bufpool.Get(int(n))
	if _, err := io.ReadFull(t.c, msg); err != nil {
		bufpool.Put(msg)
		return nil, err
	}
	return msg, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

// SetSendDeadline implements SendDeadliner over the socket's write
// deadline.
func (t *tcpConn) SetSendDeadline(dl time.Time) error { return t.c.SetWriteDeadline(dl) }

type tcpListener struct {
	l net.Listener
}

// ListenTCP starts a TCP listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }
