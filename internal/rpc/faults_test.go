package rpc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// drain receives until the pipe goes quiet, returning the messages that
// actually arrived.
func drain(t *testing.T, c Conn, want int) [][]byte {
	t.Helper()
	var got [][]byte
	for len(got) < want {
		msg, err := c.Recv()
		if err != nil {
			t.Fatalf("recv after %d messages: %v", len(got), err)
		}
		got = append(got, msg)
	}
	return got
}

func TestFaultsDropEvery(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	f := NewFaults(1)
	f.DropEvery(3)
	fa := f.Wrap(a)
	defer fa.Close()

	for i := byte(0); i < 9; i++ {
		if err := fa.Send([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	// Sends 3, 6, 9 vanish: six messages arrive.
	got := drain(t, b, 6)
	want := []byte{0, 1, 3, 4, 6, 7}
	for i, m := range got {
		if m[0] != want[i] {
			t.Fatalf("message %d = %d, want %d", i, m[0], want[i])
		}
	}
	if st := f.Stats(); st.Dropped != 3 || st.Sent != 9 {
		t.Fatalf("stats = %+v, want 3 dropped of 9", st)
	}
}

func TestFaultsDuplicateEvery(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	f := NewFaults(1)
	f.DuplicateEvery(2)
	fa := f.Wrap(a)
	defer fa.Close()

	for i := byte(0); i < 4; i++ {
		if err := fa.Send([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	// Sends 2 and 4 arrive twice.
	got := drain(t, b, 6)
	want := []byte{0, 1, 1, 2, 3, 3}
	for i, m := range got {
		if m[0] != want[i] {
			t.Fatalf("message %d = %d, want %d", i, m[0], want[i])
		}
	}
	if st := f.Stats(); st.Duplicated != 2 {
		t.Fatalf("stats = %+v, want 2 duplicated", st)
	}
}

func TestFaultsDelay(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	f := NewFaults(1)
	f.Delay(20 * time.Millisecond)
	fa := f.Wrap(a)
	defer fa.Close()

	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := fa.Send([]byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, b, 3)
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("three 20ms-delayed sends took only %v", el)
	}
}

func TestFaultsDownSeversRefusesAndRevives(t *testing.T) {
	l := NewInProcListener("faults")
	srv := NewServer(echoServer(t))
	go srv.Serve(l)
	defer srv.Close()

	f := NewFaults(1)
	conn, err := f.Dial(l.Dial)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("up")); err != nil {
		t.Fatal(err)
	}

	f.Down()
	// The live connection was severed: its reads unblock with an error.
	if _, err := conn.Recv(); err == nil {
		t.Fatal("recv on a severed connection succeeded")
	}
	if err := conn.Send([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("send while down = %v, want ErrInjected", err)
	}
	if _, err := f.Dial(l.Dial); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial while down = %v, want ErrInjected", err)
	}

	f.Revive()
	conn2, err := f.Dial(l.Dial)
	if err != nil {
		t.Fatalf("dial after revive: %v", err)
	}
	defer conn2.Close()
	if err := conn2.Send([]byte("back")); err != nil {
		t.Fatalf("send after revive: %v", err)
	}
	st := f.Stats()
	if st.Severed == 0 || st.FailedSends == 0 || st.RefusedDials == 0 {
		t.Fatalf("stats = %+v, want severed/failed/refused all counted", st)
	}
}

func TestFaultsSeverAfter(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	f := NewFaults(1)
	f.SeverAfter(3)
	fa := f.Wrap(a)

	for i := 0; i < 2; i++ {
		if err := fa.Send([]byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fa.Send([]byte{0}); !errors.Is(err, ErrInjected) {
		t.Fatalf("third send = %v, want ErrInjected sever", err)
	}
	if err := fa.Send([]byte{0}); err == nil {
		t.Fatal("send on severed connection succeeded")
	}
}

func TestFaultsPartitionIsSilent(t *testing.T) {
	srv := NewServer(echoServer(t))
	l := NewInProcListener("part")
	go srv.Serve(l)
	defer srv.Close()

	f := NewFaults(1)
	conn, err := f.Dial(l.Dial)
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	// Healthy first, so the failure below is the partition's doing.
	if _, err := cli.Call(context.Background(), &Request{Proc: 1, Data: []byte("ok")}); err != nil {
		t.Fatal(err)
	}

	f.Partition(true)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// The request vanishes without an error: only the deadline notices.
	if _, err := cli.Call(ctx, &Request{Proc: 1, Data: []byte("lost")}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call through partition = %v, want DeadlineExceeded", err)
	}

	f.Partition(false)
	if _, err := cli.Call(context.Background(), &Request{Proc: 1, Data: []byte("healed")}); err != nil {
		t.Fatalf("call after partition healed: %v", err)
	}
}

func TestFaultsDeterministicSchedule(t *testing.T) {
	run := func(seed int64) FaultStats {
		a, b := Pipe()
		defer b.Close()
		go func() {
			for {
				if _, err := b.Recv(); err != nil {
					return
				}
			}
		}()
		f := NewFaults(seed)
		f.DropRate(0.3)
		f.DuplicateRate(0.2)
		fa := f.Wrap(a)
		defer fa.Close()
		for i := 0; i < 200; i++ {
			if err := fa.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return f.Stats()
	}
	if a, b := run(7), run(7); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a, b := run(7), run(8); a == b {
		t.Fatalf("different seeds produced identical schedules: %+v", a)
	}
}

func TestFaultsWrapListenerFaultsReplies(t *testing.T) {
	srv := NewServer(echoServer(t))
	l := NewInProcListener("wl")
	f := NewFaults(1)
	go srv.Serve(f.WrapListener(l))
	defer srv.Close()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	if _, err := cli.Call(context.Background(), &Request{Proc: 1, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	// Drop the server's next reply: the request arrives and executes,
	// but the answer never comes back.
	f.DropEvery(2)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, &Request{Proc: 1, Data: []byte("b")}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call with dropped reply = %v, want DeadlineExceeded", err)
	}
}
