package rpc

import (
	"context"
	"testing"
	"time"
)

func TestThrottledConnRoundTrip(t *testing.T) {
	srv := NewServer(echoServer(t))
	l := NewInProcListener("s")
	go srv.Serve(NewThrottledListener(l, 0)) // unlimited: pure pass-through
	defer srv.Close()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(NewThrottledConn(conn, 0))
	defer cli.Close()

	rep, err := cli.Call(context.Background(), &Request{Proc: 1, Data: []byte("ping")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOK || string(rep.Data) != "ping" {
		t.Fatalf("echo through throttled conn: %+v", rep)
	}
}

func TestThrottledConnPacesSends(t *testing.T) {
	srv := NewServer(echoServer(t))
	l := NewInProcListener("s")
	go srv.Serve(l)
	defer srv.Close()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB/s link: four 64 KB requests are 256 KB up, the model says
	// at least 250 ms (replies come back over the unthrottled side).
	cli := NewClient(NewThrottledConn(conn, 1<<20))
	defer cli.Close()

	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := cli.Call(context.Background(), &Request{Proc: 1, Data: make([]byte, 64<<10)}); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 200*time.Millisecond {
		t.Fatalf("256 KB at 1 MB/s took only %v", el)
	}
}
