package rpc

import (
	"bytes"
	"testing"

	"nasd/internal/crypt"
)

// These tests pin the decoder's aliasing contract, which the pooled
// frame lifecycle depends on: Bytes32/Raw views alias the frame (no
// copies), stay exactly as decoded while the frame is untouched, are
// capped so appends cannot clobber neighbouring fields, and go invalid
// only when the frame's owner recycles it.

func aliasRequest() *Request {
	return &Request{
		MsgID:  7,
		Proc:   3,
		Cap:    []byte("capability-public-portion"),
		Args:   []byte("args-bytes"),
		Data:   bytes.Repeat([]byte{0xAB}, 1024),
		Nonce:  crypt.Nonce{Client: 42, Counter: 9},
		ReqDig: crypt.Digest{1, 2, 3},
		AllDig: crypt.Digest{4, 5, 6},
	}
}

// TestDecodedViewsAliasFrame proves the zero-copy property: the decoded
// Args/Cap/Data are views into the wire frame, not copies — mutating
// the frame in place is visible through them.
func TestDecodedViewsAliasFrame(t *testing.T) {
	frame := EncodeRequest(aliasRequest())
	m, err := DecodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	req := m.(*Request)
	find := func(name string, view []byte) int {
		idx := bytes.Index(frame, view)
		if idx < 0 {
			t.Fatalf("%s view not found in frame", name)
		}
		return idx
	}
	for _, v := range []struct {
		name string
		view []byte
	}{{"cap", req.Cap}, {"args", req.Args}, {"data", req.Data}} {
		idx := find(v.name, v.view)
		old := frame[idx]
		frame[idx] ^= 0xFF
		if v.view[0] == old {
			t.Errorf("%s does not alias the frame (copy detected)", v.name)
		}
		frame[idx] = old
	}
}

// TestDecodedViewsStableWhileFrameAlive re-decodes and byte-compares
// after unrelated work touching other pooled buffers: as long as the
// frame itself is not recycled, views must not change.
func TestDecodedViewsStableWhileFrameAlive(t *testing.T) {
	orig := aliasRequest()
	frame := EncodeRequest(orig)
	m, err := DecodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	req := m.(*Request)
	capCopy := append([]byte(nil), req.Cap...)
	argsCopy := append([]byte(nil), req.Args...)
	dataCopy := append([]byte(nil), req.Data...)
	// Unrelated encode/decode traffic (its own frames, possibly pooled).
	for i := 0; i < 64; i++ {
		other := aliasRequest()
		other.Data = bytes.Repeat([]byte{byte(i)}, 2048)
		if _, err := DecodeMessage(EncodeRequest(other)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(req.Cap, capCopy) || !bytes.Equal(req.Args, argsCopy) || !bytes.Equal(req.Data, dataCopy) {
		t.Fatal("decoded views mutated while their frame was alive")
	}
}

// TestDecodedViewsCapped: appending through a decoded view must
// reallocate, never overwrite the next field in the frame. (Bytes32 and
// Raw return three-index slices.)
func TestDecodedViewsCapped(t *testing.T) {
	frame := EncodeRequest(aliasRequest())
	m, err := DecodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	req := m.(*Request)
	for _, v := range []struct {
		name string
		view []byte
	}{{"cap", req.Cap}, {"args", req.Args}, {"data", req.Data}} {
		if cap(v.view) != len(v.view) {
			t.Errorf("%s view has spare capacity %d past its length — append would clobber the frame",
				v.name, cap(v.view)-len(v.view))
		}
		before := append([]byte(nil), frame...)
		_ = append(v.view, 0xEE, 0xEE) //nolint:staticcheck // the append is the point
		if !bytes.Equal(frame, before) {
			t.Fatalf("append through %s view mutated the frame", v.name)
		}
	}
}

// TestBytes32FrameBoundaries covers the decoder edge cases at the end
// of a frame: a zero-length field flush against the boundary, a field
// consuming exactly the remaining bytes, and a length prefix promising
// one byte more than the frame holds.
func TestBytes32FrameBoundaries(t *testing.T) {
	var e Encoder
	e.Bytes32(nil) // zero length
	d := NewDecoder(e.Bytes())
	if v := d.Bytes32(); len(v) != 0 || d.Err() != nil {
		t.Fatalf("zero-length at boundary: v=%v err=%v", v, d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("zero-length decode left %d bytes", d.Remaining())
	}

	payload := bytes.Repeat([]byte{0x5A}, 4096)
	e.Reset(nil)
	e.Bytes32(payload) // max length: consumes the frame exactly
	d = NewDecoder(e.Bytes())
	v := d.Bytes32()
	if d.Err() != nil || !bytes.Equal(v, payload) {
		t.Fatalf("max-length at boundary: err=%v", d.Err())
	}
	if d.Remaining() != 0 || cap(v) != len(v) {
		t.Fatalf("max-length view: remaining=%d cap=%d len=%d", d.Remaining(), cap(v), len(v))
	}

	// Length prefix overrunning the frame by one byte must error, not
	// return a short view.
	frame := e.Bytes()
	truncated := frame[:len(frame)-1]
	d = NewDecoder(truncated)
	if v := d.Bytes32(); v != nil || d.Err() == nil {
		t.Fatalf("overrunning length: v=%v err=%v, want nil + ErrTruncated", v, d.Err())
	}
}

// FuzzDecodedViewsWithinFrame feeds arbitrary bytes through
// DecodeMessage; whenever a message decodes, every byte-slice view must
// be capped (no spare capacity into the frame) and appending through it
// must leave the frame intact.
func FuzzDecodedViewsWithinFrame(f *testing.F) {
	f.Add(EncodeRequest(aliasRequest()))
	f.Add(EncodeReply(&Reply{MsgID: 3, Status: StatusOK, Msg: "x", Args: []byte("a"), Data: []byte("dd")}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		m, err := DecodeMessage(frame)
		if err != nil {
			return
		}
		var views [][]byte
		switch v := m.(type) {
		case *Request:
			views = [][]byte{v.Cap, v.Args, v.Data}
		case *Reply:
			views = [][]byte{v.Args, v.Data}
		}
		before := append([]byte(nil), frame...)
		for i, view := range views {
			if cap(view) > len(view) {
				t.Fatalf("view %d has spare capacity into the frame", i)
			}
			if len(view) > 0 {
				_ = append(view, 0xEE)
			}
		}
		if !bytes.Equal(frame, before) {
			t.Fatal("appending through decoded views mutated the frame")
		}
	})
}
