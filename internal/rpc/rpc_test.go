package rpc

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"nasd/internal/crypt"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.U16(1000)
	e.U32(70000)
	e.U64(1 << 40)
	e.I64(-5)
	e.Bytes32([]byte("payload"))
	e.String("hello")
	e.Raw([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if d.U8() != 7 || d.U16() != 1000 || d.U32() != 70000 || d.U64() != 1<<40 || d.I64() != -5 {
		t.Fatal("scalar round trip failed")
	}
	if string(d.Bytes32()) != "payload" || d.String() != "hello" {
		t.Fatal("bytes round trip failed")
	}
	if !bytes.Equal(d.Raw(3), []byte{1, 2, 3}) {
		t.Fatal("raw round trip failed")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.U64() // fails
	if d.Err() == nil {
		t.Fatal("no error for truncated read")
	}
	if d.U8() != 0 || d.U32() != 0 || d.Bytes32() != nil {
		t.Fatal("reads after error returned data")
	}
}

func TestDecoderHostileLength(t *testing.T) {
	var e Encoder
	e.U32(1 << 30) // claims a 1 GB payload
	d := NewDecoder(e.Bytes())
	if d.Bytes32() != nil || d.Err() == nil {
		t.Fatal("hostile length prefix accepted")
	}
}

func TestRequestEncodeDecodeRoundTrip(t *testing.T) {
	req := &Request{
		MsgID:   42,
		Proc:    3,
		SecOpts: SecIntegrity,
		Cap:     []byte("capbytes"),
		Args:    []byte("argbytes"),
		Data:    bytes.Repeat([]byte{9}, 1000),
		Nonce:   crypt.Nonce{Client: 7, Counter: 99},
	}
	req.ReqDig[0] = 1
	req.AllDig[31] = 2
	msg, err := DecodeMessage(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*Request)
	if !ok {
		t.Fatalf("decoded %T", msg)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
}

func TestReplyEncodeDecodeRoundTrip(t *testing.T) {
	rep := &Reply{MsgID: 9, Status: StatusQuota, Msg: "over quota", Args: []byte("a"), Data: []byte("d")}
	msg, err := DecodeMessage(EncodeReply(rep))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*Reply)
	if !ok || !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip mismatch: %+v", msg)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeMessage([]byte("not a message")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeMessage(nil); err == nil {
		t.Fatal("empty message accepted")
	}
	var e Encoder
	e.U32(Magic)
	e.U8(99) // bad kind
	if _, err := DecodeMessage(e.Bytes()); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(proc uint16, capb, args, data []byte, client, counter uint64) bool {
		req := &Request{Proc: proc, Cap: capb, Args: args, Data: data,
			Nonce: crypt.Nonce{Client: client, Counter: counter}}
		msg, err := DecodeMessage(EncodeRequest(req))
		if err != nil {
			return false
		}
		got := msg.(*Request)
		// Encoder normalizes nil to empty slices; compare contents.
		return got.Proc == req.Proc &&
			bytes.Equal(got.Cap, req.Cap) &&
			bytes.Equal(got.Args, req.Args) &&
			bytes.Equal(got.Data, req.Data) &&
			got.Nonce == req.Nonce
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSigningBodyCoversData(t *testing.T) {
	r1 := &Request{Proc: 1, Args: []byte("a"), Data: []byte("data1")}
	r2 := &Request{Proc: 1, Args: []byte("a"), Data: []byte("data2")}
	if bytes.Equal(r1.SigningBody(), r2.SigningBody()) {
		t.Fatal("signing body ignores data")
	}
	r3 := &Request{Proc: 2, Args: []byte("a"), Data: []byte("data1")}
	if bytes.Equal(r1.SigningBody(), r3.SigningBody()) {
		t.Fatal("signing body ignores proc")
	}
}

func TestPipeSendRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil || string(got) != "ping" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	// Messages don't alias sender buffers.
	msg := []byte("mutate")
	if err := b.Send(msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X'
	got, _ = a.Recv()
	if string(got) != "mutate" {
		t.Fatalf("aliased message: %q", got)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("recv after close: %v", err)
	}
	if err := b.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after peer close: %v", err)
	}
}

func TestInProcListener(t *testing.T) {
	l := NewInProcListener("drive0")
	if l.Addr() != "inproc://drive0" {
		t.Fatalf("addr = %s", l.Addr())
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		msg, _ := conn.Recv()
		conn.Send(append([]byte("echo:"), msg...))
	}()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil || string(got) != "echo:hi" {
		t.Fatalf("got %q, %v", got, err)
	}
	l.Close()
	if _, err := l.Dial(); err == nil {
		t.Fatal("dial after close succeeded")
	}
}

func echoServer(t *testing.T) Handler {
	t.Helper()
	return HandlerFunc(func(req *Request) *Reply {
		return &Reply{Status: StatusOK, Args: req.Args, Data: req.Data}
	})
}

func TestClientServerInProc(t *testing.T) {
	l := NewInProcListener("s")
	srv := NewServer(echoServer(t))
	go srv.Serve(l)
	defer srv.Close()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	rep, err := cli.Call(context.Background(), &Request{Proc: 1, Args: []byte("abc"), Data: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOK || string(rep.Args) != "abc" || string(rep.Data) != "xyz" {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestClientServerTCP(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(echoServer(t))
	go srv.Serve(l)
	defer srv.Close()

	conn, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	big := bytes.Repeat([]byte{0x42}, 2<<20) // 2 MB payload
	rep, err := cli.Call(context.Background(), &Request{Proc: 2, Data: big})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOK || !bytes.Equal(rep.Data, big) {
		t.Fatal("large TCP round trip failed")
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	l := NewInProcListener("s")
	srv := NewServer(HandlerFunc(func(req *Request) *Reply {
		return &Reply{Status: StatusOK, Args: req.Args}
	}))
	go srv.Serve(l)
	defer srv.Close()

	conn, _ := l.Dial()
	cli := NewClient(conn)
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("call-%d", i)
			rep, err := cli.Call(context.Background(), &Request{Proc: 1, Args: []byte(want)})
			if err != nil {
				errs <- err
				return
			}
			if string(rep.Args) != want {
				errs <- fmt.Errorf("cross-wired reply: got %q want %q", rep.Args, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCallAfterServerGone(t *testing.T) {
	l := NewInProcListener("s")
	srv := NewServer(echoServer(t))
	go srv.Serve(l)

	conn, _ := l.Dial()
	cli := NewClient(conn)
	if _, err := cli.Call(context.Background(), &Request{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	conn.Close()
	if _, err := cli.Call(context.Background(), &Request{Proc: 1}); err == nil {
		t.Fatal("call after close succeeded")
	}
}

func TestStatusString(t *testing.T) {
	if StatusOK.String() != "ok" || StatusAuthFailure.String() != "auth-failure" {
		t.Fatal("status names wrong")
	}
	if Status(999).String() == "" {
		t.Fatal("unknown status empty")
	}
}

func TestServerRejectsMalformedTraffic(t *testing.T) {
	l := NewInProcListener("s")
	srv := NewServer(echoServer(t))
	go srv.Serve(l)
	defer srv.Close()

	conn, _ := l.Dial()
	if err := conn.Send([]byte("garbage")); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection.
	if _, err := conn.Recv(); err == nil {
		t.Fatal("server replied to garbage")
	}
}
