// Package rpc implements the NASD prototype's communication layer: a
// compact binary message codec following the packet layering of Figure 5
// (network header, RPC header, security header, capability, request
// args, nonce, request digest, overall digest), message framing, and two
// transports — in-process channels and TCP.
//
// The paper used DCE RPC 1.0.3 over UDP/IP and found it dominated the
// drive's instruction budget ("workstation-class implementations of
// communications certainly are [too expensive]"). This hand-rolled
// encoding is the kind of lean drive protocol the paper anticipates;
// the performance experiments separately model the heavyweight DCE
// stack's instruction costs to reproduce Table 1 (Section 4.4).
//
// Both endpoints are multiplexed and context-aware: a client issues
// concurrent calls over one connection and the server dispatches them
// concurrently, which is what makes the Figure 9-style read/write
// pipelining in package client possible. When constructed with
// WithMetrics / WithClientMetrics, the endpoints publish per-opcode
// call, byte, and latency metrics plus connection/in-flight gauges
// into a telemetry.Registry (the rpc.server.* and rpc.client.*
// families described in DESIGN.md §5); the Request.Trace field carries
// the caller's span context — {trace ID, parent span ID} — across the
// wire, outside the signed message body, so drive-side spans link into
// the client's trace (DESIGN.md §5 "Tracing").
package rpc
