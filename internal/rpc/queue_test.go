package rpc

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestQueueRejectOnFull is the regression test for the per-connection
// pending-request cap: with WithQueue, a connection whose worker pool
// is saturated answers excess requests with StatusRetryLater (plus a
// retry-after hint) instead of buffering them without bound, and the
// admitted requests still complete once the pool drains.
func TestQueueRejectOnFull(t *testing.T) {
	const (
		workers = 1
		queue   = 2
		calls   = 10
	)
	release := make(chan struct{})
	started := make(chan struct{}, calls)
	h := HandlerFunc(func(req *Request) *Reply {
		started <- struct{}{}
		<-release
		return &Reply{MsgID: req.MsgID, Status: StatusOK}
	})
	srv := NewServer(h, WithWorkers(workers), WithQueue(queue))
	defer srv.Close()
	l := NewInProcListener("queue-test")
	go srv.Serve(l)
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var mu sync.Mutex
	var okN, rejected int
	var hints []time.Duration
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := cli.Call(ctx, &Request{Proc: 1})
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch rep.Status {
			case StatusOK:
				okN++
			case StatusRetryLater:
				rejected++
				if hint, ok := RetryAfterHint(rep); ok {
					hints = append(hints, hint)
				}
			default:
				t.Errorf("unexpected status %v", rep.Status)
			}
		}()
	}

	// The cap bounds what can be admitted while the pool is wedged: one
	// request per worker in flight, `queue` buffered, plus at most one
	// more a worker dequeued before blocking. Everything else must be
	// rejected promptly — without the cap this wait would deadlock,
	// since no worker ever finishes until release.
	admitCap := workers*2 + queue
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		r := rejected
		mu.Unlock()
		if r >= calls-admitCap {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d rejections; want >= %d", r, calls-admitCap)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if okN+rejected != calls {
		t.Fatalf("okN=%d rejected=%d, want total %d", okN, rejected, calls)
	}
	if rejected == 0 {
		t.Fatal("pending cap never rejected")
	}
	if okN == 0 {
		t.Fatal("no admitted request completed")
	}
	for _, hint := range hints {
		if hint <= 0 {
			t.Fatalf("rejection carried no retry-after hint: %v", hint)
		}
	}
	if got := srv.Metrics().Snapshot().Counters["rpc.server.rejected"]; got != uint64(rejected) {
		t.Fatalf("rpc.server.rejected = %d, want %d", got, rejected)
	}
}

// TestQueueDefaultBlocks pins the legacy default: without WithQueue the
// read loop blocks on a full pool (transport backpressure) and nothing
// is rejected.
func TestQueueDefaultBlocks(t *testing.T) {
	release := make(chan struct{})
	h := HandlerFunc(func(req *Request) *Reply {
		<-release
		return &Reply{MsgID: req.MsgID, Status: StatusOK}
	})
	srv := NewServer(h, WithWorkers(2))
	defer srv.Close()
	l := NewInProcListener("queue-default-test")
	go srv.Serve(l)
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const calls = 8
	var wg sync.WaitGroup
	errs := make([]error, calls)
	reps := make([]*Reply, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = cli.Call(ctx, &Request{Proc: 1})
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the flood pile up
	close(release)
	wg.Wait()
	for i := 0; i < calls; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		if reps[i].Status != StatusOK {
			t.Fatalf("call %d: status %v, want ok (default mode must never shed)", i, reps[i].Status)
		}
	}
	if got := srv.Metrics().Snapshot().Counters["rpc.server.rejected"]; got != 0 {
		t.Fatalf("rpc.server.rejected = %d, want 0 in default mode", got)
	}
}
