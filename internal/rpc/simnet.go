package rpc

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"nasd/internal/simtime"
)

// ThrottledConn wraps a Conn with a link-bandwidth model: every sent
// message is charged its serialization delay on a shared link
// (concurrent senders queue, as they would on one wire). Loopback and
// in-process transports move data at memory speed; wrapping a rig's
// connections in ThrottledConn reproduces the regime the paper
// evaluates — 10 Mb/s to 155 Mb/s networks where transfer time, not
// CPU, dominates — so that pipelining and striping effects are visible
// in benchmarks.
type ThrottledConn struct {
	conn  Conn
	pacer *simtime.Pacer
}

// NewThrottledConn models conn as a link carrying bytesPerSec.
// bytesPerSec <= 0 means unlimited.
func NewThrottledConn(conn Conn, bytesPerSec int64) *ThrottledConn {
	return &ThrottledConn{conn: conn, pacer: simtime.NewPacer(bytesPerSec, 0)}
}

// Send implements Conn, charging serialization delay before the
// underlying send.
func (t *ThrottledConn) Send(msg []byte) error {
	t.pacer.Charge(len(msg))
	return t.conn.Send(msg)
}

// SendVec implements VectorSender: the link charges total bytes exactly
// as Send would, then forwards the gather list so a vectored underlying
// transport stays vectored behind the throttle.
func (t *ThrottledConn) SendVec(bufs net.Buffers) error {
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	t.pacer.Charge(n)
	return SendVectored(t.conn, bufs)
}

// Recv implements Conn. The receive side is not charged: the sender on
// the other end of the link pays for its own bytes.
func (t *ThrottledConn) Recv() ([]byte, error) { return t.conn.Recv() }

// Close implements Conn.
func (t *ThrottledConn) Close() error { return t.conn.Close() }

// SetSendDeadline forwards to the underlying transport when it supports
// deadlines.
func (t *ThrottledConn) SetSendDeadline(dl time.Time) error {
	if d, ok := t.conn.(SendDeadliner); ok {
		return d.SetSendDeadline(dl)
	}
	return nil
}

// ThrottledListener wraps every accepted connection in a ThrottledConn,
// so a whole server rig runs behind modeled links.
type ThrottledListener struct {
	l           Listener
	bytesPerSec int64
}

// NewThrottledListener models every connection accepted from l as a
// bytesPerSec link.
func NewThrottledListener(l Listener, bytesPerSec int64) *ThrottledListener {
	return &ThrottledListener{l: l, bytesPerSec: bytesPerSec}
}

// Accept implements Listener.
func (t *ThrottledListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewThrottledConn(c, t.bytesPerSec), nil
}

// Close implements Listener.
func (t *ThrottledListener) Close() error { return t.l.Close() }

// Addr implements Listener.
func (t *ThrottledListener) Addr() string { return t.l.Addr() }

// ErrInjected marks an error produced by the fault-injection layer
// rather than a real transport. Tests can distinguish scheduled faults
// from genuine bugs with errors.Is.
var ErrInjected = errors.New("rpc: injected fault")

// FaultStats counts what the schedule actually did, for asserting that
// a test exercised the path it meant to.
type FaultStats struct {
	Sent         uint64 // messages offered to faulted conns
	Dropped      uint64 // silently discarded
	Duplicated   uint64 // sent twice
	Severed      uint64 // connections forcibly closed
	FailedSends  uint64 // sends failed fast (drive down)
	RefusedDials uint64 // dials refused (drive down)
}

// Faults is a deterministic fault schedule for one simulated link or
// drive. All connections wrapped by (or dialed through) one Faults
// value share the schedule, so "partition drive 2" is one call that
// governs every client of that drive. Faults are applied on the send
// side, consistent with ThrottledConn's link model; a listener wrapped
// with WrapListener extends the schedule to the server's replies.
//
// Probabilistic faults draw from a seeded source: the same seed and
// the same (single-threaded) send sequence produce the same schedule.
type Faults struct {
	mu    sync.Mutex
	rng   *rand.Rand
	conns map[*FaultConn]struct{}

	down        bool // crashed: live conns severed, dials refused, sends fail fast
	partitioned bool // blackholed: sends vanish silently, detection is by deadline

	dropEvery  uint64  // drop every Nth send (0 = off)
	dupEvery   uint64  // duplicate every Nth send (0 = off)
	dropProb   float64 // drop each send with probability p
	dupProb    float64 // duplicate each send with probability p
	delay      time.Duration
	severAfter int64 // sever all conns after this many more sends (<=0 = off)

	stats FaultStats
}

// NewFaults builds an empty (pass-through) schedule; faults are armed
// by the control methods below, before or during traffic.
func NewFaults(seed int64) *Faults {
	return &Faults{
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*FaultConn]struct{}),
	}
}

// Wrap subjects conn to the schedule.
func (f *Faults) Wrap(conn Conn) *FaultConn {
	fc := &FaultConn{f: f, conn: conn}
	f.mu.Lock()
	down := f.down
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	if down {
		fc.Close()
	}
	return fc
}

// WrapListener subjects every accepted connection to the schedule.
func (f *Faults) WrapListener(l Listener) Listener { return &faultListener{f: f, l: l} }

// Dial runs dial under the schedule: refused while the drive is down,
// and the resulting connection is wrapped. This is the hook a client's
// reconnect path goes through, so a crashed drive stays unreachable
// until Revive.
func (f *Faults) Dial(dial func() (Conn, error)) (Conn, error) {
	f.mu.Lock()
	if f.down {
		f.stats.RefusedDials++
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: dial refused, drive down", ErrInjected)
	}
	f.mu.Unlock()
	c, err := dial()
	if err != nil {
		return nil, err
	}
	return f.Wrap(c), nil
}

// Down crashes the drive: every live connection is severed, new sends
// fail fast, and dials are refused until Revive. This is the fail-stop
// model the paper's "drives fail independently" assumption describes.
func (f *Faults) Down() {
	f.mu.Lock()
	f.down = true
	conns := make([]*FaultConn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.stats.Severed += uint64(len(conns))
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Revive brings a Down drive back. Existing connections stay dead
// (they were severed); clients must reconnect.
func (f *Faults) Revive() {
	f.mu.Lock()
	f.down = false
	f.mu.Unlock()
}

// Partition toggles a silent blackhole: sends are accepted and
// discarded, so failure is only detectable by timeout. Unlike Down,
// connections stay ostensibly alive.
func (f *Faults) Partition(on bool) {
	f.mu.Lock()
	f.partitioned = on
	f.mu.Unlock()
}

// DropEvery drops every nth send (0 disables).
func (f *Faults) DropEvery(n uint64) { f.mu.Lock(); f.dropEvery = n; f.mu.Unlock() }

// DuplicateEvery duplicates every nth send (0 disables).
func (f *Faults) DuplicateEvery(n uint64) { f.mu.Lock(); f.dupEvery = n; f.mu.Unlock() }

// DropRate drops each send with probability p, drawn from the seeded
// source.
func (f *Faults) DropRate(p float64) { f.mu.Lock(); f.dropProb = p; f.mu.Unlock() }

// DuplicateRate duplicates each send with probability p.
func (f *Faults) DuplicateRate(p float64) { f.mu.Lock(); f.dupProb = p; f.mu.Unlock() }

// Delay adds a fixed latency before every send.
func (f *Faults) Delay(d time.Duration) { f.mu.Lock(); f.delay = d; f.mu.Unlock() }

// SeverAfter closes every connection under the schedule after n more
// sends — the "link dies mid-window" case pipelined transfers must
// survive. n <= 0 disarms.
func (f *Faults) SeverAfter(n int64) {
	f.mu.Lock()
	f.severAfter = n
	f.mu.Unlock()
}

// Stats returns a snapshot of what the schedule has done so far.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// sendAction is one decision of the schedule, computed under the lock.
type sendAction struct {
	fail  bool // fail the send fast (drive down)
	drop  bool // discard silently
	dup   bool // send twice
	sever bool // close every conn, then fail this send
	delay time.Duration
}

func (f *Faults) plan() (sendAction, []*FaultConn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Sent++
	var a sendAction
	if f.down {
		a.fail = true
		f.stats.FailedSends++
		return a, nil
	}
	if f.severAfter > 0 {
		f.severAfter--
		if f.severAfter == 0 {
			a.sever = true
			conns := make([]*FaultConn, 0, len(f.conns))
			for c := range f.conns {
				conns = append(conns, c)
			}
			f.stats.Severed += uint64(len(conns))
			return a, conns
		}
	}
	if f.partitioned ||
		(f.dropEvery > 0 && f.stats.Sent%f.dropEvery == 0) ||
		(f.dropProb > 0 && f.rng.Float64() < f.dropProb) {
		a.drop = true
		f.stats.Dropped++
		return a, nil
	}
	if (f.dupEvery > 0 && f.stats.Sent%f.dupEvery == 0) ||
		(f.dupProb > 0 && f.rng.Float64() < f.dupProb) {
		a.dup = true
		f.stats.Duplicated++
	}
	a.delay = f.delay
	return a, nil
}

func (f *Faults) forget(fc *FaultConn) {
	f.mu.Lock()
	delete(f.conns, fc)
	f.mu.Unlock()
}

// FaultConn applies a Faults schedule to one connection's sends.
type FaultConn struct {
	f    *Faults
	conn Conn
}

// Send implements Conn, consulting the schedule first.
func (c *FaultConn) Send(msg []byte) error {
	act, sever := c.f.plan()
	if act.fail {
		return fmt.Errorf("%w: drive down", ErrInjected)
	}
	if act.sever {
		for _, sc := range sever {
			sc.Close()
		}
		return fmt.Errorf("%w: connection severed", ErrInjected)
	}
	if act.drop {
		return nil
	}
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if err := c.conn.Send(msg); err != nil {
		return err
	}
	if act.dup {
		return c.conn.Send(msg)
	}
	return nil
}

// Recv implements Conn. Receives are not faulted directly: the peer's
// send side (wrapped via WrapListener) owns its own faults, and Sever
// or Down surface here as the underlying close.
func (c *FaultConn) Recv() ([]byte, error) { return c.conn.Recv() }

// Close implements Conn and removes the conn from the schedule.
func (c *FaultConn) Close() error {
	c.f.forget(c)
	return c.conn.Close()
}

// SetSendDeadline forwards to the underlying transport when it supports
// deadlines.
func (c *FaultConn) SetSendDeadline(dl time.Time) error {
	if d, ok := c.conn.(SendDeadliner); ok {
		return d.SetSendDeadline(dl)
	}
	return nil
}

type faultListener struct {
	f *Faults
	l Listener
}

// Accept implements Listener, wrapping each accepted conn in the
// schedule so server replies fault the same way client requests do.
func (fl *faultListener) Accept() (Conn, error) {
	c, err := fl.l.Accept()
	if err != nil {
		return nil, err
	}
	return fl.f.Wrap(c), nil
}

// Close implements Listener.
func (fl *faultListener) Close() error { return fl.l.Close() }

// Addr implements Listener.
func (fl *faultListener) Addr() string { return fl.l.Addr() }
