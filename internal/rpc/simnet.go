package rpc

import (
	"time"

	"nasd/internal/simtime"
)

// ThrottledConn wraps a Conn with a link-bandwidth model: every sent
// message is charged its serialization delay on a shared link
// (concurrent senders queue, as they would on one wire). Loopback and
// in-process transports move data at memory speed; wrapping a rig's
// connections in ThrottledConn reproduces the regime the paper
// evaluates — 10 Mb/s to 155 Mb/s networks where transfer time, not
// CPU, dominates — so that pipelining and striping effects are visible
// in benchmarks.
type ThrottledConn struct {
	conn  Conn
	pacer *simtime.Pacer
}

// NewThrottledConn models conn as a link carrying bytesPerSec.
// bytesPerSec <= 0 means unlimited.
func NewThrottledConn(conn Conn, bytesPerSec int64) *ThrottledConn {
	return &ThrottledConn{conn: conn, pacer: simtime.NewPacer(bytesPerSec, 0)}
}

// Send implements Conn, charging serialization delay before the
// underlying send.
func (t *ThrottledConn) Send(msg []byte) error {
	t.pacer.Charge(len(msg))
	return t.conn.Send(msg)
}

// Recv implements Conn. The receive side is not charged: the sender on
// the other end of the link pays for its own bytes.
func (t *ThrottledConn) Recv() ([]byte, error) { return t.conn.Recv() }

// Close implements Conn.
func (t *ThrottledConn) Close() error { return t.conn.Close() }

// SetSendDeadline forwards to the underlying transport when it supports
// deadlines.
func (t *ThrottledConn) SetSendDeadline(dl time.Time) error {
	if d, ok := t.conn.(SendDeadliner); ok {
		return d.SetSendDeadline(dl)
	}
	return nil
}

// ThrottledListener wraps every accepted connection in a ThrottledConn,
// so a whole server rig runs behind modeled links.
type ThrottledListener struct {
	l           Listener
	bytesPerSec int64
}

// NewThrottledListener models every connection accepted from l as a
// bytesPerSec link.
func NewThrottledListener(l Listener, bytesPerSec int64) *ThrottledListener {
	return &ThrottledListener{l: l, bytesPerSec: bytesPerSec}
}

// Accept implements Listener.
func (t *ThrottledListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewThrottledConn(c, t.bytesPerSec), nil
}

// Close implements Listener.
func (t *ThrottledListener) Close() error { return t.l.Close() }

// Addr implements Listener.
func (t *ThrottledListener) Addr() string { return t.l.Addr() }
