package rpc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: DecodeMessage never panics and never fabricates a valid
// message from random bytes that lack the magic.
func TestDecodeMessageRobustness(t *testing.T) {
	f := func(b []byte) bool {
		msg, err := DecodeMessage(b)
		if err != nil {
			return msg == nil
		}
		// Anything accepted must round-trip to identical bytes when
		// re-encoded (canonical encoding).
		switch m := msg.(type) {
		case *Request:
			re, err2 := DecodeMessage(EncodeRequest(m))
			return err2 == nil && re != nil
		case *Reply:
			re, err2 := DecodeMessage(EncodeReply(m))
			return err2 == nil && re != nil
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: truncating a valid encoded request at any byte boundary
// either fails to decode or decodes without panicking — never a crash.
func TestTruncationRobustness(t *testing.T) {
	req := &Request{
		Proc: 3,
		Cap:  make([]byte, 59),
		Args: make([]byte, 40),
		Data: make([]byte, 300),
	}
	wire := EncodeRequest(req)
	for n := 0; n <= len(wire); n++ {
		_, _ = DecodeMessage(wire[:n]) // must not panic
	}
	rep := &Reply{Status: StatusOK, Msg: "fine", Args: make([]byte, 10), Data: make([]byte, 99)}
	wire = EncodeReply(rep)
	for n := 0; n <= len(wire); n++ {
		_, _ = DecodeMessage(wire[:n])
	}
}

// Property: random bit flips in a valid message never panic the
// decoder.
func TestBitFlipRobustness(t *testing.T) {
	req := &Request{Proc: 1, Args: []byte("args"), Data: make([]byte, 128)}
	wire := EncodeRequest(req)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), wire...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		_, _ = DecodeMessage(mut)
	}
}
