package rpc

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// countingConn wraps a net.Conn and counts Write calls. On a conn
// without writev support, net.Buffers.WriteTo degrades to one Write
// per gather-list entry, so the count bounds how many buffers a Send
// produced — the old bug (prefix written separately from the payload,
// twice per message even for the fallback) shows up as an extra call.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(b []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(b)
}

// TestTCPSendSingleWrite pins the framing fix: Send must hand the
// 4-byte length prefix and the payload to the kernel in ONE call (a
// vectored write), not a prefix write followed by a payload write —
// the old two-write shape could interleave with Nagle/delayed-ACK into
// a per-message latency stall.
func TestTCPSendSingleWrite(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	cc := &countingConn{Conn: client}
	conn := NewTCPConn(cc)
	defer conn.Close()

	msg := bytes.Repeat([]byte{0x42}, 3000)
	done := make(chan []byte, 1)
	go func() {
		// Drain whatever arrives until the full frame is in.
		var got []byte
		buf := make([]byte, 8192)
		for len(got) < 4+len(msg) {
			server.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := server.Read(buf)
			if err != nil {
				t.Errorf("server read: %v", err)
				break
			}
			got = append(got, buf[:n]...)
		}
		done <- got
	}()
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if len(got) != 4+len(msg) || !bytes.Equal(got[4:], msg) {
		t.Fatalf("framed payload mismatch: got %d bytes", len(got))
	}
	// net.Pipe has no writev; net.Buffers falls back to sequential
	// Write calls on it. What we can still pin exactly: the whole
	// frame went through one Send with no extra flushes, i.e. at most
	// one Write per buffer in the gather list (header + payload), and
	// never a second payload write.
	if w := cc.writes.Load(); w > 2 {
		t.Fatalf("Send issued %d writes, want <= 2 (one vectored write, or header+payload fallback)", w)
	}

	// On a real TCP socket, net.Buffers uses writev: the frame must
	// arrive as one syscall. Assert the gather list is what writev
	// sees — a single Send populates both buffers at once.
	v, ok := conn.(VectorSender)
	if !ok {
		t.Fatal("tcp conn does not implement VectorSender")
	}
	done2 := make(chan []byte, 1)
	go func() {
		var got2 []byte
		buf := make([]byte, 64)
		for len(got2) < 4+3 {
			server.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := server.Read(buf)
			if err != nil {
				t.Errorf("server read: %v", err)
				break
			}
			got2 = append(got2, buf[:n]...)
		}
		done2 <- got2
	}()
	if err := v.SendVec(net.Buffers{[]byte{1, 2}, []byte{3}}); err != nil {
		t.Fatalf("SendVec: %v", err)
	}
	if got2 := <-done2; !bytes.Equal(got2[4:], []byte{1, 2, 3}) {
		t.Fatalf("vectored frame mismatch: % x", got2)
	}
}

// TestTCPSendVecOverTCP runs the same framing over a real loopback TCP
// socket, where net.Buffers genuinely uses writev, and verifies a
// mixed stream of Send and SendVec frames arrives intact and in order.
func TestTCPSendVecOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type result struct {
		frames [][]byte
		err    error
	}
	res := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			res <- result{err: err}
			return
		}
		defer c.Close()
		rc := NewTCPConn(c)
		var frames [][]byte
		for i := 0; i < 3; i++ {
			f, err := rc.Recv()
			if err != nil {
				res <- result{err: err}
				return
			}
			frames = append(frames, append([]byte(nil), f...))
		}
		res <- result{frames: frames}
	}()
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewTCPConn(nc)
	defer conn.Close()
	if err := conn.Send([]byte("plain")); err != nil {
		t.Fatal(err)
	}
	v := conn.(VectorSender)
	if err := v.SendVec(net.Buffers{[]byte("head"), []byte("-"), []byte("tail")}); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0x7E}, 1<<20)
	if err := v.SendVec(net.Buffers{[]byte("hdr:"), big}); err != nil {
		t.Fatal(err)
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	want := [][]byte{[]byte("plain"), []byte("head-tail"), append([]byte("hdr:"), big...)}
	for i := range want {
		if !bytes.Equal(r.frames[i], want[i]) {
			t.Fatalf("frame %d mismatch: got %d bytes, want %d", i, len(r.frames[i]), len(want[i]))
		}
	}
}
