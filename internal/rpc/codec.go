package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a decode runs past the end of a message.
var ErrTruncated = errors.New("rpc: truncated message")

// Encoder builds a binary message. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset makes the encoder append into buf (from length zero, keeping
// buf's capacity). Passing a pooled buffer lets hot paths encode
// without growing a fresh allocation per message; the encoded bytes
// alias buf until it outgrows the capacity.
func (e *Encoder) Reset(buf []byte) { e.buf = buf[:0] }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bytes32 appends a 32-bit-length-prefixed byte slice.
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) { e.Bytes32([]byte(s)) }

// Raw appends bytes with no length prefix.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder reads a binary message with a sticky error: after the first
// failure every subsequent read returns zero values, and Err reports
// the failure once at the end.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder returns a decoder over b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.b))
		return false
	}
	return true
}

// U8 reads a byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bytes32 reads a 32-bit-length-prefixed byte slice. The result aliases
// the underlying message.
func (d *Decoder) Bytes32() []byte {
	n := int(d.U32())
	if d.err != nil || !d.need(n) {
		return nil
	}
	v := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes32()) }

// Raw reads n bytes with no length prefix.
func (d *Decoder) Raw(n int) []byte {
	if !d.need(n) {
		return nil
	}
	v := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}
