package rpc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerPoolDispatchesConcurrently proves the tentpole property of
// the server side: requests arriving on ONE connection execute in
// parallel. Every handler invocation blocks until `want` of them are in
// flight simultaneously; with serial dispatch this would deadlock.
func TestWorkerPoolDispatchesConcurrently(t *testing.T) {
	const want = 4
	var inFlight atomic.Int64
	release := make(chan struct{})
	srv := NewServer(HandlerFunc(func(req *Request) *Reply {
		if inFlight.Add(1) == want {
			close(release)
		}
		defer inFlight.Add(-1)
		select {
		case <-release:
		case <-time.After(5 * time.Second):
			return &Reply{Status: StatusError, Msg: "never reached concurrency"}
		}
		return &Reply{Status: StatusOK}
	}), WithWorkers(want))
	l := NewInProcListener("s")
	go srv.Serve(l)
	defer srv.Close()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make([]error, want)
	for i := 0; i < want; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := cli.Call(context.Background(), &Request{Proc: 1})
			if err != nil {
				errs[i] = err
			} else if rep.Status != StatusOK {
				errs[i] = errors.New(rep.Msg)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkerPoolBounded: with a single worker, requests on one
// connection never overlap, no matter how many the client pipelines.
func TestWorkerPoolBounded(t *testing.T) {
	var inFlight, maxSeen atomic.Int64
	srv := NewServer(HandlerFunc(func(req *Request) *Reply {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return &Reply{Status: StatusOK}
	}), WithWorkers(1))
	l := NewInProcListener("s")
	go srv.Serve(l)
	defer srv.Close()

	conn, _ := l.Dial()
	cli := NewClient(conn)
	defer cli.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli.Call(context.Background(), &Request{Proc: 1})
		}()
	}
	wg.Wait()
	if maxSeen.Load() != 1 {
		t.Fatalf("single-worker server ran %d handlers concurrently", maxSeen.Load())
	}
}

// TestCallCancellation: a canceled context fails the pending call
// promptly even though the server never replies, and the connection
// remains usable for later calls.
func TestCallCancellation(t *testing.T) {
	block := make(chan struct{})
	srv := NewServer(HandlerFunc(func(req *Request) *Reply {
		if req.Proc == 99 {
			<-block // wedge this request until the test ends
		}
		return &Reply{Status: StatusOK}
	}))
	l := NewInProcListener("s")
	go srv.Serve(l)
	defer srv.Close()
	defer close(block) // LIFO: unwedge handlers before srv.Close waits on them

	conn, _ := l.Dial()
	cli := NewClient(conn)
	defer cli.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(ctx, &Request{Proc: 99})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled call returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled call never returned")
	}
	// The mux forgot the abandoned call and the connection still works.
	if n := cli.Stats().InFlight; n != 0 {
		t.Fatalf("in-flight after cancellation = %d", n)
	}
	if _, err := cli.Call(context.Background(), &Request{Proc: 1}); err != nil {
		t.Fatalf("call after cancellation: %v", err)
	}
}

// TestCallDeadline: an already-expired deadline fails before any bytes
// move; a short deadline fails a wedged call with DeadlineExceeded.
func TestCallDeadline(t *testing.T) {
	block := make(chan struct{})
	srv := NewServer(HandlerFunc(func(req *Request) *Reply {
		<-block
		return &Reply{Status: StatusOK}
	}))
	l := NewInProcListener("s")
	go srv.Serve(l)
	defer srv.Close()
	defer close(block) // LIFO: unwedge handlers before srv.Close waits on them

	conn, _ := l.Dial()
	cli := NewClient(conn)
	defer cli.Close()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := cli.Call(expired, &Request{Proc: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v", err)
	}

	short, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := cli.Call(short, &Request{Proc: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("short deadline: %v", err)
	}
}

// TestStatsCounters: the per-connection counters the pipelining layer
// surfaces move as traffic flows.
func TestStatsCounters(t *testing.T) {
	srv := NewServer(echoServer(t))
	l := NewInProcListener("s")
	go srv.Serve(l)
	defer srv.Close()

	conn, _ := l.Dial()
	cli := NewClient(conn)
	defer cli.Close()

	const calls = 10
	for i := 0; i < calls; i++ {
		if _, err := cli.Call(context.Background(), &Request{Proc: 1, Data: make([]byte, 1024)}); err != nil {
			t.Fatal(err)
		}
	}
	cs := cli.Stats()
	if cs.Calls != calls || cs.InFlight != 0 {
		t.Fatalf("client stats = %+v", cs)
	}
	if cs.BytesSent == 0 || cs.BytesRecv == 0 {
		t.Fatalf("client byte counters never moved: %+v", cs)
	}
	ss := srv.Stats()
	if ss.Requests != calls || ss.InFlight != 0 || ss.Conns != 1 {
		t.Fatalf("server stats = %+v", ss)
	}
	if ss.BytesIn < calls*1024 {
		t.Fatalf("server BytesIn = %d", ss.BytesIn)
	}
}
