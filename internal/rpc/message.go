package rpc

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"nasd/internal/bufpool"
	"nasd/internal/crypt"
)

// Magic identifies NASD RPC messages on the wire.
const Magic uint32 = 0x4E52_5043 // "NRPC"

// Message kinds.
const (
	kindRequest uint8 = 1
	kindReply   uint8 = 2
)

// Security option flags carried in the security header (Figure 5:
// "indicates key and security options to use when handling request").
const (
	// SecNone disables integrity checks (the configuration the paper's
	// measurements ran, since its prototype lacked MAC hardware).
	SecNone uint8 = 0
	// SecIntegrity enables request/overall digests.
	SecIntegrity uint8 = 1
)

// Status codes carried in replies.
type Status uint16

// Reply status values.
const (
	StatusOK Status = iota
	StatusError
	StatusAuthFailure // capability or digest rejected: revisit file manager
	StatusReplay
	StatusNoObject
	StatusNoPartition
	StatusQuota
	StatusBadRequest
	StatusCapExpired // capability past its expiry: renew at the file manager and retry
	// StatusRetryLater is the typed backpressure rejection: the drive
	// refused to queue the request (admission queue full, tenant over
	// its rate, or the deadline can no longer be met) and demonstrably
	// did NOT execute it, so any op — idempotent or not — may be safely
	// reissued. The reply's Args carry a retry-after hint
	// (RetryAfterHint); clients pace their reissue by it. Shed traffic
	// is flow control, not failure: it must not open circuit breakers
	// or count against drive health.
	StatusRetryLater
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusError:
		return "error"
	case StatusAuthFailure:
		return "auth-failure"
	case StatusReplay:
		return "replay"
	case StatusNoObject:
		return "no-object"
	case StatusNoPartition:
		return "no-partition"
	case StatusQuota:
		return "quota"
	case StatusBadRequest:
		return "bad-request"
	case StatusCapExpired:
		return "cap-expired"
	case StatusRetryLater:
		return "retry-later"
	}
	return fmt.Sprintf("status(%d)", uint16(s))
}

// TraceContext is the span context a request carries for cross-layer
// tracing: the trace ID naming the end-to-end operation and the
// caller's span ID, which becomes the parent of the server-side span.
// It travels outside the signed body (see Request.SigningBody) — it is
// observability metadata, not an authorization input, and keeping it
// unsigned lets middleboxes or future proxies restamp it without
// holding capability keys.
type TraceContext struct {
	TraceID uint64 // 0 = untraced
	Parent  uint64 // caller's span ID (0 = root)
}

// Request is one NASD RPC request, mirroring Figure 5's layering.
type Request struct {
	MsgID uint64
	Trace TraceContext // span context for cross-layer tracing
	// DeadlineNS is the caller's remaining time budget in nanoseconds
	// at send time (0 = no deadline). It is a relative budget, not an
	// absolute timestamp, so client and drive clocks need not agree.
	// Like Trace it travels outside the signed body: it is a QoS input
	// the drive's load shedder uses to drop requests whose deadline can
	// no longer be met before they consume media time — an adversary
	// who tampers with it can only get their own request dropped.
	DeadlineNS uint64
	Proc       uint16
	SecOpts    uint8
	Cap        []byte // encoded capability public portion (nil if none)
	Args       []byte
	Data       []byte // bulk payload (write data)
	Nonce      crypt.Nonce
	ReqDig     crypt.Digest // keyed by the capability's private portion
	AllDig     crypt.Digest // covers the bulk data too
}

// SigningBody returns the byte string the request digest covers: the
// procedure, capability, args, nonce, and a hash of the bulk data (so
// data tampering is caught without digesting the data twice).
func (r *Request) SigningBody() []byte {
	return r.AppendSigningBody(nil)
}

// AppendSigningBody appends the signing body to buf (which may be a
// pooled buffer; nil allocates) and returns the extended slice. Hot
// paths sign and verify per request, so reusing buf keeps the digest
// phase allocation-free.
func (r *Request) AppendSigningBody(buf []byte) []byte {
	var e Encoder
	e.Reset(buf)
	e.U16(r.Proc)
	e.Bytes32(r.Cap)
	e.Bytes32(r.Args)
	e.U64(r.Nonce.Client)
	e.U64(r.Nonce.Counter)
	sum := sha256.Sum256(r.Data)
	e.Raw(sum[:])
	return e.Bytes()
}

// Reply is one NASD RPC reply.
type Reply struct {
	MsgID  uint64
	Status Status
	Msg    string // human-readable error detail (empty on success)
	Args   []byte
	Data   []byte // bulk payload (read data)

	// OnSent, when set by a server-side handler, runs once after the
	// reply has been handed to the transport (which never retains the
	// buffers past Send). It is the release point for pooled memory the
	// handler lent to Data — the handler must not touch Data after
	// returning if it sets OnSent.
	OnSent func()

	// frame is the pooled receive buffer backing Args/Data on the
	// client side; Release returns it.
	frame []byte
}

// Release returns the pooled receive frame backing this reply's
// Args/Data views, if any. Callers that fully consumed the reply —
// copied Data out, decoded Args into values — may call it to recycle
// the frame; afterwards Args and Data must not be touched. Calling
// Release is always optional (an unreleased frame is simply collected
// by the GC) and safe to call more than once.
func (r *Reply) Release() {
	f := r.frame
	if f == nil {
		return
	}
	r.frame = nil
	r.Args = nil
	r.Data = nil
	bufpool.Put(f)
}

// Errorf builds an error reply.
func Errorf(id uint64, st Status, format string, args ...any) *Reply {
	return &Reply{MsgID: id, Status: st, Msg: fmt.Sprintf(format, args...)}
}

// RetryLater builds a typed backpressure rejection carrying a
// retry-after hint: the server's estimate of when it will have room
// for this request again. The hint rides in Args as a little-endian
// uint64 of nanoseconds, so it survives every transport unchanged.
func RetryLater(id uint64, after time.Duration, format string, args ...any) *Reply {
	if after < 0 {
		after = 0
	}
	var e Encoder
	e.Reset(nil)
	e.U64(uint64(after))
	return &Reply{
		MsgID:  id,
		Status: StatusRetryLater,
		Msg:    fmt.Sprintf(format, args...),
		Args:   e.Bytes(),
	}
}

// RetryAfterHint decodes the retry-after hint from a StatusRetryLater
// reply. It returns (0, false) for other statuses or a malformed hint.
func RetryAfterHint(r *Reply) (time.Duration, bool) {
	if r == nil || r.Status != StatusRetryLater || len(r.Args) < 8 {
		return 0, false
	}
	d := NewDecoder(r.Args)
	ns := d.U64()
	if d.Err() != nil {
		return 0, false
	}
	return time.Duration(ns), true
}

// The wire layout puts the bulk payload LAST in both directions, after
// its 32-bit length prefix: a message is then header bytes followed by
// payload bytes, and the send path can writev {header, payload} without
// ever joining them. AppendRequestHeader/AppendReplyHeader produce the
// header (everything up to and including the payload length prefix);
// EncodeRequest/EncodeReply produce the joined form for callers that
// want one buffer.

// AppendRequestHeader appends r's wire header — every field including
// the Data length prefix but not the Data bytes — to buf and returns
// the extended slice. Transmitting buf followed by r.Data yields
// exactly EncodeRequest(r).
func AppendRequestHeader(buf []byte, r *Request) []byte {
	var e Encoder
	e.Reset(buf)
	e.U32(Magic)
	e.U8(kindRequest)
	e.U64(r.MsgID)
	e.U64(r.Trace.TraceID)
	e.U64(r.Trace.Parent)
	e.U64(r.DeadlineNS)
	e.U16(r.Proc)
	e.U8(r.SecOpts)
	e.Bytes32(r.Cap)
	e.Bytes32(r.Args)
	e.U64(r.Nonce.Client)
	e.U64(r.Nonce.Counter)
	e.Raw(r.ReqDig[:])
	e.Raw(r.AllDig[:])
	e.U32(uint32(len(r.Data)))
	return e.Bytes()
}

// EncodeRequest serializes a request (without transport framing).
func EncodeRequest(r *Request) []byte {
	return append(AppendRequestHeader(nil, r), r.Data...)
}

// AppendReplyHeader appends r's wire header — every field including the
// Data length prefix but not the Data bytes — to buf and returns the
// extended slice. Transmitting buf followed by r.Data yields exactly
// EncodeReply(r).
func AppendReplyHeader(buf []byte, r *Reply) []byte {
	var e Encoder
	e.Reset(buf)
	e.U32(Magic)
	e.U8(kindReply)
	e.U64(r.MsgID)
	e.U16(uint16(r.Status))
	e.String(r.Msg)
	e.Bytes32(r.Args)
	e.U32(uint32(len(r.Data)))
	return e.Bytes()
}

// EncodeReply serializes a reply (without transport framing).
func EncodeReply(r *Reply) []byte {
	return append(AppendReplyHeader(nil, r), r.Data...)
}

// Decode errors.
var (
	ErrBadMagic = errors.New("rpc: bad magic")
	ErrBadKind  = errors.New("rpc: unexpected message kind")
)

// DecodeMessage parses a wire message into either a *Request or *Reply.
func DecodeMessage(b []byte) (any, error) {
	d := NewDecoder(b)
	if d.U32() != Magic {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, ErrBadMagic
	}
	switch kind := d.U8(); kind {
	case kindRequest:
		r := &Request{}
		r.MsgID = d.U64()
		r.Trace.TraceID = d.U64()
		r.Trace.Parent = d.U64()
		r.DeadlineNS = d.U64()
		r.Proc = d.U16()
		r.SecOpts = d.U8()
		r.Cap = d.Bytes32()
		r.Args = d.Bytes32()
		r.Nonce.Client = d.U64()
		r.Nonce.Counter = d.U64()
		copy(r.ReqDig[:], d.Raw(crypt.DigestSize))
		copy(r.AllDig[:], d.Raw(crypt.DigestSize))
		r.Data = d.Bytes32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return r, nil
	case kindReply:
		r := &Reply{}
		r.MsgID = d.U64()
		r.Status = Status(d.U16())
		r.Msg = d.String()
		r.Args = d.Bytes32()
		r.Data = d.Bytes32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return r, nil
	default:
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
}
