package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nasd/internal/bufpool"
	"nasd/internal/telemetry"
)

// Handler processes one request and returns a reply. Implementations
// must set the reply's MsgID from the request. A Handler must be safe
// for concurrent use: the server dispatches requests from one
// connection to a pool of workers, so two requests from the same client
// can execute simultaneously.
//
// Buffer contract: req.Cap, req.Args, and req.Data alias a pooled
// receive frame that the server recycles after the reply is sent.
// They are valid for the duration of Handle plus reply serialization;
// a handler that wants any of those bytes longer must copy them. The
// reply may reference request memory (it is serialized before the
// frame is recycled), and a handler lending pooled or otherwise
// releasable memory as reply Data can set Reply.OnSent to get it back.
type Handler interface {
	Handle(req *Request) *Reply
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) *Reply

// Handle calls f(req).
func (f HandlerFunc) Handle(req *Request) *Reply { return f(req) }

// DefaultWorkers is the per-connection worker pool size when
// WithWorkers is not given: enough that a large read in flight does not
// head-of-line-block small control operations on the same connection,
// small enough that one connection cannot monopolize the drive.
const DefaultWorkers = 4

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithWorkers sets the per-connection worker pool size. n = 1 restores
// strictly serial per-connection dispatch (replies in request order);
// larger n lets requests on one connection execute concurrently, with
// replies matched by message ID.
func WithWorkers(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithQueue bounds the per-connection pending-request buffer: at most n
// decoded requests may wait for a worker; a request arriving with the
// buffer full is answered immediately with StatusRetryLater (and a
// retry-after hint sized from the live service-time estimate) instead
// of being buffered. n = 0 (the default) keeps the legacy behavior: the
// pending buffer is as deep as the worker pool and a full buffer blocks
// the connection's read loop, backpressuring through the transport.
// Reject-on-full is the right edge behavior for a drive admitting
// thousands of clients — a flooding tenant learns to back off from the
// typed rejection instead of stalling frame decode for everyone
// multiplexed on the connection.
func WithQueue(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.queue = n
		}
	}
}

// WithMetrics makes the server publish its counters into reg instead of
// a private registry, so a daemon can expose one merged registry for
// the RPC plane and the drive behind it.
func WithMetrics(reg *telemetry.Registry) ServerOption {
	return func(s *Server) { s.reg = reg }
}

// WithProcNames installs a naming function for procedure numbers, used
// in per-opcode metric names ("rpc.server.op.<name>.*"). The default
// names procedures "proc<N>"; a drive passes its Op names so metrics
// read "rpc.server.op.read.calls".
func WithProcNames(name func(proc uint16) string) ServerOption {
	return func(s *Server) { s.procName = name }
}

// ServerStats is a snapshot of a server's counters, aggregated over all
// connections.
//
// Deprecated: the same counters (and per-opcode latency histograms)
// live in the telemetry registry returned by Metrics; Stats remains as
// a convenience view over it.
type ServerStats struct {
	Conns    int64  // currently open connections
	InFlight int64  // requests currently executing in handlers
	Requests uint64 // total requests dispatched
	BytesIn  uint64 // wire bytes received
	BytesOut uint64 // wire bytes sent
}

// procMetrics are the per-opcode server metrics.
type procMetrics struct {
	calls    *telemetry.Counter
	errors   *telemetry.Counter
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
	svc      *telemetry.Histogram // handler service time, ns
}

// Server serves NASD RPC requests from any number of connections. Each
// connection gets a bounded worker pool so a slow bulk transfer does
// not stall small requests multiplexed on the same connection.
type Server struct {
	handler  Handler
	workers  int
	queue    int // pending-request cap per connection (0 = block at workers)
	reg      *telemetry.Registry
	procName func(uint16) string
	wg       sync.WaitGroup
	mu       sync.Mutex
	lns      []Listener
	conns    map[Conn]bool
	closed   bool

	// svcEWMA is a rough exponentially-weighted moving average of
	// handler service time in nanoseconds, feeding the retry-after hint
	// on queue-full rejections. Plain atomic load/store: concurrent
	// updates may drop an observation, which a smoothing estimate
	// tolerates by construction.
	svcEWMA atomic.Int64

	statConns    *telemetry.Gauge
	statInFlight *telemetry.Gauge
	statRequests *telemetry.Counter
	statBytesIn  *telemetry.Counter
	statBytesOut *telemetry.Counter
	statRejected *telemetry.Counter

	procMu sync.RWMutex
	procs  map[uint16]*procMetrics
}

// NewServer returns a server dispatching to handler.
func NewServer(handler Handler, opts ...ServerOption) *Server {
	s := &Server{handler: handler, workers: DefaultWorkers, conns: make(map[Conn]bool)}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	if s.procName == nil {
		s.procName = func(p uint16) string { return fmt.Sprintf("proc%d", p) }
	}
	s.statConns = s.reg.Gauge("rpc.server.conns")
	s.statInFlight = s.reg.Gauge("rpc.server.inflight")
	s.statRequests = s.reg.Counter("rpc.server.requests")
	s.statBytesIn = s.reg.Counter("rpc.server.bytes_in")
	s.statBytesOut = s.reg.Counter("rpc.server.bytes_out")
	s.statRejected = s.reg.Counter("rpc.server.rejected")
	s.procs = make(map[uint16]*procMetrics)
	return s
}

// Metrics returns the server's telemetry registry.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// proc returns the per-opcode metrics for p, creating them on first
// sight of the opcode.
func (s *Server) proc(p uint16) *procMetrics {
	s.procMu.RLock()
	pm, ok := s.procs[p]
	s.procMu.RUnlock()
	if ok {
		return pm
	}
	s.procMu.Lock()
	defer s.procMu.Unlock()
	if pm, ok = s.procs[p]; ok {
		return pm
	}
	prefix := "rpc.server.op." + s.procName(p)
	pm = &procMetrics{
		calls:    s.reg.Counter(prefix + ".calls"),
		errors:   s.reg.Counter(prefix + ".errors"),
		bytesIn:  s.reg.Counter(prefix + ".bytes_in"),
		bytesOut: s.reg.Counter(prefix + ".bytes_out"),
		svc:      s.reg.Histogram(prefix + ".svc_ns"),
	}
	s.procs[p] = pm
	return pm
}

// Stats returns a snapshot of the server's counters.
//
// Deprecated: use Metrics().Snapshot() for the full picture; Stats
// remains as a cheap aggregate view.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Conns:    s.statConns.Load(),
		InFlight: s.statInFlight.Load(),
		Requests: s.statRequests.Load(),
		BytesIn:  s.statBytesIn.Load(),
		BytesOut: s.statBytesOut.Load(),
	}
}

// Serve accepts connections from l until the listener is closed. It
// blocks; run it on its own goroutine.
func (s *Server) Serve(l Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return
	}
	s.lns = append(s.lns, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		// Add under the lock that guards closed: Close sets closed and
		// then waits, so it can never observe the group mid-Add.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// inbound is one decoded request plus the pooled receive frame its
// Cap/Args/Data views alias; the worker recycles the frame once the
// reply is on the wire.
type inbound struct {
	req   *Request
	frame []byte
}

// serveConn decodes requests and feeds them to a bounded worker pool.
// The queue is as deep as the pool, so a flooding client is
// backpressured by the transport rather than buffering unboundedly.
//
// Frame lifecycle: the request's Cap/Args/Data alias the pooled
// receive frame, which stays valid until the handler returns and its
// reply is sent; then the frame goes back to the pool. Handlers (and
// anything they call) must therefore copy whatever request bytes they
// want to keep past Handle's return — see the Handler contract.
func (s *Server) serveConn(conn Conn) {
	s.statConns.Add(1)
	depth := s.workers
	if s.queue > 0 {
		depth = s.queue
	}
	reqs := make(chan inbound, depth)
	var workers sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for in := range reqs {
				req := in.req
				pm := s.proc(req.Proc)
				pm.calls.Inc()
				s.statInFlight.Add(1)
				start := time.Now()
				reply := s.handler.Handle(req)
				s.statInFlight.Add(-1)
				// Traced requests leave an exemplar in their service-time
				// bucket, so rpc.server.op.*.svc_ns tails link back to a
				// resolvable trace just like the drive-level histograms.
				svcNS := int64(time.Since(start))
				pm.svc.ObserveTrace(svcNS, req.Trace.TraceID)
				s.svcEWMA.Store(s.svcEWMA.Load() + (svcNS-s.svcEWMA.Load())/8)
				if reply == nil {
					reply = Errorf(req.MsgID, StatusError, "handler returned no reply")
				}
				if reply.Status != StatusOK {
					pm.errors.Inc()
				}
				reply.MsgID = req.MsgID
				// Encode the header into a pooled buffer and writev
				// {header, payload}: the bulk Data — cache block, needle
				// extent, or pooled read buffer — is never copied into
				// the message.
				hdr := AppendReplyHeader(bufpool.Get(64+len(reply.Msg)+len(reply.Args)), reply)
				var err error
				if len(reply.Data) > 0 {
					err = SendVectored(conn, net.Buffers{hdr, reply.Data})
				} else {
					err = conn.Send(hdr)
				}
				wireLen := uint64(len(hdr) + len(reply.Data))
				bufpool.Put(hdr)
				if reply.OnSent != nil {
					reply.OnSent()
				}
				bufpool.Put(in.frame)
				if err != nil {
					// The reader notices closure and drains the queue.
					conn.Close()
					continue
				}
				s.statBytesOut.Add(wireLen)
				pm.bytesOut.Add(wireLen)
			}
		}()
	}
	defer func() {
		close(reqs)
		workers.Wait()
		conn.Close()
		s.statConns.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		s.statBytesIn.Add(uint64(len(raw)))
		msg, err := DecodeMessage(raw)
		if err != nil {
			// Malformed traffic: drop the connection.
			bufpool.Put(raw)
			return
		}
		req, ok := msg.(*Request)
		if !ok {
			bufpool.Put(raw)
			return
		}
		s.statRequests.Inc()
		s.proc(req.Proc).bytesIn.Add(uint64(len(raw)))
		in := inbound{req: req, frame: raw}
		if s.queue <= 0 {
			// Legacy flow control: a full pool stalls frame decode, and
			// the transport backpressures the sender.
			reqs <- in
			continue
		}
		select {
		case reqs <- in:
		default:
			// Pending cap hit: shed at the edge with a typed rejection
			// instead of buffering without bound. The request never
			// reached a handler, so any op can be safely reissued; the
			// hint estimates when the backlog will have drained.
			s.statRejected.Inc()
			if err := s.sendReject(conn, req.MsgID, depth); err != nil {
				bufpool.Put(raw)
				return
			}
			bufpool.Put(raw)
		}
	}
}

// sendReject answers one over-cap request with StatusRetryLater. The
// hint is the time a full pending buffer takes to drain through the
// worker pool at the live service-time estimate, clamped to keep
// pathological estimates from parking clients forever.
func (s *Server) sendReject(conn Conn, msgID uint64, depth int) error {
	svc := s.svcEWMA.Load()
	hint := time.Duration(svc) * time.Duration(depth) / time.Duration(s.workers)
	if hint < 500*time.Microsecond {
		hint = 500 * time.Microsecond
	}
	if hint > 250*time.Millisecond {
		hint = 250 * time.Millisecond
	}
	rep := RetryLater(msgID, hint, "server busy: %d requests pending on this connection", depth)
	hdr := AppendReplyHeader(bufpool.Get(64+len(rep.Msg)+len(rep.Args)), rep)
	err := conn.Send(hdr)
	wireLen := uint64(len(hdr))
	bufpool.Put(hdr)
	if err != nil {
		conn.Close()
		return err
	}
	s.statBytesOut.Add(wireLen)
	return nil
}

// Close closes all listeners and open connections, then waits for
// connection goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lns := s.lns
	s.lns = nil
	conns := make([]Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// ClientStats is a snapshot of one client connection's counters.
//
// Deprecated: the same counters (plus a call-latency histogram) live in
// the telemetry registry returned by Metrics; Stats remains as a
// convenience view over it.
type ClientStats struct {
	InFlight  int64  // calls awaiting replies
	Calls     uint64 // calls issued
	Canceled  uint64 // calls abandoned by context cancellation/deadline
	Failures  uint64 // calls failed by transport or decode errors
	BytesSent uint64 // wire bytes sent
	BytesRecv uint64 // wire bytes received
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientMetrics makes the client publish its counters into reg
// instead of a private registry.
func WithClientMetrics(reg *telemetry.Registry) ClientOption {
	return func(c *Client) { c.reg = reg }
}

// Client multiplexes concurrent calls over one connection.
type Client struct {
	conn    Conn
	reg     *telemetry.Registry
	nextID  uint64
	mu      sync.Mutex
	pending map[uint64]chan *Reply
	closed  bool
	readErr error

	statInFlight  *telemetry.Gauge
	statCalls     *telemetry.Counter
	statCanceled  *telemetry.Counter
	statFailures  *telemetry.Counter
	statBytesSent *telemetry.Counter
	statBytesRecv *telemetry.Counter
	statLatency   *telemetry.Histogram
}

// NewClient wraps conn and starts the demultiplexing loop.
func NewClient(conn Conn, opts ...ClientOption) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan *Reply)}
	for _, o := range opts {
		o(c)
	}
	if c.reg == nil {
		c.reg = telemetry.NewRegistry()
	}
	c.statInFlight = c.reg.Gauge("rpc.client.inflight")
	c.statCalls = c.reg.Counter("rpc.client.calls")
	c.statCanceled = c.reg.Counter("rpc.client.canceled")
	c.statFailures = c.reg.Counter("rpc.client.failures")
	c.statBytesSent = c.reg.Counter("rpc.client.bytes_sent")
	c.statBytesRecv = c.reg.Counter("rpc.client.bytes_recv")
	c.statLatency = c.reg.Histogram("rpc.client.call_ns")
	go c.recvLoop()
	return c
}

// Metrics returns the client's telemetry registry.
func (c *Client) Metrics() *telemetry.Registry { return c.reg }

// Stats returns a snapshot of the connection's counters.
//
// Deprecated: use Metrics().Snapshot() for the full picture; Stats
// remains as a cheap aggregate view.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		InFlight:  c.statInFlight.Load(),
		Calls:     c.statCalls.Load(),
		Canceled:  c.statCanceled.Load(),
		Failures:  c.statFailures.Load(),
		BytesSent: c.statBytesSent.Load(),
		BytesRecv: c.statBytesRecv.Load(),
	}
}

func (c *Client) recvLoop() {
	for {
		raw, err := c.conn.Recv()
		if err != nil {
			c.failAll(err)
			return
		}
		c.statBytesRecv.Add(uint64(len(raw)))
		msg, err := DecodeMessage(raw)
		if err != nil {
			bufpool.Put(raw)
			c.failAll(err)
			return
		}
		reply, ok := msg.(*Reply)
		if !ok {
			bufpool.Put(raw)
			c.failAll(fmt.Errorf("rpc: server sent a request"))
			return
		}
		// The reply's Args/Data alias the pooled frame; ownership moves
		// to whoever collects the reply (Reply.Release recycles it).
		reply.frame = raw
		c.mu.Lock()
		ch, ok := c.pending[reply.MsgID]
		if ok {
			delete(c.pending, reply.MsgID)
		}
		c.mu.Unlock()
		if ok {
			ch <- reply
		} else {
			// Late reply for a canceled call: nobody will read it.
			reply.Release()
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.readErr = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

// Call sends req and blocks for its reply or ctx's end, whichever comes
// first. Concurrent calls are multiplexed by message ID. When ctx is
// canceled or its deadline passes, the pending call fails with ctx's
// error and a late reply is discarded by the receive loop; on
// transports that support it (TCP) the deadline also bounds the send.
// If ctx carries an active telemetry span and req.Trace is unset, the
// span's {trace ID, span ID} ride along in the request header (outside
// the signed body) so the server-side span becomes a child of the
// caller's; a bare telemetry request ID stamps the trace ID alone.
func (c *Client) Call(ctx context.Context, req *Request) (*Reply, error) {
	if err := ctx.Err(); err != nil {
		c.statCanceled.Inc()
		return nil, err
	}
	if req.Trace == (TraceContext{}) {
		if sc, ok := telemetry.SpanContextFrom(ctx); ok {
			req.Trace = TraceContext{TraceID: sc.TraceID, Parent: sc.SpanID}
		} else if id, ok := telemetry.RequestIDFrom(ctx); ok {
			req.Trace.TraceID = id
		}
	}
	if req.DeadlineNS == 0 {
		// Stamp the caller's remaining budget so the drive's load
		// shedder can drop the request — with a typed retry-later, not
		// a silent timeout — once the deadline is unmeetable.
		if dl, ok := ctx.Deadline(); ok {
			if remain := time.Until(dl); remain > 0 {
				req.DeadlineNS = uint64(remain)
			}
		}
	}
	ch := make(chan *Reply, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		c.statFailures.Inc()
		return nil, fmt.Errorf("%w: %w", ErrNotSent, err)
	}
	c.nextID++
	req.MsgID = c.nextID
	c.pending[req.MsgID] = ch
	c.mu.Unlock()

	c.statCalls.Inc()
	c.statInFlight.Add(1)
	defer c.statInFlight.Add(-1)
	start := time.Now()

	if sd, ok := c.conn.(SendDeadliner); ok {
		// Map the context deadline onto the transport; zero clears any
		// deadline a previous call left behind. Concurrent calls with
		// different deadlines share the socket, so the strictest recent
		// deadline may bound another call's send — a cheap and safe
		// approximation, since sends normally complete immediately.
		var dl time.Time
		if d, ok := ctx.Deadline(); ok {
			dl = d
		}
		sd.SetSendDeadline(dl)
	}

	// Vectored send: header from the pool, bulk payload straight from
	// the caller's buffer — a write's data crosses the client with zero
	// copies in user space.
	hdr := AppendRequestHeader(bufpool.Get(160+len(req.Cap)+len(req.Args)), req)
	var err error
	if len(req.Data) > 0 {
		err = SendVectored(c.conn, net.Buffers{hdr, req.Data})
	} else {
		err = c.conn.Send(hdr)
	}
	wireLen := uint64(len(hdr) + len(req.Data))
	bufpool.Put(hdr)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.MsgID)
		c.mu.Unlock()
		c.statFailures.Inc()
		return nil, fmt.Errorf("%w: %w", ErrNotSent, err)
	}
	c.statBytesSent.Add(wireLen)

	select {
	case reply, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			c.statFailures.Inc()
			return nil, err
		}
		c.statLatency.ObserveSince(start)
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.MsgID)
		c.mu.Unlock()
		c.statCanceled.Inc()
		return nil, ctx.Err()
	}
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }
