package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Handler processes one request and returns a reply. Implementations
// must set the reply's MsgID from the request.
type Handler interface {
	Handle(req *Request) *Reply
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) *Reply

// Handle calls f(req).
func (f HandlerFunc) Handle(req *Request) *Reply { return f(req) }

// Server serves NASD RPC requests from any number of connections.
type Server struct {
	handler Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	lns     []Listener
	conns   map[Conn]bool
	closed  bool
}

// NewServer returns a server dispatching to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[Conn]bool)}
}

// Serve accepts connections from l until the listener is closed. It
// blocks; run it on its own goroutine.
func (s *Server) Serve(l Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return
	}
	s.lns = append(s.lns, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		msg, err := DecodeMessage(raw)
		if err != nil {
			// Malformed traffic: drop the connection.
			return
		}
		req, ok := msg.(*Request)
		if !ok {
			return
		}
		reply := s.handler.Handle(req)
		if reply == nil {
			reply = Errorf(req.MsgID, StatusError, "handler returned no reply")
		}
		reply.MsgID = req.MsgID
		if err := conn.Send(EncodeReply(reply)); err != nil {
			return
		}
	}
}

// Close closes all listeners and open connections, then waits for
// connection goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lns := s.lns
	s.lns = nil
	conns := make([]Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Client multiplexes concurrent calls over one connection.
type Client struct {
	conn    Conn
	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan *Reply
	closed  bool
	readErr error
}

// NewClient wraps conn and starts the demultiplexing loop.
func NewClient(conn Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan *Reply)}
	go c.recvLoop()
	return c
}

func (c *Client) recvLoop() {
	for {
		raw, err := c.conn.Recv()
		if err != nil {
			c.failAll(err)
			return
		}
		msg, err := DecodeMessage(raw)
		if err != nil {
			c.failAll(err)
			return
		}
		reply, ok := msg.(*Reply)
		if !ok {
			c.failAll(fmt.Errorf("rpc: server sent a request"))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[reply.MsgID]
		if ok {
			delete(c.pending, reply.MsgID)
		}
		c.mu.Unlock()
		if ok {
			ch <- reply
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.readErr = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

// Call sends req and blocks for its reply. Concurrent calls are
// multiplexed by message ID.
func (c *Client) Call(req *Request) (*Reply, error) {
	req.MsgID = c.nextID.Add(1)
	ch := make(chan *Reply, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.pending[req.MsgID] = ch
	c.mu.Unlock()

	if err := c.conn.Send(EncodeRequest(req)); err != nil {
		c.mu.Lock()
		delete(c.pending, req.MsgID)
		c.mu.Unlock()
		return nil, err
	}
	reply, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	return reply, nil
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }
