package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestPacerUnlimitedNeverBlocks(t *testing.T) {
	p := NewPacer(0, 0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		p.Charge(1 << 20)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("unlimited pacer blocked for %v", el)
	}
	var nilPacer *Pacer
	nilPacer.Charge(1 << 20) // must not panic
}

func TestPacerEnforcesBandwidth(t *testing.T) {
	// 10 MB/s, move 1 MB in 64 KB ops: the model says 100 ms.
	p := NewPacer(10<<20, 0)
	start := time.Now()
	for i := 0; i < 16; i++ {
		p.Charge(64 << 10)
	}
	el := time.Since(start)
	if el < 80*time.Millisecond {
		t.Fatalf("1 MB at 10 MB/s took only %v", el)
	}
	if el > 300*time.Millisecond {
		t.Fatalf("1 MB at 10 MB/s took %v — pacer overshooting badly", el)
	}
}

func TestPacerSerializesConcurrentCallers(t *testing.T) {
	// Four goroutines each move 256 KB on a 10 MB/s resource: a shared
	// serial resource takes ~100 ms total, not ~25 ms.
	p := NewPacer(10<<20, 0)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				p.Charge(64 << 10)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("concurrent callers shared bandwidth unfairly: %v", el)
	}
}

func TestPacerPerOp(t *testing.T) {
	p := NewPacer(0, 5*time.Millisecond)
	start := time.Now()
	for i := 0; i < 10; i++ {
		p.Charge(0)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("10 ops at 5ms per-op took only %v", el)
	}
}
