// Package simtime paces callers to model a serial resource — a disk
// spindle, a network link — that moves data at a fixed bandwidth with a
// fixed per-operation overhead. In-memory rigs transfer at memory
// speed, which hides exactly the latency structure the paper's design
// exploits (overlap of media time with wire time); wrapping a rig's
// device and transport in pacers restores that structure so striping
// and pipelining effects are measurable without hardware.
//
// The model is a FIFO queue over an absolute virtual clock: each
// operation reserves service time on the shared timeline and sleeps
// until its own reservation completes. Reservations, not sleeps, carry
// the model: when the OS overshoots a sleep (coarse-tick kernels miss
// by about a millisecond), the timeline is already prepaid and
// subsequent operations proceed without blocking until the clock
// catches up, so overshoot does not accumulate. An idleCredit floor
// bounds how far the timeline may lag real time, so genuinely idle
// periods are not banked as free bandwidth.
package simtime

import (
	"sync"
	"time"
)

// Pacer is a shared serial resource. A nil Pacer (or one built with no
// bandwidth and no per-op cost) never blocks.
type Pacer struct {
	nsPerByte float64
	perOp     time.Duration

	mu      sync.Mutex
	readyAt time.Time
}

// idleCredit bounds how much idle (or sleep-overshoot) time the
// timeline may reclaim. It must exceed the kernel's worst sleep
// overshoot, and stay small enough that real idle gaps cost bandwidth.
const idleCredit = 2 * time.Millisecond

// NewPacer models a resource moving bytesPerSec with perOp overhead per
// operation. bytesPerSec <= 0 means bandwidth is unlimited.
func NewPacer(bytesPerSec int64, perOp time.Duration) *Pacer {
	p := &Pacer{perOp: perOp}
	if bytesPerSec > 0 {
		p.nsPerByte = float64(time.Second) / float64(bytesPerSec)
	}
	return p
}

// Charge reserves service time for an n-byte operation and sleeps until
// the reservation completes. Concurrent callers queue in FIFO order, as
// they would on one spindle or one wire; their waits are true sleeps,
// so other goroutines (the rest of the pipeline) run meanwhile.
func (p *Pacer) Charge(n int) {
	if p == nil || (p.nsPerByte == 0 && p.perOp == 0) {
		return
	}
	service := p.perOp + time.Duration(p.nsPerByte*float64(n))
	p.mu.Lock()
	now := time.Now()
	if floor := now.Add(-idleCredit); p.readyAt.Before(floor) {
		p.readyAt = floor
	}
	p.readyAt = p.readyAt.Add(service)
	deadline := p.readyAt
	p.mu.Unlock()
	if wait := time.Until(deadline); wait > 0 {
		time.Sleep(wait)
	}
}
