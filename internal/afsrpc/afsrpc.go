// Package afsrpc puts the AFS manager behind the network, callbacks
// included. AFS's consistency story needs the *server* to notify
// clients ("breaking callbacks"), so unlike the request/reply fmrpc
// channel, each AFS client keeps two connections:
//
//   - a control connection for the explicit capability RPCs the paper's
//     AFS port added (acquire read/write, relinquish);
//   - a callback connection the client registers once and then listens
//     on; the server pushes break notifications down it the moment a
//     write capability is issued elsewhere.
//
// Like fmrpc, this channel carries capability private portions and must
// be deployed over a protected transport.
package afsrpc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/filemgr"
	"nasd/internal/nasdafs"
	"nasd/internal/rpc"
)

// Procedure numbers.
const (
	opRegister uint16 = iota + 1 // callback-connection handshake
	opAcquireRead
	opTryAcquireRead
	opAcquireWrite
	opRelinquish
	opTruncate
	opCreate
	// opBreak is pushed server->client on the callback connection.
	opBreak
)

// --- shared wire helpers ------------------------------------------------------

func encodeIdentity(e *rpc.Encoder, id filemgr.Identity) {
	e.U32(id.UID)
	e.U32(uint32(len(id.GIDs)))
	for _, g := range id.GIDs {
		e.U32(g)
	}
}

func decodeIdentity(d *rpc.Decoder) filemgr.Identity {
	id := filemgr.Identity{UID: d.U32()}
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		id.GIDs = append(id.GIDs, d.U32())
	}
	return id
}

func encodeHandle(e *rpc.Encoder, h filemgr.Handle) {
	e.U32(uint32(h.Drive))
	e.U64(h.DriveID)
	e.U16(h.Partition)
	e.U64(h.Object)
	if h.IsDir {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

func decodeHandle(d *rpc.Decoder) filemgr.Handle {
	return filemgr.Handle{
		Drive:     int(d.U32()),
		DriveID:   d.U64(),
		Partition: d.U16(),
		Object:    d.U64(),
		IsDir:     d.U8() == 1,
	}
}

func encodeCapability(e *rpc.Encoder, c capability.Capability) {
	e.Bytes32(c.Public.Encode())
	e.Raw(c.Private[:])
}

func decodeCapability(d *rpc.Decoder) (capability.Capability, error) {
	var c capability.Capability
	pubRaw := d.Bytes32()
	priv := d.Raw(crypt.KeySize)
	if err := d.Err(); err != nil {
		return c, err
	}
	pub, err := capability.DecodePublic(pubRaw)
	if err != nil {
		return c, err
	}
	c.Public = pub
	copy(c.Private[:], priv)
	return c, nil
}

func statusFor(err error) (rpc.Status, string) {
	switch {
	case errors.Is(err, nasdafs.ErrWriteLocked):
		return rpc.StatusError, "write-locked"
	case errors.Is(err, nasdafs.ErrQuota):
		return rpc.StatusQuota, "quota"
	case errors.Is(err, filemgr.ErrNotFound):
		return rpc.StatusNoObject, "not-found"
	case errors.Is(err, filemgr.ErrPerm):
		return rpc.StatusAuthFailure, "perm"
	case errors.Is(err, filemgr.ErrExists):
		return rpc.StatusBadRequest, "exists"
	default:
		return rpc.StatusError, "error"
	}
}

func errorFor(kind, detail string) error {
	switch kind {
	case "write-locked":
		return fmt.Errorf("%w (%s)", nasdafs.ErrWriteLocked, detail)
	case "quota":
		return fmt.Errorf("%w (%s)", nasdafs.ErrQuota, detail)
	case "not-found":
		return fmt.Errorf("%w (%s)", filemgr.ErrNotFound, detail)
	case "perm":
		return fmt.Errorf("%w (%s)", filemgr.ErrPerm, detail)
	case "exists":
		return fmt.Errorf("%w (%s)", filemgr.ErrExists, detail)
	default:
		return fmt.Errorf("afsrpc: %s", detail)
	}
}

// --- server ---------------------------------------------------------------------

// remoteReceiver pushes callback breaks to one registered client over
// its callback connection.
type remoteReceiver struct {
	token uint64
	mu    sync.Mutex
	conn  rpc.Conn
}

// BreakCallback implements nasdafs.CallbackReceiver: it ships the break
// to the remote client. Delivery is best effort, like AFS: a client
// that misses a break rediscovers truth on its next acquire (its
// capability no longer matches).
func (r *remoteReceiver) BreakCallback(path string) {
	var e rpc.Encoder
	e.String(path)
	msg := rpc.EncodeRequest(&rpc.Request{Proc: opBreak, Args: e.Bytes()})
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = r.conn.Send(msg)
}

// Server serves the AFS manager protocol.
type Server struct {
	mgr *nasdafs.Manager

	mu        sync.Mutex
	receivers map[uint64]*remoteReceiver
	closed    bool
	lns       []rpc.Listener
	conns     map[rpc.Conn]bool
	wg        sync.WaitGroup
}

// NewServer wraps mgr.
func NewServer(mgr *nasdafs.Manager) *Server {
	return &Server{
		mgr:       mgr,
		receivers: make(map[uint64]*remoteReceiver),
		conns:     make(map[rpc.Conn]bool),
	}
}

// Serve accepts control and callback connections from l. It blocks; run
// it on its own goroutine and call Close to stop.
func (s *Server) Serve(l rpc.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return
	}
	s.lns = append(s.lns, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops all listeners and connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lns := s.lns
	s.lns = nil
	conns := make([]rpc.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// receiverFor resolves (or lazily creates a stub for) a client token.
// Tokens without a registered callback connection still work — their
// breaks just have nowhere to go, matching an AFS client that lost its
// callback channel.
func (s *Server) receiverFor(token uint64) *remoteReceiver {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.receivers[token]
	if !ok {
		r = &remoteReceiver{token: token}
		s.receivers[token] = r
	}
	return r
}

func (s *Server) serveConn(conn rpc.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		msg, err := rpc.DecodeMessage(raw)
		if err != nil {
			return
		}
		req, ok := msg.(*rpc.Request)
		if !ok {
			return
		}
		if req.Proc == opRegister {
			d := rpc.NewDecoder(req.Args)
			token := d.U64()
			if d.Err() != nil {
				return
			}
			r := s.receiverFor(token)
			r.mu.Lock()
			r.conn = conn
			r.mu.Unlock()
			reply := &rpc.Reply{MsgID: req.MsgID, Status: rpc.StatusOK}
			if err := conn.Send(rpc.EncodeReply(reply)); err != nil {
				return
			}
			// The connection now belongs to the push channel; keep
			// reading (acks/garbage) until it dies so closure is noticed.
			continue
		}
		reply := s.handle(req)
		reply.MsgID = req.MsgID
		if err := conn.Send(rpc.EncodeReply(reply)); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *rpc.Request) *rpc.Reply {
	ctx := context.Background()
	d := rpc.NewDecoder(req.Args)
	token := d.U64()
	rcv := s.receiverFor(token)
	fail := func(err error) *rpc.Reply {
		st, kind := statusFor(err)
		return rpc.Errorf(req.MsgID, st, "%s: %v", kind, err)
	}
	acquireReply := func(h filemgr.Handle, cap capability.Capability) *rpc.Reply {
		var e rpc.Encoder
		encodeHandle(&e, h)
		encodeCapability(&e, cap)
		return &rpc.Reply{Status: rpc.StatusOK, Args: e.Bytes()}
	}
	switch req.Proc {
	case opAcquireRead, opTryAcquireRead:
		id := decodeIdentity(d)
		path := d.String()
		if d.Err() != nil {
			return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "bad-args: %v", d.Err())
		}
		var h filemgr.Handle
		var cap capability.Capability
		var err error
		if req.Proc == opAcquireRead {
			h, cap, err = s.mgr.AcquireRead(ctx, rcv, id, path)
		} else {
			h, cap, err = s.mgr.TryAcquireRead(ctx, rcv, id, path)
		}
		if err != nil {
			return fail(err)
		}
		return acquireReply(h, cap)
	case opAcquireWrite:
		id := decodeIdentity(d)
		path := d.String()
		escrow := d.U64()
		if d.Err() != nil {
			return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "bad-args: %v", d.Err())
		}
		h, cap, err := s.mgr.AcquireWrite(ctx, rcv, id, path, escrow)
		if err != nil {
			return fail(err)
		}
		return acquireReply(h, cap)
	case opRelinquish:
		path := d.String()
		if d.Err() != nil {
			return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "bad-args: %v", d.Err())
		}
		if err := s.mgr.Relinquish(ctx, rcv, path); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opTruncate:
		h := decodeHandle(d)
		size := d.U64()
		if d.Err() != nil {
			return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "bad-args: %v", d.Err())
		}
		if err := s.mgr.Truncate(ctx, h, size); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opCreate:
		id := decodeIdentity(d)
		path := d.String()
		mode := d.U32()
		if d.Err() != nil {
			return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "bad-args: %v", d.Err())
		}
		if err := s.mgr.CreateFile(ctx, id, path, mode); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	default:
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "bad-args: unknown proc %d", req.Proc)
	}
}

// --- client ---------------------------------------------------------------------

// Client is a remote AFS manager handle implementing nasdafs.ManagerAPI.
// Callback breaks pushed by the server are delivered to the receiver
// passed to the acquire calls (one nasdafs.Client per afsrpc.Client).
type Client struct {
	ctl   *rpc.Client
	token uint64

	mu       sync.Mutex
	cbConn   rpc.Conn
	receiver nasdafs.CallbackReceiver
}

// Dial establishes the control and callback connections. token must be
// unique among this manager's clients.
func Dial(dial func() (rpc.Conn, error), token uint64) (*Client, error) {
	ctlConn, err := dial()
	if err != nil {
		return nil, err
	}
	cbConn, err := dial()
	if err != nil {
		ctlConn.Close()
		return nil, err
	}
	c := &Client{ctl: rpc.NewClient(ctlConn), token: token, cbConn: cbConn}

	// Register the callback channel.
	var e rpc.Encoder
	e.U64(token)
	if err := cbConn.Send(rpc.EncodeRequest(&rpc.Request{MsgID: 1, Proc: opRegister, Args: e.Bytes()})); err != nil {
		c.Close()
		return nil, err
	}
	raw, err := cbConn.Recv()
	if err != nil {
		c.Close()
		return nil, err
	}
	msg, err := rpc.DecodeMessage(raw)
	if err != nil {
		c.Close()
		return nil, err
	}
	if rep, ok := msg.(*rpc.Reply); !ok || rep.Status != rpc.StatusOK {
		c.Close()
		return nil, fmt.Errorf("afsrpc: callback registration rejected")
	}
	go c.listenBreaks()
	return c, nil
}

// SetReceiver directs pushed breaks to rcv (normally the nasdafs.Client
// built on top of this connection).
func (c *Client) SetReceiver(rcv nasdafs.CallbackReceiver) {
	c.mu.Lock()
	c.receiver = rcv
	c.mu.Unlock()
}

func (c *Client) listenBreaks() {
	for {
		raw, err := c.cbConn.Recv()
		if err != nil {
			return
		}
		msg, err := rpc.DecodeMessage(raw)
		if err != nil {
			return
		}
		req, ok := msg.(*rpc.Request)
		if !ok || req.Proc != opBreak {
			continue
		}
		d := rpc.NewDecoder(req.Args)
		path := d.String()
		if d.Err() != nil {
			continue
		}
		c.mu.Lock()
		rcv := c.receiver
		c.mu.Unlock()
		if rcv != nil {
			rcv.BreakCallback(path)
		}
	}
}

// Close tears down both connections.
func (c *Client) Close() error {
	c.cbConn.Close()
	return c.ctl.Close()
}

func (c *Client) call(ctx context.Context, proc uint16, args []byte) (*rpc.Reply, error) {
	rep, err := c.ctl.Call(ctx, &rpc.Request{Proc: proc, Args: args})
	if err != nil {
		return nil, err
	}
	if rep.Status != rpc.StatusOK {
		// Unified remote-error shape: errors.Is matches both the mapped
		// nasdafs/filemgr sentinel and the client status sentinels.
		kind, detail, _ := strings.Cut(rep.Msg, ": ")
		return nil, &client.RemoteError{Status: rep.Status, Msg: rep.Msg, Err: errorFor(kind, detail)}
	}
	return rep, nil
}

func (c *Client) acquire(ctx context.Context, proc uint16, id filemgr.Identity, path string, escrow uint64) (filemgr.Handle, capability.Capability, error) {
	var e rpc.Encoder
	e.U64(c.token)
	encodeIdentity(&e, id)
	e.String(path)
	if proc == opAcquireWrite {
		e.U64(escrow)
	}
	rep, err := c.call(ctx, proc, e.Bytes())
	if err != nil {
		return filemgr.Handle{}, capability.Capability{}, err
	}
	d := rpc.NewDecoder(rep.Args)
	h := decodeHandle(d)
	cap, cerr := decodeCapability(d)
	if cerr != nil {
		return filemgr.Handle{}, capability.Capability{}, cerr
	}
	return h, cap, d.Err()
}

// AcquireRead implements nasdafs.ManagerAPI.
func (c *Client) AcquireRead(ctx context.Context, rcv nasdafs.CallbackReceiver, id filemgr.Identity, path string) (filemgr.Handle, capability.Capability, error) {
	c.SetReceiver(rcv)
	return c.acquire(ctx, opAcquireRead, id, path, 0)
}

// TryAcquireRead implements nasdafs.ManagerAPI.
func (c *Client) TryAcquireRead(ctx context.Context, rcv nasdafs.CallbackReceiver, id filemgr.Identity, path string) (filemgr.Handle, capability.Capability, error) {
	c.SetReceiver(rcv)
	return c.acquire(ctx, opTryAcquireRead, id, path, 0)
}

// AcquireWrite implements nasdafs.ManagerAPI.
func (c *Client) AcquireWrite(ctx context.Context, rcv nasdafs.CallbackReceiver, id filemgr.Identity, path string, escrowLen uint64) (filemgr.Handle, capability.Capability, error) {
	c.SetReceiver(rcv)
	return c.acquire(ctx, opAcquireWrite, id, path, escrowLen)
}

// Relinquish implements nasdafs.ManagerAPI.
func (c *Client) Relinquish(ctx context.Context, _ nasdafs.CallbackReceiver, path string) error {
	var e rpc.Encoder
	e.U64(c.token)
	e.String(path)
	_, err := c.call(ctx, opRelinquish, e.Bytes())
	return err
}

// Truncate implements nasdafs.ManagerAPI.
func (c *Client) Truncate(ctx context.Context, h filemgr.Handle, size uint64) error {
	var e rpc.Encoder
	e.U64(c.token)
	encodeHandle(&e, h)
	e.U64(size)
	_, err := c.call(ctx, opTruncate, e.Bytes())
	return err
}

// CreateFile implements nasdafs.ManagerAPI.
func (c *Client) CreateFile(ctx context.Context, id filemgr.Identity, path string, mode uint32) error {
	var e rpc.Encoder
	e.U64(c.token)
	encodeIdentity(&e, id)
	e.String(path)
	e.U32(mode)
	_, err := c.call(ctx, opCreate, e.Bytes())
	return err
}

var _ nasdafs.ManagerAPI = (*Client)(nil)
