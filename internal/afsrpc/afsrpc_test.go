package afsrpc

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/filemgr"
	"nasd/internal/nasdafs"
	"nasd/internal/rpc"
)

var seq atomic.Uint64

var testCtx = context.Background()

// env: one drive, a local AFS manager served over TCP, and a dialer for
// remote AFS clients (each gets its own drive connection + afsrpc pair).
type env struct {
	t        *testing.T
	addr     string
	driveLn  *rpc.InProcListener
	tokenSeq atomic.Uint64
}

func newEnv(t *testing.T, quota uint64) *env {
	t.Helper()
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 8192)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 1, Master: master, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	dl := rpc.NewInProcListener("d")
	dsrv := drv.Serve(dl)
	t.Cleanup(dsrv.Close)
	dial := func() *client.Drive {
		conn, err := dl.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c := client.New(conn, 1, 80_000+seq.Add(1))
		t.Cleanup(func() { c.Close() })
		return c
	}
	fm, err := filemgr.Format(testCtx, filemgr.Config{
		Drives: []filemgr.DriveTarget{{Client: dial(), DriveID: 1, Master: master}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := nasdafs.NewManager(fm, quota, []*client.Drive{dial()})
	srv := NewServer(mgr)
	l, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return &env{t: t, addr: l.Addr(), driveLn: dl}
}

// newRemoteClient builds a whole-file-caching AFS client whose manager
// is across the TCP connection.
func (e *env) newRemoteClient(id filemgr.Identity) *nasdafs.Client {
	e.t.Helper()
	rm, err := Dial(func() (rpc.Conn, error) { return rpc.DialTCP(e.addr) }, e.tokenSeq.Add(1))
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(func() { rm.Close() })
	conn, err := e.driveLn.Dial()
	if err != nil {
		e.t.Fatal(err)
	}
	dc := client.New(conn, 1, 90_000+seq.Add(1))
	e.t.Cleanup(func() { dc.Close() })
	c := nasdafs.NewClient(rm, []*client.Drive{dc}, id)
	rm.SetReceiver(c)
	return c
}

var alice = filemgr.Identity{UID: 10}
var bob = filemgr.Identity{UID: 20}

func TestRemoteFetchStoreRoundTrip(t *testing.T) {
	e := newEnv(t, 0)
	c := e.newRemoteClient(alice)
	if err := c.Create(testCtx, "/f", 0o644); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("remote-afs"), 3000)
	if err := c.StoreData(testCtx, "/f", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchData(testCtx, "/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch: %v", err)
	}
	if !c.Cached("/f") {
		t.Fatal("not cached")
	}
}

func TestCallbackBreakCrossesNetwork(t *testing.T) {
	e := newEnv(t, 0)
	writer := e.newRemoteClient(alice)
	reader := e.newRemoteClient(bob)
	if err := writer.Create(testCtx, "/shared", 0o666); err != nil {
		t.Fatal(err)
	}
	if err := writer.StoreData(testCtx, "/shared", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.FetchData(testCtx, "/shared"); err != nil {
		t.Fatal(err)
	}
	if !reader.Cached("/shared") {
		t.Fatal("reader did not cache")
	}
	// Writer stores again: issuing the write capability must push a
	// break down the reader's callback connection.
	if err := writer.StoreData(testCtx, "/shared", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for reader.Cached("/shared") {
		if time.Now().After(deadline) {
			t.Fatal("callback break never arrived over the network")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := reader.FetchData(testCtx, "/shared")
	if err != nil || string(got) != "v2" {
		t.Fatalf("refetch = %q, %v", got, err)
	}
}

func TestRemoteWriteLockAndQuota(t *testing.T) {
	e := newEnv(t, 50_000)
	w := e.newRemoteClient(alice)
	r := e.newRemoteClient(bob)
	if err := w.Create(testCtx, "/q", 0o666); err != nil {
		t.Fatal(err)
	}
	if err := w.StoreData(testCtx, "/q", make([]byte, 30_000)); err != nil {
		t.Fatal(err)
	}
	// Oversized escrow rejected with a typed error across the wire.
	err := w.StoreData(testCtx, "/q", make([]byte, 100_000))
	if !errors.Is(err, nasdafs.ErrQuota) {
		t.Fatalf("quota breach: %v", err)
	}
	// Reads still work afterwards (no stuck lock).
	if _, err := r.FetchData(testCtx, "/q"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteStoreShrinks(t *testing.T) {
	e := newEnv(t, 0)
	c := e.newRemoteClient(alice)
	if err := c.Create(testCtx, "/s", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreData(testCtx, "/s", bytes.Repeat([]byte{1}, 20_000)); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreData(testCtx, "/s", []byte("small")); err != nil {
		t.Fatal(err)
	}
	size, err := c.FetchStatus(testCtx, "/s")
	if err != nil || size != 5 {
		t.Fatalf("size = %d, %v", size, err)
	}
}

func TestPermErrorsCrossWire(t *testing.T) {
	e := newEnv(t, 0)
	w := e.newRemoteClient(alice)
	if err := w.Create(testCtx, "/private", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := w.StoreData(testCtx, "/private", []byte("x")); err != nil {
		t.Fatal(err)
	}
	intruder := e.newRemoteClient(bob)
	if _, err := intruder.FetchData(testCtx, "/private"); !errors.Is(err, filemgr.ErrPerm) {
		t.Fatalf("perm error lost on the wire: %v", err)
	}
}
