package qos_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nasd/internal/qos"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// The test protocol: Args[0] is the tenant id, Args[1] (optional) the
// cost; empty Args means control-plane (bypass). blockProc requests
// park inside the inner handler until the gate opens, which is how
// tests wedge the executors and build queue depth deterministically.
const blockProc = 99

type fakeInner struct {
	gate chan struct{}

	mu     sync.Mutex
	order  []string // tenant of each executed request, in order
	served int
}

func tenantOf(req *rpc.Request) string {
	return fmt.Sprintf("part.%d", req.Args[0])
}

func (f *fakeInner) Handle(req *rpc.Request) *rpc.Reply {
	if req.Proc == blockProc {
		<-f.gate
	}
	f.mu.Lock()
	if len(req.Args) > 0 {
		f.order = append(f.order, tenantOf(req))
	}
	f.served++
	f.mu.Unlock()
	return &rpc.Reply{MsgID: req.MsgID, Status: rpc.StatusOK}
}

func (f *fakeInner) snapshot() (order []string, served int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...), f.served
}

func classify(req *rpc.Request) (qos.Class, bool) {
	if len(req.Args) == 0 {
		return qos.Class{}, false
	}
	cost := int64(1)
	if len(req.Args) > 1 {
		cost = int64(req.Args[1])
	}
	return qos.Class{Tenant: tenantOf(req), Op: "op", Cost: cost}, true
}

func req(tenant byte, cost byte) *rpc.Request {
	return &rpc.Request{Proc: 1, Args: []byte{tenant, cost}}
}

// waitGauge polls a gauge until it reaches want.
func waitGauge(t *testing.T, g *telemetry.Gauge, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge stuck at %d, want %d", g.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// wedge submits one blockProc request and waits until an executor is
// parked inside the inner handler, leaving the queue itself empty.
func wedge(t *testing.T, c *qos.Controller, inner *fakeInner, reg *telemetry.Registry) chan *rpc.Reply {
	t.Helper()
	done := make(chan *rpc.Reply, 1)
	go func() { done <- c.Handle(&rpc.Request{Proc: blockProc, Args: []byte{0, 1}}) }()
	waitGauge(t, reg.Gauge("qos.inflight"), 1)
	return done
}

func TestWDRRFairInterleave(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 64, TenantQueue: 32, Metrics: reg,
		Events: telemetry.NewEventLog(16),
	})
	defer c.Close()
	gate := wedge(t, c, inner, reg)

	const per = 8
	var wg sync.WaitGroup
	for i := 0; i < per; i++ {
		for _, tenant := range []byte{1, 2} {
			wg.Add(1)
			go func(tenant byte) {
				defer wg.Done()
				if rep := c.Handle(req(tenant, 1)); rep.Status != rpc.StatusOK {
					t.Errorf("tenant %d: %v", tenant, rep.Status)
				}
			}(tenant)
		}
	}
	waitGauge(t, reg.Gauge("qos.queue_depth"), 2*per)
	close(inner.gate)
	wg.Wait()
	<-gate

	order, _ := inner.snapshot()
	// Equal weights, equal cost: WDRR alternates, so every prefix of
	// the served order stays balanced. Without fair queueing (plain
	// FIFO over racing goroutines) one tenant can run far ahead.
	var a, b int
	for i, tenant := range order[1:] { // order[0] is the wedge request
		switch tenant {
		case "part.1":
			a++
		case "part.2":
			b++
		}
		if diff := a - b; diff < -2 || diff > 2 {
			t.Fatalf("prefix %d unbalanced: %d vs %d (order %v)", i, a, b, order)
		}
	}
	if a != per || b != per {
		t.Fatalf("served %d/%d, want %d/%d", a, b, per, per)
	}
}

func TestWDRRWeights(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 64, TenantQueue: 32, Metrics: reg,
		Weights: map[string]int64{"part.1": 3, "part.2": 1},
		Events:  telemetry.NewEventLog(16),
	})
	defer c.Close()
	gate := wedge(t, c, inner, reg)

	const per = 8
	var wg sync.WaitGroup
	for i := 0; i < per; i++ {
		for _, tenant := range []byte{1, 2} {
			wg.Add(1)
			go func(tenant byte) {
				defer wg.Done()
				c.Handle(req(tenant, 1))
			}(tenant)
		}
	}
	waitGauge(t, reg.Gauge("qos.queue_depth"), 2*per)
	close(inner.gate)
	wg.Wait()
	<-gate

	order, _ := inner.snapshot()
	// Weight 3:1 → the WDRR period is 3x part.1 + 1x part.2, so any
	// 8-service window while both queues are busy gives part.1 six
	// services regardless of which tenant won the ring's first slot.
	a := 0
	for _, tenant := range order[1:9] {
		if tenant == "part.1" {
			a++
		}
	}
	if a < 5 {
		t.Fatalf("weight-3 tenant got %d of first 8 services (order %v)", a, order)
	}
}

func TestWDRRCostFairness(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 64, TenantQueue: 32, Metrics: reg,
		Events: telemetry.NewEventLog(16),
	})
	defer c.Close()
	gate := wedge(t, c, inner, reg)

	const per = 8
	var wg sync.WaitGroup
	for i := 0; i < per; i++ {
		for _, spec := range []struct{ tenant, cost byte }{{1, 4}, {2, 1}} {
			wg.Add(1)
			go func(tenant, cost byte) {
				defer wg.Done()
				c.Handle(req(tenant, cost))
			}(spec.tenant, spec.cost)
		}
	}
	waitGauge(t, reg.Gauge("qos.queue_depth"), 2*per)
	close(inner.gate)
	wg.Wait()
	<-gate

	order, _ := inner.snapshot()
	// part.1 sends cost-4 requests: byte-fairness means part.2's
	// cost-1 requests drain ~4x as often while both queues are busy —
	// at least 5 of any 8-service window, whatever the ring phase.
	b := 0
	for _, tenant := range order[1:9] {
		if tenant == "part.2" {
			b++
		}
	}
	if b < 5 {
		t.Fatalf("cheap tenant got %d of first 8 services (order %v)", b, order)
	}
}

func TestQueueBoundRejects(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 2, TenantQueue: 2, Metrics: reg,
		Events: telemetry.NewEventLog(16),
	})
	defer c.Close()
	gate := wedge(t, c, inner, reg)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Handle(req(1, 1)) }()
	}
	waitGauge(t, reg.Gauge("qos.queue_depth"), 2)

	rep := c.Handle(req(1, 1))
	if rep.Status != rpc.StatusRetryLater {
		t.Fatalf("status %v, want retry-later", rep.Status)
	}
	if hint, ok := rpc.RetryAfterHint(rep); !ok || hint <= 0 {
		t.Fatalf("bad hint %v ok=%v", hint, ok)
	}
	if got := reg.Counter("drive.part.1.qos.rejected").Load(); got != 1 {
		t.Fatalf("per-tenant rejected = %d, want 1", got)
	}
	if got := reg.Counter("qos.rejected").Load(); got != 1 {
		t.Fatalf("aggregate rejected = %d, want 1", got)
	}
	close(inner.gate)
	wg.Wait()
	<-gate
}

func TestTenantQueueBoundIsolates(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 16, TenantQueue: 2, Metrics: reg,
		Events: telemetry.NewEventLog(16),
	})
	defer c.Close()
	gate := wedge(t, c, inner, reg)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Handle(req(1, 1)) }()
	}
	waitGauge(t, reg.Gauge("qos.queue_depth"), 2)

	if rep := c.Handle(req(1, 1)); rep.Status != rpc.StatusRetryLater {
		t.Fatalf("hot tenant over its queue share: %v, want retry-later", rep.Status)
	}
	// The global queue still has room: another tenant gets in.
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		if rep := c.Handle(req(2, 1)); rep.Status != rpc.StatusOK {
			t.Errorf("victim tenant rejected: %v", rep.Status)
		}
	}()
	waitGauge(t, reg.Gauge("qos.queue_depth"), 3)
	close(inner.gate)
	wg.Wait()
	wg2.Wait()
	<-gate
}

func TestTokenBucketThrottles(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	close(inner.gate) // no blocking needed
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(16)
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 16, Metrics: reg,
		Rate: 0.5, Burst: 1, // 1 token now, then one every 2s
		Events: events,
	})
	defer c.Close()

	if rep := c.Handle(req(1, 1)); rep.Status != rpc.StatusOK {
		t.Fatalf("first call: %v", rep.Status)
	}
	rep := c.Handle(req(1, 1))
	if rep.Status != rpc.StatusRetryLater {
		t.Fatalf("second call: %v, want retry-later", rep.Status)
	}
	hint, ok := rpc.RetryAfterHint(rep)
	if !ok || hint < 100*time.Millisecond {
		t.Fatalf("throttle hint %v ok=%v, want a real refill wait", hint, ok)
	}
	if got := reg.Counter("drive.part.1.qos.throttled").Load(); got != 1 {
		t.Fatalf("throttled = %d, want 1", got)
	}
	// Another tenant has its own bucket and is unaffected.
	if rep := c.Handle(req(2, 1)); rep.Status != rpc.StatusOK {
		t.Fatalf("other tenant throttled too: %v", rep.Status)
	}
	// The transition emitted exactly one limit event despite repeats.
	c.Handle(req(1, 1))
	var limits int
	for _, ev := range events.Recent(16, telemetry.SevInfo) {
		if ev.Subsystem == "qos" && ev.Name == "limit" && strings.Contains(ev.Detail, "part.1") {
			limits++
		}
	}
	if limits != 1 {
		t.Fatalf("limit events = %d, want 1 (hysteresis)", limits)
	}
}

func TestDeadlineShedAtAdmission(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	close(inner.gate)
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 16, Shed: true, Metrics: reg,
		Events: telemetry.NewEventLog(16),
	})
	defer c.Close()

	// A 1ns budget can never cover the estimator's 1ms cold-start
	// prior: shed before the inner handler sees it.
	r := req(1, 1)
	r.DeadlineNS = 1
	rep := c.Handle(r)
	if rep.Status != rpc.StatusRetryLater {
		t.Fatalf("status %v, want retry-later", rep.Status)
	}
	if _, served := inner.snapshot(); served != 0 {
		t.Fatalf("inner handler ran %d times for a doomed request", served)
	}
	if got := reg.Counter("drive.part.1.qos.shed").Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	// No deadline → no shedding.
	if rep := c.Handle(req(1, 1)); rep.Status != rpc.StatusOK {
		t.Fatalf("undeadlined call: %v", rep.Status)
	}
}

func TestDeadlineShedAgedInQueue(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 16, Shed: true, Metrics: reg,
		Events: telemetry.NewEventLog(16),
	})
	defer c.Close()
	gate := wedge(t, c, inner, reg)

	// Admitted with a comfortable 30ms budget against an empty queue,
	// but wedged behind the gate past its deadline: the late check at
	// dispatch must shed it without running the inner handler.
	r := req(1, 1)
	r.DeadlineNS = uint64(30 * time.Millisecond)
	done := make(chan *rpc.Reply, 1)
	go func() { done <- c.Handle(r) }()
	waitGauge(t, reg.Gauge("qos.queue_depth"), 1)
	time.Sleep(60 * time.Millisecond)
	close(inner.gate)
	rep := <-done
	<-gate
	if rep.Status != rpc.StatusRetryLater {
		t.Fatalf("status %v, want retry-later", rep.Status)
	}
	order, _ := inner.snapshot()
	if len(order) != 1 { // only the wedge request
		t.Fatalf("inner ran aged-out request: order %v", order)
	}
	if got := reg.Counter("drive.part.1.qos.shed").Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

func TestControlPlaneBypass(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 1, TenantQueue: 1, Metrics: reg,
		Events: telemetry.NewEventLog(16),
	})
	defer c.Close()
	gate := wedge(t, c, inner, reg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); c.Handle(req(1, 1)) }()
	waitGauge(t, reg.Gauge("qos.queue_depth"), 1)

	// Queue is full, executors wedged — the control-plane request
	// (empty Args → unclassified) still goes straight through.
	ctl := make(chan *rpc.Reply, 1)
	go func() { ctl <- c.Handle(&rpc.Request{Proc: 1}) }()
	select {
	case rep := <-ctl:
		if rep.Status != rpc.StatusOK {
			t.Fatalf("bypass status %v", rep.Status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("control-plane request stuck behind the data plane")
	}
	if got := reg.Counter("qos.bypass").Load(); got != 1 {
		t.Fatalf("bypass = %d, want 1", got)
	}
	close(inner.gate)
	wg.Wait()
	<-gate
}

func TestCloseDrainsQueued(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 16, Metrics: reg,
		Events: telemetry.NewEventLog(16),
	})
	gate := wedge(t, c, inner, reg)

	done := make(chan *rpc.Reply, 1)
	go func() { done <- c.Handle(req(1, 1)) }()
	waitGauge(t, reg.Gauge("qos.queue_depth"), 1)
	c.Close()
	select {
	case rep := <-done:
		if rep.Status != rpc.StatusRetryLater {
			t.Fatalf("drained status %v, want retry-later", rep.Status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request leaked across Close")
	}
	close(inner.gate)
	<-gate
}

func TestOversizedRequestClampsToBurst(t *testing.T) {
	inner := &fakeInner{gate: make(chan struct{})}
	close(inner.gate)
	reg := telemetry.NewRegistry()
	c := qos.New(inner, qos.Config{
		Classify: classify, Concurrency: 1, Queue: 16, Metrics: reg,
		Rate: 50, Burst: 4, // a cost-20 request exceeds the whole bucket
	})
	defer c.Close()

	// A brim-full bucket admits a request costing more than its
	// capacity — burst bounds the charge, not the transfer size.
	if rep := c.Handle(req(1, 20)); rep.Status != rpc.StatusOK {
		t.Fatalf("oversized request on a full bucket: %v, want OK", rep.Status)
	}
	// The bucket was drained in full: a cost-1 follow-up throttles
	// with a real refill hint, so the sustained rate still holds.
	rep := c.Handle(req(1, 1))
	if rep.Status != rpc.StatusRetryLater {
		t.Fatalf("follow-up after full drain: %v, want retry-later", rep.Status)
	}
	if hint, ok := rpc.RetryAfterHint(rep); !ok || hint <= 0 {
		t.Fatalf("hint %v ok=%v, want a refill wait", hint, ok)
	}
	// And the hint is bounded by the burst refill, not the oversized
	// cost: even a repeated oversized request becomes admissible within
	// burst/rate seconds, never "never".
	rep = c.Handle(req(1, 20))
	if rep.Status != rpc.StatusRetryLater {
		t.Fatalf("oversized request on a drained bucket: %v, want retry-later", rep.Status)
	}
	hint, ok := rpc.RetryAfterHint(rep)
	if !ok || hint > 2*(4*time.Second/50) {
		t.Fatalf("oversized hint %v ok=%v, want <= full-bucket refill (~%v)", hint, ok, 4*time.Second/50)
	}
}
