package qos_test

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/object"
	"nasd/internal/qos"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// newQoSDrive builds an insecure drive over a throttled memory disk
// (stable ms-scale media latencies) with partitions 1 (victim) and 2
// (aggressor), one seeded object each, wrapped in a qos Controller.
func newQoSDrive(t *testing.T, cfg qos.Config) (*qos.Controller, *drive.Drive, *telemetry.Registry, [2]uint64) {
	t.Helper()
	dev := blockdev.NewThrottle(blockdev.NewMemDisk(512, 32768), 64<<20, 100*time.Microsecond)
	reg := telemetry.NewRegistry()
	d, err := drive.NewFormat(dev, drive.Config{
		ID: 1, Master: crypt.NewRandomKey(), Metrics: reg,
		Store:  object.Config{CacheBlocks: 8}, // tiny cache: reads hit media
		Events: telemetry.NewEventLog(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	var objs [2]uint64
	for i, part := range []uint16{1, 2} {
		rep := d.Handle(&rpc.Request{Proc: uint16(drive.OpCreatePartition),
			Args: (&drive.PartArgs{Partition: part}).Encode()})
		if rep.Status != rpc.StatusOK {
			t.Fatalf("mkpart %d: %v", part, rep.Status)
		}
		rep = d.Handle(&rpc.Request{Proc: uint16(drive.OpCreateObject),
			Args: (&drive.ObjArgs{Partition: part}).Encode()})
		if rep.Status != rpc.StatusOK {
			t.Fatalf("create: %v", rep.Status)
		}
		id, err := drive.DecodeIDReply(rep.Args)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 64<<10)
		rep = d.Handle(&rpc.Request{Proc: uint16(drive.OpWriteObject),
			Args: (&drive.WriteArgs{Partition: part, Object: id}).Encode(), Data: data})
		if rep.Status != rpc.StatusOK {
			t.Fatalf("seed write: %v", rep.Status)
		}
		objs[i] = id
	}
	cfg.Classify = drive.QoSClassify
	cfg.Metrics = reg
	if cfg.Events == nil {
		cfg.Events = telemetry.NewEventLog(64)
	}
	c := qos.New(d, cfg)
	t.Cleanup(c.Close)
	return c, d, reg, objs
}

func readReq(part uint16, obj uint64, off uint64, n uint64) *rpc.Request {
	return &rpc.Request{Proc: uint16(drive.OpReadObject),
		Args: (&drive.ReadArgs{Partition: part, Object: obj, Offset: off, Length: n}).Encode()}
}

// TestHotTenantCannotStarve drives a real drive through the qos plane:
// an aggressor tenant floods from many goroutines while a victim
// tenant issues closed-loop reads. Fair queueing plus the per-tenant
// queue bound must keep every victim read succeeding with a sane p99,
// while the aggressor — not the victim — absorbs the rejections.
func TestHotTenantCannotStarve(t *testing.T) {
	c, _, reg, objs := newQoSDrive(t, qos.Config{
		Concurrency: 2, Queue: 64, TenantQueue: 8,
	})

	stop := make(chan struct{})
	var aggressorRejects atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := uint64((g*31+i)%16) * 4096
				rep := c.Handle(readReq(2, objs[1], off, 4096))
				switch rep.Status {
				case rpc.StatusOK:
				case rpc.StatusRetryLater:
					aggressorRejects.Add(1)
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("aggressor: %v", rep.Status)
					return
				}
			}
		}(g)
	}

	const victimOps = 60
	lat := make([]time.Duration, 0, victimOps)
	for i := 0; i < victimOps; i++ {
		start := time.Now()
		rep := c.Handle(readReq(1, objs[0], uint64(i%16)*4096, 4096))
		if rep.Status != rpc.StatusOK {
			t.Fatalf("victim read %d failed: %v %s", i, rep.Status, rep.Msg)
		}
		lat = append(lat, time.Since(start))
	}
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	// The victim queues at most TenantQueue deep behind WDRR service
	// alternating with the aggressor; a generous absolute bound still
	// catches starvation (unfair FIFO drain of a 64-deep aggressor
	// backlog per op lands well above this under the throttled disk).
	if p99 > 500*time.Millisecond {
		t.Fatalf("victim p99 %v: starved despite fair queueing", p99)
	}
	if reg.Counter("drive.part.1.qos.rejected").Load() != 0 ||
		reg.Counter("drive.part.1.qos.shed").Load() != 0 {
		t.Fatal("victim tenant was rejected/shed; enforcement hit the wrong tenant")
	}
	if aggressorRejects.Load() == 0 && reg.Counter("drive.part.2.qos.admitted").Load() == 0 {
		t.Fatal("aggressor never ran; test proved nothing")
	}
}

// TestShedBeforeMediaIO pins the shed placement: a request whose wire
// deadline is already unmeetable is answered StatusRetryLater without
// the drive handler — and therefore the media — ever seeing it.
func TestShedBeforeMediaIO(t *testing.T) {
	c, _, reg, objs := newQoSDrive(t, qos.Config{
		Concurrency: 2, Queue: 64, Shed: true,
	})

	// Warm the estimator with real reads so the forecast is live data,
	// not just the cold-start prior.
	for i := 0; i < 8; i++ {
		if rep := c.Handle(readReq(1, objs[0], 0, 4096)); rep.Status != rpc.StatusOK {
			t.Fatalf("warm read: %v", rep.Status)
		}
	}
	callsBefore := reg.Counter("drive.op.read.calls").Load()
	if callsBefore == 0 {
		t.Fatal("warm reads did not advance drive.op.read.calls; counter name drifted")
	}

	req := readReq(1, objs[0], 0, 4096)
	req.DeadlineNS = 1 // one nanosecond: unmeetable by any estimate
	rep := c.Handle(req)
	if rep.Status != rpc.StatusRetryLater {
		t.Fatalf("status %v, want retry-later", rep.Status)
	}
	if hint, ok := rpc.RetryAfterHint(rep); !ok || hint <= 0 {
		t.Fatalf("shed reply without usable hint: %v ok=%v", hint, ok)
	}
	if got := reg.Counter("drive.op.read.calls").Load(); got != callsBefore {
		t.Fatalf("drive read calls advanced %d→%d: shed request reached the media path", callsBefore, got)
	}
	if got := reg.Counter("drive.part.1.qos.shed").Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}
