package qos

import (
	"sync"
	"sync/atomic"
	"time"

	"nasd/internal/telemetry"
)

// estimator supplies the service-time forecasts the shedder compares
// deadlines against. Per-op estimates come from the live
// "drive.op.<op>.svc_ns" histograms the drive already maintains in the
// shared registry — the p90, cached briefly because snapshotting a
// histogram walks 48 buckets and the admission path is hot. Before an
// op has histogram samples (cold start), a per-op EWMA fed by the
// Controller's own executions stands in; before even that, a 1ms prior.
type estimator struct {
	reg *telemetry.Registry

	mu  sync.Mutex
	ops map[string]*opEstimate

	// ewmaAll tracks mean per-item service time across all ops, used
	// to turn a queue depth into an expected queue wait.
	ewmaAll atomic.Int64
}

type opEstimate struct {
	ewma atomic.Int64 // ns, updated on every execution

	// cached histogram read
	cachedNS atomic.Int64 // 0 = no histogram data at last refresh
	fetched  atomic.Int64 // unix ns of last refresh
}

// estimateTTL is how long a cached histogram quantile is trusted.
const estimateTTL = 250 * time.Millisecond

// defaultSvc is the cold-start prior for an op with no observations.
const defaultSvc = time.Millisecond

func newEstimator(reg *telemetry.Registry) *estimator {
	return &estimator{reg: reg, ops: make(map[string]*opEstimate)}
}

func (e *estimator) op(name string) *opEstimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	oe := e.ops[name]
	if oe == nil {
		oe = &opEstimate{}
		e.ops[name] = oe
	}
	return oe
}

// observe feeds one completed execution back into the estimates.
func (e *estimator) observe(op string, d time.Duration) {
	ns := int64(d)
	oe := e.op(op)
	old := oe.ewma.Load()
	if old == 0 {
		oe.ewma.Store(ns)
	} else {
		oe.ewma.Store(old + (ns-old)/8)
	}
	old = e.ewmaAll.Load()
	if old == 0 {
		e.ewmaAll.Store(ns)
	} else {
		e.ewmaAll.Store(old + (ns-old)/8)
	}
}

// svc returns the estimated service time for one request of op.
func (e *estimator) svc(op string) time.Duration {
	oe := e.op(op)
	now := time.Now().UnixNano()
	if now-oe.fetched.Load() > int64(estimateTTL) {
		oe.fetched.Store(now)
		// The drive records per-op service time (digest + object +
		// media) under this name; its tail is the honest forecast for
		// "what will this request cost if admitted".
		snap := e.reg.Histogram("drive.op." + op + ".svc_ns").Snapshot()
		if snap.Count > 0 {
			oe.cachedNS.Store(snap.Quantile(0.90))
		} else {
			oe.cachedNS.Store(0)
		}
	}
	if ns := oe.cachedNS.Load(); ns > 0 {
		return time.Duration(ns)
	}
	if ns := oe.ewma.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return defaultSvc
}

// queueWait forecasts how long a request admitted now would sit in
// queue: depth items ahead, drained by workers executors, at the mean
// observed per-item service time.
func (e *estimator) queueWait(depth, workers int) time.Duration {
	if depth <= 0 || workers <= 0 {
		return 0
	}
	per := e.ewmaAll.Load()
	if per == 0 {
		per = int64(defaultSvc)
	}
	return time.Duration(per * int64(depth) / int64(workers))
}
