// Package qos is the drive's overload-control plane: a bounded
// admission queue, per-tenant token buckets, weighted deficit
// round-robin (WDRR) fair scheduling, and deadline-aware load shedding
// layered between the rpc server's worker pool and the drive handler.
//
// The paper's cost argument assumes a NASD drive stays well behaved
// when thousands of clients hit it at once. Nothing in the data path
// guarantees that: an unconstrained hot tenant queues the drive into
// collapse and every other tenant's latency rides along. The qos
// Controller sits where Lustre's NRS sits — a thin control path at the
// server edge that admits, prioritizes, and sheds so the fat data path
// degrades gracefully. Every rejection is the typed
// rpc.StatusRetryLater carrying a retry-after hint: flow control the
// client paces against, never a failure that opens breakers.
//
// Tenant identity is the verified capability's partition
// (capability.TenantKey), the same key the telemetry plane attributes
// by, so enforcement and observability agree about who is who.
package qos

import (
	"sync"
	"time"

	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// Class is the scheduling identity a Classifier assigns to a request.
type Class struct {
	// Tenant is the fair-queueing key, conventionally
	// capability.TenantKey(partition) ("part.<N>") so per-tenant qos
	// metrics land in the same namespace the fleet plane splits by.
	Tenant string
	// Op is the drive op name ("read", "write", ...) used to look up
	// live service-time estimates for deadline shedding.
	Op string
	// Cost is the request's scheduling weight in abstract units
	// (callers use max(1, ceil(bytes/32KiB)) so a 1MiB write charges
	// 32x a metadata op). Values < 1 are treated as 1.
	Cost int64
}

// Classifier assigns a request to a tenant class. ok=false bypasses
// admission entirely — the control plane (stats, flush, key
// management) must stay reachable on an overloaded drive, or operators
// cannot see why it is overloaded.
type Classifier func(req *rpc.Request) (cls Class, ok bool)

// Config tunes a Controller. The zero value of each knob picks a
// serviceable default; see the field comments.
type Config struct {
	// Classify assigns requests to tenants. Required.
	Classify Classifier
	// Concurrency is the number of executor goroutines pulling from
	// the fair queues into the inner handler — the drive's admission
	// width. Default 4 (matches rpc.DefaultWorkers).
	Concurrency int
	// Queue bounds the total requests queued across all tenants.
	// Beyond it the drive answers StatusRetryLater instead of
	// buffering. Default 256.
	Queue int
	// TenantQueue bounds any single tenant's queued requests, so one
	// tenant cannot own the whole global queue. Default Queue/4.
	TenantQueue int
	// Rate is the per-tenant token refill rate in cost units/second
	// (0 = no rate limiting; fairness comes from WDRR alone).
	Rate float64
	// Burst is the per-tenant bucket depth in cost units. Default
	// 2*Rate (or 1 if Rate is set but Burst computes to < 1).
	Burst float64
	// Weights maps tenant → WDRR weight. Unlisted tenants get 1; a
	// weight-3 tenant drains 3x the cost per scheduling round.
	Weights map[string]int64
	// Shed enables deadline-aware dropping: requests whose remaining
	// wire budget (rpc.Request.DeadlineNS) cannot cover the estimated
	// queue wait plus service time are rejected before they consume
	// media time, at admission and again at dispatch.
	Shed bool
	// Metrics receives qos counters/gauges; nil gets a private
	// registry. Pass the drive's registry so per-tenant
	// "drive.part.<P>.qos.*" cells ride the existing fleet plane.
	Metrics *telemetry.Registry
	// Events receives tenant limit/recover transition events; nil
	// uses telemetry.Events.
	Events *telemetry.EventLog
}

func (c *Config) fill() {
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = c.Queue / 4
		if c.TenantQueue < 1 {
			c.TenantQueue = 1
		}
	}
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = 2 * c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.Events == nil {
		c.Events = telemetry.Events
	}
}

// item is one queued request and the channel its blocked rpc worker
// waits on.
type item struct {
	req  *rpc.Request
	cls  Class
	enq  time.Time
	done chan *rpc.Reply
}

// tenant is one fair queue plus its rate limiter and metric cells.
type tenant struct {
	name    string
	weight  int64
	deficit int64
	q       []*item // FIFO; head at q[0]
	bucket  bucket
	active  bool // linked into the WDRR ring

	// Transition-event hysteresis: limited flips on the first
	// rejection and clears after recoverAfter without one, emitting a
	// fleet event at each edge so operators see who is being limited
	// without watching counters.
	limited    bool
	lastReject time.Time

	admitted  *telemetry.Counter
	throttled *telemetry.Counter
	shed      *telemetry.Counter
	rejected  *telemetry.Counter
	depth     *telemetry.Gauge
}

// recoverAfter is how long a tenant must go without a rejection before
// the limit event clears.
const recoverAfter = 2 * time.Second

// Controller implements rpc.Handler by scheduling requests through
// admission → token bucket → WDRR fair queue → deadline shed → inner
// handler. It is safe for concurrent use by any number of rpc workers.
type Controller struct {
	inner    rpc.Handler
	classify Classifier
	cfg      Config
	est      *estimator
	events   *telemetry.EventLog

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenant
	ring    []*tenant // active WDRR ring
	ringIdx int
	queued  int
	closed  bool

	statAdmitted  *telemetry.Counter
	statThrottled *telemetry.Counter
	statShed      *telemetry.Counter
	statRejected  *telemetry.Counter
	statBypass    *telemetry.Counter
	statDepth     *telemetry.Gauge
	statInflight  *telemetry.Gauge
	statWait      *telemetry.Histogram
}

// quantum is the base deficit credit (in cost units) a queue earns per
// WDRR visit, scaled by the tenant's weight. One unit matches the
// smallest request cost, so even weight-1 tenants make progress every
// round.
const quantum = 1

// New builds a Controller around inner. Call Close to release its
// executor goroutines.
func New(inner rpc.Handler, cfg Config) *Controller {
	cfg.fill()
	reg := cfg.Metrics
	c := &Controller{
		inner:    inner,
		classify: cfg.Classify,
		cfg:      cfg,
		est:      newEstimator(reg),
		events:   cfg.Events,
		tenants:  make(map[string]*tenant),

		statAdmitted:  reg.Counter("qos.admitted"),
		statThrottled: reg.Counter("qos.throttled"),
		statShed:      reg.Counter("qos.shed"),
		statRejected:  reg.Counter("qos.rejected"),
		statBypass:    reg.Counter("qos.bypass"),
		statDepth:     reg.Gauge("qos.queue_depth"),
		statInflight:  reg.Gauge("qos.inflight"),
		statWait:      reg.Histogram("qos.wait_ns"),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := 0; i < cfg.Concurrency; i++ {
		go c.run()
	}
	return c
}

// Close stops the executors. Requests still queued are answered
// StatusRetryLater (the drive is going away; the client should redial
// and reissue); requests arriving after Close bypass straight to the
// inner handler.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var drained []*item
	for _, t := range c.tenants {
		drained = append(drained, t.q...)
		t.q = nil
		t.depth.Set(0)
	}
	c.ring = nil
	c.queued = 0
	c.statDepth.Set(0)
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, it := range drained {
		it.done <- rpc.RetryLater(it.req.MsgID, 10*time.Millisecond, "qos: shutting down")
	}
}

// tenantLocked returns (creating if needed) the tenant record; c.mu
// must be held.
func (c *Controller) tenantLocked(name string) *tenant {
	t := c.tenants[name]
	if t != nil {
		return t
	}
	w := int64(1)
	if cw, ok := c.cfg.Weights[name]; ok && cw > 0 {
		w = cw
	}
	reg := c.cfg.Metrics
	prefix := "drive." + name + ".qos."
	t = &tenant{
		name:      name,
		weight:    w,
		admitted:  reg.Counter(prefix + "admitted"),
		throttled: reg.Counter(prefix + "throttled"),
		shed:      reg.Counter(prefix + "shed"),
		rejected:  reg.Counter(prefix + "rejected"),
		depth:     reg.Gauge(prefix + "queue_depth"),
	}
	if c.cfg.Rate > 0 {
		t.bucket = newBucket(c.cfg.Rate, c.cfg.Burst)
	}
	c.tenants[name] = t
	return t
}

// noteLimited records a rejection for transition events; c.mu held.
func (c *Controller) noteLimited(t *tenant, kind string, now time.Time) {
	t.lastReject = now
	if !t.limited {
		t.limited = true
		c.events.Emitf(telemetry.SevWarn, "qos", "limit",
			"tenant %s limited (%s); shaping until load subsides", t.name, kind)
	}
}

// noteAdmitted clears the limited state once the tenant has gone
// recoverAfter without a rejection; c.mu held.
func (c *Controller) noteAdmitted(t *tenant, now time.Time) {
	if t.limited && now.Sub(t.lastReject) > recoverAfter {
		t.limited = false
		c.events.Emitf(telemetry.SevInfo, "qos", "recover", "tenant %s recovered", t.name)
	}
}

// Handle implements rpc.Handler. Unclassified (control-plane) requests
// bypass admission; everything else is rate-checked, deadline-checked,
// and fair-queued, blocking the calling rpc worker until an executor
// runs it — which is exactly the backpressure that fills the rpc
// pending queue and turns into wire-level StatusRetryLater when the
// drive is saturated end to end.
func (c *Controller) Handle(req *rpc.Request) *rpc.Reply {
	cls, ok := c.classify(req)
	if !ok || cls.Tenant == "" {
		c.statBypass.Inc()
		return c.inner.Handle(req)
	}
	if cls.Cost < 1 {
		cls.Cost = 1
	}
	now := time.Now()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.inner.Handle(req)
	}
	t := c.tenantLocked(cls.Tenant)

	// Token bucket: per-tenant rate cap. The hint is exact — the
	// refill time for the missing tokens — so a pacing client retries
	// right when its budget allows.
	if c.cfg.Rate > 0 {
		if wait := t.bucket.take(now, float64(cls.Cost)); wait > 0 {
			t.throttled.Inc()
			c.statThrottled.Inc()
			c.noteLimited(t, "over rate", now)
			c.mu.Unlock()
			return rpc.RetryLater(req.MsgID, clampHint(wait),
				"qos: tenant %s over rate", cls.Tenant)
		}
	}

	// Deadline shed at admission: if the queue ahead plus this op's
	// estimated service time already exceeds the caller's remaining
	// budget, executing it would only burn media time on a reply the
	// caller will have abandoned.
	if c.cfg.Shed && req.DeadlineNS > 0 {
		est := c.est.queueWait(c.queued, c.cfg.Concurrency) + c.est.svc(cls.Op)
		if est > time.Duration(req.DeadlineNS) {
			t.shed.Inc()
			c.statShed.Inc()
			c.noteLimited(t, "deadline unmeetable", now)
			c.mu.Unlock()
			return rpc.RetryLater(req.MsgID, clampHint(est-time.Duration(req.DeadlineNS)),
				"qos: deadline %s < estimated %s", time.Duration(req.DeadlineNS), est)
		}
	}

	// Bounded admission: reject-on-full, never buffer without bound.
	if c.queued >= c.cfg.Queue || len(t.q) >= c.cfg.TenantQueue {
		t.rejected.Inc()
		c.statRejected.Inc()
		c.noteLimited(t, "queue full", now)
		hint := clampHint(c.est.queueWait(c.queued, c.cfg.Concurrency))
		c.mu.Unlock()
		return rpc.RetryLater(req.MsgID, hint, "qos: admission queue full")
	}

	t.admitted.Inc()
	c.statAdmitted.Inc()
	c.noteAdmitted(t, now)
	it := &item{req: req, cls: cls, enq: now, done: make(chan *rpc.Reply, 1)}
	t.q = append(t.q, it)
	t.depth.Set(int64(len(t.q)))
	c.queued++
	c.statDepth.Set(int64(c.queued))
	if !t.active {
		t.active = true
		c.ring = append(c.ring, t)
	}
	c.cond.Signal()
	c.mu.Unlock()

	return <-it.done
}

// next pops the next item under WDRR; c.mu must be held. Returns nil
// when nothing is queued.
func (c *Controller) next() *item {
	for len(c.ring) > 0 {
		if c.ringIdx >= len(c.ring) {
			c.ringIdx = 0
		}
		t := c.ring[c.ringIdx]
		if len(t.q) == 0 {
			// Emptied since it was ringed: retire it. Resetting the
			// deficit is what stops an idle tenant banking credit.
			t.active = false
			t.deficit = 0
			c.ring = append(c.ring[:c.ringIdx], c.ring[c.ringIdx+1:]...)
			continue
		}
		head := t.q[0]
		if t.deficit >= head.cls.Cost {
			t.deficit -= head.cls.Cost
			t.q = t.q[1:]
			t.depth.Set(int64(len(t.q)))
			if len(t.q) == 0 {
				t.active = false
				t.deficit = 0
				c.ring = append(c.ring[:c.ringIdx], c.ring[c.ringIdx+1:]...)
			}
			return head
		}
		// Not enough credit: earn quantum×weight and yield the round
		// to the next tenant. Deficit grows monotonically while queued,
		// so every head is eventually served — no starvation.
		t.deficit += quantum * t.weight
		c.ringIdx++
	}
	return nil
}

// run is one executor: WDRR-pop, late-shed, execute, reply.
func (c *Controller) run() {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return
		}
		it := c.next()
		if it == nil {
			c.cond.Wait()
			continue
		}
		c.queued--
		c.statDepth.Set(int64(c.queued))
		c.mu.Unlock()

		it.done <- c.execute(it)

		c.mu.Lock()
	}
}

// execute runs one dequeued item through the late deadline check and
// the inner handler, feeding the service-time estimator.
func (c *Controller) execute(it *item) *rpc.Reply {
	wait := time.Since(it.enq)
	c.statWait.ObserveDuration(wait)

	// Late shed: the request aged in queue past the point where its
	// remaining budget covers the estimated service time. Dropping
	// here — after queueing, before the inner handler — is the "before
	// they consume media time" guarantee.
	if c.cfg.Shed && it.req.DeadlineNS > 0 {
		if svc := c.est.svc(it.cls.Op); wait+svc > time.Duration(it.req.DeadlineNS) {
			c.mu.Lock()
			t := c.tenantLocked(it.cls.Tenant)
			t.shed.Inc()
			c.statShed.Inc()
			c.noteLimited(t, "aged out in queue", time.Now())
			c.mu.Unlock()
			return rpc.RetryLater(it.req.MsgID, clampHint(svc),
				"qos: queued %s, deadline %s unmeetable", wait, time.Duration(it.req.DeadlineNS))
		}
	}

	c.statInflight.Add(1)
	start := time.Now()
	rep := c.inner.Handle(it.req)
	c.est.observe(it.cls.Op, time.Since(start))
	c.statInflight.Add(-1)
	return rep
}

// clampHint bounds a retry-after hint to [1ms, 2s]: long enough that a
// retry has a chance, short enough that a recovered drive refills fast.
func clampHint(d time.Duration) time.Duration {
	const lo, hi = time.Millisecond, 2 * time.Second
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

var _ rpc.Handler = (*Controller)(nil)
