package qos

import "time"

// bucket is a token bucket measured in scheduling cost units. It is
// not safe for concurrent use on its own; the Controller serializes
// access under its mutex.
type bucket struct {
	rate   float64 // units per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) bucket {
	return bucket{rate: rate, burst: burst, tokens: burst}
}

// take refills by the elapsed time and tries to remove n tokens. It
// returns 0 on success, or the wait until the deficit refills — the
// retry-after hint. Failed takes consume nothing, so a throttled
// tenant's retries do not dig it deeper.
//
// A request costing more than the whole bucket is charged the bucket's
// full capacity instead: it waits until the bucket is brim-full, drains
// it, and proceeds. Otherwise burst would be a silent hard cap on
// transfer size — a single large write could never be admitted at any
// rate.
func (b *bucket) take(now time.Time, n float64) time.Duration {
	if b.rate <= 0 {
		return 0
	}
	if n > b.burst {
		n = b.burst
	}
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return 0
	}
	need := n - b.tokens
	return time.Duration(need / b.rate * float64(time.Second))
}
