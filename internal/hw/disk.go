package hw

import (
	"time"

	"nasd/internal/sim"
)

// DiskParams parameterizes a mechanical disk model. The model captures
// what mattered to the paper's experiments: random access penalties,
// sustained media rate, faster transfers from the track cache, firmware
// readahead that keeps the media busy during host think time, and
// write-behind caching ("these drives have write-behind caching
// enabled").
type DiskParams struct {
	Name string
	// CtrlOverhead is fixed firmware/command time per request.
	CtrlOverhead time.Duration
	// RandomAccess is the average positioning time (seek + half
	// rotation) charged when a request breaks sequentiality.
	RandomAccess time.Duration
	// MediaMBps is the sustained media transfer rate (MB/s, 10^6).
	MediaMBps float64
	// BusMBps is the transfer rate from the drive cache over its
	// interface (MB/s).
	BusMBps float64
	// SegmentBytes is the readahead segment size: how far the firmware
	// reads ahead of the host.
	SegmentBytes int64
	// CacheBytes is the write-behind cache size.
	CacheBytes int64
	// WriteBehind enables write acknowledgement from cache.
	WriteBehind bool
}

// Drive presets. Medallist and Cheetah rates come from the paper
// (dual Medallists supply "the raw 7.5 MB/s"; Cheetahs are "13.5 MB/s");
// the Barracuda parameters are fit to the four microbenchmarks quoted
// under Table 1 (0.30/9.4 ms single sector cached/random, 2.2/11.1 ms
// 64 KB cached/random).
var (
	// MedallistST52160 is one of the prototype's two drive disks.
	MedallistST52160 = DiskParams{
		Name:         "Seagate Medallist ST52160",
		CtrlOverhead: 500 * time.Microsecond,
		RandomAccess: 12 * time.Millisecond, // 5400 RPM class, average stroke
		MediaMBps:    3.75,
		BusMBps:      5, // each Medallist sits on its own 5 MB/s SCSI bus
		SegmentBytes: 128 << 10,
		CacheBytes:   512 << 10,
		WriteBehind:  true,
	}
	// CheetahST34501W is the NFS server's disk in Figure 9.
	CheetahST34501W = DiskParams{
		Name:         "Seagate Cheetah ST34501W",
		CtrlOverhead: 300 * time.Microsecond,
		RandomAccess: 8 * time.Millisecond, // 10000 RPM class
		MediaMBps:    13.5,
		BusMBps:      40, // Wide UltraSCSI
		SegmentBytes: 256 << 10,
		CacheBytes:   512 << 10,
		WriteBehind:  true,
	}
	// BarracudaST34371W reproduces the microbenchmarks in Table 1's
	// caption.
	BarracudaST34371W = DiskParams{
		Name:         "Seagate Barracuda ST34371W",
		CtrlOverhead: 285 * time.Microsecond,
		RandomAccess: 9100 * time.Microsecond,
		MediaMBps:    38, // effective readahead-assisted media stream
		BusMBps:      34,
		SegmentBytes: 256 << 10,
		CacheBytes:   512 << 10,
		WriteBehind:  true,
	}
)

// Disk is a mechanical disk instance. Byte offsets are logical; the
// model cares only about sequentiality, not geometry.
type Disk struct {
	env    *sim.Env
	p      DiskParams
	mech   *sim.Resource // the single actuator/media mechanism
	seqPos int64         // next sequential byte offset
	ahead  int64         // bytes of readahead available beyond seqPos
	dirty  int64         // write-behind bytes not yet on media
	last   time.Duration // completion time of the previous request

	// Counters.
	reads, writes int64
	bytesRead     int64
	bytesWritten  int64
	seeks         int64
}

// NewDisk creates a disk from params.
func NewDisk(env *sim.Env, params DiskParams) *Disk {
	return &Disk{env: env, p: params, mech: env.NewResource(params.Name, 1), seqPos: -1}
}

// Params returns the disk's parameters.
func (d *Disk) Params() DiskParams { return d.p }

// Utilization returns mechanism utilization.
func (d *Disk) Utilization() float64 { return d.mech.Utilization() }

// Stats returns operation counters.
func (d *Disk) Stats() (reads, writes, bytesRead, bytesWritten, seeks int64) {
	return d.reads, d.writes, d.bytesRead, d.bytesWritten, d.seeks
}

func dur(sec float64) time.Duration { return time.Duration(sec * float64(time.Second)) }

// catchUp advances background work done since the last request: the
// firmware refills the readahead segment and drains the write-behind
// cache while the host thinks.
func (d *Disk) catchUp() {
	now := d.env.Now()
	if now <= d.last {
		return
	}
	idle := (now - d.last).Seconds()
	work := int64(idle * d.p.MediaMBps * MB)
	// Drain dirty data first (destage has priority), then read ahead.
	drain := work
	if drain > d.dirty {
		drain = d.dirty
	}
	d.dirty -= drain
	work -= drain
	if d.seqPos >= 0 {
		d.ahead += work
		if d.ahead > d.p.SegmentBytes {
			d.ahead = d.p.SegmentBytes
		}
	}
	d.last = now
}

// Read performs a read of n bytes at byte offset off, charging simulated
// time for positioning, media, and interface transfers.
func (d *Disk) Read(p *sim.Proc, off int64, n int) {
	d.mech.Acquire(p)
	d.catchUp()
	var t time.Duration = d.p.CtrlOverhead
	sequential := off == d.seqPos
	if !sequential {
		t += d.p.RandomAccess
		d.ahead = 0
		d.seeks++
	}
	remaining := int64(n)
	// Satisfy what the readahead segment already holds at bus rate.
	if sequential && d.ahead > 0 {
		fromCache := d.ahead
		if fromCache > remaining {
			fromCache = remaining
		}
		t += dur(float64(fromCache) / (d.p.BusMBps * MB))
		d.ahead -= fromCache
		remaining -= fromCache
	}
	// The rest streams from the media.
	if remaining > 0 {
		t += dur(float64(remaining) / (d.p.MediaMBps * MB))
	}
	p.Wait(t)
	d.seqPos = off + int64(n)
	d.reads++
	d.bytesRead += int64(n)
	d.last = p.Now()
	d.mech.Release()
}

// Write performs a write of n bytes at byte offset off. With
// write-behind enabled, writes complete at interface speed while cache
// space remains; overflow is charged at media speed.
func (d *Disk) Write(p *sim.Proc, off int64, n int) {
	d.mech.Acquire(p)
	d.catchUp()
	var t time.Duration = d.p.CtrlOverhead
	sequential := off == d.seqPos
	if !sequential && !d.p.WriteBehind {
		t += d.p.RandomAccess
		d.seeks++
	}
	remaining := int64(n)
	if d.p.WriteBehind {
		space := d.p.CacheBytes - d.dirty
		if space < 0 {
			space = 0
		}
		buffered := remaining
		if buffered > space {
			buffered = space
		}
		t += dur(float64(buffered) / (d.p.BusMBps * MB))
		d.dirty += buffered
		remaining -= buffered
	}
	if remaining > 0 {
		if !sequential && d.p.WriteBehind {
			// Cache overflowed: the mechanism must position after all.
			t += d.p.RandomAccess
			d.seeks++
		}
		t += dur(float64(remaining) / (d.p.MediaMBps * MB))
	}
	p.Wait(t)
	d.seqPos = off + int64(n)
	d.writes++
	d.bytesWritten += int64(n)
	d.last = p.Now()
	d.mech.Release()
}

// Flush drains the write-behind cache to media.
func (d *Disk) Flush(p *sim.Proc) {
	d.mech.Acquire(p)
	d.catchUp()
	if d.dirty > 0 {
		p.Wait(dur(float64(d.dirty) / (d.p.MediaMBps * MB)))
		d.dirty = 0
	}
	d.last = p.Now()
	d.mech.Release()
}

// StripeDisk aggregates several disks with a byte-granular stripe unit,
// like the prototype's software striping driver over two Medallists.
type StripeDisk struct {
	Disks []*Disk
	Unit  int64
}

// NewStripeDisk builds a striped volume.
func NewStripeDisk(disks []*Disk, unit int64) *StripeDisk {
	return &StripeDisk{Disks: disks, Unit: unit}
}

// segments splits [off, off+n) into per-disk extents.
type extent struct {
	disk int
	off  int64
	n    int
}

func (s *StripeDisk) split(off int64, n int) []extent {
	var out []extent
	for n > 0 {
		unit := off / s.Unit
		within := off % s.Unit
		disk := int(unit % int64(len(s.Disks)))
		phys := (unit/int64(len(s.Disks)))*s.Unit + within
		chunk := int(s.Unit - within)
		if chunk > n {
			chunk = n
		}
		// Coalesce with the previous extent when contiguous on the same disk.
		if len(out) > 0 {
			prev := &out[len(out)-1]
			if prev.disk == disk && prev.off+int64(prev.n) == phys {
				prev.n += chunk
				off += int64(chunk)
				n -= chunk
				continue
			}
		}
		out = append(out, extent{disk: disk, off: phys, n: chunk})
		off += int64(chunk)
		n -= chunk
	}
	return out
}

// Read reads [off, off+n), issuing per-disk extents in parallel and
// returning when the slowest completes.
func (s *StripeDisk) Read(p *sim.Proc, off int64, n int) {
	s.parallel(p, s.split(off, n), true)
}

// Write writes [off, off+n) in parallel across member disks.
func (s *StripeDisk) Write(p *sim.Proc, off int64, n int) {
	s.parallel(p, s.split(off, n), false)
}

func (s *StripeDisk) parallel(p *sim.Proc, exts []extent, read bool) {
	if len(exts) == 1 {
		e := exts[0]
		if read {
			s.Disks[e.disk].Read(p, e.off, e.n)
		} else {
			s.Disks[e.disk].Write(p, e.off, e.n)
		}
		return
	}
	env := p.Env()
	events := make([]*sim.Event, len(exts))
	for i, e := range exts {
		e := e
		ev := env.NewEvent()
		events[i] = ev
		env.Go("stripe-io", func(q *sim.Proc) {
			if read {
				s.Disks[e.disk].Read(q, e.off, e.n)
			} else {
				s.Disks[e.disk].Write(q, e.off, e.n)
			}
			ev.Fire(nil)
		})
	}
	sim.WaitAll(p, events...)
}
