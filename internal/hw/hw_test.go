package hw

import (
	"math"
	"testing"
	"time"

	"nasd/internal/sim"
)

func run(t *testing.T, fn func(p *sim.Proc, env *sim.Env)) time.Duration {
	t.Helper()
	env := sim.NewEnv(1)
	env.Go("test", func(p *sim.Proc) { fn(p, env) })
	return env.Run()
}

func TestCPUInstrTime(t *testing.T) {
	env := sim.NewEnv(1)
	cpu := NewCPU(env, "c", 200, 2.2)
	// 100k instructions at 2.2 CPI on 200 MHz = 1.1 ms.
	got := cpu.InstrTime(100_000)
	want := 1100 * time.Microsecond
	if got != want {
		t.Fatalf("instr time = %v, want %v", got, want)
	}
}

func TestCPUQueueing(t *testing.T) {
	env := sim.NewEnv(1)
	cpu := NewCPU(env, "c", 100, 1)
	done := 0
	for i := 0; i < 3; i++ {
		env.Go("w", func(p *sim.Proc) {
			cpu.Exec(p, 1e6) // 10 ms each
			done++
		})
	}
	end := env.Run()
	if done != 3 {
		t.Fatal("work lost")
	}
	if end != 30*time.Millisecond {
		t.Fatalf("end = %v, want serialized 30ms", end)
	}
}

func TestCPUIdlePercent(t *testing.T) {
	env := sim.NewEnv(1)
	cpu := NewCPU(env, "c", 100, 1)
	env.Go("w", func(p *sim.Proc) {
		cpu.Exec(p, 1e6) // 10 ms busy
		p.Wait(30 * time.Millisecond)
	})
	env.Run()
	if idle := cpu.IdlePercent(); math.Abs(idle-75) > 0.5 {
		t.Fatalf("idle = %.1f%%, want 75%%", idle)
	}
}

func TestLinkTransferTime(t *testing.T) {
	end := run(t, func(p *sim.Proc, env *sim.Env) {
		l := NewLink(env, "l", 10*MB, time.Millisecond)
		l.Transfer(p, 1_000_000) // 100 ms + 1 ms latency
	})
	want := 101 * time.Millisecond
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestLinkContention(t *testing.T) {
	env := sim.NewEnv(1)
	l := NewLink(env, "l", 10*MB, 0)
	for i := 0; i < 2; i++ {
		env.Go("w", func(p *sim.Proc) {
			l.Transfer(p, 1_000_000)
		})
	}
	end := env.Run()
	if end != 200*time.Millisecond {
		t.Fatalf("end = %v, want 200ms (serialized)", end)
	}
}

func TestSendMessageChargesBothEnds(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewHost(env, "a", NewCPU(env, "a", 100, 1), NewDuplex(env, "a", 100*MB, 0), ProtocolCost{PerMessage: 1e6, SendPerByte: 1, RecvPerByte: 2})
	b := NewHost(env, "b", NewCPU(env, "b", 100, 1), NewDuplex(env, "b", 100*MB, 0), ProtocolCost{PerMessage: 1e6, SendPerByte: 1, RecvPerByte: 2})
	env.Go("xfer", func(p *sim.Proc) {
		SendMessage(p, a, b, 1_000_000)
	})
	end := env.Run()
	// Send CPU: (1e6 + 1e6)/100e6 = 20ms; wire 2x10ms; recv CPU 30ms.
	want := 20*time.Millisecond + 20*time.Millisecond + 30*time.Millisecond
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if a.CPU.Utilization() == 0 || b.CPU.Utilization() == 0 {
		t.Fatal("CPU time not charged")
	}
}

// TestBarracudaMicrobench reproduces the four microbenchmarks in Table
// 1's caption: sequential cached single sector 0.30 ms, random single
// sector 9.4 ms, 64 KB cached 2.2 ms, 64 KB random 11.1 ms.
func TestBarracudaMicrobench(t *testing.T) {
	cases := []struct {
		name   string
		seq    bool
		size   int
		wantMs float64
		within float64
	}{
		{"cached sector", true, 512, 0.30, 0.05},
		{"random sector", false, 512, 9.4, 0.5},
		{"cached 64K", true, 64 << 10, 2.2, 0.3},
		{"random 64K", false, 64 << 10, 11.1, 0.6},
	}
	for _, tc := range cases {
		env := sim.NewEnv(1)
		d := NewDisk(env, BarracudaST34371W)
		var elapsed time.Duration
		env.Go("io", func(p *sim.Proc) {
			if tc.seq {
				// Prime sequential state and give the firmware time to
				// fill its readahead segment.
				d.Read(p, 0, 4096)
				p.Wait(50 * time.Millisecond)
				start := p.Now()
				d.Read(p, 4096, tc.size)
				elapsed = p.Now() - start
			} else {
				d.Read(p, 0, 4096)
				start := p.Now()
				d.Read(p, 1<<30, tc.size) // far away: random
				elapsed = p.Now() - start
			}
		})
		env.Run()
		gotMs := elapsed.Seconds() * 1e3
		if math.Abs(gotMs-tc.wantMs) > tc.within {
			t.Errorf("%s: %.2f ms, paper %.2f ms", tc.name, gotMs, tc.wantMs)
		}
	}
}

func TestDiskSequentialStreamsAtMediaRate(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, MedallistST52160)
	const total = 8 << 20
	var elapsed time.Duration
	env.Go("stream", func(p *sim.Proc) {
		start := p.Now()
		for off := int64(0); off < total; off += 256 << 10 {
			d.Read(p, off, 256<<10)
		}
		elapsed = p.Now() - start
	})
	env.Run()
	rate := float64(total) / elapsed.Seconds() / MB
	// One Medallist streams near its 3.75 MB/s media rate.
	if rate < 3.0 || rate > 5.0 {
		t.Fatalf("stream rate = %.2f MB/s, want ~3.75", rate)
	}
}

func TestDiskRandomMuchSlowerThanSequential(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, MedallistST52160)
	var seqT, rndT time.Duration
	env.Go("io", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 16; i++ {
			d.Read(p, int64(i)*8192, 8192)
		}
		seqT = p.Now() - start
		start = p.Now()
		for i := 0; i < 16; i++ {
			d.Read(p, int64(i)*100<<20, 8192) // scattered
		}
		rndT = p.Now() - start
	})
	env.Run()
	if rndT < 3*seqT {
		t.Fatalf("random (%v) not much slower than sequential (%v)", rndT, seqT)
	}
}

func TestDiskReadaheadHelpsSmallSequentialReads(t *testing.T) {
	// With host think time between requests, the firmware reads ahead
	// and small sequential reads complete at bus rate, not media rate.
	env := sim.NewEnv(1)
	d := NewDisk(env, MedallistST52160)
	var secondReadTime time.Duration
	env.Go("io", func(p *sim.Proc) {
		d.Read(p, 0, 8192)
		p.Wait(20 * time.Millisecond) // firmware reads ahead meanwhile
		start := p.Now()
		d.Read(p, 8192, 8192)
		secondReadTime = p.Now() - start
	})
	env.Run()
	// At bus rate (5 MB/s): ~1.6 ms + overhead. At media rate: ~2.2 ms +.
	if secondReadTime > 2500*time.Microsecond {
		t.Fatalf("readahead-hit read took %v", secondReadTime)
	}
}

func TestDiskWriteBehindFasterThanMedia(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, MedallistST52160)
	var wt time.Duration
	env.Go("io", func(p *sim.Proc) {
		start := p.Now()
		d.Write(p, 0, 64<<10)
		wt = p.Now() - start
	})
	env.Run()
	// Bus rate 5 MB/s: ~13 ms. Media rate 3.75: ~17.5 ms.
	if wt > 15*time.Millisecond {
		t.Fatalf("write-behind write took %v", wt)
	}
}

func TestDiskWriteBehindOverflowsToMediaRate(t *testing.T) {
	env := sim.NewEnv(1)
	params := MedallistST52160
	params.CacheBytes = 64 << 10
	d := NewDisk(env, params)
	var total time.Duration
	env.Go("io", func(p *sim.Proc) {
		start := p.Now()
		for off := int64(0); off < 2<<20; off += 64 << 10 {
			d.Write(p, off, 64<<10)
		}
		total = p.Now() - start
	})
	env.Run()
	rate := float64(2<<20) / total.Seconds() / MB
	// Sustained writes beyond the cache settle near media rate.
	if rate > 4.5 {
		t.Fatalf("sustained write rate %.2f MB/s exceeds media", rate)
	}
}

func TestDiskFlushDrainsDirty(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDisk(env, MedallistST52160)
	var flushTime time.Duration
	env.Go("io", func(p *sim.Proc) {
		d.Write(p, 0, 256<<10)
		start := p.Now()
		d.Flush(p)
		flushTime = p.Now() - start
	})
	env.Run()
	if flushTime == 0 {
		t.Fatal("flush of dirty data took no time")
	}
}

func TestStripeDiskParallelism(t *testing.T) {
	env := sim.NewEnv(1)
	d1 := NewDisk(env, MedallistST52160)
	d2 := NewDisk(env, MedallistST52160)
	s := NewStripeDisk([]*Disk{d1, d2}, 32<<10)
	var oneDisk, twoDisk time.Duration
	env.Go("io", func(p *sim.Proc) {
		// 32 KB goes to one disk.
		start := p.Now()
		s.Read(p, 0, 32<<10)
		oneDisk = p.Now() - start
		// 512 KB spans both, roughly halving the time per byte.
		start = p.Now()
		s.Read(p, 32<<10, 512<<10)
		twoDisk = p.Now() - start
	})
	env.Run()
	perByte1 := oneDisk.Seconds() / float64(32<<10)
	perByte2 := twoDisk.Seconds() / float64(512<<10)
	if perByte2 > perByte1 {
		t.Fatalf("striping did not help: %.2e vs %.2e s/B", perByte2, perByte1)
	}
	r1, _, _, _, _ := d1.Stats()
	r2, _, _, _, _ := d2.Stats()
	if r1 == 0 || r2 == 0 {
		t.Fatal("stripe did not use both disks")
	}
}

func TestStripeSplitCoalesces(t *testing.T) {
	env := sim.NewEnv(1)
	d1 := NewDisk(env, MedallistST52160)
	s := NewStripeDisk([]*Disk{d1}, 32<<10)
	// Single-disk stripe: everything coalesces into one extent.
	exts := s.split(0, 256<<10)
	if len(exts) != 1 || exts[0].n != 256<<10 {
		t.Fatalf("extents = %+v", exts)
	}
}

func TestDuplexDirectionsIndependent(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewDuplex(env, "nic", 10*MB, 0)
	env.Go("up", func(p *sim.Proc) { d.Up.Transfer(p, 1_000_000) })
	env.Go("down", func(p *sim.Proc) { d.Down.Transfer(p, 1_000_000) })
	end := env.Run()
	if end != 100*time.Millisecond {
		t.Fatalf("full duplex transfers serialized: %v", end)
	}
}

func TestProtocolCost(t *testing.T) {
	pc := ProtocolCost{PerMessage: 1000, SendPerByte: 2, RecvPerByte: 3}
	if pc.SendInstr(100) != 1200 || pc.RecvInstr(100) != 1300 {
		t.Fatal("protocol cost arithmetic wrong")
	}
}
