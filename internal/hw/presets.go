package hw

import (
	"time"

	"nasd/internal/sim"
)

// Network presets (usable bandwidth after protocol overheads).
const (
	// OC3ATMBytesPerSec is a 155 Mb/s OC-3 ATM link's usable payload
	// bandwidth (~135 Mb/s after cell tax).
	OC3ATMBytesPerSec = 135e6 / 8
	// Ethernet10BytesPerSec is classic 10 Mb/s Ethernet.
	Ethernet10BytesPerSec = 10e6 / 8
	// FastEthernetBytesPerSec is 100 Mb/s Ethernet.
	FastEthernetBytesPerSec = 100e6 / 8
	// GigabitEthernetBytesPerSec is 1 Gb/s Ethernet.
	GigabitEthernetBytesPerSec = 1e9 / 8
	// LANLatency is a one-way switched-LAN latency for 1998 gear.
	LANLatency = 100 * time.Microsecond
)

// DCERPCCost models the prototype's DCE RPC 1.0.3 over UDP/IP stack.
// The per-message and send-per-byte terms come from the Table 1 fit;
// the receive-per-byte term is calibrated so a 233 MHz AlphaStation 255
// saturates near the ~80 Mb/s the paper measured ("DCE RPC cannot push
// more than 80 Mb/s through a 155 Mb/s ATM link before the receiving
// client saturates").
var DCERPCCost = ProtocolCost{
	PerMessage:  33500,
	SendPerByte: 2.55,
	RecvPerByte: 9.5,
}

// LeanRPCCost models the lighter protocol a commodity NASD would ship
// ("commodity NASD drives must have a less costly RPC mechanism") —
// used by ablation experiments.
var LeanRPCCost = ProtocolCost{
	PerMessage:  5000,
	SendPerByte: 0.4,
	RecvPerByte: 0.8,
}

// NewAlphaStation255 builds a client host: 233 MHz AlphaStation 255 on
// OC-3 ATM running DCE RPC (the Figure 7/9 client).
func NewAlphaStation255(env *sim.Env, name string) *Host {
	cpu := NewCPU(env, name, 233, 2.2)
	nic := NewDuplex(env, name+".atm", OC3ATMBytesPerSec, LANLatency)
	return NewHost(env, name, cpu, nic, DCERPCCost)
}

// NewNASDDrivePrototype builds the paper's prototype "drive": a 133 MHz
// Alpha 3000/400 front-end on OC-3 ATM with two Medallists behind a
// software stripe (32 KB units on two 5 MB/s SCSI buses).
func NewNASDDrivePrototype(env *sim.Env, name string) (*Host, *StripeDisk) {
	cpu := NewCPU(env, name, 133, 2.2)
	nic := NewDuplex(env, name+".atm", OC3ATMBytesPerSec, LANLatency)
	host := NewHost(env, name, cpu, nic, DCERPCCost)
	d1 := NewDisk(env, MedallistST52160)
	d2 := NewDisk(env, MedallistST52160)
	return host, NewStripeDisk([]*Disk{d1, d2}, 32<<10)
}

// NewNFSServer500 builds the Figure 9 comparison server: an
// AlphaStation 500/500 (500 MHz) with two OC-3 ATM links and eight
// Cheetahs on two 40 MB/s Wide UltraSCSI buses.
type NFSServerHW struct {
	CPU   *CPU
	NICs  []*Duplex
	Disks []*Disk
	Buses []*Link
	Proto ProtocolCost
}

// NewNFSServer500 assembles the server hardware.
func NewNFSServer500(env *sim.Env, name string, nDisks int) *NFSServerHW {
	s := &NFSServerHW{
		CPU:   NewCPU(env, name, 500, 2.2),
		Proto: DCERPCCost,
	}
	for i := 0; i < 2; i++ {
		s.NICs = append(s.NICs, NewDuplex(env, name+".atm", OC3ATMBytesPerSec, LANLatency))
	}
	for i := 0; i < 2; i++ {
		s.Buses = append(s.Buses, NewLink(env, name+".scsi", 40*MB, 0))
	}
	for i := 0; i < nDisks; i++ {
		s.Disks = append(s.Disks, NewDisk(env, CheetahST34501W))
	}
	return s
}

// DiskRead performs a server disk read through the appropriate SCSI bus.
func (s *NFSServerHW) DiskRead(p *sim.Proc, disk int, off int64, n int) {
	d := s.Disks[disk]
	d.Read(p, off, n)
	bus := s.Buses[disk%len(s.Buses)]
	bus.Transfer(p, n)
}
