// Package hw provides 1998-era hardware models on the sim kernel:
// CPUs with instruction accounting, network links and switches, and
// mechanical disks with track caches, readahead, and write-behind.
//
// Every performance figure in the paper is a consequence of the balance
// between these parts — 5 MB/s SCSI buses, 155 Mb/s OC-3 ATM, 133 MHz
// drive CPUs, 233 MHz clients, and a heavyweight DCE RPC stack — so the
// experiment harnesses assemble systems from these models with the
// paper's parameters rather than measuring modern wall clocks.
package hw

import (
	"time"

	"nasd/internal/sim"
)

// MB is bytes per megabyte as drive vendors and the paper use it (10^6).
const MB = 1e6

// CPU models a processor with a clock rate and average CPI. Work is
// expressed in instructions; the CPU is a unit-capacity FCFS resource so
// concurrent demands queue.
type CPU struct {
	res *sim.Resource
	// MHz is the clock rate in megahertz.
	MHz float64
	// CPI is the average cycles per instruction (the paper measured 2.2
	// on its Alpha prototype).
	CPI float64
}

// NewCPU creates a CPU model.
func NewCPU(env *sim.Env, name string, mhz, cpi float64) *CPU {
	return &CPU{res: env.NewResource(name+".cpu", 1), MHz: mhz, CPI: cpi}
}

// InstrTime converts an instruction count to execution time.
func (c *CPU) InstrTime(instr float64) time.Duration {
	sec := instr * c.CPI / (c.MHz * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// Exec runs instr instructions, queueing for the CPU.
func (c *CPU) Exec(p *sim.Proc, instr float64) {
	c.res.Use(p, c.InstrTime(instr))
}

// Utilization returns the CPU's mean utilization since time zero.
func (c *CPU) Utilization() float64 { return c.res.Utilization() }

// IdlePercent returns 100*(1-utilization), the quantity Figure 7 plots.
func (c *CPU) IdlePercent() float64 { return 100 * (1 - c.res.Utilization()) }

// Link models a network link (or bus) with fixed bandwidth and
// propagation latency. Bandwidth contention serializes transfers;
// latency is added outside the queue so back-to-back transfers pipeline.
type Link struct {
	res *sim.Resource
	// BytesPerSec is the usable bandwidth.
	BytesPerSec float64
	// Latency is the propagation delay per message.
	Latency time.Duration
}

// NewLink creates a link. bytesPerSec is usable bandwidth in bytes/s.
func NewLink(env *sim.Env, name string, bytesPerSec float64, latency time.Duration) *Link {
	return &Link{res: env.NewResource(name, 1), BytesPerSec: bytesPerSec, Latency: latency}
}

// TransferTime returns the serialization time for n bytes.
func (l *Link) TransferTime(n int) time.Duration {
	sec := float64(n) / l.BytesPerSec
	return time.Duration(sec * float64(time.Second))
}

// Transfer moves n bytes across the link: queue for the wire, hold it
// for the serialization time, then wait propagation latency.
func (l *Link) Transfer(p *sim.Proc, n int) {
	l.res.Use(p, l.TransferTime(n))
	if l.Latency > 0 {
		p.Wait(l.Latency)
	}
}

// Utilization returns the link's mean utilization since time zero.
func (l *Link) Utilization() float64 { return l.res.Utilization() }

// Duplex pairs two independent directions of a full-duplex link.
type Duplex struct {
	// Up carries traffic from the host into the network.
	Up *Link
	// Down carries traffic from the network to the host.
	Down *Link
}

// NewDuplex creates a full-duplex link with symmetric bandwidth.
func NewDuplex(env *sim.Env, name string, bytesPerSec float64, latency time.Duration) *Duplex {
	return &Duplex{
		Up:   NewLink(env, name+".up", bytesPerSec, latency),
		Down: NewLink(env, name+".down", bytesPerSec, latency),
	}
}

// ProtocolCost models a host protocol stack's CPU demand: a fixed
// per-message cost plus per-byte costs that differ between send and
// receive (receive implies extra copies and checksums on 1998 hosts).
type ProtocolCost struct {
	PerMessage  float64 // instructions per message
	SendPerByte float64 // instructions per byte sent
	RecvPerByte float64 // instructions per byte received
}

// SendInstr returns the instruction cost to send n payload bytes.
func (pc ProtocolCost) SendInstr(n int) float64 {
	return pc.PerMessage + pc.SendPerByte*float64(n)
}

// RecvInstr returns the instruction cost to receive n payload bytes.
func (pc ProtocolCost) RecvInstr(n int) float64 {
	return pc.PerMessage + pc.RecvPerByte*float64(n)
}

// Host is a network endpoint: a CPU and a duplex NIC plus the protocol
// cost model its stack imposes.
type Host struct {
	CPU   *CPU
	NIC   *Duplex
	Proto ProtocolCost
}

// NewHost assembles a host.
func NewHost(env *sim.Env, name string, cpu *CPU, nic *Duplex, proto ProtocolCost) *Host {
	return &Host{CPU: cpu, NIC: nic, Proto: proto}
}

// SendMessage models the full cost of pushing one message of n bytes
// from src to dst across a switched fabric: protocol send CPU at the
// source, wire time on the source's uplink and the destination's
// downlink (a non-blocking switch in between), and protocol receive CPU
// at the destination.
func SendMessage(p *sim.Proc, src, dst *Host, n int) {
	src.CPU.Exec(p, src.Proto.SendInstr(n))
	src.NIC.Up.Transfer(p, n)
	dst.NIC.Down.Transfer(p, n)
	dst.CPU.Exec(p, dst.Proto.RecvInstr(n))
}
