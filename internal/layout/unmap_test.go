package layout

import (
	"testing"
)

func TestUnmapDirectBlock(t *testing.T) {
	s, _ := newStore(t, 1024)
	var o Onode
	blk, err := s.BMapAlloc(&o, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.UnmapBlock(&o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != blk {
		t.Fatalf("unmapped %d, want %d", got, blk)
	}
	if o.Direct[3] != 0 {
		t.Fatal("direct pointer not cleared")
	}
	if s.RefCount(blk) != 0 {
		t.Fatal("block not freed")
	}
	if m, _ := s.BMap(&o, 3); m != 0 {
		t.Fatal("bmap still resolves")
	}
}

func TestUnmapHole(t *testing.T) {
	s, _ := newStore(t, 1024)
	var o Onode
	if got, err := s.UnmapBlock(&o, 5); err != nil || got != 0 {
		t.Fatalf("unmap hole = %d, %v", got, err)
	}
	if got, err := s.UnmapBlock(&o, NumDirect+5); err != nil || got != 0 {
		t.Fatalf("unmap indirect hole = %d, %v", got, err)
	}
}

func TestUnmapIndirectBlock(t *testing.T) {
	s, _ := newStore(t, 2048)
	var o Onode
	fb := int64(NumDirect + 7)
	blk, err := s.BMapAlloc(&o, fb, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.UnmapBlock(&o, fb)
	if err != nil || got != blk {
		t.Fatalf("unmap = %d, %v", got, err)
	}
	if s.RefCount(blk) != 0 {
		t.Fatal("block not freed")
	}
	if m, _ := s.BMap(&o, fb); m != 0 {
		t.Fatal("indirect mapping survives")
	}
}

func TestUnmapDoubleIndirect(t *testing.T) {
	s, _ := newStore(t, 4096)
	var o Onode
	fb := NumDirect + s.ptrsPerBlock + 2*s.ptrsPerBlock + 3
	blk, err := s.BMapAlloc(&o, fb, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.UnmapBlock(&o, fb)
	if err != nil || got != blk {
		t.Fatalf("unmap = %d, %v", got, err)
	}
	if m, _ := s.BMap(&o, fb); m != 0 {
		t.Fatal("double-indirect mapping survives")
	}
}

func TestUnmapSharedDoesNotDisturbClone(t *testing.T) {
	s, _ := newStore(t, 2048)
	var orig Onode
	fb := int64(NumDirect + 4)
	blk, err := s.BMapAlloc(&orig, fb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CloneOnodeBlocks(&orig); err != nil {
		t.Fatal(err)
	}
	clone := orig

	// Unmap through the clone: orig's mapping must be untouched and the
	// data block must retain orig's reference.
	if _, err := s.UnmapBlock(&clone, fb); err != nil {
		t.Fatal(err)
	}
	if m, _ := s.BMap(&clone, fb); m != 0 {
		t.Fatal("clone mapping survives unmap")
	}
	if m, _ := s.BMap(&orig, fb); m != blk {
		t.Fatalf("orig mapping disturbed: %d want %d", m, blk)
	}
	if s.RefCount(blk) != 1 {
		t.Fatalf("data block refcount = %d, want 1", s.RefCount(blk))
	}
}

func TestFreeCountConsistency(t *testing.T) {
	s, _ := newStore(t, 512)
	baseline := s.FreeBlocks()
	blks, err := s.Alloc(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FreeBlocks(); got != baseline-10 {
		t.Fatalf("free = %d, want %d", got, baseline-10)
	}
	// IncRef/Free pairs on live blocks do not change the count.
	if err := s.IncRef(blks[0]); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeBlocks(); got != baseline-10 {
		t.Fatalf("free after incref = %d", got)
	}
	_ = s.Free(blks[0])
	if got := s.FreeBlocks(); got != baseline-10 {
		t.Fatalf("free after deref = %d", got)
	}
	for _, b := range blks {
		_ = s.Free(b)
	}
	if got := s.FreeBlocks(); got != baseline {
		t.Fatalf("free after release = %d, want %d", got, baseline)
	}
}
