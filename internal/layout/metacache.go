package layout

import (
	"sync"

	"nasd/internal/bufpool"
)

// metaCacheBlocks bounds the metadata cache (per Store). Metadata
// working sets are tiny — one onode block plus a handful of pointer
// blocks per hot object — so a small FIFO over pooled block buffers
// captures nearly all of the re-read traffic.
const metaCacheBlocks = 128

// metaCache holds recently read metadata blocks (onode table blocks
// and indirect pointer blocks), which move through the raw device and
// would otherwise pay a media read on every block-map walk. The object
// layer's block cache cannot serve them: it sits *above* the layout
// allocator in the lock hierarchy (DESIGN.md §4), so layout may never
// call up into it.
//
// Coherence is by update-on-write: every in-place metadata write in
// this package refreshes or invalidates the written block's entry
// before the writer releases the lock that serializes it against
// readers (the onode stripe lock for onode blocks; the exclusive
// object lock above for pointer blocks — in-place pointer writes only
// ever target refcount-1 blocks, which belong to exactly one object).
// Freed blocks are invalidated so a later reallocation can never
// surface stale bytes. The cache is private to one Store and dies
// with it, so mount-time recovery always reads the real device.
type metaCache struct {
	mu     sync.Mutex
	blocks map[int64][]byte
	order  []int64 // FIFO eviction queue
}

func newMetaCache() *metaCache {
	return &metaCache{blocks: make(map[int64][]byte)}
}

// view runs fn on the cached copy of blk under the cache lock and
// reports whether blk was resident. fn must copy out what it needs and
// must not retain the slice.
func (c *metaCache) view(blk int64, fn func(b []byte)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blocks[blk]
	if ok {
		fn(b)
	}
	return ok
}

// fill installs a copy of data as blk's cached content, evicting the
// oldest entry when full. Also used to refresh an entry after an
// in-place write.
func (c *metaCache) fill(blk int64, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.blocks[blk]; ok {
		copy(b, data)
		return
	}
	for len(c.order) >= metaCacheBlocks {
		old := c.order[0]
		c.order = c.order[1:]
		if b, ok := c.blocks[old]; ok {
			delete(c.blocks, old)
			bufpool.Put(b)
		}
	}
	b := bufpool.Get(len(data))
	copy(b, data)
	c.blocks[blk] = b
	c.order = append(c.order, blk)
}

// invalidate drops blk's entry, if any. The stale FIFO slot is left to
// age out; it is skipped at eviction time.
func (c *metaCache) invalidate(blk int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.blocks[blk]; ok {
		delete(c.blocks, blk)
		bufpool.Put(b)
	}
}
