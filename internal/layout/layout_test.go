package layout

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"nasd/internal/blockdev"
)

func newStore(t *testing.T, blocks int64) (*Store, *blockdev.MemDisk) {
	t.Helper()
	dev := blockdev.NewMemDisk(4096, blocks)
	s, err := Format(dev, FormatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func TestFormatAndOpen(t *testing.T) {
	s, dev := newStore(t, 1024)
	sb := s.Superblock()
	if sb.Magic != Magic || sb.TotalBlocks != 1024 {
		t.Fatalf("superblock = %+v", sb)
	}
	if sb.DataStart <= 0 || sb.DataStart >= 1024 {
		t.Fatalf("data start = %d", sb.DataStart)
	}
	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Superblock() != sb {
		t.Fatalf("reopened superblock differs: %+v vs %+v", s2.Superblock(), sb)
	}
}

func TestOpenUnformatted(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 64)
	if _, err := Open(dev); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("open unformatted: %v", err)
	}
}

func TestFormatTooSmall(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 10)
	if _, err := Format(dev, FormatOptions{OnodeCount: 4096}); err == nil {
		t.Fatal("format of too-small device succeeded")
	}
}

func TestAllocUniqueAndInDataRegion(t *testing.T) {
	s, _ := newStore(t, 1024)
	seen := make(map[int64]bool)
	sb := s.Superblock()
	for i := 0; i < 50; i++ {
		blks, err := s.Alloc(10, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blks {
			if seen[b] {
				t.Fatalf("block %d allocated twice", b)
			}
			seen[b] = true
			if b < sb.DataStart || b >= sb.TotalBlocks {
				t.Fatalf("block %d outside data region", b)
			}
		}
	}
}

func TestAllocExhaustionAndFree(t *testing.T) {
	s, _ := newStore(t, 256)
	free := s.FreeBlocks()
	blks, err := s.Alloc(int(free), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1, 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overallocation: %v", err)
	}
	if err := s.Free(blks[0]); err != nil {
		t.Fatal(err)
	}
	again, err := s.Alloc(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != blks[0] {
		t.Fatalf("freed block not reused: got %d want %d", again[0], blks[0])
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	s, _ := newStore(t, 256)
	blks, _ := s.Alloc(1, 0)
	if err := s.Free(blks[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(blks[0]); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestFreeMetadataRejected(t *testing.T) {
	s, _ := newStore(t, 256)
	if err := s.Free(0); err == nil {
		t.Fatal("freeing superblock accepted")
	}
}

func TestRefCounting(t *testing.T) {
	s, _ := newStore(t, 256)
	blks, _ := s.Alloc(1, 0)
	b := blks[0]
	if s.RefCount(b) != 1 {
		t.Fatalf("refcount = %d", s.RefCount(b))
	}
	if err := s.IncRef(b); err != nil {
		t.Fatal(err)
	}
	if s.RefCount(b) != 2 {
		t.Fatalf("refcount = %d", s.RefCount(b))
	}
	_ = s.Free(b)
	if s.RefCount(b) != 1 {
		t.Fatal("free did not decrement")
	}
	_ = s.Free(b)
	if s.RefCount(b) != 0 {
		t.Fatal("block not freed at zero")
	}
	if err := s.IncRef(b); err == nil {
		t.Fatal("IncRef on free block accepted")
	}
}

func TestOnodeRoundTrip(t *testing.T) {
	s, _ := newStore(t, 1024)
	idx, err := s.AllocOnode()
	if err != nil {
		t.Fatal(err)
	}
	o := Onode{
		ObjectID: 42, Partition: 3, Version: 7, Size: 123456,
		CreateSec: 111, ModSec: 222, AttrModSec: 333,
		Prealloc: 1 << 20, Cluster: 41,
	}
	copy(o.Uninterp[:], []byte("filesystem private attribute data"))
	o.Direct[0] = 100
	o.Direct[19] = 200
	o.Indirect = 300
	o.Indirect2 = 400
	if err := s.WriteOnode(idx, &o); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadOnode(idx)
	if err != nil {
		t.Fatal(err)
	}
	if got != o {
		t.Fatalf("onode round trip mismatch:\n got %+v\nwant %+v", got, o)
	}
}

func TestOnodeIndexMaintained(t *testing.T) {
	s, _ := newStore(t, 1024)
	idx, _ := s.AllocOnode()
	o := Onode{ObjectID: 42}
	if err := s.WriteOnode(idx, &o); err != nil {
		t.Fatal(err)
	}
	got, ok := s.FindOnode(42)
	if !ok || got != idx {
		t.Fatalf("FindOnode = %d, %v", got, ok)
	}
	// Releasing the slot removes the index entry.
	if err := s.WriteOnode(idx, &Onode{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FindOnode(42); ok {
		t.Fatal("freed object still indexed")
	}
}

func TestOnodeExhaustion(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 512)
	s, err := Format(dev, FormatOptions{OnodeCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.AllocOnode(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AllocOnode(); !errors.Is(err, ErrNoOnodes) {
		t.Fatalf("onode overallocation: %v", err)
	}
}

func TestOnodeBounds(t *testing.T) {
	s, _ := newStore(t, 1024)
	if _, err := s.ReadOnode(-1); !errors.Is(err, ErrBadOnode) {
		t.Fatal("negative onode read accepted")
	}
	if err := s.WriteOnode(1<<30, &Onode{}); !errors.Is(err, ErrBadOnode) {
		t.Fatal("huge onode write accepted")
	}
}

func TestBMapDirectIndirectDouble(t *testing.T) {
	s, _ := newStore(t, 4096)
	var o Onode
	p := s.ptrsPerBlock

	// Direct.
	b0, err := s.BMapAlloc(&o, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.BMap(&o, 0); got != b0 {
		t.Fatalf("direct bmap = %d want %d", got, b0)
	}
	// Single indirect.
	bi, err := s.BMapAlloc(&o, NumDirect+5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Indirect == 0 {
		t.Fatal("indirect block not allocated")
	}
	if got, _ := s.BMap(&o, NumDirect+5); got != bi {
		t.Fatalf("indirect bmap = %d want %d", got, bi)
	}
	// Double indirect.
	fb := NumDirect + p + 3*p + 7
	bd, err := s.BMapAlloc(&o, fb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Indirect2 == 0 {
		t.Fatal("double indirect block not allocated")
	}
	if got, _ := s.BMap(&o, fb); got != bd {
		t.Fatalf("double indirect bmap = %d want %d", got, bd)
	}
}

func TestBMapHolesReadZero(t *testing.T) {
	s, _ := newStore(t, 1024)
	var o Onode
	if got, err := s.BMap(&o, 5); err != nil || got != 0 {
		t.Fatalf("hole bmap = %d, %v", got, err)
	}
	buf := make([]byte, 4096)
	buf[0] = 0xFF
	if err := s.ReadDataBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("hole read nonzero")
	}
}

func TestBMapTooBig(t *testing.T) {
	s, _ := newStore(t, 1024)
	var o Onode
	huge := int64(NumDirect) + s.ptrsPerBlock + s.ptrsPerBlock*s.ptrsPerBlock
	if _, err := s.BMap(&o, huge); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized bmap: %v", err)
	}
	if _, err := s.BMapAlloc(&o, huge, 0); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized bmap alloc: %v", err)
	}
}

func TestCloneAndCOW(t *testing.T) {
	s, _ := newStore(t, 4096)
	var orig Onode
	orig.ObjectID = 1

	// Write identifiable data to a direct and an indirect block.
	blkA, err := s.BMapAlloc(&orig, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	dataA := bytes.Repeat([]byte{0xA1}, 4096)
	if err := s.WriteDataBlock(blkA, dataA); err != nil {
		t.Fatal(err)
	}
	blkB, err := s.BMapAlloc(&orig, NumDirect+2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dataB := bytes.Repeat([]byte{0xB2}, 4096)
	if err := s.WriteDataBlock(blkB, dataB); err != nil {
		t.Fatal(err)
	}

	// Clone: incref every block, copy the onode.
	if err := s.CloneOnodeBlocks(&orig); err != nil {
		t.Fatal(err)
	}
	clone := orig
	clone.ObjectID = 2

	if s.RefCount(blkA) != 2 || s.RefCount(blkB) != 2 {
		t.Fatalf("refcounts after clone: %d, %d", s.RefCount(blkA), s.RefCount(blkB))
	}

	// Writing through the clone must not disturb the original.
	nb, err := s.BMapAlloc(&clone, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nb == blkA {
		t.Fatal("COW did not copy shared block")
	}
	if err := s.WriteDataBlock(nb, bytes.Repeat([]byte{0xCC}, 4096)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	origBlk, _ := s.BMap(&orig, 0)
	if err := s.ReadDataBlock(origBlk, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, dataA) {
		t.Fatal("original data disturbed by clone write")
	}
	if s.RefCount(blkA) != 1 {
		t.Fatalf("old shared block refcount = %d, want 1", s.RefCount(blkA))
	}

	// COW through the indirect path: the indirect block itself must be
	// copied before the clone's pointer is updated.
	origInd := orig.Indirect
	nbi, err := s.BMapAlloc(&clone, NumDirect+2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nbi == blkB {
		t.Fatal("indirect COW did not copy data block")
	}
	if clone.Indirect == origInd {
		t.Fatal("indirect pointer block still shared after write")
	}
	got, _ := s.BMap(&orig, NumDirect+2)
	if got != blkB {
		t.Fatalf("original indirect mapping changed: %d want %d", got, blkB)
	}
}

func TestFreeObjectBlocks(t *testing.T) {
	s, _ := newStore(t, 4096)
	var o Onode
	for _, fb := range []int64{0, 5, NumDirect + 1, NumDirect + s.ptrsPerBlock + 10} {
		if _, err := s.BMapAlloc(&o, fb, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := s.FreeBlocks()
	if err := s.FreeObjectBlocks(&o); err != nil {
		t.Fatal(err)
	}
	after := s.FreeBlocks()
	// 4 data blocks + 1 indirect + 1 double-indirect + 1 L1 block = 7.
	if after-before != 7 {
		t.Fatalf("freed %d blocks, want 7", after-before)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 1024)
	s, err := Format(dev, FormatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := s.AllocOnode()
	o := Onode{ObjectID: 99, Partition: 2, Size: 8192}
	blk, err := s.BMapAlloc(&o, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5A}, 4096)
	if err := s.WriteDataBlock(blk, want); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteOnode(idx, &o); err != nil {
		t.Fatal(err)
	}
	_ = s.NextObjectID()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	idx2, ok := s2.FindOnode(99)
	if !ok || idx2 != idx {
		t.Fatalf("object lost across reopen: %d %v", idx2, ok)
	}
	o2, err := s2.ReadOnode(idx2)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Size != 8192 || o2.Partition != 2 {
		t.Fatalf("onode = %+v", o2)
	}
	blk2, _ := s2.BMap(&o2, 0)
	if blk2 != blk {
		t.Fatalf("block map lost: %d want %d", blk2, blk)
	}
	if s2.RefCount(blk) != 1 {
		t.Fatal("refcounts lost across reopen")
	}
	buf := make([]byte, 4096)
	if err := s2.ReadDataBlock(blk2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("data lost across reopen")
	}
	// The allocator must not hand out the persisted block again.
	got, err := s2.Alloc(1, blk)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == blk {
		t.Fatal("reopened allocator reallocated a live block")
	}
}

func TestObjectIDs(t *testing.T) {
	s, _ := newStore(t, 1024)
	for i := uint64(1); i <= 5; i++ {
		idx, _ := s.AllocOnode()
		part := uint16(1)
		if i > 3 {
			part = 2
		}
		if err := s.WriteOnode(idx, &Onode{ObjectID: i, Partition: part}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.ObjectIDs(0)); got != 5 {
		t.Fatalf("all objects = %d", got)
	}
	if got := len(s.ObjectIDs(1)); got != 3 {
		t.Fatalf("partition 1 objects = %d", got)
	}
	if got := len(s.ObjectIDs(2)); got != 2 {
		t.Fatalf("partition 2 objects = %d", got)
	}
}

func TestNextObjectIDMonotonic(t *testing.T) {
	s, _ := newStore(t, 256)
	a := s.NextObjectID()
	b := s.NextObjectID()
	if b != a+1 {
		t.Fatalf("ids = %d, %d", a, b)
	}
}

func TestMaxObjectSize(t *testing.T) {
	s, _ := newStore(t, 256)
	want := uint64(4096) * (NumDirect + 512 + 512*512)
	if got := s.MaxObjectSize(); got != want {
		t.Fatalf("max size = %d want %d", got, want)
	}
}

// Property: a random sequence of alloc/free operations never
// double-allocates a block and never exceeds the data region.
func TestAllocatorInvariantProperty(t *testing.T) {
	s, _ := newStore(t, 512)
	sb := s.Superblock()
	rng := rand.New(rand.NewSource(11))
	live := make(map[int64]bool)
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			blks, err := s.Alloc(1, int64(rng.Intn(512)))
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			b := blks[0]
			if live[b] {
				t.Fatalf("double allocation of %d", b)
			}
			if b < sb.DataStart || b >= sb.TotalBlocks {
				t.Fatalf("allocated %d outside data region", b)
			}
			live[b] = true
		} else {
			for b := range live {
				if err := s.Free(b); err != nil {
					t.Fatal(err)
				}
				delete(live, b)
				break
			}
		}
	}
}
