package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: onode encode/decode is a bijection over the full field
// space (the on-disk format loses nothing).
func TestOnodeCodecRoundTripProperty(t *testing.T) {
	f := func(objID uint64, part, flags uint16, ver, size, prealloc, cluster uint64,
		cSec, mSec, aSec int64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := Onode{
			ObjectID: objID, Partition: part, Flags: flags, Version: ver,
			Size: size, CreateSec: cSec, ModSec: mSec, AttrModSec: aSec,
			Prealloc: prealloc, Cluster: cluster,
		}
		rng.Read(o.Uninterp[:])
		for i := range o.Direct {
			o.Direct[i] = rng.Int63()
		}
		o.Indirect = rng.Int63()
		o.Indirect2 = rng.Int63()

		buf := make([]byte, OnodeSize)
		encodeOnode(buf, &o)
		got := decodeOnode(buf)
		return got == o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: superblock encode/decode is a bijection.
func TestSuperblockCodecRoundTripProperty(t *testing.T) {
	f := func(bs uint32, total, refStart, refBlocks, oStart, oBlocks, dataStart, oCount int64, next uint64) bool {
		sb := Superblock{
			Magic: Magic, Version: FormatVersion, BlockSize: bs,
			TotalBlocks: total, RefStart: refStart, RefBlocks: refBlocks,
			OnodeStart: oStart, OnodeBlocks: oBlocks, DataStart: dataStart,
			OnodeCount: oCount, NextObjectID: next,
		}
		buf := make([]byte, 4096)
		encodeSuperblock(buf, &sb)
		got, err := decodeSuperblock(buf)
		return err == nil && got == sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSuperblockRejectsBadMagicAndVersion(t *testing.T) {
	buf := make([]byte, 4096)
	sb := Superblock{Magic: Magic, Version: FormatVersion, BlockSize: 4096}
	encodeSuperblock(buf, &sb)
	buf[0] ^= 1
	if _, err := decodeSuperblock(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
	encodeSuperblock(buf, &sb)
	buf[4] = 99 // version
	if _, err := decodeSuperblock(buf); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := decodeSuperblock(buf[:10]); err == nil {
		t.Fatal("short superblock accepted")
	}
}
