package layout

import (
	"encoding/binary"
	"fmt"
)

func encodeSuperblock(b []byte, sb *Superblock) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.Magic)
	le.PutUint32(b[4:], sb.Version)
	le.PutUint32(b[8:], sb.BlockSize)
	le.PutUint64(b[12:], uint64(sb.TotalBlocks))
	le.PutUint64(b[20:], uint64(sb.RefStart))
	le.PutUint64(b[28:], uint64(sb.RefBlocks))
	le.PutUint64(b[36:], uint64(sb.OnodeStart))
	le.PutUint64(b[44:], uint64(sb.OnodeBlocks))
	le.PutUint64(b[52:], uint64(sb.DataStart))
	le.PutUint64(b[60:], uint64(sb.OnodeCount))
	le.PutUint64(b[68:], sb.NextObjectID)
	le.PutUint64(b[76:], uint64(sb.JournalStart))
	le.PutUint64(b[84:], uint64(sb.JournalBlocks))
}

func decodeSuperblock(b []byte) (Superblock, error) {
	le := binary.LittleEndian
	var sb Superblock
	if len(b) < 76 {
		return sb, ErrNotFormatted
	}
	sb.Magic = le.Uint32(b[0:])
	if sb.Magic != Magic {
		return sb, ErrNotFormatted
	}
	sb.Version = le.Uint32(b[4:])
	// Version 1 volumes predate the metadata journal: they open fine,
	// with journaling disabled (JournalStart/JournalBlocks stay zero).
	if sb.Version != 1 && sb.Version != FormatVersion {
		return sb, fmt.Errorf("layout: unsupported format version %d", sb.Version)
	}
	sb.BlockSize = le.Uint32(b[8:])
	sb.TotalBlocks = int64(le.Uint64(b[12:]))
	sb.RefStart = int64(le.Uint64(b[20:]))
	sb.RefBlocks = int64(le.Uint64(b[28:]))
	sb.OnodeStart = int64(le.Uint64(b[36:]))
	sb.OnodeBlocks = int64(le.Uint64(b[44:]))
	sb.DataStart = int64(le.Uint64(b[52:]))
	sb.OnodeCount = int64(le.Uint64(b[60:]))
	sb.NextObjectID = le.Uint64(b[68:])
	if sb.Version >= 2 && len(b) >= 92 {
		sb.JournalStart = int64(le.Uint64(b[76:]))
		sb.JournalBlocks = int64(le.Uint64(b[84:]))
	}
	return sb, nil
}

func encodeOnode(b []byte, o *Onode) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], o.ObjectID)
	le.PutUint16(b[8:], o.Partition)
	le.PutUint16(b[10:], o.Flags)
	le.PutUint64(b[12:], o.Version)
	le.PutUint64(b[20:], o.Size)
	le.PutUint64(b[28:], uint64(o.CreateSec))
	le.PutUint64(b[36:], uint64(o.ModSec))
	le.PutUint64(b[44:], uint64(o.AttrModSec))
	le.PutUint64(b[52:], o.Prealloc)
	le.PutUint64(b[60:], o.Cluster)
	copy(b[68:68+UninterpSize], o.Uninterp[:])
	off := 68 + UninterpSize
	for i := 0; i < NumDirect; i++ {
		le.PutUint64(b[off+i*8:], uint64(o.Direct[i]))
	}
	off += NumDirect * 8
	le.PutUint64(b[off:], uint64(o.Indirect))
	le.PutUint64(b[off+8:], uint64(o.Indirect2))
}

func decodeOnode(b []byte) Onode {
	le := binary.LittleEndian
	var o Onode
	o.ObjectID = le.Uint64(b[0:])
	o.Partition = le.Uint16(b[8:])
	o.Flags = le.Uint16(b[10:])
	o.Version = le.Uint64(b[12:])
	o.Size = le.Uint64(b[20:])
	o.CreateSec = int64(le.Uint64(b[28:]))
	o.ModSec = int64(le.Uint64(b[36:]))
	o.AttrModSec = int64(le.Uint64(b[44:]))
	o.Prealloc = le.Uint64(b[52:])
	o.Cluster = le.Uint64(b[60:])
	copy(o.Uninterp[:], b[68:68+UninterpSize])
	off := 68 + UninterpSize
	for i := 0; i < NumDirect; i++ {
		o.Direct[i] = int64(le.Uint64(b[off+i*8:]))
	}
	off += NumDirect * 8
	o.Indirect = int64(le.Uint64(b[off:]))
	o.Indirect2 = int64(le.Uint64(b[off+8:]))
	return o
}
