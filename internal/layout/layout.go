// Package layout implements the NASD object system's on-disk layout:
// a superblock, a reference-counted block allocator (reference counts,
// rather than a plain bitmap, make copy-on-write object versions cheap),
// a table of onodes (object nodes, loosely modelled on FFS inodes as the
// paper's interface is "based loosely on the inode interface of a UNIX
// filesystem"), and direct/indirect block maps.
//
// The paper's prototype object system implemented "its own internal
// object access, cache, and disk space management modules"; this package
// is the disk space management module.
package layout

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nasd/internal/blockdev"
	"nasd/internal/bufpool"
	"nasd/internal/journal"
	"nasd/internal/telemetry"
)

// Geometry constants.
const (
	// Magic identifies a formatted NASD volume.
	Magic = 0x4E415344 // "NASD"
	// FormatVersion is the layout version written by this package.
	// Version 2 added the reserved metadata-journal region; version 1
	// volumes still open, with journaling disabled.
	FormatVersion = 2
	// OnodeSize is the on-disk size of one onode.
	OnodeSize = 512
	// NumDirect is the number of direct block pointers per onode.
	NumDirect = 20
	// UninterpSize is the size of the uninterpreted filesystem-specific
	// attribute block each object carries (Section 4.1: "an uninterpreted
	// block of attribute space is available to the file manager").
	UninterpSize = 256
	// MaxPartitions bounds the partition table in the superblock.
	MaxPartitions = 64
)

// Layout errors.
var (
	ErrNotFormatted = errors.New("layout: device not formatted")
	ErrNoSpace      = errors.New("layout: out of space")
	ErrNoOnodes     = errors.New("layout: onode table full")
	ErrBadOnode     = errors.New("layout: onode index out of range")
	ErrTooBig       = errors.New("layout: offset beyond maximum object size")
)

// Superblock describes the volume.
type Superblock struct {
	Magic        uint32
	Version      uint32
	BlockSize    uint32
	TotalBlocks  int64
	RefStart     int64 // first block of the refcount region
	RefBlocks    int64
	OnodeStart   int64 // first block of the onode table
	OnodeBlocks  int64
	DataStart    int64 // first data block
	OnodeCount   int64
	NextObjectID uint64
	// JournalStart/JournalBlocks locate the reserved write-ahead
	// journal region (version 2; zero on version-1 volumes).
	JournalStart  int64
	JournalBlocks int64
}

// Onode is an object node: per-object metadata plus the block map.
type Onode struct {
	ObjectID   uint64 // 0 means the slot is free
	Partition  uint16
	Flags      uint16
	Version    uint64 // logical version number (capability revocation)
	Size       uint64 // object size in bytes
	CreateSec  int64
	ModSec     int64
	AttrModSec int64
	Prealloc   uint64 // reserved capacity in bytes
	Cluster    uint64 // object this one should be clustered near
	Uninterp   [UninterpSize]byte
	Direct     [NumDirect]int64
	Indirect   int64 // single-indirect block (block of block pointers)
	Indirect2  int64 // double-indirect block
}

// Allocated reports whether the onode holds a live object.
func (o *Onode) Allocated() bool { return o.ObjectID != 0 }

// BlockIO is the interface layout uses to move data-block contents
// during copy-on-write copies. By default it is the device itself; the
// object layer points it at its buffer cache so COW copies observe
// write-behind data that has not reached the device yet.
type BlockIO interface {
	ReadBlock(i int64, buf []byte) error
	WriteBlock(i int64, data []byte) error
}

// onodeStripes is the number of independently locked stripes of the
// onode table. Onodes are packed several to a device block, so an
// onode write is a read-modify-write of its block; the stripe lock
// (indexed by device block) makes that atomic without serializing
// writes to unrelated onode blocks.
const onodeStripes = 16

// Store is an open volume. All methods are safe for concurrent use:
// allocator and index state is guarded by a single narrowly-scoped
// mutex (mu) held only across in-memory bitmap/metadata mutations,
// and onode-table device blocks by per-block stripe locks. Pointer
// (indirect) blocks carry no lock here — exclusively-owned pointer
// blocks are only ever written under their object's exclusive lock in
// the layer above, and copy-on-write-shared pointer blocks are read-
// only until unshared. In the object store's lock hierarchy this
// package is the bottom layer (object → partition → cache → layout).
type Store struct {
	mu     sync.Mutex
	meter  *telemetry.LockMeter
	onmu   [onodeStripes]sync.Mutex
	dev    blockdev.Device
	dataIO BlockIO
	sb     Superblock

	ref       []uint16 // in-memory refcounts, persisted to RefStart region
	refDirty  map[int64]bool
	freeCount int64
	sbDirty   bool

	onodeIndex map[uint64]int64 // object ID -> onode slot
	freeOnodes []int64
	allocHint  int64

	ptrsPerBlock int64

	// jnl is the write-ahead metadata journal (nil on version-1
	// volumes or when formatted with journaling disabled). refPending
	// accumulates refcount changes since the last Sync for the next
	// KindRefUpdate intent record; recovered holds the non-layout
	// records (partition table, needle segment tables) replayed at
	// Open for the object layer to apply.
	jnl        *journal.Journal
	refPending map[int64]uint16
	recovered  []journal.Record
	recStats   journal.Stats

	// devReads counts device reads issued for layout metadata (onodes
	// and pointer blocks), which bypass the object layer's cache. The
	// object layer folds it into its media-I/O-per-read gauge.
	devReads atomic.Int64

	// meta caches recently read onode and pointer blocks so the
	// block-map walk does not pay one media read per data block
	// (metacache.go documents the coherence rules).
	meta *metaCache
}

// FormatOptions controls Format.
type FormatOptions struct {
	// OnodeCount is the number of onode slots (default: one per 64
	// data blocks, min 128).
	OnodeCount int64
	// JournalBlocks sizes the reserved write-ahead journal region.
	// Zero picks a default (1/32 of the device, clamped to [16, 1024]
	// blocks); a negative value disables journaling, which trades
	// crash consistency for one less flush per metadata write (the
	// journal-off benchmark configuration).
	JournalBlocks int64
	// Metrics receives the journal.* counters (optional).
	Metrics *telemetry.Registry
}

// OpenOptions controls OpenWith.
type OpenOptions struct {
	// Metrics receives the journal.* counters (optional).
	Metrics *telemetry.Registry
}

// defaultJournalBlocks sizes the journal region for a device.
func defaultJournalBlocks(total int64) int64 {
	jb := total / 32
	if jb < 16 {
		jb = 16
	}
	if jb > 1024 {
		jb = 1024
	}
	return jb
}

// Format writes a fresh, empty layout to dev and returns the open store.
func Format(dev blockdev.Device, opts FormatOptions) (*Store, error) {
	bs := int64(dev.BlockSize())
	if bs < 512 || bs%512 != 0 {
		return nil, fmt.Errorf("layout: unsupported block size %d", bs)
	}
	total := dev.Blocks()
	refPerBlock := bs / 2
	refBlocks := (total + refPerBlock - 1) / refPerBlock
	onodeCount := opts.OnodeCount
	if onodeCount <= 0 {
		onodeCount = total / 64
		if onodeCount < 128 {
			onodeCount = 128
		}
	}
	onodesPerBlock := bs / OnodeSize
	onodeBlocks := (onodeCount + onodesPerBlock - 1) / onodesPerBlock
	jb := opts.JournalBlocks
	switch {
	case jb < 0:
		jb = 0
	case jb == 0:
		jb = defaultJournalBlocks(total)
	case jb < 16:
		jb = 16
	}
	journalStart := int64(0)
	refStart := int64(1)
	if jb > 0 {
		journalStart = 1
		refStart = 1 + jb
	}
	dataStart := refStart + refBlocks + onodeBlocks
	if dataStart >= total {
		return nil, fmt.Errorf("layout: device too small (%d blocks, %d needed for metadata)", total, dataStart)
	}
	sb := Superblock{
		Magic:         Magic,
		Version:       FormatVersion,
		BlockSize:     uint32(bs),
		TotalBlocks:   total,
		RefStart:      refStart,
		RefBlocks:     refBlocks,
		OnodeStart:    refStart + refBlocks,
		OnodeBlocks:   onodeBlocks,
		DataStart:     dataStart,
		OnodeCount:    onodeCount,
		NextObjectID:  1,
		JournalStart:  journalStart,
		JournalBlocks: jb,
	}
	s := &Store{
		dev:          dev,
		dataIO:       dev,
		sb:           sb,
		ref:          make([]uint16, total),
		refDirty:     make(map[int64]bool),
		freeCount:    total - dataStart,
		onodeIndex:   make(map[uint64]int64),
		ptrsPerBlock: bs / 8,
		allocHint:    dataStart,
		meta:         newMetaCache(),
	}
	if jb > 0 {
		if err := journal.Format(dev, journalStart, jb); err != nil {
			return nil, err
		}
		j, _, _, err := journal.Open(dev, journalStart, jb, opts.Metrics)
		if err != nil {
			return nil, err
		}
		s.jnl = j
		s.refPending = make(map[int64]uint16)
	}
	// Metadata blocks are permanently referenced.
	for i := int64(0); i < dataStart; i++ {
		s.ref[i] = 1
		s.refDirty[i/refPerBlock] = true
	}
	// Zero the onode table.
	zero := make([]byte, bs)
	for i := int64(0); i < onodeBlocks; i++ {
		if err := dev.WriteBlock(sb.OnodeStart+i, zero); err != nil {
			return nil, err
		}
	}
	for i := onodeCount - 1; i >= 0; i-- {
		s.freeOnodes = append(s.freeOnodes, i)
	}
	s.sbDirty = true
	if err := s.Sync(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open reads an existing layout from dev.
func Open(dev blockdev.Device) (*Store, error) {
	return OpenWith(dev, OpenOptions{})
}

// OpenWith reads an existing layout from dev. On a journaled (version
// 2) volume it first recovers the write-ahead journal: committed onode
// records are patched onto the device before the onode scan, committed
// refcount updates are replayed over the loaded allocator state, and
// object-layer records (partition table, needle segment tables) are
// retained for RecoveredRecords. The caller finishes recovery by
// making the replayed state durable (Sync) and calling JournalReset.
func OpenWith(dev blockdev.Device, opts OpenOptions) (*Store, error) {
	bs := int64(dev.BlockSize())
	buf := make([]byte, bs)
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return nil, err
	}
	if int64(sb.BlockSize) != bs {
		return nil, fmt.Errorf("layout: superblock block size %d != device %d", sb.BlockSize, bs)
	}
	s := &Store{
		dev:          dev,
		dataIO:       dev,
		sb:           sb,
		ref:          make([]uint16, sb.TotalBlocks),
		refDirty:     make(map[int64]bool),
		onodeIndex:   make(map[uint64]int64),
		ptrsPerBlock: bs / 8,
		allocHint:    sb.DataStart,
		meta:         newMetaCache(),
	}
	var refRecs []journal.Record
	if sb.JournalBlocks > 0 {
		j, recs, st, jerr := journal.Open(dev, sb.JournalStart, sb.JournalBlocks, opts.Metrics)
		if jerr != nil {
			return nil, jerr
		}
		s.jnl = j
		s.refPending = make(map[int64]uint16)
		s.recStats = st
		for _, r := range recs {
			switch r.Kind {
			case journal.KindOnode:
				// Patch the image onto the device now, before the
				// onode scan below builds the index from it.
				if err := s.replayOnode(r); err != nil {
					return nil, err
				}
				j.Applied(r.LSN)
			case journal.KindRefUpdate:
				refRecs = append(refRecs, r)
			default:
				s.recovered = append(s.recovered, r)
			}
		}
	}
	// Load refcounts.
	refPerBlock := bs / 2
	for i := int64(0); i < sb.RefBlocks; i++ {
		if err := dev.ReadBlock(sb.RefStart+i, buf); err != nil {
			return nil, err
		}
		base := i * refPerBlock
		for j := int64(0); j < refPerBlock && base+j < sb.TotalBlocks; j++ {
			s.ref[base+j] = binary.LittleEndian.Uint16(buf[j*2:])
		}
	}
	// Replay committed refcount intents over the loaded table; the
	// dirty marks route them back to the device on the next Sync.
	for _, r := range refRecs {
		blocks, refs, derr := journal.DecodeRefUpdate(r.Payload)
		if derr != nil {
			return nil, derr
		}
		for i, b := range blocks {
			if b >= 0 && b < sb.TotalBlocks && s.ref[b] != refs[i] {
				s.ref[b] = refs[i]
				s.refDirty[b/refPerBlock] = true
			}
		}
		s.jnl.Applied(r.LSN)
	}
	for i := sb.DataStart; i < sb.TotalBlocks; i++ {
		if s.ref[i] == 0 {
			s.freeCount++
		}
	}
	// Scan onode table to build the index and free list.
	onodesPerBlock := bs / OnodeSize
	for blk := int64(0); blk < sb.OnodeBlocks; blk++ {
		if err := dev.ReadBlock(sb.OnodeStart+blk, buf); err != nil {
			return nil, err
		}
		for j := int64(0); j < onodesPerBlock; j++ {
			idx := blk*onodesPerBlock + j
			if idx >= sb.OnodeCount {
				break
			}
			o := decodeOnode(buf[j*OnodeSize : (j+1)*OnodeSize])
			if o.Allocated() {
				s.onodeIndex[o.ObjectID] = idx
			} else {
				s.freeOnodes = append(s.freeOnodes, idx)
			}
		}
	}
	// Free list pops from the end; reverse so low indexes allocate first.
	for i, j := 0, len(s.freeOnodes)-1; i < j; i, j = i+1, j-1 {
		s.freeOnodes[i], s.freeOnodes[j] = s.freeOnodes[j], s.freeOnodes[i]
	}
	return s, nil
}

// replayOnode writes a recovered onode image back to its slot on the
// device (the committed intent whose in-place write may have been
// lost or torn by the crash).
func (s *Store) replayOnode(r journal.Record) error {
	idx32, image, err := journal.DecodeOnode(r.Payload)
	if err != nil {
		return err
	}
	idx := int64(idx32)
	if idx < 0 || idx >= s.sb.OnodeCount || len(image) != OnodeSize {
		return fmt.Errorf("layout: journal onode record out of range (idx %d)", idx)
	}
	bs := int64(s.sb.BlockSize)
	per := bs / OnodeSize
	blk := s.sb.OnodeStart + idx/per
	buf := make([]byte, bs)
	if err := s.dev.ReadBlock(blk, buf); err != nil {
		return err
	}
	off := (idx % per) * OnodeSize
	copy(buf[off:off+OnodeSize], image)
	s.meta.invalidate(blk)
	return s.dev.WriteBlock(blk, buf)
}

// --- Journal ----------------------------------------------------------

// JournalEnabled reports whether the volume has a write-ahead journal.
func (s *Store) JournalEnabled() bool { return s.jnl != nil }

// journalAppend appends an intent record, recovering from a full
// journal by flushing the device (which makes every issued in-place
// effect durable) and compacting applied records away, then retrying.
func (s *Store) journalAppend(kind journal.Kind, payload []byte) (uint64, error) {
	lsn, err := s.jnl.Append(kind, payload)
	if errors.Is(err, journal.ErrFull) {
		if ferr := s.dev.Flush(); ferr != nil {
			return 0, ferr
		}
		if cerr := s.jnl.Checkpoint(); cerr != nil {
			return 0, cerr
		}
		lsn, err = s.jnl.Append(kind, payload)
	}
	return lsn, err
}

// JournalAppend durably appends one intent record on behalf of the
// object layer (partition table, needle segment tables): the record is
// committed — group-flushed — before return. journal.ErrFull means the
// record cannot fit even after compaction; the caller should fall back
// to its direct durable write path.
func (s *Store) JournalAppend(kind journal.Kind, payload []byte) (uint64, error) {
	if s.jnl == nil {
		return 0, errors.New("layout: journaling disabled")
	}
	lsn, err := s.journalAppend(kind, payload)
	if err != nil {
		return 0, err
	}
	if err := s.jnl.Commit(lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}

// JournalApplied marks an object-layer record's in-place effect as
// issued (see journal.Journal.Applied).
func (s *Store) JournalApplied(lsn uint64) {
	if s.jnl != nil {
		s.jnl.Applied(lsn)
	}
}

// JournalReset discards the journal at the end of mount-time recovery.
// Every replayed effect must already be durable (Sync first).
func (s *Store) JournalReset() error {
	if s.jnl == nil {
		return nil
	}
	return s.jnl.Reset()
}

// RecoveredRecords returns the object-layer journal records (partition
// table, needle segment tables) replayed at Open, plus the scan stats.
func (s *Store) RecoveredRecords() ([]journal.Record, journal.Stats) {
	return s.recovered, s.recStats
}

// lockAlloc acquires the allocator/index mutex through the contention
// meter (a nil meter locks directly).
func (s *Store) lockAlloc() { s.meter.Lock(&s.mu) }

// SetLockMeter wires contention telemetry for the allocator lock. Call
// before concurrent use.
func (s *Store) SetLockMeter(m *telemetry.LockMeter) { s.meter = m }

// onodeLock returns the stripe lock covering the onode-table device
// block that holds onode idx.
func (s *Store) onodeLock(idx int64) *sync.Mutex {
	per := int64(s.sb.BlockSize) / OnodeSize
	return &s.onmu[(idx/per)%onodeStripes]
}

// BlockSize returns the volume block size in bytes.
func (s *Store) BlockSize() int64 { return int64(s.sb.BlockSize) }

// DataBlocks returns the number of blocks available for data.
func (s *Store) DataBlocks() int64 { return s.sb.TotalBlocks - s.sb.DataStart }

// FreeBlocks returns the number of currently unreferenced data blocks.
func (s *Store) FreeBlocks() int64 {
	s.lockAlloc()
	defer s.mu.Unlock()
	return s.freeCount
}

// SetDataIO routes data-block copy-on-write copies through io instead of
// the raw device. Pass the object layer's buffer cache so COW copies see
// write-behind data. Pointer (indirect) blocks always use the raw device
// because the block-map code reads them directly from it.
func (s *Store) SetDataIO(io BlockIO) {
	s.lockAlloc()
	defer s.mu.Unlock()
	s.dataIO = io
}

// Superblock returns a copy of the superblock.
func (s *Store) Superblock() Superblock {
	s.lockAlloc()
	defer s.mu.Unlock()
	return s.sb
}

// NextObjectID atomically returns and increments the volume's object ID
// counter.
func (s *Store) NextObjectID() uint64 {
	s.lockAlloc()
	defer s.mu.Unlock()
	id := s.sb.NextObjectID
	s.sb.NextObjectID++
	s.sbDirty = true
	return id
}

// ReserveObjectIDs raises the object ID counter to at least min so IDs
// below min can be used as well-known objects.
func (s *Store) ReserveObjectIDs(min uint64) {
	s.lockAlloc()
	defer s.mu.Unlock()
	if s.sb.NextObjectID < min {
		s.sb.NextObjectID = min
		s.sbDirty = true
	}
}

// MaxObjectSize returns the largest object size the block map supports.
func (s *Store) MaxObjectSize() uint64 {
	bs := uint64(s.sb.BlockSize)
	p := uint64(s.ptrsPerBlock)
	return bs * (NumDirect + p + p*p)
}

// --- Block allocation -------------------------------------------------

// Alloc allocates n data blocks, preferring a contiguous run starting at
// or after hint (pass 0 for no preference). Contiguity is what lets the
// drive schedule efficient sequential transfers (the paper's NASD is
// "better tuned for disk access" than FFS).
func (s *Store) Alloc(n int, hint int64) ([]int64, error) {
	s.lockAlloc()
	defer s.mu.Unlock()
	if n <= 0 {
		return nil, nil
	}
	start := hint
	if start < s.sb.DataStart || start >= s.sb.TotalBlocks {
		start = s.allocHint
	}
	blocks := make([]int64, 0, n)
	// First pass: scan from start; second pass: from the data region start.
	for pass := 0; pass < 2 && len(blocks) < n; pass++ {
		var lo, hi int64
		if pass == 0 {
			lo, hi = start, s.sb.TotalBlocks
		} else {
			lo, hi = s.sb.DataStart, start
		}
		for i := lo; i < hi && len(blocks) < n; i++ {
			if s.ref[i] == 0 {
				blocks = append(blocks, i)
			}
		}
	}
	if len(blocks) < n {
		return nil, ErrNoSpace
	}
	for _, b := range blocks {
		s.setRef(b, 1)
	}
	s.allocHint = blocks[len(blocks)-1] + 1
	if s.allocHint >= s.sb.TotalBlocks {
		s.allocHint = s.sb.DataStart
	}
	return blocks, nil
}

// IncRef increments a block's reference count (copy-on-write sharing).
func (s *Store) IncRef(blk int64) error {
	s.lockAlloc()
	defer s.mu.Unlock()
	if blk < s.sb.DataStart || blk >= s.sb.TotalBlocks {
		return fmt.Errorf("layout: IncRef(%d) outside data region", blk)
	}
	if s.ref[blk] == 0 {
		return fmt.Errorf("layout: IncRef(%d) on free block", blk)
	}
	s.setRef(blk, s.ref[blk]+1)
	return nil
}

// Free decrements a block's reference count, freeing it at zero.
func (s *Store) Free(blk int64) error {
	s.lockAlloc()
	defer s.mu.Unlock()
	if blk < s.sb.DataStart || blk >= s.sb.TotalBlocks {
		return fmt.Errorf("layout: Free(%d) outside data region", blk)
	}
	if s.ref[blk] == 0 {
		return fmt.Errorf("layout: double free of block %d", blk)
	}
	s.setRef(blk, s.ref[blk]-1)
	if s.ref[blk] == 0 {
		// A fully freed block may be reallocated for anything (data or
		// metadata); a cached metadata copy must not outlive it.
		s.meta.invalidate(blk)
	}
	return nil
}

// RefCount returns a block's reference count.
func (s *Store) RefCount(blk int64) uint16 {
	s.lockAlloc()
	defer s.mu.Unlock()
	if blk < 0 || blk >= s.sb.TotalBlocks {
		return 0
	}
	return s.ref[blk]
}

// setRef must be called with mu held.
func (s *Store) setRef(blk int64, v uint16) {
	old := s.ref[blk]
	if blk >= s.sb.DataStart {
		if old == 0 && v > 0 {
			s.freeCount--
		} else if old > 0 && v == 0 {
			s.freeCount++
		}
	}
	s.ref[blk] = v
	refPerBlock := int64(s.sb.BlockSize) / 2
	s.refDirty[blk/refPerBlock] = true
	if s.jnl != nil {
		// Accumulate for the KindRefUpdate intent record that Sync
		// commits before rewriting the refcount region in place.
		s.refPending[blk] = v
	}
}

// --- Onode management -------------------------------------------------

// AllocOnode claims a free onode slot and returns its index.
func (s *Store) AllocOnode() (int64, error) {
	s.lockAlloc()
	defer s.mu.Unlock()
	if len(s.freeOnodes) == 0 {
		return 0, ErrNoOnodes
	}
	idx := s.freeOnodes[len(s.freeOnodes)-1]
	s.freeOnodes = s.freeOnodes[:len(s.freeOnodes)-1]
	return idx, nil
}

// ReadOnode loads the onode at idx. The stripe lock excludes a
// concurrent writer of the same onode block, so the read is never
// torn.
func (s *Store) ReadOnode(idx int64) (Onode, error) {
	if idx < 0 || idx >= s.sb.OnodeCount {
		return Onode{}, ErrBadOnode
	}
	bs := int64(s.sb.BlockSize)
	per := bs / OnodeSize
	blk := s.sb.OnodeStart + idx/per
	off := (idx % per) * OnodeSize
	l := s.onodeLock(idx)
	l.Lock()
	defer l.Unlock()
	var o Onode
	if s.meta.view(blk, func(b []byte) { o = decodeOnode(b[off : off+OnodeSize]) }) {
		return o, nil
	}
	buf := bufpool.Get(int(bs))
	defer bufpool.Put(buf)
	s.devReads.Add(1)
	if err := s.dev.ReadBlock(blk, buf); err != nil {
		return Onode{}, err
	}
	// Fill under the stripe lock: a concurrent WriteOnode of this block
	// serializes behind us, so the entry cannot go stale mid-install.
	s.meta.fill(blk, buf)
	return decodeOnode(buf[off : off+OnodeSize]), nil
}

// WriteOnode stores o at idx (write-through) and maintains the object ID
// index. Writing a zero ObjectID releases the slot. The stripe lock
// makes the read-modify-write of the shared onode block atomic against
// writers of neighboring onodes. On a journaled volume the new onode
// image is committed to the write-ahead journal before the in-place
// write is issued, so a crash that loses or tears the onode block is
// repaired by replay at the next mount.
func (s *Store) WriteOnode(idx int64, o *Onode) error {
	if idx < 0 || idx >= s.sb.OnodeCount {
		return ErrBadOnode
	}
	bs := int64(s.sb.BlockSize)
	per := bs / OnodeSize
	blk := s.sb.OnodeStart + idx/per
	buf := make([]byte, bs)
	l := s.onodeLock(idx)
	l.Lock()
	if !s.meta.view(blk, func(b []byte) { copy(buf, b) }) {
		s.devReads.Add(1)
		if err := s.dev.ReadBlock(blk, buf); err != nil {
			l.Unlock()
			return err
		}
	}
	off := (idx % per) * OnodeSize
	prev := decodeOnode(buf[off : off+OnodeSize])
	encodeOnode(buf[off:off+OnodeSize], o)
	var lsn uint64
	if s.jnl != nil {
		var err error
		lsn, err = s.journalAppend(journal.KindOnode, journal.EncodeOnode(uint32(idx), buf[off:off+OnodeSize]))
		if err == nil {
			err = s.jnl.Commit(lsn)
		}
		if err != nil {
			l.Unlock()
			return err
		}
	}
	if err := s.dev.WriteBlock(blk, buf); err != nil {
		s.meta.invalidate(blk)
		l.Unlock()
		return err
	}
	s.meta.fill(blk, buf)
	l.Unlock()
	if s.jnl != nil {
		s.jnl.Applied(lsn)
	}
	s.lockAlloc()
	defer s.mu.Unlock()
	if prev.Allocated() && (prev.ObjectID != o.ObjectID) {
		delete(s.onodeIndex, prev.ObjectID)
	}
	if o.Allocated() {
		s.onodeIndex[o.ObjectID] = idx
	} else if prev.Allocated() {
		s.freeOnodes = append(s.freeOnodes, idx)
	}
	return nil
}

// FindOnode returns the onode slot holding objectID.
func (s *Store) FindOnode(objectID uint64) (int64, bool) {
	s.lockAlloc()
	defer s.mu.Unlock()
	idx, ok := s.onodeIndex[objectID]
	return idx, ok
}

// ObjectIDs returns the IDs of all allocated objects, optionally
// filtered by partition (0 = all). Order is unspecified.
func (s *Store) ObjectIDs(partition uint16) []uint64 {
	s.lockAlloc()
	idxs := make([]int64, 0, len(s.onodeIndex))
	ids := make([]uint64, 0, len(s.onodeIndex))
	for id, idx := range s.onodeIndex {
		ids = append(ids, id)
		idxs = append(idxs, idx)
	}
	s.mu.Unlock()
	if partition == 0 {
		return ids
	}
	out := ids[:0]
	for i, idx := range idxs {
		o, err := s.ReadOnode(idx)
		if err == nil && o.Partition == partition {
			out = append(out, ids[i])
		}
	}
	return out
}

// --- Block map --------------------------------------------------------

// BMap resolves an object-relative block number to a physical block.
// It returns 0 for holes (unallocated regions read as zeros).
func (s *Store) BMap(o *Onode, fileBlock int64) (int64, error) {
	p := s.ptrsPerBlock
	switch {
	case fileBlock < 0:
		return 0, fmt.Errorf("layout: negative file block %d", fileBlock)
	case fileBlock < NumDirect:
		return o.Direct[fileBlock], nil
	case fileBlock < NumDirect+p:
		if o.Indirect == 0 {
			return 0, nil
		}
		return s.readPtr(o.Indirect, fileBlock-NumDirect)
	case fileBlock < NumDirect+p+p*p:
		if o.Indirect2 == 0 {
			return 0, nil
		}
		rel := fileBlock - NumDirect - p
		l1, err := s.readPtr(o.Indirect2, rel/p)
		if err != nil || l1 == 0 {
			return 0, err
		}
		return s.readPtr(l1, rel%p)
	default:
		return 0, ErrTooBig
	}
}

// BMapAlloc resolves like BMap but allocates missing blocks and breaks
// copy-on-write sharing along the path: any block (data or indirect)
// with a reference count above one is replaced by a private copy before
// it can be written. The onode is updated in memory; callers persist it
// with WriteOnode. The returned physical block is safe to overwrite.
func (s *Store) BMapAlloc(o *Onode, fileBlock int64, hint int64) (int64, error) {
	p := s.ptrsPerBlock
	switch {
	case fileBlock < 0:
		return 0, fmt.Errorf("layout: negative file block %d", fileBlock)
	case fileBlock < NumDirect:
		blk, err := s.allocOrUnshare(o.Direct[fileBlock], hint, s.dataIO)
		if err != nil {
			return 0, err
		}
		o.Direct[fileBlock] = blk
		return blk, nil
	case fileBlock < NumDirect+p:
		ind, err := s.ensurePtrBlock(&o.Indirect, hint)
		if err != nil {
			return 0, err
		}
		return s.allocThroughPtr(ind, fileBlock-NumDirect, hint)
	case fileBlock < NumDirect+p+p*p:
		rel := fileBlock - NumDirect - p
		ind2, err := s.ensurePtrBlock(&o.Indirect2, hint)
		if err != nil {
			return 0, err
		}
		l1, err := s.readPtr(ind2, rel/p)
		if err != nil {
			return 0, err
		}
		newL1, err := s.ensurePtrBlockAt(ind2, rel/p, l1, hint)
		if err != nil {
			return 0, err
		}
		return s.allocThroughPtr(newL1, rel%p, hint)
	default:
		return 0, ErrTooBig
	}
}

// allocOrUnshare returns cur if it is exclusively owned, otherwise a
// fresh block (copying cur's contents through io when it was shared).
func (s *Store) allocOrUnshare(cur int64, hint int64, io BlockIO) (int64, error) {
	if cur != 0 && s.RefCount(cur) == 1 {
		return cur, nil
	}
	blks, err := s.Alloc(1, hint)
	if err != nil {
		return 0, err
	}
	nb := blks[0]
	if cur != 0 {
		// Shared: copy old contents, drop our reference to the old block.
		buf := make([]byte, s.sb.BlockSize)
		if err := io.ReadBlock(cur, buf); err != nil {
			_ = s.Free(nb)
			return 0, err
		}
		if err := io.WriteBlock(nb, buf); err != nil {
			_ = s.Free(nb)
			return 0, err
		}
		if err := s.Free(cur); err != nil {
			return 0, err
		}
	}
	return nb, nil
}

// ensurePtrBlock makes *slot point to an exclusively-owned pointer
// block, allocating or copying as needed. Pointer blocks move through
// the raw device, never the data IO path.
func (s *Store) ensurePtrBlock(slot *int64, hint int64) (int64, error) {
	cur := *slot
	if cur != 0 && s.RefCount(cur) == 1 {
		return cur, nil
	}
	nb, err := s.allocOrUnshare(cur, hint, s.dev)
	if err != nil {
		return 0, err
	}
	// nb's device content just changed outside the usual write paths
	// (zeroed below, or the unshare copy inside allocOrUnshare); drop
	// any entry a prior life of this block left behind.
	s.meta.invalidate(nb)
	if cur == 0 {
		// Fresh pointer block must start zeroed.
		if err := s.dev.WriteBlock(nb, make([]byte, s.sb.BlockSize)); err != nil {
			_ = s.Free(nb)
			return 0, err
		}
	}
	*slot = nb
	return nb, nil
}

// ensurePtrBlockAt is ensurePtrBlock for a slot stored inside pointer
// block parent at index idx.
func (s *Store) ensurePtrBlockAt(parent int64, idx int64, cur int64, hint int64) (int64, error) {
	slot := cur
	nb, err := s.ensurePtrBlock(&slot, hint)
	if err != nil {
		return 0, err
	}
	if nb != cur {
		if err := s.writePtr(parent, idx, nb); err != nil {
			return 0, err
		}
	}
	return nb, nil
}

// allocThroughPtr ensures the data block at index idx of pointer block
// ptrBlk exists and is exclusively owned.
func (s *Store) allocThroughPtr(ptrBlk int64, idx int64, hint int64) (int64, error) {
	cur, err := s.readPtr(ptrBlk, idx)
	if err != nil {
		return 0, err
	}
	nb, err := s.allocOrUnshare(cur, hint, s.dataIO)
	if err != nil {
		return 0, err
	}
	if nb != cur {
		if err := s.writePtr(ptrBlk, idx, nb); err != nil {
			return 0, err
		}
	}
	return nb, nil
}

// UnmapBlock drops the mapping for an object-relative block: the data
// block loses one reference and the pointer slot is zeroed. Shared
// pointer blocks along the path are unshared first so a copy-on-write
// sibling's mapping is untouched. It reports the physical block that
// was unmapped (0 if the block was a hole). Truncation uses this.
func (s *Store) UnmapBlock(o *Onode, fileBlock int64) (int64, error) {
	p := s.ptrsPerBlock
	switch {
	case fileBlock < 0:
		return 0, fmt.Errorf("layout: negative file block %d", fileBlock)
	case fileBlock < NumDirect:
		cur := o.Direct[fileBlock]
		if cur == 0 {
			return 0, nil
		}
		if err := s.Free(cur); err != nil {
			return 0, err
		}
		o.Direct[fileBlock] = 0
		return cur, nil
	case fileBlock < NumDirect+p:
		if o.Indirect == 0 {
			return 0, nil
		}
		idx := fileBlock - NumDirect
		cur, err := s.readPtr(o.Indirect, idx)
		if err != nil || cur == 0 {
			return 0, err
		}
		ind, err := s.ensurePtrBlock(&o.Indirect, 0)
		if err != nil {
			return 0, err
		}
		if err := s.Free(cur); err != nil {
			return 0, err
		}
		if err := s.writePtr(ind, idx, 0); err != nil {
			return 0, err
		}
		return cur, nil
	case fileBlock < NumDirect+p+p*p:
		if o.Indirect2 == 0 {
			return 0, nil
		}
		rel := fileBlock - NumDirect - p
		l1, err := s.readPtr(o.Indirect2, rel/p)
		if err != nil || l1 == 0 {
			return 0, err
		}
		cur, err := s.readPtr(l1, rel%p)
		if err != nil || cur == 0 {
			return 0, err
		}
		ind2, err := s.ensurePtrBlock(&o.Indirect2, 0)
		if err != nil {
			return 0, err
		}
		newL1, err := s.ensurePtrBlockAt(ind2, rel/p, l1, 0)
		if err != nil {
			return 0, err
		}
		if err := s.Free(cur); err != nil {
			return 0, err
		}
		if err := s.writePtr(newL1, rel%p, 0); err != nil {
			return 0, err
		}
		return cur, nil
	default:
		return 0, ErrTooBig
	}
}

func (s *Store) readPtr(blk int64, idx int64) (int64, error) {
	var v int64
	if s.meta.view(blk, func(b []byte) { v = int64(binary.LittleEndian.Uint64(b[idx*8:])) }) {
		if v != 0 && (v < s.sb.DataStart || v >= s.sb.TotalBlocks) {
			return 0, nil
		}
		return v, nil
	}
	buf := bufpool.Get(int(s.sb.BlockSize))
	defer bufpool.Put(buf)
	s.devReads.Add(1)
	if err := s.dev.ReadBlock(blk, buf); err != nil {
		return 0, err
	}
	s.meta.fill(blk, buf)
	v = int64(binary.LittleEndian.Uint64(buf[idx*8:]))
	// A legitimate pointer is zero (hole) or a data-region block. Pointer
	// blocks are not write-ahead journaled, so after a crash one can hold
	// stale or torn content; clamping wild values to holes here keeps
	// every traversal (BMap, ForEachBlock, recovery verification) from
	// wandering out of the volume. Affected objects were dirty at the
	// crash and read zeros, which the durability contract allows.
	if v != 0 && (v < s.sb.DataStart || v >= s.sb.TotalBlocks) {
		return 0, nil
	}
	return v, nil
}

// DevReads returns the number of device reads issued for layout
// metadata (onode and pointer blocks) since the store was opened.
func (s *Store) DevReads() int64 { return s.devReads.Load() }

func (s *Store) writePtr(blk int64, idx int64, v int64) error {
	buf := bufpool.Get(int(s.sb.BlockSize))
	defer bufpool.Put(buf)
	if !s.meta.view(blk, func(b []byte) { copy(buf, b) }) {
		s.devReads.Add(1)
		if err := s.dev.ReadBlock(blk, buf); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(buf[idx*8:], uint64(v))
	if err := s.dev.WriteBlock(blk, buf); err != nil {
		// The write may have partially applied; drop any cached copy.
		s.meta.invalidate(blk)
		return err
	}
	s.meta.fill(blk, buf)
	return nil
}

// ForEachBlock calls fn for every physical block reachable from o,
// including indirect blocks themselves (kind "data" or "ptr"). It is
// the traversal used to free or clone an object.
func (s *Store) ForEachBlock(o *Onode, fn func(phys int64, isPtr bool) error) error {
	for _, b := range o.Direct {
		if b != 0 {
			if err := fn(b, false); err != nil {
				return err
			}
		}
	}
	p := s.ptrsPerBlock
	if o.Indirect != 0 {
		if err := fn(o.Indirect, true); err != nil {
			return err
		}
		for i := int64(0); i < p; i++ {
			b, err := s.readPtr(o.Indirect, i)
			if err != nil {
				return err
			}
			if b != 0 {
				if err := fn(b, false); err != nil {
					return err
				}
			}
		}
	}
	if o.Indirect2 != 0 {
		if err := fn(o.Indirect2, true); err != nil {
			return err
		}
		for i := int64(0); i < p; i++ {
			l1, err := s.readPtr(o.Indirect2, i)
			if err != nil {
				return err
			}
			if l1 == 0 {
				continue
			}
			if err := fn(l1, true); err != nil {
				return err
			}
			for j := int64(0); j < p; j++ {
				b, err := s.readPtr(l1, j)
				if err != nil {
					return err
				}
				if b != 0 {
					if err := fn(b, false); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// FreeObjectBlocks drops one reference from every block reachable from
// o (data and indirect), the destructor half of copy-on-write.
func (s *Store) FreeObjectBlocks(o *Onode) error {
	return s.ForEachBlock(o, func(phys int64, _ bool) error {
		return s.Free(phys)
	})
}

// CloneOnodeBlocks increments the reference count of every block
// reachable from o; the caller then copies the onode itself. This is
// the constructor half of copy-on-write versioning.
func (s *Store) CloneOnodeBlocks(o *Onode) error {
	return s.ForEachBlock(o, func(phys int64, _ bool) error {
		return s.IncRef(phys)
	})
}

// --- Data block IO ----------------------------------------------------

// ReadDataBlock reads physical block blk into buf; blk 0 (a hole) fills
// buf with zeros.
func (s *Store) ReadDataBlock(blk int64, buf []byte) error {
	if blk == 0 {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	return s.dev.ReadBlock(blk, buf)
}

// WriteDataBlock writes buf to physical block blk.
func (s *Store) WriteDataBlock(blk int64, buf []byte) error {
	return s.dev.WriteBlock(blk, buf)
}

// --- Persistence ------------------------------------------------------

// Sync flushes dirty refcount regions and the superblock to the
// device. On a journaled volume the accumulated refcount changes are
// first committed as one KindRefUpdate intent record — write-ahead of
// the in-place region rewrite — and after the flush the journal is
// compacted (applied records discarded, unapplied ones carried
// forward).
func (s *Store) Sync() error {
	s.lockAlloc()
	defer s.mu.Unlock()
	bs := int64(s.sb.BlockSize)
	refPerBlock := bs / 2

	var refLSN uint64
	if s.jnl != nil && len(s.refPending) > 0 {
		blocks := make([]int64, 0, len(s.refPending))
		refs := make([]uint16, 0, len(s.refPending))
		for b, v := range s.refPending {
			blocks = append(blocks, b)
			refs = append(refs, v)
		}
		lsn, err := s.journalAppend(journal.KindRefUpdate, journal.EncodeRefUpdate(blocks, refs))
		switch {
		case errors.Is(err, journal.ErrFull):
			// The batch cannot fit even after compaction. Proceed
			// without the intent record: mount-time verification
			// re-derives refcounts from the object reachability walk,
			// so a torn region write is still repaired.
		case err != nil:
			return err
		default:
			if err := s.jnl.Commit(lsn); err != nil {
				return err
			}
			refLSN = lsn
		}
		s.refPending = make(map[int64]uint16)
	}

	buf := make([]byte, bs)
	for rb := range s.refDirty {
		base := rb * refPerBlock
		for j := int64(0); j < refPerBlock; j++ {
			var v uint16
			if base+j < s.sb.TotalBlocks {
				v = s.ref[base+j]
			}
			binary.LittleEndian.PutUint16(buf[j*2:], v)
		}
		if err := s.dev.WriteBlock(s.sb.RefStart+rb, buf); err != nil {
			return err
		}
	}
	s.refDirty = make(map[int64]bool)
	if s.sbDirty {
		sbuf := make([]byte, bs)
		encodeSuperblock(sbuf, &s.sb)
		if err := s.dev.WriteBlock(0, sbuf); err != nil {
			return err
		}
		s.sbDirty = false
	}
	if err := s.dev.Flush(); err != nil {
		return err
	}
	if s.jnl != nil {
		// Every effect issued before the flush above is now durable,
		// so applied records can be compacted away.
		if refLSN != 0 {
			s.jnl.Applied(refLSN)
		}
		return s.jnl.Checkpoint()
	}
	return nil
}

// RepairRef forces a block's reference count to v. Mount-time
// verification uses it to reconcile the allocator with the refcounts
// re-derived from object reachability after a crash.
func (s *Store) RepairRef(blk int64, v uint16) {
	s.lockAlloc()
	defer s.mu.Unlock()
	if blk < 0 || blk >= s.sb.TotalBlocks || s.ref[blk] == v {
		return
	}
	s.setRef(blk, v)
}

// MarkSuperblockDirty schedules the superblock for rewrite on next Sync.
func (s *Store) MarkSuperblockDirty() {
	s.lockAlloc()
	defer s.mu.Unlock()
	s.sbDirty = true
}
