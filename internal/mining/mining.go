// Package mining implements the paper's parallel data-mining
// application: discovering association rules in sales transactions with
// the Apriori frequent-sets algorithm [Agrawal94]. The paper's Figure 9
// measures the most I/O-bound phase — the full-scan generation of
// 1-itemsets over a 300 MB transaction file — and Section 6 runs the
// same counting kernel on the drives themselves (Active Disks).
//
// The original used retail sales data we do not have; Generate
// synthesizes transactions with a skewed item popularity so frequent
// sets exist. Pass-1 bandwidth depends only on data volume and record
// framing, which the substitution preserves.
package mining

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// ChunkSize is the unit of work assignment: the parallel harness
// "avoids splitting records over 2 MB boundaries and uses a simple
// round-robin scheme to assign 2 MB chunks to clients".
const ChunkSize = 2 << 20

// Record framing: u16 item count, then that many u16 item IDs. A zero
// item count is boundary padding.
const maxItemsPerRecord = 64

// GenConfig parameterizes the transaction generator.
type GenConfig struct {
	// CatalogSize is the number of distinct items for sale.
	CatalogSize int
	// MeanItems is the average basket size.
	MeanItems int
	// TotalBytes is the approximate output size.
	TotalBytes int
	// Seed makes generation reproducible.
	Seed int64
}

func (c *GenConfig) fill() {
	if c.CatalogSize <= 0 {
		c.CatalogSize = 1000
	}
	if c.MeanItems <= 0 {
		c.MeanItems = 8
	}
	if c.TotalBytes <= 0 {
		c.TotalBytes = 1 << 20
	}
}

// Generate produces a transaction file. Records never straddle
// ChunkSize boundaries: the tail of each chunk is padded with zeros
// (a zero item count terminates parsing within a chunk).
func Generate(cfg GenConfig) []byte {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]byte, 0, cfg.TotalBytes)
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(cfg.CatalogSize-1))
	for len(out) < cfg.TotalBytes {
		n := 1 + rng.Intn(2*cfg.MeanItems)
		if n > maxItemsPerRecord {
			n = maxItemsPerRecord
		}
		recLen := 2 + 2*n
		// Keep records inside their 2 MB chunk.
		if rem := ChunkSize - len(out)%ChunkSize; rem < recLen {
			out = append(out, make([]byte, rem)...)
			continue
		}
		var rec [2 + 2*maxItemsPerRecord]byte
		binary.LittleEndian.PutUint16(rec[0:], uint16(n))
		seen := make(map[uint16]bool, n)
		w := 2
		for k := 0; k < n; k++ {
			item := uint16(zipf.Uint64())
			if seen[item] {
				continue
			}
			seen[item] = true
			binary.LittleEndian.PutUint16(rec[w:], item)
			w += 2
		}
		binary.LittleEndian.PutUint16(rec[0:], uint16((w-2)/2))
		out = append(out, rec[:w]...)
	}
	return out[:cfg.TotalBytes-(cfg.TotalBytes%1)] // exact length
}

// ForEachRecord parses records in a chunk-aligned byte range, invoking
// fn with each record's item list. Parsing stops at a zero item count
// within each chunk (padding) and resumes at the next chunk boundary.
func ForEachRecord(data []byte, fn func(items []uint16)) {
	items := make([]uint16, 0, maxItemsPerRecord)
	for chunkStart := 0; chunkStart < len(data); chunkStart += ChunkSize {
		end := chunkStart + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		off := chunkStart
		for off+2 <= end {
			n := int(binary.LittleEndian.Uint16(data[off:]))
			if n == 0 {
				break // padding to the chunk boundary
			}
			off += 2
			if off+2*n > end {
				break // truncated record (corrupt input); skip chunk tail
			}
			items = items[:0]
			for k := 0; k < n; k++ {
				items = append(items, binary.LittleEndian.Uint16(data[off+2*k:]))
			}
			off += 2 * n
			fn(items)
		}
	}
}

// CountItems is the pass-1 kernel (1-itemset generation): it tallies
// item occurrences into counts. This is the phase Figure 9 measures and
// the kernel Active Disks runs on-drive.
func CountItems(data []byte, counts []uint32) {
	ForEachRecord(data, func(items []uint16) {
		for _, it := range items {
			if int(it) < len(counts) {
				counts[it]++
			}
		}
	})
}

// ItemSet is a sorted set of item IDs.
type ItemSet []uint16

func (s ItemSet) String() string { return fmt.Sprint([]uint16(s)) }

type setKey string

func key(s ItemSet) setKey {
	b := make([]byte, 2*len(s))
	for i, it := range s {
		binary.LittleEndian.PutUint16(b[2*i:], it)
	}
	return setKey(b)
}

// FrequentSets holds the result of one Apriori pass.
type FrequentSets struct {
	K      int
	Counts map[setKey]uint32
	Sets   []ItemSet
}

// Apriori runs the full multi-pass frequent-sets algorithm over a data
// source. scan must call the provided function with successive
// chunk-aligned byte ranges covering the file (it will be invoked once
// per pass). minSupport is the absolute occurrence threshold; maxK
// bounds the largest itemset searched.
func Apriori(scan func(emit func(chunk []byte)) error, minSupport uint32, catalog int, maxK int) ([]FrequentSets, error) {
	var result []FrequentSets

	// Pass 1: frequent items.
	counts := make([]uint32, catalog)
	err := scan(func(chunk []byte) { CountItems(chunk, counts) })
	if err != nil {
		return nil, err
	}
	f1 := FrequentSets{K: 1, Counts: make(map[setKey]uint32)}
	frequent := make(map[uint16]bool)
	for it, c := range counts {
		if c >= minSupport {
			s := ItemSet{uint16(it)}
			f1.Counts[key(s)] = c
			f1.Sets = append(f1.Sets, s)
			frequent[uint16(it)] = true
		}
	}
	sortSets(f1.Sets)
	result = append(result, f1)

	prev := f1
	for k := 2; k <= maxK && len(prev.Sets) >= k; k++ {
		candidates := generateCandidates(prev.Sets, k)
		if len(candidates) == 0 {
			break
		}
		candCounts := make(map[setKey]uint32, len(candidates))
		for _, c := range candidates {
			candCounts[key(c)] = 0
		}
		err := scan(func(chunk []byte) {
			countCandidates(chunk, k, frequent, candCounts)
		})
		if err != nil {
			return nil, err
		}
		fk := FrequentSets{K: k, Counts: make(map[setKey]uint32)}
		for _, c := range candidates {
			if n := candCounts[key(c)]; n >= minSupport {
				fk.Counts[key(c)] = n
				fk.Sets = append(fk.Sets, c)
			}
		}
		if len(fk.Sets) == 0 {
			break
		}
		sortSets(fk.Sets)
		result = append(result, fk)
		prev = fk
	}
	return result, nil
}

// Support returns the count recorded for set s (0 if not frequent).
func (f FrequentSets) Support(s ItemSet) uint32 { return f.Counts[key(s)] }

func sortSets(sets []ItemSet) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// generateCandidates joins (k-1)-itemsets sharing a (k-2)-prefix, the
// classic Apriori candidate generation, with subset pruning.
func generateCandidates(prev []ItemSet, k int) []ItemSet {
	prevSet := make(map[setKey]bool, len(prev))
	for _, s := range prev {
		prevSet[key(s)] = true
	}
	var out []ItemSet
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i], prev[j]
			if !samePrefix(a, b, k-2) {
				break // sorted order: no later j can share the prefix
			}
			cand := make(ItemSet, 0, k)
			cand = append(cand, a...)
			cand = append(cand, b[k-2])
			if cand[k-2] >= cand[k-1] {
				continue
			}
			if allSubsetsFrequent(cand, prevSet) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b ItemSet, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand ItemSet, prev map[setKey]bool) bool {
	sub := make(ItemSet, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != drop {
				sub = append(sub, it)
			}
		}
		if !prev[key(sub)] {
			return false
		}
	}
	return true
}

// countCandidates counts k-item candidates in one chunk.
func countCandidates(chunk []byte, k int, frequent map[uint16]bool, cand map[setKey]uint32) {
	var filtered []uint16
	ForEachRecord(chunk, func(items []uint16) {
		filtered = filtered[:0]
		for _, it := range items {
			if frequent[it] {
				filtered = append(filtered, it)
			}
		}
		if len(filtered) < k {
			return
		}
		sort.Slice(filtered, func(i, j int) bool { return filtered[i] < filtered[j] })
		combinations(filtered, k, func(s ItemSet) {
			ck := key(s)
			if _, ok := cand[ck]; ok {
				cand[ck]++
			}
		})
	})
}

// combinations invokes fn with every k-combination of sorted items.
func combinations(items []uint16, k int, fn func(ItemSet)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make(ItemSet, k)
	for {
		for i, x := range idx {
			buf[i] = items[x]
		}
		fn(buf)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == len(items)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
