package mining

import (
	"context"
	"encoding/binary"
	"reflect"
	"testing"
)

func TestGenerateDeterministicAndSized(t *testing.T) {
	cfg := GenConfig{CatalogSize: 100, MeanItems: 5, TotalBytes: 1 << 20, Seed: 1}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generation not deterministic")
	}
	if len(a) != 1<<20 {
		t.Fatalf("size = %d", len(a))
	}
	c := Generate(GenConfig{CatalogSize: 100, MeanItems: 5, TotalBytes: 1 << 20, Seed: 2})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestRecordsNeverStraddleChunks(t *testing.T) {
	data := Generate(GenConfig{CatalogSize: 50, MeanItems: 10, TotalBytes: 5 * ChunkSize, Seed: 3})
	// Parse each chunk independently; every record must be complete.
	for chunk := 0; chunk < 5; chunk++ {
		seg := data[chunk*ChunkSize : (chunk+1)*ChunkSize]
		off := 0
		for off+2 <= len(seg) {
			n := int(binary.LittleEndian.Uint16(seg[off:]))
			if n == 0 {
				break
			}
			if off+2+2*n > len(seg) {
				t.Fatalf("chunk %d: record at %d overruns boundary", chunk, off)
			}
			off += 2 + 2*n
		}
	}
}

func TestCountItemsMatchesForEachRecord(t *testing.T) {
	data := Generate(GenConfig{CatalogSize: 64, TotalBytes: 256 << 10, Seed: 4})
	counts := make([]uint32, 64)
	CountItems(data, counts)
	var manual [64]uint32
	ForEachRecord(data, func(items []uint16) {
		for _, it := range items {
			manual[it]++
		}
	})
	for i := range manual {
		if counts[i] != manual[i] {
			t.Fatalf("item %d: %d vs %d", i, counts[i], manual[i])
		}
	}
	var total uint32
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no items counted")
	}
}

func TestZipfSkew(t *testing.T) {
	data := Generate(GenConfig{CatalogSize: 500, TotalBytes: 1 << 20, Seed: 5})
	counts := make([]uint32, 500)
	CountItems(data, counts)
	// Item popularity is skewed: item 0 beats item 400 comfortably.
	if counts[0] < counts[400]*4 {
		t.Fatalf("no skew: counts[0]=%d counts[400]=%d", counts[0], counts[400])
	}
}

// hand-built transactions for exact Apriori verification.
func buildTransactions(t *testing.T, txs [][]uint16) []byte {
	t.Helper()
	var out []byte
	for _, tx := range txs {
		rec := make([]byte, 2+2*len(tx))
		binary.LittleEndian.PutUint16(rec, uint16(len(tx)))
		for i, it := range tx {
			binary.LittleEndian.PutUint16(rec[2+2*i:], it)
		}
		out = append(out, rec...)
	}
	return out
}

func scanOf(data []byte) func(func([]byte)) error {
	return func(emit func([]byte)) error {
		emit(data)
		return nil
	}
}

func TestAprioriExact(t *testing.T) {
	// Classic example: milk(0), bread(1), eggs(2), beer(3).
	data := buildTransactions(t, [][]uint16{
		{0, 1, 2},
		{0, 1},
		{0, 2},
		{1, 2},
		{0, 1, 2},
		{3},
	})
	passes, err := Apriori(scanOf(data), 3, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) < 2 {
		t.Fatalf("passes = %d", len(passes))
	}
	// 1-itemsets: 0 (x4? actually 0 appears in tx 1,2,3,5 = 4), 1 (4), 2 (4). 3 appears once: below support.
	f1 := passes[0]
	if len(f1.Sets) != 3 {
		t.Fatalf("frequent items = %v", f1.Sets)
	}
	if f1.Support(ItemSet{3}) != 0 {
		t.Fatal("infrequent item reported")
	}
	if f1.Support(ItemSet{0}) != 4 {
		t.Fatalf("support(0) = %d", f1.Support(ItemSet{0}))
	}
	// 2-itemsets with support >= 3: {0,1} (3), {0,2} (3), {1,2} (3).
	f2 := passes[1]
	if len(f2.Sets) != 3 {
		t.Fatalf("frequent pairs = %v", f2.Sets)
	}
	if f2.Support(ItemSet{0, 1}) != 3 || f2.Support(ItemSet{0, 2}) != 3 || f2.Support(ItemSet{1, 2}) != 3 {
		t.Fatalf("pair supports wrong: %v", f2.Counts)
	}
	// 3-itemsets: {0,1,2} appears twice — below support, so no pass 3.
	if len(passes) > 2 {
		t.Fatalf("unexpected pass 3: %v", passes[2].Sets)
	}
}

func TestAprioriFindsTriple(t *testing.T) {
	var txs [][]uint16
	for i := 0; i < 10; i++ {
		txs = append(txs, []uint16{1, 2, 3})
	}
	txs = append(txs, []uint16{4, 5})
	data := buildTransactions(t, txs)
	passes, err := Apriori(scanOf(data), 5, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 3 {
		t.Fatalf("passes = %d", len(passes))
	}
	f3 := passes[2]
	if len(f3.Sets) != 1 || f3.Support(ItemSet{1, 2, 3}) != 10 {
		t.Fatalf("triple = %v", f3.Sets)
	}
}

func TestParallelCountMatchesSerial(t *testing.T) {
	data := Generate(GenConfig{CatalogSize: 200, TotalBytes: 9*ChunkSize + 12345, Seed: 6})
	serial := make([]uint32, 200)
	CountItems(data, serial)

	for _, nClients := range []int{1, 2, 3, 5} {
		sources := make([]Source, nClients)
		for i := range sources {
			sources[i] = BufferSource(data)
		}
		got, err := ParallelCount(context.Background(), sources, uint64(len(data)), ParallelConfig{Catalog: 200})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("%d clients: parallel counts differ from serial", nClients)
		}
	}
}

func TestParallelCountSmallRequests(t *testing.T) {
	// Requests smaller than records' chunk require reassembly before
	// parsing; verify correctness with a 64 KB request size.
	data := Generate(GenConfig{CatalogSize: 100, TotalBytes: 3 * ChunkSize, Seed: 7})
	serial := make([]uint32, 100)
	CountItems(data, serial)
	got, err := ParallelCount(context.Background(), []Source{BufferSource(data), BufferSource(data)},
		uint64(len(data)), ParallelConfig{Catalog: 100, RequestSize: 64 << 10, Producers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Fatal("reassembled counts differ")
	}
}

func TestCombinations(t *testing.T) {
	var got []ItemSet
	combinations([]uint16{1, 2, 3, 4}, 2, func(s ItemSet) {
		got = append(got, append(ItemSet(nil), s...))
	})
	if len(got) != 6 {
		t.Fatalf("C(4,2) = %d", len(got))
	}
}

func TestBufferSourceBounds(t *testing.T) {
	b := BufferSource([]byte{1, 2, 3})
	if d, err := b.ReadAt(context.Background(), 5, 2); err != nil || d != nil {
		t.Fatalf("past end: %v %v", d, err)
	}
	if d, _ := b.ReadAt(context.Background(), 2, 5); len(d) != 1 {
		t.Fatalf("clip: %v", d)
	}
}
