package mining

import (
	"context"
	"fmt"
	"sync"
)

// Source is anything a mining client can read transaction bytes from —
// a PFS file, an NFS client, or a local buffer.
type Source interface {
	ReadAt(ctx context.Context, off uint64, n int) ([]byte, error)
}

// ParallelConfig tunes the parallel pass-1 harness to match the paper:
// "each client is implemented as four producer threads and a single
// consumer. Producer threads read data in 512 KB requests (which is
// the stripe unit for Cheops objects in this configuration) and the
// consumer thread performs the frequent sets computation".
type ParallelConfig struct {
	Producers   int // per client (default 4)
	RequestSize int // default 512 KB
	Catalog     int // item ID space
}

func (c *ParallelConfig) fill() {
	if c.Producers <= 0 {
		c.Producers = 4
	}
	if c.RequestSize <= 0 {
		c.RequestSize = 512 << 10
	}
	if c.Catalog <= 0 {
		c.Catalog = 1000
	}
}

// ParallelCount runs the pass-1 (1-itemset) scan across one source per
// client, assigning 2 MB chunks round-robin, and returns the merged
// item counts. Each client's counts are computed independently and
// combined at a single master, as in the paper.
func ParallelCount(ctx context.Context, sources []Source, fileSize uint64, cfg ParallelConfig) ([]uint32, error) {
	cfg.fill()
	nClients := len(sources)
	if nClients == 0 {
		return nil, fmt.Errorf("mining: no clients")
	}
	perClient := make([][]uint32, nClients)
	errs := make([]error, nClients)
	var wg sync.WaitGroup
	for ci := range sources {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			perClient[ci], errs[ci] = clientCount(ctx, sources[ci], fileSize, ci, nClients, cfg)
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Master merge.
	merged := make([]uint32, cfg.Catalog)
	for _, counts := range perClient {
		for i, c := range counts {
			merged[i] += c
		}
	}
	return merged, nil
}

// clientCount is one mining client: producers fetch this client's
// chunks in RequestSize requests; the consumer counts.
func clientCount(ctx context.Context, src Source, fileSize uint64, clientIdx, nClients int, cfg ParallelConfig) ([]uint32, error) {
	type piece struct {
		chunk int64
		off   int
		data  []byte
	}
	nChunks := int64((fileSize + ChunkSize - 1) / ChunkSize)

	// Work queue of this client's chunk indexes (round-robin share).
	var myChunks []int64
	for c := int64(clientIdx); c < nChunks; c += int64(nClients) {
		myChunks = append(myChunks, c)
	}

	work := make(chan int64, len(myChunks))
	for _, c := range myChunks {
		work <- c
	}
	close(work)

	pieces := make(chan piece, cfg.Producers*2)
	errCh := make(chan error, cfg.Producers)
	var producers sync.WaitGroup
	for p := 0; p < cfg.Producers; p++ {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for c := range work {
				base := uint64(c) * ChunkSize
				limit := uint64(ChunkSize)
				if base+limit > fileSize {
					limit = fileSize - base
				}
				for off := uint64(0); off < limit; off += uint64(cfg.RequestSize) {
					n := uint64(cfg.RequestSize)
					if off+n > limit {
						n = limit - off
					}
					data, err := src.ReadAt(ctx, base+off, int(n))
					if err != nil {
						errCh <- err
						return
					}
					pieces <- piece{chunk: c, off: int(off), data: data}
				}
			}
		}()
	}
	go func() {
		producers.Wait()
		close(pieces)
	}()

	// Consumer: reassemble each chunk (records never straddle chunks,
	// but they may straddle request boundaries within a chunk, so
	// counting happens per fully-assembled chunk).
	counts := make([]uint32, cfg.Catalog)
	assembling := make(map[int64][]byte)
	got := make(map[int64]int)
	chunkLen := func(c int64) int {
		base := uint64(c) * ChunkSize
		if base+ChunkSize > fileSize {
			return int(fileSize - base)
		}
		return ChunkSize
	}
	for pc := range pieces {
		buf, ok := assembling[pc.chunk]
		if !ok {
			buf = make([]byte, chunkLen(pc.chunk))
			assembling[pc.chunk] = buf
		}
		copy(buf[pc.off:], pc.data)
		got[pc.chunk] += len(pc.data)
		if got[pc.chunk] >= len(buf) {
			CountItems(buf, counts)
			delete(assembling, pc.chunk)
			delete(got, pc.chunk)
		}
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if len(assembling) > 0 {
		return nil, fmt.Errorf("mining: %d chunks incomplete", len(assembling))
	}
	return counts, nil
}

// BufferSource adapts an in-memory byte slice to Source.
type BufferSource []byte

// ReadAt implements Source.
func (b BufferSource) ReadAt(_ context.Context, off uint64, n int) ([]byte, error) {
	if off >= uint64(len(b)) {
		return nil, nil
	}
	end := off + uint64(n)
	if end > uint64(len(b)) {
		end = uint64(len(b))
	}
	return b[off:end], nil
}
