package sim

import (
	"testing"
	"time"
)

func TestClockAdvances(t *testing.T) {
	e := NewEnv(1)
	var seen []time.Duration
	e.Go("a", func(p *Proc) {
		p.Wait(10 * time.Millisecond)
		seen = append(seen, p.Now())
		p.Wait(5 * time.Millisecond)
		seen = append(seen, p.Now())
	})
	end := e.Run()
	if end != 15*time.Millisecond {
		t.Fatalf("end time = %v, want 15ms", end)
	}
	if len(seen) != 2 || seen[0] != 10*time.Millisecond || seen[1] != 15*time.Millisecond {
		t.Fatalf("seen = %v", seen)
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEnv(42)
		var order []string
		for _, n := range []string{"a", "b", "c"} {
			n := n
			e.Go(n, func(p *Proc) {
				p.Wait(time.Millisecond) // all wake at the same instant
				order = append(order, n)
			})
		}
		e.Run()
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		got := run()
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("nondeterministic order: %v vs %v", got, first)
			}
		}
	}
	// Ties break in spawn order.
	want := []string{"a", "b", "c"}
	for i, n := range want {
		if first[i] != n {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
}

func TestGoAtPastPanics(t *testing.T) {
	e := NewEnv(1)
	e.Go("a", func(p *Proc) {
		p.Wait(time.Second)
		defer func() {
			if recover() == nil {
				t.Error("GoAt in the past did not panic")
			}
		}()
		e.GoAt(0, "late", func(*Proc) {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEnv(1)
	ticks := 0
	e.Go("ticker", func(p *Proc) {
		for {
			p.Wait(time.Second)
			ticks++
		}
	})
	end := e.RunUntil(4500 * time.Millisecond)
	if end != 4500*time.Millisecond {
		t.Fatalf("end = %v", end)
	}
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4", ticks)
	}
	// Continue running: the pending event must survive.
	end = e.RunUntil(6 * time.Second)
	if ticks != 6 {
		t.Fatalf("after resume ticks = %d, want 6", ticks)
	}
	if end != 6*time.Second {
		t.Fatalf("end = %v", end)
	}
}

func TestStop(t *testing.T) {
	e := NewEnv(1)
	n := 0
	e.Go("a", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(time.Millisecond)
			n++
			if n == 3 {
				e.Stop()
			}
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
}

func TestEventFireWakesAllWaiters(t *testing.T) {
	e := NewEnv(1)
	ev := e.NewEvent()
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			v := ev.Wait(p)
			if v.(int) != 7 {
				t.Errorf("value = %v", v)
			}
			woken++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Wait(time.Second)
		ev.Fire(7)
	})
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	e := NewEnv(1)
	ev := e.NewEvent()
	e.Go("a", func(p *Proc) {
		ev.Fire("x")
		if got := ev.Wait(p); got != "x" {
			t.Errorf("got %v", got)
		}
	})
	e.Run()
}

func TestEventDoubleFirePanics(t *testing.T) {
	e := NewEnv(1)
	e.Go("a", func(p *Proc) {
		ev := e.NewEvent()
		ev.Fire(nil)
		defer func() {
			if recover() == nil {
				t.Error("double fire did not panic")
			}
		}()
		ev.Fire(nil)
	})
	e.Run()
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("cpu", 1)
	var holds [][2]time.Duration
	for i := 0; i < 3; i++ {
		e.Go("u", func(p *Proc) {
			r.Acquire(p)
			start := p.Now()
			p.Wait(10 * time.Millisecond)
			holds = append(holds, [2]time.Duration{start, p.Now()})
			r.Release()
		})
	}
	e.Run()
	if len(holds) != 3 {
		t.Fatalf("holds = %v", holds)
	}
	for i := 1; i < len(holds); i++ {
		if holds[i][0] < holds[i-1][1] {
			t.Fatalf("overlapping holds: %v", holds)
		}
	}
	if got := holds[2][1]; got != 30*time.Millisecond {
		t.Fatalf("last release at %v, want 30ms", got)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("disk", 1)
	var order []int
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Wait(time.Second)
		r.Release()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.GoAt(time.Duration(i)*time.Millisecond, "w", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			r.Release()
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceCapacity(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("bus", 2)
	done := 0
	for i := 0; i < 4; i++ {
		e.Go("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			done++
		})
	}
	end := e.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if end != 20*time.Millisecond {
		t.Fatalf("end = %v, want 20ms (two batches of two)", end)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("cpu", 1)
	e.Go("u", func(p *Proc) {
		r.Use(p, 250*time.Millisecond)
		p.Wait(750 * time.Millisecond)
	})
	e.Run()
	if u := r.Utilization(); u < 0.249 || u > 0.251 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("x", 1)
	e.Go("a", func(p *Proc) {
		if !r.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if r.TryAcquire() {
			t.Error("second TryAcquire succeeded")
		}
		r.Release()
		if !r.TryAcquire() {
			t.Error("TryAcquire after release failed")
		}
		r.Release()
	})
	e.Run()
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	e := NewEnv(1)
	e.Go("a", func(p *Proc) {
		r := e.NewResource("x", 1)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		r.Release()
	})
	e.Run()
}

func TestQueueBlocksUntilPut(t *testing.T) {
	e := NewEnv(1)
	q := e.NewQueue()
	var got any
	var when time.Duration
	e.Go("consumer", func(p *Proc) {
		got = q.Get(p)
		when = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Wait(5 * time.Millisecond)
		q.Put("hello")
	})
	e.Run()
	if got != "hello" || when != 5*time.Millisecond {
		t.Fatalf("got %v at %v", got, when)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	e := NewEnv(1)
	q := e.NewQueue()
	var got []int
	e.Go("c", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	e.Go("p", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			q.Put(i)
			p.Wait(time.Millisecond)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEnv(1)
	var childTime time.Duration
	e.Go("parent", func(p *Proc) {
		p.Wait(time.Second)
		e.Go("child", func(c *Proc) {
			c.Wait(time.Second)
			childTime = c.Now()
		})
	})
	e.Run()
	if childTime != 2*time.Second {
		t.Fatalf("child finished at %v", childTime)
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEnv(1)
	ev1, ev2 := e.NewEvent(), e.NewEvent()
	var done time.Duration
	e.Go("waiter", func(p *Proc) {
		WaitAll(p, ev1, ev2)
		done = p.Now()
	})
	e.Go("f1", func(p *Proc) { p.Wait(time.Second); ev1.Fire(nil) })
	e.Go("f2", func(p *Proc) { p.Wait(3 * time.Second); ev2.Fire(nil) })
	e.Run()
	if done != 3*time.Second {
		t.Fatalf("done at %v", done)
	}
}

func TestTallyStats(t *testing.T) {
	var ta Tally
	for _, v := range []float64{1, 2, 3, 4} {
		ta.Add(v)
	}
	if ta.N() != 4 || ta.Sum() != 10 || ta.Mean() != 2.5 || ta.Min() != 1 || ta.Max() != 4 {
		t.Fatalf("tally stats wrong: %+v", ta)
	}
	if sd := ta.StdDev(); sd < 1.11 || sd > 1.12 {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.Add(1000)
	c.Add(1000)
	if c.Total() != 2000 {
		t.Fatalf("total = %d", c.Total())
	}
	if r := c.RatePerSec(2 * time.Second); r != 1000 {
		t.Fatalf("rate = %v", r)
	}
	if r := c.RatePerSec(0); r != 0 {
		t.Fatalf("rate at zero elapsed = %v", r)
	}
}

func TestEmptyTallySafe(t *testing.T) {
	var ta Tally
	if ta.Mean() != 0 || ta.StdDev() != 0 || ta.Min() != 0 || ta.Max() != 0 {
		t.Fatal("empty tally not zeroed")
	}
}

func TestNegativeWaitPanics(t *testing.T) {
	e := NewEnv(1)
	e.Go("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		p.Wait(-time.Second)
	})
	e.Run()
}
