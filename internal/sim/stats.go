package sim

import (
	"math"
	"time"
)

// Tally accumulates scalar observations (latencies, sizes) and reports
// summary statistics.
type Tally struct {
	n        int64
	sum      float64
	sumSq    float64
	min, max float64
}

// Add records one observation.
func (t *Tally) Add(v float64) {
	if t.n == 0 || v < t.min {
		t.min = v
	}
	if t.n == 0 || v > t.max {
		t.max = v
	}
	t.n++
	t.sum += v
	t.sumSq += v * v
}

// AddDuration records a duration observation in seconds.
func (t *Tally) AddDuration(d time.Duration) { t.Add(d.Seconds()) }

// N returns the number of observations.
func (t *Tally) N() int64 { return t.n }

// Sum returns the sum of observations.
func (t *Tally) Sum() float64 { return t.sum }

// Mean returns the arithmetic mean (0 when empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Min returns the smallest observation (0 when empty).
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation (0 when empty).
func (t *Tally) Max() float64 { return t.max }

// StdDev returns the population standard deviation (0 when empty).
func (t *Tally) StdDev() float64 {
	if t.n == 0 {
		return 0
	}
	m := t.Mean()
	v := t.sumSq/float64(t.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Counter is a monotonically growing count of bytes or operations with a
// rate helper.
type Counter struct {
	total int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.total += n }

// Total returns the accumulated count.
func (c *Counter) Total() int64 { return c.total }

// RatePerSec returns total divided by elapsed (0 when elapsed is 0).
func (c *Counter) RatePerSec(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.total) / elapsed.Seconds()
}
