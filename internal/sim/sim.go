// Package sim provides a deterministic discrete-event simulation kernel.
//
// Processes are ordinary functions running on goroutines, but the kernel
// guarantees that exactly one process executes at a time and that events
// fire in strict timestamp order (ties broken by scheduling sequence), so
// a simulation with a fixed seed is fully reproducible.
//
// The kernel is the substrate for the hardware models in internal/hw and
// for every experiment harness that regenerates a figure or table from
// the NASD paper: the paper's results are consequences of 1998 hardware
// balance (slow SCSI buses, OC-3 ATM, heavyweight RPC stacks), which we
// recreate in simulated time rather than on modern wall clocks.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, start processes with Go, then call Run.
type Env struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	current *Proc
	yield   chan struct{}
	rng     *rand.Rand
	procs   int
	stopped bool
}

// NewEnv returns a new simulation environment whose random source is
// seeded with seed. The clock starts at zero.
func NewEnv(seed int64) *Env {
	return &Env{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time.
func (e *Env) Now() time.Duration { return e.now }

// Rand returns the environment's deterministic random source. It must
// only be used from within running processes (or before Run), never from
// foreign goroutines.
func (e *Env) Rand() *rand.Rand { return e.rng }

type event struct {
	at   time.Duration
	seq  uint64
	proc *Proc
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); ev := old[n-1]; *q = old[:n-1]; return ev }
func (e *Env) schedule(p *Proc, at time.Duration) {
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, proc: p})
}

// Proc is a handle on a simulation process. A Proc is passed to the
// process function and must only be used by that function's goroutine.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Go starts fn as a new process at the current simulated time. It may be
// called before Run or from within a running process.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt starts fn as a new process at simulated time at (which must not be
// in the past).
func (e *Env) GoAt(at time.Duration, name string, fn func(*Proc)) *Proc {
	if at < e.now {
		panic(fmt.Sprintf("sim: GoAt(%v) in the past (now %v)", at, e.now))
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.procs++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.procs--
		e.yield <- struct{}{}
	}()
	e.schedule(p, at)
	return p
}

// Wait suspends the process for simulated duration d.
func (p *Proc) Wait(d time.Duration) {
	if d < 0 {
		panic("sim: negative Wait")
	}
	e := p.env
	e.schedule(p, e.now+d)
	p.park()
}

// park returns control to the scheduler and blocks until resumed.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// suspend blocks the process without scheduling a wakeup; something else
// (an Event fire or resource grant) must call e.schedule for it.
func (p *Proc) suspend() { p.park() }

// Run executes events until the queue is empty or Stop is called.
// It returns the final simulated time.
func (e *Env) Run() time.Duration { return e.RunUntil(-1) }

// RunUntil executes events with timestamps <= limit (no limit if
// negative) and returns the simulated time when it stops. Processes
// blocked forever (e.g. on an Event that never fires) do not keep the
// simulation alive.
func (e *Env) RunUntil(limit time.Duration) time.Duration {
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(event)
		if limit >= 0 && ev.at > limit {
			heap.Push(&e.queue, ev)
			e.now = limit
			return e.now
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.current = ev.proc
		ev.proc.resume <- struct{}{}
		<-e.yield
		e.current = nil
	}
	e.stopped = false
	return e.now
}

// Stop halts Run after the currently executing process yields. Call it
// from within a process.
func (e *Env) Stop() { e.stopped = true }

// Event is a one-shot synchronization point carrying an optional value.
// Any number of processes may Wait on it; Fire wakes them all at the
// current simulated time.
type Event struct {
	env     *Env
	fired   bool
	value   any
	waiters []*Proc
}

// NewEvent returns an unfired event bound to e.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Value returns the value passed to Fire (nil before firing).
func (ev *Event) Value() any { return ev.value }

// Fire marks the event fired with value v and schedules all waiters at
// the current simulated time. Firing twice panics.
func (ev *Event) Fire(v any) {
	if ev.fired {
		panic("sim: Event fired twice")
	}
	ev.fired = true
	ev.value = v
	for _, p := range ev.waiters {
		ev.env.schedule(p, ev.env.now)
	}
	ev.waiters = nil
}

// Wait blocks the process until the event fires and returns its value.
// If the event already fired it returns immediately.
func (ev *Event) Wait(p *Proc) any {
	if ev.fired {
		return ev.value
	}
	ev.waiters = append(ev.waiters, p)
	p.suspend()
	return ev.value
}

// WaitAll blocks until every event in evs has fired.
func WaitAll(p *Proc, evs ...*Event) {
	for _, ev := range evs {
		ev.Wait(p)
	}
}
