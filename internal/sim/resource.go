package sim

import "time"

// Resource is a FIFO server pool with fixed capacity. Processes Acquire a
// unit, hold it for some simulated time, and Release it. Utilization is
// tracked so experiments can report idle percentages (Figure 7 of the
// paper reports client and drive CPU idle).
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	busy      time.Duration // integral of inUse over time
	lastStamp time.Duration
}

// NewResource returns a resource with the given capacity (number of
// units that can be held simultaneously).
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: e, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) stamp() {
	now := r.env.now
	r.busy += time.Duration(r.inUse) * (now - r.lastStamp)
	r.lastStamp = now
}

// Acquire blocks until a unit is available and takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.suspend()
	// The releaser already stamped and incremented inUse on our behalf.
}

// TryAcquire takes a unit if one is immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit. If processes are waiting, the oldest waiter is
// granted the unit and scheduled at the current time.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire on " + r.name)
	}
	r.stamp()
	r.inUse--
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.stamp()
		r.inUse++
		r.env.schedule(p, r.env.now)
	}
}

// Use acquires a unit, holds it for d, and releases it.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Wait(d)
	r.Release()
}

// Utilization returns the mean fraction of capacity in use between time
// zero and now. It is 0 if no time has elapsed.
func (r *Resource) Utilization() float64 {
	r.stamp()
	now := r.env.now
	if now == 0 {
		return 0
	}
	return float64(r.busy) / (float64(now) * float64(r.capacity))
}

// BusyTime returns the cumulative busy time (summed over units).
func (r *Resource) BusyTime() time.Duration {
	r.stamp()
	return r.busy
}

// Queue is an unbounded FIFO of values with blocking receive, useful for
// modelling request queues between simulated components.
type Queue struct {
	env     *Env
	items   []any
	waiters []*Proc
}

// NewQueue returns an empty queue bound to e.
func (e *Env) NewQueue() *Queue { return &Queue{env: e} }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends v and wakes one waiting receiver, if any.
func (q *Queue) Put(v any) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.env.schedule(p, q.env.now)
	}
}

// Get removes and returns the oldest item, blocking while the queue is
// empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.suspend()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}
