package cheops

import (
	"math/rand"
	"strings"
	"testing"

	"nasd/internal/capability"
	"nasd/internal/telemetry"
)

// TestStripedReadTrace is the acceptance scenario for the tracing
// plane: one traced read of a striped object must produce a single
// trace that spans the cheops fan-out (one leg per drive) and, on every
// drive it touched, a drive-side span tree with the Table 1 phase
// children. The merged set must render as one timeline.
func TestStripedReadTrace(t *testing.T) {
	r := newRig(t, 4)
	id, err := r.mgr.Create(testCtx, Stripe0, 32<<10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256<<10) // two full stripes: every lane participates
	rand.New(rand.NewSource(9)).Read(data)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}

	ctx, root := r.spans.StartSpan(testCtx, "test.striped_read")
	if _, err := obj.ReadAt(ctx, 0, len(data)); err != nil {
		t.Fatal(err)
	}
	root.End()
	tid := root.Context().TraceID

	// Manager side: one cheops.read span fanning out to >= stripe-width legs.
	mine := r.spans.ByTrace(tid)
	var readSpan telemetry.SpanRecord
	legs := 0
	for _, s := range mine {
		switch s.Name {
		case "cheops.read":
			readSpan = s
		case "cheops.read.leg":
			legs++
		}
	}
	if readSpan.SpanID == 0 {
		t.Fatalf("no cheops.read span in trace %d: %+v", tid, mine)
	}
	if legs < 4 {
		t.Fatalf("trace has %d cheops.read.leg spans, want >= 4 (one per drive)", legs)
	}

	// Drive side: every drive holds a span tree for this trace — the
	// handler span plus its phase children — fetched both directly and
	// over the stats RPC.
	all := [][]telemetry.SpanRecord{mine, telemetry.ProcessSpans.ByTrace(tid)}
	for i, drv := range r.raw {
		ds := drv.Spans().ByTrace(tid)
		if len(ds) == 0 {
			t.Fatalf("drive %d recorded no spans for trace %d", i, tid)
		}
		// A 256 KB read over two stripes hits each drive more than once,
		// so group the phase children under their own handler span.
		handlers := map[uint64]telemetry.SpanRecord{}
		for _, s := range ds {
			if s.Name == "drive.read" {
				handlers[s.SpanID] = s
			}
		}
		if len(handlers) == 0 {
			t.Fatalf("drive %d has no drive.read span: %+v", i, ds)
		}
		phaseSum := map[uint64]int64{}
		for _, s := range ds {
			switch s.Name {
			case "digest", "object-system", "media":
				if _, ok := handlers[s.Parent]; !ok {
					t.Fatalf("drive %d phase %q parent %d is not a drive.read span", i, s.Name, s.Parent)
				}
				phaseSum[s.Parent] += int64(s.Dur())
			}
		}
		for id, h := range handlers {
			if sum := phaseSum[id]; sum <= 0 || sum > int64(h.Dur()) {
				t.Fatalf("drive %d span %d phase durations sum %d outside (0, %d]", i, id, sum, int64(h.Dur()))
			}
		}
		remote, err := r.drives[i].ServerSpans(testCtx, tid)
		if err != nil {
			t.Fatalf("drive %d ServerSpans: %v", i, err)
		}
		if len(remote) != len(ds) {
			t.Fatalf("drive %d stats RPC returned %d spans, direct read %d", i, len(remote), len(ds))
		}
		all = append(all, ds)
	}

	// The merged set renders as one hierarchical timeline.
	var sb strings.Builder
	telemetry.WriteTimeline(&sb, tid, telemetry.MergeSpans(all...))
	out := sb.String()
	for _, want := range []string{"test.striped_read", "cheops.read", "cheops.read.leg", "drive.read", "object-system"} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged timeline missing %q:\n%s", want, out)
		}
	}
}
