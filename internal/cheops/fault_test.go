package cheops

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// faultRig is the chaos variant of the test rig: every connection to
// drive i — the manager's and the data path's — runs through
// faults[i], and every client can re-dial through it, so one
// Down/Revive call models a whole drive crashing and returning.
type faultRig struct {
	mgr    *Manager
	drives []*client.Drive
	raw    []*drive.Drive
	faults []*rpc.Faults
	reg    *telemetry.Registry
}

func newFaultRig(t *testing.T, n int, mc ManagerConfig) *faultRig {
	t.Helper()
	r := &faultRig{reg: telemetry.NewRegistry()}
	policy := client.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, AttemptTimeout: 250 * time.Millisecond}
	var refs []DriveRef
	for i := 0; i < n; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 16384)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		r.raw = append(r.raw, drv)
		l := rpc.NewInProcListener(fmt.Sprintf("fd%d", i))
		srv := drv.Serve(l)
		t.Cleanup(srv.Close)
		f := rpc.NewFaults(int64(1 + i))
		r.faults = append(r.faults, f)
		dial := func() (rpc.Conn, error) { return f.Dial(l.Dial) }
		mk := func() *client.Drive {
			conn, err := dial()
			if err != nil {
				t.Fatal(err)
			}
			c := client.New(conn, uint64(1+i), clientSeq.Add(1)+500,
				client.WithMetrics(r.reg), client.WithRetry(policy), client.WithDialer(dial))
			t.Cleanup(func() { c.Close() })
			return c
		}
		refs = append(refs, DriveRef{Client: mk(), DriveID: uint64(1 + i), Master: master})
		r.drives = append(r.drives, mk())
	}
	mc.Drives = refs
	mc.Metrics = r.reg
	if mc.FailThreshold == 0 {
		mc.FailThreshold = 3
	}
	if mc.BreakerCooldown == 0 {
		mc.BreakerCooldown = 100 * time.Millisecond
	}
	if mc.LegTimeout == 0 {
		mc.LegTimeout = 2 * time.Second
	}
	mgr, err := NewManager(testCtx, mc, true)
	if err != nil {
		t.Fatal(err)
	}
	r.mgr = mgr
	return r
}

// TestChaosSeverReviveRepair is the acceptance scenario: one of four
// drives is crashed while striped traffic runs, every operation during
// the outage must complete with correct data via the degraded paths,
// and after revival the repair ledger drains, the breaker recloses,
// and full redundancy is restored.
func TestChaosSeverReviveRepair(t *testing.T) {
	const victim = 2
	// Threshold 1: with a single object, the victim's lane enters the
	// repair ledger on its first failed write and all later traffic
	// skips the lane, so the breaker sees few failures. A fleet of
	// objects (the nasdbench -chaos soak) trips the default threshold.
	r := newFaultRig(t, 4, ManagerConfig{FailThreshold: 1})
	id, err := r.mgr.Create(testCtx, RAID5, 16<<10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}

	model := make([]byte, 256<<10)
	rng := rand.New(rand.NewSource(11))
	rng.Read(model)
	if err := obj.WriteAt(testCtx, 0, model); err != nil {
		t.Fatal(err)
	}

	soak := func(rounds int) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			n := 1 + rng.Intn(48<<10)
			off := rng.Intn(len(model) - n + 1)
			chunk := make([]byte, n)
			rng.Read(chunk)
			if err := obj.WriteAt(testCtx, uint64(off), chunk); err != nil {
				t.Fatalf("round %d write [%d,%d): %v", i, off, off+n, err)
			}
			copy(model[off:], chunk)
			roff := rng.Intn(len(model) - n + 1)
			got, err := obj.ReadAt(testCtx, uint64(roff), n)
			if err != nil {
				t.Fatalf("round %d read [%d,%d): %v", i, roff, roff+n, err)
			}
			if !bytes.Equal(got, model[roff:roff+n]) {
				t.Fatalf("round %d read [%d,%d) does not match model", i, roff, roff+n)
			}
		}
	}

	soak(10) // healthy

	r.faults[victim].Down()
	soak(20) // every op must survive the outage on redundancy
	if st := r.mgr.DriveHealth(victim); st == BreakerClosed {
		t.Fatal("victim's breaker never opened during the outage")
	}
	if len(r.mgr.PendingRepairs()) == 0 {
		t.Fatal("no pending repairs recorded from degraded writes")
	}

	r.faults[victim].Revive()
	deadline := time.Now().Add(10 * time.Second)
	for len(r.mgr.PendingRepairs()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair ledger stuck: %+v", r.mgr.PendingRepairs())
		}
		r.mgr.RepairAll(testCtx)
		time.Sleep(10 * time.Millisecond)
	}
	if st := r.mgr.DriveHealth(victim); st != BreakerClosed {
		t.Fatalf("breaker %v after successful repair, want closed", st)
	}

	// The repair moved the victim's component to a fresh object; the
	// old handle keeps reading correctly (via reconstruction) but a
	// reopened handle serves all lanes directly.
	got, err := obj.ReadAt(testCtx, 0, len(model))
	if err != nil || !bytes.Equal(got, model) {
		t.Fatalf("stale handle read after repair: %v", err)
	}
	obj, err = OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	soak(10) // recovered

	got, err = obj.ReadAt(testCtx, 0, len(model))
	if err != nil || !bytes.Equal(got, model) {
		t.Fatalf("final verification failed: %v", err)
	}

	snap := r.reg.Snapshot()
	for _, c := range []string{"client.retries", "cheops.failovers", "cheops.degraded_writes", "cheops.degraded_reads", "cheops.breaker_opens"} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s did not advance; counters = %v", c, snap.Counters)
		}
	}
}

// TestChaosMirrorDegradedWrite covers the mirror path: with one
// replica's drive down, writes land on the surviving replicas, reads
// fall over to them, and repair restores the lost replica.
func TestChaosMirrorDegradedWrite(t *testing.T) {
	const victim = 1
	r := newFaultRig(t, 3, ManagerConfig{})
	id, err := r.mgr.Create(testCtx, Mirror1, 16<<10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("mirrored"), 4<<10)
	if err := obj.WriteAt(testCtx, 0, payload); err != nil {
		t.Fatal(err)
	}

	r.faults[victim].Down()
	update := bytes.Repeat([]byte("DEGRADED"), 2<<10)
	if err := obj.WriteAt(testCtx, 0, update); err != nil {
		t.Fatalf("degraded mirror write: %v", err)
	}
	copy(payload, update)
	got, err := obj.ReadAt(testCtx, 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("degraded mirror read: %v", err)
	}
	if len(r.mgr.PendingRepairs()) == 0 {
		t.Fatal("skipped replica not in the repair ledger")
	}

	r.faults[victim].Revive()
	deadline := time.Now().Add(10 * time.Second)
	for len(r.mgr.PendingRepairs()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair ledger stuck: %+v", r.mgr.PendingRepairs())
		}
		r.mgr.RepairAll(testCtx)
		time.Sleep(10 * time.Millisecond)
	}
	obj, err = OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	got, err = obj.ReadAt(testCtx, 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-repair mirror read: %v", err)
	}
}

// TestCreateRollsBackOnNetworkFault is the save-path rollback under a
// real network fault rather than a destroyed directory object: drive 0
// (which persists the manager's directory) crashes, a Create whose
// components live on other drives fails at the save step, and both the
// descriptor table and the component drives are left clean.
func TestCreateRollsBackOnNetworkFault(t *testing.T) {
	r := newFaultRig(t, 3, ManagerConfig{})
	r.faults[0].Down()
	if _, err := r.mgr.Create(testCtx, Mirror1, 32<<10, 2, 1); err == nil {
		t.Fatal("create succeeded with the directory drive down")
	}
	r.mgr.mu.Lock()
	n := len(r.mgr.objects)
	r.mgr.mu.Unlock()
	if n != 0 {
		t.Fatalf("descriptor table holds %d entries after failed create", n)
	}
	for di := 1; di <= 2; di++ {
		ids, err := r.raw[di].Store().List(r.mgr.Partition())
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 0 {
			t.Fatalf("drive %d still holds orphaned components %v", di, ids)
		}
	}
	// The manager itself must recover once the drive returns.
	r.faults[0].Revive()
	if _, err := r.mgr.Create(testCtx, Mirror1, 32<<10, 2, 1); err != nil {
		t.Fatalf("create after revive: %v", err)
	}
}

// TestReplaceComponentRollsBackOnNetworkFault crashes the directory
// drive mid-repair: the rebuilt replacement object must be cleaned off
// its drive and the descriptor must keep naming the old component.
func TestReplaceComponentRollsBackOnNetworkFault(t *testing.T) {
	r := newFaultRig(t, 4, ManagerConfig{})
	id, err := r.mgr.Create(testCtx, Mirror1, 32<<10, 2, 1) // components on drives 1 and 2
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.WriteAt(testCtx, 0, []byte("survives the fault")); err != nil {
		t.Fatal(err)
	}
	before, err := r.mgr.Stat(id)
	if err != nil {
		t.Fatal(err)
	}

	r.faults[0].Down()
	if err := r.mgr.ReplaceComponent(testCtx, id, 0, 3); err == nil {
		t.Fatal("replace succeeded with the directory drive down")
	}
	after, err := r.mgr.Stat(id)
	if err != nil {
		t.Fatal(err)
	}
	if after.Components[0] != before.Components[0] {
		t.Fatalf("component swap not rolled back: %+v -> %+v", before.Components[0], after.Components[0])
	}
	ids, err := r.raw[3].Store().List(r.mgr.Partition())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("drive 3 still holds replacement object %v", ids)
	}
}

// TestCapabilityRenewalMidHandle gives component capabilities a
// lifetime shorter than the handle's: the drive rejects the expired
// capability with the typed status, the object renews at the manager,
// and the caller never sees the expiry.
func TestCapabilityRenewalMidHandle(t *testing.T) {
	r := newFaultRig(t, 2, ManagerConfig{CapExpiry: 100 * time.Millisecond})
	id, err := r.mgr.Create(testCtx, Stripe0, 16<<10, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("renewable"), 1<<10)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}

	time.Sleep(150 * time.Millisecond) // outlive the capability set

	got, err := obj.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read across capability expiry: %v", err)
	}
	if got := r.reg.Snapshot().Counters["cheops.cap_renewals"]; got == 0 {
		t.Fatal("expiry was never renewed — the test did not exercise renewal")
	}
}
