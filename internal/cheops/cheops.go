package cheops

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/telemetry"
)

// Pattern selects the redundancy scheme of a logical object.
type Pattern uint8

// Supported layouts.
const (
	// Stripe0 is plain striping (RAID 0): maximum bandwidth, no
	// redundancy. The paper's Figure 9 experiments use this.
	Stripe0 Pattern = iota
	// Mirror1 replicates the object on every component (RAID 1).
	Mirror1
	// RAID5 rotates parity across components.
	RAID5
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Stripe0:
		return "stripe"
	case Mirror1:
		return "mirror"
	case RAID5:
		return "raid5"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// Component names one component object of a logical object.
type Component struct {
	Drive   int // index into the manager's drive table
	DriveID uint64
	Object  uint64
}

// Descriptor is the layout of one logical object.
type Descriptor struct {
	Logical    uint64
	Pattern    Pattern
	StripeUnit int64
	Components []Component
	Size       uint64
}

// Width returns the number of components.
func (d *Descriptor) Width() int { return len(d.Components) }

// DataWidth returns the number of data-bearing lanes per stripe.
func (d *Descriptor) DataWidth() int {
	switch d.Pattern {
	case RAID5:
		return len(d.Components) - 1
	case Mirror1:
		return 1
	default:
		return len(d.Components)
	}
}

// Errors.
var (
	ErrNoObject  = errors.New("cheops: no such logical object")
	ErrBadLayout = errors.New("cheops: invalid layout")
	ErrDegraded  = errors.New("cheops: too many failed components")
	ErrLockHeld  = errors.New("cheops: stripe lock held")
	// ErrStaleLayout means the manager changed a logical object's
	// component layout (a repair) after this handle opened; the caller
	// must re-open the object to get the new layout and capabilities.
	ErrStaleLayout = errors.New("cheops: layout changed; re-open the logical object")
)

// DriveRef is one drive under Cheops management.
type DriveRef struct {
	Client  *client.Drive
	DriveID uint64
	Master  crypt.Key
}

// Manager is the Cheops storage manager: it owns layout mappings and
// trades logical capabilities for component capability sets. It may be
// co-located with a file manager.
type Manager struct {
	mu      sync.Mutex
	drives  []DriveRef
	keys    []*crypt.Hierarchy
	part    uint16
	expiry  time.Duration
	clock   func() time.Time
	objects map[uint64]*Descriptor
	next    uint64
	dirObj  uint64 // directory object on drive 0 (persistence)
	locks   map[stripeKey]bool
	lockC   *sync.Cond
	tel     *cheopsTel
	spans   *telemetry.SpanLog

	health  []*breaker // per-drive circuit breakers, indexed like drives
	repairs map[repairKey]PendingRepair
	// degradedRead dedups degraded-read events per lane: the first
	// reconstruction-served read of a lane is an incident-worthy
	// transition, the thousands that follow are steady state the
	// cheops.degraded_reads counter already rates.
	degradedRead map[repairKey]bool
	legTimeout   time.Duration
}

type stripeKey struct {
	logical uint64
	stripe  int64
}

// ManagerConfig configures a Cheops manager.
type ManagerConfig struct {
	Drives []DriveRef
	// Partition on each drive used for component objects (created by
	// Format).
	Partition uint16
	// CapExpiry bounds component capability lifetime.
	CapExpiry time.Duration
	Clock     func() time.Time
	// Metrics is the registry the manager (and objects opened through
	// it) publish "cheops.*" telemetry into; nil gets a private one.
	Metrics *telemetry.Registry
	// Spans is where objects opened through this manager record their
	// fan-out spans; nil uses the process-wide telemetry.ProcessSpans,
	// which keeps cheops legs in the same log as the client spans they
	// parent.
	Spans *telemetry.SpanLog
	// Events, when non-nil, receives the manager's structured events
	// (breaker transitions, degraded operations, stale markings,
	// repairs) instead of the process-wide telemetry.Events ring.
	Events *telemetry.EventLog
	// FailThreshold is how many consecutive leg failures trip a drive's
	// circuit breaker (default 3).
	FailThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic
	// before admitting a half-open probe (default 1s).
	BreakerCooldown time.Duration
	// LegTimeout, when > 0, bounds each fan-out leg so a hung drive is
	// detected (and failed over) while the caller's overall deadline
	// still has room for reconstruction. 0 leaves legs unbounded.
	LegTimeout time.Duration
}

// NewManager builds a manager. With format true it creates its
// partition on every drive plus the directory object that persists
// layout mappings; with format false it mounts an existing Cheops
// deployment, recovering every logical object from the directory.
// Partition creation fans out to all drives concurrently.
func NewManager(ctx context.Context, cfg ManagerConfig, format bool) (*Manager, error) {
	if len(cfg.Drives) == 0 {
		return nil, errors.New("cheops: no drives")
	}
	if cfg.Partition == 0 {
		cfg.Partition = 2
	}
	if cfg.CapExpiry == 0 {
		cfg.CapExpiry = 10 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	m := &Manager{
		drives:       cfg.Drives,
		part:         cfg.Partition,
		expiry:       cfg.CapExpiry,
		clock:        cfg.Clock,
		objects:      make(map[uint64]*Descriptor),
		next:         1,
		locks:        make(map[stripeKey]bool),
		tel:          newCheopsTel(cfg.Metrics, cfg.Events),
		spans:        cfg.Spans,
		repairs:      make(map[repairKey]PendingRepair),
		degradedRead: make(map[repairKey]bool),
		legTimeout:   cfg.LegTimeout,
	}
	if m.spans == nil {
		m.spans = telemetry.ProcessSpans
	}
	m.lockC = sync.NewCond(&m.mu)
	for i := range cfg.Drives {
		m.health = append(m.health, newBreaker(i, cfg.FailThreshold, cfg.BreakerCooldown, m.clock, m.tel))
		i := i
		m.tel.reg.Func(fmt.Sprintf("cheops.drive.%d.breaker", i), func() int64 {
			return int64(m.health[i].State())
		})
	}
	m.tel.reg.Func("cheops.pending_repairs", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(len(m.repairs))
	})
	for _, d := range cfg.Drives {
		keys := crypt.NewHierarchy(d.Master)
		if err := keys.AddPartition(m.part); err != nil {
			return nil, err
		}
		m.keys = append(m.keys, keys)
	}
	if format {
		if err := eachDrive(len(m.drives), func(i int) error {
			d := m.drives[i]
			if err := d.Client.CreatePartition(ctx, crypt.KeyID{Type: crypt.MasterKey}, d.Master, m.part, 0); err != nil {
				return fmt.Errorf("cheops: partition on drive %d: %w", d.DriveID, err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if err := m.initDirectory(ctx); err != nil {
			return nil, err
		}
	} else {
		if err := m.loadDirectory(ctx); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// eachDrive runs fn(i) for i in [0, n) concurrently — the manager-side
// fan-out that keeps multi-drive control operations from paying one
// round trip per drive — and returns the first error.
func eachDrive(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Partition returns the partition Cheops uses on each drive.
func (m *Manager) Partition() uint16 { return m.part }

// Create allocates a logical object striped over width drives starting
// at drive index startDrive (round-robin placement across calls is the
// caller's choice). Component creation fans out to all target drives
// concurrently.
func (m *Manager) Create(ctx context.Context, pattern Pattern, stripeUnit int64, width int, startDrive int) (uint64, error) {
	if stripeUnit <= 0 || width < 1 || width > len(m.drives) {
		return 0, ErrBadLayout
	}
	if pattern == RAID5 && width < 3 {
		return 0, fmt.Errorf("%w: RAID5 needs >= 3 components", ErrBadLayout)
	}
	comps := make([]Component, width)
	if err := eachDrive(width, func(i int) error {
		di := (startDrive + i) % len(m.drives)
		cap := m.mintWildcard(di, capability.CreateObj)
		obj, err := m.drives[di].Client.Create(ctx, &cap, m.part)
		if err != nil {
			return fmt.Errorf("cheops: creating component on drive %d: %w", di, err)
		}
		comps[i] = Component{Drive: di, DriveID: m.drives[di].DriveID, Object: obj}
		return nil
	}); err != nil {
		return 0, err
	}
	m.mu.Lock()
	id := m.next
	m.next++
	m.objects[id] = &Descriptor{
		Logical: id, Pattern: pattern, StripeUnit: stripeUnit, Components: comps,
	}
	m.mu.Unlock()
	if err := m.save(ctx); err != nil {
		// Roll back: an unpersisted descriptor must not stay visible, or
		// a manager restart would silently lose an object the caller was
		// told exists. Component objects are removed best-effort; a
		// failure there only leaves unreferenced objects on the drives.
		m.mu.Lock()
		delete(m.objects, id)
		m.mu.Unlock()
		_ = eachDrive(width, func(i int) error {
			cap := m.mintWildcard(comps[i].Drive, capability.Remove)
			return m.drives[comps[i].Drive].Client.Remove(ctx, &cap, m.part, comps[i].Object)
		})
		return 0, err
	}
	return id, nil
}

// Open returns the descriptor and the set of component capabilities —
// the capability exchange of Section 5.2 ("this costs an additional
// control message but once equipped with these capabilities, clients
// again access storage objects directly").
func (m *Manager) Open(logical uint64, rights capability.Rights) (Descriptor, []capability.Capability, error) {
	m.mu.Lock()
	desc, ok := m.objects[logical]
	if !ok {
		m.mu.Unlock()
		return Descriptor{}, nil, ErrNoObject
	}
	d := *desc
	d.Components = append([]Component(nil), desc.Components...)
	m.mu.Unlock()

	caps := make([]capability.Capability, len(d.Components))
	for i, comp := range d.Components {
		kid, key, err := m.keys[comp.Drive].CurrentWorkingKey(m.part)
		if err != nil {
			return Descriptor{}, nil, err
		}
		pub := capability.Public{
			DriveID:   comp.DriveID,
			Partition: m.part,
			Object:    comp.Object,
			ObjVer:    1,
			Rights:    rights | capability.GetAttr,
			Expiry:    m.clock().Add(m.expiry).UnixNano(),
			Key:       kid,
		}
		caps[i] = capability.Mint(pub, key)
	}
	return d, caps, nil
}

// Remove deletes a logical object and its components, issuing the
// per-drive removals concurrently.
func (m *Manager) Remove(ctx context.Context, logical uint64) error {
	m.mu.Lock()
	desc, ok := m.objects[logical]
	if !ok {
		m.mu.Unlock()
		return ErrNoObject
	}
	delete(m.objects, logical)
	m.mu.Unlock()
	if err := m.save(ctx); err != nil {
		// Roll back: the persisted table still names the object, so keep
		// the in-memory descriptor (and the components) consistent with
		// it rather than destroying components the table references.
		m.mu.Lock()
		m.objects[logical] = desc
		m.mu.Unlock()
		return err
	}
	return eachDrive(len(desc.Components), func(i int) error {
		comp := desc.Components[i]
		cap := m.mintWildcard(comp.Drive, capability.Remove)
		return m.drives[comp.Drive].Client.Remove(ctx, &cap, m.part, comp.Object)
	})
}

// UpdateSize records a logical object's new size (a control message
// clients send after extending writes).
func (m *Manager) UpdateSize(ctx context.Context, logical uint64, size uint64) error {
	m.mu.Lock()
	desc, ok := m.objects[logical]
	if !ok {
		m.mu.Unlock()
		return ErrNoObject
	}
	changed := size > desc.Size
	if changed {
		desc.Size = size
	}
	m.mu.Unlock()
	if changed {
		return m.save(ctx)
	}
	return nil
}

// Stat returns the descriptor.
func (m *Manager) Stat(logical uint64) (Descriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	desc, ok := m.objects[logical]
	if !ok {
		return Descriptor{}, ErrNoObject
	}
	d := *desc
	d.Components = append([]Component(nil), desc.Components...)
	return d, nil
}

// LockStripe serializes read-modify-write parity updates on one stripe
// (the manager "supports concurrency control for multi-disk accesses").
// It blocks until the lock is granted.
func (m *Manager) LockStripe(logical uint64, stripe int64) {
	k := stripeKey{logical, stripe}
	m.mu.Lock()
	for m.locks[k] {
		m.lockC.Wait()
	}
	m.locks[k] = true
	m.mu.Unlock()
}

// UnlockStripe releases a stripe lock.
func (m *Manager) UnlockStripe(logical uint64, stripe int64) {
	k := stripeKey{logical, stripe}
	m.mu.Lock()
	delete(m.locks, k)
	m.lockC.Broadcast()
	m.mu.Unlock()
}

// mintWildcard issues a partition-scope capability for manager-internal
// operations on a drive.
func (m *Manager) mintWildcard(driveIdx int, rights capability.Rights) capability.Capability {
	kid, key, err := m.keys[driveIdx].CurrentWorkingKey(m.part)
	if err != nil {
		panic("cheops: no partition key: " + err.Error())
	}
	pub := capability.Public{
		DriveID:   m.drives[driveIdx].DriveID,
		Partition: m.part,
		Rights:    rights,
		Expiry:    m.clock().Add(m.expiry).UnixNano(),
		Key:       kid,
	}
	return capability.Mint(pub, key)
}

// ReplaceComponent swaps a failed component for a fresh object on
// another drive and reconstructs its contents from the survivors
// (mirror copy or RAID5 xor). The logical object must be redundant.
// Survivor reads within each reconstruction chunk fan out to all
// drives concurrently.
func (m *Manager) ReplaceComponent(ctx context.Context, logical uint64, failedIdx int, newDrive int) error {
	m.mu.Lock()
	desc, ok := m.objects[logical]
	if !ok {
		m.mu.Unlock()
		return ErrNoObject
	}
	d := *desc
	d.Components = append([]Component(nil), desc.Components...)
	m.mu.Unlock()
	if failedIdx < 0 || failedIdx >= len(d.Components) {
		return ErrBadLayout
	}
	if d.Pattern == Stripe0 {
		return fmt.Errorf("%w: stripe0 has no redundancy", ErrDegraded)
	}
	m.tel.reconstructions.Inc()

	// Create the replacement object.
	cc := m.mintWildcard(newDrive, capability.CreateObj)
	newObj, err := m.drives[newDrive].Client.Create(ctx, &cc, m.part)
	if err != nil {
		return err
	}
	repl := Component{Drive: newDrive, DriveID: m.drives[newDrive].DriveID, Object: newObj}

	// Reconstruct contents component-offset by component-offset.
	length, err := m.componentLength(&d, failedIdx)
	if err != nil {
		return err
	}
	const chunk = 1 << 16
	wc := m.mintWildcard(newDrive, capability.Write)
	for off := uint64(0); off < length; off += chunk {
		n := int(length - off)
		if n > chunk {
			n = chunk
		}
		var data []byte
		switch d.Pattern {
		case Mirror1:
			// Source from a clean replica: a suspect mirror holds
			// stale data a degraded write skipped.
			src := -1
			for i := range d.Components {
				if i != failedIdx && !m.componentSuspect(logical, i) {
					src = i
					break
				}
			}
			if src < 0 {
				return fmt.Errorf("%w: no clean mirror to rebuild from", ErrDegraded)
			}
			rc := m.mintWildcard(d.Components[src].Drive, capability.Read)
			data, err = m.drives[d.Components[src].Drive].Client.ReadPipelined(ctx, &rc, m.part, d.Components[src].Object, off, n)
			if err != nil {
				return err
			}
		case RAID5:
			acc := make([]byte, n)
			parts := make([][]byte, len(d.Components))
			if err := eachDrive(len(d.Components), func(i int) error {
				if i == failedIdx {
					return nil
				}
				if m.componentSuspect(logical, i) {
					// Two stale lanes cannot be disentangled by xor.
					return fmt.Errorf("%w: survivor %d also awaits repair", ErrDegraded, i)
				}
				comp := d.Components[i]
				rc := m.mintWildcard(comp.Drive, capability.Read)
				p, err := m.drives[comp.Drive].Client.Read(ctx, &rc, m.part, comp.Object, off, n)
				if err != nil {
					return err
				}
				parts[i] = p
				return nil
			}); err != nil {
				return err
			}
			for _, p := range parts {
				for j := range p {
					acc[j] ^= p[j]
				}
			}
			data = acc
		}
		if len(data) == 0 {
			break
		}
		if err := m.drives[newDrive].Client.WritePipelined(ctx, &wc, m.part, newObj, off, data); err != nil {
			return err
		}
	}

	m.mu.Lock()
	desc, ok = m.objects[logical]
	if !ok {
		m.mu.Unlock()
		return ErrNoObject
	}
	prev := desc.Components[failedIdx]
	desc.Components[failedIdx] = repl
	m.mu.Unlock()
	if err := m.save(ctx); err != nil {
		// Roll back the swap: the persisted table still points at the
		// old component, so the in-memory descriptor must too. The
		// reconstructed replacement is removed best-effort.
		m.mu.Lock()
		if desc, ok := m.objects[logical]; ok {
			desc.Components[failedIdx] = prev
		}
		m.mu.Unlock()
		rc := m.mintWildcard(newDrive, capability.Remove)
		_ = m.drives[newDrive].Client.Remove(ctx, &rc, m.part, newObj)
		return err
	}
	// The lane is fully redundant again: reads may go direct.
	m.clearRepair(logical, failedIdx)
	m.tel.events.Emitf(telemetry.SevInfo, "cheops", "repair",
		"logical=%d comp=%d rebuilt on drive %d", logical, failedIdx, newDrive)
	return nil
}

// componentLength computes how many bytes component idx must hold given
// the logical size.
func (m *Manager) componentLength(d *Descriptor, idx int) (uint64, error) {
	switch d.Pattern {
	case Mirror1:
		return d.Size, nil
	case RAID5, Stripe0:
		// Upper bound: ceil(size / dataWidth) rounded up to a stripe unit.
		dw := uint64(d.DataWidth())
		if dw == 0 {
			return 0, ErrBadLayout
		}
		perLane := (d.Size + dw - 1) / dw
		unit := uint64(d.StripeUnit)
		return (perLane + unit - 1) / unit * unit, nil
	}
	return 0, ErrBadLayout
}
