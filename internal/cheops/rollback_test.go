package cheops

import (
	"testing"

	"nasd/internal/capability"
)

// breakSave makes every subsequent m.save fail by destroying the
// directory object on drive 0 behind the manager's back.
func breakSave(t *testing.T, r *rig) {
	t.Helper()
	if err := r.raw[0].Store().Remove(r.mgr.Partition(), r.mgr.dirObj); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) objectsOnDrive(t *testing.T, di int) []uint64 {
	t.Helper()
	ids, err := r.raw[di].Store().List(r.mgr.Partition())
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestCreateRollsBackOnSaveFailure(t *testing.T) {
	r := newRig(t, 3)
	breakSave(t, r)
	if _, err := r.mgr.Create(testCtx, Mirror1, 32<<10, 2, 1); err == nil {
		t.Fatal("create succeeded despite save failure")
	}
	// The manager must not keep a descriptor it could not persist — a
	// restart would lose an object the caller was told exists.
	r.mgr.mu.Lock()
	n := len(r.mgr.objects)
	r.mgr.mu.Unlock()
	if n != 0 {
		t.Fatalf("descriptor table holds %d entries after failed create", n)
	}
	// Component objects were cleaned back off the drives (1 and 2 held
	// them; drive 0 only ever held the now-destroyed directory).
	for di := 1; di <= 2; di++ {
		if ids := r.objectsOnDrive(t, di); len(ids) != 0 {
			t.Fatalf("drive %d still holds orphaned components %v", di, ids)
		}
	}
}

func TestRemoveRollsBackOnSaveFailure(t *testing.T) {
	r := newRig(t, 3)
	id, err := r.mgr.Create(testCtx, Mirror1, 32<<10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	breakSave(t, r)
	if err := r.mgr.Remove(testCtx, id); err == nil {
		t.Fatal("remove succeeded despite save failure")
	}
	// The persisted table still names the object, so the in-memory view
	// must too — and the components must not have been destroyed.
	if _, err := r.mgr.Stat(id); err != nil {
		t.Fatalf("descriptor gone after failed remove: %v", err)
	}
	for di := 1; di <= 2; di++ {
		if ids := r.objectsOnDrive(t, di); len(ids) != 1 {
			t.Fatalf("drive %d components = %v after failed remove", di, ids)
		}
	}
}

func TestReplaceComponentRollsBackOnSaveFailure(t *testing.T) {
	r := newRig(t, 3)
	id, err := r.mgr.Create(testCtx, Mirror1, 32<<10, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.WriteAt(testCtx, 0, []byte("replaceable payload")); err != nil {
		t.Fatal(err)
	}
	before, err := r.mgr.Stat(id)
	if err != nil {
		t.Fatal(err)
	}
	breakSave(t, r)
	if err := r.mgr.ReplaceComponent(testCtx, id, 0, 2); err == nil {
		t.Fatal("replace succeeded despite save failure")
	}
	after, err := r.mgr.Stat(id)
	if err != nil {
		t.Fatal(err)
	}
	if after.Components[0] != before.Components[0] {
		t.Fatalf("component swap not rolled back: %+v -> %+v",
			before.Components[0], after.Components[0])
	}
	// The reconstructed replacement object was cleaned off drive 2.
	if ids := r.objectsOnDrive(t, 2); len(ids) != 0 {
		t.Fatalf("drive 2 still holds replacement object %v", ids)
	}
}
