package cheops

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/telemetry"
)

// maxBackpressureWaits bounds how many hinted waits one leg absorbs
// before the overload is surfaced to the caller. Each wait is the
// drive's own retry-after estimate, so a handful of rounds rides out a
// burst; a drive still shedding after that is saturated, and the
// caller's deadline — not more pacing — should decide what happens.
const maxBackpressureWaits = 8

// pacedLeg runs one fan-out leg with backpressure pacing: when the
// drive sheds the request (client.ErrOverloaded, i.e. StatusRetryLater
// — demonstrably never executed), the leg waits the drive's
// retry-after hint and reissues, slowing this stripe lane instead of
// erroring it. Any other outcome returns immediately. The wait is
// scoped to the caller's ctx, so deadlines cut pacing short.
func (o *Object) pacedLeg(ctx context.Context, attempt func() error) error {
	for waits := 0; ; waits++ {
		err := attempt()
		if err == nil || !errors.Is(err, client.ErrOverloaded) ||
			waits >= maxBackpressureWaits || ctx.Err() != nil {
			return err
		}
		wait := 5 * time.Millisecond
		var re *client.RemoteError
		if errors.As(err, &re) && re.RetryAfter > 0 {
			wait = re.RetryAfter
		}
		o.mgr.tel.backpressureWaits.Inc()
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}

// Object is a client-side handle on an open Cheops logical object: the
// descriptor plus the component capability set. All data movement
// happens here, on the client, drive-direct. The handle is
// self-healing in two ways: expired capabilities are renewed from the
// manager transparently, and legs that fail (or are refused by a
// drive's breaker) fall over to the layout's redundancy mid-operation.
type Object struct {
	mgr    *Manager
	drives []*client.Drive // indexed like the manager's drive table
	desc   Descriptor
	rights capability.Rights
	capMu  sync.RWMutex
	caps   []capability.Capability
}

// OpenObject opens a logical object for I/O. drives must be the
// caller's own connections, indexed like the manager's drive table.
func OpenObject(mgr *Manager, drives []*client.Drive, logical uint64, rights capability.Rights) (*Object, error) {
	desc, caps, err := mgr.Open(logical, rights)
	if err != nil {
		return nil, err
	}
	return &Object{mgr: mgr, drives: drives, desc: desc, rights: rights, caps: caps}, nil
}

// cap returns a copy of component i's capability.
func (o *Object) cap(i int) capability.Capability {
	o.capMu.RLock()
	defer o.capMu.RUnlock()
	return o.caps[i]
}

// renewCaps trades the manager a fresh capability set for this object.
// If the layout changed since the handle opened (a repair moved a
// component), the new capabilities would name objects this handle does
// not address, so the caller gets ErrStaleLayout and must re-open.
func (o *Object) renewCaps() error {
	desc, caps, err := o.mgr.Open(o.desc.Logical, o.rights)
	if err != nil {
		return err
	}
	for i, c := range desc.Components {
		if o.desc.Components[i] != c {
			return ErrStaleLayout
		}
	}
	o.capMu.Lock()
	o.caps = caps
	o.capMu.Unlock()
	o.mgr.tel.capRenewals.Inc()
	return nil
}

// withCap runs fn under component i's capability, renewing the set
// once when the drive reports expiry (capabilities are minted with a
// bounded lifetime; a long-lived handle outlives them by design).
func (o *Object) withCap(i int, fn func(cp *capability.Capability) error) error {
	cp := o.cap(i)
	err := fn(&cp)
	if err != nil && errors.Is(err, client.ErrCapabilityExpired) {
		if rerr := o.renewCaps(); rerr != nil {
			return rerr
		}
		cp = o.cap(i)
		err = fn(&cp)
	}
	return err
}

// readDirect reads one component byte range on its own drive.
func (o *Object) readDirect(ctx context.Context, comp int, off uint64, n int) ([]byte, error) {
	c := o.desc.Components[comp]
	var data []byte
	err := o.withCap(comp, func(cp *capability.Capability) error {
		var e error
		data, e = o.drives[c.Drive].ReadPipelined(ctx, cp, o.mgr.part, c.Object, off, n)
		return e
	})
	return data, err
}

// writeLeg writes one component range, honoring the lane's health
// state: a lane awaiting repair (or a stale handle's repaired lane) is
// refused locally, a drive with an open breaker is refused without
// traffic, and the outcome of a real attempt feeds the breaker.
func (o *Object) writeLeg(ctx context.Context, comp int, off uint64, data []byte) error {
	c := o.desc.Components[comp]
	if o.mgr.laneUnserviceable(o.desc.Logical, comp, c.Object) {
		return errPendingRepair
	}
	if !o.mgr.allowDrive(c.Drive) {
		return errBreakerOpen
	}
	// Each paced attempt gets a fresh per-leg timeout: the hinted waits
	// between attempts run on the caller's budget, not the leg's.
	err := o.pacedLeg(ctx, func() error {
		lctx, cancel := o.mgr.legCtx(ctx)
		defer cancel()
		aerr := o.withCap(comp, func(cp *capability.Capability) error {
			return o.drives[c.Drive].WritePipelined(lctx, cp, o.mgr.part, c.Object, off, data)
		})
		o.mgr.reportDrive(c.Drive, aerr)
		return aerr
	})
	return err
}

// Desc returns the layout descriptor.
func (o *Object) Desc() Descriptor { return o.desc }

// Size returns the logical size known to the manager at open time.
func (o *Object) Size() uint64 { return o.desc.Size }

// locate maps a logical byte offset to (component index, component
// offset, bytes until the lane changes, stripe number).
func (o *Object) locate(off int64) (comp int, compOff int64, runLen int64, stripe int64) {
	unit := o.desc.StripeUnit
	switch o.desc.Pattern {
	case Mirror1:
		return 0, off, 1 << 62, 0
	case Stripe0:
		u := off / unit
		within := off % unit
		w := int64(o.desc.Width())
		comp = int(u % w)
		compOff = (u/w)*unit + within
		return comp, compOff, unit - within, u / w
	case RAID5:
		dw := int64(o.desc.DataWidth())
		u := off / unit
		within := off % unit
		stripe = u / dw
		lane := u % dw
		parity := o.parityIndex(stripe)
		comp = int(lane)
		if comp >= parity {
			comp++
		}
		compOff = stripe*unit + within
		return comp, compOff, unit - within, stripe
	}
	panic("cheops: unknown pattern")
}

// parityIndex returns the component holding parity for a stripe
// (rotating right-asymmetric layout).
func (o *Object) parityIndex(stripe int64) int {
	return int(stripe % int64(o.desc.Width()))
}

type ioResult struct {
	err error
}

// ReadAt reads n bytes at logical offset off, fanning the per-lane
// spans out to all component drives concurrently (each span is itself
// pipelined when large). For redundant layouts it reconstructs around a
// single failed component (degraded read).
func (o *Object) ReadAt(ctx context.Context, off uint64, n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]byte, n)
	type span struct {
		comp    int
		compOff int64
		outOff  int
		n       int
		stripe  int64
	}
	var spans []span
	for done := 0; done < n; {
		comp, compOff, run, stripe := o.locate(int64(off) + int64(done))
		chunk := n - done
		if int64(chunk) > run {
			chunk = int(run)
		}
		spans = append(spans, span{comp, compOff, done, chunk, stripe})
		done += chunk
	}
	o.mgr.tel.readFanout.Observe(int64(len(spans)))
	ctx, rsp := o.mgr.spans.StartSpan(ctx, "cheops.read")
	rsp.Annotate("fanout", strconv.Itoa(len(spans)))
	rsp.Annotate("bytes", strconv.Itoa(n))
	defer rsp.End()
	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			// One child span per fan-out leg: parallel legs render as
			// overlapping bars, making the stripe's straggler visible.
			lctx, lsp := o.mgr.spans.StartSpan(ctx, "cheops.read.leg")
			lsp.Annotate("drive", strconv.Itoa(o.desc.Components[sp.comp].Drive))
			lsp.Annotate("off", strconv.FormatInt(sp.compOff, 10))
			lsp.Annotate("len", strconv.Itoa(sp.n))
			defer lsp.End()
			data, err := o.readComponent(lctx, sp.comp, uint64(sp.compOff), sp.n, sp.stripe)
			if err != nil {
				lsp.Annotate("error", err.Error())
				errs[i] = err
				return
			}
			copy(out[sp.outOff:sp.outOff+sp.n], data)
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readComponent reads from one component, falling back to
// reconstruction when the component fails and the layout is redundant.
// The fall-over happens mid-operation: a lane that times out, errors,
// is refused by its drive's breaker, or holds stale data (awaiting
// repair) is served from the surviving redundancy without failing the
// caller's read.
func (o *Object) readComponent(ctx context.Context, comp int, off uint64, n int, stripe int64) ([]byte, error) {
	c := o.desc.Components[comp]
	var err error
	switch {
	case o.mgr.laneUnserviceable(o.desc.Logical, comp, c.Object):
		// A degraded write skipped this lane (or the manager already
		// rebuilt it elsewhere): its contents are stale even if the
		// drive answers, so the read must come from reconstruction.
		err = errPendingRepair
	case !o.mgr.allowDrive(c.Drive):
		err = errBreakerOpen
	default:
		var data []byte
		err = o.pacedLeg(ctx, func() error {
			lctx, cancel := o.mgr.legCtx(ctx)
			defer cancel()
			var aerr error
			data, aerr = o.readDirect(lctx, comp, off, n)
			o.mgr.reportDrive(c.Drive, aerr)
			return aerr
		})
		if err == nil {
			return pad(data, n), nil
		}
	}
	if errors.Is(err, client.ErrOverloaded) {
		// Backpressure outlasting the pacing loop is saturation, not
		// component failure: the data on the lane is intact and the
		// drive is alive. Reconstructing around it would fan a single
		// overloaded drive's load out to its healthy stripe-mates —
		// overload begets more traffic — so surface the retryable
		// error instead of going degraded.
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, err // don't mask a canceled read as a drive failure
	}
	if o.desc.Pattern == Mirror1 || o.desc.Pattern == RAID5 {
		o.mgr.tel.degradedReads.Inc()
		o.mgr.tel.failovers.Inc()
		if o.mgr.noteDegradedRead(o.desc.Logical, comp) {
			o.mgr.tel.events.Emitf(telemetry.SevWarn, "cheops", "degraded_read",
				"logical=%d comp=%d now served by reconstruction: %v", o.desc.Logical, comp, err)
		}
		var dsp *telemetry.Span
		ctx, dsp = o.mgr.spans.StartSpan(ctx, "cheops.degraded_read")
		dsp.Annotate("failed_comp", strconv.Itoa(comp))
		dsp.Annotate("cause", err.Error())
		defer dsp.End()
	}
	switch o.desc.Pattern {
	case Mirror1:
		for alt := range o.desc.Components {
			if alt == comp {
				continue
			}
			ac := o.desc.Components[alt]
			if o.mgr.laneUnserviceable(o.desc.Logical, alt, ac.Object) || !o.mgr.allowDrive(ac.Drive) {
				continue
			}
			data, aerr := o.readDirect(ctx, alt, off, n)
			o.mgr.reportDrive(ac.Drive, aerr)
			if aerr == nil {
				return pad(data, n), nil
			}
		}
		return nil, fmt.Errorf("%w: all mirrors failed: %v", ErrDegraded, err)
	case RAID5:
		// Reconstruct: xor of every other component at the same offsets,
		// reading all survivors in parallel. Survivors bypass the
		// breaker — reconstruction is the last resort, so the drives
		// are tried even when suspect — but a stale lane is a hard
		// stop: xor cannot disentangle two inconsistent lanes.
		parts := make([][]byte, len(o.desc.Components))
		if rerr := eachDrive(len(o.desc.Components), func(i int) error {
			if i == comp {
				return nil
			}
			ci := o.desc.Components[i]
			if o.mgr.laneUnserviceable(o.desc.Logical, i, ci.Object) {
				return fmt.Errorf("%w: survivor %d also awaits repair", ErrDegraded, i)
			}
			p, e := o.readDirect(ctx, i, off, n)
			o.mgr.reportDrive(ci.Drive, e)
			if e != nil {
				return e
			}
			parts[i] = pad(p, n)
			return nil
		}); rerr != nil {
			return nil, fmt.Errorf("%w: second failure during reconstruction: %v (first: %v)", ErrDegraded, rerr, err)
		}
		acc := make([]byte, n)
		for _, p := range parts {
			for j := range p {
				acc[j] ^= p[j]
			}
		}
		return acc, nil
	default:
		return nil, err
	}
}

func pad(b []byte, n int) []byte {
	if len(b) >= n {
		return b[:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// WriteAt writes data at logical offset off and reports the new size to
// the manager. Per-lane spans go to all component drives concurrently.
func (o *Object) WriteAt(ctx context.Context, off uint64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	ctx, wsp := o.mgr.spans.StartSpan(ctx, "cheops.write")
	wsp.Annotate("bytes", strconv.Itoa(len(data)))
	defer wsp.End()
	var err error
	switch o.desc.Pattern {
	case Mirror1:
		err = o.writeMirror(ctx, off, data)
	case Stripe0:
		err = o.writeStripe0(ctx, off, data)
	case RAID5:
		err = o.writeRAID5(ctx, off, data)
	default:
		err = ErrBadLayout
	}
	if err != nil {
		return err
	}
	end := off + uint64(len(data))
	if end > o.desc.Size {
		o.desc.Size = end
		return o.mgr.UpdateSize(ctx, o.desc.Logical, end)
	}
	return nil
}

// writeMirror writes all replicas in parallel. A replica that fails
// (or is refused by its breaker) degrades the write rather than
// failing it: the data is durable on the surviving replicas and the
// skipped one enters the repair ledger so ReplaceComponent can rebuild
// it later.
func (o *Object) writeMirror(ctx context.Context, off uint64, data []byte) error {
	o.mgr.tel.writeFanout.Observe(int64(len(o.desc.Components)))
	var wg sync.WaitGroup
	errs := make([]error, len(o.desc.Components))
	for i, c := range o.desc.Components {
		wg.Add(1)
		go func(i int, c Component) {
			defer wg.Done()
			lctx, lsp := o.mgr.spans.StartSpan(ctx, "cheops.write.leg")
			lsp.Annotate("drive", strconv.Itoa(c.Drive))
			defer lsp.End()
			errs[i] = o.writeLeg(lctx, i, off, data)
			if errs[i] != nil {
				lsp.Annotate("error", errs[i].Error())
			}
		}(i, c)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err // the caller's cancellation, not drive failures
	}
	ok := 0
	var firstErr error
	allOverload := true
	for _, e := range errs {
		if e == nil {
			ok++
			allOverload = false
		} else {
			if firstErr == nil {
				firstErr = e
			}
			if !errors.Is(e, client.ErrOverloaded) {
				allOverload = false
			}
		}
	}
	if ok == 0 {
		if allOverload {
			// Every replica shed after pacing: nothing was written, the
			// mirrors are still mutually consistent, and the rejection
			// is typed retryable. Surfacing it (instead of ErrDegraded)
			// keeps shed traffic out of the repair ledger entirely.
			return firstErr
		}
		return fmt.Errorf("%w: every mirror write failed: %v", ErrDegraded, firstErr)
	}
	for i, e := range errs {
		if e != nil {
			// A lane skipped while its siblings committed is stale no
			// matter why it was skipped — even residual overload after
			// the pacing loop must enter the ledger, or the replica
			// would serve old bytes later. The breaker still never sees
			// it (reportDrive classified the reply as alive).
			o.mgr.noteDegradedWrite(o.desc.Logical, i, e)
		}
	}
	return nil
}

func (o *Object) writeStripe0(ctx context.Context, off uint64, data []byte) error {
	type span struct {
		comp    int
		compOff int64
		start   int
		n       int
	}
	var spans []span
	for done := 0; done < len(data); {
		comp, compOff, run, _ := o.locate(int64(off) + int64(done))
		chunk := len(data) - done
		if int64(chunk) > run {
			chunk = int(run)
		}
		spans = append(spans, span{comp, compOff, done, chunk})
		done += chunk
	}
	o.mgr.tel.writeFanout.Observe(int64(len(spans)))
	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			c := o.desc.Components[sp.comp]
			lctx, lsp := o.mgr.spans.StartSpan(ctx, "cheops.write.leg")
			lsp.Annotate("drive", strconv.Itoa(c.Drive))
			lsp.Annotate("off", strconv.FormatInt(sp.compOff, 10))
			lsp.Annotate("len", strconv.Itoa(sp.n))
			defer lsp.End()
			// Stripe0 has no redundancy to degrade into: a failed leg
			// fails the write, but still feeds the drive's breaker.
			errs[i] = o.writeLeg(lctx, sp.comp, uint64(sp.compOff), data[sp.start:sp.start+sp.n])
		}(i, sp)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// writeRAID5 performs parity-consistent writes one stripe unit at a
// time using read-modify-write (small-write) updates, serialized per
// stripe through the manager's lock service.
func (o *Object) writeRAID5(ctx context.Context, off uint64, data []byte) error {
	for done := 0; done < len(data); {
		comp, compOff, run, stripe := o.locate(int64(off) + int64(done))
		chunk := len(data) - done
		if int64(chunk) > run {
			chunk = int(run)
		}
		if err := o.rmwRAID5(ctx, comp, uint64(compOff), stripe, data[done:done+chunk]); err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

func (o *Object) rmwRAID5(ctx context.Context, comp int, compOff uint64, stripe int64, chunk []byte) error {
	o.mgr.tel.rmwWrites.Inc()
	ctx, rsp := o.mgr.spans.StartSpan(ctx, "cheops.rmw")
	rsp.Annotate("stripe", strconv.FormatInt(stripe, 10))
	defer rsp.End()
	o.mgr.LockStripe(o.desc.Logical, stripe)
	defer o.mgr.UnlockStripe(o.desc.Logical, stripe)

	parity := o.parityIndex(stripe)
	n := len(chunk)

	// Read old data and old parity in parallel (missing regions read as
	// zeros) — the two drives seek concurrently, halving the small-write
	// pre-read latency. The pre-reads go through readComponent, so a
	// failed or stale lane is served by reconstruction: xor of the
	// other lanes recovers a data lane and parity alike, which is what
	// keeps RMW possible with one bad component.
	var oldData, oldPar []byte
	if err := eachDrive(2, func(i int) error {
		if i == 0 {
			d, err := o.readComponent(ctx, comp, compOff, n, stripe)
			if err != nil {
				return err
			}
			oldData = d
			return nil
		}
		p, err := o.readComponent(ctx, parity, compOff, n, stripe)
		if err != nil {
			return err
		}
		oldPar = p
		return nil
	}); err != nil {
		return err
	}

	newPar := make([]byte, n)
	for i := 0; i < n; i++ {
		newPar[i] = oldPar[i] ^ oldData[i] ^ chunk[i]
	}
	// Data and parity land in parallel too; the stripe lock keeps the
	// pair atomic with respect to other writers of this stripe. One
	// failed leg degrades the write instead of failing it: with
	// newPar = oldPar ^ oldData ^ chunk, reconstruction of a skipped
	// data lane from the surviving lanes yields exactly chunk, so the
	// stripe stays logically consistent while the skipped component
	// waits in the repair ledger. Both legs failing loses the update.
	werrs := make([]error, 2)
	_ = eachDrive(2, func(i int) error {
		if i == 0 {
			werrs[0] = o.writeLeg(ctx, comp, compOff, chunk)
		} else {
			werrs[1] = o.writeLeg(ctx, parity, compOff, newPar)
		}
		return nil
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	if werrs[0] != nil && werrs[1] != nil {
		if errors.Is(werrs[0], client.ErrOverloaded) && errors.Is(werrs[1], client.ErrOverloaded) {
			// Both legs shed after pacing: neither data nor parity was
			// touched, so the stripe still holds its old, consistent
			// contents. Surface the typed retryable error — no ledger
			// entry, no lost-update ErrDegraded.
			return werrs[0]
		}
		return fmt.Errorf("%w: stripe %d data and parity writes both failed: %v", ErrDegraded, stripe, werrs[0])
	}
	for i, e := range werrs {
		if e != nil {
			idx := comp
			if i == 1 {
				idx = parity
			}
			o.mgr.noteDegradedWrite(o.desc.Logical, idx, e)
		}
	}
	return nil
}
