package cheops

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/telemetry"
)

// Object is a client-side handle on an open Cheops logical object: the
// descriptor plus the component capability set. All data movement
// happens here, on the client, drive-direct.
type Object struct {
	mgr    *Manager
	drives []*client.Drive // indexed like the manager's drive table
	desc   Descriptor
	caps   []capability.Capability
}

// OpenObject opens a logical object for I/O. drives must be the
// caller's own connections, indexed like the manager's drive table.
func OpenObject(mgr *Manager, drives []*client.Drive, logical uint64, rights capability.Rights) (*Object, error) {
	desc, caps, err := mgr.Open(logical, rights)
	if err != nil {
		return nil, err
	}
	return &Object{mgr: mgr, drives: drives, desc: desc, caps: caps}, nil
}

// Desc returns the layout descriptor.
func (o *Object) Desc() Descriptor { return o.desc }

// Size returns the logical size known to the manager at open time.
func (o *Object) Size() uint64 { return o.desc.Size }

// locate maps a logical byte offset to (component index, component
// offset, bytes until the lane changes, stripe number).
func (o *Object) locate(off int64) (comp int, compOff int64, runLen int64, stripe int64) {
	unit := o.desc.StripeUnit
	switch o.desc.Pattern {
	case Mirror1:
		return 0, off, 1 << 62, 0
	case Stripe0:
		u := off / unit
		within := off % unit
		w := int64(o.desc.Width())
		comp = int(u % w)
		compOff = (u/w)*unit + within
		return comp, compOff, unit - within, u / w
	case RAID5:
		dw := int64(o.desc.DataWidth())
		u := off / unit
		within := off % unit
		stripe = u / dw
		lane := u % dw
		parity := o.parityIndex(stripe)
		comp = int(lane)
		if comp >= parity {
			comp++
		}
		compOff = stripe*unit + within
		return comp, compOff, unit - within, stripe
	}
	panic("cheops: unknown pattern")
}

// parityIndex returns the component holding parity for a stripe
// (rotating right-asymmetric layout).
func (o *Object) parityIndex(stripe int64) int {
	return int(stripe % int64(o.desc.Width()))
}

type ioResult struct {
	err error
}

// ReadAt reads n bytes at logical offset off, fanning the per-lane
// spans out to all component drives concurrently (each span is itself
// pipelined when large). For redundant layouts it reconstructs around a
// single failed component (degraded read).
func (o *Object) ReadAt(ctx context.Context, off uint64, n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]byte, n)
	type span struct {
		comp    int
		compOff int64
		outOff  int
		n       int
		stripe  int64
	}
	var spans []span
	for done := 0; done < n; {
		comp, compOff, run, stripe := o.locate(int64(off) + int64(done))
		chunk := n - done
		if int64(chunk) > run {
			chunk = int(run)
		}
		spans = append(spans, span{comp, compOff, done, chunk, stripe})
		done += chunk
	}
	o.mgr.tel.readFanout.Observe(int64(len(spans)))
	ctx, rsp := o.mgr.spans.StartSpan(ctx, "cheops.read")
	rsp.Annotate("fanout", strconv.Itoa(len(spans)))
	rsp.Annotate("bytes", strconv.Itoa(n))
	defer rsp.End()
	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			// One child span per fan-out leg: parallel legs render as
			// overlapping bars, making the stripe's straggler visible.
			lctx, lsp := o.mgr.spans.StartSpan(ctx, "cheops.read.leg")
			lsp.Annotate("drive", strconv.Itoa(o.desc.Components[sp.comp].Drive))
			lsp.Annotate("off", strconv.FormatInt(sp.compOff, 10))
			lsp.Annotate("len", strconv.Itoa(sp.n))
			defer lsp.End()
			data, err := o.readComponent(lctx, sp.comp, uint64(sp.compOff), sp.n, sp.stripe)
			if err != nil {
				lsp.Annotate("error", err.Error())
				errs[i] = err
				return
			}
			copy(out[sp.outOff:sp.outOff+sp.n], data)
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readComponent reads from one component, falling back to
// reconstruction when the component fails and the layout is redundant.
func (o *Object) readComponent(ctx context.Context, comp int, off uint64, n int, stripe int64) ([]byte, error) {
	data, err := o.drives[o.desc.Components[comp].Drive].ReadPipelined(
		ctx, &o.caps[comp], o.mgr.part, o.desc.Components[comp].Object, off, n)
	if err == nil {
		return pad(data, n), nil
	}
	if ctx.Err() != nil {
		return nil, err // don't mask a canceled read as a drive failure
	}
	if o.desc.Pattern == Mirror1 || o.desc.Pattern == RAID5 {
		o.mgr.tel.degradedReads.Inc()
		var dsp *telemetry.Span
		ctx, dsp = o.mgr.spans.StartSpan(ctx, "cheops.degraded_read")
		dsp.Annotate("failed_comp", strconv.Itoa(comp))
		dsp.Annotate("cause", err.Error())
		defer dsp.End()
	}
	switch o.desc.Pattern {
	case Mirror1:
		for alt := range o.desc.Components {
			if alt == comp {
				continue
			}
			data, aerr := o.drives[o.desc.Components[alt].Drive].ReadPipelined(
				ctx, &o.caps[alt], o.mgr.part, o.desc.Components[alt].Object, off, n)
			if aerr == nil {
				return pad(data, n), nil
			}
		}
		return nil, fmt.Errorf("%w: all mirrors failed: %v", ErrDegraded, err)
	case RAID5:
		// Reconstruct: xor of every other component at the same offsets,
		// reading all survivors in parallel.
		parts := make([][]byte, len(o.desc.Components))
		if rerr := eachDrive(len(o.desc.Components), func(i int) error {
			if i == comp {
				return nil
			}
			c := o.desc.Components[i]
			p, e := o.drives[c.Drive].ReadPipelined(ctx, &o.caps[i], o.mgr.part, c.Object, off, n)
			if e != nil {
				return e
			}
			parts[i] = pad(p, n)
			return nil
		}); rerr != nil {
			return nil, fmt.Errorf("%w: second failure during reconstruction: %v (first: %v)", ErrDegraded, rerr, err)
		}
		acc := make([]byte, n)
		for _, p := range parts {
			for j := range p {
				acc[j] ^= p[j]
			}
		}
		return acc, nil
	default:
		return nil, err
	}
}

func pad(b []byte, n int) []byte {
	if len(b) >= n {
		return b[:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// WriteAt writes data at logical offset off and reports the new size to
// the manager. Per-lane spans go to all component drives concurrently.
func (o *Object) WriteAt(ctx context.Context, off uint64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	ctx, wsp := o.mgr.spans.StartSpan(ctx, "cheops.write")
	wsp.Annotate("bytes", strconv.Itoa(len(data)))
	defer wsp.End()
	var err error
	switch o.desc.Pattern {
	case Mirror1:
		err = o.writeMirror(ctx, off, data)
	case Stripe0:
		err = o.writeStripe0(ctx, off, data)
	case RAID5:
		err = o.writeRAID5(ctx, off, data)
	default:
		err = ErrBadLayout
	}
	if err != nil {
		return err
	}
	end := off + uint64(len(data))
	if end > o.desc.Size {
		o.desc.Size = end
		return o.mgr.UpdateSize(ctx, o.desc.Logical, end)
	}
	return nil
}

func (o *Object) writeMirror(ctx context.Context, off uint64, data []byte) error {
	o.mgr.tel.writeFanout.Observe(int64(len(o.desc.Components)))
	var wg sync.WaitGroup
	errs := make([]error, len(o.desc.Components))
	for i, c := range o.desc.Components {
		wg.Add(1)
		go func(i int, c Component) {
			defer wg.Done()
			lctx, lsp := o.mgr.spans.StartSpan(ctx, "cheops.write.leg")
			lsp.Annotate("drive", strconv.Itoa(c.Drive))
			defer lsp.End()
			errs[i] = o.drives[c.Drive].WritePipelined(lctx, &o.caps[i], o.mgr.part, c.Object, off, data)
		}(i, c)
	}
	wg.Wait()
	ok := 0
	var firstErr error
	for _, e := range errs {
		if e == nil {
			ok++
		} else if firstErr == nil {
			firstErr = e
		}
	}
	if ok == 0 {
		return fmt.Errorf("%w: every mirror write failed: %v", ErrDegraded, firstErr)
	}
	return nil
}

func (o *Object) writeStripe0(ctx context.Context, off uint64, data []byte) error {
	type span struct {
		comp    int
		compOff int64
		start   int
		n       int
	}
	var spans []span
	for done := 0; done < len(data); {
		comp, compOff, run, _ := o.locate(int64(off) + int64(done))
		chunk := len(data) - done
		if int64(chunk) > run {
			chunk = int(run)
		}
		spans = append(spans, span{comp, compOff, done, chunk})
		done += chunk
	}
	o.mgr.tel.writeFanout.Observe(int64(len(spans)))
	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			c := o.desc.Components[sp.comp]
			lctx, lsp := o.mgr.spans.StartSpan(ctx, "cheops.write.leg")
			lsp.Annotate("drive", strconv.Itoa(c.Drive))
			lsp.Annotate("off", strconv.FormatInt(sp.compOff, 10))
			lsp.Annotate("len", strconv.Itoa(sp.n))
			defer lsp.End()
			errs[i] = o.drives[c.Drive].WritePipelined(lctx, &o.caps[sp.comp], o.mgr.part, c.Object,
				uint64(sp.compOff), data[sp.start:sp.start+sp.n])
		}(i, sp)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// writeRAID5 performs parity-consistent writes one stripe unit at a
// time using read-modify-write (small-write) updates, serialized per
// stripe through the manager's lock service.
func (o *Object) writeRAID5(ctx context.Context, off uint64, data []byte) error {
	for done := 0; done < len(data); {
		comp, compOff, run, stripe := o.locate(int64(off) + int64(done))
		chunk := len(data) - done
		if int64(chunk) > run {
			chunk = int(run)
		}
		if err := o.rmwRAID5(ctx, comp, uint64(compOff), stripe, data[done:done+chunk]); err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

func (o *Object) rmwRAID5(ctx context.Context, comp int, compOff uint64, stripe int64, chunk []byte) error {
	o.mgr.tel.rmwWrites.Inc()
	ctx, rsp := o.mgr.spans.StartSpan(ctx, "cheops.rmw")
	rsp.Annotate("stripe", strconv.FormatInt(stripe, 10))
	defer rsp.End()
	o.mgr.LockStripe(o.desc.Logical, stripe)
	defer o.mgr.UnlockStripe(o.desc.Logical, stripe)

	parity := o.parityIndex(stripe)
	dataComp := o.desc.Components[comp]
	parComp := o.desc.Components[parity]
	n := len(chunk)

	// Read old data and old parity in parallel (missing regions read as
	// zeros) — the two drives seek concurrently, halving the small-write
	// pre-read latency.
	var oldData, oldPar []byte
	if err := eachDrive(2, func(i int) error {
		if i == 0 {
			d, err := o.drives[dataComp.Drive].Read(ctx, &o.caps[comp], o.mgr.part, dataComp.Object, compOff, n)
			if err != nil {
				return err
			}
			oldData = pad(d, n)
			return nil
		}
		p, err := o.drives[parComp.Drive].Read(ctx, &o.caps[parity], o.mgr.part, parComp.Object, compOff, n)
		if err != nil {
			return err
		}
		oldPar = pad(p, n)
		return nil
	}); err != nil {
		return err
	}

	newPar := make([]byte, n)
	for i := 0; i < n; i++ {
		newPar[i] = oldPar[i] ^ oldData[i] ^ chunk[i]
	}
	// Data and parity land in parallel too; the stripe lock keeps the
	// pair atomic with respect to other writers of this stripe.
	return eachDrive(2, func(i int) error {
		if i == 0 {
			return o.drives[dataComp.Drive].Write(ctx, &o.caps[comp], o.mgr.part, dataComp.Object, compOff, chunk)
		}
		return o.drives[parComp.Drive].Write(ctx, &o.caps[parity], o.mgr.part, parComp.Object, compOff, newPar)
	})
}
