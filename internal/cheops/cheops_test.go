package cheops

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

var clientSeq atomic.Uint64

var testCtx = context.Background()

type rig struct {
	mgr    *Manager
	drives []*client.Drive
	srvs   []*rpc.Server
	lns    []*rpc.InProcListener
	raw    []*drive.Drive
	spans  *telemetry.SpanLog
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{}
	var refs []DriveRef
	for i := 0; i < n; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 8192)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		r.raw = append(r.raw, drv)
		l := rpc.NewInProcListener("d")
		srv := drv.Serve(l)
		r.srvs = append(r.srvs, srv)
		r.lns = append(r.lns, l)
		t.Cleanup(srv.Close)
		dial := func() *client.Drive {
			conn, err := l.Dial()
			if err != nil {
				t.Fatal(err)
			}
			c := client.New(conn, uint64(1+i), clientSeq.Add(1)+100)
			t.Cleanup(func() { c.Close() })
			return c
		}
		refs = append(refs, DriveRef{Client: dial(), DriveID: uint64(1 + i), Master: master})
		r.drives = append(r.drives, dial())
	}
	r.spans = telemetry.NewSpanLog(512)
	mgr, err := NewManager(testCtx, ManagerConfig{Drives: refs, Spans: r.spans}, true)
	if err != nil {
		t.Fatal(err)
	}
	r.mgr = mgr
	return r
}

func TestStripe0RoundTrip(t *testing.T) {
	r := newRig(t, 4)
	id, err := r.mgr.Create(testCtx, Stripe0, 32<<10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 300<<10) // spans several stripes
	rng.Read(data)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := obj.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
	// Unaligned window.
	got, err = obj.ReadAt(testCtx, 33000, 70000)
	if err != nil || !bytes.Equal(got, data[33000:33000+70000]) {
		t.Fatalf("unaligned read failed: %v", err)
	}
	// All four drives hold data.
	for i, d := range r.raw {
		ids, err := d.Store().List(r.mgr.Partition())
		if err != nil || len(ids) == 0 {
			t.Fatalf("drive %d has no component: %v", i, err)
		}
	}
}

func TestStripe0SpreadsBytes(t *testing.T) {
	r := newRig(t, 4)
	id, _ := r.mgr.Create(testCtx, Stripe0, 8<<10, 4, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err := obj.WriteAt(testCtx, 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	desc := obj.Desc()
	for i, comp := range desc.Components {
		a, err := r.raw[comp.Drive].Store().GetAttr(r.mgr.Partition(), comp.Object)
		if err != nil {
			t.Fatal(err)
		}
		if a.Size != 16<<10 { // 64K over 4 lanes
			t.Fatalf("component %d holds %d bytes, want 16K", i, a.Size)
		}
	}
}

func TestLocateBijectionStripe0(t *testing.T) {
	r := newRig(t, 3)
	id, _ := r.mgr.Create(testCtx, Stripe0, 4<<10, 3, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Read)
	seen := map[[2]int64]int64{}
	for off := int64(0); off < 256<<10; off += 4 << 10 {
		comp, compOff, _, _ := obj.locate(off)
		key := [2]int64{int64(comp), compOff}
		if prev, dup := seen[key]; dup {
			t.Fatalf("offsets %d and %d map to same location", prev, off)
		}
		seen[key] = off
	}
}

func TestMirrorRoundTripAndFailover(t *testing.T) {
	r := newRig(t, 3)
	id, err := r.mgr.Create(testCtx, Mirror1, 32<<10, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("mirror"), 10000)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	// Both replicas hold the full object.
	for _, comp := range obj.Desc().Components {
		a, err := r.raw[comp.Drive].Store().GetAttr(r.mgr.Partition(), comp.Object)
		if err != nil || a.Size != uint64(len(data)) {
			t.Fatalf("replica size = %d, %v", a.Size, err)
		}
	}
	// Kill replica 0's connection: reads fail over to replica 1.
	r.drives[obj.Desc().Components[0].Drive].Close()
	got, err := obj.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("failover read: %v", err)
	}
}

func TestRAID5RoundTrip(t *testing.T) {
	r := newRig(t, 4)
	id, err := r.mgr.Create(testCtx, RAID5, 16<<10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 200<<10)
	rng.Read(data)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := obj.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("raid5 round trip: %v", err)
	}
	// Overwrite in the middle keeps parity consistent.
	patch := bytes.Repeat([]byte{0xEE}, 40<<10)
	rmwBefore := r.mgr.Metrics().Counter("cheops.rmw_writes").Load()
	if err := obj.WriteAt(testCtx, 50<<10, patch); err != nil {
		t.Fatal(err)
	}
	// Every stripe-unit chunk of a RAID-5 write is a read-modify-write.
	if rmwAfter := r.mgr.Metrics().Counter("cheops.rmw_writes").Load(); rmwAfter <= rmwBefore {
		t.Fatalf("cheops.rmw_writes did not increment: %d -> %d", rmwBefore, rmwAfter)
	}
	copy(data[50<<10:], patch)
	got, err = obj.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("raid5 after overwrite: %v", err)
	}
}

func TestRAID5DegradedRead(t *testing.T) {
	r := newRig(t, 4)
	id, _ := r.mgr.Create(testCtx, RAID5, 16<<10, 4, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 150<<10)
	rng.Read(data)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	// Kill one component's drive connection.
	dead := obj.Desc().Components[1].Drive
	r.drives[dead].Close()
	before := r.mgr.Metrics().Counter("cheops.degraded_reads").Load()
	got, err := obj.ReadAt(testCtx, 0, len(data))
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read returned wrong data")
	}
	// Every span that touched the dead component reconstructed via xor
	// and was counted.
	if after := r.mgr.Metrics().Counter("cheops.degraded_reads").Load(); after <= before {
		t.Fatalf("cheops.degraded_reads did not increment: %d -> %d", before, after)
	}
	// The fan-out histogram saw the striped read's width.
	if h := r.mgr.Metrics().Snapshot().Histograms["cheops.read_fanout"]; h.Count == 0 || h.Max < 2 {
		t.Fatalf("cheops.read_fanout: %+v", h)
	}
}

func TestRAID5ParityProperty(t *testing.T) {
	// Property: after arbitrary writes, for every stripe the xor of all
	// components is zero.
	r := newRig(t, 4)
	unit := int64(4 << 10)
	id, _ := r.mgr.Create(testCtx, RAID5, unit, 4, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		off := uint64(rng.Intn(100 << 10))
		n := rng.Intn(20<<10) + 1
		buf := make([]byte, n)
		rng.Read(buf)
		if err := obj.WriteAt(testCtx, off, buf); err != nil {
			t.Fatal(err)
		}
	}
	desc := obj.Desc()
	// Longest component length.
	var maxLen uint64
	for _, comp := range desc.Components {
		a, err := r.raw[comp.Drive].Store().GetAttr(r.mgr.Partition(), comp.Object)
		if err != nil {
			t.Fatal(err)
		}
		if a.Size > maxLen {
			maxLen = a.Size
		}
	}
	acc := make([]byte, maxLen)
	for _, comp := range desc.Components {
		data, err := r.raw[comp.Drive].Store().Read(r.mgr.Partition(), comp.Object, 0, int(maxLen))
		if err != nil {
			t.Fatal(err)
		}
		for j := range data {
			acc[j] ^= data[j]
		}
	}
	for j, b := range acc {
		if b != 0 {
			t.Fatalf("parity violated at component offset %d", j)
		}
	}
}

func TestReplaceComponentRAID5(t *testing.T) {
	r := newRig(t, 5)
	id, _ := r.mgr.Create(testCtx, RAID5, 8<<10, 4, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 100<<10)
	rng.Read(data)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	// Rebuild component 2 onto drive 4.
	if err := r.mgr.ReplaceComponent(testCtx, id, 2, 4); err != nil {
		t.Fatal(err)
	}
	if n := r.mgr.Metrics().Counter("cheops.reconstructions").Load(); n != 1 {
		t.Fatalf("cheops.reconstructions = %d, want 1", n)
	}
	desc, _ := r.mgr.Stat(id)
	if desc.Components[2].Drive != 4 {
		t.Fatalf("component not moved: %+v", desc.Components[2])
	}
	// Fresh open reads identical data through the rebuilt component.
	obj2, err := OpenObject(r.mgr, r.drives, id, capability.Read)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj2.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after rebuild: %v", err)
	}
}

func TestReplaceComponentMirror(t *testing.T) {
	r := newRig(t, 3)
	id, _ := r.mgr.Create(testCtx, Mirror1, 32<<10, 2, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	data := bytes.Repeat([]byte{5}, 50<<10)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.ReplaceComponent(testCtx, id, 0, 2); err != nil {
		t.Fatal(err)
	}
	obj2, _ := OpenObject(r.mgr, r.drives, id, capability.Read)
	got, err := obj2.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("mirror rebuild read: %v", err)
	}
}

func TestManagerValidation(t *testing.T) {
	r := newRig(t, 2)
	if _, err := r.mgr.Create(testCtx, Stripe0, 0, 2, 0); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("zero stripe unit: %v", err)
	}
	if _, err := r.mgr.Create(testCtx, Stripe0, 4096, 3, 0); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("width beyond drives: %v", err)
	}
	if _, err := r.mgr.Create(testCtx, RAID5, 4096, 2, 0); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("raid5 width 2: %v", err)
	}
	if _, _, err := r.mgr.Open(99, capability.Read); !errors.Is(err, ErrNoObject) {
		t.Fatalf("open missing: %v", err)
	}
	if err := r.mgr.Remove(testCtx, 99); !errors.Is(err, ErrNoObject) {
		t.Fatalf("remove missing: %v", err)
	}
}

func TestRemoveDeletesComponents(t *testing.T) {
	r := newRig(t, 2)
	id, _ := r.mgr.Create(testCtx, Stripe0, 4096, 2, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Write)
	if err := obj.WriteAt(testCtx, 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Remove(testCtx, id); err != nil {
		t.Fatal(err)
	}
	for i, d := range r.raw {
		ids, err := d.Store().List(r.mgr.Partition())
		if err != nil {
			t.Fatal(err)
		}
		// Drive 0 retains exactly the manager's directory object.
		want := 0
		if i == 0 {
			want = 1
		}
		if len(ids) != want {
			t.Fatalf("drive %d still holds %v", i, ids)
		}
	}
}

func TestCapabilitiesAreComponentScoped(t *testing.T) {
	r := newRig(t, 2)
	id, _ := r.mgr.Create(testCtx, Stripe0, 4096, 2, 0)
	id2, _ := r.mgr.Create(testCtx, Stripe0, 4096, 2, 0)
	_, caps, err := r.mgr.Open(id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	desc2, _ := r.mgr.Stat(id2)
	// A capability for object id's component must not authorize access
	// to object id2's components.
	err = r.drives[desc2.Components[0].Drive].Write(testCtx, &caps[0], r.mgr.Partition(),
		desc2.Components[0].Object, 0, []byte("cross"))
	if !errors.Is(err, client.ErrAuth) {
		t.Fatalf("cross-object access: %v", err)
	}
}

func TestUpdateSizeAndStat(t *testing.T) {
	r := newRig(t, 2)
	id, _ := r.mgr.Create(testCtx, Stripe0, 4096, 2, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err := obj.WriteAt(testCtx, 0, make([]byte, 10000)); err != nil {
		t.Fatal(err)
	}
	desc, err := r.mgr.Stat(id)
	if err != nil || desc.Size != 10000 {
		t.Fatalf("size = %d, %v", desc.Size, err)
	}
	// Re-open sees the size.
	obj2, _ := OpenObject(r.mgr, r.drives, id, capability.Read)
	if obj2.Size() != 10000 {
		t.Fatalf("reopened size = %d", obj2.Size())
	}
}

func TestStripeLocks(t *testing.T) {
	r := newRig(t, 3)
	r.mgr.LockStripe(1, 0)
	locked := make(chan struct{})
	go func() {
		r.mgr.LockStripe(1, 0)
		close(locked)
		r.mgr.UnlockStripe(1, 0)
	}()
	select {
	case <-locked:
		t.Fatal("second lock acquired while held")
	default:
	}
	// Different stripe is independent.
	r.mgr.LockStripe(1, 1)
	r.mgr.UnlockStripe(1, 1)
	r.mgr.UnlockStripe(1, 0)
	<-locked
}
