package cheops

import "nasd/internal/telemetry"

// cheopsTel carries the storage manager's metrics: how wide striped
// transfers fan out (the parallelism behind Figure 9's scaling), and
// how often the redundancy machinery — degraded reads, RAID-5
// read-modify-write, component reconstruction — actually runs.
type cheopsTel struct {
	reg               *telemetry.Registry
	events            *telemetry.EventLog  // structured events (breaker transitions, degraded ops, repairs)
	degradedReads     *telemetry.Counter   // reads served by reconstruction around a failed component
	degradedWrites    *telemetry.Counter   // redundant writes that skipped a failed component (repair logged)
	failovers         *telemetry.Counter   // legs that fell over to a degraded path mid-operation
	capRenewals       *telemetry.Counter   // expired component capabilities renewed transparently
	breakerOpens      *telemetry.Counter   // circuit breakers tripped open
	breakerProbes     *telemetry.Counter   // half-open probes admitted
	rmwWrites         *telemetry.Counter   // RAID-5 small-write read-modify-write cycles
	reconstructions   *telemetry.Counter   // whole-component rebuilds (ReplaceComponent)
	backpressure      *telemetry.Counter   // legs answered StatusRetryLater (drive alive, shedding)
	backpressureWaits *telemetry.Counter   // hinted pacing sleeps taken before reissuing a leg
	readFanout        *telemetry.Histogram // spans per ReadAt (drive-parallel fan-out width)
	writeFanout       *telemetry.Histogram // spans per striped/mirrored WriteAt
}

func newCheopsTel(reg *telemetry.Registry, events *telemetry.EventLog) *cheopsTel {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if events == nil {
		events = telemetry.Events
	}
	return &cheopsTel{
		reg:               reg,
		events:            events,
		degradedReads:     reg.Counter("cheops.degraded_reads"),
		degradedWrites:    reg.Counter("cheops.degraded_writes"),
		failovers:         reg.Counter("cheops.failovers"),
		capRenewals:       reg.Counter("cheops.cap_renewals"),
		breakerOpens:      reg.Counter("cheops.breaker_opens"),
		breakerProbes:     reg.Counter("cheops.breaker_probes"),
		rmwWrites:         reg.Counter("cheops.rmw_writes"),
		reconstructions:   reg.Counter("cheops.reconstructions"),
		backpressure:      reg.Counter("cheops.backpressure"),
		backpressureWaits: reg.Counter("cheops.backpressure_waits"),
		readFanout:        reg.Histogram("cheops.read_fanout"),
		writeFanout:       reg.Histogram("cheops.write_fanout"),
	}
}

// Metrics returns the manager's telemetry registry ("cheops.*" names).
// Objects opened through this manager record into the same registry, so
// one snapshot covers both the control plane and client-side data paths.
func (m *Manager) Metrics() *telemetry.Registry { return m.tel.reg }
