// Package cheops implements the paper's storage manager (Section 5.2):
// a second level of objects layered on the NASD interface. A Cheops
// logical object maps onto component objects spread across NASD drives;
// the manager "replaces the file manager's capability with a set of
// capabilities for the objects that actually make up the high-level
// striped object", and clients then access drives directly. Striping
// and redundancy are computed over object offsets, never physical disk
// addresses, so untrusted clients can only touch what their component
// capabilities name.
//
// Cheops deliberately uses client processing power (the xor for parity,
// the fan-out of striped transfers) rather than scaling a storage
// controller, which is the difference from Swift/TickerTAIP/Petal the
// paper calls out.
//
// The manager counts its RAID machinery in a telemetry.Registry — the
// cheops.* family of DESIGN.md §5: read/write fan-out widths (the
// Figure 7/9 scaling knob), degraded reads served by reconstruction,
// RAID-5 small-write read-modify-writes, and component rebuilds.
package cheops
