package cheops

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for breaker tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration, clk *fakeClock) *breaker {
	return newBreaker(0, threshold, cooldown, clk.Now, newCheopsTel(nil, nil))
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := newTestBreaker(3, time.Second, clk)
	if b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("tripped before threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("did not trip at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic before cooldown")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := newTestBreaker(3, time.Second, clk)
	b.Failure()
	b.Failure()
	b.Success() // consecutive, not cumulative
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("interleaved successes still tripped the breaker")
	}
}

func TestBreakerHalfOpenAdmitsExactlyOneProbe(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := newTestBreaker(1, time.Second, clk)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not trip")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted while first is in flight")
	}
}

func TestBreakerProbeOutcomeDecides(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := newTestBreaker(1, time.Second, clk)

	b.Failure()
	clk.Advance(time.Second)
	b.Allow() // probe
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// The failed probe restarts the cooldown from its failure time.
	if b.Allow() {
		t.Fatal("reopened breaker admitted traffic immediately")
	}

	clk.Advance(time.Second)
	b.Allow() // next probe
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		if got := st.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", st, got, want)
		}
	}
}
