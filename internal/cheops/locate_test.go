package cheops

import (
	"testing"

	"nasd/internal/capability"
)

// Property tests on the striping geometry: every logical offset maps to
// exactly one (component, offset) pair, no two logical stripe units
// collide, and RAID5 data never lands on its stripe's parity component.

func TestLocatePropertyRAID5(t *testing.T) {
	r := newRig(t, 5)
	unit := int64(4 << 10)
	id, err := r.mgr.Create(testCtx, RAID5, unit, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		comp int
		off  int64
	}
	seen := map[key]int64{}
	for u := int64(0); u < 2000; u++ {
		off := u * unit
		comp, compOff, run, stripe := obj.locate(off)
		if run != unit {
			t.Fatalf("offset %d: run %d != unit", off, run)
		}
		if comp == obj.parityIndex(stripe) {
			t.Fatalf("offset %d: data placed on parity component %d of stripe %d", off, comp, stripe)
		}
		k := key{comp, compOff}
		if prev, dup := seen[k]; dup {
			t.Fatalf("offsets %d and %d collide at component %d off %d", prev, off, comp, compOff)
		}
		seen[k] = off
	}
}

func TestLocateWithinUnitContiguity(t *testing.T) {
	r := newRig(t, 4)
	unit := int64(16 << 10)
	for _, pat := range []Pattern{Stripe0, RAID5} {
		width := 4
		id, err := r.mgr.Create(testCtx, pat, unit, width, 0)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := OpenObject(r.mgr, r.drives, id, capability.Read)
		if err != nil {
			t.Fatal(err)
		}
		// Offsets within one stripe unit stay on one component, at
		// consecutive component offsets.
		baseComp, baseOff, _, _ := obj.locate(unit * 7)
		for delta := int64(1); delta < unit; delta += 997 {
			comp, off, run, _ := obj.locate(unit*7 + delta)
			if comp != baseComp || off != baseOff+delta {
				t.Fatalf("%v: offset %d broke contiguity", pat, unit*7+delta)
			}
			if run != unit-delta {
				t.Fatalf("%v: run length %d, want %d", pat, run, unit-delta)
			}
		}
	}
}

func TestParityRotates(t *testing.T) {
	r := newRig(t, 4)
	id, _ := r.mgr.Create(testCtx, RAID5, 4096, 4, 0)
	obj, _ := OpenObject(r.mgr, r.drives, id, capability.Read)
	seen := map[int]bool{}
	for s := int64(0); s < 4; s++ {
		seen[obj.parityIndex(s)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("parity used only %d of 4 components", len(seen))
	}
}
