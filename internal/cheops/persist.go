package cheops

import (
	"context"
	"fmt"

	"nasd/internal/capability"
	"nasd/internal/object"
	"nasd/internal/rpc"
)

// Layout mappings are the storage manager's only hard state. They are
// persisted in a directory object on drive 0 inside the Cheops
// partition, so a restarted manager recovers every logical object. The
// directory object is found at mount time by its magic header.

// dirMagic identifies the Cheops directory object.
const dirMagic uint32 = 0x43485044 // "CHPD"

func (m *Manager) encodeState() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	var e rpc.Encoder
	e.U32(dirMagic)
	e.U64(m.next)
	e.U32(uint32(len(m.objects)))
	for _, d := range m.objects {
		e.U64(d.Logical)
		e.U8(uint8(d.Pattern))
		e.I64(d.StripeUnit)
		e.U64(d.Size)
		e.U32(uint32(len(d.Components)))
		for _, c := range d.Components {
			e.U32(uint32(c.Drive))
			e.U64(c.DriveID)
			e.U64(c.Object)
		}
	}
	return e.Bytes()
}

func (m *Manager) decodeState(b []byte) error {
	d := rpc.NewDecoder(b)
	if d.U32() != dirMagic {
		return fmt.Errorf("cheops: bad directory magic")
	}
	next := d.U64()
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	objects := make(map[uint64]*Descriptor, n)
	for i := 0; i < n; i++ {
		desc := &Descriptor{
			Logical:    d.U64(),
			Pattern:    Pattern(d.U8()),
			StripeUnit: d.I64(),
			Size:       d.U64(),
		}
		nc := int(d.U32())
		if err := d.Err(); err != nil {
			return err
		}
		for j := 0; j < nc; j++ {
			desc.Components = append(desc.Components, Component{
				Drive:   int(d.U32()),
				DriveID: d.U64(),
				Object:  d.U64(),
			})
		}
		objects[desc.Logical] = desc
	}
	if err := d.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	m.next = next
	m.objects = objects
	m.mu.Unlock()
	return nil
}

// save persists the directory object (best effort ordering: callers
// hold no lock).
func (m *Manager) save(ctx context.Context) error {
	if m.dirObj == 0 {
		return nil // persistence disabled (not formatted/mounted)
	}
	data := m.encodeState()
	wc := m.mintWildcard(0, capability.Write|capability.SetAttr)
	cli := m.drives[0].Client
	if err := cli.WritePipelined(ctx, &wc, m.part, m.dirObj, 0, data); err != nil {
		return fmt.Errorf("cheops: persisting directory: %w", err)
	}
	// Shrink if the directory got smaller.
	return cli.SetAttr(ctx, &wc, m.part, m.dirObj,
		object.Attributes{Size: uint64(len(data))}, object.SetSize)
}

// initDirectory creates the directory object at format time.
func (m *Manager) initDirectory(ctx context.Context) error {
	cc := m.mintWildcard(0, capability.CreateObj)
	obj, err := m.drives[0].Client.Create(ctx, &cc, m.part)
	if err != nil {
		return fmt.Errorf("cheops: creating directory object: %w", err)
	}
	m.dirObj = obj
	return m.save(ctx)
}

// loadDirectory finds and reads the directory object at mount time.
func (m *Manager) loadDirectory(ctx context.Context) error {
	rc := m.mintWildcard(0, capability.Read|capability.GetAttr)
	cli := m.drives[0].Client
	ids, err := cli.List(ctx, &rc, m.part)
	if err != nil {
		return fmt.Errorf("cheops: listing drive 0: %w", err)
	}
	for _, id := range ids {
		attrs, err := cli.GetAttr(ctx, &rc, m.part, id)
		if err != nil {
			continue
		}
		if attrs.Size < 4 {
			continue
		}
		head, err := cli.Read(ctx, &rc, m.part, id, 0, 4)
		if err != nil || len(head) < 4 {
			continue
		}
		d := rpc.NewDecoder(head)
		if d.U32() != dirMagic {
			continue
		}
		data, err := cli.ReadPipelined(ctx, &rc, m.part, id, 0, int(attrs.Size))
		if err != nil {
			return err
		}
		if err := m.decodeState(data); err != nil {
			return err
		}
		m.dirObj = id
		return nil
	}
	return fmt.Errorf("cheops: no directory object found on drive 0")
}
