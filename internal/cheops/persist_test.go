package cheops

import (
	"bytes"
	"testing"

	"nasd/internal/capability"
)

// TestManagerStateSurvivesRemount verifies that a rebuilt manager (new
// process, same drives) recovers every logical object from the
// directory object and serves identical data.
func TestManagerStateSurvivesRemount(t *testing.T) {
	r := newRig(t, 4)
	idStripe, err := r.mgr.Create(testCtx, Stripe0, 32<<10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	idRaid, err := r.mgr.Create(testCtx, RAID5, 16<<10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenObject(r.mgr, r.drives, idStripe, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("persist"), 20_000)
	if err := obj.WriteAt(testCtx, 0, data); err != nil {
		t.Fatal(err)
	}
	robj, err := OpenObject(r.mgr, r.drives, idRaid, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := robj.WriteAt(testCtx, 0, data[:50_000]); err != nil {
		t.Fatal(err)
	}

	// "Restart" the manager: same drive connections, format=false.
	refs := make([]DriveRef, len(r.mgr.drives))
	copy(refs, r.mgr.drives)
	mgr2, err := NewManager(testCtx, ManagerConfig{Drives: refs, Partition: r.mgr.part}, false)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := mgr2.Stat(idStripe)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Pattern != Stripe0 || desc.Width() != 4 || desc.Size != uint64(len(data)) {
		t.Fatalf("recovered descriptor = %+v", desc)
	}
	obj2, err := OpenObject(mgr2, r.drives, idStripe, capability.Read)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj2.ReadAt(testCtx, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data after remount: %v", err)
	}
	robj2, err := OpenObject(mgr2, r.drives, idRaid, capability.Read)
	if err != nil {
		t.Fatal(err)
	}
	got, err = robj2.ReadAt(testCtx, 0, 50_000)
	if err != nil || !bytes.Equal(got, data[:50_000]) {
		t.Fatalf("raid data after remount: %v", err)
	}

	// New objects on the remounted manager do not collide with old IDs.
	id3, err := mgr2.Create(testCtx, Stripe0, 32<<10, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == idStripe || id3 == idRaid {
		t.Fatalf("logical ID reused: %d", id3)
	}
}

// TestRemovePersisted verifies deletions survive remount.
func TestRemovePersisted(t *testing.T) {
	r := newRig(t, 2)
	id, err := r.mgr.Create(testCtx, Stripe0, 4096, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Remove(testCtx, id); err != nil {
		t.Fatal(err)
	}
	refs := make([]DriveRef, len(r.mgr.drives))
	copy(refs, r.mgr.drives)
	mgr2, err := NewManager(testCtx, ManagerConfig{Drives: refs, Partition: r.mgr.part}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr2.Stat(id); err == nil {
		t.Fatal("removed object resurrected after remount")
	}
}
