package cheops

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// shedder sits between the rpc server and a real drive, answering a
// controllable number of data requests with StatusRetryLater — the
// wire-visible shape of the drive's qos plane rejecting under load.
// Counters hold how many requests of that proc remain to be shed;
// -1 sheds forever.
type shedder struct {
	inner      rpc.Handler
	hint       time.Duration
	shedReads  atomic.Int64
	shedWrites atomic.Int64
}

func (s *shedder) take(ctr *atomic.Int64) bool {
	for {
		n := ctr.Load()
		if n == 0 {
			return false
		}
		if n < 0 || ctr.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (s *shedder) Handle(req *rpc.Request) *rpc.Reply {
	var ctr *atomic.Int64
	switch drive.Op(req.Proc) {
	case drive.OpReadObject:
		ctr = &s.shedReads
	case drive.OpWriteObject:
		ctr = &s.shedWrites
	}
	if ctr != nil && s.take(ctr) {
		return rpc.RetryLater(req.MsgID, s.hint, "drive saturated")
	}
	return s.inner.Handle(req)
}

// shedRig is a manager over drives whose data path can be made to shed:
// sheds[i] controls drive i. Client retries are disabled (MaxAttempts
// 1) so every StatusRetryLater surfaces to the cheops layer — the
// subject under test — instead of being absorbed by client backoff.
type shedRig struct {
	mgr    *Manager
	drives []*client.Drive
	sheds  []*shedder
	reg    *telemetry.Registry
}

func (r *shedRig) open(t *testing.T, id uint64) *Object {
	t.Helper()
	obj, err := OpenObject(r.mgr, r.drives, id, capability.Read|capability.Write)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func newShedRig(t *testing.T, n int) *shedRig {
	t.Helper()
	r := &shedRig{reg: telemetry.NewRegistry()}
	var refs []DriveRef
	for i := 0; i < n; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 16384)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		sh := &shedder{inner: drv, hint: time.Millisecond}
		r.sheds = append(r.sheds, sh)
		l := rpc.NewInProcListener(fmt.Sprintf("shed%d", i))
		srv := rpc.NewServer(sh)
		t.Cleanup(srv.Close)
		go srv.Serve(l)
		mk := func() *client.Drive {
			conn, err := l.Dial()
			if err != nil {
				t.Fatal(err)
			}
			c := client.New(conn, uint64(1+i), clientSeq.Add(1)+900,
				client.WithMetrics(r.reg), client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
			t.Cleanup(func() { c.Close() })
			return c
		}
		refs = append(refs, DriveRef{Client: mk(), DriveID: uint64(1 + i), Master: master})
		r.drives = append(r.drives, mk())
	}
	mgr, err := NewManager(testCtx, ManagerConfig{
		Drives: refs, Metrics: r.reg,
		FailThreshold: 2, BreakerCooldown: time.Hour,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	r.mgr = mgr
	return r
}

// TestShedNeverOpensBreaker: a drive answering StatusRetryLater is
// alive and shedding by design. The paced write must absorb the sheds
// and succeed, and the breaker must stay closed — FailThreshold is 2
// and the drive sheds 3 times, so misclassifying shed as failure would
// trip it.
func TestShedNeverOpensBreaker(t *testing.T) {
	r := newShedRig(t, 2)
	id, err := r.mgr.Create(testCtx, Mirror1, 4096, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj := r.open(t, id)

	r.sheds[1].shedWrites.Store(3)
	payload := bytes.Repeat([]byte{0xA5}, 1024)
	if err := obj.WriteAt(testCtx, 0, payload); err != nil {
		t.Fatalf("write through transient shedding: %v", err)
	}
	if st := r.mgr.DriveHealth(1); st != BreakerClosed {
		t.Fatalf("drive 1 breaker = %v after shed replies, want closed", st)
	}
	snap := r.reg.Snapshot()
	if got := snap.Counters["cheops.breaker_opens"]; got != 0 {
		t.Fatalf("breaker_opens = %d: backpressure counted as drive failure", got)
	}
	if got := snap.Counters["cheops.backpressure"]; got != 3 {
		t.Fatalf("cheops.backpressure = %d, want 3", got)
	}
	if got := snap.Counters["cheops.backpressure_waits"]; got != 3 {
		t.Fatalf("cheops.backpressure_waits = %d, want 3", got)
	}
	if got := snap.Counters["cheops.degraded_writes"]; got != 0 {
		t.Fatalf("degraded_writes = %d: pacing should have kept the write clean", got)
	}
	if reps := r.mgr.PendingRepairs(); len(reps) != 0 {
		t.Fatalf("repair ledger = %v after paced write, want empty", reps)
	}

	// Read back through the healthy path to prove the data landed on
	// the lane that was shedding.
	got, err := obj.ReadAt(testCtx, 0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("readback mismatch after paced mirror write")
	}
}

// TestOverloadNeverTriggersDegradedRead: overload outlasting the pacing
// loop must surface as the typed retryable error, not fall into
// reconstruction — reconstructing around a saturated drive fans its
// load out to healthy stripe-mates.
func TestOverloadNeverTriggersDegradedRead(t *testing.T) {
	r := newShedRig(t, 2)
	id, err := r.mgr.Create(testCtx, Mirror1, 4096, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj := r.open(t, id)
	payload := bytes.Repeat([]byte{0x3C}, 512)
	if err := obj.WriteAt(testCtx, 0, payload); err != nil {
		t.Fatal(err)
	}

	// Mirror reads always land on component 0; saturate it permanently.
	r.sheds[0].shedReads.Store(-1)
	_, err = obj.ReadAt(testCtx, 0, len(payload))
	if err == nil {
		t.Fatal("read succeeded against a permanently shedding lane")
	}
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	snap := r.reg.Snapshot()
	if got := snap.Counters["cheops.degraded_reads"]; got != 0 {
		t.Fatalf("degraded_reads = %d: overload must not trigger reconstruction", got)
	}
	if st := r.mgr.DriveHealth(0); st != BreakerClosed {
		t.Fatalf("drive 0 breaker = %v, want closed", st)
	}

	// Once the drive has room again the same handle reads clean — the
	// lane was never marked stale or suspect.
	r.sheds[0].shedReads.Store(0)
	got, err := obj.ReadAt(testCtx, 0, len(payload))
	if err != nil {
		t.Fatalf("read after overload cleared: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("readback mismatch after overload cleared")
	}
}

// TestAllMirrorsOverloadedSurfacesRetryable: when every replica sheds
// past the pacing budget the write must come back as the typed
// retryable error with nothing in the repair ledger — nothing was
// written, the mirrors are still consistent, and ErrDegraded would
// send the caller down the wrong recovery path.
func TestAllMirrorsOverloadedSurfacesRetryable(t *testing.T) {
	r := newShedRig(t, 2)
	id, err := r.mgr.Create(testCtx, Mirror1, 4096, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj := r.open(t, id)
	r.sheds[0].shedWrites.Store(-1)
	r.sheds[1].shedWrites.Store(-1)
	err = obj.WriteAt(testCtx, 0, []byte("saturated"))
	if err == nil {
		t.Fatal("write succeeded against fully shedding mirrors")
	}
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, ErrDegraded) {
		t.Fatal("all-overloaded write reported as ErrDegraded")
	}
	if reps := r.mgr.PendingRepairs(); len(reps) != 0 {
		t.Fatalf("repair ledger = %v, want empty: no replica diverged", reps)
	}
	snap := r.reg.Snapshot()
	if got := snap.Counters["cheops.breaker_opens"]; got != 0 {
		t.Fatalf("breaker_opens = %d, want 0", got)
	}

	// Partial overload is different: one replica committed, so the shed
	// replica is stale and MUST enter the ledger or it would serve old
	// bytes after the load passes.
	r.sheds[0].shedWrites.Store(0)
	if err := obj.WriteAt(testCtx, 0, []byte("half-land")); err != nil {
		t.Fatalf("partial-overload write: %v", err)
	}
	reps := r.mgr.PendingRepairs()
	if len(reps) != 1 || reps[0].Component != 1 {
		t.Fatalf("repair ledger = %v, want exactly component 1", reps)
	}
}
