package cheops

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nasd/internal/client"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// This file is the manager's drive-health plane: a consecutive-failure
// circuit breaker per drive, the pending-repair ledger degraded writes
// feed, and RepairAll, which turns that ledger back into fully
// redundant layouts once drives return. The paper's cost model assumes
// drives "fail independently" and that Cheops reconstructs around
// them; the breaker supplies the detection half of that contract, the
// ledger the recovery half.

// BreakerState names a drive breaker's position.
type BreakerState int32

// Breaker positions, in escalation order.
const (
	// BreakerClosed: healthy, all traffic admitted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the drive failed FailThreshold consecutive legs;
	// traffic is refused (failing fast to the degraded path) until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed and one probe is in flight;
	// its outcome closes or reopens the breaker.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breaker(%d)", int32(s))
}

// Sentinel causes for legs refused without touching the drive.
var (
	errBreakerOpen   = errors.New("cheops: drive unavailable (breaker open)")
	errPendingRepair = errors.New("cheops: component awaiting repair")
)

// breaker is one drive's consecutive-failure circuit breaker.
type breaker struct {
	mu        sync.Mutex
	drive     int // manager drive index, labels this breaker's events
	clock     func() time.Time
	threshold int
	cooldown  time.Duration
	state     BreakerState
	fails     int
	openedAt  time.Time
	tel       *cheopsTel
}

func newBreaker(drive, threshold int, cooldown time.Duration, clock func() time.Time, tel *cheopsTel) *breaker {
	return &breaker{drive: drive, clock: clock, threshold: threshold, cooldown: cooldown, tel: tel}
}

// Allow reports whether a leg may be sent to the drive. In the open
// state it admits exactly one probe per cooldown window (transitioning
// to half-open); the probe's outcome decides the next state.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.tel.breakerProbes.Inc()
			b.tel.events.Emitf(telemetry.SevInfo, "cheops", "breaker_probe",
				"drive %d: cooldown elapsed, admitting half-open probe", b.drive)
			return true
		}
		return false
	case BreakerHalfOpen:
		return false // a probe is already in flight
	}
	return true
}

// Success records a completed leg; any success fully closes the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	reopened := b.state != BreakerClosed
	b.fails = 0
	b.state = BreakerClosed
	b.mu.Unlock()
	if reopened {
		b.tel.events.Emitf(telemetry.SevInfo, "cheops", "breaker_close",
			"drive %d: probe succeeded, traffic restored", b.drive)
	}
}

// Failure records a failed leg, tripping the breaker after threshold
// consecutive failures (or immediately when a half-open probe fails).
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.clock()
		b.tel.breakerOpens.Inc()
		b.tel.events.Emitf(telemetry.SevError, "cheops", "breaker_open",
			"drive %d: opened after %d consecutive leg failures", b.drive, b.fails)
	}
}

// State returns the current position.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// PendingRepair records a component a degraded write skipped: its
// contents are stale until ReplaceComponent rebuilds it, and reads of
// the lane are forced through reconstruction meanwhile.
type PendingRepair struct {
	Logical   uint64
	Component int
	Drive     int // drive index the component lives on
	Cause     string
}

type repairKey struct {
	logical uint64
	comp    int
}

// DriveHealth returns drive i's breaker state.
func (m *Manager) DriveHealth(i int) BreakerState {
	if i < 0 || i >= len(m.health) {
		return BreakerClosed
	}
	return m.health[i].State()
}

// allowDrive asks drive i's breaker for admission.
func (m *Manager) allowDrive(i int) bool {
	if i < 0 || i >= len(m.health) {
		return true
	}
	return m.health[i].Allow()
}

// reportDrive feeds one leg outcome into drive i's breaker. A reply
// from the drive — even a rejection — proves it alive; only transport
// failures and timeouts count against it. Cancellation by the caller
// says nothing about the drive and records nothing.
func (m *Manager) reportDrive(i int, err error) {
	if i < 0 || i >= len(m.health) {
		return
	}
	if err == nil {
		m.health[i].Success()
		return
	}
	var re *client.RemoteError
	if errors.As(err, &re) {
		// Backpressure gets its own classification: a StatusRetryLater
		// reply is the drive's overload plane working as designed, and
		// counting it toward failure would open breakers under exactly
		// the load spikes shedding exists to ride out — turning a busy
		// drive into a "failed" one and dogpiling its stripe-mates.
		if re.Status == rpc.StatusRetryLater {
			m.tel.backpressure.Inc()
		}
		m.health[i].Success()
		return
	}
	if errors.Is(err, context.Canceled) {
		return
	}
	m.health[i].Failure()
}

// noteRepair logs that component comp of logical is stale, reporting
// whether this call created the ledger entry. The drive index is
// resolved against the manager's current descriptor so stale handles
// log the lane that actually needs rebuilding.
func (m *Manager) noteRepair(logical uint64, comp int, cause error) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.objects[logical]
	if !ok || comp < 0 || comp >= len(d.Components) {
		return false
	}
	k := repairKey{logical, comp}
	if _, dup := m.repairs[k]; dup {
		return false
	}
	m.repairs[k] = PendingRepair{
		Logical: logical, Component: comp,
		Drive: d.Components[comp].Drive, Cause: cause.Error(),
	}
	return true
}

// clearRepair drops the ledger entry after a successful rebuild (and
// re-arms the lane's degraded-read event).
func (m *Manager) clearRepair(logical uint64, comp int) {
	m.mu.Lock()
	delete(m.repairs, repairKey{logical, comp})
	delete(m.degradedRead, repairKey{logical, comp})
	m.mu.Unlock()
}

// noteDegradedRead reports whether this is the lane's first
// reconstruction-served read since it was last healthy.
func (m *Manager) noteDegradedRead(logical uint64, comp int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := repairKey{logical, comp}
	if m.degradedRead[k] {
		return false
	}
	m.degradedRead[k] = true
	return true
}

// componentSuspect reports whether comp of logical awaits repair.
func (m *Manager) componentSuspect(logical uint64, comp int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, bad := m.repairs[repairKey{logical, comp}]
	return bad
}

// laneUnserviceable reports whether a handle's lane must be served by
// reconstruction: either a degraded write skipped it (pending repair),
// or the manager has already repaired it onto a different object than
// the one the handle opened (the handle is stale; its component holds
// pre-repair contents).
func (m *Manager) laneUnserviceable(logical uint64, comp int, obj uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, bad := m.repairs[repairKey{logical, comp}]; bad {
		return true
	}
	if d, ok := m.objects[logical]; ok && comp < len(d.Components) && d.Components[comp].Object != obj {
		return true
	}
	return false
}

// PendingRepairs returns the repair ledger, ordered for determinism.
func (m *Manager) PendingRepairs() []PendingRepair {
	m.mu.Lock()
	out := make([]PendingRepair, 0, len(m.repairs))
	for _, r := range m.repairs {
		out = append(out, r)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Logical != out[j].Logical {
			return out[i].Logical < out[j].Logical
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// MarkDriveStale enters every component resident on drive i into the
// repair ledger. Callers use it when a drive returns from a crash or
// power cut: the hardware answers again and mount-time journal recovery
// restored its metadata, but data writes it acknowledged from volatile
// cache may be gone, so every lane it carries must be treated as stale
// — served by reconstruction — until RepairAll rebuilds it. Lanes
// already in the ledger (from degraded writes during the outage) are
// left as they are. Returns the number of lanes newly marked.
func (m *Manager) MarkDriveStale(drive int, cause string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	marked := 0
	for logical, d := range m.objects {
		for comp := range d.Components {
			if d.Components[comp].Drive != drive {
				continue
			}
			k := repairKey{logical, comp}
			if _, dup := m.repairs[k]; dup {
				continue
			}
			m.repairs[k] = PendingRepair{
				Logical: logical, Component: comp, Drive: drive, Cause: cause,
			}
			marked++
		}
	}
	if marked > 0 {
		m.tel.events.Emitf(telemetry.SevWarn, "cheops", "drive_stale",
			"drive %d: %d lanes marked stale (%s)", drive, marked, cause)
	}
	return marked
}

// noteDegradedWrite is the accounting for one skipped write leg: the
// degraded-write and failover counters advance and the lane enters the
// repair ledger.
func (m *Manager) noteDegradedWrite(logical uint64, comp int, cause error) {
	m.tel.degradedWrites.Inc()
	m.tel.failovers.Inc()
	// One event per lane transition, not per write: the counter carries
	// the op rate; the event marks the moment the lane went stale.
	if m.noteRepair(logical, comp, cause) {
		m.tel.events.Emitf(telemetry.SevWarn, "cheops", "degraded_write",
			"logical=%d comp=%d now written degraded: %v", logical, comp, cause)
	}
}

// legCtx scopes one fan-out leg to the manager's per-leg timeout, so a
// hung drive surfaces as a timed-out leg (feeding its breaker) while
// the caller's overall deadline still has room to reconstruct. With no
// LegTimeout configured it returns ctx unchanged.
func (m *Manager) legCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if m.legTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, m.legTimeout)
}

// RepairAll attempts ReplaceComponent for every ledger entry, placing
// each rebuild on the drive the component already lives on — the
// revived-drive case, where the hardware is back but its contents are
// stale. Rebuild traffic doubles as the breaker's probe: a drive still
// down reopens its breaker and the entry stays in the ledger for the
// next sweep; drives whose breakers refuse admission are skipped
// without traffic. It returns how many components were rebuilt and the
// last error.
//
// Handles opened before a repair keep working — their stale lane is
// detected and served by reconstruction — but pay a redundancy read
// per access until reopened.
func (m *Manager) RepairAll(ctx context.Context) (int, error) {
	repaired := 0
	var lastErr error
	for _, r := range m.PendingRepairs() {
		if !m.allowDrive(r.Drive) {
			continue
		}
		if err := m.ReplaceComponent(ctx, r.Logical, r.Component, r.Drive); err != nil {
			m.reportDrive(r.Drive, err)
			lastErr = err
			continue
		}
		m.reportDrive(r.Drive, nil)
		repaired++
	}
	return repaired, lastErr
}
