// Package bufpool provides size-classed, telemetry-instrumented byte
// buffer pooling for the data path.
//
// Every layer of the read/write path — transport frames, codec encode
// buffers, cache blocks, object read results — draws from one shared
// pool, so a buffer freed by the RPC layer is immediately reusable as a
// cache block and vice versa. Buffers are grouped in power-of-two size
// classes from 512 B to the 16 MB frame cap; a request is rounded up to
// the next class and the returned slice is re-sliced to the requested
// length, so callers never see the rounding.
//
// Ownership discipline (see DESIGN.md "Buffer lifecycle"): a buffer has
// exactly one owner at a time. Get transfers ownership to the caller;
// Put transfers it back to the pool and the caller must not touch the
// slice (or any alias of it) afterwards. Put is always optional —
// a buffer that is merely dropped is collected by the GC and the pool
// sees a miss on some future Get. That makes pooling safe to adopt
// incrementally: paths that cannot prove exclusive ownership simply
// never Put.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"nasd/internal/telemetry"
)

const (
	// minClassBits is the smallest pooled size (512 B): below that the
	// allocator is effectively free and pooling is bookkeeping overhead.
	minClassBits = 9
	// maxClassBits is the largest pooled size (16 MB), matching the RPC
	// frame cap: nothing on the data path is bigger than one frame.
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1

	// MaxPooled is the largest request the pool serves from a class;
	// larger buffers are plain allocations.
	MaxPooled = 1 << maxClassBits
)

var (
	classes [numClasses]sync.Pool

	gets     atomic.Uint64 // Get calls served (pooled classes only)
	puts     atomic.Uint64 // Put calls accepted back into a class
	misses   atomic.Uint64 // Gets that had to allocate (empty class)
	oversize atomic.Uint64 // Gets above MaxPooled (never pooled)
)

// classFor returns the class index for a request of n bytes, or -1 if n
// is not pooled.
func classFor(n int) int {
	if n <= 0 || n > MaxPooled {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b < minClassBits {
		b = minClassBits
	}
	return b - minClassBits
}

// Get returns a buffer of length n. Its capacity is the size class
// (callers may append up to cap without reallocating). The buffer is
// NOT zeroed beyond what the previous owner wrote: callers must treat
// it as uninitialized memory and fully overwrite the region they use.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		if n <= 0 {
			return nil
		}
		oversize.Add(1)
		return make([]byte, n)
	}
	gets.Add(1)
	if v := classes[c].Get(); v != nil {
		w := v.(*poolBuf)
		b := w.b
		w.b = nil
		wrapPool.Put(w)
		return b[:n]
	}
	misses.Add(1)
	return make([]byte, n, 1<<(c+minClassBits))
}

// poolBuf wraps the backing array so sync.Pool stores a pointer
// (storing []byte directly allocates a header per Put).
type poolBuf struct{ b []byte }

var wrapPool = sync.Pool{New: func() any { return new(poolBuf) }}

// Put returns b to its size class. Only buffers whose capacity is
// exactly a class size are pooled; anything else (subslices, oversize
// or foreign allocations) is ignored, so Put is safe to call on any
// slice the caller owns. Put(nil) is a no-op.
func Put(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 || c < 1<<minClassBits || c > MaxPooled {
		return
	}
	puts.Add(1)
	w := wrapPool.Get().(*poolBuf)
	w.b = b[:c]
	classes[bits.Len(uint(c-1))-minClassBits].Put(w)
}

// Stats is a point-in-time view of the pool counters.
type Stats struct {
	Gets, Puts, Misses, Oversize uint64
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{
		Gets:     gets.Load(),
		Puts:     puts.Load(),
		Misses:   misses.Load(),
		Oversize: oversize.Load(),
	}
}

// Outstanding estimates buffers currently owned by callers: gets minus
// puts. Buffers dropped to the GC instead of Put stay counted — the
// gauge is an upper bound on live pooled memory holders, and a steadily
// climbing value flags a path that leaks Gets.
func Outstanding() int64 {
	return int64(gets.Load()) - int64(puts.Load())
}

// Publish registers the pool's counters as pull gauges in reg under
// bufpool.*. The pool is process-wide; publishing into several
// registries (one per drive in a multi-drive process) reports the same
// shared numbers in each.
func Publish(reg *telemetry.Registry) {
	reg.Func("bufpool.gets", func() int64 { return int64(gets.Load()) })
	reg.Func("bufpool.puts", func() int64 { return int64(puts.Load()) })
	reg.Func("bufpool.misses", func() int64 { return int64(misses.Load()) })
	reg.Func("bufpool.oversize", func() int64 { return int64(oversize.Load()) })
	reg.Func("bufpool.outstanding", Outstanding)
}
