package bufpool

import (
	"sync"
	"testing"

	"nasd/internal/telemetry"
)

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 512},
		{512, 512},
		{513, 1024},
		{4096, 4096},
		{64 << 10, 64 << 10},
		{(64 << 10) + 1, 128 << 10},
		{MaxPooled, MaxPooled},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Errorf("Get(%d): len = %d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Errorf("Get(%d): cap = %d, want %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestGetZeroAndOversize(t *testing.T) {
	if b := Get(0); b != nil {
		t.Errorf("Get(0) = %v, want nil", b)
	}
	if b := Get(-1); b != nil {
		t.Errorf("Get(-1) = %v, want nil", b)
	}
	before := Snapshot().Oversize
	b := Get(MaxPooled + 1)
	if len(b) != MaxPooled+1 {
		t.Fatalf("oversize len = %d", len(b))
	}
	if got := Snapshot().Oversize; got != before+1 {
		t.Errorf("oversize counter = %d, want %d", got, before+1)
	}
	Put(b) // must be ignored: cap is not a class size
}

func TestReuse(t *testing.T) {
	// sync.Pool may drop entries under GC pressure, so reuse cannot be
	// asserted deterministically; instead verify the returned buffer is
	// well-formed and that Put/Get round-trips preserve class capacity.
	b := Get(4096)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	c := Get(4096)
	if len(c) != 4096 || cap(c) != 4096 {
		t.Fatalf("round-trip: len=%d cap=%d", len(c), cap(c))
	}
	Put(c)
}

func TestPutForeignBufferIgnored(t *testing.T) {
	before := Snapshot().Puts
	Put(nil)
	Put(make([]byte, 100))    // cap 100: not a class
	Put(make([]byte, 0, 768)) // not power of two
	Put(make([]byte, 0, 256)) // below min class
	if got := Snapshot().Puts; got != before {
		t.Errorf("puts advanced by %d on foreign buffers", got-before)
	}
}

func TestSubsliceNotPooled(t *testing.T) {
	b := Get(8192)
	sub := b[100:200] // cap(sub) = 8092, not a class size
	before := Snapshot().Puts
	Put(sub)
	if got := Snapshot().Puts; got != before {
		t.Error("subslice with non-class cap was pooled")
	}
	Put(b)
}

func TestOutstandingTracksGets(t *testing.T) {
	base := Outstanding()
	b := Get(1024)
	if d := Outstanding() - base; d != 1 {
		t.Errorf("outstanding delta after Get = %d, want 1", d)
	}
	Put(b)
	if d := Outstanding() - base; d != 0 {
		t.Errorf("outstanding delta after Put = %d, want 0", d)
	}
}

func TestPublish(t *testing.T) {
	reg := telemetry.NewRegistry()
	Publish(reg)
	Put(Get(2048))
	snap := reg.Snapshot()
	for _, name := range []string{"bufpool.gets", "bufpool.puts", "bufpool.misses", "bufpool.outstanding"} {
		if _, ok := snap.Counters[name]; !ok {
			if _, ok := snap.Gauges[name]; !ok {
				t.Errorf("metric %s not published", name)
			}
		}
	}
}

func TestConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []int{512, 4096, 64 << 10, 1 << 20}
			for i := 0; i < 2000; i++ {
				n := sizes[(g+i)%len(sizes)]
				b := Get(n)
				b[0] = byte(g)
				b[n-1] = byte(i)
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}

func TestSteadyStateAllocFree(t *testing.T) {
	// Warm the class so the pool has an entry, then verify a Get/Put
	// cycle does not allocate. sync.Pool can still be drained by a
	// concurrent GC, so tolerate a tiny average.
	Put(Get(4096))
	avg := testing.AllocsPerRun(200, func() {
		b := Get(4096)
		Put(b)
	})
	if avg > 0.1 {
		t.Errorf("steady-state Get/Put allocates %.2f allocs/op, want ~0", avg)
	}
}
