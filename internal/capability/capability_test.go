package capability

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"nasd/internal/crypt"
)

func testHierarchy(t *testing.T) (*crypt.Hierarchy, crypt.KeyID, crypt.Key) {
	t.Helper()
	h := crypt.NewHierarchy(crypt.NewRandomKey())
	if err := h.AddPartition(1); err != nil {
		t.Fatal(err)
	}
	id, k, err := h.CurrentWorkingKey(1)
	if err != nil {
		t.Fatal(err)
	}
	return h, id, k
}

func basePublic(keyID crypt.KeyID) Public {
	return Public{
		DriveID:   77,
		Partition: 1,
		Object:    42,
		ObjVer:    3,
		Rights:    Read | GetAttr,
		Offset:    0,
		Length:    1 << 20,
		Expiry:    time.Now().Add(time.Hour).UnixNano(),
		Key:       keyID,
	}
}

func baseCheck() Check {
	return Check{
		DriveID: 77, Part: 1, Object: 42, ObjVer: 3,
		Op: Read, Offset: 0, Length: 4096, Now: time.Now(),
	}
}

func TestMintAndValidate(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k)
	body := []byte("READ obj=42 off=0 len=4096 nonce=1")
	if err := Validate(cap.Public, body, cap.SignRequest(body), baseCheck(), h); err != nil {
		t.Fatalf("valid capability rejected: %v", err)
	}
}

func TestPublicEncodeDecodeRoundTrip(t *testing.T) {
	f := func(drive, obj, over, off, length uint64, part uint16, rights uint32, exp int64, kt uint8, kp uint16, kv uint32) bool {
		p := Public{
			DriveID: drive, Partition: part, Object: obj, ObjVer: over,
			Rights: Rights(rights), Offset: off, Length: length, Expiry: exp,
			Key: crypt.KeyID{Type: crypt.KeyType(kt % 4), Partition: kp, Version: kv},
		}
		got, err := DecodePublic(p.Encode())
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePublicBadLength(t *testing.T) {
	if _, err := DecodePublic(make([]byte, 10)); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func TestForgedPrivateRejected(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k)
	forged := cap
	forged.Private[0] ^= 1
	body := []byte("READ")
	err := Validate(cap.Public, body, forged.SignRequest(body), baseCheck(), h)
	if err != ErrBadDigest {
		t.Fatalf("forged private accepted: %v", err)
	}
}

func TestEscalatedRightsRejected(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k) // read-only
	// Client edits the public portion to claim write rights and re-signs
	// with its (now mismatched) private portion.
	escalated := cap.Public
	escalated.Rights |= Write
	body := []byte("WRITE")
	chk := baseCheck()
	chk.Op = Write
	err := Validate(escalated, body, cap.SignRequest(body), chk, h)
	if err != ErrBadDigest {
		t.Fatalf("escalated capability accepted: %v", err)
	}
}

func TestRightsEnforced(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k)
	body := []byte("WRITE")
	chk := baseCheck()
	chk.Op = Write
	if err := Validate(cap.Public, body, cap.SignRequest(body), chk, h); err != ErrRights {
		t.Fatalf("write with read-only capability: %v", err)
	}
}

func TestByteRegionEnforced(t *testing.T) {
	h, id, k := testHierarchy(t)
	pub := basePublic(id)
	pub.Offset = 4096
	pub.Length = 8192
	cap := Mint(pub, k)
	body := []byte("READ")

	for _, tc := range []struct {
		off, n uint64
		want   error
	}{
		{4096, 8192, nil},
		{4096, 4096, nil},
		{8192, 4096, nil},
		{0, 4096, ErrRegion},       // before region
		{4096, 8193, ErrRegion},    // past region end
		{12288, 1, ErrRegion},      // starts at end
		{^uint64(0), 2, ErrRegion}, // overflow attempt
	} {
		chk := baseCheck()
		chk.Offset, chk.Length = tc.off, tc.n
		err := Validate(cap.Public, body, cap.SignRequest(body), chk, h)
		if err != tc.want {
			t.Errorf("region (%d,%d): got %v want %v", tc.off, tc.n, err, tc.want)
		}
	}
}

func TestUnboundedRegion(t *testing.T) {
	h, id, k := testHierarchy(t)
	pub := basePublic(id)
	pub.Offset = 0
	pub.Length = 0 // unbounded
	cap := Mint(pub, k)
	body := []byte("READ")
	chk := baseCheck()
	chk.Offset, chk.Length = 1<<40, 1<<20
	if err := Validate(cap.Public, body, cap.SignRequest(body), chk, h); err != nil {
		t.Fatalf("unbounded region rejected: %v", err)
	}
}

func TestExpiryEnforced(t *testing.T) {
	h, id, k := testHierarchy(t)
	pub := basePublic(id)
	pub.Expiry = time.Now().Add(-time.Second).UnixNano()
	cap := Mint(pub, k)
	body := []byte("READ")
	if err := Validate(cap.Public, body, cap.SignRequest(body), baseCheck(), h); err != ErrExpired {
		t.Fatalf("expired capability: %v", err)
	}
	// Expiry 0 = never expires.
	pub.Expiry = 0
	cap = Mint(pub, k)
	if err := Validate(cap.Public, body, cap.SignRequest(body), baseCheck(), h); err != nil {
		t.Fatalf("never-expiring capability rejected: %v", err)
	}
}

func TestVersionRevocation(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k)
	body := []byte("READ")
	chk := baseCheck()
	chk.ObjVer = 4 // file manager bumped the object's logical version
	if err := Validate(cap.Public, body, cap.SignRequest(body), chk, h); err != ErrStaleVersion {
		t.Fatalf("stale version accepted: %v", err)
	}
}

func TestWorkingKeyRotationRevokes(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k)
	if _, err := h.RotateWorkingKey(1); err != nil {
		t.Fatal(err)
	}
	body := []byte("READ")
	if err := Validate(cap.Public, body, cap.SignRequest(body), baseCheck(), h); err != ErrNoKey {
		t.Fatalf("capability under rotated key: %v", err)
	}
}

func TestWrongDriveAndObject(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k)
	body := []byte("READ")

	chk := baseCheck()
	chk.DriveID = 78
	if err := Validate(cap.Public, body, cap.SignRequest(body), chk, h); err != ErrWrongDrive {
		t.Fatalf("wrong drive: %v", err)
	}
	chk = baseCheck()
	chk.Object = 43
	if err := Validate(cap.Public, body, cap.SignRequest(body), chk, h); err != ErrWrongObject {
		t.Fatalf("wrong object: %v", err)
	}
}

func TestPartitionScopeCapability(t *testing.T) {
	h, id, k := testHierarchy(t)
	pub := basePublic(id)
	pub.Object = 0 // partition scope: any object in partition 1
	pub.Rights = CreateObj | Read
	cap := Mint(pub, k)
	body := []byte("CREATE")
	chk := baseCheck()
	chk.Object = 999
	chk.Op = CreateObj
	chk.Length = 0
	if err := Validate(cap.Public, body, cap.SignRequest(body), chk, h); err != nil {
		t.Fatalf("partition-scope capability rejected: %v", err)
	}
}

func TestTamperedBodyRejected(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k)
	body := []byte("READ obj=42 off=0 len=4096")
	sig := cap.SignRequest(body)
	tampered := []byte("READ obj=42 off=0 len=9999")
	if err := Validate(cap.Public, tampered, sig, baseCheck(), h); err != ErrBadDigest {
		t.Fatalf("tampered body accepted: %v", err)
	}
}

func TestRightsString(t *testing.T) {
	if got := (Read | Write).String(); got != "read|write" {
		t.Errorf("String() = %q", got)
	}
	if got := Rights(0).String(); got != "none" {
		t.Errorf("zero String() = %q", got)
	}
}

func TestRightsHas(t *testing.T) {
	r := Read | GetAttr
	if !r.Has(Read) || !r.Has(Read|GetAttr) {
		t.Fatal("Has false negative")
	}
	if r.Has(Write) || r.Has(Read|Write) {
		t.Fatal("Has false positive")
	}
}

// Property: random bit flips anywhere in the public portion always fail
// validation (the drive recomputes the private portion from the mutated
// fields, which no longer matches the client's request digest).
func TestPublicTamperProperty(t *testing.T) {
	h, id, k := testHierarchy(t)
	cap := Mint(basePublic(id), k)
	body := []byte("READ")
	sig := cap.SignRequest(body)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		enc := cap.Public.Encode()
		enc[rng.Intn(len(enc))] ^= 1 << rng.Intn(8)
		mut, err := DecodePublic(enc)
		if err != nil {
			continue
		}
		if mut == cap.Public {
			continue
		}
		if err := Validate(mut, body, sig, baseCheck(), h); err == nil {
			t.Fatalf("mutated public portion accepted: %+v", mut)
		}
	}
}
