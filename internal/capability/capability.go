// Package capability implements NASD cryptographic capabilities
// (Section 4.1 of the paper; [Gobioff97]).
//
// A capability has a public portion — a description of which rights are
// granted for which object, including the object's approved logical
// version number, an accessible byte region, and an expiration time —
// and a private portion, a keyed digest of the public portion under one
// of the drive's secret keys. The file manager (which shares the drive's
// keys) mints capabilities; the drive validates them without keeping any
// per-capability state: it recomputes the private portion from the
// public fields and its own keys. Clients prove possession of the
// private portion by keying a digest of each request with it; they never
// send the private portion itself.
package capability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"time"

	"nasd/internal/crypt"
)

// Rights is a bitmask of operations a capability authorizes.
type Rights uint32

// Rights bits. A file manager typically grants Read|GetAttr for readers
// and adds Write for writers; SetAttr, Remove, and Version are reserved
// for management paths.
const (
	Read Rights = 1 << iota
	Write
	GetAttr
	SetAttr
	Remove
	Version   // create a copy-on-write version of the object
	CreateObj // create objects within the partition
	PartAdmin // partition administration (resize, set keys)
)

// String lists the granted rights.
func (r Rights) String() string {
	names := []struct {
		bit  Rights
		name string
	}{
		{Read, "read"}, {Write, "write"}, {GetAttr, "getattr"},
		{SetAttr, "setattr"}, {Remove, "remove"}, {Version, "version"},
		{CreateObj, "create"}, {PartAdmin, "admin"},
	}
	s := ""
	for _, n := range names {
		if r&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// Has reports whether all rights in want are granted.
func (r Rights) Has(want Rights) bool { return r&want == want }

// Public is the public portion of a capability. It travels in the clear
// with every request (Figure 5) and fully determines the private portion
// given the drive's keys.
type Public struct {
	DriveID   uint64      // the drive this capability is for
	Partition uint16      // partition holding the object
	Object    uint64      // object identifier (0 = partition-scope rights)
	ObjVer    uint64      // approved logical version number of the object
	Rights    Rights      // operations granted
	Offset    uint64      // start of accessible byte region
	Length    uint64      // length of accessible region (0 = unbounded)
	Expiry    int64       // expiration, nanoseconds since epoch (0 = never)
	Key       crypt.KeyID // which drive key mints/validates this capability
}

// TenantKey renders a partition as the canonical per-tenant metric
// label ("part.<N>"). The capability's partition identity *is* the
// tenant identity in this architecture — the file manager grants a
// client access to a partition, and everything the drive attributes
// per tenant (op counters, latency histograms, QoS budgets to come)
// keys off it. Owning the label here keeps drive telemetry, the fleet
// view, and the bench reports agreeing on one spelling.
func TenantKey(part uint16) string {
	return "part." + strconv.FormatUint(uint64(part), 10)
}

// TenantKey returns the capability's tenant label (see the package
// function): the identity the drive splits per-tenant telemetry by.
func (p *Public) TenantKey() string { return TenantKey(p.Partition) }

// encodedSize is the fixed encoding size of Public.
const encodedSize = 8 + 2 + 8 + 8 + 4 + 8 + 8 + 8 + 1 + 2 + 4

// Encode serializes the public portion canonically (the byte string that
// is digested to form the private portion).
func (p *Public) Encode() []byte {
	b := make([]byte, encodedSize)
	le := binary.LittleEndian
	le.PutUint64(b[0:], p.DriveID)
	le.PutUint16(b[8:], p.Partition)
	le.PutUint64(b[10:], p.Object)
	le.PutUint64(b[18:], p.ObjVer)
	le.PutUint32(b[26:], uint32(p.Rights))
	le.PutUint64(b[30:], p.Offset)
	le.PutUint64(b[38:], p.Length)
	le.PutUint64(b[46:], uint64(p.Expiry))
	b[54] = byte(p.Key.Type)
	le.PutUint16(b[55:], p.Key.Partition)
	le.PutUint32(b[57:], p.Key.Version)
	return b
}

// DecodePublic parses a canonical encoding produced by Encode.
func DecodePublic(b []byte) (Public, error) {
	var p Public
	if len(b) != encodedSize {
		return p, fmt.Errorf("capability: bad public encoding length %d", len(b))
	}
	le := binary.LittleEndian
	p.DriveID = le.Uint64(b[0:])
	p.Partition = le.Uint16(b[8:])
	p.Object = le.Uint64(b[10:])
	p.ObjVer = le.Uint64(b[18:])
	p.Rights = Rights(le.Uint32(b[26:]))
	p.Offset = le.Uint64(b[30:])
	p.Length = le.Uint64(b[38:])
	p.Expiry = int64(le.Uint64(b[46:]))
	p.Key = crypt.KeyID{
		Type:      crypt.KeyType(b[54]),
		Partition: le.Uint16(b[55:]),
		Version:   le.Uint32(b[57:]),
	}
	return p, nil
}

// Capability pairs the public portion with the private portion the
// client holds. Only the file manager (minting) and the client (use)
// ever see Private; it is never transmitted to the drive.
type Capability struct {
	Public  Public
	Private crypt.Key
}

// Mint creates a capability: Private = MAC(key, Encode(Public)).
// key must be the drive key named by pub.Key.
func Mint(pub Public, key crypt.Key) Capability {
	d := crypt.MAC(key, pub.Encode())
	var priv crypt.Key
	copy(priv[:], d[:crypt.KeySize])
	return Capability{Public: pub, Private: priv}
}

// PrivateFor recomputes the private portion from the public fields; this
// is what a drive does on every request, requiring no stored state.
func PrivateFor(pub Public, key crypt.Key) crypt.Key {
	d := crypt.MAC(key, pub.Encode())
	var priv crypt.Key
	copy(priv[:], d[:crypt.KeySize])
	return priv
}

// SignRequest produces the request digest for a request body: a digest
// of body keyed by the capability's private portion. body must encode
// every request field that matters (opcode, arguments, nonce) so a
// tampered request fails verification.
func (c Capability) SignRequest(body []byte) crypt.Digest {
	return crypt.MAC(c.Private, body)
}

// Validation errors. A drive maps these to "send the client back to the
// file manager".
var (
	ErrExpired      = errors.New("capability: expired")
	ErrWrongDrive   = errors.New("capability: issued for a different drive")
	ErrWrongObject  = errors.New("capability: issued for a different object")
	ErrStaleVersion = errors.New("capability: object version revoked")
	ErrRights       = errors.New("capability: operation not permitted")
	ErrRegion       = errors.New("capability: byte range not permitted")
	ErrBadDigest    = errors.New("capability: request digest invalid")
	ErrNoKey        = errors.New("capability: minting key unknown to drive")
)

// Check describes one requested operation for validation.
type Check struct {
	DriveID uint64
	Part    uint16
	Object  uint64
	ObjVer  uint64 // current logical version number of the object
	Op      Rights // the right(s) the operation requires
	Offset  uint64 // start of the byte range touched
	Length  uint64 // length of the byte range touched (0 for non-data ops)
	Now     time.Time
}

// Validate verifies that the capability whose public portion is pub
// authorizes the operation in chk, and that digest is body keyed by the
// capability's private portion. keys resolves the drive's secret keys.
// It is the complete drive-side admission check and keeps no state.
func Validate(pub Public, body []byte, digest crypt.Digest, chk Check, keys *crypt.Hierarchy) error {
	if err := checkPolicy(pub, chk); err != nil {
		return err
	}
	key, err := keys.Lookup(pub.Key)
	if err != nil {
		return ErrNoKey
	}
	priv := PrivateFor(pub, key)
	if !crypt.Verify(priv, body, digest) {
		return ErrBadDigest
	}
	return nil
}
