package capability

import (
	"errors"
	"testing"
	"time"

	"nasd/internal/crypt"
)

// TestVerifierEquivalence drives Verifier.Validate and the stateless
// Validate through the same matrix of good and bad inputs and requires
// identical verdicts — including on cache hits.
func TestVerifierEquivalence(t *testing.T) {
	h, id, k := testHierarchy(t)
	v := NewVerifier(h, 16)
	cap := Mint(basePublic(id), k)
	body := []byte("READ obj=42 off=0 len=4096 nonce=7")
	good := cap.SignRequest(body)

	cases := []struct {
		name   string
		pub    Public
		body   []byte
		digest crypt.Digest
		chk    Check
	}{
		{"valid", cap.Public, body, good, baseCheck()},
		{"bad digest", cap.Public, body, crypt.MAC(crypt.NewRandomKey(), body), baseCheck()},
		{"tampered body", cap.Public, []byte("READ obj=43"), good, baseCheck()},
		{"wrong drive", cap.Public, body, good, func() Check { c := baseCheck(); c.DriveID = 78; return c }()},
		{"wrong object", cap.Public, body, good, func() Check { c := baseCheck(); c.Object = 43; return c }()},
		{"stale version", cap.Public, body, good, func() Check { c := baseCheck(); c.ObjVer = 4; return c }()},
		{"missing right", cap.Public, body, good, func() Check { c := baseCheck(); c.Op = Write; return c }()},
		{"out of region", cap.Public, body, good, func() Check { c := baseCheck(); c.Offset = 2 << 20; c.Length = 4096; return c }()},
		{"expired", cap.Public, body, good, func() Check { c := baseCheck(); c.Now = time.Now().Add(2 * time.Hour); return c }()},
		{"unknown key", func() Public {
			p := cap.Public
			p.Key.Version = 99
			return p
		}(), body, good, baseCheck()},
	}
	// Two passes: the first populates the Verifier cache, the second
	// exercises the hit path. Both must agree with stateless Validate.
	for pass := 0; pass < 2; pass++ {
		for _, tc := range cases {
			want := Validate(tc.pub, tc.body, tc.digest, tc.chk, h)
			got := v.Validate(tc.pub, tc.body, tc.digest, tc.chk)
			if !errors.Is(got, want) && (got == nil) != (want == nil) {
				t.Fatalf("pass %d, %s: Verifier=%v, Validate=%v", pass, tc.name, got, want)
			}
			if want != nil && got == nil || want == nil && got != nil || (want != nil && got.Error() != want.Error()) {
				t.Fatalf("pass %d, %s: Verifier=%v, Validate=%v", pass, tc.name, got, want)
			}
		}
	}
	if st := v.Cache().Stats(); st.Hits == 0 {
		t.Fatal("second pass produced no cache hits")
	}
}

// TestVerifierRotationRevokes is the security property the cache must
// not break: after RotateWorkingKey, a capability minted under the old
// working key is rejected even though its derived secrets are still
// sitting in the cache.
func TestVerifierRotationRevokes(t *testing.T) {
	h, id, k := testHierarchy(t)
	v := NewVerifier(h, 16)
	cap := Mint(basePublic(id), k)
	body := []byte("READ obj=42")
	dig := cap.SignRequest(body)

	if err := v.Validate(cap.Public, body, dig, baseCheck()); err != nil {
		t.Fatalf("pre-rotation validate: %v", err)
	}
	if v.Cache().Len() == 0 {
		t.Fatal("validate did not populate the cache")
	}
	if _, err := h.RotateWorkingKey(1); err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(cap.Public, body, dig, baseCheck()); !errors.Is(err, ErrNoKey) {
		t.Fatalf("post-rotation validate = %v, want ErrNoKey (cached entry must not bypass rotation)", err)
	}

	// A capability minted under the NEW working key validates, and the
	// drive never saw it before — pure cold path after rotation.
	nid, nk, err := h.CurrentWorkingKey(1)
	if err != nil {
		t.Fatal(err)
	}
	pub := basePublic(nid)
	ncap := Mint(pub, nk)
	if err := v.Validate(ncap.Public, body, ncap.SignRequest(body), baseCheck()); err != nil {
		t.Fatalf("post-rotation fresh capability rejected: %v", err)
	}
}

// TestVerifierKeyReplacementRecomputes covers the unversioned-key edge:
// replacing the drive key via SetKey keeps the same KeyID, so the
// per-request Lookup alone cannot catch it — the cached entry's pinned
// minting key must force recomputation.
func TestVerifierKeyReplacementRecomputes(t *testing.T) {
	h, _, _ := testHierarchy(t)
	v := NewVerifier(h, 16)
	driveID := crypt.KeyID{Type: crypt.DriveKey}
	dk, err := h.Lookup(driveID)
	if err != nil {
		t.Fatal(err)
	}
	pub := basePublic(driveID)
	cap := Mint(pub, dk)
	body := []byte("READ obj=42")
	if err := v.Validate(cap.Public, body, cap.SignRequest(body), baseCheck()); err != nil {
		t.Fatalf("validate under original drive key: %v", err)
	}
	// Replace the drive key in place (same KeyID).
	if err := h.SetKey(driveID, crypt.NewRandomKey()); err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(cap.Public, body, cap.SignRequest(body), baseCheck()); !errors.Is(err, ErrBadDigest) {
		t.Fatalf("capability under replaced key = %v, want ErrBadDigest", err)
	}
	// And a capability minted under the replacement is accepted.
	nk, _ := h.Lookup(driveID)
	ncap := Mint(pub, nk)
	if err := v.Validate(ncap.Public, body, ncap.SignRequest(body), baseCheck()); err != nil {
		t.Fatalf("capability under replacement key rejected: %v", err)
	}
}
