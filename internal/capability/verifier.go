package capability

import (
	"nasd/internal/crypt"
)

// verified is a memoized validation secret: the private portion derived
// from a capability's public fields plus a reusable HMAC signer keyed
// by it, and the minting key the derivation used.
type verified struct {
	mint   crypt.Key // the drive key the entry was derived under
	signer *crypt.Signer
}

// Verifier performs drive-side capability validation with a digest fast
// path. The stateless check recomputes the private portion
// (HMAC(working key, Encode(Public))) and builds fresh HMAC state for
// the request digest on every request; Verifier memoizes both per
// distinct Public, so the steady state of a streaming client is one
// digest over the request body and zero key-schedule setups.
//
// Revocation semantics are identical to the stateless Validate:
//
//   - Every request still performs keys.Lookup(pub.Key), so rotating a
//     working key (bulk revocation) rejects old capabilities
//     immediately — the cache only skips the private-portion HMAC, not
//     the lookup.
//   - A cache entry additionally pins the minting key it was derived
//     under; if Lookup returns a different key for the same KeyID
//     (explicit SetKey of a master/drive key at an unversioned ID), the
//     entry is recomputed rather than trusted.
//   - Expiry, rights, region, and version checks run per request,
//     before any digest work, exactly as in Validate.
//
// Safe for concurrent use.
type Verifier struct {
	keys  *crypt.Hierarchy
	cache *crypt.DigestCache[Public, verified]
}

// DefaultVerifierCap is the default capacity of a Verifier's cache —
// comfortably more than the number of distinct in-flight capabilities a
// drive sees (one per open file per client), small enough to be
// negligible state.
const DefaultVerifierCap = 1024

// NewVerifier returns a Verifier over keys with a cache of the given
// capacity (<= 0 selects DefaultVerifierCap).
func NewVerifier(keys *crypt.Hierarchy, capacity int) *Verifier {
	if capacity <= 0 {
		capacity = DefaultVerifierCap
	}
	return &Verifier{
		keys:  keys,
		cache: crypt.NewDigestCache[Public, verified](capacity),
	}
}

// Cache exposes the underlying digest cache for telemetry publication
// and stats.
func (v *Verifier) Cache() *crypt.DigestCache[Public, verified] { return v.cache }

// Validate is the cached equivalent of the package-level Validate: it
// verifies that the capability whose public portion is pub authorizes
// the operation in chk and that digest is body keyed by the
// capability's private portion. It returns exactly the errors Validate
// returns for the same inputs.
func (v *Verifier) Validate(pub Public, body []byte, digest crypt.Digest, chk Check) error {
	if err := checkPolicy(pub, chk); err != nil {
		return err
	}
	// The key lookup is NOT cached: it is a cheap map read, and doing
	// it per request is what makes key rotation revoke immediately.
	key, err := v.keys.Lookup(pub.Key)
	if err != nil {
		return ErrNoKey
	}
	ent, ok := v.cache.Get(pub)
	if !ok || ent.mint != key {
		priv := PrivateFor(pub, key)
		ent = verified{mint: key, signer: crypt.NewSigner(priv)}
		v.cache.Put(pub, ent)
	}
	if !ent.signer.Verify(body, digest) {
		return ErrBadDigest
	}
	return nil
}

// checkPolicy runs the non-cryptographic admission checks shared by
// Validate and Verifier.Validate.
func checkPolicy(pub Public, chk Check) error {
	if pub.DriveID != chk.DriveID {
		return ErrWrongDrive
	}
	if pub.Partition != chk.Part || (pub.Object != 0 && pub.Object != chk.Object) {
		return ErrWrongObject
	}
	// Partition-scope capabilities (Object 0) are not bound to one
	// object's logical version; revocation for them is expiry or key
	// rotation. Object capabilities die when the version changes.
	if pub.Object != 0 && pub.ObjVer != chk.ObjVer {
		return ErrStaleVersion
	}
	if !pub.Rights.Has(chk.Op) {
		return ErrRights
	}
	if pub.Expiry != 0 && chk.Now.UnixNano() > pub.Expiry {
		return ErrExpired
	}
	if chk.Length > 0 && pub.Length != 0 {
		end := chk.Offset + chk.Length
		capEnd := pub.Offset + pub.Length
		if chk.Offset < pub.Offset || end > capEnd || end < chk.Offset {
			return ErrRegion
		}
	} else if chk.Length > 0 && pub.Offset > chk.Offset {
		return ErrRegion
	}
	return nil
}
