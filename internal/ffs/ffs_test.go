package ffs

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"nasd/internal/blockdev"
)

func newTestFS(t *testing.T) (*FS, *blockdev.MemDisk) {
	t.Helper()
	dev := blockdev.NewMemDisk(4096, 8192)
	fs, err := Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestCreateWriteRead(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/hello.txt"); err != nil {
		t.Fatal(err)
	}
	data := []byte("fast file system")
	if err := fs.Write("/hello.txt", 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/hello.txt", 0, 100)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read = %q, %v", got, err)
	}
	size, isDir, err := fs.Stat("/hello.txt")
	if err != nil || size != uint64(len(data)) || isDir {
		t.Fatalf("stat = %d, %v, %v", size, isDir, err)
	}
}

func TestHierarchy(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Mkdir("/usr"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/usr/local"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/usr/local/conf"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/usr/local")
	if err != nil || len(names) != 1 || names[0] != "conf" {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	if _, _, err := fs.Stat("/usr/local/conf"); err != nil {
		t.Fatal(err)
	}
	// Walk through a file fails.
	if _, _, err := fs.Stat("/usr/local/conf/x"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("walk through file: %v", err)
	}
	// Path validation.
	if err := fs.Create("relative"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("relative path: %v", err)
	}
	if err := fs.Create("/a/../b"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("dotdot: %v", err)
	}
}

func TestNamespaceErrors(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/f"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := fs.Read("/missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing read: %v", err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/d", 0, 1); !errors.Is(err, ErrIsDir) {
		t.Fatalf("read dir: %v", err)
	}
	if err := fs.Create("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty: %v", err)
	}
}

func TestRemoveFreesBlocks(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/big"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/big", 0, make([]byte, 200<<10)); err != nil {
		t.Fatal(err)
	}
	free := fs.lay.FreeBlocks()
	if err := fs.Remove("/big"); err != nil {
		t.Fatal(err)
	}
	if fs.lay.FreeBlocks() <= free {
		t.Fatal("remove freed nothing")
	}
	if _, _, err := fs.Stat("/big"); !errors.Is(err, ErrNotFound) {
		t.Fatal("file survives remove")
	}
}

func TestRename(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/a", 0, []byte("move me")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a", "/sub/b"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/sub/b", 0, 7)
	if err != nil || string(got) != "move me" {
		t.Fatalf("after rename: %q, %v", got, err)
	}
	if _, _, err := fs.Stat("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old name survives")
	}
	// Same-directory rename.
	if err := fs.Rename("/sub/b", "/sub/c"); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.ReadDir("/sub")
	if len(names) != 1 || names[0] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestTruncateAndRegrow(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/t"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/t", 0, bytes.Repeat([]byte{9}, 50_000)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/t", 100); err != nil {
		t.Fatal(err)
	}
	size, _, _ := fs.Stat("/t")
	if size != 100 {
		t.Fatalf("size = %d", size)
	}
	got, _ := fs.Read("/t", 0, 1000)
	if len(got) != 100 {
		t.Fatalf("read %d bytes after truncate", len(got))
	}
}

func TestWriteBehindVsSyncAck(t *testing.T) {
	fs, dev := newTestFS(t)
	if err := fs.Create("/small"); err != nil {
		t.Fatal(err)
	}
	_, w0 := dev.Stats()
	// Small write: acknowledged from cache, data blocks stay dirty (the
	// inode itself is written through).
	if err := fs.Write("/small", 0, make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}
	if fs.CacheStats().WriteBacks != 0 {
		t.Fatal("small write forced a flush")
	}
	// Large write: flushed before returning.
	if err := fs.Create("/large"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/large", 0, make([]byte, 128<<10)); err != nil {
		t.Fatal(err)
	}
	if fs.CacheStats().WriteBacks == 0 {
		t.Fatal("large write not flushed")
	}
	_, w1 := dev.Stats()
	if w1 <= w0 {
		t.Fatal("no device writes at all")
	}
}

func TestPersistenceAcrossMount(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 8192)
	fs, err := Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/etc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	want := []byte("root:x:0:0")
	if err := fs.Write("/etc/passwd", 0, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	fs2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Read("/etc/passwd", 0, 100)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("after remount: %q, %v", got, err)
	}
	names, err := fs2.ReadDir("/")
	if err != nil || len(names) != 1 || names[0] != "etc" {
		t.Fatalf("root listing = %v, %v", names, err)
	}
}

func TestSparseFiles(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Create("/sparse"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/sparse", 100_000, []byte("end")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/sparse", 0, 16)
	if err != nil || !bytes.Equal(got, make([]byte, 16)) {
		t.Fatalf("hole = %v, %v", got, err)
	}
	got, _ = fs.Read("/sparse", 100_000, 3)
	if string(got) != "end" {
		t.Fatalf("tail = %q", got)
	}
}

// Property: random writes mirrored against an in-memory model always
// read back identically, including across a sync + remount.
func TestRandomOpsEquivalence(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 16384)
	fs, err := Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/rand"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	model := []byte{}
	for i := 0; i < 60; i++ {
		off := uint64(rng.Intn(150_000))
		n := rng.Intn(30_000) + 1
		data := make([]byte, n)
		rng.Read(data)
		if err := fs.Write("/rand", off, data); err != nil {
			t.Fatal(err)
		}
		if int(off)+n > len(model) {
			model = append(model, make([]byte, int(off)+n-len(model))...)
		}
		copy(model[off:], data)
	}
	got, err := fs.Read("/rand", 0, len(model))
	if err != nil || !bytes.Equal(got, model) {
		t.Fatalf("pre-sync mismatch: %v", err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	got, err = fs2.Read("/rand", 0, len(model))
	if err != nil || !bytes.Equal(got, model) {
		t.Fatalf("post-remount mismatch: %v", err)
	}
}

func TestManyFiles(t *testing.T) {
	fs, _ := newTestFS(t)
	if err := fs.Mkdir("/many"); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 50; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := fs.Create("/many/" + name); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write("/many/"+name, 0, []byte(name)); err != nil {
			t.Fatal(err)
		}
		want = append(want, name)
	}
	names, err := fs.ReadDir("/many")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	sort.Strings(want)
	if len(names) != len(want) {
		t.Fatalf("%d names, want %d", len(names), len(want))
	}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	// Spot-check contents.
	got, err := fs.Read("/many/"+want[7], 0, 10)
	if err != nil || string(got) != want[7] {
		t.Fatalf("content = %q, %v", got, err)
	}
}
