// Package ffs is a small FFS-flavoured local filesystem — the baseline
// the paper measures the NASD object system against in Figure 6 ("a
// variant of Berkeley's FFS").
//
// It is a real local filesystem over a block device: a hierarchical
// namespace whose directories are files, inode-style metadata, and a
// buffer cache. Two FFS behaviours that matter to the comparison are
// reproduced:
//
//   - write acknowledgement: writes of up to WriteBehindLimit (64 KB)
//     complete from the cache; larger writes flush synchronously to the
//     device ("it acknowledges immediately for writes of up to 64 KB
//     (write-behind), and otherwise waits for disk media");
//   - allocation: blocks are allocated first-fit with no object
//     contiguity hint, so files interleave after churn — the layout
//     difference that costs FFS half its miss bandwidth in Figure 6,
//     versus the NASD object system's clustering.
//
// Compared with the NASD object system it has no partitions, quotas,
// capabilities, versions, or attributes beyond size and times: it is a
// local filesystem, not a network object store.
package ffs

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"nasd/internal/blockdev"
	"nasd/internal/cache"
	"nasd/internal/layout"
	"nasd/internal/rpc"
)

// WriteBehindLimit is the largest write acknowledged from cache.
const WriteBehindLimit = 64 << 10

// Errors.
var (
	ErrNotFound = errors.New("ffs: no such file or directory")
	ErrExists   = errors.New("ffs: file exists")
	ErrNotDir   = errors.New("ffs: not a directory")
	ErrIsDir    = errors.New("ffs: is a directory")
	ErrNotEmpty = errors.New("ffs: directory not empty")
	ErrBadPath  = errors.New("ffs: invalid path")
)

// inode flag bits.
const flagDir uint16 = 1

// FS is a mounted filesystem.
type FS struct {
	mu    sync.Mutex
	lay   *layout.Store
	cache *cache.BlockCache
	root  uint64 // root directory file ID
}

// Format creates an empty filesystem on dev.
func Format(dev blockdev.Device) (*FS, error) {
	lay, err := layout.Format(dev, layout.FormatOptions{})
	if err != nil {
		return nil, err
	}
	fs := newFS(lay, dev)
	// Root directory: the first allocated file.
	rootID, err := fs.allocFile(true)
	if err != nil {
		return nil, err
	}
	fs.root = rootID
	if err := fs.writeAll(rootID, encodeEntries(nil)); err != nil {
		return nil, err
	}
	return fs, nil
}

// Open mounts an existing filesystem.
func Open(dev blockdev.Device) (*FS, error) {
	lay, err := layout.Open(dev)
	if err != nil {
		return nil, err
	}
	fs := newFS(lay, dev)
	fs.root = 1 // the first file allocated by Format
	if _, ok := lay.FindOnode(fs.root); !ok {
		return nil, fmt.Errorf("ffs: root inode missing")
	}
	return fs, nil
}

func newFS(lay *layout.Store, dev blockdev.Device) *FS {
	c := cache.New(dev, 1024)
	lay.SetDataIO(c)
	return &FS{lay: lay, cache: c}
}

// allocFile creates a fresh inode and returns its file ID.
func (fs *FS) allocFile(dir bool) (uint64, error) {
	idx, err := fs.lay.AllocOnode()
	if err != nil {
		return 0, err
	}
	id := fs.lay.NextObjectID()
	var flags uint16
	if dir {
		flags = flagDir
	}
	o := layout.Onode{ObjectID: id, Partition: 1, Flags: flags, Version: 1}
	if err := fs.lay.WriteOnode(idx, &o); err != nil {
		return 0, err
	}
	return id, nil
}

func (fs *FS) inode(id uint64) (int64, layout.Onode, error) {
	idx, ok := fs.lay.FindOnode(id)
	if !ok {
		return 0, layout.Onode{}, ErrNotFound
	}
	o, err := fs.lay.ReadOnode(idx)
	return idx, o, err
}

// --- raw file IO (by file ID) ---------------------------------------------

func (fs *FS) readAll(id uint64) ([]byte, error) {
	_, o, err := fs.inode(id)
	if err != nil {
		return nil, err
	}
	return fs.readRange(&o, 0, int(o.Size))
}

func (fs *FS) readRange(o *layout.Onode, off uint64, n int) ([]byte, error) {
	if off >= o.Size {
		return nil, nil
	}
	if max := o.Size - off; uint64(n) > max {
		n = int(max)
	}
	bs := uint64(fs.lay.BlockSize())
	out := make([]byte, n)
	buf := make([]byte, bs)
	for done := 0; done < n; {
		cur := off + uint64(done)
		fb := int64(cur / bs)
		within := cur % bs
		chunk := int(bs - within)
		if chunk > n-done {
			chunk = n - done
		}
		phys, err := fs.lay.BMap(o, fb)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			for i := 0; i < chunk; i++ {
				out[done+i] = 0
			}
		} else {
			if err := fs.cache.ReadBlock(phys, buf); err != nil {
				return nil, err
			}
			copy(out[done:done+chunk], buf[within:])
		}
		done += chunk
	}
	return out, nil
}

func (fs *FS) writeRange(idx int64, o *layout.Onode, off uint64, data []byte) error {
	bs := uint64(fs.lay.BlockSize())
	buf := make([]byte, bs)
	for done := 0; done < len(data); {
		cur := off + uint64(done)
		fb := int64(cur / bs)
		within := cur % bs
		chunk := int(bs - within)
		if chunk > len(data)-done {
			chunk = len(data) - done
		}
		prev, err := fs.lay.BMap(o, fb)
		if err != nil {
			return err
		}
		// First-fit allocation, no contiguity hint: classic FFS-era
		// fragmentation behaviour.
		phys, err := fs.lay.BMapAlloc(o, fb, 0)
		if err != nil {
			return err
		}
		if within == 0 && chunk == int(bs) {
			copy(buf, data[done:done+chunk])
		} else {
			if prev == 0 {
				for i := range buf {
					buf[i] = 0
				}
			} else if err := fs.cache.ReadBlock(phys, buf); err != nil {
				return err
			}
			copy(buf[within:], data[done:done+chunk])
		}
		if err := fs.cache.WriteBlock(phys, buf); err != nil {
			return err
		}
		done += chunk
	}
	if end := off + uint64(len(data)); end > o.Size {
		o.Size = end
	}
	if err := fs.lay.WriteOnode(idx, o); err != nil {
		return err
	}
	// FFS acknowledgement rule: large writes wait for the media.
	if len(data) > WriteBehindLimit {
		return fs.cache.Flush()
	}
	return nil
}

func (fs *FS) writeAll(id uint64, data []byte) error {
	idx, o, err := fs.inode(id)
	if err != nil {
		return err
	}
	if err := fs.writeRange(idx, &o, 0, data); err != nil {
		return err
	}
	if uint64(len(data)) < o.Size {
		return fs.truncate(idx, &o, uint64(len(data)))
	}
	return nil
}

func (fs *FS) truncate(idx int64, o *layout.Onode, size uint64) error {
	bs := uint64(fs.lay.BlockSize())
	first := (size + bs - 1) / bs
	last := (o.Size + bs - 1) / bs
	for fb := first; fb < last; fb++ {
		phys, err := fs.lay.BMap(o, int64(fb))
		if err != nil {
			return err
		}
		if phys != 0 {
			fs.cache.Invalidate(phys)
		}
		if _, err := fs.lay.UnmapBlock(o, int64(fb)); err != nil {
			return err
		}
	}
	o.Size = size
	return fs.lay.WriteOnode(idx, o)
}

// --- directories --------------------------------------------------------------

type dirEntry struct {
	name  string
	id    uint64
	isDir bool
}

func encodeEntries(ents []dirEntry) []byte {
	var e rpc.Encoder
	e.U32(uint32(len(ents)))
	for _, ent := range ents {
		e.String(ent.name)
		e.U64(ent.id)
		if ent.isDir {
			e.U8(1)
		} else {
			e.U8(0)
		}
	}
	return e.Bytes()
}

func decodeEntries(b []byte) ([]dirEntry, error) {
	if len(b) == 0 {
		return nil, nil
	}
	d := rpc.NewDecoder(b)
	n := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	out := make([]dirEntry, 0, n)
	for i := 0; i < n; i++ {
		ent := dirEntry{name: d.String(), id: d.U64(), isDir: d.U8() == 1}
		if d.Err() != nil {
			return nil, d.Err()
		}
		out = append(out, ent)
	}
	return out, nil
}

func (fs *FS) readDirFile(id uint64) ([]dirEntry, error) {
	data, err := fs.readAll(id)
	if err != nil {
		return nil, err
	}
	return decodeEntries(data)
}

func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrBadPath
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			return nil, ErrBadPath
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// walk resolves path to (file ID, isDir). Caller holds mu.
func (fs *FS) walk(path string) (uint64, bool, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, false, err
	}
	cur, isDir := fs.root, true
	for _, name := range parts {
		if !isDir {
			return 0, false, ErrNotDir
		}
		ents, err := fs.readDirFile(cur)
		if err != nil {
			return 0, false, err
		}
		found := false
		for _, ent := range ents {
			if ent.name == name {
				cur, isDir = ent.id, ent.isDir
				found = true
				break
			}
		}
		if !found {
			return 0, false, ErrNotFound
		}
	}
	return cur, isDir, nil
}

func (fs *FS) walkParent(path string) (uint64, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, "", err
	}
	if len(parts) == 0 {
		return 0, "", ErrBadPath
	}
	dir := "/" + strings.Join(parts[:len(parts)-1], "/")
	id, isDir, err := fs.walk(dir)
	if err != nil {
		return 0, "", err
	}
	if !isDir {
		return 0, "", ErrNotDir
	}
	return id, parts[len(parts)-1], nil
}

// --- public API -----------------------------------------------------------------

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, err := fs.createLocked(path, true)
	return err
}

// Create makes an empty file.
func (fs *FS) Create(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, err := fs.createLocked(path, false)
	return err
}

func (fs *FS) createLocked(path string, dir bool) (uint64, error) {
	parent, name, err := fs.walkParent(path)
	if err != nil {
		return 0, err
	}
	ents, err := fs.readDirFile(parent)
	if err != nil {
		return 0, err
	}
	for _, ent := range ents {
		if ent.name == name {
			return 0, ErrExists
		}
	}
	id, err := fs.allocFile(dir)
	if err != nil {
		return 0, err
	}
	if dir {
		if err := fs.writeAll(id, encodeEntries(nil)); err != nil {
			return 0, err
		}
	}
	ents = append(ents, dirEntry{name: name, id: id, isDir: dir})
	return id, fs.writeAll(parent, encodeEntries(ents))
}

// Write stores data at off, extending the file. Writes larger than
// WriteBehindLimit are flushed through to the device before returning.
func (fs *FS) Write(path string, off uint64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	id, isDir, err := fs.walk(path)
	if err != nil {
		return err
	}
	if isDir {
		return ErrIsDir
	}
	idx, o, err := fs.inode(id)
	if err != nil {
		return err
	}
	return fs.writeRange(idx, &o, off, data)
}

// Read returns up to n bytes at off, clipped at file size.
func (fs *FS) Read(path string, off uint64, n int) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	id, isDir, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if isDir {
		return nil, ErrIsDir
	}
	_, o, err := fs.inode(id)
	if err != nil {
		return nil, err
	}
	return fs.readRange(&o, off, n)
}

// Stat returns the file size.
func (fs *FS) Stat(path string) (size uint64, isDir bool, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	id, d, err := fs.walk(path)
	if err != nil {
		return 0, false, err
	}
	_, o, err := fs.inode(id)
	if err != nil {
		return 0, false, err
	}
	return o.Size, d, nil
}

// Truncate resizes a file.
func (fs *FS) Truncate(path string, size uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	id, isDir, err := fs.walk(path)
	if err != nil {
		return err
	}
	if isDir {
		return ErrIsDir
	}
	idx, o, err := fs.inode(id)
	if err != nil {
		return err
	}
	if size < o.Size {
		return fs.truncate(idx, &o, size)
	}
	o.Size = size
	return fs.lay.WriteOnode(idx, &o)
}

// Remove unlinks a file or empty directory.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.walkParent(path)
	if err != nil {
		return err
	}
	ents, err := fs.readDirFile(parent)
	if err != nil {
		return err
	}
	pos := -1
	var victim dirEntry
	for i, ent := range ents {
		if ent.name == name {
			pos, victim = i, ent
			break
		}
	}
	if pos < 0 {
		return ErrNotFound
	}
	if victim.isDir {
		children, err := fs.readDirFile(victim.id)
		if err != nil {
			return err
		}
		if len(children) > 0 {
			return ErrNotEmpty
		}
	}
	idx, o, err := fs.inode(victim.id)
	if err != nil {
		return err
	}
	if err := fs.lay.ForEachBlock(&o, func(phys int64, isPtr bool) error {
		if !isPtr && fs.lay.RefCount(phys) == 1 {
			fs.cache.Invalidate(phys)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := fs.lay.FreeObjectBlocks(&o); err != nil {
		return err
	}
	if err := fs.lay.WriteOnode(idx, &layout.Onode{}); err != nil {
		return err
	}
	ents = append(ents[:pos], ents[pos+1:]...)
	return fs.writeAll(parent, encodeEntries(ents))
}

// Rename moves an entry between directories.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	op, oldName, err := fs.walkParent(oldPath)
	if err != nil {
		return err
	}
	np, newName, err := fs.walkParent(newPath)
	if err != nil {
		return err
	}
	oldEnts, err := fs.readDirFile(op)
	if err != nil {
		return err
	}
	pos := -1
	var moving dirEntry
	for i, ent := range oldEnts {
		if ent.name == oldName {
			pos, moving = i, ent
			break
		}
	}
	if pos < 0 {
		return ErrNotFound
	}
	same := op == np
	newEnts := oldEnts
	if !same {
		newEnts, err = fs.readDirFile(np)
		if err != nil {
			return err
		}
	}
	for _, ent := range newEnts {
		if ent.name == newName {
			return ErrExists
		}
	}
	moving.name = newName
	if same {
		oldEnts[pos] = moving
		return fs.writeAll(op, encodeEntries(oldEnts))
	}
	oldEnts = append(oldEnts[:pos], oldEnts[pos+1:]...)
	newEnts = append(newEnts, moving)
	if err := fs.writeAll(op, encodeEntries(oldEnts)); err != nil {
		return err
	}
	return fs.writeAll(np, encodeEntries(newEnts))
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(path string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	id, isDir, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if !isDir {
		return nil, ErrNotDir
	}
	ents, err := fs.readDirFile(id)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ents))
	for i, ent := range ents {
		out[i] = ent.name
	}
	return out, nil
}

// Sync flushes all buffered data and metadata to the device.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.cache.Flush(); err != nil {
		return err
	}
	return fs.lay.Sync()
}

// CacheStats exposes buffer-cache counters for tests and comparisons.
func (fs *FS) CacheStats() cache.Stats { return fs.cache.Stats() }
