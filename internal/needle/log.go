package needle

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"nasd/internal/blockdev"
	"nasd/internal/bufpool"
)

// segment is one fixed-size run of blocks in a partition's log.
// Segments are append-only: sealed segments (all but the active one)
// never change until compaction frees them wholesale.
type segment struct {
	seq     uint64  // allocation order; also stamped into every record
	blocks  []int64 // physical blocks, addressed as a contiguous byte range
	written int64   // valid bytes
	// live counts bytes of records still referenced: each object's
	// current record plus every tombstone (tombstones must survive
	// compaction so a full-scan recovery replays deletions). The
	// written-live difference is the dead space compaction reclaims.
	live int64
}

// entry is one object's slot in the in-memory index.
type entry struct {
	seg  *segment
	off  int64 // record offset within the segment
	size int64 // encoded record length
	lsn  uint64
	info Info
}

// Log is one partition's needle log. All fields are guarded by mu;
// readers of the index and of sealed data hold the read side.
type Log struct {
	mu   sync.RWMutex
	part uint16

	epoch   uint64
	nextSeq uint64
	nextLSN uint64

	segs []*segment // ascending seq
	act  *segment   // append target (last of segs), nil before first append

	// pending buffers the active segment's bytes past flushed (the
	// block-aligned durable frontier). Full blocks are written to the
	// device as appends complete them; the partial tail block only goes
	// out on sync. Always shorter than one block after an append.
	pending []byte
	flushed int64

	index map[uint64]*entry

	compacting atomic.Bool

	e *Engine
}

func (l *Log) segBytes() int64 {
	return int64(l.e.cfg.SegmentBlocks) * l.e.bs
}

func (l *Log) findSeg(seq uint64) *segment {
	for _, s := range l.segs {
		if s.seq == seq {
			return s
		}
	}
	return nil
}

// rollLocked seals the active segment and opens a fresh one: quota is
// charged for the whole segment up front, blocks come from the space
// allocator, and the updated segment table is persisted durably before
// any record lands in the new segment.
func (l *Log) rollLocked() error {
	if err := l.syncTailLocked(); err != nil {
		return err
	}
	n := l.e.cfg.SegmentBlocks
	if err := l.e.cfg.Quota.ChargeBlocks(l.part, int64(n)); err != nil {
		return err
	}
	blocks, err := l.e.cfg.Space.AllocBlocks(n)
	if err != nil {
		l.e.cfg.Quota.SettleBlocks(l.part, -int64(n))
		return err
	}
	seg := &segment{seq: l.nextSeq, blocks: blocks}
	prevAct, prevPending, prevFlushed := l.act, l.pending, l.flushed
	l.nextSeq++
	l.segs = append(l.segs, seg)
	l.act = seg
	l.pending = nil
	l.flushed = 0
	if err := l.saveSegmentsLocked(); err != nil {
		l.nextSeq--
		l.segs = l.segs[:len(l.segs)-1]
		l.act, l.pending, l.flushed = prevAct, prevPending, prevFlushed
		for _, b := range blocks {
			_ = l.e.cfg.Space.FreeBlock(b)
		}
		l.e.cfg.Quota.SettleBlocks(l.part, -int64(n))
		return err
	}
	return nil
}

// appendLocked stamps r with the log's epoch, active segment, and (if
// unset) next LSN, and appends it. Compaction passes records carrying
// their original LSN. Returns where the record landed.
func (l *Log) appendLocked(r *record) (*segment, int64, error) {
	need := r.wireSize()
	if need > l.segBytes() {
		return nil, 0, ErrTooBig
	}
	if l.act == nil || l.act.written+need > l.segBytes() {
		if err := l.rollLocked(); err != nil {
			return nil, 0, err
		}
	}
	r.epoch = l.epoch
	r.seg = l.act.seq
	if r.lsn == 0 {
		r.lsn = l.nextLSN
		l.nextLSN++
	}
	off := l.act.written
	l.pending = append(l.pending, r.encode()...)
	l.act.written += need
	l.act.live += need
	bs := l.e.bs
	buf := make([]byte, bs)
	for l.flushed+bs <= l.act.written {
		copy(buf, l.pending[:bs])
		if err := l.e.cfg.Dev.WriteBlock(l.act.blocks[l.flushed/bs], buf); err != nil {
			return nil, 0, err
		}
		m := copy(l.pending, l.pending[bs:])
		l.pending = l.pending[:m]
		l.flushed += bs
	}
	l.e.countAppend()
	return l.act, off, nil
}

// syncTailLocked writes the active segment's partial tail block to the
// device. flushed does not advance (the block is not full), so a later
// append rewrites the same block with more data — syncing is
// idempotent.
func (l *Log) syncTailLocked() error {
	if l.act == nil || l.flushed >= l.act.written {
		return nil
	}
	buf := make([]byte, l.e.bs)
	copy(buf, l.pending)
	return l.e.cfg.Dev.WriteBlock(l.act.blocks[l.flushed/l.e.bs], buf)
}

// readRangeLocked reads n bytes at byte offset off of seg, serving
// not-yet-flushed active-segment bytes from the pending buffer. It
// returns the number of device block reads issued (the media-I/O cost
// of the access). Caller holds mu in either mode.
//
// The returned buffer is pooled (bufpool) and owned by the caller;
// block-aligned spans whose physical blocks are contiguous on the
// device are read straight into it with one vectored device call, so a
// sequential needle read costs a single copy (device to result).
func (l *Log) readRangeLocked(seg *segment, off, n int64) ([]byte, int64, error) {
	if n < 0 || off < 0 || off+n > seg.written {
		return nil, 0, fmt.Errorf("needle: read [%d,%d) beyond segment end %d", off, off+n, seg.written)
	}
	out := bufpool.Get(int(n))
	blockSize := l.e.bs
	var buf []byte // bounce buffer for partial blocks, allocated lazily
	defer func() { bufpool.Put(buf) }()
	var ios int64
	for done := int64(0); done < n; {
		cur := off + done
		if seg == l.act && cur >= l.flushed {
			// Everything from here on is in the pending buffer.
			copy(out[done:], l.pending[cur-l.flushed:])
			break
		}
		idx := cur / blockSize
		within := cur % blockSize
		if within == 0 && n-done >= blockSize {
			// Aligned full-block span: extend across physically
			// contiguous blocks (allocators hand out runs, so this is
			// the common case) and read directly into the result. For
			// the active segment the run must stop at the flush
			// horizon; flushed is always a whole number of blocks.
			limit := (n - done) / blockSize
			run := int64(1)
			for run < limit &&
				seg.blocks[idx+run] == seg.blocks[idx]+run &&
				(seg != l.act || cur+(run+1)*blockSize <= l.flushed) {
				run++
			}
			if err := blockdev.ReadBlocks(l.e.cfg.Dev, seg.blocks[idx], out[done:done+run*blockSize]); err != nil {
				bufpool.Put(out)
				return nil, ios, err
			}
			ios += run
			done += run * blockSize
			continue
		}
		chunk := blockSize - within
		if chunk > n-done {
			chunk = n - done
		}
		if buf == nil {
			buf = bufpool.Get(int(blockSize))
		}
		if err := l.e.cfg.Dev.ReadBlock(seg.blocks[idx], buf); err != nil {
			bufpool.Put(out)
			return nil, ios, err
		}
		ios++
		copy(out[done:done+chunk], buf[within:])
		done += chunk
	}
	return out, ios, nil
}

// --- Segment table persistence -------------------------------------------
//
// The segment table is the log's root metadata: epoch, counters, and
// every segment's block run. It is saved durably whenever the segment
// set changes (roll, compaction) — without it the log's blocks are
// unreachable — and is small (tens of bytes per segment).

const (
	segTableMagic   = 0x4745534E // "NSEG"
	segTableVersion = 1

	idxSnapMagic   = 0x5844494E // "NIDX"
	idxSnapVersion = 1
)

func (l *Log) encodeSegTable() []byte {
	size := 4 + 4 + 8 + 8 + 8 + 4
	for _, s := range l.segs {
		size += 8 + 8 + 4 + 8*len(s.blocks)
	}
	size += crcSize
	b := make([]byte, size)
	le := binary.LittleEndian
	le.PutUint32(b, segTableMagic)
	le.PutUint32(b[4:], segTableVersion)
	le.PutUint64(b[8:], l.epoch)
	le.PutUint64(b[16:], l.nextSeq)
	le.PutUint64(b[24:], l.nextLSN)
	le.PutUint32(b[32:], uint32(len(l.segs)))
	off := 36
	for _, s := range l.segs {
		le.PutUint64(b[off:], s.seq)
		le.PutUint64(b[off+8:], uint64(s.written))
		le.PutUint32(b[off+16:], uint32(len(s.blocks)))
		off += 20
		for _, blk := range s.blocks {
			le.PutUint64(b[off:], uint64(blk))
			off += 8
		}
	}
	le.PutUint32(b[off:], crc32.Checksum(b[:off], crcTable))
	return b
}

type segTable struct {
	epoch   uint64
	nextSeq uint64
	nextLSN uint64
	segs    []*segment
}

func decodeSegTable(b []byte) (*segTable, error) {
	le := binary.LittleEndian
	if len(b) < 36+crcSize || le.Uint32(b) != segTableMagic {
		return nil, ErrBadMeta
	}
	if le.Uint32(b[4:]) != segTableVersion {
		return nil, ErrBadMeta
	}
	body := len(b) - crcSize
	if le.Uint32(b[body:]) != crc32.Checksum(b[:body], crcTable) {
		return nil, ErrBadMeta
	}
	t := &segTable{
		epoch:   le.Uint64(b[8:]),
		nextSeq: le.Uint64(b[16:]),
		nextLSN: le.Uint64(b[24:]),
	}
	n := int(le.Uint32(b[32:]))
	off := 36
	for i := 0; i < n; i++ {
		if off+20 > body {
			return nil, ErrBadMeta
		}
		s := &segment{
			seq:     le.Uint64(b[off:]),
			written: int64(le.Uint64(b[off+8:])),
		}
		nb := int(le.Uint32(b[off+16:]))
		off += 20
		if off+8*nb > body {
			return nil, ErrBadMeta
		}
		s.blocks = make([]int64, nb)
		for j := 0; j < nb; j++ {
			s.blocks[j] = int64(le.Uint64(b[off:]))
			off += 8
		}
		t.segs = append(t.segs, s)
	}
	return t, nil
}

func (l *Log) saveSegmentsLocked() error {
	return l.e.cfg.Meta.SaveSegments(l.part, l.encodeSegTable())
}

// SegTableBlocks decodes an encoded segment table and returns every
// device block it claims. Mount-time recovery uses it to pin the blocks
// named by a journaled segment table before any replay allocation could
// hand them out again.
func SegTableBlocks(data []byte) ([]int64, error) {
	t, err := decodeSegTable(data)
	if err != nil {
		return nil, err
	}
	var blocks []int64
	for _, s := range t.segs {
		blocks = append(blocks, s.blocks...)
	}
	return blocks, nil
}

// --- Index snapshot ------------------------------------------------------
//
// The snapshot is pure restart acceleration: the full index plus the
// active segment's tail position and every segment's live-byte count.
// Recovery seeds from it and then scans only records appended after it
// (higher-seq segments, and the snapshot-time active segment past the
// recorded tail). A missing or stale snapshot only costs scan time.

func (l *Log) encodeIndexSnapshot() []byte {
	size := 4 + 4 + 8 + 8 + 8
	size += 4 + 16*len(l.segs)
	size += 8
	for _, e := range l.index {
		size += 8 + 8 + 8 + 8 + 8 + 1 + 8*7
		if e.info.Uninterp != nil {
			size += UninterpSize
		}
	}
	size += crcSize
	b := make([]byte, size)
	le := binary.LittleEndian
	le.PutUint32(b, idxSnapMagic)
	le.PutUint32(b[4:], idxSnapVersion)
	le.PutUint64(b[8:], l.epoch)
	var actSeq uint64
	var tail int64
	if l.act != nil {
		actSeq = l.act.seq
		tail = l.act.written
	}
	le.PutUint64(b[16:], actSeq)
	le.PutUint64(b[24:], uint64(tail))
	le.PutUint32(b[32:], uint32(len(l.segs)))
	off := 36
	for _, s := range l.segs {
		le.PutUint64(b[off:], s.seq)
		le.PutUint64(b[off+8:], uint64(s.live))
		off += 16
	}
	le.PutUint64(b[off:], uint64(len(l.index)))
	off += 8
	for obj, e := range l.index {
		le.PutUint64(b[off:], obj)
		le.PutUint64(b[off+8:], e.seg.seq)
		le.PutUint64(b[off+16:], uint64(e.off))
		le.PutUint64(b[off+24:], uint64(e.size))
		le.PutUint64(b[off+32:], e.lsn)
		off += 40
		var flags byte
		if e.info.Uninterp != nil {
			flags = flagUninterp
		}
		b[off] = flags
		le.PutUint64(b[off+1:], e.info.Size)
		le.PutUint64(b[off+9:], e.info.Version)
		le.PutUint64(b[off+17:], uint64(e.info.CreateSec))
		le.PutUint64(b[off+25:], uint64(e.info.ModSec))
		le.PutUint64(b[off+33:], uint64(e.info.AttrModSec))
		le.PutUint64(b[off+41:], e.info.Prealloc)
		le.PutUint64(b[off+49:], e.info.Cluster)
		off += 57
		if e.info.Uninterp != nil {
			off += copy(b[off:], e.info.Uninterp[:])
		}
	}
	le.PutUint32(b[off:], crc32.Checksum(b[:off], crcTable))
	return b
}

type idxSnapshot struct {
	actSeq  uint64
	tail    int64
	segLive map[uint64]int64
	entries map[uint64]*snapEntry
}

type snapEntry struct {
	seg  uint64
	off  int64
	size int64
	lsn  uint64
	info Info
}

// decodeIndexSnapshot parses a snapshot; any mismatch (including an
// epoch from another log incarnation) returns nil — the caller falls
// back to a full scan.
func decodeIndexSnapshot(b []byte, epoch uint64) *idxSnapshot {
	le := binary.LittleEndian
	if len(b) < 36+8+crcSize || le.Uint32(b) != idxSnapMagic {
		return nil
	}
	if le.Uint32(b[4:]) != idxSnapVersion || le.Uint64(b[8:]) != epoch {
		return nil
	}
	body := len(b) - crcSize
	if le.Uint32(b[body:]) != crc32.Checksum(b[:body], crcTable) {
		return nil
	}
	snap := &idxSnapshot{
		actSeq:  le.Uint64(b[16:]),
		tail:    int64(le.Uint64(b[24:])),
		segLive: make(map[uint64]int64),
		entries: make(map[uint64]*snapEntry),
	}
	nseg := int(le.Uint32(b[32:]))
	off := 36
	if off+16*nseg+8 > body {
		return nil
	}
	for i := 0; i < nseg; i++ {
		snap.segLive[le.Uint64(b[off:])] = int64(le.Uint64(b[off+8:]))
		off += 16
	}
	n := int(le.Uint64(b[off:]))
	off += 8
	for i := 0; i < n; i++ {
		if off+97 > body {
			return nil
		}
		obj := le.Uint64(b[off:])
		e := &snapEntry{
			seg:  le.Uint64(b[off+8:]),
			off:  int64(le.Uint64(b[off+16:])),
			size: int64(le.Uint64(b[off+24:])),
			lsn:  le.Uint64(b[off+32:]),
		}
		off += 40
		flags := b[off]
		e.info = Info{
			Size:       le.Uint64(b[off+1:]),
			Version:    le.Uint64(b[off+9:]),
			CreateSec:  int64(le.Uint64(b[off+17:])),
			ModSec:     int64(le.Uint64(b[off+25:])),
			AttrModSec: int64(le.Uint64(b[off+33:])),
			Prealloc:   le.Uint64(b[off+41:]),
			Cluster:    le.Uint64(b[off+49:]),
		}
		off += 57
		if flags&flagUninterp != 0 {
			if off+UninterpSize > body {
				return nil
			}
			var u [UninterpSize]byte
			copy(u[:], b[off:])
			e.info.Uninterp = &u
			off += UninterpSize
		}
		snap.entries[obj] = e
	}
	return snap
}

func (l *Log) saveIndexSnapshotLocked() error {
	return l.e.cfg.Meta.SaveIndex(l.part, l.encodeIndexSnapshot())
}
