// Package needle implements a Haystack-style append-only object
// engine: every object mutation appends one self-describing needle
// record (header + payload + checksum) to a per-partition log of
// fixed-size segments, and a fully in-memory index maps each object to
// its current record. The design trades log space (reclaimed by
// background compaction) for the property that matters to small-object
// workloads: reads cost one or two media I/Os and writes cost zero
// per-object metadata I/Os — no onode, no bitmap, no indirect block.
//
// Restart recovery restores the index from an on-disk snapshot plus a
// scan of records appended after it, falling back to a full log scan
// when no usable snapshot exists.
//
// The engine is deliberately storage-substrate-agnostic: segments are
// block runs handed out by a Space allocator, metadata (segment table,
// index snapshot) is persisted through a Meta store, and quota flows
// through a Quota account. The object layer (internal/object) plugs
// all three into its classic layout engine and fronts this package as
// the "needle" StoreBackend.
package needle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// UninterpSize is the size of the uninterpreted attribute block, kept
// in sync with the object layer's layout.UninterpSize.
const UninterpSize = 256

// Engine errors.
var (
	ErrNoLog    = errors.New("needle: no log for partition")
	ErrLogOpen  = errors.New("needle: log already open for partition")
	ErrNotFound = errors.New("needle: no such object")
	ErrExists   = errors.New("needle: object already exists")
	ErrTooBig   = errors.New("needle: record exceeds segment size")
	ErrCorrupt  = errors.New("needle: corrupt record")
	ErrBadMeta  = errors.New("needle: corrupt or missing log metadata")
)

// Info carries an object's attributes as stored in its needle record
// and mirrored in the in-memory index (attribute reads never touch
// media). Size is the payload length. Uninterp is nil for the common
// all-zero case; a non-nil pointer is treated as immutable — mutate by
// replacement, never in place.
type Info struct {
	Size       uint64
	Version    uint64
	CreateSec  int64
	ModSec     int64
	AttrModSec int64
	Prealloc   uint64
	Cluster    uint64
	Uninterp   *[UninterpSize]byte
}

// Record wire format (little-endian):
//
//	magic   u32   recMagic
//	flags   u8    tombstone / has-uninterp
//	part    u16   partition
//	obj     u64   object ID
//	epoch   u64   log epoch (random per log; rejects records from other
//	              logs or prior incarnations left in reallocated blocks)
//	seg     u64   sequence number of the segment this record was written
//	              into (rejects stale same-log records in reused blocks)
//	lsn     u64   log sequence number: the global mutation order across
//	              segments. Compaction copies records verbatim with
//	              their LSN, so "highest LSN wins" stays correct even
//	              though copied records land in later segments.
//	version u64   logical object version
//	size    u32   payload bytes
//	create/mod/attrmod i64, prealloc u64, cluster u64
//	payload [size]byte
//	uninterp [256]byte   only when flagUninterp
//	crc     u32   Castagnoli CRC over everything above
const (
	recMagic   = 0x4C44454E // "NEDL"
	headerSize = 4 + 1 + 2 + 8 + 8 + 8 + 8 + 8 + 4 + 8 + 8 + 8 + 8 + 8
	crcSize    = 4

	flagTombstone = 1 << 0
	flagUninterp  = 1 << 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded needle.
type record struct {
	flags byte
	part  uint16
	obj   uint64
	epoch uint64
	seg   uint64
	lsn   uint64
	info  Info // info.Size == len(payload); info.Uninterp set iff flagUninterp
	// payload aliases the decode buffer or the caller's data; encode
	// copies it out.
	payload []byte
}

func (r *record) tombstone() bool { return r.flags&flagTombstone != 0 }

// wireSize is the encoded record length in bytes.
func (r *record) wireSize() int64 {
	n := int64(headerSize) + int64(len(r.payload)) + crcSize
	if r.flags&flagUninterp != 0 {
		n += UninterpSize
	}
	return n
}

func (r *record) encode() []byte {
	b := make([]byte, r.wireSize())
	le := binary.LittleEndian
	le.PutUint32(b, recMagic)
	b[4] = r.flags
	le.PutUint16(b[5:], r.part)
	le.PutUint64(b[7:], r.obj)
	le.PutUint64(b[15:], r.epoch)
	le.PutUint64(b[23:], r.seg)
	le.PutUint64(b[31:], r.lsn)
	le.PutUint64(b[39:], r.info.Version)
	le.PutUint32(b[47:], uint32(len(r.payload)))
	le.PutUint64(b[51:], uint64(r.info.CreateSec))
	le.PutUint64(b[59:], uint64(r.info.ModSec))
	le.PutUint64(b[67:], uint64(r.info.AttrModSec))
	le.PutUint64(b[75:], r.info.Prealloc)
	le.PutUint64(b[83:], r.info.Cluster)
	off := headerSize + copy(b[headerSize:], r.payload)
	if r.flags&flagUninterp != 0 {
		var u [UninterpSize]byte
		if r.info.Uninterp != nil {
			u = *r.info.Uninterp
		}
		off += copy(b[off:], u[:])
	}
	le.PutUint32(b[off:], crc32.Checksum(b[:off], crcTable))
	return b
}

// decodeRecord parses and checksum-verifies one record at the start of
// b, returning it and its encoded length. It fails with ErrCorrupt on
// any mismatch — including a wrong epoch or segment seq, which is how
// log scans detect the end of valid data.
func decodeRecord(b []byte, epoch, seg uint64) (*record, int64, error) {
	if len(b) < headerSize+crcSize {
		return nil, 0, ErrCorrupt
	}
	le := binary.LittleEndian
	if le.Uint32(b) != recMagic {
		return nil, 0, ErrCorrupt
	}
	r := &record{
		flags: b[4],
		part:  le.Uint16(b[5:]),
		obj:   le.Uint64(b[7:]),
		epoch: le.Uint64(b[15:]),
		seg:   le.Uint64(b[23:]),
		lsn:   le.Uint64(b[31:]),
	}
	if r.epoch != epoch || r.seg != seg {
		return nil, 0, ErrCorrupt
	}
	psize := int64(le.Uint32(b[47:]))
	r.info = Info{
		Size:       uint64(psize),
		Version:    le.Uint64(b[39:]),
		CreateSec:  int64(le.Uint64(b[51:])),
		ModSec:     int64(le.Uint64(b[59:])),
		AttrModSec: int64(le.Uint64(b[67:])),
		Prealloc:   le.Uint64(b[75:]),
		Cluster:    le.Uint64(b[83:]),
	}
	total := int64(headerSize) + psize + crcSize
	if r.flags&flagUninterp != 0 {
		total += UninterpSize
	}
	if total > int64(len(b)) {
		return nil, 0, ErrCorrupt
	}
	body := total - crcSize
	if le.Uint32(b[body:]) != crc32.Checksum(b[:body], crcTable) {
		return nil, 0, ErrCorrupt
	}
	r.payload = b[headerSize : headerSize+psize]
	if r.flags&flagUninterp != 0 {
		var u [UninterpSize]byte
		copy(u[:], b[headerSize+psize:])
		r.info.Uninterp = &u
	}
	return r, total, nil
}

// scanRecords iterates the valid records in raw starting at from,
// calling fn with each record and its offset. It stops at the first
// invalid record (the end of the log's valid data) and returns the
// offset it reached.
func scanRecords(raw []byte, epoch, seg uint64, from int64, fn func(off int64, r *record)) int64 {
	pos := from
	for pos < int64(len(raw)) {
		r, n, err := decodeRecord(raw[pos:], epoch, seg)
		if err != nil {
			break
		}
		fn(pos, r)
		pos += n
	}
	return pos
}

func corruptErr(part uint16, obj uint64) error {
	return fmt.Errorf("%w: partition %d object %d", ErrCorrupt, part, obj)
}
