package needle

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/telemetry"
)

// The engine is tested against a minimal in-memory substrate: a bump
// allocator over a MemDisk, a map-backed metadata store, and a
// saturating quota ledger. That keeps these tests about the log engine
// itself — the object-layer integration is covered in internal/object.

type testSpace struct {
	mu   sync.Mutex
	next int64
	max  int64
	free []int64
}

func (s *testSpace) AllocBlocks(n int) ([]int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, 0, n)
	for len(s.free) > 0 && len(out) < n {
		out = append(out, s.free[len(s.free)-1])
		s.free = s.free[:len(s.free)-1]
	}
	for len(out) < n {
		if s.next >= s.max {
			return nil, fmt.Errorf("testSpace: out of blocks")
		}
		out = append(out, s.next)
		s.next++
	}
	return out, nil
}

func (s *testSpace) FreeBlock(blk int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.free = append(s.free, blk)
	return nil
}

type testMeta struct {
	mu   sync.Mutex
	segs map[uint16][]byte
	idx  map[uint16][]byte
}

func newTestMeta() *testMeta {
	return &testMeta{segs: make(map[uint16][]byte), idx: make(map[uint16][]byte)}
}

func (m *testMeta) LoadSegments(part uint16) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.segs[part]...), nil
}

func (m *testMeta) SaveSegments(part uint16, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.segs[part] = append([]byte(nil), data...)
	return nil
}

func (m *testMeta) LoadIndex(part uint16) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.idx[part]...), nil
}

func (m *testMeta) SaveIndex(part uint16, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.idx[part] = append([]byte(nil), data...)
	return nil
}

type testQuota struct {
	mu   sync.Mutex
	used int64
}

func (q *testQuota) ChargeBlocks(part uint16, delta int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.used += delta
	return nil
}

func (q *testQuota) SettleBlocks(part uint16, delta int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.used += delta
}

func (q *testQuota) Used() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.used
}

type testRig struct {
	dev   blockdev.Device
	meta  *testMeta
	quota *testQuota
	reg   *telemetry.Registry
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	return &testRig{
		dev:   blockdev.NewMemDisk(512, 4096),
		meta:  newTestMeta(),
		quota: &testQuota{},
		reg:   telemetry.NewRegistry(),
	}
}

// engine builds a fresh Engine over the rig's (persistent) substrate —
// calling it twice models a restart.
func (r *testRig) engine(threshold float64) *Engine {
	return New(Config{
		Dev:              r.dev,
		Space:            &testSpace{next: 0, max: 4096},
		Meta:             r.meta,
		Quota:            r.quota,
		Metrics:          r.reg,
		SegmentBlocks:    8, // 4 KiB segments: rolls and compaction happen fast
		CompactThreshold: threshold,
	})
}

// reopenedSpace gives a restarted engine an allocator that does not
// re-hand-out blocks the previous incarnation placed segments in.
func (r *testRig) engineAfterRestart(threshold float64, highWater int64) *Engine {
	e := New(Config{
		Dev:              r.dev,
		Space:            &testSpace{next: highWater, max: 4096},
		Meta:             r.meta,
		Quota:            r.quota,
		Metrics:          r.reg,
		SegmentBlocks:    8,
		CompactThreshold: threshold,
	})
	return e
}

const tpart = 1

func pay(obj uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(obj*31 + uint64(i)*7)
	}
	return b
}

func TestCRUD(t *testing.T) {
	r := newRig(t)
	e := r.engine(-1) // compaction off: this test is about the data path
	if err := e.CreateLog(tpart); err != nil {
		t.Fatal(err)
	}
	// Create + write + read back.
	for obj := uint64(16); obj < 48; obj++ {
		if err := e.Create(tpart, obj, 100); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(tpart, obj, 0, pay(obj, 200), 101); err != nil {
			t.Fatal(err)
		}
	}
	for obj := uint64(16); obj < 48; obj++ {
		got, err := e.Read(tpart, obj, 0, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pay(obj, 200)) {
			t.Fatalf("object %d: payload mismatch", obj)
		}
		info, err := e.GetInfo(tpart, obj)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size != 200 || info.Version != 1 || info.CreateSec != 100 || info.ModSec != 101 {
			t.Fatalf("object %d: bad info %+v", obj, info)
		}
	}
	// Partial read and overlapping partial write (read-modify-write).
	got, err := e.Read(tpart, 16, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pay(16, 200)[50:150]) {
		t.Fatal("partial read mismatch")
	}
	patch := bytes.Repeat([]byte{0xEE}, 60)
	if err := e.Write(tpart, 16, 170, patch, 102); err != nil {
		t.Fatal(err)
	}
	want := append(pay(16, 200)[:170], patch...)
	got, err = e.Read(tpart, 16, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-modify-write mismatch")
	}
	// Attribute update via Update.
	if err := e.Update(tpart, 16, func(i *Info) error {
		i.Version = 9
		i.Size = 100 // truncate
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	info, err := e.GetInfo(tpart, 16)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 9 || info.Size != 100 {
		t.Fatalf("update not applied: %+v", info)
	}
	got, _ = e.Read(tpart, 16, 0, 1024)
	if !bytes.Equal(got, want[:100]) {
		t.Fatal("truncated payload mismatch")
	}
	// Remove, and the errors for absent objects.
	if err := e.Remove(tpart, 17); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(tpart, 17, 0, 10); err != ErrNotFound {
		t.Fatalf("read after remove: %v", err)
	}
	if err := e.Remove(tpart, 17); err != ErrNotFound {
		t.Fatalf("double remove: %v", err)
	}
	if err := e.Create(tpart, 18, 0); err != ErrExists {
		t.Fatalf("duplicate create: %v", err)
	}
	ids, err := e.List(tpart)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 31 {
		t.Fatalf("list: got %d objects, want 31", len(ids))
	}
}

// TestRecovery exercises kill-and-restart index rebuilds three ways:
// with the snapshot, with records appended after the snapshot (scan
// forward), and with no snapshot at all (full log scan).
func TestRecovery(t *testing.T) {
	r := newRig(t)
	e := r.engine(-1)
	if err := e.CreateLog(tpart); err != nil {
		t.Fatal(err)
	}
	for obj := uint64(16); obj < 40; obj++ {
		if err := e.Create(tpart, obj, 10); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(tpart, obj, 0, pay(obj, 300), 11); err != nil {
			t.Fatal(err)
		}
	}
	// Mutations the snapshot will capture: an overwrite and a removal.
	if err := e.Write(tpart, 20, 0, pay(99, 150), 12); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(tpart, 21); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations, then sync the tail the way a healthy
	// shutdown would — but WITHOUT refreshing the snapshot, so recovery
	// must scan forward past it.
	if err := e.Write(tpart, 22, 0, pay(77, 500), 13); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(tpart, 23); err != nil {
		t.Fatal(err)
	}
	snap, err := r.meta.LoadIndex(tpart)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil { // durable tail
		t.Fatal(err)
	}
	if err := r.meta.SaveIndex(tpart, snap); err != nil { // stale snapshot back
		t.Fatal(err)
	}

	check := func(t *testing.T, e2 *Engine, st Stats) {
		t.Helper()
		if st.Objects != 22 { // 24 created - 2 removed
			t.Fatalf("recovered %d objects, want 22", st.Objects)
		}
		if st.MaxObjectID != 39 {
			t.Fatalf("max object id = %d, want 39", st.MaxObjectID)
		}
		for _, obj := range []uint64{21, 23} {
			if _, err := e2.GetInfo(tpart, obj); err != ErrNotFound {
				t.Fatalf("removed object %d resurrected: %v", obj, err)
			}
		}
		for obj := uint64(16); obj < 40; obj++ {
			if obj == 21 || obj == 23 {
				continue
			}
			want := pay(obj, 300)
			switch obj {
			case 20: // short overwrite patches in place, no truncation
				want = append(pay(99, 150), pay(obj, 300)[150:]...)
			case 22: // full overwrite grows the object
				want = pay(77, 500)
			}
			got, err := e2.Read(tpart, obj, 0, 1024)
			if err != nil {
				t.Fatalf("object %d: %v", obj, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("object %d: payload mismatch after recovery", obj)
			}
		}
	}

	t.Run("stale-snapshot", func(t *testing.T) {
		e2 := r.engineAfterRestart(-1, 4096)
		st, err := e2.OpenLog(tpart)
		if err != nil {
			t.Fatal(err)
		}
		check(t, e2, st)
	})
	t.Run("no-snapshot", func(t *testing.T) {
		if err := r.meta.SaveIndex(tpart, nil); err != nil {
			t.Fatal(err)
		}
		e2 := r.engineAfterRestart(-1, 4096)
		st, err := e2.OpenLog(tpart)
		if err != nil {
			t.Fatal(err)
		}
		check(t, e2, st)
	})
	t.Run("fresh-snapshot", func(t *testing.T) {
		e2 := r.engineAfterRestart(-1, 4096)
		if _, err := e2.OpenLog(tpart); err != nil {
			t.Fatal(err)
		}
		if err := e2.Flush(); err != nil {
			t.Fatal(err)
		}
		e3 := r.engineAfterRestart(-1, 4096)
		st, err := e3.OpenLog(tpart)
		if err != nil {
			t.Fatal(err)
		}
		check(t, e3, st)
	})
}

// TestCompaction drives overwrites until sealed segments cross the
// dead-byte threshold and verifies the invariants: space is reclaimed
// (quota settles down), every live object still reads back intact, and
// a post-compaction restart (including a full-scan one) agrees.
func TestCompaction(t *testing.T) {
	r := newRig(t)
	e := r.engine(0.5)
	if err := e.CreateLog(tpart); err != nil {
		t.Fatal(err)
	}
	const objects = 8
	for obj := uint64(16); obj < 16+objects; obj++ {
		if err := e.Create(tpart, obj, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite round-robin: each write supersedes the previous record,
	// turning old segments almost entirely dead.
	gen := make(map[uint64]int)
	for i := 0; i < 400; i++ {
		obj := uint64(16 + i%objects)
		gen[obj] = i
		if err := e.Write(tpart, obj, 0, pay(uint64(i), 180), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// One object is removed; its tombstone must survive compaction.
	if err := e.Remove(tpart, 16); err != nil {
		t.Fatal(err)
	}

	// Compaction is asynchronous; wait for it to settle.
	deadline := time.Now().Add(5 * time.Second)
	var compactions uint64
	for time.Now().Before(deadline) {
		compactions = r.reg.Counter("needle.compactions").Load()
		if compactions > 0 && r.quota.Used() < 5*8 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if compactions == 0 {
		t.Fatal("no compactions ran")
	}
	// ~400 overwrites x ~284 wire bytes is ~28 segments of history;
	// live data is 8 objects (~2 segments). Compaction must have
	// reclaimed the difference.
	if used := r.quota.Used(); used >= 10*8 {
		t.Fatalf("quota still charges %d blocks after compaction", used)
	}
	for obj := uint64(17); obj < 16+objects; obj++ {
		got, err := e.Read(tpart, obj, 0, 1024)
		if err != nil {
			t.Fatalf("object %d: %v", obj, err)
		}
		if !bytes.Equal(got, pay(uint64(gen[obj]), 180)) {
			t.Fatalf("object %d: payload mismatch after compaction", obj)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Restart twice: once from the snapshot, once via full scan. The
	// scan path proves compaction kept tombstones and preserved LSN
	// ordering (copied records must not beat newer writes).
	for _, wipe := range []bool{false, true} {
		if wipe {
			if err := r.meta.SaveIndex(tpart, nil); err != nil {
				t.Fatal(err)
			}
		}
		e2 := r.engineAfterRestart(0.5, 4096)
		st, err := e2.OpenLog(tpart)
		if err != nil {
			t.Fatalf("wipe=%v: %v", wipe, err)
		}
		if st.Objects != objects-1 {
			t.Fatalf("wipe=%v: recovered %d objects, want %d", wipe, st.Objects, objects-1)
		}
		if _, err := e2.GetInfo(tpart, 16); err != ErrNotFound {
			t.Fatalf("wipe=%v: removed object resurrected: %v", wipe, err)
		}
		for obj := uint64(17); obj < 16+objects; obj++ {
			got, err := e2.Read(tpart, obj, 0, 1024)
			if err != nil {
				t.Fatalf("wipe=%v object %d: %v", wipe, obj, err)
			}
			if !bytes.Equal(got, pay(uint64(gen[obj]), 180)) {
				t.Fatalf("wipe=%v object %d: payload mismatch", wipe, obj)
			}
		}
	}
}

// TestConcurrentReadersAndWriters runs readers against a writer and the
// background compactor — the -race harness for the log's locking.
func TestConcurrentReadersAndWriters(t *testing.T) {
	r := newRig(t)
	e := r.engine(0.5)
	if err := e.CreateLog(tpart); err != nil {
		t.Fatal(err)
	}
	const objects = 4
	for obj := uint64(16); obj < 16+objects; obj++ {
		if err := e.Create(tpart, obj, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(tpart, obj, 0, pay(obj, 128), 1); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				obj := uint64(16 + (g+i)%objects)
				if _, err := e.GetInfo(tpart, obj); err != nil {
					t.Errorf("getinfo %d: %v", obj, err)
					return
				}
				if _, err := e.Read(tpart, obj, 0, 256); err != nil {
					t.Errorf("read %d: %v", obj, err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 300; i++ {
		obj := uint64(16 + i%objects)
		if err := e.Write(tpart, obj, 0, pay(uint64(i), 128), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}
