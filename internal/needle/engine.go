package needle

import (
	"math/rand/v2"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/bufpool"
	"nasd/internal/telemetry"
)

// DefaultSegmentBlocks is the segment size when Config leaves it zero.
const DefaultSegmentBlocks = 1024

// Space hands out and reclaims device blocks for log segments. The
// object layer backs this with its classic layout allocator, so needle
// segments and onode-based objects share one free-space pool.
type Space interface {
	AllocBlocks(n int) ([]int64, error)
	FreeBlock(blk int64) error
}

// Meta persists a log's root metadata: the segment table (required for
// the log to be reachable at all) and the index snapshot (restart
// acceleration; losing it only costs a full log scan). SaveSegments
// must be durable when it returns; SaveIndex may be buffered until the
// store's next flush.
type Meta interface {
	LoadSegments(part uint16) ([]byte, error)
	SaveSegments(part uint16, data []byte) error
	LoadIndex(part uint16) ([]byte, error)
	SaveIndex(part uint16, data []byte) error
}

// Quota admits and settles block consumption per partition. Needle
// logs charge at segment granularity: ChargeBlocks at segment
// allocation (an error rejects the append that needed the segment),
// SettleBlocks with a negative delta when compaction or log removal
// frees one.
type Quota interface {
	ChargeBlocks(part uint16, delta int64) error
	SettleBlocks(part uint16, delta int64)
}

// Config assembles an Engine's substrate.
type Config struct {
	Dev   blockdev.Device
	Space Space
	Meta  Meta
	Quota Quota

	// Metrics, when non-nil, receives needle.* counters and gauges.
	Metrics *telemetry.Registry

	// SegmentBlocks is the log segment size in blocks (default
	// DefaultSegmentBlocks). It caps the largest storable record.
	SegmentBlocks int

	// CompactThreshold is the dead-byte fraction of a sealed segment
	// that triggers background compaction. Zero means the 0.5 default;
	// negative disables compaction entirely (tests).
	CompactThreshold float64

	// SyncCompact runs compaction inline in the mutating call that
	// crossed the threshold instead of spawning a goroutine. The crash
	// harness depends on it: an async compactor writes to the device at
	// timing-dependent points, so a scheduled persist-step sweep only
	// becomes deterministic when compaction happens at deterministic
	// call sites.
	SyncCompact bool

	// Events, when non-nil, receives a structured event per segment
	// compaction (how many blocks a partition's log returned).
	Events *telemetry.EventLog
}

// Stats summarizes a recovered log.
type Stats struct {
	Objects     uint64
	Blocks      uint64
	MaxObjectID uint64
}

// Engine manages the needle logs of one device, one per partition.
type Engine struct {
	cfg Config
	bs  int64

	mu   sync.Mutex // guards logs map only
	logs map[uint16]*Log

	appends     *telemetry.Counter
	compactions *telemetry.Counter
	recoveryNS  *telemetry.Counter
	reads       *telemetry.Counter
	readIOs     *telemetry.Counter

	indexEntries atomic.Int64
}

// New builds an Engine over cfg's substrate. No logs are open until
// CreateLog or OpenLog.
func New(cfg Config) *Engine {
	if cfg.SegmentBlocks <= 0 {
		cfg.SegmentBlocks = DefaultSegmentBlocks
	}
	if cfg.CompactThreshold == 0 {
		cfg.CompactThreshold = 0.5
	}
	e := &Engine{
		cfg:  cfg,
		bs:   int64(cfg.Dev.BlockSize()),
		logs: make(map[uint16]*Log),
	}
	if cfg.Metrics != nil {
		e.appends = cfg.Metrics.Counter("needle.appends")
		e.compactions = cfg.Metrics.Counter("needle.compactions")
		e.recoveryNS = cfg.Metrics.Counter("needle.recovery_ns")
		e.reads = cfg.Metrics.Counter("needle.reads")
		e.readIOs = cfg.Metrics.Counter("needle.read_block_ios")
		cfg.Metrics.Func("needle.index_entries", e.indexEntries.Load)
		cfg.Metrics.Func("needle.media_per_read_milli", func() int64 {
			n := e.reads.Load()
			if n == 0 {
				return 0
			}
			return int64(e.readIOs.Load() * 1000 / n)
		})
	}
	return e
}

// MaxObjectSize returns the largest payload a record can carry — a
// record (header, payload, uninterpreted attributes, checksum) must fit
// in one segment.
func (e *Engine) MaxObjectSize() uint64 {
	return uint64(int64(e.cfg.SegmentBlocks)*e.bs) - headerSize - crcSize - UninterpSize
}

func (e *Engine) countAppend() {
	if e.appends != nil {
		e.appends.Inc()
	}
}

func (e *Engine) getLog(part uint16) (*Log, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	l := e.logs[part]
	if l == nil {
		return nil, ErrNoLog
	}
	return l, nil
}

// CreateLog initializes an empty log for part and persists its (empty)
// segment table. The first segment is allocated lazily on first append.
func (e *Engine) CreateLog(part uint16) error {
	e.mu.Lock()
	if _, ok := e.logs[part]; ok {
		e.mu.Unlock()
		return ErrLogOpen
	}
	l := &Log{
		part:    part,
		epoch:   rand.Uint64(),
		nextSeq: 1,
		nextLSN: 1,
		index:   make(map[uint64]*entry),
		e:       e,
	}
	e.logs[part] = l
	e.mu.Unlock()

	l.mu.Lock()
	err := l.saveSegmentsLocked()
	l.mu.Unlock()
	if err != nil {
		e.mu.Lock()
		delete(e.logs, part)
		e.mu.Unlock()
		return err
	}
	return nil
}

// DropLog forgets part's log and returns its blocks to the space
// allocator. The caller is responsible for deleting the log's metadata
// objects.
func (e *Engine) DropLog(part uint16) error {
	e.mu.Lock()
	l := e.logs[part]
	delete(e.logs, part)
	e.mu.Unlock()
	if l == nil {
		return ErrNoLog
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var blocks int64
	for _, s := range l.segs {
		for _, b := range s.blocks {
			_ = e.cfg.Space.FreeBlock(b)
			blocks++
		}
	}
	e.cfg.Quota.SettleBlocks(part, -blocks)
	e.indexEntries.Add(-int64(len(l.index)))
	l.segs, l.act, l.index = nil, nil, make(map[uint64]*entry)
	return nil
}

// OpenLog recovers part's log from its persisted segment table, using
// the index snapshot when one is present and valid and scanning any
// records appended after it; with no usable snapshot the whole log is
// scanned. Returns the recovered object/block census.
func (e *Engine) OpenLog(part uint16) (Stats, error) {
	start := time.Now()
	raw, err := e.cfg.Meta.LoadSegments(part)
	if err != nil {
		return Stats{}, err
	}
	if len(raw) == 0 {
		return Stats{}, ErrBadMeta
	}
	t, err := decodeSegTable(raw)
	if err != nil {
		return Stats{}, err
	}

	e.mu.Lock()
	if _, ok := e.logs[part]; ok {
		e.mu.Unlock()
		return Stats{}, ErrLogOpen
	}
	l := &Log{
		part:    part,
		epoch:   t.epoch,
		nextSeq: t.nextSeq,
		nextLSN: t.nextLSN,
		segs:    t.segs,
		index:   make(map[uint64]*entry),
		e:       e,
	}
	e.logs[part] = l
	e.mu.Unlock()

	l.mu.Lock()
	st, err := l.recoverLocked()
	l.mu.Unlock()
	if err != nil {
		e.mu.Lock()
		delete(e.logs, part)
		e.mu.Unlock()
		return Stats{}, err
	}
	e.indexEntries.Add(int64(len(l.index)))
	if e.recoveryNS != nil {
		e.recoveryNS.Add(uint64(time.Since(start).Nanoseconds()))
	}
	return st, nil
}

// readSegDeviceLocked reads [0, limit) of s straight from the device,
// ignoring the pending buffer — recovery (which rebuilds pending) and
// compaction (whose sources are sealed, fully flushed segments) use it.
func (l *Log) readSegDeviceLocked(s *segment, limit int64) ([]byte, error) {
	nb := (limit + l.e.bs - 1) / l.e.bs
	// Not pooled: recovery retains views into the result (uninterpreted
	// attributes decoded from records) beyond this call.
	raw := make([]byte, nb*l.e.bs)
	for i := int64(0); i < nb; {
		// One device call per physically contiguous run.
		run := int64(1)
		for i+run < nb && s.blocks[i+run] == s.blocks[i]+run {
			run++
		}
		if err := blockdev.ReadBlocks(l.e.cfg.Dev, s.blocks[i], raw[i*l.e.bs:(i+run)*l.e.bs]); err != nil {
			return nil, err
		}
		i += run
	}
	return raw[:limit], nil
}

// recoverLocked rebuilds the in-memory index. Records merge by LSN —
// highest wins per object — which stays correct in the presence of
// compaction copies (same LSN, later position; ties go to the later
// scan position) and interleaved segment reuse (epoch and seg stamps
// reject foreign records at the scan frontier).
func (l *Log) recoverLocked() (Stats, error) {
	if len(l.segs) > 0 {
		l.act = l.segs[len(l.segs)-1]
	}

	var snap *idxSnapshot
	if raw, err := l.e.cfg.Meta.LoadIndex(l.part); err == nil && len(raw) > 0 {
		snap = decodeIndexSnapshot(raw, l.epoch)
	}

	segBySeq := make(map[uint64]*segment, len(l.segs))
	for _, s := range l.segs {
		segBySeq[s.seq] = s
	}

	var maxObj uint64
	bumpLSN := func(lsn uint64) {
		if lsn >= l.nextLSN {
			l.nextLSN = lsn + 1
		}
	}

	scanStart := make(map[uint64]int64) // seg seq -> scan-from offset
	if snap != nil {
		for obj, se := range snap.entries {
			s := segBySeq[se.seg]
			if s == nil {
				// Segment compacted away after the snapshot; the record
				// was copied into a post-snapshot position and the scan
				// below re-finds it.
				continue
			}
			l.index[obj] = &entry{seg: s, off: se.off, size: se.size, lsn: se.lsn, info: se.info}
			bumpLSN(se.lsn)
			if obj > maxObj {
				maxObj = obj
			}
		}
		for seq, live := range snap.segLive {
			if s := segBySeq[seq]; s != nil {
				s.live = live
			}
		}
		for _, s := range l.segs {
			if _, ok := snap.segLive[s.seq]; ok && s.seq != snap.actSeq {
				scanStart[s.seq] = -1 // fully covered by snapshot
			}
		}
		if s := segBySeq[snap.actSeq]; s != nil {
			scanStart[s.seq] = snap.tail
		}
	}

	// tombs records the highest tombstone LSN seen per object, so a
	// stale data record (e.g. an uncollected compaction duplicate)
	// scanned after its tombstone cannot resurrect the object.
	tombs := make(map[uint64]uint64)
	merge := func(s *segment, off int64, r *record) {
		if r.obj > maxObj {
			maxObj = r.obj
		}
		bumpLSN(r.lsn)
		if r.tombstone() {
			s.live += r.wireSize()
			if r.lsn > tombs[r.obj] {
				tombs[r.obj] = r.lsn
			}
			if cur := l.index[r.obj]; cur != nil && r.lsn > cur.lsn {
				cur.seg.live -= cur.size
				delete(l.index, r.obj)
			}
			return
		}
		if tombs[r.obj] >= r.lsn {
			return // deleted; bytes are dead
		}
		cur := l.index[r.obj]
		if cur != nil && r.lsn < cur.lsn {
			return // superseded; bytes are dead
		}
		if cur != nil {
			cur.seg.live -= cur.size
		}
		info := r.info
		s.live += r.wireSize()
		l.index[r.obj] = &entry{seg: s, off: off, size: r.wireSize(), lsn: r.lsn, info: info}
	}

	var blocks uint64
	for _, s := range l.segs {
		blocks += uint64(len(s.blocks))
		from, ok := scanStart[s.seq]
		if !ok {
			from = 0
		} else if from < 0 {
			continue
		}
		limit := s.written
		if s == l.act {
			limit = int64(len(s.blocks)) * l.e.bs
		}
		raw, err := l.readSegDeviceLocked(s, limit)
		if err != nil {
			return Stats{}, err
		}
		seg := s
		end := scanRecords(raw, l.epoch, s.seq, from, func(off int64, r *record) {
			merge(seg, off, r)
		})
		if s == l.act {
			s.written = end
			l.flushed = end / l.e.bs * l.e.bs
			l.pending = append([]byte(nil), raw[l.flushed:end]...)
		}
	}

	return Stats{
		Objects:     uint64(len(l.index)),
		Blocks:      blocks,
		MaxObjectID: maxObj,
	}, nil
}

// Create appends an empty object record. The object must not exist.
func (e *Engine) Create(part uint16, obj uint64, now int64) error {
	l, err := e.getLog(part)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.index[obj]; ok {
		return ErrExists
	}
	r := &record{
		part: part,
		obj:  obj,
		info: Info{Version: 1, CreateSec: now, ModSec: now, AttrModSec: now},
	}
	seg, off, err := l.appendLocked(r)
	if err != nil {
		return err
	}
	l.index[obj] = &entry{seg: seg, off: off, size: r.wireSize(), lsn: r.lsn, info: r.info}
	e.indexEntries.Add(1)
	return nil
}

// GetInfo returns an object's attributes from the in-memory index —
// no media access.
func (e *Engine) GetInfo(part uint16, obj uint64) (Info, error) {
	l, err := e.getLog(part)
	if err != nil {
		return Info{}, err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	ent := l.index[obj]
	if ent == nil {
		return Info{}, ErrNotFound
	}
	return ent.info, nil
}

// Read returns up to n bytes of the object's payload starting at off,
// clipped to the object's size. A full-object read re-verifies the
// record checksum; partial reads fetch only the spanned blocks.
func (e *Engine) Read(part uint16, obj, off uint64, n int) ([]byte, error) {
	l, err := e.getLog(part)
	if err != nil {
		return nil, err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	ent := l.index[obj]
	if ent == nil {
		return nil, ErrNotFound
	}
	if e.reads != nil {
		e.reads.Inc()
	}
	if off >= ent.info.Size || n <= 0 {
		return nil, nil
	}
	if uint64(n) > ent.info.Size-off {
		n = int(ent.info.Size - off)
	}
	var data []byte
	var ios int64
	if off == 0 && uint64(n) == ent.info.Size {
		raw, c, rerr := l.readRangeLocked(ent.seg, ent.off, ent.size)
		ios = c
		if rerr != nil {
			return nil, rerr
		}
		r, _, derr := decodeRecord(raw, l.epoch, ent.seg.seq)
		if derr != nil {
			return nil, corruptErr(part, obj)
		}
		data = r.payload
	} else {
		raw, c, rerr := l.readRangeLocked(ent.seg, ent.off+int64(headerSize)+int64(off), int64(n))
		ios = c
		if rerr != nil {
			return nil, rerr
		}
		data = raw
	}
	if e.readIOs != nil {
		e.readIOs.Add(uint64(ios))
	}
	return data, nil
}

// readPayloadLocked fetches an object's whole current payload (write
// paths that rewrite the record need it).
func (l *Log) readPayloadLocked(ent *entry) ([]byte, error) {
	if ent.info.Size == 0 {
		return nil, nil
	}
	raw, _, err := l.readRangeLocked(ent.seg, ent.off+int64(headerSize), int64(ent.info.Size))
	return raw, err
}

// Write appends a superseding record carrying the object's new
// payload. Whole-object overwrites (off 0, length >= current size)
// append directly; anything else read-modify-writes the old payload.
func (e *Engine) Write(part uint16, obj, off uint64, data []byte, now int64) error {
	l, err := e.getLog(part)
	if err != nil {
		return err
	}
	l.mu.Lock()
	ent := l.index[obj]
	if ent == nil {
		l.mu.Unlock()
		return ErrNotFound
	}
	end := off + uint64(len(data))
	var payload []byte
	var scratch []byte // pooled RMW buffer, recycled after the append copies it
	if off == 0 && end >= ent.info.Size {
		payload = data
	} else {
		old, rerr := l.readPayloadLocked(ent)
		if rerr != nil {
			l.mu.Unlock()
			return rerr
		}
		if end > uint64(len(old)) {
			grown := bufpool.Get(int(end))
			n := copy(grown, old)
			for i := n; i < len(grown); i++ {
				grown[i] = 0
			}
			bufpool.Put(old)
			old = grown
		}
		copy(old[off:], data)
		payload = old
		scratch = old
	}
	info := ent.info
	info.Size = uint64(len(payload))
	info.ModSec = now
	rerr := l.rewriteLocked(ent, obj, info, payload)
	bufpool.Put(scratch)
	l.mu.Unlock()
	if rerr != nil {
		return rerr
	}
	e.maybeCompact(l)
	return nil
}

// rewriteLocked appends a record superseding ent and repoints the
// index at it.
func (l *Log) rewriteLocked(ent *entry, obj uint64, info Info, payload []byte) error {
	r := &record{part: l.part, obj: obj, info: info, payload: payload}
	if info.Uninterp != nil {
		r.flags |= flagUninterp
	}
	seg, off, err := l.appendLocked(r)
	if err != nil {
		return err
	}
	ent.seg.live -= ent.size
	l.index[obj] = &entry{seg: seg, off: off, size: r.wireSize(), lsn: r.lsn, info: info}
	return nil
}

// Update applies fn to a copy of the object's attributes and appends a
// superseding record. fn owns every attribute it changes, including
// timestamps; when it changes Size the payload is truncated or
// zero-extended to match.
func (e *Engine) Update(part uint16, obj uint64, fn func(*Info) error) error {
	l, err := e.getLog(part)
	if err != nil {
		return err
	}
	l.mu.Lock()
	ent := l.index[obj]
	if ent == nil {
		l.mu.Unlock()
		return ErrNotFound
	}
	info := ent.info
	if ferr := fn(&info); ferr != nil {
		l.mu.Unlock()
		return ferr
	}
	payload, rerr := l.readPayloadLocked(ent)
	if rerr != nil {
		l.mu.Unlock()
		return rerr
	}
	if uint64(len(payload)) != info.Size {
		resized := bufpool.Get(int(info.Size))
		n := copy(resized, payload)
		for i := n; i < len(resized); i++ {
			resized[i] = 0
		}
		bufpool.Put(payload)
		payload = resized
	}
	rerr = l.rewriteLocked(ent, obj, info, payload)
	bufpool.Put(payload)
	l.mu.Unlock()
	if rerr != nil {
		return rerr
	}
	e.maybeCompact(l)
	return nil
}

// Remove appends a tombstone and drops the object from the index.
// Tombstones are carried forward by compaction forever so a full-scan
// recovery replays the deletion.
func (e *Engine) Remove(part uint16, obj uint64) error {
	l, err := e.getLog(part)
	if err != nil {
		return err
	}
	l.mu.Lock()
	ent := l.index[obj]
	if ent == nil {
		l.mu.Unlock()
		return ErrNotFound
	}
	r := &record{flags: flagTombstone, part: part, obj: obj}
	if _, _, aerr := l.appendLocked(r); aerr != nil {
		l.mu.Unlock()
		return aerr
	}
	ent.seg.live -= ent.size
	delete(l.index, obj)
	e.indexEntries.Add(-1)
	l.mu.Unlock()
	e.maybeCompact(l)
	return nil
}

// List returns the partition's live object IDs in ascending order.
func (e *Engine) List(part uint16) ([]uint64, error) {
	l, err := e.getLog(part)
	if err != nil {
		return nil, err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	ids := make([]uint64, 0, len(l.index))
	for id := range l.index {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids, nil
}

// Flush makes every log durable: the active segment's partial tail
// block goes to the device, a fresh index snapshot is written through
// the Meta store, and the device's volatile write cache is drained.
// Segment tables are already durable (saved at every roll and
// compaction).
func (e *Engine) Flush() error {
	e.mu.Lock()
	logs := make([]*Log, 0, len(e.logs))
	for _, l := range e.logs {
		logs = append(logs, l)
	}
	e.mu.Unlock()
	slices.SortFunc(logs, func(a, b *Log) int { return int(a.part) - int(b.part) })
	for _, l := range logs {
		l.mu.Lock()
		err := l.syncTailLocked()
		if err == nil {
			err = l.saveIndexSnapshotLocked()
		}
		l.mu.Unlock()
		if err != nil {
			return err
		}
	}
	// Tail blocks went to the device with WriteBlock only; without a
	// device flush they could still sit in a volatile write cache.
	return e.cfg.Dev.Flush()
}

// Sync makes one log's appended records durable by writing its partial
// tail block to the device and flushing the device's write cache,
// without the index-snapshot work Flush does. Callers use it after
// appends that must survive a crash on their own — version bumps, whose
// loss would un-revoke capabilities.
func (e *Engine) Sync(part uint16) error {
	l, err := e.getLog(part)
	if err != nil {
		return err
	}
	l.mu.Lock()
	err = l.syncTailLocked()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return e.cfg.Dev.Flush()
}

// LogBlocks returns every device block owned by part's log segments.
// Mount-time verification uses it to recompute the block reference
// counts the segments should hold.
func (e *Engine) LogBlocks(part uint16) ([]int64, error) {
	l, err := e.getLog(part)
	if err != nil {
		return nil, err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	var blocks []int64
	for _, s := range l.segs {
		blocks = append(blocks, s.blocks...)
	}
	return blocks, nil
}

// --- Compaction ----------------------------------------------------------

// maybeCompact kicks the background compactor if any sealed segment
// crossed the dead-byte threshold. At most one compactor runs per log.
func (e *Engine) maybeCompact(l *Log) {
	if e.cfg.CompactThreshold <= 0 {
		return
	}
	l.mu.RLock()
	hot := l.compactCandidateLocked() != nil
	l.mu.RUnlock()
	if !hot {
		return
	}
	if !l.compacting.CompareAndSwap(false, true) {
		return
	}
	if e.cfg.SyncCompact {
		e.compactLoop(l)
		return
	}
	go e.compactLoop(l)
}

func (l *Log) compactCandidateLocked() *segment {
	for _, s := range l.segs {
		if s == l.act || s.written == 0 {
			continue
		}
		dead := s.written - s.live
		if float64(dead) >= l.e.cfg.CompactThreshold*float64(s.written) {
			return s
		}
	}
	return nil
}

func (e *Engine) compactLoop(l *Log) {
	defer l.compacting.Store(false)
	for {
		l.mu.Lock()
		s := l.compactCandidateLocked()
		if s == nil {
			l.mu.Unlock()
			return
		}
		seq, freed := s.seq, len(s.blocks)
		err := l.compactSegmentLocked(s)
		l.mu.Unlock()
		if err != nil {
			e.cfg.Events.Emitf(telemetry.SevWarn, "needle", "compaction_error",
				"part=%d seg=%d: %v", l.part, seq, err)
			return
		}
		if e.compactions != nil {
			e.compactions.Inc()
		}
		e.cfg.Events.Emitf(telemetry.SevInfo, "needle", "compaction",
			"part=%d seg=%d freed_blocks=%d", l.part, seq, freed)
	}
}

// compactSegmentLocked copies src's live records and tombstones to the
// log tail (preserving their LSNs, so recovery ordering is unchanged),
// syncs the tail, then frees src. A crash mid-way leaves duplicate
// records, which LSN-merge recovery resolves; quota is only settled
// once src's blocks are actually returned.
func (l *Log) compactSegmentLocked(src *segment) error {
	raw, err := l.readSegDeviceLocked(src, src.written)
	if err != nil {
		return err
	}
	var cerr error
	scanRecords(raw, l.epoch, src.seq, 0, func(off int64, r *record) {
		if cerr != nil {
			return
		}
		if r.tombstone() {
			if _, _, aerr := l.appendLocked(r); aerr != nil {
				cerr = aerr
			}
			return
		}
		ent := l.index[r.obj]
		if ent == nil || ent.seg != src || ent.off != off {
			return // dead: superseded or removed
		}
		seg, noff, aerr := l.appendLocked(r)
		if aerr != nil {
			cerr = aerr
			return
		}
		l.index[r.obj] = &entry{seg: seg, off: noff, size: r.wireSize(), lsn: r.lsn, info: ent.info}
	})
	if cerr != nil {
		return cerr
	}
	if err := l.syncTailLocked(); err != nil {
		return err
	}
	for _, b := range src.blocks {
		_ = l.e.cfg.Space.FreeBlock(b)
	}
	l.e.cfg.Quota.SettleBlocks(l.part, -int64(len(src.blocks)))
	for i, s := range l.segs {
		if s == src {
			l.segs = append(l.segs[:i], l.segs[i+1:]...)
			break
		}
	}
	return l.saveSegmentsLocked()
}
