package costmodel

import (
	"math"
	"testing"
)

// The paper's Figure 4 / Section 3 anchor points.

func TestHighEndOneDiskOverhead(t *testing.T) {
	p := HighEnd.At(1)
	// "Servers built from high-end components have an overhead that
	// starts at 1,300% for one server-attached disk!"
	if p.OverheadPercent < 1290 || p.OverheadPercent > 1400 {
		t.Fatalf("overhead = %.0f%%, paper ~1300%%", p.OverheadPercent)
	}
	if p.NICs != 1 || p.DiskInterfaces != 1 {
		t.Fatalf("interfaces = %d NICs, %d IFs", p.NICs, p.DiskInterfaces)
	}
}

func TestHighEndSaturation(t *testing.T) {
	// "the high-end server saturates with 14 disks, 2 network
	// interfaces, and 4 disk interfaces with a 115% overhead cost."
	if got := HighEnd.SaturationDisks(); got != 14 {
		t.Fatalf("saturation = %d disks, paper 14", got)
	}
	p := HighEnd.At(14)
	if p.NICs != 2 {
		t.Fatalf("NICs = %d, paper 2", p.NICs)
	}
	if p.DiskInterfaces != 4 {
		t.Fatalf("disk interfaces = %d, paper 4", p.DiskInterfaces)
	}
	if math.Abs(p.OverheadPercent-115) > 5 {
		t.Fatalf("overhead = %.1f%%, paper 115%%", p.OverheadPercent)
	}
}

func TestLowCostOneDiskOverhead(t *testing.T) {
	p := LowCost.At(1)
	// "One disk suffers a 380% cost overhead"
	if math.Abs(p.OverheadPercent-380) > 5 {
		t.Fatalf("overhead = %.1f%%, paper 380%%", p.OverheadPercent)
	}
}

func TestLowCostSixDiskOverhead(t *testing.T) {
	// "with a 32bit PCI bus limit, a six disk system still suffers an
	// 80% cost overhead."
	if got := LowCost.SaturationDisks(); got != 6 {
		t.Fatalf("saturation = %d disks, paper 6", got)
	}
	p := LowCost.At(6)
	if math.Abs(p.OverheadPercent-80) > 3 {
		t.Fatalf("overhead = %.1f%%, paper 80%%", p.OverheadPercent)
	}
}

func TestOverheadDecreasesUntilSaturation(t *testing.T) {
	for _, cfg := range []ServerConfig{LowCost, HighEnd} {
		pts := cfg.Sweep(cfg.SaturationDisks())
		for i := 1; i < len(pts); i++ {
			if pts[i].OverheadPercent >= pts[i-1].OverheadPercent {
				t.Errorf("%s: overhead not decreasing at %d disks (%.0f%% -> %.0f%%)",
					cfg.Name, pts[i].Disks, pts[i-1].OverheadPercent, pts[i].OverheadPercent)
			}
		}
	}
}

func TestSaturationCapsBandwidth(t *testing.T) {
	p := HighEnd.At(20)
	if !p.Saturated {
		t.Fatal("20 disks not marked saturated")
	}
	if p.BandwidthMBps != HighEnd.MemoryMBps/2 {
		t.Fatalf("served bandwidth = %.0f, want memory limit %.0f", p.BandwidthMBps, HighEnd.MemoryMBps/2)
	}
	// Served bandwidth never exceeds the memory system limit, however
	// many disks are attached.
	for n := 15; n <= 40; n++ {
		if bw := HighEnd.At(n).BandwidthMBps; bw > HighEnd.MemoryMBps/2 {
			t.Fatalf("%d disks served %.0f MB/s, beyond memory limit", n, bw)
		}
	}
}

// "This bound would mean a reduction in server overhead costs of at
// least a factor of 10 and in total storage system cost (neglecting the
// network infrastructure) of over 50%."
func TestNASDComparisonSectionThree(t *testing.T) {
	cmp := HighEnd.CompareNASD(14, 0.10)
	// The paper rounds its 49.5% computed savings up to "over 50%".
	if cmp.SavingsPercent < 49 {
		t.Fatalf("NASD system savings = %.1f%%, paper ~50%%", cmp.SavingsPercent)
	}
	// Overhead reduction factor: server overhead (115%) vs NASD premium (10%).
	factor := cmp.ServerOverheadPct / cmp.NASDPremiumPercent
	if factor < 10 {
		t.Fatalf("overhead reduction factor = %.1f, paper >=10", factor)
	}
}

func TestPointString(t *testing.T) {
	s := HighEnd.At(14).String()
	if s == "" {
		t.Fatal("empty row")
	}
}
