// Package costmodel implements Figure 4 of the paper: the analytic cost
// model for traditional server architectures, estimating the server
// cost overhead (machine + network interfaces + disk interfaces,
// divided by raw disk cost) at maximum storage bandwidth.
//
// The model reproduces the paper's anchor points: a high-end server
// starts at ~1,300% overhead for one attached disk and saturates at 14
// disks with ~115% overhead; a low-cost server starts at ~380% and
// reaches ~80% at its six-disk saturation point.
package costmodel

import (
	"fmt"
	"math"
)

// ServerConfig describes one server architecture from Figure 4.
type ServerConfig struct {
	Name string
	// MachineCost is the base cost of the processor unit and memory.
	MachineCost float64
	// MemoryMBps is the memory system bandwidth. The paper assumes
	// every byte moves into and out of memory once, so usable storage
	// bandwidth is half of this.
	MemoryMBps float64
	// NICCost and NICMBps describe one network interface.
	NICCost float64
	NICMBps float64
	// DiskIFCost and DiskIFMBps describe one disk (SCSI) interface.
	DiskIFCost float64
	DiskIFMBps float64
	// DiskCost and DiskMBps describe one disk.
	DiskCost float64
	DiskMBps float64
}

// The two configurations of Figure 4 (1998 prices from Pricewatch).
var (
	// LowCost is the high-volume-component server: $1000 machine with a
	// 32-bit PCI / 133 MB/s memory system, $50 Fast Ethernet NICs,
	// $100 Ultra SCSI interfaces, and $300 Seagate Medallists (10 MB/s).
	LowCost = ServerConfig{
		Name:        "low-cost",
		MachineCost: 1000, MemoryMBps: 133,
		NICCost: 50, NICMBps: 100.0 / 8,
		DiskIFCost: 100, DiskIFMBps: 40,
		DiskCost: 300, DiskMBps: 10,
	}
	// HighEnd is the mid-range/enterprise server: $7000 machine with
	// dual 64-bit PCI / 532 MB/s memory, $650 Gigabit Ethernet NICs,
	// $400 Ultra2 SCSI interfaces, and $600 Seagate Cheetahs (18 MB/s).
	HighEnd = ServerConfig{
		Name:        "high-end",
		MachineCost: 7000, MemoryMBps: 532,
		NICCost: 650, NICMBps: 1000.0 / 8,
		DiskIFCost: 400, DiskIFMBps: 80,
		DiskCost: 600, DiskMBps: 18,
	}
)

// Point is one row of the Figure 4 analysis.
type Point struct {
	Disks           int
	BandwidthMBps   float64 // aggregate disk bandwidth served
	NICs            int
	DiskInterfaces  int
	ServerCost      float64 // machine + interfaces
	DiskCost        float64
	OverheadPercent float64 // server cost / disk cost * 100
	Saturated       bool    // memory system can no longer keep up
}

// SaturationDisks returns the number of disks at which the server's
// memory system saturates (every byte crosses memory twice).
func (c ServerConfig) SaturationDisks() int {
	usable := c.MemoryMBps / 2
	return int(usable / c.DiskMBps)
}

// At evaluates the model for n attached disks. Interface provisioning
// follows the paper's arithmetic: enough disk interfaces to carry the
// aggregate bandwidth (rounded up), and network interfaces rounded to
// the nearest whole card (the paper equips its saturated high-end
// server with 2 Gigabit NICs for 252 MB/s, tolerating a ~1% shortfall).
func (c ServerConfig) At(n int) Point {
	bw := float64(n) * c.DiskMBps
	sat := float64(n) > float64(c.SaturationDisks())
	served := bw
	if sat {
		served = c.MemoryMBps / 2
	}
	nics := int(math.Round(served / c.NICMBps))
	if nics < 1 {
		nics = 1
	}
	ifs := int(math.Ceil(served / c.DiskIFMBps))
	if ifs < 1 {
		ifs = 1
	}
	server := c.MachineCost + float64(nics)*c.NICCost + float64(ifs)*c.DiskIFCost
	disks := float64(n) * c.DiskCost
	return Point{
		Disks:           n,
		BandwidthMBps:   served,
		NICs:            nics,
		DiskInterfaces:  ifs,
		ServerCost:      server,
		DiskCost:        disks,
		OverheadPercent: 100 * server / disks,
		Saturated:       sat,
	}
}

// Sweep evaluates 1..maxDisks.
func (c ServerConfig) Sweep(maxDisks int) []Point {
	out := make([]Point, 0, maxDisks)
	for n := 1; n <= maxDisks; n++ {
		out = append(out, c.At(n))
	}
	return out
}

// NASDComparison is Section 3's bottom line: if NASD adds ~10% to disk
// cost, total system cost for the same bandwidth drops by the server
// overhead minus the NASD premium.
type NASDComparison struct {
	Disks              int
	ServerSystemCost   float64 // traditional server + disks
	NASDSystemCost     float64 // NASD disks (disk cost * (1 + premium))
	SavingsPercent     float64
	ServerOverheadPct  float64
	NASDPremiumPercent float64
}

// CompareNASD computes the Section 3 cost comparison for n disks with a
// NASD per-drive premium (the paper assumes 10%).
func (c ServerConfig) CompareNASD(n int, premium float64) NASDComparison {
	p := c.At(n)
	serverSystem := p.ServerCost + p.DiskCost
	nasdSystem := p.DiskCost * (1 + premium)
	return NASDComparison{
		Disks:              n,
		ServerSystemCost:   serverSystem,
		NASDSystemCost:     nasdSystem,
		SavingsPercent:     100 * (serverSystem - nasdSystem) / serverSystem,
		ServerOverheadPct:  p.OverheadPercent,
		NASDPremiumPercent: 100 * premium,
	}
}

// String formats a point as a table row.
func (p Point) String() string {
	sat := ""
	if p.Saturated {
		sat = " (saturated)"
	}
	return fmt.Sprintf("%3d disks  %6.1f MB/s  %d NICs  %d disk IFs  $%6.0f server / $%6.0f disks  overhead %6.0f%%%s",
		p.Disks, p.BandwidthMBps, p.NICs, p.DiskInterfaces, p.ServerCost, p.DiskCost, p.OverheadPercent, sat)
}
