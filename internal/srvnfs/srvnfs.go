// Package srvnfs is the traditional distributed-filesystem baseline the
// paper compares against: a store-and-forward NFS-style server that
// owns its disks and copies every byte of client data through itself
// (organization 2 of Figure 2). Clients never talk to storage; the
// server machine's CPU, memory system, and network links sit on the
// data path, which is exactly the bottleneck NASD removes.
//
// The server runs over the same RPC substrate as NASD drives so the
// functional comparison (e.g. the Andrew-style benchmark) exercises
// identical transports.
package srvnfs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"nasd/internal/blockdev"
	"nasd/internal/object"
	"nasd/internal/rpc"
)

// Procedure numbers (a compact NFS-flavoured protocol).
const (
	opLookup uint16 = iota + 1
	opRead
	opWrite
	opGetAttr
	opCreate
	opRemove
	opMkdir
	opReadDir
	opRename
)

// Errors.
var (
	ErrNotFound = errors.New("srvnfs: no such file or directory")
	ErrExists   = errors.New("srvnfs: already exists")
	ErrNotDir   = errors.New("srvnfs: not a directory")
	ErrNotEmpty = errors.New("srvnfs: directory not empty")
	ErrBadPath  = errors.New("srvnfs: invalid path")
)

// node is one namespace entry. The server keeps the namespace in
// memory (its role here is a performance and semantics baseline, not a
// durability study); file bytes live in per-disk object stores.
type node struct {
	isDir    bool
	children map[string]*node // directories
	store    int              // files: which disk's object store
	obj      uint64           // files: object ID
}

// Server is a store-and-forward NFS server over a set of disks.
type Server struct {
	mu     sync.Mutex
	stores []*object.Store
	root   *node
	next   int
}

// NewServer formats the given devices and serves files striped across
// them one-file-per-disk (the paper's NFS-parallel configuration reads
// one file per disk; the single-file case places one file on one disk).
func NewServer(devs []blockdev.Device) (*Server, error) {
	if len(devs) == 0 {
		return nil, errors.New("srvnfs: no disks")
	}
	s := &Server{root: &node{isDir: true, children: map[string]*node{}}}
	for _, dev := range devs {
		st, err := object.Format(dev, object.Config{})
		if err != nil {
			return nil, err
		}
		if err := st.CreatePartition(1, 0); err != nil {
			return nil, err
		}
		s.stores = append(s.stores, st)
	}
	return s, nil
}

func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrBadPath
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			return nil, ErrBadPath
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// walk resolves a path; caller holds mu.
func (s *Server) walk(path string) (*node, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur := s.root
	for _, name := range parts {
		if !cur.isDir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[name]
		if !ok {
			return nil, ErrNotFound
		}
		cur = next
	}
	return cur, nil
}

func (s *Server) walkParent(path string) (*node, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", ErrBadPath
	}
	cur := s.root
	for _, name := range parts[:len(parts)-1] {
		next, ok := cur.children[name]
		if !ok || !next.isDir {
			return nil, "", ErrNotFound
		}
		cur = next
	}
	return cur, parts[len(parts)-1], nil
}

// --- direct (in-process) API ------------------------------------------------

// Create makes a file, placing it on the next disk round-robin.
func (s *Server) Create(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, name, err := s.walkParent(path)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return ErrExists
	}
	idx := s.next % len(s.stores)
	s.next++
	obj, err := s.stores[idx].Create(1)
	if err != nil {
		return err
	}
	parent.children[name] = &node{store: idx, obj: obj}
	return nil
}

// Mkdir makes a directory.
func (s *Server) Mkdir(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, name, err := s.walkParent(path)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return ErrExists
	}
	parent.children[name] = &node{isDir: true, children: map[string]*node{}}
	return nil
}

// Remove unlinks a file or empty directory.
func (s *Server) Remove(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, name, err := s.walkParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if n.isDir {
		if len(n.children) > 0 {
			return ErrNotEmpty
		}
	} else if err := s.stores[n.store].Remove(1, n.obj); err != nil {
		return err
	}
	delete(parent.children, name)
	return nil
}

// Rename moves an entry.
func (s *Server) Rename(oldPath, newPath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	op, oldName, err := s.walkParent(oldPath)
	if err != nil {
		return err
	}
	np, newName, err := s.walkParent(newPath)
	if err != nil {
		return err
	}
	n, ok := op.children[oldName]
	if !ok {
		return ErrNotFound
	}
	if _, ok := np.children[newName]; ok {
		return ErrExists
	}
	delete(op.children, oldName)
	np.children[newName] = n
	return nil
}

// Read returns file bytes — through the server, by definition.
func (s *Server) Read(path string, off uint64, n int) ([]byte, error) {
	s.mu.Lock()
	nd, err := s.walk(path)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if nd.isDir {
		return nil, ErrNotDir
	}
	return s.stores[nd.store].Read(1, nd.obj, off, n)
}

// Write stores file bytes through the server.
func (s *Server) Write(path string, off uint64, data []byte) error {
	s.mu.Lock()
	nd, err := s.walk(path)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if nd.isDir {
		return ErrNotDir
	}
	return s.stores[nd.store].Write(1, nd.obj, off, data)
}

// GetAttr returns file attributes through the server.
func (s *Server) GetAttr(path string) (object.Attributes, error) {
	s.mu.Lock()
	nd, err := s.walk(path)
	s.mu.Unlock()
	if err != nil {
		return object.Attributes{}, err
	}
	if nd.isDir {
		return object.Attributes{}, ErrNotDir
	}
	return s.stores[nd.store].GetAttr(1, nd.obj)
}

// ReadDir lists a directory.
func (s *Server) ReadDir(path string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, err := s.walk(path)
	if err != nil {
		return nil, err
	}
	if !nd.isDir {
		return nil, ErrNotDir
	}
	out := make([]string, 0, len(nd.children))
	for name := range nd.children {
		out = append(out, name)
	}
	return out, nil
}

// --- RPC service --------------------------------------------------------------

func statusFor(err error) rpc.Status {
	switch {
	case errors.Is(err, ErrNotFound):
		return rpc.StatusNoObject
	case errors.Is(err, ErrExists), errors.Is(err, ErrNotDir),
		errors.Is(err, ErrNotEmpty), errors.Is(err, ErrBadPath):
		return rpc.StatusBadRequest
	default:
		return rpc.StatusError
	}
}

// Handle implements rpc.Handler so the baseline serves the same
// transports as NASD drives.
func (s *Server) Handle(req *rpc.Request) *rpc.Reply {
	d := rpc.NewDecoder(req.Args)
	fail := func(err error) *rpc.Reply {
		return rpc.Errorf(req.MsgID, statusFor(err), "%v", err)
	}
	switch req.Proc {
	case opRead:
		path := d.String()
		off := d.U64()
		n := d.U32()
		if d.Err() != nil {
			return fail(d.Err())
		}
		data, err := s.Read(path, off, int(n))
		if err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK, Data: data}
	case opWrite:
		path := d.String()
		off := d.U64()
		if d.Err() != nil {
			return fail(d.Err())
		}
		if err := s.Write(path, off, req.Data); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opGetAttr:
		path := d.String()
		if d.Err() != nil {
			return fail(d.Err())
		}
		a, err := s.GetAttr(path)
		if err != nil {
			return fail(err)
		}
		var e rpc.Encoder
		e.U64(a.Size)
		e.I64(a.ModTime.Unix())
		return &rpc.Reply{Status: rpc.StatusOK, Args: e.Bytes()}
	case opCreate:
		if err := s.Create(d.String()); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opMkdir:
		if err := s.Mkdir(d.String()); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opRemove:
		if err := s.Remove(d.String()); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opRename:
		oldP := d.String()
		newP := d.String()
		if err := s.Rename(oldP, newP); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opReadDir:
		names, err := s.ReadDir(d.String())
		if err != nil {
			return fail(err)
		}
		var e rpc.Encoder
		e.U32(uint32(len(names)))
		for _, n := range names {
			e.String(n)
		}
		return &rpc.Reply{Status: rpc.StatusOK, Args: e.Bytes()}
	default:
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "unknown proc %d", req.Proc)
	}
}

var _ rpc.Handler = (*Server)(nil)

// Client is an NFS client of the store-and-forward server.
type Client struct {
	cli *rpc.Client
}

// NewClient wraps a connection to the server.
func NewClient(conn rpc.Conn) *Client { return &Client{cli: rpc.NewClient(conn)} }

// Close releases the connection.
func (c *Client) Close() error { return c.cli.Close() }

func (c *Client) call(proc uint16, args, data []byte) (*rpc.Reply, error) {
	rep, err := c.cli.Call(context.Background(), &rpc.Request{Proc: proc, Args: args, Data: data})
	if err != nil {
		return nil, err
	}
	if rep.Status != rpc.StatusOK {
		return nil, fmt.Errorf("srvnfs: %v: %s", rep.Status, rep.Msg)
	}
	return rep, nil
}

// Read fetches file bytes via the server.
func (c *Client) Read(path string, off uint64, n int) ([]byte, error) {
	var e rpc.Encoder
	e.String(path)
	e.U64(off)
	e.U32(uint32(n))
	rep, err := c.call(opRead, e.Bytes(), nil)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Write stores file bytes via the server.
func (c *Client) Write(path string, off uint64, data []byte) error {
	var e rpc.Encoder
	e.String(path)
	e.U64(off)
	_, err := c.call(opWrite, e.Bytes(), data)
	return err
}

// GetAttr fetches size and mtime via the server.
func (c *Client) GetAttr(path string) (size uint64, mtimeUnix int64, err error) {
	var e rpc.Encoder
	e.String(path)
	rep, err := c.call(opGetAttr, e.Bytes(), nil)
	if err != nil {
		return 0, 0, err
	}
	d := rpc.NewDecoder(rep.Args)
	return d.U64(), d.I64(), d.Err()
}

// Create makes a file.
func (c *Client) Create(path string) error {
	var e rpc.Encoder
	e.String(path)
	_, err := c.call(opCreate, e.Bytes(), nil)
	return err
}

// Mkdir makes a directory.
func (c *Client) Mkdir(path string) error {
	var e rpc.Encoder
	e.String(path)
	_, err := c.call(opMkdir, e.Bytes(), nil)
	return err
}

// Remove unlinks.
func (c *Client) Remove(path string) error {
	var e rpc.Encoder
	e.String(path)
	_, err := c.call(opRemove, e.Bytes(), nil)
	return err
}

// Rename moves.
func (c *Client) Rename(oldPath, newPath string) error {
	var e rpc.Encoder
	e.String(oldPath)
	e.String(newPath)
	_, err := c.call(opRename, e.Bytes(), nil)
	return err
}

// ReadDir lists.
func (c *Client) ReadDir(path string) ([]string, error) {
	var e rpc.Encoder
	e.String(path)
	rep, err := c.call(opReadDir, e.Bytes(), nil)
	if err != nil {
		return nil, err
	}
	d := rpc.NewDecoder(rep.Args)
	n := int(d.U32())
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String())
	}
	return out, d.Err()
}
