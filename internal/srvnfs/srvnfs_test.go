package srvnfs

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"nasd/internal/blockdev"
	"nasd/internal/rpc"
)

func newServer(t *testing.T, nDisks int) *Server {
	t.Helper()
	var devs []blockdev.Device
	for i := 0; i < nDisks; i++ {
		devs = append(devs, blockdev.NewMemDisk(4096, 4096))
	}
	s, err := NewServer(devs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDirectAPIRoundTrip(t *testing.T) {
	s := newServer(t, 2)
	if err := s.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/dir/file"); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 20000)
	if err := s.Write("/dir/file", 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read("/dir/file", 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	a, err := s.GetAttr("/dir/file")
	if err != nil || a.Size != uint64(len(data)) {
		t.Fatalf("attr = %+v, %v", a, err)
	}
}

func TestNamespaceSemantics(t *testing.T) {
	s := newServer(t, 1)
	if err := s.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/f"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := s.Remove("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove missing: %v", err)
	}
	if err := s.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty: %v", err)
	}
	if err := s.Rename("/d/x", "/y"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("/y/z", 0, 1); !errors.Is(err, ErrNotDir) {
		t.Fatalf("walk through file: %v", err)
	}
}

func TestFilesSpreadRoundRobin(t *testing.T) {
	s := newServer(t, 3)
	for _, name := range []string{"/a", "/b", "/c"} {
		if err := s.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	used := map[int]bool{}
	s.mu.Lock()
	for _, n := range s.root.children {
		used[n.store] = true
	}
	s.mu.Unlock()
	if len(used) != 3 {
		t.Fatalf("files on %d of 3 disks", len(used))
	}
}

func TestRPCClientServer(t *testing.T) {
	s := newServer(t, 2)
	l := rpc.NewInProcListener("nfs")
	srv := rpc.NewServer(s)
	go srv.Serve(l)
	t.Cleanup(srv.Close)

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	t.Cleanup(func() { c.Close() })

	if err := c.Mkdir("/home"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/home/notes"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("srv"), 5000)
	if err := c.Write("/home/notes", 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read("/home/notes", 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("rpc round trip: %v", err)
	}
	size, _, err := c.GetAttr("/home/notes")
	if err != nil || size != uint64(len(payload)) {
		t.Fatalf("attr: %d, %v", size, err)
	}
	if err := c.Rename("/home/notes", "/home/log"); err != nil {
		t.Fatal(err)
	}
	names, err := c.ReadDir("/home")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	if len(names) != 1 || names[0] != "log" {
		t.Fatalf("readdir = %v", names)
	}
	if err := c.Remove("/home/log"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("/home/log", 0, 1); err == nil {
		t.Fatal("read of removed file succeeded")
	}
}
