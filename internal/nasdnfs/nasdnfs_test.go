package nasdnfs

import (
	"bytes"
	"context"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/filemgr"
	"nasd/internal/rpc"
)

func newEnv(t *testing.T, nDrives int, expiry time.Duration) (*filemgr.FM, []*client.Drive) {
	t.Helper()
	var targets []filemgr.DriveTarget
	var clis []*client.Drive
	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 8192)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		l := rpc.NewInProcListener("d")
		srv := drv.Serve(l)
		t.Cleanup(srv.Close)
		mk := func() *client.Drive {
			conn, err := l.Dial()
			if err != nil {
				t.Fatal(err)
			}
			// Every connection gets a distinct client identity: nonce
			// counters are per client, so sharing an ID across
			// connections would look like replays to the drive.
			nextClientID++
			c := client.New(conn, uint64(1+i), nextClientID)
			t.Cleanup(func() { c.Close() })
			return c
		}
		targets = append(targets, filemgr.DriveTarget{Client: mk(), DriveID: uint64(1 + i), Master: master})
		clis = append(clis, mk())
	}
	fm, err := filemgr.Format(testCtx, filemgr.Config{Drives: targets, CapExpiry: expiry})
	if err != nil {
		t.Fatal(err)
	}
	return fm, clis
}

var alice = filemgr.Identity{UID: 10, GIDs: []uint32{100}}

var testCtx = context.Background()

var nextClientID uint64 = 5000

func TestReadWriteRoundTrip(t *testing.T) {
	fm, drives := newEnv(t, 2, 0)
	c := New(fm, drives, alice)
	if err := c.Create(testCtx, "/data.bin", 0o644); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("nfs"), 10000)
	if err := c.Write(testCtx, "/data.bin", 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(testCtx, "/data.bin", 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %v", err)
	}
	// Partial read at offset.
	got, err = c.Read(testCtx, "/data.bin", 3, 3)
	if err != nil || string(got) != "nfs" {
		t.Fatalf("offset read = %q, %v", got, err)
	}
}

func TestGetAttrGoesDriveDirect(t *testing.T) {
	fm, drives := newEnv(t, 1, 0)
	c := New(fm, drives, alice)
	if err := c.Create(testCtx, "/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(testCtx, "/f", 0, []byte("12345")); err != nil {
		t.Fatal(err)
	}
	a, err := c.GetAttr(testCtx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != 5 {
		t.Fatalf("size = %d", a.Size)
	}
}

func TestCapabilityCachingAvoidsFileManager(t *testing.T) {
	fm, drives := newEnv(t, 1, 0)
	c := New(fm, drives, alice)
	if err := c.Create(testCtx, "/hot", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(testCtx, "/hot", 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Read(testCtx, "/hot", 0, 4096); err != nil {
			t.Fatal(err)
		}
	}
	// Create registers its capability under four rights keys; repeated
	// reads reuse the cached entry instead of minting new ones.
	if n := c.CachedCapabilities(); n < 1 || n > 4 {
		t.Fatalf("cached capabilities = %d", n)
	}
}

func TestExpiredCapabilityTransparentlyRefreshed(t *testing.T) {
	// Short expiry: cached capabilities go stale between operations and
	// the client must refresh from the file manager without surfacing
	// an error.
	fm, drives := newEnv(t, 1, 30*time.Millisecond)
	c := New(fm, drives, alice)
	if err := c.Create(testCtx, "/flaky", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(testCtx, "/flaky", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let the cached capability expire
	if err := c.Write(testCtx, "/flaky", 0, []byte("y")); err != nil {
		t.Fatalf("write after expiry not refreshed: %v", err)
	}
	got, err := c.Read(testCtx, "/flaky", 0, 1)
	if err != nil || string(got) != "y" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestRevocationRefresh(t *testing.T) {
	fm, drives := newEnv(t, 1, 0)
	c := New(fm, drives, alice)
	if err := c.Create(testCtx, "/doc", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(testCtx, "/doc", 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(testCtx, "/doc", 0, 2); err != nil {
		t.Fatal(err)
	}
	// The file manager revokes all capabilities (version bump); the
	// client's cached capability is now dead but the next read
	// re-acquires transparently.
	if err := fm.Revoke(testCtx, alice, "/doc"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(testCtx, "/doc", 0, 2)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read after revocation = %q, %v", got, err)
	}
}

func TestNamespaceOperations(t *testing.T) {
	fm, drives := newEnv(t, 2, 0)
	c := New(fm, drives, alice)
	if err := c.Mkdir(testCtx, "/proj", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(testCtx, "/proj/a", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(testCtx, "/proj/a", "/proj/b"); err != nil {
		t.Fatal(err)
	}
	ents, err := c.ReadDir(testCtx, "/proj")
	if err != nil || len(ents) != 1 || ents[0].Name != "b" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	if err := c.Remove(testCtx, "/proj/b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(testCtx, "/proj"); err != nil {
		t.Fatal(err)
	}
	info, err := c.Stat(testCtx, "/")
	if err != nil || info.Mode&filemgr.ModeDir == 0 {
		t.Fatalf("stat / = %+v, %v", info, err)
	}
}

func TestTwoClientsShareData(t *testing.T) {
	fm, drives := newEnv(t, 2, 0)
	writer := New(fm, drives, alice)
	reader := New(fm, drives, filemgr.Identity{UID: 11})
	if err := writer.Create(testCtx, "/shared", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writer.Write(testCtx, "/shared", 0, []byte("broadcast")); err != nil {
		t.Fatal(err)
	}
	got, err := reader.Read(testCtx, "/shared", 0, 9)
	if err != nil || string(got) != "broadcast" {
		t.Fatalf("second client read = %q, %v", got, err)
	}
}
