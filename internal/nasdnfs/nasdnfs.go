// Package nasdnfs is the paper's NFS port to NASD (Section 5.1): an
// NFS-flavoured client where data-moving operations (read, write) and
// attribute reads (getattr) go directly to NASD drives, while namespace
// and policy operations (lookup, create, remove, mkdir, readdir,
// rename) go to the file manager. Capabilities are piggybacked on
// lookup responses and cached; when a drive rejects a capability
// (expiry or revocation) the client transparently re-looks-up, exactly
// the "client is sent back to the file manager" recovery of Section 4.1.
//
// Consistency is NFS-weak: attribute reads go to the drive, and
// concurrent writers are not serialized beyond per-request atomicity.
package nasdnfs

import (
	"context"
	"errors"
	"sync"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/filemgr"
	"nasd/internal/object"
)

// FileManager is the policy-path interface the NFS port consults. It is
// satisfied by *filemgr.FM directly (co-located file manager) and by
// fmrpc.Client (file manager across the network).
type FileManager interface {
	Lookup(ctx context.Context, id filemgr.Identity, path string, want capability.Rights) (filemgr.Handle, filemgr.FileInfo, capability.Capability, error)
	Create(ctx context.Context, id filemgr.Identity, path string, mode uint32) (filemgr.Handle, capability.Capability, error)
	Mkdir(ctx context.Context, id filemgr.Identity, path string, mode uint32) (filemgr.Handle, error)
	Remove(ctx context.Context, id filemgr.Identity, path string) error
	Rename(ctx context.Context, id filemgr.Identity, oldPath, newPath string) error
	ReadDir(ctx context.Context, id filemgr.Identity, path string) ([]filemgr.DirEntry, error)
	Stat(ctx context.Context, id filemgr.Identity, path string) (filemgr.FileInfo, error)
}

// Client is an NFS-style client of a NASD filesystem.
type Client struct {
	fm     FileManager
	drives []*client.Drive // indexed like the file manager's drive table
	id     filemgr.Identity

	mu   sync.Mutex
	caps map[capKey]entry
}

type capKey struct {
	path   string
	rights capability.Rights
}

type entry struct {
	h   filemgr.Handle
	cap capability.Capability
}

// New builds a client for identity id. drives must be connections to
// the same drives, in the same order, as the file manager's table.
func New(fm FileManager, drives []*client.Drive, id filemgr.Identity) *Client {
	return &Client{fm: fm, drives: drives, id: id, caps: make(map[capKey]entry)}
}

// lookup resolves a path at the file manager and caches the piggybacked
// capability.
func (c *Client) lookup(ctx context.Context, path string, rights capability.Rights) (entry, error) {
	h, _, cap, err := c.fm.Lookup(ctx, c.id, path, rights)
	if err != nil {
		return entry{}, err
	}
	e := entry{h: h, cap: cap}
	c.mu.Lock()
	c.caps[capKey{path, rights}] = e
	c.mu.Unlock()
	return e, nil
}

func (c *Client) cached(path string, rights capability.Rights) (entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.caps[capKey{path, rights}]
	return e, ok
}

func (c *Client) invalidate(path string, rights capability.Rights) {
	c.mu.Lock()
	delete(c.caps, capKey{path, rights})
	c.mu.Unlock()
}

// CachedCapabilities reports how many capabilities the client holds —
// the measure of how rarely the file manager sits in the data path.
func (c *Client) CachedCapabilities() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.caps)
}

// withCap runs op with a capability for (path, rights): cached when
// available (the common case — the file manager is off the data path),
// fetched on miss, and re-fetched once when the drive rejects it.
func (c *Client) withCap(ctx context.Context, path string, rights capability.Rights, op func(h filemgr.Handle, cap capability.Capability) error) error {
	e, ok := c.cached(path, rights)
	if !ok {
		var err error
		e, err = c.lookup(ctx, path, rights)
		if err != nil {
			return err
		}
	}
	err := op(e.h, e.cap)
	if errors.Is(err, client.ErrAuth) {
		// Stale capability (expired, revoked, or the file was replaced):
		// revisit the file manager once, as Section 4.1 prescribes.
		c.invalidate(path, rights)
		e, err = c.lookup(ctx, path, rights)
		if err != nil {
			return err
		}
		return op(e.h, e.cap)
	}
	return err
}

// Read returns up to n bytes at off, moving data drive-direct.
func (c *Client) Read(ctx context.Context, path string, off uint64, n int) ([]byte, error) {
	var out []byte
	err := c.withCap(ctx, path, capability.Read, func(h filemgr.Handle, cap capability.Capability) error {
		data, err := c.drives[h.Drive].ReadPipelined(ctx, &cap, h.Partition, h.Object, off, n)
		out = data
		return err
	})
	return out, err
}

// Write stores data at off, drive-direct.
func (c *Client) Write(ctx context.Context, path string, off uint64, data []byte) error {
	return c.withCap(ctx, path, capability.Write, func(h filemgr.Handle, cap capability.Capability) error {
		return c.drives[h.Drive].WritePipelined(ctx, &cap, h.Partition, h.Object, off, data)
	})
}

// GetAttr fetches attributes drive-direct (Section 5.1 sends getattr to
// the drive; policy attributes come from the uninterpreted block).
func (c *Client) GetAttr(ctx context.Context, path string) (object.Attributes, error) {
	var out object.Attributes
	err := c.withCap(ctx, path, capability.GetAttr, func(h filemgr.Handle, cap capability.Capability) error {
		a, err := c.drives[h.Drive].GetAttr(ctx, &cap, h.Partition, h.Object)
		out = a
		return err
	})
	return out, err
}

// Stat goes through the file manager (policy attributes included).
func (c *Client) Stat(ctx context.Context, path string) (filemgr.FileInfo, error) {
	return c.fm.Stat(ctx, c.id, path)
}

// Create, Remove, Mkdir, Rename, ReadDir are file manager operations.

// Create makes a file.
func (c *Client) Create(ctx context.Context, path string, mode uint32) error {
	h, cap, err := c.fm.Create(ctx, c.id, path, mode)
	if err != nil {
		return err
	}
	rw := capability.Read | capability.Write | capability.GetAttr
	c.mu.Lock()
	// The creation capability covers read, write, and getattr; register
	// it under each so first accesses skip the file manager.
	for _, r := range []capability.Rights{rw, capability.Read, capability.Write, capability.GetAttr} {
		c.caps[capKey{path, r}] = entry{h: h, cap: cap}
	}
	c.mu.Unlock()
	return nil
}

// Remove unlinks a file or empty directory.
func (c *Client) Remove(ctx context.Context, path string) error { return c.fm.Remove(ctx, c.id, path) }

// Mkdir makes a directory.
func (c *Client) Mkdir(ctx context.Context, path string, mode uint32) error {
	_, err := c.fm.Mkdir(ctx, c.id, path, mode)
	return err
}

// Rename moves a file.
func (c *Client) Rename(ctx context.Context, oldPath, newPath string) error {
	return c.fm.Rename(ctx, c.id, oldPath, newPath)
}

// ReadDir lists a directory.
func (c *Client) ReadDir(ctx context.Context, path string) ([]filemgr.DirEntry, error) {
	return c.fm.ReadDir(ctx, c.id, path)
}
