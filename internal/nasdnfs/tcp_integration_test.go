package nasdnfs

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"nasd/internal/blockdev"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/filemgr"
	"nasd/internal/rpc"
)

// TestFullStackOverTCP runs the complete NASD filesystem over real TCP
// sockets: three secure drives, a file manager, and four concurrent
// NFS-port clients hammering a shared tree. This is the closest the
// test suite gets to the paper's deployment picture.
func TestFullStackOverTCP(t *testing.T) {
	const nDrives = 3
	var targets []filemgr.DriveTarget
	var addrs []string
	var clientID atomic.Uint64
	clientID.Store(40_000)

	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 16384)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		l, err := rpc.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := drv.Serve(l)
		t.Cleanup(srv.Close)
		addrs = append(addrs, l.Addr())

		conn, err := rpc.DialTCP(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmCli := client.New(conn, uint64(1+i), clientID.Add(1))
		t.Cleanup(func() { fmCli.Close() })
		targets = append(targets, filemgr.DriveTarget{Client: fmCli, DriveID: uint64(1 + i), Master: master})
	}
	fm, err := filemgr.Format(testCtx, filemgr.Config{Drives: targets})
	if err != nil {
		t.Fatal(err)
	}

	var cleanupMu sync.Mutex
	var conns []*client.Drive
	t.Cleanup(func() {
		cleanupMu.Lock()
		defer cleanupMu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	dialAll := func() []*client.Drive {
		out := make([]*client.Drive, nDrives)
		for i, addr := range addrs {
			conn, err := rpc.DialTCP(addr)
			if err != nil {
				t.Error(err)
				return nil
			}
			c := client.New(conn, uint64(1+i), clientID.Add(1))
			cleanupMu.Lock()
			conns = append(conns, c)
			cleanupMu.Unlock()
			out[i] = c
		}
		return out
	}

	const nClients = 4
	var wg sync.WaitGroup
	errs := make([]error, nClients)
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = func() error {
				id := filemgr.Identity{UID: uint32(100 + c)}
				cli := New(fm, dialAll(), id)
				root := fmt.Sprintf("/user%d", c)
				if err := cli.Mkdir(testCtx, root, 0o755); err != nil {
					return err
				}
				payload := bytes.Repeat([]byte{byte(c)}, 100_000)
				for f := 0; f < 5; f++ {
					path := fmt.Sprintf("%s/file%d", root, f)
					if err := cli.Create(testCtx, path, 0o644); err != nil {
						return err
					}
					if err := cli.Write(testCtx, path, 0, payload); err != nil {
						return err
					}
					got, err := cli.Read(testCtx, path, 0, len(payload))
					if err != nil {
						return err
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("client %d: file %d corrupted", c, f)
					}
				}
				ents, err := cli.ReadDir(testCtx, root)
				if err != nil {
					return err
				}
				if len(ents) != 5 {
					return fmt.Errorf("client %d: %d entries", c, len(ents))
				}
				return nil
			}()
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}

	// Cross-client isolation: a 0644 file is readable but not writable
	// by another identity.
	intruder := New(fm, dialAll(), filemgr.Identity{UID: 999})
	if _, err := intruder.Read(testCtx, "/user0/file0", 0, 10); err != nil {
		t.Errorf("world-readable file not readable: %v", err)
	}
	if err := intruder.Write(testCtx, "/user0/file0", 0, []byte("defaced")); err == nil {
		t.Error("foreign write to 0644 file succeeded")
	}
}

// TestDriveDeathSurfacesCleanly verifies that a drive dropping off the
// network turns into ordinary errors at the NFS layer, not hangs.
func TestDriveDeathSurfacesCleanly(t *testing.T) {
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 8192)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 1, Master: master, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := drv.Serve(l)

	conn, err := rpc.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmCli := client.New(conn, 1, 50_001)
	fm, err := filemgr.Format(testCtx, filemgr.Config{
		Drives: []filemgr.DriveTarget{{Client: fmCli, DriveID: 1, Master: master}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dataConn, err := rpc.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	dataCli := client.New(dataConn, 1, 50_002)
	cli := New(fm, []*client.Drive{dataCli}, filemgr.Identity{UID: 7})
	if err := cli.Create(testCtx, "/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(testCtx, "/f", 0, []byte("alive")); err != nil {
		t.Fatal(err)
	}

	// Kill the drive.
	srv.Close()
	if _, err := cli.Read(testCtx, "/f", 0, 5); err == nil {
		t.Fatal("read from dead drive succeeded")
	}
}
