package experiments

import (
	"reflect"
	"testing"
)

// TestSimulationsDeterministic: every simulated experiment must produce
// bit-identical results across runs (seeded, single event loop). This
// is what makes the EXPERIMENTS.md numbers reproducible anywhere.
func TestSimulationsDeterministic(t *testing.T) {
	for _, id := range []string{"fig6", "fig7", "active", "ablation-rpc"} {
		a, err := Run(id, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Errorf("%s: two runs produced different rows", id)
		}
	}
}
