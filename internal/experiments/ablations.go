package experiments

import (
	"fmt"
	"time"

	"nasd/internal/drive"
	"nasd/internal/hw"
	"nasd/internal/sim"
)

func init() {
	register("ablation-rpc", runAblationRPC)
	register("ablation-security", runAblationSecurity)
}

// runAblationRPC quantifies the paper's Section 4.4 conclusion — "NASD
// control is not necessarily too expensive but workstation-class
// implementations of communications certainly are" — by re-running the
// Figure 7 single-client configuration under three protocol stacks:
// the measured DCE RPC costs, a lean drive protocol (the "less costly
// RPC mechanism" the paper says commodity NASD drives must have), and
// an intermediate UDP-class stack.
func runAblationRPC(quick bool) (*Result, error) {
	res := &Result{
		ID:    "ablation-rpc",
		Title: "RPC stack ablation: per-client bandwidth vs protocol cost (Fig 7 config, 1 client)",
	}
	simTime := 2 * time.Second
	if quick {
		simTime = time.Second
	}
	stacks := []struct {
		name  string
		proto hw.ProtocolCost
	}{
		{"DCE RPC / UDP / IP (measured)", hw.DCERPCCost},
		{"UDP-class stack", hw.ProtocolCost{PerMessage: 12000, SendPerByte: 1.2, RecvPerByte: 3.0}},
		{"lean drive protocol", hw.LeanRPCCost},
	}
	for _, st := range stacks {
		got := ablationRPCRun(st.proto, simTime)
		res.Rows = append(res.Rows, Row{
			Series: "per-client cached-read bandwidth",
			X:      st.name,
			Got:    got,
			Unit:   "MB/s",
		})
	}
	// With the lean stack the limit moves to the wire (16.9 MB/s OC-3
	// payload), an order of magnitude above the DCE result.
	res.Summary = "the protocol stack, not NASD control, bounds client bandwidth; a lean stack recovers the wire rate"
	return res, nil
}

// ablationRPCRun is fig7 with one client and a configurable stack on
// both ends.
func ablationRPCRun(proto hw.ProtocolCost, simTime time.Duration) float64 {
	const (
		stripeUnit = 512 << 10
		width      = 4
	)
	env := sim.NewEnv(7)
	drives := make([]*hw.Host, width)
	for i := range drives {
		cpu := hw.NewCPU(env, fmt.Sprintf("nasd%d", i), 133, 2.2)
		nic := hw.NewDuplex(env, fmt.Sprintf("nasd%d.atm", i), hw.OC3ATMBytesPerSec, hw.LANLatency)
		drives[i] = hw.NewHost(env, fmt.Sprintf("nasd%d", i), cpu, nic, proto)
	}
	cpu := hw.NewCPU(env, "client", 233, 2.2)
	nic := hw.NewDuplex(env, "client.atm", hw.OC3ATMBytesPerSec, hw.LANLatency)
	cl := hw.NewHost(env, "client", cpu, nic, proto)

	var bytes sim.Counter
	env.Go("client", func(p *sim.Proc) {
		for {
			events := make([]*sim.Event, width)
			for u := 0; u < width; u++ {
				drv := drives[u]
				ev := env.NewEvent()
				events[u] = ev
				env.Go("req", func(q *sim.Proc) {
					fig7Request(q, cl, drv, stripeUnit)
					ev.Fire(nil)
				})
			}
			sim.WaitAll(p, events...)
			bytes.Add(width * stripeUnit)
		}
	})
	env.RunUntil(simTime)
	return bytes.RatePerSec(simTime) / hw.MB
}

// runAblationSecurity quantifies Section 4.1's security argument. The
// paper disabled its security protocol because "software
// implementations operating at disk rates are not available with the
// computational resources we expect on a disk", and proposes DES-class
// MAC hardware instead. The ablation compares request service times on
// the 200 MHz drive core for three designs: security off (the paper's
// measurement mode), software MACs (a per-byte digest charge on the
// drive CPU), and hardware MACs (fixed setup cost only, digest at line
// rate).
func runAblationSecurity(quick bool) (*Result, error) {
	res := &Result{
		ID:    "ablation-security",
		Title: "Security ablation: 512 KB read service time on the drive core",
	}
	const (
		size = 512 << 10
		// Software MAC on a 200 MHz embedded core: ~10 instructions per
		// byte for a DES-class keyed digest.
		swMACPerByte = 10.0
		// Hardware MAC: capability recompute + setup only.
		hwMACFixed = 4000.0
	)
	base := drive.CostModel(drive.OpReadObject, size, false)
	modes := []struct {
		name  string
		extra float64 // added instructions
	}{
		{"security disabled (paper's runs)", 0},
		{"software MAC", swMACPerByte * size},
		{"hardware MAC (proposed ASIC)", hwMACFixed},
	}
	for _, m := range modes {
		total := float64(base.Total()) + m.extra
		ms := total * drive.TargetCPI / (drive.TargetMHz * 1e6) * 1e3
		res.Rows = append(res.Rows, Row{
			Series: "512 KB warm read",
			X:      m.name,
			Got:    ms,
			Unit:   "ms",
		})
		// Implied single-stream bandwidth.
		res.Rows = append(res.Rows, Row{
			Series: "implied drive throughput",
			X:      m.name,
			Got:    float64(size) / (ms / 1e3) / 1e6,
			Unit:   "MB/s",
		})
	}
	res.Summary = "software MACs more than double the data-path cost; the paper's few-10k-gate MAC hardware makes security nearly free"
	return res, nil
}
