package experiments

import (
	"fmt"
	"time"

	"nasd/internal/hw"
	"nasd/internal/sim"
)

func init() { register("fig9", runFig9) }

// Figure 9: scaling of the parallel data-mining application (the
// I/O-bound 1-itemset pass over a 300 MB sales-transaction file).
//
// Three configurations:
//
//   - NASD: n clients read a single NASD PFS file striped (512 KB unit)
//     across n prototype drives; bandwidth scales linearly at ~6.2 MB/s
//     per client-drive pair up to 45 MB/s at 8 drives. Each drive's
//     dual Medallists supply 7.5 MB/s raw; interleaved chunk streams
//     from multiple clients cost some positioning, hence 6.2.
//   - NFS: all clients read one file striped across n disks inside a
//     fast NFS server (AlphaStation 500/500, two OC-3 links, Cheetahs).
//     Small NFS transfers put the server CPU on every byte and
//     multi-stream access defeats its prefetching: ~20.2 MB/s plateau.
//   - NFS-parallel: each client reads a replica on its own disk through
//     the same server; prefetching works but the store-and-forward CPU
//     still bounds the system: ~22.5 MB/s.
func runFig9(quick bool) (*Result, error) {
	res := &Result{
		ID:    "fig9",
		Title: "Scaling of the parallel data-mining application (aggregate MB/s vs disks)",
	}
	fileMB := 300
	if quick {
		fileMB = 60
	}
	maxDisks := 8
	paperNASD := map[int]float64{1: 6.2, 2: 12.4, 4: 24.8, 8: 45}
	for n := 1; n <= maxDisks; n++ {
		got := fig9NASD(n, fileMB)
		res.Rows = append(res.Rows, Row{
			Series: "NASD (n clients, n drives, one striped PFS file)",
			X:      fmt.Sprintf("%d drives", n),
			Paper:  paperNASD[n],
			Got:    got,
			Unit:   "MB/s",
		})
	}
	paperNFS := map[int]float64{8: 20.2}
	for n := 1; n <= maxDisks; n++ {
		got := fig9NFS(n, fileMB, false)
		res.Rows = append(res.Rows, Row{
			Series: "NFS (single file striped over n server disks, 10 clients)",
			X:      fmt.Sprintf("%d disks", n),
			Paper:  paperNFS[n],
			Got:    got,
			Unit:   "MB/s",
		})
	}
	paperNFSPar := map[int]float64{8: 22.5}
	for n := 1; n <= maxDisks; n++ {
		got := fig9NFS(n, fileMB, true)
		res.Rows = append(res.Rows, Row{
			Series: "NFS-parallel (per-disk file replicas, 10 clients)",
			X:      fmt.Sprintf("%d disks", n),
			Paper:  paperNFSPar[n],
			Got:    got,
			Unit:   "MB/s",
		})
	}
	res.Summary = "NASD scales linearly (~6 MB/s per client-drive pair); the NFS server plateaus near 20-22 MB/s regardless of disks"
	return res, nil
}

// fig9NASD simulates n mining clients reading a striped PFS file from n
// prototype drives and returns aggregate bandwidth.
func fig9NASD(n int, fileMB int) float64 {
	const (
		unit  = 512 << 10
		chunk = 2 << 20
	)
	env := sim.NewEnv(int64(n))
	type nasdDrive struct {
		host *hw.Host
		disk *hw.StripeDisk
	}
	drives := make([]*nasdDrive, n)
	for i := range drives {
		host, disk := hw.NewNASDDrivePrototype(env, fmt.Sprintf("nasd%d", i))
		drives[i] = &nasdDrive{host: host, disk: disk}
	}
	clients := make([]*hw.Host, n)
	for i := range clients {
		clients[i] = hw.NewAlphaStation255(env, fmt.Sprintf("client%d", i))
	}

	fileBytes := int64(fileMB) << 20
	nChunks := fileBytes / chunk
	var finished sim.Counter
	done := env.NewEvent()
	var endTime time.Duration

	const producers = 4 // the paper's four producer threads per client
	for c := 0; c < n; c++ {
		c := c
		cl := clients[c]
		// This client's stripe units: its round-robin chunks, split into
		// 512 KB units, pulled continuously by four producers ("this
		// threading maximizes overlapping and storage utilization").
		work := env.NewQueue()
		var queued int
		for ch := int64(c); ch < nChunks; ch += int64(n) {
			for u := int64(0); u < chunk/unit; u++ {
				work.Put(ch*(chunk/unit) + u)
				queued++
			}
		}
		remaining := queued
		for pr := 0; pr < producers; pr++ {
			env.Go(fmt.Sprintf("miner%d.%d", c, pr), func(p *sim.Proc) {
				for {
					if work.Len() == 0 {
						return
					}
					logicalUnit := work.Get(p).(int64)
					drv := drives[logicalUnit%int64(n)]
					compOff := (logicalUnit / int64(n)) * unit
					fig9DriveRead(p, cl, drv.host, drv.disk, compOff, unit)
					// Consumer thread: parse and count (~2 instructions
					// per byte on the 233 MHz Alpha).
					cl.CPU.Exec(p, 2*float64(unit))
					remaining--
					if remaining == 0 {
						finished.Add(1)
						if finished.Total() == int64(n) {
							endTime = p.Now()
							done.Fire(nil)
						}
					}
				}
			})
		}
	}
	env.Run()
	if !done.Fired() || endTime == 0 {
		return 0
	}
	return float64(fileBytes) / endTime.Seconds() / hw.MB
}

// fig9DriveRead is one 512 KB object read that misses the drive cache:
// drive CPU (RPC + object system), dual-Medallist disk read, network
// transfer, client receive.
func fig9DriveRead(p *sim.Proc, client, drv *hw.Host, disk *hw.StripeDisk, off int64, n int) {
	client.CPU.Exec(p, client.Proto.SendInstr(200))
	client.NIC.Up.Transfer(p, 200)
	drv.NIC.Down.Transfer(p, 200)
	drv.CPU.Exec(p, drv.Proto.RecvInstr(200))
	// Object system path, cold (Table 1 model).
	drv.CPU.Exec(p, 2900+0.065*float64(n)+7800+0.137*float64(n))
	disk.Read(p, off, n)
	drv.CPU.Exec(p, drv.Proto.SendInstr(n))
	drv.NIC.Up.Transfer(p, n)
	client.NIC.Down.Transfer(p, n)
	client.CPU.Exec(p, client.Proto.RecvInstr(n))
}

// fig9NFS simulates the store-and-forward NFS server: 10 clients, n
// Cheetah disks behind it, 8 KB NFS transfers. In single-file mode the
// interleaved streams defeat server prefetching (a positioning penalty
// roughly every 64 KB per disk); in parallel mode each client has a
// private file on its own disk, so disks stream.
func fig9NFS(n int, fileMB int, parallel bool) float64 {
	const xfer = 8 << 10
	nClients := 10
	if parallel {
		// NFS-parallel: "each client reading from an individual file on
		// an independent disk" — one stream per disk.
		nClients = n
	}
	env := sim.NewEnv(int64(n) + 100)
	server := hw.NewNFSServer500(env, "nfs", n)
	// The NFS server code path is leaner than full DCE RPC per message.
	server.Proto = hw.ProtocolCost{PerMessage: 30000, SendPerByte: 2.55, RecvPerByte: 9.5}

	clients := make([]*hw.Host, nClients)
	for i := range clients {
		clients[i] = hw.NewAlphaStation255(env, fmt.Sprintf("client%d", i))
	}

	fileBytes := int64(fileMB) << 20
	perClient := fileBytes / int64(nClients)
	var finished sim.Counter
	done := env.NewEvent()
	var endTime time.Duration

	// Each client pipelines requests through several BIOD-like daemons.
	const window = 8
	for c := 0; c < nClients; c++ {
		c := c
		cl := clients[c]
		reqs := perClient / xfer
		work := env.NewQueue()
		for r := int64(0); r < reqs; r++ {
			work.Put(r)
		}
		remaining := reqs
		for w := 0; w < window; w++ {
			env.Go(fmt.Sprintf("nfscli%d.%d", c, w), func(p *sim.Proc) {
				for {
					if work.Len() == 0 {
						return
					}
					req := work.Get(p).(int64)
					fig9NFSRequest(p, cl, server, c, req, n, parallel)
					cl.CPU.Exec(p, 2*float64(xfer)) // mining consumer
					remaining--
					if remaining == 0 {
						finished.Add(1)
						if finished.Total() == int64(nClients) {
							endTime = p.Now()
							done.Fire(nil)
						}
					}
				}
			})
		}
	}
	env.Run()
	if !done.Fired() || endTime == 0 {
		return 0
	}
	return float64(fileBytes) / endTime.Seconds() / hw.MB
}

// fig9NFSRequest is one 8 KB store-and-forward NFS read.
func fig9NFSRequest(p *sim.Proc, cl *hw.Host, srv *hw.NFSServerHW, clientIdx int, seq int64, nDisks int, parallel bool) {
	const xfer = 8 << 10
	// Request to the server.
	cl.CPU.Exec(p, cl.Proto.SendInstr(150))
	cl.NIC.Up.Transfer(p, 150)
	nic := srv.NICs[clientIdx%len(srv.NICs)]
	nic.Down.Transfer(p, 150)
	srv.CPU.Exec(p, srv.Proto.RecvInstr(150))

	// Server disk I/O.
	var disk int
	var off int64
	clientBase := int64(clientIdx) << 40
	if parallel {
		// Each client reads its own replica on its own disk: pure
		// sequential per disk.
		disk = clientIdx % nDisks
		off = clientBase + seq*xfer
	} else {
		// Single file striped over the disks in 64 KB units. Ten
		// interleaved client streams defeat the server's prefetching:
		// runs from different streams land at distant offsets, so every
		// stream switch repositions the disk.
		run := seq / 8 // 8 x 8 KB = one 64 KB stripe unit
		disk = int(run) % nDisks
		off = clientBase + seq*xfer
	}
	srv.DiskRead(p, disk, off, xfer)

	// Server copies the data through memory and ships it.
	srv.CPU.Exec(p, srv.Proto.SendInstr(xfer))
	nic.Up.Transfer(p, xfer)
	cl.NIC.Down.Transfer(p, xfer)
	cl.CPU.Exec(p, cl.Proto.RecvInstr(xfer))
}
