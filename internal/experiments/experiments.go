// Package experiments regenerates every table and figure in the paper's
// evaluation: Figure 4 (server cost model), Figure 6 (drive bandwidth
// vs request size), Figure 7 (cached-read scaling), Table 1 (per-request
// instruction costs), Figure 9 (parallel data mining scaling), the
// Section 5.1 Andrew-benchmark comparison, and the Section 6 Active
// Disks result.
//
// Analytic experiments (Figure 4, Table 1) evaluate closed-form models;
// the rest run deterministic discrete-event simulations assembled from
// the hardware models in internal/hw with the paper's 1998 parameters.
// Measured numbers therefore reproduce the paper's *shapes* — who wins,
// slopes, plateaus, crossover points — rather than matching the authors'
// testbed digit for digit. EXPERIMENTS.md records paper-vs-measured for
// every row.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Row is one reported data point: an X value (request size, client
// count, disks...), the paper's value, and our measured/modelled value.
type Row struct {
	Series string
	X      string
	Paper  float64 // 0 when the paper reports no number for this point
	Got    float64
	Unit   string
	Note   string
}

// Result is one experiment's full output.
type Result struct {
	ID      string // "fig4", "table1", ...
	Title   string
	Rows    []Row
	Summary string
}

// Deviation returns |got-paper|/paper for rows with a paper value.
func (r Row) Deviation() float64 {
	if r.Paper == 0 {
		return 0
	}
	d := (r.Got - r.Paper) / r.Paper
	if d < 0 {
		d = -d
	}
	return d
}

// Print renders the result as an aligned table.
func (res *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", res.ID, res.Title)
	series := ""
	for _, row := range res.Rows {
		if row.Series != series {
			series = row.Series
			fmt.Fprintf(w, "-- %s --\n", series)
		}
		if row.Paper != 0 {
			fmt.Fprintf(w, "  %-24s paper %9.2f  measured %9.2f %-6s (%+.0f%%)",
				row.X, row.Paper, row.Got, row.Unit, 100*(row.Got-row.Paper)/row.Paper)
		} else {
			fmt.Fprintf(w, "  %-24s                 measured %9.2f %-6s", row.X, row.Got, row.Unit)
		}
		if row.Note != "" {
			fmt.Fprintf(w, "  [%s]", row.Note)
		}
		fmt.Fprintln(w)
	}
	if res.Summary != "" {
		fmt.Fprintf(w, "  => %s\n", res.Summary)
	}
}

// Runner produces one experiment's result. quick trades precision for
// speed (shorter simulations, fewer points) so the full suite stays
// fast under `go test`.
type Runner func(quick bool) (*Result, error)

// registry of experiments by ID.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, quick bool) (*Result, error) {
	r, ok := registry[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(quick)
}

// RunAll executes every experiment in ID order.
func RunAll(quick bool) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := Run(id, quick)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
