package experiments

import (
	"fmt"
	"time"

	"nasd/internal/hw"
	"nasd/internal/sim"
)

func init() { register("fig6", runFig6) }

// Figure 6 compares, on the prototype "drive" machine (a 133 MHz Alpha
// 3000/400 with two Medallists behind a 32 KB software stripe), the
// apparent sequential bandwidth of: the raw striped device, the NASD
// object system, and Digital UNIX FFS — for reads and writes, cache
// hits and misses, as a function of request size.
//
// The mechanisms that produce the paper's curves, reproduced here:
//   - cache hits are memory-system bound: FFS does one fewer copy than
//     the NASD prototype (~48 vs ~40 MB/s), and both degrade when the
//     request overflows the 512 KB L2 cache;
//   - cache-miss reads are disk-bound: NASD's contiguous object layout
//     streams near the media rate (~5 MB/s) while FFS's block
//     allocation breaks sequentiality every cylinder-group run
//     (~2.5 MB/s);
//   - FFS acknowledges writes of up to 64 KB immediately (write-behind)
//     and waits for the media beyond that; the NASD prototype ran with
//     write-behind fully enabled;
//   - the raw device is measured one synchronous request at a time, so
//     readahead hides positioning for requests under ~128 KB.

// fig6Machine models the host software path: fixed per-request
// overhead, a base per-byte path (syscall, filesystem code, user copy)
// and k internal buffer copies. Rates fall past the 512 KB L2 cache.
type fig6Machine struct {
	fixed      time.Duration
	copies     int
	l2         int
	baseMBps   float64 // base path, within L2
	baseMBpsL2 float64 // base path, L2 overflowed
	copyMBps   float64
	copyMBpsL2 float64
}

var (
	fig6FFS  = fig6Machine{fixed: 250 * time.Microsecond, copies: 1, l2: 384 << 10, baseMBps: 55, baseMBpsL2: 50, copyMBps: 260, copyMBpsL2: 130}
	fig6NASD = fig6Machine{fixed: 300 * time.Microsecond, copies: 2, l2: 384 << 10, baseMBps: 55, baseMBpsL2: 50, copyMBps: 260, copyMBpsL2: 130}
)

// cpuTime is the host-side time to move one request of size n through
// the filesystem path.
func (m fig6Machine) cpuTime(n int) time.Duration {
	base, cp := m.baseMBps, m.copyMBps
	if n > m.l2 {
		base, cp = m.baseMBpsL2, m.copyMBpsL2
	}
	sec := float64(n)/(base*hw.MB) + float64(m.copies)*float64(n)/(cp*hw.MB)
	return m.fixed + time.Duration(sec*float64(time.Second))
}

// newFig6Stripe builds the prototype's two-Medallist stripe.
func newFig6Stripe(env *sim.Env) *hw.StripeDisk {
	d1 := hw.NewDisk(env, hw.MedallistST52160)
	d2 := hw.NewDisk(env, hw.MedallistST52160)
	return hw.NewStripeDisk([]*hw.Disk{d1, d2}, 32<<10)
}

// measure runs reqs sequential requests of size n and returns apparent
// bandwidth in MB/s (size / mean latency), the quantity Figure 6 plots.
func fig6Measure(reqs, n int, perReq func(p *sim.Proc, i int, stripe *hw.StripeDisk)) float64 {
	env := sim.NewEnv(1)
	stripe := newFig6Stripe(env)
	var total time.Duration
	env.Go("client", func(p *sim.Proc) {
		for i := 0; i < reqs; i++ {
			start := p.Now()
			perReq(p, i, stripe)
			total += p.Now() - start
		}
	})
	env.Run()
	mean := total / time.Duration(reqs)
	return float64(n) / mean.Seconds() / hw.MB
}

// The scenarios.

func fig6RawRead(reqs, n int) float64 {
	return fig6Measure(reqs, n, func(p *sim.Proc, i int, s *hw.StripeDisk) {
		p.Wait(200 * time.Microsecond) // raw device syscall path
		s.Read(p, int64(i)*int64(n), n)
	})
}

func fig6RawWrite(reqs, n int) float64 {
	return fig6Measure(reqs, n, func(p *sim.Proc, i int, s *hw.StripeDisk) {
		p.Wait(200 * time.Microsecond)
		s.Write(p, int64(i)*int64(n), n)
	})
}

func fig6Hit(m fig6Machine, reqs, n int) float64 {
	return fig6Measure(reqs, n, func(p *sim.Proc, i int, s *hw.StripeDisk) {
		p.Wait(m.cpuTime(n)) // served entirely from the host cache
	})
}

// fig6MissNASD: object layout is contiguous, so misses stream.
func fig6MissNASD(reqs, n int) float64 {
	return fig6Measure(reqs, n, func(p *sim.Proc, i int, s *hw.StripeDisk) {
		p.Wait(fig6NASD.cpuTime(n))
		s.Read(p, int64(i)*int64(n), n)
	})
}

// fig6MissFFS: FFS block allocation breaks sequential runs roughly
// every 64 KB (cylinder-group fragmentation), forcing repositioning.
func fig6MissFFS(reqs, n int) float64 {
	const run = 64 << 10
	return fig6Measure(reqs, n, func(p *sim.Proc, i int, s *hw.StripeDisk) {
		p.Wait(fig6FFS.cpuTime(n))
		for done := 0; done < n; done += run {
			chunk := n - done
			if chunk > run {
				chunk = run
			}
			// Alternate between distant regions to defeat readahead,
			// as fragmented FFS allocation does.
			base := int64(i*n+done) + int64(done/run%2)*(256<<20)
			s.Read(p, base, chunk)
		}
	})
}

// fig6WriteNASD: prototype ran with write-behind fully enabled — the
// host cache absorbs the write; the disk write happens lazily.
func fig6WriteNASD(reqs, n int) float64 {
	return fig6Measure(reqs, n, func(p *sim.Proc, i int, s *hw.StripeDisk) {
		p.Wait(fig6NASD.cpuTime(n))
	})
}

// fig6WriteFFS: FFS acknowledges writes up to 64 KB immediately and
// waits for the media beyond.
func fig6WriteFFS(reqs, n int) float64 {
	return fig6Measure(reqs, n, func(p *sim.Proc, i int, s *hw.StripeDisk) {
		p.Wait(fig6FFS.cpuTime(n))
		if n > 64<<10 {
			s.Write(p, int64(i)*int64(n), n)
		}
	})
}

// paper anchor values read off Figure 6 (approximate, MB/s).
var fig6Paper = map[string]map[int]float64{
	"raw read":       {512 << 10: 5.0},
	"raw write":      {512 << 10: 7.0},
	"FFS read hit":   {128 << 10: 48, 512 << 10: 44},
	"NASD read hit":  {128 << 10: 40, 512 << 10: 32},
	"FFS read miss":  {512 << 10: 2.5},
	"NASD read miss": {512 << 10: 5.0},
}

func runFig6(quick bool) (*Result, error) {
	res := &Result{
		ID:    "fig6",
		Title: "NASD prototype bandwidth vs request size (sequential reads and writes)",
	}
	sizes := []int{8 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 384 << 10, 512 << 10}
	if quick {
		sizes = []int{8 << 10, 64 << 10, 128 << 10, 512 << 10}
	}
	reqs := 32
	if quick {
		reqs = 16
	}
	lines := []struct {
		name string
		f    func(reqs, n int) float64
	}{
		{"raw read", fig6RawRead},
		{"raw write", fig6RawWrite},
		{"FFS read hit", func(r, n int) float64 { return fig6Hit(fig6FFS, r, n) }},
		{"NASD read hit", func(r, n int) float64 { return fig6Hit(fig6NASD, r, n) }},
		{"FFS read miss", fig6MissFFS},
		{"NASD read miss", fig6MissNASD},
		{"FFS write (<=64K behind)", fig6WriteFFS},
		{"NASD write (behind)", fig6WriteNASD},
	}
	for _, line := range lines {
		for _, n := range sizes {
			paper := fig6Paper[line.name][n]
			res.Rows = append(res.Rows, Row{
				Series: line.name,
				X:      fmtSize(n),
				Paper:  paper,
				Got:    line.f(reqs, n),
				Unit:   "MB/s",
			})
		}
	}
	res.Summary = "cache hits are memory-bound (FFS's one fewer copy wins); misses are disk-bound (NASD's layout wins ~2x)"
	return res, nil
}

func fmtSize(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}
