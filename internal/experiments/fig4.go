package experiments

import (
	"fmt"

	"nasd/internal/costmodel"
)

func init() { register("fig4", runFig4) }

// runFig4 reproduces Figure 4 / Section 3: server cost overhead as a
// function of attached disks for the low-cost and high-end
// configurations, plus the Section 3 NASD comparison.
func runFig4(quick bool) (*Result, error) {
	res := &Result{
		ID:    "fig4",
		Title: "Cost model for the traditional server architecture (server overhead % vs disks)",
	}

	// Anchor points the paper states in prose.
	anchors := []struct {
		cfg   costmodel.ServerConfig
		disks int
		paper float64
	}{
		{costmodel.HighEnd, 1, 1300},
		{costmodel.HighEnd, 14, 115},
		{costmodel.LowCost, 1, 380},
		{costmodel.LowCost, 6, 80},
	}
	for _, a := range anchors {
		p := a.cfg.At(a.disks)
		res.Rows = append(res.Rows, Row{
			Series: a.cfg.Name + " anchors",
			X:      fmt.Sprintf("%d disks", a.disks),
			Paper:  a.paper,
			Got:    p.OverheadPercent,
			Unit:   "%ovh",
		})
	}

	// Full sweep for the curve shape.
	for _, cfg := range []costmodel.ServerConfig{costmodel.LowCost, costmodel.HighEnd} {
		max := cfg.SaturationDisks() + 2
		for n := 1; n <= max; n++ {
			p := cfg.At(n)
			note := ""
			if p.Saturated {
				note = "saturated"
			}
			res.Rows = append(res.Rows, Row{
				Series: cfg.Name + " sweep",
				X:      fmt.Sprintf("%d disks", n),
				Got:    p.OverheadPercent,
				Unit:   "%ovh",
				Note:   note,
			})
		}
	}

	cmp := costmodel.HighEnd.CompareNASD(14, 0.10)
	res.Rows = append(res.Rows, Row{
		Series: "NASD comparison (10% drive premium, 14 disks high-end)",
		X:      "total system savings",
		Paper:  50,
		Got:    cmp.SavingsPercent,
		Unit:   "%",
	})
	res.Summary = fmt.Sprintf(
		"server overhead: high-end %d disks -> %.0f%%; NASD premium cuts system cost %.1f%%",
		costmodel.HighEnd.SaturationDisks(), costmodel.HighEnd.At(14).OverheadPercent, cmp.SavingsPercent)
	return res, nil
}
