package experiments

import (
	"time"

	"nasd/internal/drive"
	"nasd/internal/hw"
	"nasd/internal/sim"
)

func init() { register("table1", runTable1) }

// paperTable1 is the measured cost and estimated performance of read
// and write requests from Table 1 of the paper.
var paperTable1 = []struct {
	op       drive.Op
	cold     bool
	size     int
	label    string
	instrK   float64 // total instructions, thousands
	commsPct float64
	msec     float64 // @200 MHz, CPI 2.2
}{
	{drive.OpReadObject, true, 1, "read cold 1B", 46, 70, 0.51},
	{drive.OpReadObject, true, 8 << 10, "read cold 8KB", 67, 79, 0.74},
	{drive.OpReadObject, true, 64 << 10, "read cold 64KB", 247, 90, 2.7},
	{drive.OpReadObject, true, 512 << 10, "read cold 512KB", 1488, 92, 16.4},
	{drive.OpReadObject, false, 1, "read warm 1B", 38, 92, 0.42},
	{drive.OpReadObject, false, 8 << 10, "read warm 8KB", 57, 94, 0.63},
	{drive.OpReadObject, false, 64 << 10, "read warm 64KB", 224, 97, 2.5},
	{drive.OpReadObject, false, 512 << 10, "read warm 512KB", 1410, 97, 15.6},
	{drive.OpWriteObject, true, 1, "write cold 1B", 43, 73, 0.47},
	{drive.OpWriteObject, true, 8 << 10, "write cold 8KB", 71, 82, 0.78},
	{drive.OpWriteObject, true, 64 << 10, "write cold 64KB", 269, 92, 3.0},
	{drive.OpWriteObject, true, 512 << 10, "write cold 512KB", 1947, 96, 21.3},
	{drive.OpWriteObject, false, 1, "write warm 1B", 37, 92, 0.41},
	{drive.OpWriteObject, false, 8 << 10, "write warm 8KB", 57, 94, 0.64},
	{drive.OpWriteObject, false, 64 << 10, "write warm 64KB", 253, 97, 2.8},
	{drive.OpWriteObject, false, 512 << 10, "write warm 512KB", 1871, 97, 20.4},
}

// runTable1 reproduces Table 1: the instruction-accounting model's
// totals, communications percentages, and estimated 200 MHz service
// times, plus the Barracuda microbenchmark comparison from the caption.
func runTable1(quick bool) (*Result, error) {
	res := &Result{
		ID:    "table1",
		Title: "Measured cost and estimated performance of read and write requests",
	}
	for _, row := range paperTable1 {
		c := drive.CostModel(row.op, row.size, row.cold)
		res.Rows = append(res.Rows,
			Row{
				Series: "total instructions (thousands)",
				X:      row.label, Paper: row.instrK,
				Got: float64(c.Total()) / 1e3, Unit: "kinstr",
			},
			Row{
				Series: "communications share",
				X:      row.label, Paper: row.commsPct,
				Got: c.CommsPercent(), Unit: "%",
			},
			Row{
				Series: "operation time @200MHz CPI 2.2",
				X:      row.label, Paper: row.msec,
				Got: c.Time(drive.TargetMHz, drive.TargetCPI).Seconds() * 1e3, Unit: "ms",
			},
		)
	}

	// Barracuda comparison (caption): simulated drive microbenchmarks.
	for _, bc := range []struct {
		label string
		seq   bool
		size  int
		paper float64
	}{
		{"barracuda cached sector", true, 512, 0.30},
		{"barracuda random sector", false, 512, 9.4},
		{"barracuda cached 64KB", true, 64 << 10, 2.2},
		{"barracuda random 64KB", false, 64 << 10, 11.1},
	} {
		got := barracudaLatency(bc.seq, bc.size)
		res.Rows = append(res.Rows, Row{
			Series: "Seagate Barracuda comparison",
			X:      bc.label, Paper: bc.paper,
			Got: got.Seconds() * 1e3, Unit: "ms",
		})
	}
	res.Summary = "NASD control is affordable on a 200 MHz drive core; 70-97% of every request is communications"
	return res, nil
}

// barracudaLatency runs the hw disk model for one microbenchmark.
func barracudaLatency(sequential bool, size int) time.Duration {
	env := sim.NewEnv(1)
	d := hw.NewDisk(env, hw.BarracudaST34371W)
	var elapsed time.Duration
	env.Go("io", func(p *sim.Proc) {
		if sequential {
			d.Read(p, 0, 4096)
			p.Wait(50 * time.Millisecond) // firmware readahead fills
			start := p.Now()
			d.Read(p, 4096, size)
			elapsed = p.Now() - start
		} else {
			d.Read(p, 0, 4096)
			start := p.Now()
			d.Read(p, 1<<30, size)
			elapsed = p.Now() - start
		}
	})
	env.Run()
	return elapsed
}
