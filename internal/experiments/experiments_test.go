package experiments

import (
	"strings"
	"testing"
)

// These tests assert the paper's *shapes*: orderings, slopes, plateaus,
// crossovers. Absolute values are checked loosely where the paper
// provides anchors (tight tolerances live in the underlying packages'
// own tests, e.g. the Table 1 cost-model fit).

func rows(t *testing.T, res *Result, series string) []Row {
	t.Helper()
	var out []Row
	for _, r := range res.Rows {
		if strings.HasPrefix(r.Series, series) {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no rows for series %q in %s", series, res.ID)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation-rpc", "ablation-security", "active", "andrew", "fig4", "fig6", "fig7", "fig9", "table1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments = %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig4Anchors(t *testing.T) {
	res, err := Run("fig4", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Paper != 0 && r.Deviation() > 0.05 {
			t.Errorf("fig4 %s/%s: %.1f vs paper %.1f (%.0f%% off)",
				r.Series, r.X, r.Got, r.Paper, 100*r.Deviation())
		}
	}
}

func TestTable1Anchors(t *testing.T) {
	res, err := Run("table1", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		tol := 0.20
		if strings.Contains(r.Series, "communications") {
			tol = 0.12
		}
		if r.Paper != 0 && r.Deviation() > tol {
			t.Errorf("table1 %s/%s: %.2f vs paper %.2f (%.0f%% off)",
				r.Series, r.X, r.Got, r.Paper, 100*r.Deviation())
		}
	}
}

func TestFig6Shapes(t *testing.T) {
	res, err := Run("fig6", true)
	if err != nil {
		t.Fatal(err)
	}
	get := func(series, x string) float64 {
		for _, r := range res.Rows {
			if r.Series == series && r.X == x {
				return r.Got
			}
		}
		t.Fatalf("missing %s/%s", series, x)
		return 0
	}
	// Cache hits: FFS beats NASD (one fewer copy) and both are far
	// above disk speeds.
	for _, x := range []string{"64KB", "512KB"} {
		ffs, nasd := get("FFS read hit", x), get("NASD read hit", x)
		if ffs <= nasd {
			t.Errorf("at %s: FFS hit (%.1f) not above NASD hit (%.1f)", x, ffs, nasd)
		}
		if nasd < 15 {
			t.Errorf("at %s: NASD hit %.1f MB/s implausibly low", x, nasd)
		}
	}
	// L2 overflow: 512KB hits are slower than 128KB hits.
	if get("NASD read hit", "512KB") >= get("NASD read hit", "128KB") {
		t.Error("NASD hit shows no L2 overflow degradation")
	}
	// Cache misses: the winner flips — NASD's layout roughly doubles FFS.
	fm, nm := get("FFS read miss", "512KB"), get("NASD read miss", "512KB")
	if nm < 1.6*fm {
		t.Errorf("NASD miss (%.2f) not ~2x FFS miss (%.2f)", nm, fm)
	}
	// FFS write-behind cliff at 64KB.
	if get("FFS write (<=64K behind)", "64KB") < 3*get("FFS write (<=64K behind)", "128KB") {
		t.Error("FFS write-behind acknowledgement cliff missing")
	}
	// Raw write (write-behind) appears faster than raw read, as measured.
	if get("raw write", "512KB") <= get("raw read", "512KB")*0.9 {
		t.Error("raw write not benefiting from write-behind")
	}
}

func TestFig7Shapes(t *testing.T) {
	res, err := Run("fig7", true)
	if err != nil {
		t.Fatal(err)
	}
	agg := rows(t, res, "aggregate bandwidth")
	// Linear scaling: per-client rate stays within 15% of the 1-client
	// rate across the sweep.
	per1 := agg[0].Got
	for i, r := range agg {
		per := r.Got / float64(i+1)
		if per < 0.85*per1 || per > 1.15*per1 {
			t.Errorf("%s: per-client %.2f deviates from %.2f", r.X, per, per1)
		}
	}
	// Per-client rate under the 10 MB/s DCE ceiling, near the figure's
	// ~6.5 slope.
	if per1 > 10 || per1 < 4.5 {
		t.Errorf("per-client rate %.2f outside [4.5, 10]", per1)
	}
	// Drives loaf, clients are the limit.
	idle := rows(t, res, "cpu idle")
	last := idle[len(idle)-1]
	if last.Got > 50 {
		t.Errorf("client idle %.0f%%: clients not the bottleneck", last.Got)
	}
	if !strings.Contains(last.Note, "drive idle") {
		t.Fatalf("missing drive idle note")
	}
}

func TestFig9Shapes(t *testing.T) {
	res, err := Run("fig9", true)
	if err != nil {
		t.Fatal(err)
	}
	nasd := rows(t, res, "NASD")
	// NASD scales: 8 drives at least 4.5x the 1-drive rate, and the
	// 8-drive aggregate lands within 25% of the paper's 45 MB/s.
	if nasd[7].Got < 4.5*nasd[0].Got {
		t.Errorf("NASD not scaling: %.1f at 1 vs %.1f at 8", nasd[0].Got, nasd[7].Got)
	}
	if nasd[7].Deviation() > 0.25 {
		t.Errorf("NASD at 8 drives: %.1f vs paper %.1f", nasd[7].Got, nasd[7].Paper)
	}
	// NFS plateaus: adding disks past ~6 yields <10% gain, and the
	// plateau sits far below NASD at 8 drives.
	nfs := rows(t, res, "NFS (single file")
	if nfs[7].Got > 1.1*nfs[5].Got {
		t.Errorf("NFS did not plateau: %.1f at 6 disks vs %.1f at 8", nfs[5].Got, nfs[7].Got)
	}
	if nfs[7].Got > 0.7*nasd[7].Got {
		t.Errorf("NFS (%.1f) not clearly below NASD (%.1f)", nfs[7].Got, nasd[7].Got)
	}
	// NFS-parallel beats NFS single-file but still plateaus in the low 20s.
	par := rows(t, res, "NFS-parallel")
	if par[7].Got < nfs[7].Got {
		t.Errorf("NFS-parallel (%.1f) below NFS (%.1f)", par[7].Got, nfs[7].Got)
	}
	if par[7].Deviation() > 0.20 {
		t.Errorf("NFS-parallel at 8: %.1f vs paper %.1f", par[7].Got, par[7].Paper)
	}
}

func TestAndrewWithinBound(t *testing.T) {
	res, err := Run("andrew", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.X == "difference" && r.Got > 5 {
			t.Errorf("%s: NASD-NFS vs NFS differ by %.1f%%, paper bound 5%%", r.Series, r.Got)
		}
	}
}

func TestActiveDisksShapes(t *testing.T) {
	res, err := Run("active", true)
	if err != nil {
		t.Fatal(err)
	}
	scan := rows(t, res, "effective scan rate")
	// Scales with drives.
	if scan[len(scan)-1].Got < 4*scan[0].Got {
		t.Errorf("active disks not scaling: %v", scan)
	}
	// The 6-drive anchor is within 20% of 45 MB/s.
	for _, r := range scan {
		if r.Paper != 0 && r.Deviation() > 0.20 {
			t.Errorf("%s: %.1f vs paper %.1f", r.X, r.Got, r.Paper)
		}
	}
	// Network traffic stays tiny (that is the whole point).
	for _, r := range scan {
		if !strings.Contains(r.Note, "KB crossed") {
			t.Fatalf("missing network note: %+v", r)
		}
	}
}

func TestAblationRPCOrdering(t *testing.T) {
	res, err := Run("ablation-rpc", true)
	if err != nil {
		t.Fatal(err)
	}
	r := rows(t, res, "per-client cached-read bandwidth")
	if len(r) != 3 {
		t.Fatalf("rows = %d", len(r))
	}
	// Lean > UDP-class > DCE, and lean at least 1.8x DCE.
	if !(r[2].Got > r[1].Got && r[1].Got > r[0].Got) {
		t.Fatalf("ordering wrong: %v %v %v", r[0].Got, r[1].Got, r[2].Got)
	}
	if r[2].Got < 1.8*r[0].Got {
		t.Fatalf("lean stack (%.1f) not well above DCE (%.1f)", r[2].Got, r[0].Got)
	}
}

func TestAblationSecurityOrdering(t *testing.T) {
	res, err := Run("ablation-security", true)
	if err != nil {
		t.Fatal(err)
	}
	r := rows(t, res, "512 KB warm read")
	if len(r) != 3 {
		t.Fatalf("rows = %d", len(r))
	}
	off, sw, hwd := r[0].Got, r[1].Got, r[2].Got
	if sw < 2*off {
		t.Fatalf("software MAC (%.1f ms) not >= 2x baseline (%.1f ms)", sw, off)
	}
	// Hardware MAC within 1% of security-off.
	if hwd > off*1.01 {
		t.Fatalf("hardware MAC (%.2f ms) not near baseline (%.2f ms)", hwd, off)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in non-short mode only")
	}
	results, err := RunAll(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("results = %d", len(results))
	}
	var sb strings.Builder
	for _, res := range results {
		res.Print(&sb)
	}
	if !strings.Contains(sb.String(), "== fig9") {
		t.Fatal("print output incomplete")
	}
}
