package experiments

import (
	"fmt"
	"time"

	"nasd/internal/hw"
	"nasd/internal/sim"
)

func init() { register("active", runActive) }

// Section 6: Active Disks run the frequent-sets counting kernel on the
// drives themselves. "Using the same prototype drives ... we achieve
// 45 MB/s with low-bandwidth 10 Mb/s ethernet networking and only 1/3
// of the hardware used in the NASD PFS tests of Figure 9" — six drive
// machines instead of eight drives plus ten clients, and the network
// carries only the per-drive count vectors.
func runActive(quick bool) (*Result, error) {
	res := &Result{
		ID:    "active",
		Title: "Active Disks: on-drive frequent-sets counting (Section 6)",
	}
	fileMB := 300
	if quick {
		fileMB = 60
	}
	for _, nDrives := range []int{1, 2, 4, 6, 8} {
		rate, netBytes := activeRun(nDrives, fileMB)
		var paper float64
		if nDrives == 6 {
			paper = 45
		}
		res.Rows = append(res.Rows, Row{
			Series: "effective scan rate",
			X:      fmt.Sprintf("%d drives", nDrives),
			Paper:  paper,
			Got:    rate,
			Unit:   "MB/s",
			Note:   fmt.Sprintf("%d KB crossed the 10 Mb/s network", netBytes>>10),
		})
	}
	res.Summary = "scan rate scales with drive count and the network carries only count vectors, so 10 Mb/s Ethernet suffices"
	return res, nil
}

// activeRun simulates nDrives prototype drives each scanning its share
// of the transaction file locally and shipping a count vector to the
// master over shared 10 Mb/s Ethernet. Returns the effective scan rate
// (file bytes / completion time) and total network bytes.
func activeRun(nDrives, fileMB int) (float64, int64) {
	const catalog = 1000
	env := sim.NewEnv(int64(nDrives))
	ethernet := hw.NewLink(env, "ether10", hw.Ethernet10BytesPerSec, 500*time.Microsecond)
	master := hw.NewCPU(env, "master", 233, 2.2)

	fileBytes := int64(fileMB) << 20
	share := fileBytes / int64(nDrives)
	resultBytes := catalog * 4

	var finished sim.Counter
	var netBytes sim.Counter
	done := env.NewEvent()
	var endTime time.Duration

	for d := 0; d < nDrives; d++ {
		host, disk := hw.NewNASDDrivePrototype(env, fmt.Sprintf("adisk%d", d))
		env.Go(fmt.Sprintf("adisk%d", d), func(p *sim.Proc) {
			// Stream the local share sequentially; the on-drive kernel
			// counts as data arrives (~4 instructions/byte on the
			// 133 MHz Alpha — parse + tally, overlapped with disk I/O
			// via a small pipeline, so we charge the max of the two).
			const chunk = 512 << 10
			for off := int64(0); off < share; off += chunk {
				n := chunk
				if off+int64(n) > share {
					n = int(share - off)
				}
				ioDone := env.NewEvent()
				env.Go("io", func(q *sim.Proc) {
					disk.Read(q, off, n)
					ioDone.Fire(nil)
				})
				host.CPU.Exec(p, 4*float64(n))
				ioDone.Wait(p)
			}
			// Ship the count vector to the master.
			host.CPU.Exec(p, host.Proto.SendInstr(resultBytes))
			ethernet.Transfer(p, resultBytes)
			netBytes.Add(int64(resultBytes))
			master.Exec(p, 50_000+float64(resultBytes)) // merge at master
			finished.Add(1)
			if finished.Total() == int64(nDrives) {
				endTime = p.Now()
				done.Fire(nil)
			}
		})
	}
	env.Run()
	if !done.Fired() || endTime == 0 {
		return 0, 0
	}
	return float64(fileBytes) / endTime.Seconds() / hw.MB, netBytes.Total()
}
