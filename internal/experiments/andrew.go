package experiments

import (
	"context"
	"fmt"
	"time"

	"nasd/internal/andrew"
	"nasd/internal/blockdev"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/filemgr"
	"nasd/internal/nasdnfs"
	"nasd/internal/rpc"
	"nasd/internal/srvnfs"
)

func init() { register("andrew", runAndrew) }

// Section 5.1: "Using the Andrew benchmark as a basis for comparison,
// we found that NASD-NFS and NFS had benchmark times within 5% of each
// other for configurations with 1 drive/1 client and 8 drives/8
// clients."
//
// The experiment runs the Andrew-style workload end to end on both
// functional stacks (the NASD-NFS port and the store-and-forward NFS
// baseline) to obtain per-phase operation counts, then charges each
// operation with a latency model in which both systems pay the same
// dominant costs — one RPC round trip per operation plus per-byte
// protocol work — while NASD pays extra for file-manager metadata I/O
// on namespace operations and NFS pays extra for store-and-forward
// copying on data operations. For the small files of Andrew, the two
// surcharges nearly cancel: that is why the paper measured parity.
func runAndrew(quick bool) (*Result, error) {
	res := &Result{
		ID:    "andrew",
		Title: "Andrew-style benchmark: NASD-NFS vs traditional NFS",
	}
	for _, cfgRow := range []struct {
		drives  int
		clients int
	}{
		{1, 1},
		{8, 8},
	} {
		nasdTime, nfsTime, err := andrewCompare(cfgRow.drives, cfgRow.clients, quick)
		if err != nil {
			return nil, err
		}
		diff := 100 * (nasdTime.Seconds() - nfsTime.Seconds()) / nfsTime.Seconds()
		res.Rows = append(res.Rows,
			Row{
				Series: fmt.Sprintf("%d drives / %d clients", cfgRow.drives, cfgRow.clients),
				X:      "NASD-NFS total",
				Got:    nasdTime.Seconds(),
				Unit:   "s",
			},
			Row{
				Series: fmt.Sprintf("%d drives / %d clients", cfgRow.drives, cfgRow.clients),
				X:      "NFS total",
				Got:    nfsTime.Seconds(),
				Unit:   "s",
			},
			Row{
				Series: fmt.Sprintf("%d drives / %d clients", cfgRow.drives, cfgRow.clients),
				X:      "difference",
				Paper:  5, // "within 5%"
				Got:    abs(diff),
				Unit:   "%",
				Note:   "paper value is the claimed bound",
			},
		)
	}
	res.Summary = "both stacks run the workload; modelled benchmark times agree within the paper's 5% bound"
	return res, nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// andrewCompare runs the workload on both systems and returns modelled
// total times.
func andrewCompare(nDrives, nClients int, quick bool) (nasdTime, nfsTime time.Duration, err error) {
	cfg := andrew.Config{Dirs: 5, FilesPerDir: 10, FileSize: 16 << 10, Seed: 42}
	if quick {
		cfg.Dirs, cfg.FilesPerDir = 3, 6
	}

	nasdCounts, err := runAndrewNASD(nDrives, nClients, cfg)
	if err != nil {
		return 0, 0, fmt.Errorf("nasd-nfs: %w", err)
	}
	nfsCounts, err := runAndrewNFS(nDrives, nClients, cfg)
	if err != nil {
		return 0, 0, fmt.Errorf("srvnfs: %w", err)
	}

	// Latency model constants (seconds). Both systems: one RPC round
	// trip per operation (DCE-class fixed cost) plus per-byte endpoint
	// and wire work. NASD surcharge: namespace operations trigger file
	// manager metadata I/O against a drive. NFS surcharge: data bytes
	// cross the server's memory system twice.
	const (
		perOp        = 1.0e-3   // RPC round trip
		perByte      = 0.20e-6  // endpoint + wire per payload byte
		nasdNSExtra  = 0.8e-3   // FM directory-object I/O per namespace op
		nfsDataExtra = 0.022e-6 // server copy per data byte
	)
	model := func(c andrew.Counts, nasd bool) time.Duration {
		ops := float64(c.Total())
		bytes := float64(c.BytesR + c.BytesW)
		t := ops*perOp + bytes*perByte
		if nasd {
			ns := float64(c.Mkdirs + c.Creates + c.Dirs)
			t += ns * nasdNSExtra
		} else {
			t += bytes * nfsDataExtra
		}
		// Parallel clients divide the wall time (independent trees).
		return time.Duration(t / float64(nClients) * float64(time.Second))
	}
	return model(nasdCounts, true), model(nfsCounts, false), nil
}

// runAndrewNASD executes the workload on the real NASD-NFS stack with
// nClients client trees over nDrives secure drives.
func runAndrewNASD(nDrives, nClients int, cfg andrew.Config) (andrew.Counts, error) {
	var targets []filemgr.DriveTarget
	var clientID uint64 = 100
	var drives []*client.Drive
	var cleanups []func()
	defer func() {
		for _, c := range cleanups {
			c()
		}
	}()
	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 32768)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			return andrew.Counts{}, err
		}
		l := rpc.NewInProcListener("d")
		srv := drv.Serve(l)
		cleanups = append(cleanups, srv.Close)
		dial := func() (*client.Drive, error) {
			conn, err := l.Dial()
			if err != nil {
				return nil, err
			}
			clientID++
			return client.New(conn, uint64(1+i), clientID), nil
		}
		fmCli, err := dial()
		if err != nil {
			return andrew.Counts{}, err
		}
		dataCli, err := dial()
		if err != nil {
			return andrew.Counts{}, err
		}
		targets = append(targets, filemgr.DriveTarget{Client: fmCli, DriveID: uint64(1 + i), Master: master})
		drives = append(drives, dataCli)
	}
	fm, err := filemgr.Format(context.Background(), filemgr.Config{Drives: targets})
	if err != nil {
		return andrew.Counts{}, err
	}

	var total andrew.Counts
	for c := 0; c < nClients; c++ {
		id := filemgr.Identity{UID: uint32(10 + c)}
		nfsCli := nasdnfs.New(fm, drives, id)
		root := fmt.Sprintf("/client%d", c)
		if err := nfsCli.Mkdir(context.Background(), root, 0o755); err != nil {
			return andrew.Counts{}, err
		}
		phases, err := andrew.Phases(&nasdFS{nfsCli}, root, cfg)
		if err != nil {
			return andrew.Counts{}, err
		}
		for _, p := range phases {
			total.Add(p)
		}
	}
	return total, nil
}

// runAndrewNFS executes the workload on the store-and-forward baseline.
func runAndrewNFS(nDisks, nClients int, cfg andrew.Config) (andrew.Counts, error) {
	var devs []blockdev.Device
	for i := 0; i < nDisks; i++ {
		devs = append(devs, blockdev.NewMemDisk(4096, 32768))
	}
	server, err := srvnfs.NewServer(devs)
	if err != nil {
		return andrew.Counts{}, err
	}
	l := rpc.NewInProcListener("nfs")
	srv := rpc.NewServer(server)
	go srv.Serve(l)
	defer srv.Close()

	var total andrew.Counts
	for c := 0; c < nClients; c++ {
		conn, err := l.Dial()
		if err != nil {
			return andrew.Counts{}, err
		}
		cli := srvnfs.NewClient(conn)
		root := fmt.Sprintf("/client%d", c)
		if err := cli.Mkdir(root); err != nil {
			return andrew.Counts{}, err
		}
		phases, err := andrew.Phases(&srvFS{cli}, root, cfg)
		if err != nil {
			return andrew.Counts{}, err
		}
		for _, p := range phases {
			total.Add(p)
		}
		cli.Close()
	}
	return total, nil
}

// nasdFS adapts nasdnfs.Client to andrew.FS.
type nasdFS struct{ c *nasdnfs.Client }

func (f *nasdFS) Mkdir(path string) error  { return f.c.Mkdir(context.Background(), path, 0o755) }
func (f *nasdFS) Create(path string) error { return f.c.Create(context.Background(), path, 0o644) }
func (f *nasdFS) Write(path string, off uint64, data []byte) error {
	return f.c.Write(context.Background(), path, off, data)
}
func (f *nasdFS) Read(path string, off uint64, n int) ([]byte, error) {
	return f.c.Read(context.Background(), path, off, n)
}
func (f *nasdFS) Stat(path string) (uint64, error) {
	a, err := f.c.GetAttr(context.Background(), path) // attribute read goes drive-direct
	return a.Size, err
}
func (f *nasdFS) ReadDir(path string) ([]string, error) {
	ents, err := f.c.ReadDir(context.Background(), path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	return names, nil
}

// srvFS adapts srvnfs.Client to andrew.FS.
type srvFS struct{ c *srvnfs.Client }

func (f *srvFS) Mkdir(path string) error  { return f.c.Mkdir(path) }
func (f *srvFS) Create(path string) error { return f.c.Create(path) }
func (f *srvFS) Write(path string, off uint64, data []byte) error {
	return f.c.Write(path, off, data)
}
func (f *srvFS) Read(path string, off uint64, n int) ([]byte, error) {
	return f.c.Read(path, off, n)
}
func (f *srvFS) Stat(path string) (uint64, error) {
	size, _, err := f.c.GetAttr(path)
	return size, err
}
func (f *srvFS) ReadDir(path string) ([]string, error) { return f.c.ReadDir(path) }
