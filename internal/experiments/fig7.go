package experiments

import (
	"fmt"
	"time"

	"nasd/internal/hw"
	"nasd/internal/sim"
)

func init() { register("fig7", runFig7) }

// Figure 7: prototype NASD cache read bandwidth. Thirteen NASD drives
// serve a single large *cached* file (no disk activity) striped with a
// 512 KB unit; one to ten AlphaStation 255 clients each issue a stream
// of sequential 2 MB reads striped across four of the drives, over
// OC-3 ATM with DCE RPC. The paper's findings, which the simulation
// must reproduce:
//
//   - aggregate bandwidth scales linearly with the number of clients;
//   - the limiting factor is the *client* CPU: DCE RPC cannot push more
//     than ~80 Mb/s (10 MB/s) into a client before it saturates, so
//     client idle time is near zero;
//   - the drives loaf: average NASD CPU idle stays high.
func runFig7(quick bool) (*Result, error) {
	res := &Result{
		ID:    "fig7",
		Title: "Prototype NASD cache read bandwidth (13 drives, 1-10 clients, OC-3 ATM)",
	}
	maxClients := 10
	simTime := 3 * time.Second
	if quick {
		maxClients = 6
		simTime = time.Second
	}
	var lastPerClient float64
	for n := 1; n <= maxClients; n++ {
		agg, clientIdle, driveIdle := fig7Run(n, simTime)
		perClient := agg / float64(n)
		lastPerClient = perClient
		res.Rows = append(res.Rows, Row{
			Series: "aggregate bandwidth",
			X:      fmt.Sprintf("%d clients", n),
			Got:    agg,
			Unit:   "MB/s",
			Note:   fmt.Sprintf("%.1f MB/s per client", perClient),
		})
		res.Rows = append(res.Rows, Row{
			Series: "cpu idle",
			X:      fmt.Sprintf("%d clients", n),
			Got:    clientIdle,
			Unit:   "%cli",
			Note:   fmt.Sprintf("drive idle %.0f%%", driveIdle),
		})
	}
	// The figure's aggregate line climbs ~6.5 MB/s per client (about 65
	// MB/s at ten clients); the text's separate 80 Mb/s (10 MB/s) bound
	// is DCE RPC's single-stream ceiling, which the per-client rate must
	// stay under.
	res.Rows = append(res.Rows, Row{
		Series: "per-client slope",
		X:      "MB/s per client",
		Paper:  6.5,
		Got:    lastPerClient,
		Unit:   "MB/s",
		Note:   "must also stay below the 10 MB/s DCE RPC ceiling",
	})
	res.Summary = "aggregate scales linearly at ~6.3 MB/s per client; client CPUs are the limit while drive CPUs stay mostly idle"
	return res, nil
}

// fig7Run simulates n clients against 13 drives for simTime and returns
// (aggregate MB/s, mean client idle %, mean drive idle %).
func fig7Run(n int, simTime time.Duration) (float64, float64, float64) {
	const (
		nDrives    = 13
		stripeUnit = 512 << 10
		readSize   = 2 << 20
		width      = 4 // each client's file is striped over 4 drives
	)
	env := sim.NewEnv(int64(n))
	drives := make([]*hw.Host, nDrives)
	for i := range drives {
		// The drive's network personality: 133 MHz Alpha running the
		// heavyweight DCE stack.
		cpu := hw.NewCPU(env, fmt.Sprintf("nasd%d", i), 133, 2.2)
		nic := hw.NewDuplex(env, fmt.Sprintf("nasd%d.atm", i), hw.OC3ATMBytesPerSec, hw.LANLatency)
		drives[i] = hw.NewHost(env, fmt.Sprintf("nasd%d", i), cpu, nic, hw.DCERPCCost)
	}
	clients := make([]*hw.Host, n)
	var bytes sim.Counter
	for c := 0; c < n; c++ {
		clients[c] = hw.NewAlphaStation255(env, fmt.Sprintf("client%d", c))
	}
	for c := 0; c < n; c++ {
		c := c
		cl := clients[c]
		first := (c * width) % nDrives
		env.Go(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			for {
				// One 2 MB read = four concurrent 512 KB requests to
				// four drives (the stripe).
				events := make([]*sim.Event, width)
				for u := 0; u < width; u++ {
					drv := drives[(first+u)%nDrives]
					ev := env.NewEvent()
					events[u] = ev
					env.Go("req", func(q *sim.Proc) {
						fig7Request(q, cl, drv, stripeUnit)
						ev.Fire(nil)
					})
				}
				sim.WaitAll(p, events...)
				bytes.Add(readSize)
			}
		})
	}
	env.RunUntil(simTime)
	agg := bytes.RatePerSec(simTime) / hw.MB
	var clientIdle, driveIdle float64
	for _, cl := range clients {
		clientIdle += cl.CPU.IdlePercent()
	}
	clientIdle /= float64(n)
	for _, d := range drives {
		driveIdle += d.CPU.IdlePercent()
	}
	driveIdle /= nDrives
	return agg, clientIdle, driveIdle
}

// fig7Request models one cached 512 KB object read: small request out,
// drive-side RPC work (data is in the drive cache — no disk), bulk
// transfer back, client-side receive processing.
func fig7Request(p *sim.Proc, client, drv *hw.Host, n int) {
	// Request out: ~200 bytes of RPC.
	client.CPU.Exec(p, client.Proto.SendInstr(200))
	client.NIC.Up.Transfer(p, 200)
	drv.NIC.Down.Transfer(p, 200)
	drv.CPU.Exec(p, drv.Proto.RecvInstr(200))
	// Drive-side: object-system cache hit work plus RPC send of n bytes.
	drv.CPU.Exec(p, 3000+0.065*float64(n)) // object path (Table 1 model, warm)
	drv.CPU.Exec(p, drv.Proto.SendInstr(n))
	drv.NIC.Up.Transfer(p, n)
	client.NIC.Down.Transfer(p, n)
	client.CPU.Exec(p, client.Proto.RecvInstr(n))
}
