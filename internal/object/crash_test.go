package object

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"nasd/internal/blockdev"
)

// The crash harness: format a store on a CrashDisk (volatile write
// cache over a MemDisk), run a seeded mutation workload, kill the disk
// at an arbitrary persist step, then reopen the surviving inner device
// and check the durability contract:
//
//   - the store opens (mount-time recovery succeeds);
//   - every object untouched since the last completed Flush reads back
//     exactly;
//   - every object touched after it either reads without error or is
//     cleanly absent — partial replay is fine, corruption is not;
//   - no object removed before the last Flush resurrects;
//   - a second verification pass finds zero reference-count drift
//     (recovery converged).
//
// Sweeping the crash point across every persist step of the workload
// visits every intermediate persistence state the hardware could have
// left behind.

type objRef struct {
	part uint16
	obj  uint64
}

type crashModel struct {
	live    map[objRef][]byte
	flushed map[objRef][]byte
	dirty   map[objRef]bool
	// pendingCreate is set while a Create call is in flight: a crash
	// inside it can leave one durable object whose ID the model never
	// learned.
	pendingCreate bool
}

func newCrashModel() *crashModel {
	return &crashModel{
		live:    make(map[objRef][]byte),
		flushed: make(map[objRef][]byte),
		dirty:   make(map[objRef]bool),
	}
}

func (m *crashModel) markFlushed() {
	m.flushed = make(map[objRef][]byte, len(m.live))
	for k, v := range m.live {
		m.flushed[k] = bytes.Clone(v)
	}
	m.dirty = make(map[objRef]bool)
}

const (
	crashDiskBlocks  = 8192 // 4 MB of 512 B blocks
	crashWorkloadOps = 90
)

// setupCrashStore formats a store (classic partition 1, needle
// partition 2) on a fresh CrashDisk and flushes it, so the sweep starts
// from a durable baseline.
func setupCrashStore(t *testing.T, seed int64) (*blockdev.MemDisk, *blockdev.CrashDisk, *Store) {
	t.Helper()
	inner := blockdev.NewMemDisk(512, crashDiskBlocks)
	disk := blockdev.NewCrashDisk(inner, seed)
	// Sync compaction keeps the sweep deterministic: a background
	// compactor would hit the crash disk's persist-step schedule at
	// goroutine-timing-dependent points.
	s, err := FormatStore(disk, WithSyncCompaction(true))
	if err != nil {
		t.Fatalf("seed %d: format: %v", seed, err)
	}
	if err := s.CreatePartitionBackend(1, 0, BackendClassic); err != nil {
		t.Fatalf("seed %d: create classic partition: %v", seed, err)
	}
	if err := s.CreatePartitionBackend(2, 0, BackendNeedle); err != nil {
		t.Fatalf("seed %d: create needle partition: %v", seed, err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("seed %d: baseline flush: %v", seed, err)
	}
	return inner, disk, s
}

// runCrashWorkload drives the seeded op mix until it completes or the
// disk crashes, keeping the model in sync. Every mutation marks its
// object dirty before touching the store, so a mid-operation crash
// leaves the object in the "anything readable goes" bucket.
func runCrashWorkload(s *Store, disk *blockdev.CrashDisk, rng *rand.Rand, m *crashModel) error {
	var ids []objRef
	payload := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	for op := 0; op < crashWorkloadOps; op++ {
		var err error
		switch roll := rng.Intn(10); {
		case roll < 5: // write (creating an object when none or 1-in-3)
			part := uint16(1 + rng.Intn(2))
			var ref objRef
			if len(ids) == 0 || rng.Intn(3) == 0 {
				var id uint64
				m.pendingCreate = true
				id, err = s.Create(part)
				if err != nil {
					break
				}
				m.pendingCreate = false
				ref = objRef{part, id}
				ids = append(ids, ref)
				m.live[ref] = nil
			} else {
				ref = ids[rng.Intn(len(ids))]
			}
			size := 1 + rng.Intn(4096)
			if ref.part == 2 && rng.Intn(4) == 0 {
				size = 16384 + rng.Intn(49152) // push needle segment rolls
			}
			data := payload(size)
			off := 0
			if cur := len(m.live[ref]); cur > 0 && rng.Intn(2) == 0 {
				off = rng.Intn(cur)
			}
			m.dirty[ref] = true
			err = s.Write(ref.part, ref.obj, uint64(off), data)
			if err == nil {
				cur := m.live[ref]
				if need := off + len(data); need > len(cur) {
					grown := make([]byte, need)
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], data)
				m.live[ref] = cur
			}
		case roll < 6 && len(ids) > 0: // remove
			i := rng.Intn(len(ids))
			ref := ids[i]
			m.dirty[ref] = true
			err = s.Remove(ref.part, ref.obj)
			if err == nil {
				delete(m.live, ref)
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
		case roll < 7 && len(ids) > 0: // truncate / extend
			ref := ids[rng.Intn(len(ids))]
			size := uint64(rng.Intn(2048))
			m.dirty[ref] = true
			err = s.SetAttr(ref.part, ref.obj, Attributes{Size: size}, SetSize)
			if err == nil {
				cur := m.live[ref]
				if int(size) <= len(cur) {
					m.live[ref] = cur[:size]
				} else {
					grown := make([]byte, size)
					copy(grown, cur)
					m.live[ref] = grown
				}
			}
		case roll < 8: // flush: everything live becomes committed
			err = s.Flush()
			if err == nil {
				m.markFlushed()
			}
		default: // read (should never error before the crash)
			if len(ids) > 0 {
				ref := ids[rng.Intn(len(ids))]
				_, err = s.Read(ref.part, ref.obj, 0, len(m.live[ref]))
			}
		}
		if err != nil {
			if disk.Crashed() {
				return blockdev.ErrCrashed
			}
			return fmt.Errorf("op %d failed without a crash: %w", op, err)
		}
	}
	if err := s.Flush(); err != nil {
		if disk.Crashed() {
			return blockdev.ErrCrashed
		}
		return fmt.Errorf("final flush failed without a crash: %w", err)
	}
	m.markFlushed()
	return nil
}

// verifyCrashContract reopens the surviving device and checks the
// durability contract against the model.
func verifyCrashContract(t *testing.T, tag string, inner *blockdev.MemDisk, m *crashModel) {
	t.Helper()
	s, err := OpenStore(inner, WithSyncCompaction(true))
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", tag, err)
	}
	for ref, want := range m.flushed {
		data, err := s.Read(ref.part, ref.obj, 0, len(want)+1)
		if m.dirty[ref] {
			if err != nil && !errors.Is(err, ErrNoObject) {
				t.Fatalf("%s: dirty object %v unreadable: %v", tag, ref, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: committed object %v unreadable: %v", tag, ref, err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("%s: committed object %v corrupted: %d bytes, want %d", tag, ref, len(data), len(want))
		}
		a, err := s.GetAttr(ref.part, ref.obj)
		if err != nil || a.Size != uint64(len(want)) {
			t.Fatalf("%s: committed object %v attrs: size %d want %d (err %v)", tag, ref, a.Size, len(want), err)
		}
	}
	for ref := range m.dirty {
		if _, ok := m.flushed[ref]; ok {
			continue
		}
		if _, err := s.Read(ref.part, ref.obj, 0, 1); err != nil && !errors.Is(err, ErrNoObject) {
			t.Fatalf("%s: post-flush object %v unreadable: %v", tag, ref, err)
		}
	}
	// No resurrections: every surviving user object must be one the
	// model knows about — committed, in flight at the crash, or (at
	// most once) a Create whose ID the crash swallowed.
	unknown := 0
	for _, part := range []uint16{1, 2} {
		ids, err := s.List(part)
		if err != nil {
			t.Fatalf("%s: list partition %d: %v", tag, part, err)
		}
		for _, id := range ids {
			ref := objRef{part, id}
			if _, ok := m.flushed[ref]; ok {
				continue
			}
			if m.dirty[ref] {
				continue
			}
			unknown++
		}
	}
	allowed := 0
	if m.pendingCreate {
		allowed = 1
	}
	if unknown > allowed {
		t.Fatalf("%s: %d unknown objects survived the crash (allowed %d)", tag, unknown, allowed)
	}
	// Recovery must have converged: a fresh verification pass over the
	// recovered volume finds nothing left to repair.
	repairs, err := s.verifyRefs()
	if err != nil {
		t.Fatalf("%s: post-recovery verification: %v", tag, err)
	}
	if repairs != 0 {
		t.Fatalf("%s: %d refcount repairs left after recovery", tag, repairs)
	}
}

// crashSweepSeed measures the workload's persist-step count for one
// seed, then replays it with the crash armed at sampled steps.
// Returns how many crash points it exercised.
func crashSweepSeed(t *testing.T, seed int64, tear bool, maxPoints int) int {
	t.Helper()
	// Dry run: count persist steps (crash disarmed).
	inner, disk, s := setupCrashStore(t, seed)
	disk.SetTearWrites(tear)
	base := disk.Steps()
	if err := runCrashWorkload(s, disk, rand.New(rand.NewSource(seed)), newCrashModel()); err != nil {
		t.Fatalf("seed %d: dry run: %v", seed, err)
	}
	total := disk.Steps() - base
	if total < 10 {
		t.Fatalf("seed %d: workload produced only %d persist steps", seed, total)
	}
	_ = inner

	stride := int64(1)
	if int(total) > maxPoints {
		stride = total / int64(maxPoints)
	}
	points := 0
	for n := int64(1); n <= total; n += stride {
		inner, disk, s := setupCrashStore(t, seed)
		disk.SetTearWrites(tear)
		disk.SetCrashAfter(n)
		m := newCrashModel()
		err := runCrashWorkload(s, disk, rand.New(rand.NewSource(seed)), m)
		if err != nil && !errors.Is(err, blockdev.ErrCrashed) {
			t.Fatalf("seed %d crash@%d: %v", seed, n, err)
		}
		// err == nil: the armed step was never reached (background work
		// shifted the step count); the volume is then simply clean.
		verifyCrashContract(t, fmt.Sprintf("seed %d crash@%d tear=%v", seed, n, tear), inner, m)
		points++
	}
	return points
}

// TestCrashSweep is the crash-consistency property test. In short mode
// (scripts/check.sh's crash-consistency focus block) it samples a few
// dozen crash points; the full run (the race suite in check.sh and
// CI's dedicated crash-sweep job) covers 1000+ points across both
// backends and both tear modes.
func TestCrashSweep(t *testing.T) {
	maxPoints, target := 250, 1000
	if testing.Short() {
		maxPoints, target = 16, 32
	}
	points := 0
	for seed := int64(1); points < target && seed <= 16; seed++ {
		points += crashSweepSeed(t, seed, seed%2 == 0, maxPoints)
	}
	if points < target {
		t.Fatalf("swept only %d crash points, want >= %d", points, target)
	}
	t.Logf("swept %d crash points", points)
}

// TestFlushDurableAcrossCrash is the regression test for the needle
// flush-propagation bug: Store.Flush on a needle partition used to
// snapshot the index and write log tails without ever flushing the
// device, so a volatile write cache could lose everything "flushed".
func TestFlushDurableAcrossCrash(t *testing.T) {
	inner, disk, s := setupCrashStore(t, 99)
	classic := bytes.Repeat([]byte{0xC1}, 3000)
	needle := bytes.Repeat([]byte{0x4E}, 3000)
	idC, err := s.Create(1)
	if err != nil {
		t.Fatalf("create classic: %v", err)
	}
	idN, err := s.Create(2)
	if err != nil {
		t.Fatalf("create needle: %v", err)
	}
	if err := s.Write(1, idC, 0, classic); err != nil {
		t.Fatalf("write classic: %v", err)
	}
	if err := s.Write(2, idN, 0, needle); err != nil {
		t.Fatalf("write needle: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Power cut: everything still in the volatile cache is gone.
	disk.Crash()

	s2, err := OpenStore(inner, WithSyncCompaction(true))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := s2.Read(1, idC, 0, len(classic))
	if err != nil || !bytes.Equal(got, classic) {
		t.Fatalf("classic object lost after flush+crash: %v (%d bytes)", err, len(got))
	}
	got, err = s2.Read(2, idN, 0, len(needle))
	if err != nil || !bytes.Equal(got, needle) {
		t.Fatalf("needle object lost after flush+crash: %v (%d bytes)", err, len(got))
	}
}

// TestJournalOffVolume checks the benchmarking escape hatch: a volume
// formatted with a negative journal size has no journal region, opens
// with journaling disabled, and still round-trips data through a clean
// flush.
func TestJournalOffVolume(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 4096)
	s, err := FormatStore(dev, WithJournalBlocks(-1), WithSyncCompaction(true))
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	if err := s.CreatePartition(1, 0); err != nil {
		t.Fatalf("create partition: %v", err)
	}
	id, err := s.Create(1)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	data := bytes.Repeat([]byte{7}, 1234)
	if err := s.Write(1, id, 0, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	s2, err := OpenStore(dev, WithSyncCompaction(true))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.RecoveryInfo() != (RecoveryInfo{}) {
		t.Fatalf("journal-off volume reported recovery: %+v", s2.RecoveryInfo())
	}
	got, err := s2.Read(1, id, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after reopen: %v", err)
	}
}
