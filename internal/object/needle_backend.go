package object

import (
	"errors"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/journal"
	"nasd/internal/layout"
	"nasd/internal/needle"
)

// needleBackend fronts the internal/needle engine as a StoreBackend.
// The engine is substrate-agnostic; this file is where it is plugged
// into the store's classic layout: segments draw blocks from the
// classic allocator (one free-space pool for both engines), log
// metadata persists as classic partition-0 raw objects, and quota flows
// through the store's ledger.
type needleBackend struct {
	s   *Store
	eng *needle.Engine
}

func newNeedleBackend(s *Store, dev blockdev.Device) *needleBackend {
	b := &needleBackend{s: s}
	b.eng = needle.New(needle.Config{
		Dev:         dev,
		Space:       needleSpace{s},
		Meta:        needleMeta{s},
		Quota:       needleQuota{s},
		Metrics:     s.cfg.Metrics,
		Events:      s.cfg.Events,
		SyncCompact: s.cfg.SyncCompact,
	})
	return b
}

// needleSpace feeds segment allocation from the classic block
// allocator.
type needleSpace struct{ s *Store }

func (sp needleSpace) AllocBlocks(n int) ([]int64, error) {
	return sp.s.classic.lay.Alloc(n, 0)
}

func (sp needleSpace) FreeBlock(blk int64) error {
	return sp.s.classic.lay.Free(blk)
}

// needleMeta persists log metadata in the partition's two classic
// partition-0 raw objects (allocated at CreatePartition).
type needleMeta struct{ s *Store }

func (m needleMeta) LoadSegments(part uint16) ([]byte, error) {
	segs, _, err := m.s.metaIDs(part)
	if err != nil {
		return nil, err
	}
	return m.s.classic.loadRaw(segs)
}

// SaveSegments is durable on return: the segment table is the log's
// root metadata, so losing it strands the log's blocks. On a journaled
// volume the encoded table is committed as one intent record and the
// in-place object write stays buffered — a crash replays the record at
// mount, and recovery pins the blocks it names before any replay
// allocation. Each new record supersedes the partition's previous one.
// Without a journal (or when the record cannot fit), the table is
// pushed through the cache and the allocator state synced with it — the
// pre-journal full-sync path. Either way this runs only at segment
// granularity (roll, compaction), not per object write.
func (m needleMeta) SaveSegments(part uint16, data []byte) error {
	segs, _, err := m.s.metaIDs(part)
	if err != nil {
		return err
	}
	lay := m.s.classic.lay
	if lay.JournalEnabled() {
		lsn, jerr := lay.JournalAppend(journal.KindNeedleSeg, journal.EncodeNeedleSeg(part, data))
		if jerr == nil {
			if err := m.s.classic.saveRaw(segs, data); err != nil {
				return err
			}
			m.s.lockParts()
			if prev := m.s.segLSNs[part]; prev != 0 {
				lay.JournalApplied(prev)
			}
			m.s.segLSNs[part] = lsn
			m.s.pmu.Unlock()
			return nil
		}
		if !errors.Is(jerr, journal.ErrFull) {
			return jerr
		}
	}
	if err := m.s.classic.saveRaw(segs, data); err != nil {
		return err
	}
	if err := m.s.classic.cache.Flush(); err != nil {
		return err
	}
	return lay.Sync()
}

func (m needleMeta) LoadIndex(part uint16) ([]byte, error) {
	_, idx, err := m.s.metaIDs(part)
	if err != nil {
		return nil, err
	}
	return m.s.classic.loadRaw(idx)
}

// SaveIndex is buffered: the snapshot is restart acceleration only, and
// Store.Flush flushes the needle engine before the classic cache, so
// the snapshot written here becomes durable in the same flush.
func (m needleMeta) SaveIndex(part uint16, data []byte) error {
	_, idx, err := m.s.metaIDs(part)
	if err != nil {
		return err
	}
	return m.s.classic.saveRaw(idx, data)
}

// needleQuota routes segment charges into the store's quota ledger.
type needleQuota struct{ s *Store }

func (q needleQuota) ChargeBlocks(part uint16, delta int64) error {
	return q.s.chargeBlocks(part, delta)
}

func (q needleQuota) SettleBlocks(part uint16, delta int64) {
	q.s.settleBlocks(part, delta)
}

// mapNeedleErr translates engine errors into the object layer's
// vocabulary; anything unrecognized (including wrapped ErrQuota from
// the store's own ledger) passes through.
func mapNeedleErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, needle.ErrNotFound):
		return ErrNoObject
	case errors.Is(err, needle.ErrNoLog):
		return ErrNoPartition
	case errors.Is(err, needle.ErrTooBig):
		return ErrBadRange
	default:
		return err
	}
}

func (b *needleBackend) now() int64 { return b.s.cfg.Clock().Unix() }

// Kind implements StoreBackend.
func (b *needleBackend) Kind() BackendKind { return BackendNeedle }

// Create implements StoreBackend.
func (b *needleBackend) Create(part uint16, id uint64) error {
	return mapNeedleErr(b.eng.Create(part, id, b.now()))
}

// Remove implements StoreBackend. The freed charge is zero: needle
// quota is charged per segment, and segments are only released by
// compaction (which settles the ledger itself).
func (b *needleBackend) Remove(part uint16, obj uint64) (int64, error) {
	return 0, mapNeedleErr(b.eng.Remove(part, obj))
}

// Read implements StoreBackend. The tracker is ignored: a needle read
// already costs at most two media I/Os, so there is nothing for
// readahead to win.
func (b *needleBackend) Read(part uint16, obj uint64, off uint64, n int, _ *SeqTracker) ([]byte, error) {
	data, err := b.eng.Read(part, obj, off, n)
	return data, mapNeedleErr(err)
}

// Write implements StoreBackend.
func (b *needleBackend) Write(part uint16, obj uint64, off uint64, data []byte) error {
	end := off + uint64(len(data))
	if end < off || end > b.eng.MaxObjectSize() {
		return ErrBadRange
	}
	return mapNeedleErr(b.eng.Write(part, obj, off, data, b.now()))
}

// GetAttr implements StoreBackend. Attributes come straight from the
// in-memory index — no media access.
func (b *needleBackend) GetAttr(part uint16, obj uint64) (Attributes, error) {
	info, err := b.eng.GetInfo(part, obj)
	if err != nil {
		return Attributes{}, mapNeedleErr(err)
	}
	a := Attributes{
		Size:        info.Size,
		Version:     info.Version,
		CreateTime:  time.Unix(info.CreateSec, 0),
		ModTime:     time.Unix(info.ModSec, 0),
		AttrModTime: time.Unix(info.AttrModSec, 0),
		Prealloc:    info.Prealloc,
		Cluster:     info.Cluster,
	}
	if info.Uninterp != nil {
		a.Uninterp = *info.Uninterp
	}
	return a, nil
}

// SetAttr implements StoreBackend by appending one superseding record
// with the updated attributes (and, for SetSize, the truncated or
// zero-extended payload).
func (b *needleBackend) SetAttr(part uint16, obj uint64, a Attributes, mask SetAttrMask) error {
	if mask&SetSize != 0 && a.Size > b.eng.MaxObjectSize() {
		return ErrBadRange
	}
	now := b.now()
	err := b.eng.Update(part, obj, func(info *needle.Info) error {
		if mask&SetSize != 0 && a.Size != info.Size {
			info.Size = a.Size
			info.ModSec = now
		}
		if mask&SetVersion != 0 {
			info.Version = a.Version
		}
		if mask&SetPrealloc != 0 {
			info.Prealloc = a.Prealloc
		}
		if mask&SetCluster != 0 {
			info.Cluster = a.Cluster
		}
		if mask&SetUninterp != 0 {
			if a.Uninterp == ([layout.UninterpSize]byte{}) {
				info.Uninterp = nil
			} else {
				u := a.Uninterp
				info.Uninterp = &u
			}
		}
		if mask&SetModTime != 0 {
			info.ModSec = a.ModTime.Unix()
		}
		info.AttrModSec = now
		return nil
	})
	if err == nil && mask&SetVersion != 0 {
		// A version bump revokes capabilities; losing it to a crash
		// would re-arm them. Classic onode writes are write-through, so
		// match that durability by syncing the log tail here.
		err = b.eng.Sync(part)
	}
	return mapNeedleErr(err)
}

// List implements StoreBackend.
func (b *needleBackend) List(part uint16) ([]uint64, error) {
	ids, err := b.eng.List(part)
	return ids, mapNeedleErr(err)
}

// Charge implements StoreBackend: individual needle objects carry no
// quota charge (segments are charged as they are allocated).
func (b *needleBackend) Charge(part uint16, obj uint64) (int64, error) {
	if _, err := b.eng.GetInfo(part, obj); err != nil {
		return 0, mapNeedleErr(err)
	}
	return 0, nil
}

// VersionObject implements StoreBackend: copy-on-write versions need
// the classic block-map sharing machinery, which a needle log does not
// have.
func (b *needleBackend) VersionObject(part uint16, obj uint64) (uint64, error) {
	if _, err := b.eng.GetInfo(part, obj); err != nil {
		return 0, mapNeedleErr(err)
	}
	return 0, ErrBackendMismatch
}

// Flush implements StoreBackend.
func (b *needleBackend) Flush() error { return b.eng.Flush() }

// Log lifecycle passthroughs for the store's partition management.
func (b *needleBackend) createLog(part uint16) error { return b.eng.CreateLog(part) }

func (b *needleBackend) openLog(part uint16) (needle.Stats, error) { return b.eng.OpenLog(part) }

func (b *needleBackend) dropLog(part uint16) error { return b.eng.DropLog(part) }

var _ StoreBackend = (*needleBackend)(nil)
