package object

import (
	"time"

	"nasd/internal/bufpool"
	"nasd/internal/cache"
	"nasd/internal/layout"
	"nasd/internal/telemetry"
)

// classicBackend is the paper's object engine behind the StoreBackend
// interface: the layout package's superblock / refcounted allocator /
// onode table / indirect block maps, fronted by the sharded buffer
// cache with write-behind and sequential readahead. It is the default
// backend, the one that always exists (the control object and the
// needle engine's metadata objects live in it as partition-0 raw
// objects), and the only one supporting copy-on-write versions.
type classicBackend struct {
	lay   *layout.Store
	cache *cache.BlockCache
	cfg   *Config
	quota quotaAccount

	// reads counts object-level reads served, the denominator of the
	// classic media-I/O-per-read gauge. Nil when metrics are disabled.
	reads *telemetry.Counter
}

func newClassicBackend(lay *layout.Store, c *cache.BlockCache, cfg *Config, quota quotaAccount) *classicBackend {
	cb := &classicBackend{lay: lay, cache: c, cfg: cfg, quota: quota}
	if reg := cfg.Metrics; reg != nil {
		cb.reads = reg.Counter("object.classic.reads")
		// Media I/Os per object read, in thousandths: device reads by
		// the cache (misses) plus the layout engine's direct metadata
		// reads (onodes, indirect blocks), over object reads served.
		// Approximate under mixed workloads (writes also miss), exact
		// for read-only phases — which is how the smallobj bench uses
		// it.
		reg.Func("object.classic.media_per_read_milli", func() int64 {
			n := int64(cb.reads.Load())
			if n == 0 {
				return 0
			}
			return (c.Stats().Misses + lay.DevReads()) * 1000 / n
		})
	}
	return cb
}

// Kind implements StoreBackend.
func (c *classicBackend) Kind() BackendKind { return BackendClassic }

// lookup resolves (part, obj) to its onode. The caller holds the
// object's lock (either mode), which is what keeps the onode stable
// until the operation completes. Partition existence is checked by the
// Store before dispatch.
func (c *classicBackend) lookup(part uint16, obj uint64) (int64, layout.Onode, error) {
	idx, ok := c.lay.FindOnode(obj)
	if !ok {
		return 0, layout.Onode{}, ErrNoObject
	}
	o, err := c.lay.ReadOnode(idx)
	if err != nil {
		return 0, layout.Onode{}, err
	}
	if o.Partition != part {
		return 0, layout.Onode{}, ErrNoObject
	}
	return idx, o, nil
}

// footprint counts the block references owned by an object (data plus
// indirect blocks).
func (c *classicBackend) footprint(o *layout.Onode) int64 {
	var n int64
	_ = c.lay.ForEachBlock(o, func(int64, bool) error { n++; return nil })
	return n
}

// chargeOf is what quotas charge for an object: its footprint or its
// capacity reservation (Prealloc), whichever is larger. Reserved space
// is charged up front so preallocated writes can never fail on quota.
func (c *classicBackend) chargeOf(o *layout.Onode) int64 {
	fp := c.footprint(o)
	bs := uint64(c.lay.BlockSize())
	res := int64((o.Prealloc + bs - 1) / bs)
	if res > fp {
		return res
	}
	return fp
}

// Charge implements StoreBackend.
func (c *classicBackend) Charge(part uint16, obj uint64) (int64, error) {
	_, o, err := c.lookup(part, obj)
	if err != nil {
		return 0, err
	}
	return c.chargeOf(&o), nil
}

// reserve updates an object's capacity reservation, charging or
// refunding the partition. Caller holds the object's exclusive lock and
// persists the onode.
func (c *classicBackend) reserve(o *layout.Onode, prealloc uint64) error {
	before := c.chargeOf(o)
	old := o.Prealloc
	o.Prealloc = prealloc
	delta := c.chargeOf(o) - before
	if err := c.quota.chargeBlocks(o.Partition, delta); err != nil {
		o.Prealloc = old
		return err
	}
	return nil
}

// clusterHint returns an allocation hint near the object this one is
// linked to (the clustering attribute of Section 4.1), or 0. The target
// object is read without its lock — the hint is advisory, and a
// concurrently mutating target only yields a stale hint.
func (c *classicBackend) clusterHint(o *layout.Onode) int64 {
	if o.Cluster == 0 {
		return 0
	}
	idx, ok := c.lay.FindOnode(o.Cluster)
	if !ok {
		return 0
	}
	t, err := c.lay.ReadOnode(idx)
	if err != nil {
		return 0
	}
	var hint int64
	_ = c.lay.ForEachBlock(&t, func(phys int64, isPtr bool) error {
		if !isPtr && phys+1 > hint {
			hint = phys + 1
		}
		return nil
	})
	return hint
}

// --- Object lifecycle ---------------------------------------------------

// Create implements StoreBackend. The new object is invisible until its
// onode is written, so no object lock is needed.
func (c *classicBackend) Create(part uint16, id uint64) error {
	idx, err := c.lay.AllocOnode()
	if err != nil {
		return err
	}
	now := c.cfg.Clock().Unix()
	o := layout.Onode{
		ObjectID:   id,
		Partition:  part,
		Version:    1,
		CreateSec:  now,
		ModSec:     now,
		AttrModSec: now,
	}
	return c.lay.WriteOnode(idx, &o)
}

// Remove implements StoreBackend: it deletes the object, releases its
// blocks, and returns the quota charge freed.
func (c *classicBackend) Remove(part uint16, obj uint64) (int64, error) {
	idx, o, err := c.lookup(part, obj)
	if err != nil {
		return 0, err
	}
	charge := c.chargeOf(&o)
	// Invalidate cache entries for blocks about to become free so a
	// later reallocation cannot observe stale contents.
	if err := c.lay.ForEachBlock(&o, func(phys int64, isPtr bool) error {
		if !isPtr && c.lay.RefCount(phys) == 1 {
			c.cache.Invalidate(phys)
		}
		return nil
	}); err != nil {
		return 0, err
	}
	if err := c.lay.FreeObjectBlocks(&o); err != nil {
		return 0, err
	}
	if err := c.lay.WriteOnode(idx, &layout.Onode{}); err != nil {
		return 0, err
	}
	return charge, nil
}

// List implements StoreBackend.
func (c *classicBackend) List(part uint16) ([]uint64, error) {
	return c.lay.ObjectIDs(part), nil
}

// --- Attributes ----------------------------------------------------------

// GetAttr implements StoreBackend.
func (c *classicBackend) GetAttr(part uint16, obj uint64) (Attributes, error) {
	_, o, err := c.lookup(part, obj)
	if err != nil {
		return Attributes{}, err
	}
	return attrsFromOnode(&o), nil
}

func attrsFromOnode(o *layout.Onode) Attributes {
	return Attributes{
		Size:        o.Size,
		Version:     o.Version,
		CreateTime:  time.Unix(o.CreateSec, 0).UTC(),
		ModTime:     time.Unix(o.ModSec, 0).UTC(),
		AttrModTime: time.Unix(o.AttrModSec, 0).UTC(),
		Prealloc:    o.Prealloc,
		Cluster:     o.Cluster,
		Uninterp:    o.Uninterp,
	}
}

// SetAttr implements StoreBackend.
func (c *classicBackend) SetAttr(part uint16, obj uint64, a Attributes, mask SetAttrMask) error {
	idx, o, err := c.lookup(part, obj)
	if err != nil {
		return err
	}
	if mask&SetSize != 0 && a.Size != o.Size {
		if err := c.truncate(&o, a.Size); err != nil {
			return err
		}
		o.ModSec = c.cfg.Clock().Unix()
	}
	if mask&SetVersion != 0 {
		o.Version = a.Version
	}
	if mask&SetPrealloc != 0 {
		// Capacity reservation (Section 4.1: "allow capacity to be
		// reserved"): charge the partition for the reserved blocks now
		// so later writes cannot fail on quota, and refuse reservations
		// the quota cannot cover.
		if err := c.reserve(&o, a.Prealloc); err != nil {
			return err
		}
	}
	if mask&SetCluster != 0 {
		o.Cluster = a.Cluster
	}
	if mask&SetUninterp != 0 {
		o.Uninterp = a.Uninterp
	}
	if mask&SetModTime != 0 {
		o.ModSec = a.ModTime.Unix()
	}
	o.AttrModSec = c.cfg.Clock().Unix()
	return c.lay.WriteOnode(idx, &o)
}

// truncate resizes o in place, freeing or leaving holes. Caller holds
// the object's exclusive lock and persists the onode afterwards.
func (c *classicBackend) truncate(o *layout.Onode, newSize uint64) error {
	bs := uint64(c.lay.BlockSize())
	if newSize > c.lay.MaxObjectSize() {
		return layout.ErrTooBig
	}
	before := c.chargeOf(o)
	if newSize < o.Size {
		first := (newSize + bs - 1) / bs // first block to drop
		last := (o.Size + bs - 1) / bs
		for fb := first; fb < last; fb++ {
			phys, err := c.lay.BMap(o, int64(fb))
			if err != nil {
				return err
			}
			if phys != 0 && c.lay.RefCount(phys) == 1 {
				c.cache.Invalidate(phys)
			}
			if _, err := c.lay.UnmapBlock(o, int64(fb)); err != nil {
				return err
			}
		}
		// Zero the tail of the new last block so growth re-reads zeros.
		if newSize%bs != 0 {
			phys, err := c.lay.BMap(o, int64(newSize/bs))
			if err != nil {
				return err
			}
			if phys != 0 {
				buf := make([]byte, bs)
				if err := c.cache.ReadBlock(phys, buf); err != nil {
					return err
				}
				for i := newSize % bs; i < bs; i++ {
					buf[i] = 0
				}
				// Shared blocks must be unshared before zeroing.
				np, err := c.lay.BMapAlloc(o, int64(newSize/bs), phys)
				if err != nil {
					return err
				}
				if err := c.cache.WriteBlock(np, buf); err != nil {
					return err
				}
			}
		}
	}
	o.Size = newSize
	c.quota.settleBlocks(o.Partition, c.chargeOf(o)-before)
	return nil
}

// --- Data access ---------------------------------------------------------

// Read implements StoreBackend. Sequential access (tracked by seq)
// triggers readahead into the cache.
func (c *classicBackend) Read(part uint16, obj uint64, off uint64, n int, seq *SeqTracker) ([]byte, error) {
	_, o, err := c.lookup(part, obj)
	if err != nil {
		return nil, err
	}
	if c.reads != nil {
		c.reads.Inc()
	}
	if off >= o.Size {
		return nil, nil
	}
	if max := o.Size - off; uint64(n) > max {
		n = int(max)
	}
	bs := uint64(c.lay.BlockSize())
	// Pooled result, filled straight from cached blocks under the shard
	// lock (cache.ReadRange): one copy from cache memory to the reply
	// buffer, no per-block bounce buffer. Ownership passes to the
	// caller; the drive returns it to the pool once the reply is on the
	// wire.
	out := bufpool.Get(n)
	for done := 0; done < n; {
		cur := off + uint64(done)
		fb := int64(cur / bs)
		within := cur % bs
		chunk := int(bs - within)
		if chunk > n-done {
			chunk = n - done
		}
		phys, err := c.lay.BMap(&o, fb)
		if err != nil {
			bufpool.Put(out)
			return nil, err
		}
		if phys == 0 {
			for i := 0; i < chunk; i++ {
				out[done+i] = 0
			}
		} else {
			if err := c.cache.ReadRange(phys, int(within), out[done:done+chunk]); err != nil {
				bufpool.Put(out)
				return nil, err
			}
		}
		done += chunk
	}
	c.readahead(seq, &o, off, uint64(n))
	return out, nil
}

// readahead detects sequential access and prefetches ahead. The
// sequential tracker lives in the object's lock entry; the caller holds
// at least the read side of that entry, and the tracker's own mutex
// orders concurrent readers' updates.
func (c *classicBackend) readahead(seq *SeqTracker, o *layout.Onode, off, n uint64) {
	if c.cfg.ReadaheadBlocks == 0 {
		return
	}
	if !seq.Advance(off, n) {
		return
	}
	bs := uint64(c.lay.BlockSize())
	startFB := int64((off + n + bs - 1) / bs)
	var blocks []int64
	for i := 0; i < c.cfg.ReadaheadBlocks; i++ {
		fb := startFB + int64(i)
		if uint64(fb)*bs >= o.Size {
			break
		}
		phys, err := c.lay.BMap(o, fb)
		if err != nil || phys == 0 {
			continue
		}
		blocks = append(blocks, phys)
	}
	c.cache.Prefetch(blocks)
}

// Write implements StoreBackend. Writes are write-behind unless the
// store was configured write-through. Quota admission reserves
// worst-case blocks up front so concurrent writers cannot jointly
// overshoot a partition quota.
func (c *classicBackend) Write(part uint16, obj uint64, off uint64, data []byte) error {
	idx, o, err := c.lookup(part, obj)
	if err != nil {
		return err
	}
	end := off + uint64(len(data))
	if end < off || end > c.lay.MaxObjectSize() {
		return ErrBadRange
	}
	bs := uint64(c.lay.BlockSize())
	chargeBefore := c.chargeOf(&o)

	// Quota admission: estimate the worst-case new blocks (holes in the
	// written range plus up to three indirect blocks), net of the
	// object's capacity reservation, and reserve them against the
	// partition before writing. The reservation is settled against the
	// actual footprint afterwards.
	var reserved int64
	if c.quota.quotaed(part) {
		var holes int64 = 3 // worst-case new indirect blocks
		for fb := off / bs; fb*bs < end; fb++ {
			phys, err := c.lay.BMap(&o, int64(fb))
			if err != nil {
				return err
			}
			if phys == 0 {
				holes++
			}
		}
		estChargeAfter := c.footprint(&o) + holes
		if res := int64((o.Prealloc + bs - 1) / bs); res > estChargeAfter {
			estChargeAfter = res
		}
		if need := estChargeAfter - chargeBefore; need > 0 {
			if err := c.quota.chargeBlocks(part, need); err != nil {
				return err
			}
			reserved = need
		}
	}

	werr := c.writeRange(&o, off, data)
	if werr == nil {
		if end > o.Size {
			o.Size = end
		}
		o.ModSec = c.cfg.Clock().Unix()
	}
	// Settle the reservation against what the object actually grew by —
	// also on error, since partially written blocks stay allocated.
	c.quota.settleBlocks(part, c.chargeOf(&o)-chargeBefore-reserved)
	// Persist the onode even after a partial failure so blocks mapped
	// before the error are not orphaned.
	if perr := c.lay.WriteOnode(idx, &o); werr == nil {
		werr = perr
	}
	return werr
}

// writeRange maps and writes the block range of one write. Caller holds
// the object's exclusive lock and persists the onode.
func (c *classicBackend) writeRange(o *layout.Onode, off uint64, data []byte) error {
	bs := uint64(c.lay.BlockSize())
	// Clustering: when this object has no blocks yet and is linked to
	// another object, allocate near it.
	clusterHint := int64(0)
	if o.Cluster != 0 {
		clusterHint = c.clusterHint(o)
	}
	var buf []byte // pooled RMW bounce buffer for partial blocks only
	defer func() { bufpool.Put(buf) }()
	for done := 0; done < len(data); {
		cur := off + uint64(done)
		fb := int64(cur / bs)
		within := cur % bs
		chunk := int(bs - within)
		if chunk > len(data)-done {
			chunk = len(data) - done
		}
		hint := clusterHint
		if fb > 0 {
			if prev, err := c.lay.BMap(o, fb-1); err == nil && prev != 0 {
				hint = prev + 1
			}
		}
		prevPhys, err := c.lay.BMap(o, fb)
		if err != nil {
			return err
		}
		phys, err := c.lay.BMapAlloc(o, fb, hint)
		if err != nil {
			return err
		}
		if within == 0 && chunk == int(bs) {
			// Full block: hand the caller's bytes straight to the cache
			// (which copies into its own pooled entry) — no bounce copy.
			if err := c.cache.WriteBlock(phys, data[done:done+chunk]); err != nil {
				return err
			}
			done += chunk
			continue
		}
		// Partial block: read-modify-write. A block that was a hole
		// before this write contains whatever a previous owner left
		// there, so zero-fill it instead of reading.
		if buf == nil {
			buf = bufpool.Get(int(bs))
		}
		if prevPhys == 0 {
			for i := range buf {
				buf[i] = 0
			}
		} else if err := c.cache.ReadBlock(phys, buf); err != nil {
			return err
		}
		copy(buf[within:], data[done:done+chunk])
		if err := c.cache.WriteBlock(phys, buf); err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

// VersionObject implements StoreBackend: it creates a copy-on-write
// version (snapshot) sharing all data blocks with the original until
// either side writes. Quota admission and object-count accounting for
// the clone happen in the Store above; the caller holds the source's
// exclusive lock.
func (c *classicBackend) VersionObject(part uint16, obj uint64) (uint64, error) {
	_, o, err := c.lookup(part, obj)
	if err != nil {
		return 0, err
	}
	idx, err := c.lay.AllocOnode()
	if err != nil {
		return 0, err
	}
	if err := c.lay.CloneOnodeBlocks(&o); err != nil {
		return 0, err
	}
	clone := o
	clone.ObjectID = c.lay.NextObjectID()
	clone.Version = 1
	clone.CreateSec = c.cfg.Clock().Unix()
	if err := c.lay.WriteOnode(idx, &clone); err != nil {
		return 0, err
	}
	return clone.ObjectID, nil
}

// Flush implements StoreBackend: it forces write-behind cache data to
// the device. The layout's own metadata sync happens once, in
// Store.Flush, after every backend has flushed.
func (c *classicBackend) Flush() error {
	return c.cache.Flush()
}

// --- Raw partition-0 objects --------------------------------------------
//
// The Store persists its own metadata — the partition table in the
// control object, and the needle engine's segment tables and index
// snapshots — as raw partition-0 objects in the classic engine,
// bypassing partition/quota logic. Callers hold pmu.

// writeRaw replaces an onode's data with data.
func (c *classicBackend) writeRaw(o *layout.Onode, data []byte) error {
	bs := int(c.lay.BlockSize())
	buf := make([]byte, bs)
	for done := 0; done < len(data); done += bs {
		fb := int64(done / bs)
		phys, err := c.lay.BMapAlloc(o, fb, 0)
		if err != nil {
			return err
		}
		n := copy(buf, data[done:])
		for i := n; i < bs; i++ {
			buf[i] = 0
		}
		if err := c.cache.WriteBlock(phys, buf); err != nil {
			return err
		}
	}
	// Drop blocks past the new end so raw objects can shrink.
	if o.Size > uint64(len(data)) {
		first := (int64(len(data)) + int64(bs) - 1) / int64(bs)
		last := (int64(o.Size) + int64(bs) - 1) / int64(bs)
		for fb := first; fb < last; fb++ {
			if _, err := c.lay.UnmapBlock(o, fb); err != nil {
				return err
			}
		}
	}
	o.Size = uint64(len(data))
	return nil
}

// readRaw reads an onode's full contents.
func (c *classicBackend) readRaw(o *layout.Onode) ([]byte, error) {
	bs := int(c.lay.BlockSize())
	out := make([]byte, o.Size)
	buf := make([]byte, bs)
	for done := 0; done < len(out); done += bs {
		fb := int64(done / bs)
		phys, err := c.lay.BMap(o, fb)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			continue
		}
		if err := c.cache.ReadBlock(phys, buf); err != nil {
			return nil, err
		}
		copy(out[done:], buf)
	}
	return out, nil
}

// createRaw allocates a fresh partition-0 object and returns its ID.
func (c *classicBackend) createRaw() (uint64, error) {
	id := c.lay.NextObjectID()
	idx, err := c.lay.AllocOnode()
	if err != nil {
		return 0, err
	}
	o := layout.Onode{ObjectID: id, Partition: 0, Version: 1}
	if err := c.lay.WriteOnode(idx, &o); err != nil {
		return 0, err
	}
	return id, nil
}

// saveRaw replaces the contents of partition-0 object id.
func (c *classicBackend) saveRaw(id uint64, data []byte) error {
	idx, ok := c.lay.FindOnode(id)
	if !ok {
		return ErrNoObject
	}
	o, err := c.lay.ReadOnode(idx)
	if err != nil {
		return err
	}
	if err := c.writeRaw(&o, data); err != nil {
		return err
	}
	return c.lay.WriteOnode(idx, &o)
}

// loadRaw returns the contents of partition-0 object id.
func (c *classicBackend) loadRaw(id uint64) ([]byte, error) {
	idx, ok := c.lay.FindOnode(id)
	if !ok {
		return nil, ErrNoObject
	}
	o, err := c.lay.ReadOnode(idx)
	if err != nil {
		return nil, err
	}
	return c.readRaw(&o)
}

// removeRaw deletes partition-0 object id and frees its blocks.
func (c *classicBackend) removeRaw(id uint64) error {
	_, err := c.Remove(0, id)
	return err
}

var _ StoreBackend = (*classicBackend)(nil)
