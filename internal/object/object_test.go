package object

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"nasd/internal/blockdev"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	dev := blockdev.NewMemDisk(4096, 4096)
	s, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	s := newTestStore(t)
	id, err := s.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if id < FirstUserObject {
		t.Fatalf("user object id %d collides with well-known space", id)
	}
	data := []byte("hello, network-attached secure disk")
	if err := s.Write(1, id, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, id, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q want %q", got, data)
	}
}

func TestReadClippedAtSize(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	if err := s.Write(1, id, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	got, err = s.Read(1, id, 10, 5)
	if err != nil || got != nil {
		t.Fatalf("read past EOF = %q, %v", got, err)
	}
}

func TestWriteAtOffsetExtends(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	if err := s.Write(1, id, 10000, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	a, err := s.GetAttr(1, id)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != 10004 {
		t.Fatalf("size = %d", a.Size)
	}
	// The hole reads as zeros.
	got, err := s.Read(1, id, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("hole = %v", got)
	}
	got, _ = s.Read(1, id, 10000, 4)
	if string(got) != "tail" {
		t.Fatalf("tail = %q", got)
	}
}

func TestSparseHolePartialFillZeroes(t *testing.T) {
	s := newTestStore(t)
	// Create garbage in a block then free it, so reuse would expose it.
	tmp, _ := s.Create(1)
	if err := s.Write(1, tmp, 0, bytes.Repeat([]byte{0xEE}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(1, tmp); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(1)
	// Size extends over block 1 but block 1 stays a hole.
	if err := s.Write(1, id, 9000, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Partial write into the hole block 0.
	if err := s.Write(1, id, 100, []byte("y")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 100)) {
		t.Fatalf("hole fill leaked previous contents: %v", got[:8])
	}
}

func TestLargeObjectMultiBlock(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 300*1024) // spans direct + indirect blocks
	rng.Read(data)
	if err := s.Write(1, id, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, id, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large object round trip failed")
	}
	// Unaligned mid-object read.
	got, err = s.Read(1, id, 12345, 54321)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[12345:12345+54321]) {
		t.Fatal("unaligned read mismatch")
	}
}

func TestOverwriteInPlace(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	if err := s.Write(1, id, 0, bytes.Repeat([]byte{1}, 10000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, id, 5000, bytes.Repeat([]byte{2}, 1000)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(1, id, 4999, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("boundary = %v", got)
	}
	got, _ = s.Read(1, id, 5999, 3)
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("boundary = %v", got)
	}
	a, _ := s.GetAttr(1, id)
	if a.Size != 10000 {
		t.Fatalf("overwrite changed size to %d", a.Size)
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	s := newTestStore(t)
	before := s.FreeBlocks()
	id, _ := s.Create(1)
	if err := s.Write(1, id, 0, make([]byte, 100*1024)); err != nil {
		t.Fatal(err)
	}
	if s.FreeBlocks() >= before {
		t.Fatal("write did not consume blocks")
	}
	if err := s.Remove(1, id); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeBlocks(); got != before {
		t.Fatalf("free = %d, want %d", got, before)
	}
	if _, err := s.GetAttr(1, id); !errors.Is(err, ErrNoObject) {
		t.Fatalf("removed object still readable: %v", err)
	}
}

func TestPartitionLifecycle(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreatePartition(1, 0); !errors.Is(err, ErrPartitionExists) {
		t.Fatalf("duplicate partition: %v", err)
	}
	if err := s.CreatePartition(0, 0); err == nil {
		t.Fatal("partition 0 creation accepted")
	}
	if err := s.CreatePartition(2, 100); err != nil {
		t.Fatal(err)
	}
	p, err := s.GetPartition(2)
	if err != nil || p.QuotaBlocks != 100 {
		t.Fatalf("partition = %+v, %v", p, err)
	}
	id, err := s.Create(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemovePartition(2); !errors.Is(err, ErrPartitionBusy) {
		t.Fatalf("remove of non-empty partition: %v", err)
	}
	if err := s.Remove(2, id); err != nil {
		t.Fatal(err)
	}
	if err := s.RemovePartition(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetPartition(2); !errors.Is(err, ErrNoPartition) {
		t.Fatal("removed partition still present")
	}
}

func TestPartitionIsolation(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreatePartition(2, 0); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(1)
	// The object is not visible through partition 2.
	if _, err := s.GetAttr(2, id); !errors.Is(err, ErrNoObject) {
		t.Fatalf("cross-partition access: %v", err)
	}
	if _, err := s.Read(2, id, 0, 10); !errors.Is(err, ErrNoObject) {
		t.Fatalf("cross-partition read: %v", err)
	}
}

func TestQuotaEnforcedAndResize(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreatePartition(3, 10); err != nil { // 10 blocks = 40 KB
		t.Fatal(err)
	}
	id, _ := s.Create(3)
	if err := s.Write(3, id, 0, make([]byte, 16*1024)); err != nil { // 4 blocks
		t.Fatal(err)
	}
	if err := s.Write(3, id, 16*1024, make([]byte, 64*1024)); !errors.Is(err, ErrQuota) {
		t.Fatalf("quota breach: %v", err)
	}
	// Resize up, then the write fits.
	if err := s.ResizePartition(3, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3, id, 16*1024, make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	// Shrinking below usage fails.
	if err := s.ResizePartition(3, 5); !errors.Is(err, ErrQuota) {
		t.Fatalf("shrink below usage: %v", err)
	}
	p, _ := s.GetPartition(3)
	if p.UsedBlocks < 20 {
		t.Fatalf("used = %d, want >= 20", p.UsedBlocks)
	}
}

func TestQuotaReleasedOnRemove(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreatePartition(3, 50); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(3)
	if err := s.Write(3, id, 0, make([]byte, 100*1024)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(3, id); err != nil {
		t.Fatal(err)
	}
	p, _ := s.GetPartition(3)
	if p.UsedBlocks != 0 {
		t.Fatalf("used after remove = %d", p.UsedBlocks)
	}
}

func TestAttributes(t *testing.T) {
	clock := time.Unix(1000, 0)
	dev := blockdev.NewMemDisk(4096, 2048)
	s, err := Format(dev, Config{Clock: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(1)
	a, _ := s.GetAttr(1, id)
	if a.CreateTime.Unix() != 1000 || a.Version != 1 || a.Size != 0 {
		t.Fatalf("initial attrs = %+v", a)
	}
	clock = time.Unix(2000, 0)
	if err := s.Write(1, id, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	a, _ = s.GetAttr(1, id)
	if a.ModTime.Unix() != 2000 {
		t.Fatalf("mod time = %v", a.ModTime)
	}
	if a.CreateTime.Unix() != 1000 {
		t.Fatal("create time changed by write")
	}

	var set Attributes
	set.Prealloc = 1 << 20
	set.Cluster = 99
	copy(set.Uninterp[:], []byte("mode=0644 uid=12"))
	if err := s.SetAttr(1, id, set, SetPrealloc|SetCluster|SetUninterp); err != nil {
		t.Fatal(err)
	}
	a, _ = s.GetAttr(1, id)
	if a.Prealloc != 1<<20 || a.Cluster != 99 {
		t.Fatalf("attrs = %+v", a)
	}
	if !bytes.HasPrefix(a.Uninterp[:], []byte("mode=0644")) {
		t.Fatal("uninterpreted attrs lost")
	}
	if a.Size != 1 {
		t.Fatal("SetAttr without SetSize changed size")
	}
}

func TestTruncateViaSetAttr(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	if err := s.Write(1, id, 0, bytes.Repeat([]byte{7}, 20000)); err != nil {
		t.Fatal(err)
	}
	free := s.FreeBlocks()
	if err := s.SetAttr(1, id, Attributes{Size: 100}, SetSize); err != nil {
		t.Fatal(err)
	}
	if s.FreeBlocks() <= free {
		t.Fatal("truncate freed no blocks")
	}
	a, _ := s.GetAttr(1, id)
	if a.Size != 100 {
		t.Fatalf("size = %d", a.Size)
	}
	// Grow again: the region beyond 100 must read as zeros, even within
	// the partially-kept block.
	if err := s.SetAttr(1, id, Attributes{Size: 20000}, SetSize); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(1, id, 100, 400)
	if !bytes.Equal(got, make([]byte, 400)) {
		t.Fatalf("regrown region nonzero: %v", got[:8])
	}
	got, _ = s.Read(1, id, 0, 100)
	if !bytes.Equal(got, bytes.Repeat([]byte{7}, 100)) {
		t.Fatal("kept prefix lost")
	}
}

func TestBumpVersion(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	v, err := s.BumpVersion(1, id)
	if err != nil || v != 2 {
		t.Fatalf("bump = %d, %v", v, err)
	}
	a, _ := s.GetAttr(1, id)
	if a.Version != 2 {
		t.Fatalf("version = %d", a.Version)
	}
}

func TestVersionObjectCOW(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	orig := bytes.Repeat([]byte{0xAA}, 50000)
	if err := s.Write(1, id, 0, orig); err != nil {
		t.Fatal(err)
	}
	freeBefore := s.FreeBlocks()
	snap, err := s.VersionObject(1, id)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot shares blocks: almost no new space consumed.
	if d := freeBefore - s.FreeBlocks(); d != 0 {
		t.Fatalf("snapshot consumed %d blocks", d)
	}
	// Snapshot reads the original data.
	got, err := s.Read(1, snap, 0, len(orig))
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("snapshot read mismatch: %v", err)
	}
	// Writing the original does not disturb the snapshot.
	if err := s.Write(1, id, 0, bytes.Repeat([]byte{0xBB}, 10000)); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read(1, snap, 0, 10000)
	if !bytes.Equal(got, orig[:10000]) {
		t.Fatal("snapshot disturbed by write to original")
	}
	// Writing the snapshot does not disturb the original.
	if err := s.Write(1, snap, 20000, bytes.Repeat([]byte{0xCC}, 5000)); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read(1, id, 20000, 5000)
	for _, b := range got {
		if b != 0xAA && b != 0xBB {
			t.Fatal("original disturbed by snapshot write")
		}
	}
}

func TestVersionObjectQuota(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreatePartition(4, 30); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(4)
	if err := s.Write(4, id, 0, make([]byte, 80*1024)); err != nil { // 20 blocks
		t.Fatal(err)
	}
	// Snapshot would double the charged footprint past the quota.
	if _, err := s.VersionObject(4, id); !errors.Is(err, ErrQuota) {
		t.Fatalf("snapshot past quota: %v", err)
	}
}

func TestList(t *testing.T) {
	s := newTestStore(t)
	want := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		id, err := s.Create(1)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = true
	}
	ids, err := s.List(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("list = %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected id %d", id)
		}
	}
	if _, err := s.List(9); !errors.Is(err, ErrNoPartition) {
		t.Fatal("list of unknown partition succeeded")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 4096)
	s, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(1, 500); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(1)
	data := bytes.Repeat([]byte("nasd"), 5000)
	if err := s.Write(1, id, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s2.GetPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.QuotaBlocks != 500 || p.ObjectCount != 1 {
		t.Fatalf("partition = %+v", p)
	}
	got, err := s2.Read(1, id, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data lost across reopen: %v", err)
	}
	// New objects get fresh IDs.
	id2, err := s2.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatal("object ID reused after reopen")
	}
}

func TestWriteBehindVisibleBeforeFlush(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	if err := s.Write(1, id, 0, []byte("behind")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, id, 0, 6)
	if err != nil || string(got) != "behind" {
		t.Fatalf("write-behind not visible: %q %v", got, err)
	}
}

func TestReadaheadPopulatesCache(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 4096)
	s, err := Format(dev, Config{ReadaheadBlocks: 8, CacheBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(1)
	if err := s.Write(1, id, 0, make([]byte, 256*1024)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reopen so nothing is cached, then read sequentially.
	s2, err := Open(dev, Config{ReadaheadBlocks: 8, CacheBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 64*1024; off += 4096 {
		if _, err := s2.Read(1, id, off, 4096); err != nil {
			t.Fatal(err)
		}
	}
	st := s2.CacheStats()
	if st.Prefetches == 0 {
		t.Fatal("sequential read triggered no readahead")
	}
	if st.Hits < st.Misses {
		t.Fatalf("readahead ineffective: %d hits, %d misses", st.Hits, st.Misses)
	}
}

func TestErrorsOnMissingObjects(t *testing.T) {
	s := newTestStore(t)
	if err := s.Write(1, 999, 0, []byte("x")); !errors.Is(err, ErrNoObject) {
		t.Fatalf("write: %v", err)
	}
	if _, err := s.Read(1, 999, 0, 1); !errors.Is(err, ErrNoObject) {
		t.Fatalf("read: %v", err)
	}
	if err := s.Remove(1, 999); !errors.Is(err, ErrNoObject) {
		t.Fatalf("remove: %v", err)
	}
	if _, err := s.Create(9); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("create: %v", err)
	}
	if _, err := s.Read(1, 999, 0, -1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("negative read: %v", err)
	}
}

// Property: a random sequence of writes at random offsets, mirrored in
// an in-memory model, always reads back identically (read-after-write
// across block boundaries, extensions, and overwrites).
func TestRandomWriteReadEquivalence(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	rng := rand.New(rand.NewSource(99))
	model := make([]byte, 0)

	for i := 0; i < 100; i++ {
		off := uint64(rng.Intn(200_000))
		n := rng.Intn(10_000) + 1
		data := make([]byte, n)
		rng.Read(data)
		if err := s.Write(1, id, off, data); err != nil {
			t.Fatal(err)
		}
		if int(off)+n > len(model) {
			model = append(model, make([]byte, int(off)+n-len(model))...)
		}
		copy(model[off:], data)

		// Verify a random window.
		roff := rng.Intn(len(model))
		rn := rng.Intn(20_000) + 1
		got, err := s.Read(1, id, uint64(roff), rn)
		if err != nil {
			t.Fatal(err)
		}
		want := model[roff:]
		if len(want) > rn {
			want = want[:rn]
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("iteration %d: window (%d,%d) mismatch", i, roff, rn)
		}
	}
	// Full content check after flush + reopen path.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, id, 0, len(model))
	if err != nil || !bytes.Equal(got, model) {
		t.Fatalf("final content mismatch: %v", err)
	}
}
