package object

import (
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/telemetry"
)

// Option configures a Store built by FormatStore or OpenStore. Options
// replace the old positional-Config constructors: callers name only
// what they change and pick up maintained defaults for the rest.
type Option func(*Config)

// WithBackend sets the default storage engine for partitions created
// without an explicit backend (see CreatePartitionBackend).
func WithBackend(kind BackendKind) Option {
	return func(c *Config) { c.DefaultBackend = kind }
}

// WithCacheBlocks sets the buffer cache capacity in blocks.
func WithCacheBlocks(n int) Option {
	return func(c *Config) { c.CacheBlocks = n }
}

// WithCacheShards sets how many independently locked shards the buffer
// cache uses.
func WithCacheShards(n int) Option {
	return func(c *Config) { c.CacheShards = n }
}

// WithMetrics wires the store's telemetry (lock contention, per-backend
// counters and media-I/O gauges) into reg.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(c *Config) { c.Metrics = reg }
}

// WithReadahead sets how many blocks are prefetched past a detected
// sequential read; pass a negative value to disable readahead.
func WithReadahead(blocks int) Option {
	return func(c *Config) {
		if blocks <= 0 {
			blocks = -1
		}
		c.ReadaheadBlocks = blocks
	}
}

// WithClock injects the timestamp source (experiments use simulated
// clocks).
func WithClock(clock func() time.Time) Option {
	return func(c *Config) { c.Clock = clock }
}

// WithWriteThrough disables write-behind in the data cache.
func WithWriteThrough(on bool) Option {
	return func(c *Config) { c.WriteThrough = on }
}

// WithOnodeCount overrides the format-time onode table size.
func WithOnodeCount(n int64) Option {
	return func(c *Config) { c.OnodeCount = n }
}

// WithJournalBlocks sizes the format-time metadata journal region in
// blocks (0 = the layout default of 1/32 of the volume, clamped). Pass
// a negative value to format without a journal — for benchmark
// baselines only, since it forfeits crash consistency.
func WithJournalBlocks(n int64) Option {
	return func(c *Config) { c.JournalBlocks = n }
}

// WithEvents routes the store's structured events (journal recovery,
// needle compactions) into log instead of the process-wide
// telemetry.Events ring.
func WithEvents(log *telemetry.EventLog) Option {
	return func(c *Config) { c.Events = log }
}

// WithSyncCompaction makes needle-log compaction run inline in the
// mutating call that triggered it rather than on a background
// goroutine. Deterministic tests (the crash sweep) require it; servers
// should not use it — an unlucky write would pay a whole segment
// compaction in its latency.
func WithSyncCompaction(on bool) Option {
	return func(c *Config) { c.SyncCompact = on }
}

func buildConfig(opts []Option) Config {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// FormatStore initializes dev as an empty object store.
func FormatStore(dev blockdev.Device, opts ...Option) (*Store, error) {
	return Format(dev, buildConfig(opts))
}

// OpenStore loads an existing object store from dev.
func OpenStore(dev blockdev.Device, opts ...Option) (*Store, error) {
	return Open(dev, buildConfig(opts))
}
