package object

import (
	"sync"

	"nasd/internal/telemetry"
)

// The per-object lock manager. Every data-path operation locks exactly
// the (partition, object) pair it touches: reads share an RWMutex read
// side, so concurrent reads of one object overlap, and operations on
// distinct objects never contend here at all. This is the top level of
// the store's lock hierarchy (object → partition → cache → layout; see
// DESIGN.md §4) and what turns the drive's per-connection worker pools
// into real parallelism.
//
// Lock entries are kept in a fixed array of shards so acquiring an
// entry contends only on one shard's map mutex, never globally. An
// entry also carries the object's sequential-read tracker: readahead
// state is inherently per-object, and housing it here means it is
// created, found, and discarded together with the lock that guards it.

// lockShardCount shards the lock table. Must be a power of two.
const lockShardCount = 64

type objKey struct {
	part uint16
	obj  uint64
}

// objLock is one object's lock-manager entry.
type objLock struct {
	mu sync.RWMutex

	// refs counts in-flight acquisitions; guarded by the owning shard's
	// mutex. An entry is only deleted when refs is zero.
	refs int

	// seq is the object's sequential-read tracker, passed down to the
	// partition's backend on reads (backends with readahead advance it).
	// It carries its own mutex because readers hold only the read side
	// of mu.
	seq SeqTracker
}

type lockShard struct {
	mu sync.Mutex
	m  map[objKey]*objLock
}

type lockManager struct {
	shards [lockShardCount]lockShard
	meter  *telemetry.LockMeter
}

func newLockManager(meter *telemetry.LockMeter) *lockManager {
	lm := &lockManager{meter: meter}
	for i := range lm.shards {
		lm.shards[i].m = make(map[objKey]*objLock)
	}
	return lm
}

func (lm *lockManager) shardOf(k objKey) *lockShard {
	h := k.obj*0x9E3779B97F4A7C15 + uint64(k.part)
	return &lm.shards[(h>>32)&(lockShardCount-1)]
}

// acquire pins (and if needed creates) the entry for k and takes its
// lock in the requested mode.
func (lm *lockManager) acquire(k objKey, write bool) *objLock {
	sh := lm.shardOf(k)
	sh.mu.Lock()
	l := sh.m[k]
	if l == nil {
		l = &objLock{}
		sh.m[k] = l
	}
	l.refs++
	sh.mu.Unlock()
	if write {
		lm.meter.LockRW(&l.mu)
	} else {
		lm.meter.RLockRW(&l.mu)
	}
	return l
}

// release drops the lock and unpins the entry. With purge set the entry
// is deleted once no other acquisition holds it — used when the object
// was removed or never existed, so the table tracks only live objects.
func (lm *lockManager) release(k objKey, l *objLock, write, purge bool) {
	if write {
		l.mu.Unlock()
	} else {
		l.mu.RUnlock()
	}
	sh := lm.shardOf(k)
	sh.mu.Lock()
	l.refs--
	if purge && l.refs == 0 {
		delete(sh.m, k)
	}
	sh.mu.Unlock()
}

// entries returns the number of live lock entries (tests and
// introspection).
func (lm *lockManager) entries() int {
	n := 0
	for i := range lm.shards {
		sh := &lm.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
