package object

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nasd/internal/blockdev"
)

// backend_test.go covers the StoreBackend split: per-partition engine
// selection, the control object persisting that choice, and the needle
// path's kill-and-restart recovery through the full store stack.

func payN(obj uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(obj*17 + uint64(i)*13)
	}
	return b
}

// TestPartitionBackendRoundTrip formats a store with one partition per
// engine, reopens it from the device, and checks that the control
// object carried the backend choice and that both partitions' objects
// come back intact.
func TestPartitionBackendRoundTrip(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 8192)
	s, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartitionBackend(1, 0, BackendNeedle); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(2, 0); err != nil { // default engine
		t.Fatal(err)
	}
	objs := map[uint16][]uint64{}
	for _, part := range []uint16{1, 2} {
		for i := 0; i < 10; i++ {
			id, err := s.Create(part)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Write(part, id, 0, payN(id, 600)); err != nil {
				t.Fatal(err)
			}
			objs[part] = append(objs[part], id)
		}
	}
	if err := s.Remove(1, objs[1][3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for part, want := range map[uint16]BackendKind{1: BackendNeedle, 2: BackendClassic} {
		p, err := s2.GetPartition(part)
		if err != nil {
			t.Fatal(err)
		}
		if p.Backend != want {
			t.Fatalf("partition %d: backend %v after reopen, want %v", part, p.Backend, want)
		}
	}
	p1, _ := s2.GetPartition(1)
	if p1.ObjectCount != 9 {
		t.Fatalf("needle partition object count %d after reopen, want 9", p1.ObjectCount)
	}
	if p1.UsedBlocks == 0 {
		t.Fatal("needle partition reopened with zero used blocks")
	}
	for part, ids := range objs {
		for i, id := range ids {
			if part == 1 && i == 3 {
				if _, err := s2.Read(part, id, 0, 600); !errors.Is(err, ErrNoObject) {
					t.Fatalf("removed object %d/%d resurrected: %v", part, id, err)
				}
				continue
			}
			got, err := s2.Read(part, id, 0, 600)
			if err != nil {
				t.Fatalf("read %d/%d: %v", part, id, err)
			}
			if !bytes.Equal(got, payN(id, 600)) {
				t.Fatalf("object %d/%d: payload mismatch after reopen", part, id)
			}
		}
	}
	// Capability versioning is a classic-only operation; the needle
	// partition must refuse it with the typed mismatch error.
	if _, err := s2.VersionObject(1, objs[1][0]); !errors.Is(err, ErrBackendMismatch) {
		t.Fatalf("VersionObject on needle partition: %v, want ErrBackendMismatch", err)
	}
	if _, err := s2.VersionObject(2, objs[2][0]); err != nil {
		t.Fatalf("VersionObject on classic partition: %v", err)
	}
}

// TestDefaultBackendConfig checks that CreatePartition honours
// Config.DefaultBackend (the nasdd -backend flag's path).
func TestDefaultBackendConfig(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 8192)
	s, err := Format(dev, Config{DefaultBackend: BackendNeedle})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.GetPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != BackendNeedle {
		t.Fatalf("default-backend partition got %v, want needle", p.Backend)
	}
}

// TestNeedleAttrsThroughStore exercises the attribute surface the RPC
// layer depends on, through a needle partition.
func TestNeedleAttrsThroughStore(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 8192)
	s, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartitionBackend(1, 0, BackendNeedle); err != nil {
		t.Fatal(err)
	}
	id, err := s.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, id, 0, payN(id, 1000)); err != nil {
		t.Fatal(err)
	}
	var a Attributes
	a.Uninterp[0], a.Uninterp[255] = 0xAB, 0xCD
	a.Size = 400
	if err := s.SetAttr(1, id, a, SetUninterp|SetSize); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetAttr(1, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 400 || got.Uninterp != a.Uninterp {
		t.Fatalf("attrs not applied: %+v", got)
	}
	if v, err := s.BumpVersion(1, id); err != nil || v != 2 {
		t.Fatalf("bump version: v=%d err=%v", v, err)
	}
	data, err := s.Read(1, id, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payN(id, 1000)[:400]) {
		t.Fatal("payload mismatch after truncate")
	}
}

// TestNeedleKillRestart is the kill-and-restart index-rebuild test: the
// store is reopened from the raw device without a clean shutdown, first
// with a stale index snapshot (recovery must scan the log forward from
// it) and then with no snapshot at all (full log scan).
func TestNeedleKillRestart(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 8192)
	s, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartitionBackend(1, 0, BackendNeedle); err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 20; i++ {
		id, err := s.Create(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(1, id, 0, payN(id, 900)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Flush(); err != nil { // snapshot now covers 20 objects
		t.Fatal(err)
	}
	// Capture the snapshot, mutate past it, make the log durable, then
	// put the stale snapshot back — the on-device state a crash after
	// the appends (but before the next snapshot) would leave.
	p := s.parts[1]
	snap, err := s.classic.loadRaw(p.metaIdx)
	if err != nil {
		t.Fatal(err)
	}
	post, err := s.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, post, 0, payN(post, 1200)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, ids[0], 0, payN(777, 900)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(1, ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	stale := func(data []byte) {
		t.Helper()
		if err := s.classic.saveRaw(p.metaIdx, data); err != nil {
			t.Fatal(err)
		}
		if err := s.classic.cache.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.classic.lay.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	check := func(t *testing.T, s2 *Store) {
		t.Helper()
		p, err := s2.GetPartition(1)
		if err != nil {
			t.Fatal(err)
		}
		if p.ObjectCount != 20 { // 20 + 1 post-snapshot - 1 removed
			t.Fatalf("recovered %d objects, want 20", p.ObjectCount)
		}
		if _, err := s2.GetAttr(1, ids[1]); !errors.Is(err, ErrNoObject) {
			t.Fatalf("removed object resurrected: %v", err)
		}
		got, err := s2.Read(1, post, 0, 1200)
		if err != nil {
			t.Fatalf("post-snapshot object: %v", err)
		}
		if !bytes.Equal(got, payN(post, 1200)) {
			t.Fatal("post-snapshot object payload mismatch")
		}
		got, err = s2.Read(1, ids[0], 0, 900)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payN(777, 900)) {
			t.Fatal("post-snapshot overwrite lost")
		}
		for _, id := range ids[2:] {
			got, err := s2.Read(1, id, 0, 900)
			if err != nil {
				t.Fatalf("object %d: %v", id, err)
			}
			if !bytes.Equal(got, payN(id, 900)) {
				t.Fatalf("object %d: payload mismatch", id)
			}
		}
		// New writes must pick up after the recovered log, not collide.
		id2, err := s2.Create(1)
		if err != nil {
			t.Fatal(err)
		}
		if id2 <= post {
			t.Fatalf("post-recovery id %d not past recovered max %d", id2, post)
		}
	}

	t.Run("stale-snapshot", func(t *testing.T) {
		stale(snap)
		s2, err := Open(dev, Config{})
		if err != nil {
			t.Fatal(err)
		}
		check(t, s2)
	})
	t.Run("no-snapshot", func(t *testing.T) {
		stale(nil)
		s2, err := Open(dev, Config{})
		if err != nil {
			t.Fatal(err)
		}
		check(t, s2)
	})
}

// TestNeedleVersionBumpDurable: a version bump revokes capabilities, so
// it must survive a crash with NO flush at all — the needle backend
// syncs the log tail on SetVersion to match classic's write-through
// onodes.
func TestNeedleVersionBumpDurable(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 8192)
	s, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartitionBackend(1, 0, BackendNeedle); err != nil {
		t.Fatal(err)
	}
	id, err := s.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, id, 0, payN(id, 100)); err != nil {
		t.Fatal(err)
	}
	if v, err := s.BumpVersion(1, id); err != nil || v != 2 {
		t.Fatalf("bump: v=%d err=%v", v, err)
	}
	// Simulated kill: reopen from the device without Flush.
	s2, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s2.GetAttr(1, id)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != 2 {
		t.Fatalf("version %d after crash, want 2: revocation lost", a.Version)
	}
}

// TestNeedleQuota verifies quota is enforced at segment granularity:
// a needle partition admits segments until the charge would exceed the
// partition quota, then refuses with ErrQuota.
func TestNeedleQuota(t *testing.T) {
	dev := blockdev.NewMemDisk(4096, 8192)
	s, err := Format(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// One default-sized segment (1024 blocks) fits; the second roll
	// would charge past the quota.
	if err := s.CreatePartitionBackend(1, 1030, BackendNeedle); err != nil {
		t.Fatal(err)
	}
	wrote := 0
	var quotaErr error
	for i := 0; i < 8; i++ {
		id, err := s.Create(1)
		if err != nil {
			quotaErr = err
			break
		}
		if err := s.Write(1, id, 0, payN(id, 1<<20)); err != nil {
			quotaErr = err
			break
		}
		wrote++
	}
	if !errors.Is(quotaErr, ErrQuota) {
		t.Fatalf("after %d MB written: err=%v, want ErrQuota", wrote, quotaErr)
	}
	if wrote < 3 {
		t.Fatalf("quota refused after only %d MB; first segment should hold ~4 MB", wrote)
	}
}

// TestBackendKindParse pins the flag/wire spellings.
func TestBackendKindParse(t *testing.T) {
	cases := map[string]BackendKind{
		"": BackendClassic, "classic": BackendClassic, "layout": BackendClassic,
		"needle": BackendNeedle, "haystack": BackendNeedle, "log": BackendNeedle,
	}
	for in, want := range cases {
		got, err := ParseBackendKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseBackendKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackendKind("bogus"); err == nil {
		t.Fatal("ParseBackendKind accepted garbage")
	}
	for _, k := range []BackendKind{BackendClassic, BackendNeedle} {
		if rt, err := ParseBackendKind(k.String()); err != nil || rt != k {
			t.Fatalf("round trip %v: %v, %v", k, rt, err)
		}
	}
	if s := fmt.Sprint(BackendKind(99)); s == "" {
		t.Fatal("unknown kind must still print")
	}
}
