package object

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/telemetry"
)

// rendezvousDev proves two reads are truly concurrent: a read of a
// marker data block (filled with 0xA5) parks until a second marker read
// arrives. If the store serialized reads of one object, the second
// reader could never arrive and the barrier would time out unmet.
type rendezvousDev struct {
	blockdev.Device
	mu      sync.Mutex
	waiting chan struct{}
	met     atomic.Bool
}

const markerByte = 0xA5

func (d *rendezvousDev) ReadBlock(b int64, buf []byte) error {
	if err := d.Device.ReadBlock(b, buf); err != nil {
		return err
	}
	if len(buf) < 3 || buf[0] != markerByte || buf[1] != markerByte || buf[len(buf)-1] != markerByte {
		return nil
	}
	d.mu.Lock()
	if d.waiting == nil {
		ch := make(chan struct{})
		d.waiting = ch
		d.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
		}
		return nil
	}
	ch := d.waiting
	d.mu.Unlock()
	close(ch)
	d.met.Store(true)
	return nil
}

// TestConcurrentReadsOfOneObjectOverlap drives two readers at the same
// object through a rendezvous device. Both must be inside the media
// read at the same time, which requires (a) the per-object lock to be
// shared between readers and (b) the cache to fill misses without
// holding its shard lock.
func TestConcurrentReadsOfOneObjectOverlap(t *testing.T) {
	mem := blockdev.NewMemDisk(512, 1024)
	dev := &rendezvousDev{Device: mem}
	s, err := Format(dev, Config{
		CacheBlocks:     1,  // evictable: the marker block must miss
		ReadaheadBlocks: -1, // no prefetch: exactly one read per caller
		WriteThrough:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}
	id, err := s.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, id, 0, fillBytes(markerByte, 512)); err != nil {
		t.Fatal(err)
	}
	// Evict the marker block from the one-block cache.
	spoiler, err := s.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, spoiler, 0, fillBytes(0x11, 512)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(1, spoiler, 0, 512); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.Read(1, id, 0, 512)
			if err != nil {
				errs <- err
				return
			}
			for _, b := range got {
				if b != markerByte {
					errs <- fmt.Errorf("read returned corrupt data %#x", b)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !dev.met.Load() {
		t.Fatal("concurrent reads of one object did not overlap at the device")
	}
}

func fillBytes(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// TestConcurrentMixedOps hammers one store with create/write/read/
// resize/remove across many objects plus shared-object readers, then
// checks that no update was lost: every private read sees exactly what
// its worker wrote, shared reads always see a complete write (the
// per-object lock makes writes atomic), and partition accounting drains
// to zero after everything is removed. Run under -race via
// scripts/check.sh.
func TestConcurrentMixedOps(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 16384)
	s, err := Format(dev, Config{CacheBlocks: 64, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}

	// A shared object that every worker reads while worker 0 rewrites
	// it with uniform patterns.
	shared, err := s.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	const sharedLen = 3 * 512
	if err := s.Write(1, shared, 0, fillBytes(1, sharedLen)); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag := byte(w + 2)
			for i := 0; i < iters; i++ {
				id, err := s.Create(1)
				if err != nil {
					errs <- fmt.Errorf("worker %d: create: %w", w, err)
					return
				}
				data := fillBytes(tag, 1300) // crosses block boundaries
				if err := s.Write(1, id, 0, data); err != nil {
					errs <- fmt.Errorf("worker %d: write: %w", w, err)
					return
				}
				got, err := s.Read(1, id, 0, len(data))
				if err != nil {
					errs <- fmt.Errorf("worker %d: read: %w", w, err)
					return
				}
				for j, b := range got {
					if b != tag {
						errs <- fmt.Errorf("worker %d: lost update at byte %d: %#x != %#x", w, j, b, tag)
						return
					}
				}
				// Shrink, then regrow past the old end: the regrown range
				// must read back as zeros.
				if err := s.SetAttr(1, id, Attributes{Size: 600}, SetSize); err != nil {
					errs <- fmt.Errorf("worker %d: truncate: %w", w, err)
					return
				}
				if err := s.SetAttr(1, id, Attributes{Size: 2000}, SetSize); err != nil {
					errs <- fmt.Errorf("worker %d: extend: %w", w, err)
					return
				}
				got, err = s.Read(1, id, 600, 1400)
				if err != nil {
					errs <- fmt.Errorf("worker %d: read tail: %w", w, err)
					return
				}
				for j, b := range got {
					if b != 0 {
						errs <- fmt.Errorf("worker %d: truncated range byte %d = %#x, want 0", w, j, b)
						return
					}
				}
				if err := s.Remove(1, id); err != nil {
					errs <- fmt.Errorf("worker %d: remove: %w", w, err)
					return
				}

				// Shared-object traffic: worker 0 rewrites, others read and
				// require a uniform (never torn) buffer.
				if w == 0 {
					if err := s.Write(1, shared, 0, fillBytes(byte(i%7+1), sharedLen)); err != nil {
						errs <- fmt.Errorf("worker %d: shared write: %w", w, err)
						return
					}
				} else {
					got, err := s.Read(1, shared, 0, sharedLen)
					if err != nil {
						errs <- fmt.Errorf("worker %d: shared read: %w", w, err)
						return
					}
					first := got[0]
					for j, b := range got {
						if b != first {
							errs <- fmt.Errorf("worker %d: torn shared read at byte %d: %#x vs %#x", w, j, b, first)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := s.Remove(1, shared); err != nil {
		t.Fatal(err)
	}
	p, err := s.GetPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.ObjectCount != 0 {
		t.Fatalf("object count after drain = %d, want 0", p.ObjectCount)
	}
	if p.UsedBlocks != 0 {
		t.Fatalf("used blocks after drain = %d, want 0 (accounting lost an update)", p.UsedBlocks)
	}
	// Removed objects' lock entries are purged; nothing should linger.
	if n := s.LockEntries(); n != 0 {
		t.Fatalf("lock table holds %d entries after drain, want 0", n)
	}
}

// TestQuotaUnderConcurrentWriters checks that the reserve-then-settle
// quota admission cannot be jointly overshot: many writers race to fill
// a small partition, and usage must never exceed the quota.
func TestQuotaUnderConcurrentWriters(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 16384)
	s, err := Format(dev, Config{CacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	const quota = 40
	if err := s.CreatePartition(1, quota); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	ids := make([]uint64, workers)
	for w := range ids {
		id, err := s.Create(1)
		if err != nil {
			t.Fatal(err)
		}
		ids[w] = id
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// Each write may pass or hit the quota; both are fine. What
				// is not fine is usage exceeding the quota (checked below).
				_ = s.Write(1, ids[w], uint64(i)*512, fillBytes(byte(w+1), 512))
			}
		}(w)
	}
	wg.Wait()
	p, err := s.GetPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.UsedBlocks > quota {
		t.Fatalf("usage %d exceeds quota %d under concurrent writers", p.UsedBlocks, quota)
	}
	// Settled accounting must match reality: re-add the charges by hand.
	var want int64
	for _, id := range ids {
		_, o, err := s.classic.lookup(1, id)
		if err != nil {
			t.Fatal(err)
		}
		want += s.classic.chargeOf(&o)
	}
	if p.UsedBlocks != want {
		t.Fatalf("used blocks = %d, recomputed charge = %d", p.UsedBlocks, want)
	}
}
