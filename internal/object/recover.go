package object

import (
	"fmt"
	"time"

	"nasd/internal/journal"
	"nasd/internal/needle"
	"nasd/internal/telemetry"
)

// Mount-time recovery (journaled volumes only).
//
// layout.OpenWith has already replayed the layout-level intent records
// (onode images, refcount updates) and handed the object-layer records
// back through RecoveredRecords. This file finishes the job:
//
//  1. recoverObjectRecords pins every block named by durable metadata —
//     onode-reachable blocks and the blocks listed in journaled needle
//     segment tables — by raising on-disk reference counts that a crash
//     left stale. Only then does it replay the newest partition-table
//     record and the newest segment-table record per partition, so the
//     allocations those replays perform cannot hand out a block that
//     durable metadata still claims.
//  2. finishRecovery (after the needle logs are open) recomputes every
//     data block's exact expected reference count from reachability,
//     repairs both leaks and losses, flushes the recovered state, and
//     resets the journal.
//
// Two invariants hold on return: every block reachable from an onode or
// needle segment has a reference count equal to the number of claims on
// it, and every unreachable data block is free.

// RecoveryInfo summarizes what mount-time recovery did. The zero value
// means the volume opened clean (or journaling is disabled).
type RecoveryInfo struct {
	// Replayed is the number of committed journal records replayed
	// (layout-level and object-level combined).
	Replayed int
	// TornTails is the number of torn (partially persisted) record
	// batches the journal scan discarded.
	TornTails int
	// RefRepairs is the number of block reference counts corrected by
	// the reachability verification pass.
	RefRepairs int
	// Duration is the wall-clock time recovery took, including
	// verification.
	Duration time.Duration
}

// RecoveryInfo returns the summary of the recovery performed when this
// store was opened.
func (s *Store) RecoveryInfo() RecoveryInfo { return s.recovery }

// recoverObjectRecords loads the partition table — from the newest
// journaled copy when one is committed, from the control object
// otherwise — and replays the newest journaled segment table of each
// needle partition. Called from Open before the needle logs recover.
func (s *Store) recoverObjectRecords() error {
	lay := s.classic.lay
	recs, stats := lay.RecoveredRecords()
	if !lay.JournalEnabled() {
		return s.loadPartitions()
	}
	s.recovery.Replayed = stats.Replayed
	s.recovery.TornTails = stats.TornTails

	// Newest record wins per scope: the whole table, and one segment
	// table per partition.
	var partsRec *journal.Record
	segRecs := make(map[uint16]journal.Record)
	for i := range recs {
		r := recs[i]
		switch r.Kind {
		case journal.KindPartTable:
			partsRec = &recs[i]
		case journal.KindNeedleSeg:
			part, _, err := journal.DecodeNeedleSeg(r.Payload)
			if err != nil {
				return fmt.Errorf("object: bad needle-segment journal record (lsn %d): %w", r.LSN, err)
			}
			segRecs[part] = r
		}
	}

	if stats.Replayed > 0 || stats.TornTails > 0 {
		if err := s.pinDurableBlocks(segRecs); err != nil {
			return err
		}
	}

	if partsRec != nil {
		parts, err := decodePartitions(partsRec.Payload)
		if err != nil {
			return fmt.Errorf("object: bad partition-table journal record (lsn %d): %w", partsRec.LSN, err)
		}
		s.lockParts()
		s.parts = parts
		// Rewrite the control object from the journaled image; this
		// journals a fresh superseding record, so the recovered one can
		// be retired.
		err = s.savePartitionsLocked()
		s.pmu.Unlock()
		if err != nil {
			return err
		}
		lay.JournalApplied(partsRec.LSN)
	} else if err := s.loadPartitions(); err != nil {
		return err
	}

	for part, rec := range segRecs {
		_, data, err := journal.DecodeNeedleSeg(rec.Payload)
		if err != nil {
			return fmt.Errorf("object: bad needle-segment journal record (lsn %d): %w", rec.LSN, err)
		}
		s.lockParts()
		p := s.parts[part]
		s.pmu.Unlock()
		if p == nil || p.Backend != BackendNeedle {
			// The partition was removed after the record was written;
			// nothing to restore.
			lay.JournalApplied(rec.LSN)
			continue
		}
		// Rewrite the segment-table object from the journaled image.
		// needleMeta.SaveSegments journals a superseding record (or, on
		// a full journal, writes through durably), after which the
		// recovered record can be retired.
		if err := (needleMeta{s}).SaveSegments(part, data); err != nil {
			return fmt.Errorf("object: replaying segment table of partition %d: %w", part, err)
		}
		lay.JournalApplied(rec.LSN)
	}
	return nil
}

// pinDurableBlocks raises any on-disk reference count below what
// durable metadata requires: blocks reachable from the (replayed) onode
// table and blocks listed in journaled needle segment tables. It never
// lowers a count — leak repair needs the needle logs open and happens
// in verifyRefs — so replay-time allocations see every claimed block as
// in use.
func (s *Store) pinDurableBlocks(segRecs map[uint16]journal.Record) error {
	lay := s.classic.lay
	expected, _, _, err := s.onodeRefs()
	if err != nil {
		return err
	}
	for _, rec := range segRecs {
		_, data, err := journal.DecodeNeedleSeg(rec.Payload)
		if err != nil {
			continue
		}
		blocks, err := needle.SegTableBlocks(data)
		if err != nil {
			// The record committed, so its CRC-checked payload should
			// decode; a failure here means the table format changed.
			return fmt.Errorf("object: undecodable journaled segment table (lsn %d): %w", rec.LSN, err)
		}
		sb := lay.Superblock()
		for _, blk := range blocks {
			if blk >= sb.DataStart && blk < sb.TotalBlocks && expected[blk] == 0 {
				expected[blk] = 1
			}
		}
	}
	for blk, want := range expected {
		if lay.RefCount(blk) < want {
			lay.RepairRef(blk, want)
			s.recovery.RefRepairs++
		}
	}
	return nil
}

// partCensus is what an onode walk implies a partition's accounting
// should be.
type partCensus struct {
	objects int64
	charge  int64
}

// onodeRefs walks every allocated onode and returns the per-block
// reference count the onode table implies (data and indirect blocks;
// copy-on-write sharing yields counts above one), the highest object ID
// seen, and a per-partition census of object counts and quota charges.
func (s *Store) onodeRefs() (map[int64]uint16, uint64, map[uint16]partCensus, error) {
	lay := s.classic.lay
	bs := uint64(lay.BlockSize())
	expected := make(map[int64]uint16)
	census := make(map[uint16]partCensus)
	var maxID uint64
	for _, id := range lay.ObjectIDs(0) {
		if id > maxID {
			maxID = id
		}
		idx, ok := lay.FindOnode(id)
		if !ok {
			continue
		}
		o, err := lay.ReadOnode(idx)
		if err != nil {
			return nil, 0, nil, err
		}
		var footprint int64
		if err := lay.ForEachBlock(&o, func(phys int64, _ bool) error {
			expected[phys]++
			footprint++
			return nil
		}); err != nil {
			return nil, 0, nil, err
		}
		if o.Partition != 0 {
			charge := footprint
			if res := int64((o.Prealloc + bs - 1) / bs); res > charge {
				charge = res
			}
			c := census[o.Partition]
			c.objects++
			c.charge += charge
			census[o.Partition] = c
		}
	}
	return expected, maxID, census, nil
}

// verifyRefs recomputes the exact expected reference count of every
// data block — onode reachability plus open needle logs — and repairs
// the on-disk counts in both directions: blocks metadata still claims
// get their counts raised, unreachable blocks are freed. Classic
// partition accounting (object counts, quota charges) is rebuilt from
// the same walk, since a crash can strand it between control-object
// saves. Returns the number of reference-count repairs.
func (s *Store) verifyRefs() (int, error) {
	lay := s.classic.lay
	expected, maxID, census, err := s.onodeRefs()
	if err != nil {
		return 0, err
	}
	s.lockParts()
	var needleParts []uint16
	for id, p := range s.parts {
		if p.Backend == BackendNeedle {
			needleParts = append(needleParts, id)
			continue
		}
		c := census[id]
		p.ObjectCount = c.objects
		p.UsedBlocks = c.charge
	}
	s.pmu.Unlock()
	for _, part := range needleParts {
		blocks, err := s.needle.eng.LogBlocks(part)
		if err != nil {
			return 0, err
		}
		for _, blk := range blocks {
			expected[blk]++
		}
	}
	// The volume-wide ID counter is persisted only at Sync; never
	// re-issue an ID a surviving onode carries.
	if maxID != 0 {
		lay.ReserveObjectIDs(maxID + 1)
	}
	sb := lay.Superblock()
	repairs := 0
	for blk := sb.DataStart; blk < sb.TotalBlocks; blk++ {
		want := expected[blk]
		if lay.RefCount(blk) != want {
			lay.RepairRef(blk, want)
			repairs++
		}
	}
	return repairs, nil
}

// finishRecovery runs after the needle logs are open: it verifies and
// repairs the block reference counts, makes the recovered state fully
// durable, and resets the journal. A volume whose journal scan came
// back empty is known consistent and skips all of it.
func (s *Store) finishRecovery(start time.Time) error {
	lay := s.classic.lay
	if !lay.JournalEnabled() {
		return nil
	}
	if s.recovery.Replayed == 0 && s.recovery.TornTails == 0 {
		return nil
	}
	repairs, err := s.verifyRefs()
	if err != nil {
		return err
	}
	s.recovery.RefRepairs += repairs
	// Flush drains every replayed effect (and marks the superseding
	// records applied); with the state durable the journal restarts
	// empty.
	if err := s.Flush(); err != nil {
		return err
	}
	if err := lay.JournalReset(); err != nil {
		return err
	}
	s.recovery.Duration = time.Since(start)
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge("recovery_ms").Set(s.recovery.Duration.Milliseconds())
	}
	// Ref repairs mean durable metadata and the allocator disagreed —
	// expected after a crash, but worth a warning severity so operators
	// scanning the event log see which mounts did real repair work.
	sev := telemetry.SevInfo
	if s.recovery.RefRepairs > 0 {
		sev = telemetry.SevWarn
	}
	s.cfg.Events.Emitf(sev, "journal", "recovery",
		"replayed=%d torn_tails=%d ref_repairs=%d duration=%s",
		s.recovery.Replayed, s.recovery.TornTails, s.recovery.RefRepairs, s.recovery.Duration)
	return nil
}
