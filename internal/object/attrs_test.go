package object

import (
	"errors"
	"testing"
)

// Tests for the two attribute-driven placement/accounting features of
// Section 4.1: capacity reservation (Prealloc) and clustering.

func TestPreallocChargesQuotaUpFront(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreatePartition(5, 60); err != nil { // 60 blocks = 240 KB
		t.Fatal(err)
	}
	id, _ := s.Create(5)
	// Reserve 40 blocks (160 KB).
	if err := s.SetAttr(5, id, Attributes{Prealloc: 160 << 10}, SetPrealloc); err != nil {
		t.Fatal(err)
	}
	p, _ := s.GetPartition(5)
	if p.UsedBlocks != 40 {
		t.Fatalf("used after reservation = %d, want 40", p.UsedBlocks)
	}
	// A second object cannot reserve past the quota.
	id2, _ := s.Create(5)
	if err := s.SetAttr(5, id2, Attributes{Prealloc: 100 << 10}, SetPrealloc); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-reservation: %v", err)
	}
	// Writes within the reservation never fail on quota and do not
	// grow the charge.
	if err := s.Write(5, id, 0, make([]byte, 150<<10)); err != nil {
		t.Fatal(err)
	}
	p, _ = s.GetPartition(5)
	if p.UsedBlocks != 40 {
		t.Fatalf("used after covered write = %d, want 40", p.UsedBlocks)
	}
	// Growing beyond the reservation charges the difference.
	if err := s.Write(5, id, 150<<10, make([]byte, 40<<10)); err != nil {
		t.Fatal(err)
	}
	p, _ = s.GetPartition(5)
	if p.UsedBlocks <= 40 {
		t.Fatalf("used after overflow write = %d, want > 40", p.UsedBlocks)
	}
}

func TestPreallocReleasedOnRemove(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreatePartition(5, 100); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(5)
	if err := s.SetAttr(5, id, Attributes{Prealloc: 200 << 10}, SetPrealloc); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(5, id); err != nil {
		t.Fatal(err)
	}
	p, _ := s.GetPartition(5)
	if p.UsedBlocks != 0 {
		t.Fatalf("used after remove = %d", p.UsedBlocks)
	}
}

func TestPreallocShrinkRefunds(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreatePartition(5, 100); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Create(5)
	if err := s.SetAttr(5, id, Attributes{Prealloc: 200 << 10}, SetPrealloc); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttr(5, id, Attributes{Prealloc: 40 << 10}, SetPrealloc); err != nil {
		t.Fatal(err)
	}
	p, _ := s.GetPartition(5)
	if p.UsedBlocks != 10 {
		t.Fatalf("used after shrink = %d, want 10", p.UsedBlocks)
	}
	a, _ := s.GetAttr(5, id)
	if a.Prealloc != 40<<10 {
		t.Fatalf("prealloc attr = %d", a.Prealloc)
	}
}

func TestClusteringPlacesNeighborsTogether(t *testing.T) {
	s := newTestStore(t)
	base, _ := s.Create(1)
	if err := s.Write(1, base, 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	// Occupy the region right after base, park the allocator cursor
	// far away, then free the adjacent region: a hole next to base.
	tmp, _ := s.Create(1)
	if err := s.Write(1, tmp, 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	noise, _ := s.Create(1)
	if err := s.Write(1, noise, 0, make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(1, tmp); err != nil {
		t.Fatal(err)
	}

	// An unclustered object allocates at the cursor (after noise); a
	// clustered one scans from base's extent and lands in the hole.
	unclustered, _ := s.Create(1)
	if err := s.Write(1, unclustered, 0, make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}
	clustered, _ := s.Create(1)
	if err := s.SetAttr(1, clustered, Attributes{Cluster: base}, SetCluster); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, clustered, 0, make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}

	clusteredGap := blockGap(t, s, base, clustered)
	unclusteredGap := blockGap(t, s, base, unclustered)
	if clusteredGap > 8 {
		t.Fatalf("clustered object placed %d blocks away from target", clusteredGap)
	}
	if unclusteredGap <= clusteredGap {
		t.Fatalf("clustering made no difference: %d vs %d blocks away",
			clusteredGap, unclusteredGap)
	}
}

// blockGap returns the distance between the end of object a's extent
// and the start of object b's extent.
func blockGap(t *testing.T, s *Store, a, b uint64) int64 {
	t.Helper()
	amax := maxBlock(t, s, a)
	bmin := minBlock(t, s, b)
	if bmin < amax {
		return amax - bmin
	}
	return bmin - amax
}

func maxBlock(t *testing.T, s *Store, id uint64) int64 {
	t.Helper()
	idx, ok := s.classic.lay.FindOnode(id)
	if !ok {
		t.Fatal("object missing")
	}
	o, err := s.classic.lay.ReadOnode(idx)
	if err != nil {
		t.Fatal(err)
	}
	var max int64
	_ = s.classic.lay.ForEachBlock(&o, func(phys int64, isPtr bool) error {
		if phys > max {
			max = phys
		}
		return nil
	})
	return max
}

func minBlock(t *testing.T, s *Store, id uint64) int64 {
	t.Helper()
	idx, ok := s.classic.lay.FindOnode(id)
	if !ok {
		t.Fatal("object missing")
	}
	o, err := s.classic.lay.ReadOnode(idx)
	if err != nil {
		t.Fatal(err)
	}
	min := int64(1 << 62)
	_ = s.classic.lay.ForEachBlock(&o, func(phys int64, isPtr bool) error {
		if phys < min {
			min = phys
		}
		return nil
	})
	return min
}

func TestClusterToMissingObjectIsHarmless(t *testing.T) {
	s := newTestStore(t)
	id, _ := s.Create(1)
	if err := s.SetAttr(1, id, Attributes{Cluster: 99999}, SetCluster); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, id, 0, []byte("still works")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, id, 0, 11)
	if err != nil || string(got) != "still works" {
		t.Fatalf("read = %q, %v", got, err)
	}
}
