package object

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// BackendKind names a per-partition storage engine. The kind is chosen
// at CreatePartition time, persisted in the control object's partition
// table, and every object operation on the partition dispatches to the
// engine it names. The drive, capability, and RPC layers above never
// see the concrete engine.
type BackendKind uint8

// The registered backends.
const (
	// BackendClassic is the paper's layout engine: superblock +
	// refcounted allocator + onode table + direct/indirect block maps
	// (internal/layout), fronted by the sharded buffer cache. It is the
	// default, supports every operation including copy-on-write
	// versions, and is always present (the control object lives in it).
	BackendClassic BackendKind = iota
	// BackendNeedle is the Haystack-style small-object engine
	// (internal/needle): an append-only needle log with a fully
	// in-memory index, one media I/O per small-object read, background
	// compaction, and an on-disk index snapshot for fast restart.
	BackendNeedle
)

// String names the backend kind.
func (k BackendKind) String() string {
	switch k {
	case BackendClassic:
		return "classic"
	case BackendNeedle:
		return "needle"
	}
	return fmt.Sprintf("backend(%d)", uint8(k))
}

// ParseBackendKind parses a backend name ("classic" or "needle").
func ParseBackendKind(s string) (BackendKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "classic", "layout":
		return BackendClassic, nil
	case "needle", "haystack", "log":
		return BackendNeedle, nil
	}
	return BackendClassic, fmt.Errorf("object: unknown backend %q (want classic or needle)", s)
}

// ErrBackendMismatch is returned for operations a partition's backend
// does not implement (e.g. copy-on-write versions on a needle
// partition). The drive maps it to a bad-request status so clients see
// a typed, non-retryable rejection.
var ErrBackendMismatch = errors.New("object: operation not supported by this partition's backend")

// StoreBackend is the per-partition storage engine interface carved out
// of the object store. The Store above it owns what is common to every
// engine — the per-object lock manager, the partition table with quota
// and object-count accounting, and control-object persistence — and
// calls a backend with the relevant object lock already held (exclusive
// for mutations, shared for reads). Backends own everything below:
// on-media placement, per-object metadata, and their own media I/O
// path.
//
// Quota is split between the layers: the Store admits and settles block
// charges through its quotaAccount (handed to each backend at
// construction), while the backend decides when blocks are actually
// consumed or released and reports object charges via Charge.
type StoreBackend interface {
	// Kind identifies the engine.
	Kind() BackendKind
	// Create materializes object id (allocated by the Store from the
	// volume-wide ID counter) in partition part.
	Create(part uint16, id uint64) error
	// Remove deletes an object and returns the quota charge it freed.
	Remove(part uint16, obj uint64) (freed int64, err error)
	// Read returns up to n bytes at off, clipped to the object size.
	// seq is the object's sequential-read tracker (owned by the lock
	// entry above); engines with readahead advance it, others ignore it.
	Read(part uint16, obj uint64, off uint64, n int, seq *SeqTracker) ([]byte, error)
	// Write stores data at off, extending the object as needed and
	// charging the partition quota through the store's quota account.
	Write(part uint16, obj uint64, off uint64, data []byte) error
	// GetAttr returns the object's attributes.
	GetAttr(part uint16, obj uint64) (Attributes, error)
	// SetAttr updates the attributes selected by mask (including
	// truncation via SetSize).
	SetAttr(part uint16, obj uint64, a Attributes, mask SetAttrMask) error
	// List returns the IDs of the partition's objects.
	List(part uint16) ([]uint64, error)
	// Charge reports the object's current quota charge in blocks (its
	// footprint or capacity reservation, whichever is larger).
	Charge(part uint16, obj uint64) (int64, error)
	// VersionObject constructs a copy-on-write version and returns the
	// new object's ID, or ErrBackendMismatch if the engine does not
	// support versions. Quota admission for the clone happens above.
	VersionObject(part uint16, obj uint64) (uint64, error)
	// Flush forces engine state (data and metadata) toward the device.
	Flush() error
}

// quotaAccount is the Store's quota ledger as seen by backends: charges
// admit against the partition quota (failing with ErrQuota), settles
// adjust usage unconditionally. Partition 0 and removed partitions are
// uncharged no-ops, matching the pre-interface behavior.
type quotaAccount interface {
	// chargeBlocks admits delta blocks against part's quota (delta <= 0
	// always succeeds and just adjusts usage).
	chargeBlocks(part uint16, delta int64) error
	// settleBlocks adjusts part's usage with no admission check.
	settleBlocks(part uint16, delta int64)
	// quotaed reports whether part currently enforces a quota.
	quotaed(part uint16) bool
}

// SeqTracker is one object's sequential-read detector. The Store houses
// it in the object's lock-manager entry (so it is created, found, and
// discarded with the lock that guards it) and passes it down to the
// backend on reads. Readers hold only the read side of the object lock,
// so the tracker carries its own mutex.
type SeqTracker struct {
	mu      sync.Mutex
	nextOff uint64 // offset one past the previous read
	streak  int    // consecutive sequential reads observed
}

// Advance records a read of [off, off+n) and reports whether readahead
// should fire (first touch at offset 0, or a detected sequential run).
// A nil tracker never fires.
func (t *SeqTracker) Advance(off, n uint64) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if off == t.nextOff && off != 0 {
		t.streak++
	} else if off != 0 {
		t.streak = 0
	}
	t.nextOff = off + n
	return off == 0 || t.streak > 0
}
