// Package object implements the NASD object system (Section 4.1): a
// flat namespace of variable-length objects grouped into soft,
// resizable partitions, with per-object attributes, copy-on-write
// versions, capacity quotas, and well-known objects for bootstrap.
//
// This is the paper's core storage abstraction: "drives export variable
// length objects instead of fixed-size blocks", moving data layout
// management into the device. The drive layer (internal/drive) adds
// capability enforcement and RPC on top.
//
// # Backends
//
// The Store itself owns what every storage engine shares — the
// per-object lock manager, the partition table with quota and
// object-count accounting, and control-object persistence — and
// dispatches data-path operations to a per-partition StoreBackend
// (backend.go). Two engines are registered:
//
//   - classic (classic.go): the paper's layout engine — superblock,
//     refcounted allocator, onode table, direct/indirect block maps
//     (internal/layout) — fronted by the sharded buffer cache with
//     write-behind and sequential readahead. The default; always
//     present (the control object lives in it).
//   - needle (needle_backend.go wrapping internal/needle): a
//     Haystack-style append-only needle log with a fully in-memory
//     index, built for small-object workloads — one or two media I/Os
//     per read, no per-object metadata I/O on the write path.
//
// The backend is chosen per partition at CreatePartition time and
// persisted in the control object's partition table; the layers above
// never see the concrete engine.
//
// # Durability
//
// Structural metadata mutations — onodes, block reference counts, the
// partition table, needle segment tables — are journaled ahead of
// their in-place writes (internal/journal), so a crash or power cut
// mid-update never leaves them torn. Open scans the journal, replays
// the committed tail over the on-media state, verifies and repairs
// block reference counts, and reports what it did through
// RecoveryInfo. WithJournalBlocks(-1) formats a volume without a
// journal; such volumes keep the pre-journal semantics — metadata is
// written in place and is crash-safe only up to the last Flush.
// DESIGN.md §7 specifies the commit protocol and the recovery
// invariants; crash_test.go's TestCrashSweep asserts those invariants
// at every scheduled persist step under blockdev.CrashDisk.
//
// # Concurrency
//
// The store admits concurrent requests the way the paper's scaling
// argument requires a drive to (Figures 6-7: drives scale because each
// serves clients independently): instead of one global mutex, locking
// is layered.
//
//   - Per-object reader/writer locks (lockmgr.go): reads of one object
//     share its lock, so they overlap; operations on distinct objects
//     take distinct locks, so they never contend at this layer.
//   - The needle engine locks per partition log, below the object
//     locks.
//   - A partition lock (pmu) guards the partition table, quota
//     accounting, and the control object.
//   - The buffer cache locks per shard, the layout allocator holds its
//     mutex only across bitmap/metadata mutations, and the onode table
//     uses per-block stripe locks.
//
// The lock hierarchy is object → needle log → partition → cache →
// layout: a level may acquire locks of lower levels (skipping is fine)
// and never the reverse, which keeps the scheme deadlock-free. Every
// layer's lock reports contention telemetry (object.lock.*,
// object.partlock.*, cache.lock.*, layout.lock.*) into the registry
// passed via Config.Metrics. See DESIGN.md §4 for the full write-up.
package object

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/cache"
	"nasd/internal/layout"
	"nasd/internal/telemetry"
)

// Well-known object identifiers (Section 4.1: "objects with well-known
// names and structures allow configuration and bootstrap of drives and
// partitions").
const (
	// ControlObject holds the drive's partition table. It lives in
	// partition 0 (the drive's own partition) and is created at format.
	ControlObject uint64 = 1
	// FirstUserObject is the first identifier handed to user objects.
	FirstUserObject uint64 = 16
)

// Object system errors.
var (
	ErrNoPartition     = errors.New("object: no such partition")
	ErrPartitionExists = errors.New("object: partition already exists")
	ErrPartitionBusy   = errors.New("object: partition not empty")
	ErrNoObject        = errors.New("object: no such object")
	ErrQuota           = errors.New("object: partition quota exceeded")
	ErrBadRange        = errors.New("object: invalid byte range")
)

// notFound reports whether err means the named object or partition does
// not exist — the errors after which a speculative lock entry should
// not be kept.
func notFound(err error) bool {
	return errors.Is(err, ErrNoObject) || errors.Is(err, ErrNoPartition)
}

// Attributes are the externally visible per-object attributes
// (timestamps, size, logical version, preallocation/clustering hints and
// the uninterpreted filesystem-specific block).
type Attributes struct {
	Size        uint64
	Version     uint64 // logical version number; bumping revokes capabilities
	CreateTime  time.Time
	ModTime     time.Time
	AttrModTime time.Time
	Prealloc    uint64 // reserved capacity in bytes
	Cluster     uint64 // object to cluster near
	Uninterp    [layout.UninterpSize]byte
}

// SetAttrMask selects which attributes SetAttr changes.
type SetAttrMask uint32

// Mask bits for SetAttr.
const (
	SetVersion SetAttrMask = 1 << iota
	SetPrealloc
	SetCluster
	SetUninterp
	SetModTime
	SetSize // truncate/extend to Size
)

// Partition describes one soft partition. Partitions are groupings of
// objects with a capacity quota, "not physical regions of disk media",
// so resizing is a metadata operation.
type Partition struct {
	ID          uint16
	QuotaBlocks int64 // 0 = unlimited
	UsedBlocks  int64 // block references charged to this partition
	ObjectCount int64
	// Backend is the storage engine serving this partition's objects.
	Backend BackendKind

	// Needle partitions keep two partition-0 classic raw objects: the
	// segment table and the index snapshot. Zero for classic partitions.
	metaSegs uint64
	metaIdx  uint64
}

// Config controls store creation. Prefer building it through the
// functional options accepted by FormatStore/OpenStore.
type Config struct {
	// CacheBlocks is the buffer cache capacity in blocks (default 1024).
	CacheBlocks int
	// CacheShards is how many independently locked shards the buffer
	// cache uses (default cache.DefaultShards).
	CacheShards int
	// ReadaheadBlocks is how many blocks are prefetched past a detected
	// sequential read (default 16; 0 disables readahead).
	ReadaheadBlocks int
	// Clock supplies timestamps (default time.Now). Experiments inject
	// simulated clocks.
	Clock func() time.Time
	// WriteThrough disables write-behind in the data cache.
	WriteThrough bool
	// Metrics receives lock-contention telemetry for every layer of the
	// store (object.lock.*, object.partlock.*, cache.lock.*,
	// layout.lock.*) plus per-backend counters (object.classic.*,
	// needle.*). Nil disables metering.
	Metrics *telemetry.Registry
	// DefaultBackend is the engine CreatePartition uses when the caller
	// does not name one (default BackendClassic).
	DefaultBackend BackendKind
	// OnodeCount overrides the format-time onode table size (0 = layout
	// default: one slot per 64 data blocks). Needle-heavy drives need
	// only a handful of classic onodes, while classic million-object
	// workloads need it raised.
	OnodeCount int64
	// JournalBlocks sizes the format-time metadata journal region (0 =
	// layout default: 1/32 of the volume, clamped; negative disables
	// journaling — benchmark baselines only, crash consistency is lost).
	JournalBlocks int64
	// Events is the structured event ring the store emits state
	// transitions into (journal recovery, needle compactions). Nil uses
	// the process-wide telemetry.Events ring.
	Events *telemetry.EventLog
	// SyncCompact runs needle-log compaction inline in the mutating
	// call that crossed the dead-byte threshold instead of on a
	// background goroutine. The crash harness needs it: with compaction
	// asynchronous, device writes land at timing-dependent points in
	// the persist-step schedule, making the sweep nondeterministic.
	SyncCompact bool
}

func (c *Config) fill() {
	if c.CacheBlocks <= 0 {
		c.CacheBlocks = 1024
	}
	if c.CacheShards <= 0 {
		c.CacheShards = cache.DefaultShards
	}
	if c.ReadaheadBlocks < 0 {
		c.ReadaheadBlocks = 0
	} else if c.ReadaheadBlocks == 0 {
		c.ReadaheadBlocks = 16
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Events == nil {
		c.Events = telemetry.Events
	}
}

// Store is a NASD object store on a block device. All methods are safe
// for concurrent use; see the package comment for the locking scheme.
// Data-path operations dispatch to the partition's StoreBackend.
type Store struct {
	cfg Config

	// classic is the default engine and the substrate for everything
	// shared: the control object, needle metadata objects, and the
	// volume-wide object ID counter live in its layout.
	classic *classicBackend
	// needle is the append-only log engine, inert until a needle
	// partition exists.
	needle *needleBackend

	// locks is the per-(partition,object) lock manager — the top of the
	// lock hierarchy.
	locks *lockManager

	// pmu guards parts (the partition table), all quota/usage
	// accounting, and control-object persistence. It sits between the
	// needle log locks and the cache in the hierarchy.
	pmu    sync.Mutex
	pmeter *telemetry.LockMeter
	parts  map[uint16]*Partition

	// partsLSN / segLSNs (guarded by pmu) track the newest journaled
	// partition-table and per-partition segment-table intent records
	// whose in-place writes are still buffered in the cache. Flush marks
	// them applied once the cache has drained, letting the journal
	// checkpoint discard them.
	partsLSN uint64
	segLSNs  map[uint16]uint64

	// recovery summarizes the last mount-time recovery (zero value when
	// the volume opened clean or journaling is disabled).
	recovery RecoveryInfo
}

// Format initializes dev as an empty object store.
//
// Deprecated: use FormatStore with functional options.
func Format(dev blockdev.Device, cfg Config) (*Store, error) {
	cfg.fill()
	lay, err := layout.Format(dev, layout.FormatOptions{
		OnodeCount:    cfg.OnodeCount,
		JournalBlocks: cfg.JournalBlocks,
		Metrics:       cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	s := newStore(lay, dev, cfg)
	lay.ReserveObjectIDs(FirstUserObject)
	s.lockParts()
	err = s.savePartitionsLocked()
	s.pmu.Unlock()
	if err != nil {
		return nil, err
	}
	// Push the freshly written control object and superblock to the
	// device so a crash right after Format still finds an object store.
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads an existing object store from dev. On journaled volumes
// this is also mount-time recovery: committed intent records are
// replayed, torn journal tails discarded, and the block reference
// counts re-derived from reachability before the store accepts traffic
// (see recover.go).
//
// Deprecated: use OpenStore with functional options.
func Open(dev blockdev.Device, cfg Config) (*Store, error) {
	cfg.fill()
	start := time.Now()
	lay, err := layout.OpenWith(dev, layout.OpenOptions{Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}
	s := newStore(lay, dev, cfg)
	if err := s.recoverObjectRecords(); err != nil {
		return nil, err
	}
	// Recover every needle partition's log: rebuild the in-memory index
	// (from its snapshot when possible, a full log scan otherwise) and
	// re-derive the partition's accounting from log state — needle
	// creates and removes deliberately skip control-object writes, so
	// the persisted counts are only as fresh as the last Flush.
	var maxID uint64
	for _, p := range s.parts {
		if p.Backend != BackendNeedle {
			continue
		}
		st, err := s.needle.openLog(p.ID)
		if err != nil {
			return nil, fmt.Errorf("object: recovering needle partition %d: %w", p.ID, err)
		}
		p.ObjectCount = int64(st.Objects)
		p.UsedBlocks = int64(st.Blocks)
		if st.MaxObjectID > maxID {
			maxID = st.MaxObjectID
		}
	}
	// Needle object IDs come from the classic superblock counter, which
	// is only persisted at Sync; never re-issue an ID the log has seen.
	if maxID != 0 {
		lay.ReserveObjectIDs(maxID + 1)
	}
	if err := s.finishRecovery(start); err != nil {
		return nil, err
	}
	return s, nil
}

func newStore(lay *layout.Store, dev blockdev.Device, cfg Config) *Store {
	c := cache.NewSharded(dev, cfg.CacheBlocks, cfg.CacheShards)
	c.SetWriteThrough(cfg.WriteThrough)
	c.SetLockMeter(telemetry.NewLockMeter(cfg.Metrics, "cache.lock"))
	lay.SetDataIO(c)
	lay.SetLockMeter(telemetry.NewLockMeter(cfg.Metrics, "layout.lock"))
	s := &Store{
		cfg:     cfg,
		locks:   newLockManager(telemetry.NewLockMeter(cfg.Metrics, "object.lock")),
		pmeter:  telemetry.NewLockMeter(cfg.Metrics, "object.partlock"),
		parts:   make(map[uint16]*Partition),
		segLSNs: make(map[uint16]uint64),
	}
	s.classic = newClassicBackend(lay, c, &s.cfg, s)
	s.needle = newNeedleBackend(s, dev)
	return s
}

// lockParts acquires the partition lock through its contention meter.
func (s *Store) lockParts() { s.pmeter.Lock(&s.pmu) }

// BlockSize returns the store's block size in bytes.
func (s *Store) BlockSize() int64 { return s.classic.lay.BlockSize() }

// MaxObjectSize returns the largest supported object size.
func (s *Store) MaxObjectSize() uint64 { return s.classic.lay.MaxObjectSize() }

// FreeBlocks returns the number of free data blocks.
func (s *Store) FreeBlocks() int64 { return s.classic.lay.FreeBlocks() }

// CacheStats exposes buffer cache counters (hits, misses, prefetches).
func (s *Store) CacheStats() cache.Stats { return s.classic.cache.Stats() }

// LockEntries returns the number of live per-object lock entries
// (introspection and tests).
func (s *Store) LockEntries() int { return s.locks.entries() }

// backendFor resolves the engine serving part. Partition 0 (the drive's
// own) is always classic.
func (s *Store) backendFor(part uint16) (StoreBackend, error) {
	if part == 0 {
		return s.classic, nil
	}
	s.lockParts()
	p := s.parts[part]
	var kind BackendKind
	if p != nil {
		kind = p.Backend
	}
	s.pmu.Unlock()
	if p == nil {
		return nil, ErrNoPartition
	}
	if kind == BackendNeedle {
		return s.needle, nil
	}
	return s.classic, nil
}

// --- Quota account (quotaAccount, used by backends) ----------------------

// chargeBlocks admits delta blocks against part's quota; negative
// deltas always succeed and just reduce usage. Partition 0 and removed
// partitions are uncharged.
func (s *Store) chargeBlocks(part uint16, delta int64) error {
	if part == 0 {
		return nil
	}
	s.lockParts()
	defer s.pmu.Unlock()
	p := s.parts[part]
	if p == nil {
		return nil
	}
	if delta > 0 && p.QuotaBlocks != 0 && p.UsedBlocks+delta > p.QuotaBlocks {
		return fmt.Errorf("%w: need %d blocks, %d of %d used",
			ErrQuota, delta, p.UsedBlocks, p.QuotaBlocks)
	}
	p.UsedBlocks += delta
	return nil
}

// settleBlocks adjusts part's usage with no admission check.
func (s *Store) settleBlocks(part uint16, delta int64) {
	if part == 0 {
		return
	}
	s.lockParts()
	defer s.pmu.Unlock()
	if p := s.parts[part]; p != nil {
		p.UsedBlocks += delta
	}
}

// quotaed reports whether part currently enforces a quota.
func (s *Store) quotaed(part uint16) bool {
	s.lockParts()
	defer s.pmu.Unlock()
	p := s.parts[part]
	return p != nil && p.QuotaBlocks != 0
}

// --- Partition management ----------------------------------------------

// CreatePartition creates partition id with a quota of quotaBlocks
// blocks (0 = unlimited) on the store's default backend. Partition 0 is
// reserved for the drive.
func (s *Store) CreatePartition(id uint16, quotaBlocks int64) error {
	return s.CreatePartitionBackend(id, quotaBlocks, s.cfg.DefaultBackend)
}

// CreatePartitionBackend creates partition id served by the named
// storage engine. The choice is persisted in the control object's
// partition table and is fixed for the partition's lifetime.
func (s *Store) CreatePartitionBackend(id uint16, quotaBlocks int64, kind BackendKind) error {
	if id == 0 {
		return fmt.Errorf("object: partition 0 is reserved")
	}
	switch kind {
	case BackendClassic:
		s.lockParts()
		defer s.pmu.Unlock()
		if _, ok := s.parts[id]; ok {
			return ErrPartitionExists
		}
		s.parts[id] = &Partition{ID: id, QuotaBlocks: quotaBlocks}
		if err := s.savePartitionsLocked(); err != nil {
			delete(s.parts, id)
			return err
		}
		return nil
	case BackendNeedle:
		return s.createNeedlePartition(id, quotaBlocks)
	default:
		return fmt.Errorf("object: unknown backend %v", kind)
	}
}

func (s *Store) createNeedlePartition(id uint16, quotaBlocks int64) error {
	// The log's metadata (segment table, index snapshot) lives in two
	// classic partition-0 raw objects; allocate them before taking pmu.
	segsID, err := s.classic.createRaw()
	if err != nil {
		return err
	}
	idxID, err := s.classic.createRaw()
	if err != nil {
		_ = s.classic.removeRaw(segsID)
		return err
	}
	dropMeta := func() {
		_ = s.classic.removeRaw(segsID)
		_ = s.classic.removeRaw(idxID)
	}
	s.lockParts()
	if _, ok := s.parts[id]; ok {
		s.pmu.Unlock()
		dropMeta()
		return ErrPartitionExists
	}
	p := &Partition{
		ID: id, QuotaBlocks: quotaBlocks,
		Backend: BackendNeedle, metaSegs: segsID, metaIdx: idxID,
	}
	s.parts[id] = p
	if err := s.savePartitionsLocked(); err != nil {
		delete(s.parts, id)
		s.pmu.Unlock()
		dropMeta()
		return err
	}
	s.pmu.Unlock()
	// Initialize the log last: it persists its (empty) segment table
	// through the partition entry just created.
	if err := s.needle.createLog(id); err != nil {
		s.lockParts()
		delete(s.parts, id)
		_ = s.savePartitionsLocked()
		s.pmu.Unlock()
		dropMeta()
		return err
	}
	return nil
}

// ResizePartition changes a partition's quota. Shrinking below current
// usage fails.
func (s *Store) ResizePartition(id uint16, quotaBlocks int64) error {
	s.lockParts()
	defer s.pmu.Unlock()
	p, ok := s.parts[id]
	if !ok {
		return ErrNoPartition
	}
	if quotaBlocks != 0 && quotaBlocks < p.UsedBlocks {
		return fmt.Errorf("%w: quota %d below usage %d", ErrQuota, quotaBlocks, p.UsedBlocks)
	}
	prev := p.QuotaBlocks
	p.QuotaBlocks = quotaBlocks
	if err := s.savePartitionsLocked(); err != nil {
		p.QuotaBlocks = prev
		return err
	}
	return nil
}

// RemovePartition deletes an empty partition. For needle partitions the
// log's segments and metadata objects are released.
func (s *Store) RemovePartition(id uint16) error {
	s.lockParts()
	p, ok := s.parts[id]
	if !ok {
		s.pmu.Unlock()
		return ErrNoPartition
	}
	if p.ObjectCount > 0 {
		s.pmu.Unlock()
		return ErrPartitionBusy
	}
	delete(s.parts, id)
	if err := s.savePartitionsLocked(); err != nil {
		s.parts[id] = p
		s.pmu.Unlock()
		return err
	}
	s.pmu.Unlock()
	if p.Backend == BackendNeedle {
		// The entry is already gone, so new operations fail with
		// ErrNoPartition while the log's space is reclaimed.
		if err := s.needle.dropLog(id); err != nil {
			return err
		}
		if err := s.classic.removeRaw(p.metaSegs); err != nil {
			return err
		}
		if err := s.classic.removeRaw(p.metaIdx); err != nil {
			return err
		}
	}
	return nil
}

// GetPartition returns a snapshot of partition id.
func (s *Store) GetPartition(id uint16) (Partition, error) {
	s.lockParts()
	defer s.pmu.Unlock()
	p, ok := s.parts[id]
	if !ok {
		return Partition{}, ErrNoPartition
	}
	return *p, nil
}

// Partitions returns snapshots of every partition, unordered.
func (s *Store) Partitions() []Partition {
	s.lockParts()
	defer s.pmu.Unlock()
	out := make([]Partition, 0, len(s.parts))
	for _, p := range s.parts {
		out = append(out, *p)
	}
	return out
}

// partExists reports whether partition part is present.
func (s *Store) partExists(part uint16) bool {
	s.lockParts()
	defer s.pmu.Unlock()
	_, ok := s.parts[part]
	return ok
}

// --- Object lifecycle ---------------------------------------------------

// Create allocates a new object in partition part and returns its ID.
// IDs come from the volume-wide counter in the classic superblock, so
// they are unique across partitions and backends.
func (s *Store) Create(part uint16) (uint64, error) {
	be, err := s.backendFor(part)
	if err != nil {
		return 0, err
	}
	id := s.classic.lay.NextObjectID()
	if err := be.Create(part, id); err != nil {
		return 0, err
	}
	s.lockParts()
	p := s.parts[part]
	if p == nil {
		// The partition was removed while we were allocating; undo.
		s.pmu.Unlock()
		_, _ = be.Remove(part, id)
		return 0, ErrNoPartition
	}
	p.ObjectCount++
	// Classic partitions persist their accounting eagerly. Needle
	// partitions skip it — the log itself is the durable record and the
	// counts are re-derived at Open — which is what keeps a needle
	// create at zero metadata I/Os.
	if p.Backend == BackendClassic {
		if err := s.savePartitionsLocked(); err != nil {
			p.ObjectCount--
			s.pmu.Unlock()
			_, _ = be.Remove(part, id)
			return 0, err
		}
	}
	s.pmu.Unlock()
	return id, nil
}

// Remove deletes an object and releases its blocks.
func (s *Store) Remove(part uint16, obj uint64) error {
	be, err := s.backendFor(part)
	if err != nil {
		return err
	}
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	freed, err := be.Remove(part, obj)
	if err == nil {
		s.lockParts()
		if p := s.parts[part]; p != nil {
			p.ObjectCount--
			p.UsedBlocks -= freed
			if p.Backend == BackendClassic {
				err = s.savePartitionsLocked()
			}
		}
		s.pmu.Unlock()
	}
	// Purge the lock entry (and its readahead state) on success or when
	// the object never existed.
	s.locks.release(k, l, true, err == nil || notFound(err))
	return err
}

// List returns the IDs of all objects in a partition — the contents of
// the partition's well-known object-list object.
func (s *Store) List(part uint16) ([]uint64, error) {
	be, err := s.backendFor(part)
	if err != nil {
		return nil, err
	}
	return be.List(part)
}

// --- Attributes ----------------------------------------------------------

// GetAttr returns an object's attributes.
func (s *Store) GetAttr(part uint16, obj uint64) (Attributes, error) {
	be, err := s.backendFor(part)
	if err != nil {
		return Attributes{}, err
	}
	k := objKey{part, obj}
	l := s.locks.acquire(k, false)
	a, err := be.GetAttr(part, obj)
	s.locks.release(k, l, false, notFound(err))
	return a, err
}

// SetAttr updates the attributes selected by mask. Setting SetVersion
// changes the logical version number, immediately revoking capabilities
// minted against the old version (Section 4.1). Setting SetSize
// truncates or extends the object.
func (s *Store) SetAttr(part uint16, obj uint64, a Attributes, mask SetAttrMask) error {
	be, err := s.backendFor(part)
	if err != nil {
		return err
	}
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	err = be.SetAttr(part, obj, a, mask)
	s.locks.release(k, l, true, notFound(err))
	return err
}

// BumpVersion increments an object's logical version number and returns
// the new value. This is the capability-revocation primitive: all
// capabilities minted against the old version stop validating.
func (s *Store) BumpVersion(part uint16, obj uint64) (uint64, error) {
	be, err := s.backendFor(part)
	if err != nil {
		return 0, err
	}
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	var v uint64
	a, err := be.GetAttr(part, obj)
	if err == nil {
		a.Version++
		v = a.Version
		err = be.SetAttr(part, obj, a, SetVersion)
	}
	s.locks.release(k, l, true, notFound(err))
	if err != nil {
		return 0, err
	}
	return v, nil
}

// --- Data access ---------------------------------------------------------

// Read returns up to n bytes of object data starting at off, clipped to
// the object size. Readers of the same object share its lock, so
// concurrent reads overlap; reads of distinct objects proceed fully
// independently.
func (s *Store) Read(part uint16, obj uint64, off uint64, n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrBadRange
	}
	be, err := s.backendFor(part)
	if err != nil {
		return nil, err
	}
	k := objKey{part, obj}
	l := s.locks.acquire(k, false)
	data, err := be.Read(part, obj, off, n, &l.seq)
	s.locks.release(k, l, false, notFound(err))
	return data, err
}

// Write stores data at off, extending the object as needed and charging
// the partition quota. Writers of distinct objects proceed in parallel.
func (s *Store) Write(part uint16, obj uint64, off uint64, data []byte) error {
	be, err := s.backendFor(part)
	if err != nil {
		return err
	}
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	err = be.Write(part, obj, off, data)
	s.locks.release(k, l, true, notFound(err))
	return err
}

// VersionObject creates a copy-on-write version (snapshot) of an object
// and returns the new object's ID (the NASD interface's "construct a
// copy-on-write object version" request). Only the classic backend
// supports versions; needle partitions return ErrBackendMismatch.
func (s *Store) VersionObject(part uint16, obj uint64) (uint64, error) {
	be, err := s.backendFor(part)
	if err != nil {
		return 0, err
	}
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	id, err := s.versionLocked(be, part, obj)
	s.locks.release(k, l, true, notFound(err))
	return id, err
}

func (s *Store) versionLocked(be StoreBackend, part uint16, obj uint64) (uint64, error) {
	fp, err := be.Charge(part, obj)
	if err != nil {
		return 0, err
	}
	// Reserve the clone's charge and count it up front (quota admission
	// must be atomic with the usage update).
	s.lockParts()
	p := s.parts[part]
	if p != nil {
		if p.QuotaBlocks != 0 && p.UsedBlocks+fp > p.QuotaBlocks {
			s.pmu.Unlock()
			return 0, ErrQuota
		}
		p.UsedBlocks += fp
		p.ObjectCount++
	}
	s.pmu.Unlock()
	id, err := be.VersionObject(part, obj)
	if err != nil {
		s.lockParts()
		if p := s.parts[part]; p != nil {
			p.UsedBlocks -= fp
			p.ObjectCount--
		}
		s.pmu.Unlock()
		return 0, err
	}
	if be.Kind() == BackendClassic {
		s.lockParts()
		err = s.savePartitionsLocked()
		s.pmu.Unlock()
		if err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Flush forces write-behind data and metadata — including the partition
// table with its usage accounting and the needle engine's log tails and
// index snapshots — to the device. The needle engine flushes first: its
// metadata writes land in the classic cache, which is flushed after.
// With the cache drained, the object-layer intent records (partition
// table, segment tables) are marked applied so the journal checkpoint
// inside layout.Sync can discard them.
func (s *Store) Flush() error {
	if err := s.needle.Flush(); err != nil {
		return err
	}
	s.lockParts()
	err := s.savePartitionsLocked()
	s.pmu.Unlock()
	if err != nil {
		return err
	}
	if err := s.classic.Flush(); err != nil {
		return err
	}
	lay := s.classic.lay
	s.lockParts()
	if s.partsLSN != 0 {
		lay.JournalApplied(s.partsLSN)
		s.partsLSN = 0
	}
	for part, lsn := range s.segLSNs {
		lay.JournalApplied(lsn)
		delete(s.segLSNs, part)
	}
	s.pmu.Unlock()
	return lay.Sync()
}
