// Package object implements the NASD object system (Section 4.1): a
// flat namespace of variable-length objects grouped into soft,
// resizable partitions, with per-object attributes, copy-on-write
// versions, capacity quotas, and well-known objects for bootstrap.
//
// This is the paper's core storage abstraction: "drives export variable
// length objects instead of fixed-size blocks", moving data layout
// management into the device. The package composes the layout engine
// (disk space management), the buffer cache (with write-behind and
// sequential readahead), and partition/attribute logic. The drive layer
// (internal/drive) adds capability enforcement and RPC on top.
//
// # Concurrency
//
// The store admits concurrent requests the way the paper's scaling
// argument requires a drive to (Figures 6-7: drives scale because each
// serves clients independently): instead of one global mutex, locking
// is layered.
//
//   - Per-object reader/writer locks (lockmgr.go): reads of one object
//     share its lock, so they overlap; operations on distinct objects
//     take distinct locks, so they never contend at this layer.
//   - A partition lock (pmu) guards the partition table, quota
//     accounting, and the control object.
//   - The buffer cache locks per shard, the layout allocator holds its
//     mutex only across bitmap/metadata mutations, and the onode table
//     uses per-block stripe locks.
//
// The lock hierarchy is object → partition → cache → layout: a level
// may acquire locks of lower levels (skipping is fine) and never the
// reverse, which keeps the scheme deadlock-free. Every layer's lock
// reports contention telemetry (object.lock.*, object.partlock.*,
// cache.lock.*, layout.lock.*) into the registry passed via
// Config.Metrics. See DESIGN.md §4 for the full write-up.
package object

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/cache"
	"nasd/internal/layout"
	"nasd/internal/telemetry"
)

// Well-known object identifiers (Section 4.1: "objects with well-known
// names and structures allow configuration and bootstrap of drives and
// partitions").
const (
	// ControlObject holds the drive's partition table. It lives in
	// partition 0 (the drive's own partition) and is created at format.
	ControlObject uint64 = 1
	// FirstUserObject is the first identifier handed to user objects.
	FirstUserObject uint64 = 16
)

// Object system errors.
var (
	ErrNoPartition     = errors.New("object: no such partition")
	ErrPartitionExists = errors.New("object: partition already exists")
	ErrPartitionBusy   = errors.New("object: partition not empty")
	ErrNoObject        = errors.New("object: no such object")
	ErrQuota           = errors.New("object: partition quota exceeded")
	ErrBadRange        = errors.New("object: invalid byte range")
)

// notFound reports whether err means the named object or partition does
// not exist — the errors after which a speculative lock entry should
// not be kept.
func notFound(err error) bool {
	return errors.Is(err, ErrNoObject) || errors.Is(err, ErrNoPartition)
}

// Attributes are the externally visible per-object attributes
// (timestamps, size, logical version, preallocation/clustering hints and
// the uninterpreted filesystem-specific block).
type Attributes struct {
	Size        uint64
	Version     uint64 // logical version number; bumping revokes capabilities
	CreateTime  time.Time
	ModTime     time.Time
	AttrModTime time.Time
	Prealloc    uint64 // reserved capacity in bytes
	Cluster     uint64 // object to cluster near
	Uninterp    [layout.UninterpSize]byte
}

// SetAttrMask selects which attributes SetAttr changes.
type SetAttrMask uint32

// Mask bits for SetAttr.
const (
	SetVersion SetAttrMask = 1 << iota
	SetPrealloc
	SetCluster
	SetUninterp
	SetModTime
	SetSize // truncate/extend to Size
)

// Partition describes one soft partition. Partitions are groupings of
// objects with a capacity quota, "not physical regions of disk media",
// so resizing is a metadata operation.
type Partition struct {
	ID          uint16
	QuotaBlocks int64 // 0 = unlimited
	UsedBlocks  int64 // block references charged to this partition
	ObjectCount int64
}

// Config controls store creation.
type Config struct {
	// CacheBlocks is the buffer cache capacity in blocks (default 1024).
	CacheBlocks int
	// ReadaheadBlocks is how many blocks are prefetched past a detected
	// sequential read (default 16; 0 disables readahead).
	ReadaheadBlocks int
	// Clock supplies timestamps (default time.Now). Experiments inject
	// simulated clocks.
	Clock func() time.Time
	// WriteThrough disables write-behind in the data cache.
	WriteThrough bool
	// Metrics receives lock-contention telemetry for every layer of the
	// store (object.lock.*, object.partlock.*, cache.lock.*,
	// layout.lock.*). Nil disables lock metering.
	Metrics *telemetry.Registry
}

func (c *Config) fill() {
	if c.CacheBlocks <= 0 {
		c.CacheBlocks = 1024
	}
	if c.ReadaheadBlocks < 0 {
		c.ReadaheadBlocks = 0
	} else if c.ReadaheadBlocks == 0 {
		c.ReadaheadBlocks = 16
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// seqTracker is one object's sequential-read detector. It lives in the
// object's lock-manager entry, guarded by that entry's seqMu.
type seqTracker struct {
	nextOff uint64 // offset one past the previous read
	streak  int    // consecutive sequential reads observed
}

// Store is a NASD object store on a block device. All methods are safe
// for concurrent use; see the package comment for the locking scheme.
type Store struct {
	lay   *layout.Store
	cache *cache.BlockCache
	cfg   Config

	// locks is the per-(partition,object) lock manager — the top of the
	// lock hierarchy.
	locks *lockManager

	// pmu guards parts (the partition table), all quota/usage
	// accounting, and control-object persistence. It sits between the
	// object locks and the cache in the hierarchy.
	pmu    sync.Mutex
	pmeter *telemetry.LockMeter
	parts  map[uint16]*Partition
}

// Format initializes dev as an empty object store.
func Format(dev blockdev.Device, cfg Config) (*Store, error) {
	cfg.fill()
	lay, err := layout.Format(dev, layout.FormatOptions{})
	if err != nil {
		return nil, err
	}
	s := newStore(lay, dev, cfg)
	lay.ReserveObjectIDs(FirstUserObject)
	s.lockParts()
	err = s.savePartitionsLocked()
	s.pmu.Unlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads an existing object store from dev.
func Open(dev blockdev.Device, cfg Config) (*Store, error) {
	cfg.fill()
	lay, err := layout.Open(dev)
	if err != nil {
		return nil, err
	}
	s := newStore(lay, dev, cfg)
	if err := s.loadPartitions(); err != nil {
		return nil, err
	}
	return s, nil
}

func newStore(lay *layout.Store, dev blockdev.Device, cfg Config) *Store {
	c := cache.New(dev, cfg.CacheBlocks)
	c.SetWriteThrough(cfg.WriteThrough)
	c.SetLockMeter(telemetry.NewLockMeter(cfg.Metrics, "cache.lock"))
	lay.SetDataIO(c)
	lay.SetLockMeter(telemetry.NewLockMeter(cfg.Metrics, "layout.lock"))
	return &Store{
		lay:    lay,
		cache:  c,
		cfg:    cfg,
		locks:  newLockManager(telemetry.NewLockMeter(cfg.Metrics, "object.lock")),
		pmeter: telemetry.NewLockMeter(cfg.Metrics, "object.partlock"),
		parts:  make(map[uint16]*Partition),
	}
}

// lockParts acquires the partition lock through its contention meter.
func (s *Store) lockParts() { s.pmeter.Lock(&s.pmu) }

// BlockSize returns the store's block size in bytes.
func (s *Store) BlockSize() int64 { return s.lay.BlockSize() }

// MaxObjectSize returns the largest supported object size.
func (s *Store) MaxObjectSize() uint64 { return s.lay.MaxObjectSize() }

// FreeBlocks returns the number of free data blocks.
func (s *Store) FreeBlocks() int64 { return s.lay.FreeBlocks() }

// CacheStats exposes buffer cache counters (hits, misses, prefetches).
func (s *Store) CacheStats() cache.Stats { return s.cache.Stats() }

// LockEntries returns the number of live per-object lock entries
// (introspection and tests).
func (s *Store) LockEntries() int { return s.locks.entries() }

// --- Partition management ----------------------------------------------

// CreatePartition creates partition id with a quota of quotaBlocks
// blocks (0 = unlimited). Partition 0 is reserved for the drive.
func (s *Store) CreatePartition(id uint16, quotaBlocks int64) error {
	if id == 0 {
		return fmt.Errorf("object: partition 0 is reserved")
	}
	s.lockParts()
	defer s.pmu.Unlock()
	if _, ok := s.parts[id]; ok {
		return ErrPartitionExists
	}
	s.parts[id] = &Partition{ID: id, QuotaBlocks: quotaBlocks}
	if err := s.savePartitionsLocked(); err != nil {
		delete(s.parts, id)
		return err
	}
	return nil
}

// ResizePartition changes a partition's quota. Shrinking below current
// usage fails.
func (s *Store) ResizePartition(id uint16, quotaBlocks int64) error {
	s.lockParts()
	defer s.pmu.Unlock()
	p, ok := s.parts[id]
	if !ok {
		return ErrNoPartition
	}
	if quotaBlocks != 0 && quotaBlocks < p.UsedBlocks {
		return fmt.Errorf("%w: quota %d below usage %d", ErrQuota, quotaBlocks, p.UsedBlocks)
	}
	prev := p.QuotaBlocks
	p.QuotaBlocks = quotaBlocks
	if err := s.savePartitionsLocked(); err != nil {
		p.QuotaBlocks = prev
		return err
	}
	return nil
}

// RemovePartition deletes an empty partition.
func (s *Store) RemovePartition(id uint16) error {
	s.lockParts()
	defer s.pmu.Unlock()
	p, ok := s.parts[id]
	if !ok {
		return ErrNoPartition
	}
	if p.ObjectCount > 0 {
		return ErrPartitionBusy
	}
	delete(s.parts, id)
	if err := s.savePartitionsLocked(); err != nil {
		s.parts[id] = p
		return err
	}
	return nil
}

// GetPartition returns a snapshot of partition id.
func (s *Store) GetPartition(id uint16) (Partition, error) {
	s.lockParts()
	defer s.pmu.Unlock()
	p, ok := s.parts[id]
	if !ok {
		return Partition{}, ErrNoPartition
	}
	return *p, nil
}

// Partitions returns snapshots of every partition, unordered.
func (s *Store) Partitions() []Partition {
	s.lockParts()
	defer s.pmu.Unlock()
	out := make([]Partition, 0, len(s.parts))
	for _, p := range s.parts {
		out = append(out, *p)
	}
	return out
}

// partExists reports whether partition part is present.
func (s *Store) partExists(part uint16) bool {
	s.lockParts()
	defer s.pmu.Unlock()
	_, ok := s.parts[part]
	return ok
}

// --- Object lifecycle ---------------------------------------------------

// Create allocates a new object in partition part and returns its ID.
// The new object is invisible until its onode is written, so no object
// lock is needed.
func (s *Store) Create(part uint16) (uint64, error) {
	if !s.partExists(part) {
		return 0, ErrNoPartition
	}
	idx, err := s.lay.AllocOnode()
	if err != nil {
		return 0, err
	}
	id := s.lay.NextObjectID()
	now := s.cfg.Clock().Unix()
	o := layout.Onode{
		ObjectID:   id,
		Partition:  part,
		Version:    1,
		CreateSec:  now,
		ModSec:     now,
		AttrModSec: now,
	}
	if err := s.lay.WriteOnode(idx, &o); err != nil {
		return 0, err
	}
	s.lockParts()
	p := s.parts[part]
	if p == nil {
		// The partition was removed while we were allocating; undo.
		s.pmu.Unlock()
		_ = s.lay.WriteOnode(idx, &layout.Onode{})
		return 0, ErrNoPartition
	}
	p.ObjectCount++
	if err := s.savePartitionsLocked(); err != nil {
		p.ObjectCount--
		s.pmu.Unlock()
		_ = s.lay.WriteOnode(idx, &layout.Onode{})
		return 0, err
	}
	s.pmu.Unlock()
	return id, nil
}

// Remove deletes an object and releases its blocks.
func (s *Store) Remove(part uint16, obj uint64) error {
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	err := s.removeLocked(part, obj)
	// Purge the lock entry (and its readahead state) on success or when
	// the object never existed.
	s.locks.release(k, l, true, err == nil || notFound(err))
	return err
}

func (s *Store) removeLocked(part uint16, obj uint64) error {
	idx, o, err := s.lookup(part, obj)
	if err != nil {
		return err
	}
	charge := s.chargeOf(&o)
	// Invalidate cache entries for blocks about to become free so a
	// later reallocation cannot observe stale contents.
	if err := s.lay.ForEachBlock(&o, func(phys int64, isPtr bool) error {
		if !isPtr && s.lay.RefCount(phys) == 1 {
			s.cache.Invalidate(phys)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := s.lay.FreeObjectBlocks(&o); err != nil {
		return err
	}
	if err := s.lay.WriteOnode(idx, &layout.Onode{}); err != nil {
		return err
	}
	s.lockParts()
	defer s.pmu.Unlock()
	if p := s.parts[part]; p != nil {
		p.ObjectCount--
		p.UsedBlocks -= charge
	}
	return s.savePartitionsLocked()
}

// List returns the IDs of all objects in a partition — the contents of
// the partition's well-known object-list object.
func (s *Store) List(part uint16) ([]uint64, error) {
	if !s.partExists(part) {
		return nil, ErrNoPartition
	}
	return s.lay.ObjectIDs(part), nil
}

// lookup resolves (part, obj) to its onode. The caller holds the
// object's lock (either mode), which is what keeps the onode stable
// until the operation completes.
func (s *Store) lookup(part uint16, obj uint64) (int64, layout.Onode, error) {
	if part != 0 && !s.partExists(part) {
		return 0, layout.Onode{}, ErrNoPartition
	}
	idx, ok := s.lay.FindOnode(obj)
	if !ok {
		return 0, layout.Onode{}, ErrNoObject
	}
	o, err := s.lay.ReadOnode(idx)
	if err != nil {
		return 0, layout.Onode{}, err
	}
	if o.Partition != part {
		return 0, layout.Onode{}, ErrNoObject
	}
	return idx, o, nil
}

// footprint counts the block references owned by an object (data plus
// indirect blocks).
func (s *Store) footprint(o *layout.Onode) int64 {
	var n int64
	_ = s.lay.ForEachBlock(o, func(int64, bool) error { n++; return nil })
	return n
}

// chargeOf is what quotas charge for an object: its footprint or its
// capacity reservation (Prealloc), whichever is larger. Reserved space
// is charged up front so preallocated writes can never fail on quota.
func (s *Store) chargeOf(o *layout.Onode) int64 {
	fp := s.footprint(o)
	bs := uint64(s.lay.BlockSize())
	res := int64((o.Prealloc + bs - 1) / bs)
	if res > fp {
		return res
	}
	return fp
}

// reserve updates an object's capacity reservation, charging or
// refunding the partition. Caller holds the object's exclusive lock and
// persists the onode.
func (s *Store) reserve(o *layout.Onode, prealloc uint64) error {
	before := s.chargeOf(o)
	old := o.Prealloc
	o.Prealloc = prealloc
	after := s.chargeOf(o)
	delta := after - before
	s.lockParts()
	defer s.pmu.Unlock()
	p := s.parts[o.Partition]
	if p != nil {
		if p.QuotaBlocks != 0 && delta > 0 && p.UsedBlocks+delta > p.QuotaBlocks {
			o.Prealloc = old
			return fmt.Errorf("%w: reservation needs %d blocks, %d of %d used",
				ErrQuota, delta, p.UsedBlocks, p.QuotaBlocks)
		}
		p.UsedBlocks += delta
	}
	return nil
}

// clusterHint returns an allocation hint near the object this one is
// linked to (the clustering attribute of Section 4.1), or 0. The target
// object is read without its lock — the hint is advisory, and a
// concurrently mutating target only yields a stale hint.
func (s *Store) clusterHint(o *layout.Onode) int64 {
	if o.Cluster == 0 {
		return 0
	}
	idx, ok := s.lay.FindOnode(o.Cluster)
	if !ok {
		return 0
	}
	t, err := s.lay.ReadOnode(idx)
	if err != nil {
		return 0
	}
	var hint int64
	_ = s.lay.ForEachBlock(&t, func(phys int64, isPtr bool) error {
		if !isPtr && phys+1 > hint {
			hint = phys + 1
		}
		return nil
	})
	return hint
}

// --- Attributes ----------------------------------------------------------

// GetAttr returns an object's attributes.
func (s *Store) GetAttr(part uint16, obj uint64) (Attributes, error) {
	k := objKey{part, obj}
	l := s.locks.acquire(k, false)
	_, o, err := s.lookup(part, obj)
	s.locks.release(k, l, false, notFound(err))
	if err != nil {
		return Attributes{}, err
	}
	return attrsFromOnode(&o), nil
}

func attrsFromOnode(o *layout.Onode) Attributes {
	return Attributes{
		Size:        o.Size,
		Version:     o.Version,
		CreateTime:  time.Unix(o.CreateSec, 0).UTC(),
		ModTime:     time.Unix(o.ModSec, 0).UTC(),
		AttrModTime: time.Unix(o.AttrModSec, 0).UTC(),
		Prealloc:    o.Prealloc,
		Cluster:     o.Cluster,
		Uninterp:    o.Uninterp,
	}
}

// SetAttr updates the attributes selected by mask. Setting SetVersion
// changes the logical version number, immediately revoking capabilities
// minted against the old version (Section 4.1). Setting SetSize
// truncates or extends the object.
func (s *Store) SetAttr(part uint16, obj uint64, a Attributes, mask SetAttrMask) error {
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	err := s.setAttrLocked(part, obj, a, mask)
	s.locks.release(k, l, true, notFound(err))
	return err
}

func (s *Store) setAttrLocked(part uint16, obj uint64, a Attributes, mask SetAttrMask) error {
	idx, o, err := s.lookup(part, obj)
	if err != nil {
		return err
	}
	if mask&SetSize != 0 && a.Size != o.Size {
		if err := s.truncate(&o, a.Size); err != nil {
			return err
		}
		o.ModSec = s.cfg.Clock().Unix()
	}
	if mask&SetVersion != 0 {
		o.Version = a.Version
	}
	if mask&SetPrealloc != 0 {
		// Capacity reservation (Section 4.1: "allow capacity to be
		// reserved"): charge the partition for the reserved blocks now
		// so later writes cannot fail on quota, and refuse reservations
		// the quota cannot cover.
		if err := s.reserve(&o, a.Prealloc); err != nil {
			return err
		}
	}
	if mask&SetCluster != 0 {
		o.Cluster = a.Cluster
	}
	if mask&SetUninterp != 0 {
		o.Uninterp = a.Uninterp
	}
	if mask&SetModTime != 0 {
		o.ModSec = a.ModTime.Unix()
	}
	o.AttrModSec = s.cfg.Clock().Unix()
	return s.lay.WriteOnode(idx, &o)
}

// truncate resizes o in place, freeing or leaving holes. Caller holds
// the object's exclusive lock and persists the onode afterwards.
func (s *Store) truncate(o *layout.Onode, newSize uint64) error {
	bs := uint64(s.lay.BlockSize())
	if newSize > s.lay.MaxObjectSize() {
		return layout.ErrTooBig
	}
	before := s.chargeOf(o)
	if newSize < o.Size {
		first := (newSize + bs - 1) / bs // first block to drop
		last := (o.Size + bs - 1) / bs
		for fb := first; fb < last; fb++ {
			phys, err := s.lay.BMap(o, int64(fb))
			if err != nil {
				return err
			}
			if phys != 0 && s.lay.RefCount(phys) == 1 {
				s.cache.Invalidate(phys)
			}
			if _, err := s.lay.UnmapBlock(o, int64(fb)); err != nil {
				return err
			}
		}
		// Zero the tail of the new last block so growth re-reads zeros.
		if newSize%bs != 0 {
			phys, err := s.lay.BMap(o, int64(newSize/bs))
			if err != nil {
				return err
			}
			if phys != 0 {
				buf := make([]byte, bs)
				if err := s.cache.ReadBlock(phys, buf); err != nil {
					return err
				}
				for i := newSize % bs; i < bs; i++ {
					buf[i] = 0
				}
				// Shared blocks must be unshared before zeroing.
				np, err := s.lay.BMapAlloc(o, int64(newSize/bs), phys)
				if err != nil {
					return err
				}
				if err := s.cache.WriteBlock(np, buf); err != nil {
					return err
				}
			}
		}
	}
	o.Size = newSize
	delta := s.chargeOf(o) - before
	s.lockParts()
	if p := s.parts[o.Partition]; p != nil {
		p.UsedBlocks += delta
	}
	s.pmu.Unlock()
	return nil
}

// BumpVersion increments an object's logical version number and returns
// the new value. This is the capability-revocation primitive: all
// capabilities minted against the old version stop validating.
func (s *Store) BumpVersion(part uint16, obj uint64) (uint64, error) {
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	v, err := s.bumpLocked(part, obj)
	s.locks.release(k, l, true, notFound(err))
	return v, err
}

func (s *Store) bumpLocked(part uint16, obj uint64) (uint64, error) {
	idx, o, err := s.lookup(part, obj)
	if err != nil {
		return 0, err
	}
	o.Version++
	o.AttrModSec = s.cfg.Clock().Unix()
	if err := s.lay.WriteOnode(idx, &o); err != nil {
		return 0, err
	}
	return o.Version, nil
}

// --- Data access ---------------------------------------------------------

// Read returns up to n bytes of object data starting at off, clipped to
// the object size. Sequential access triggers readahead into the cache.
// Readers of the same object share its lock, so concurrent reads
// overlap; reads of distinct objects proceed fully independently.
func (s *Store) Read(part uint16, obj uint64, off uint64, n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrBadRange
	}
	k := objKey{part, obj}
	l := s.locks.acquire(k, false)
	data, err := s.readLocked(l, part, obj, off, n)
	s.locks.release(k, l, false, notFound(err))
	return data, err
}

func (s *Store) readLocked(l *objLock, part uint16, obj uint64, off uint64, n int) ([]byte, error) {
	_, o, err := s.lookup(part, obj)
	if err != nil {
		return nil, err
	}
	if off >= o.Size {
		return nil, nil
	}
	if max := o.Size - off; uint64(n) > max {
		n = int(max)
	}
	bs := uint64(s.lay.BlockSize())
	out := make([]byte, n)
	buf := make([]byte, bs)
	for done := 0; done < n; {
		cur := off + uint64(done)
		fb := int64(cur / bs)
		within := cur % bs
		chunk := int(bs - within)
		if chunk > n-done {
			chunk = n - done
		}
		phys, err := s.lay.BMap(&o, fb)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			for i := 0; i < chunk; i++ {
				out[done+i] = 0
			}
		} else {
			if err := s.cache.ReadBlock(phys, buf); err != nil {
				return nil, err
			}
			copy(out[done:done+chunk], buf[within:])
		}
		done += chunk
	}
	s.readahead(l, &o, off, uint64(n))
	return out, nil
}

// readahead detects sequential access and prefetches ahead. The
// sequential tracker lives in the object's lock entry; the caller holds
// at least the read side of that entry, and the tracker's own mutex
// orders concurrent readers' updates.
func (s *Store) readahead(l *objLock, o *layout.Onode, off, n uint64) {
	if s.cfg.ReadaheadBlocks == 0 {
		return
	}
	l.seqMu.Lock()
	st := &l.seq
	if off == st.nextOff && off != 0 {
		st.streak++
	} else if off != 0 {
		st.streak = 0
	}
	st.nextOff = off + n
	fire := off == 0 || st.streak > 0
	l.seqMu.Unlock()
	if !fire {
		return
	}
	bs := uint64(s.lay.BlockSize())
	startFB := int64((off + n + bs - 1) / bs)
	var blocks []int64
	for i := 0; i < s.cfg.ReadaheadBlocks; i++ {
		fb := startFB + int64(i)
		if uint64(fb)*bs >= o.Size {
			break
		}
		phys, err := s.lay.BMap(o, fb)
		if err != nil || phys == 0 {
			continue
		}
		blocks = append(blocks, phys)
	}
	s.cache.Prefetch(blocks)
}

// Write stores data at off, extending the object as needed and charging
// the partition quota. Writes are write-behind unless the store was
// configured write-through. Writers of distinct objects proceed in
// parallel; quota admission reserves worst-case blocks up front so
// concurrent writers cannot jointly overshoot a partition quota.
func (s *Store) Write(part uint16, obj uint64, off uint64, data []byte) error {
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	err := s.writeLocked(part, obj, off, data)
	s.locks.release(k, l, true, notFound(err))
	return err
}

func (s *Store) writeLocked(part uint16, obj uint64, off uint64, data []byte) error {
	idx, o, err := s.lookup(part, obj)
	if err != nil {
		return err
	}
	end := off + uint64(len(data))
	if end < off || end > s.lay.MaxObjectSize() {
		return ErrBadRange
	}
	bs := uint64(s.lay.BlockSize())
	chargeBefore := s.chargeOf(&o)

	// Quota admission: estimate the worst-case new blocks (holes in the
	// written range plus up to three indirect blocks), net of the
	// object's capacity reservation, and reserve them against the
	// partition before writing. The reservation is settled against the
	// actual footprint afterwards.
	var reserved int64
	s.lockParts()
	p := s.parts[part]
	quotaed := p != nil && p.QuotaBlocks != 0
	s.pmu.Unlock()
	if quotaed {
		var holes int64 = 3 // worst-case new indirect blocks
		for fb := off / bs; fb*bs < end; fb++ {
			phys, err := s.lay.BMap(&o, int64(fb))
			if err != nil {
				return err
			}
			if phys == 0 {
				holes++
			}
		}
		estChargeAfter := s.footprint(&o) + holes
		if res := int64((o.Prealloc + bs - 1) / bs); res > estChargeAfter {
			estChargeAfter = res
		}
		if need := estChargeAfter - chargeBefore; need > 0 {
			s.lockParts()
			if p := s.parts[part]; p != nil && p.QuotaBlocks != 0 {
				if p.UsedBlocks+need > p.QuotaBlocks {
					s.pmu.Unlock()
					return ErrQuota
				}
				p.UsedBlocks += need
				reserved = need
			}
			s.pmu.Unlock()
		}
	}

	werr := s.writeRange(&o, off, data)
	if werr == nil {
		if end > o.Size {
			o.Size = end
		}
		o.ModSec = s.cfg.Clock().Unix()
	}
	// Settle the reservation against what the object actually grew by —
	// also on error, since partially written blocks stay allocated.
	delta := s.chargeOf(&o) - chargeBefore
	s.lockParts()
	if p := s.parts[part]; p != nil {
		p.UsedBlocks += delta - reserved
	}
	s.pmu.Unlock()
	// Persist the onode even after a partial failure so blocks mapped
	// before the error are not orphaned.
	if perr := s.lay.WriteOnode(idx, &o); werr == nil {
		werr = perr
	}
	return werr
}

// writeRange maps and writes the block range of one write. Caller holds
// the object's exclusive lock and persists the onode.
func (s *Store) writeRange(o *layout.Onode, off uint64, data []byte) error {
	bs := uint64(s.lay.BlockSize())
	// Clustering: when this object has no blocks yet and is linked to
	// another object, allocate near it.
	clusterHint := int64(0)
	if o.Cluster != 0 {
		clusterHint = s.clusterHint(o)
	}
	buf := make([]byte, bs)
	for done := 0; done < len(data); {
		cur := off + uint64(done)
		fb := int64(cur / bs)
		within := cur % bs
		chunk := int(bs - within)
		if chunk > len(data)-done {
			chunk = len(data) - done
		}
		hint := clusterHint
		if fb > 0 {
			if prev, err := s.lay.BMap(o, fb-1); err == nil && prev != 0 {
				hint = prev + 1
			}
		}
		prevPhys, err := s.lay.BMap(o, fb)
		if err != nil {
			return err
		}
		phys, err := s.lay.BMapAlloc(o, fb, hint)
		if err != nil {
			return err
		}
		if within == 0 && chunk == int(bs) {
			copy(buf, data[done:done+chunk])
		} else {
			// Partial block: read-modify-write. A block that was a hole
			// before this write contains whatever a previous owner left
			// there, so zero-fill it instead of reading.
			if prevPhys == 0 {
				for i := range buf {
					buf[i] = 0
				}
			} else if err := s.cache.ReadBlock(phys, buf); err != nil {
				return err
			}
			copy(buf[within:], data[done:done+chunk])
		}
		if err := s.cache.WriteBlock(phys, buf); err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

// VersionObject creates a copy-on-write version (snapshot) of an object
// and returns the new object's ID (the NASD interface's "construct a
// copy-on-write object version" request). The snapshot shares all data
// blocks with the original until either side writes. The source is held
// exclusively while its block references are cloned.
func (s *Store) VersionObject(part uint16, obj uint64) (uint64, error) {
	k := objKey{part, obj}
	l := s.locks.acquire(k, true)
	id, err := s.versionLocked(part, obj)
	s.locks.release(k, l, true, notFound(err))
	return id, err
}

func (s *Store) versionLocked(part uint16, obj uint64) (uint64, error) {
	_, o, err := s.lookup(part, obj)
	if err != nil {
		return 0, err
	}
	fp := s.chargeOf(&o)
	// Reserve the clone's charge and count it up front (quota admission
	// must be atomic with the usage update).
	s.lockParts()
	p := s.parts[part]
	if p != nil {
		if p.QuotaBlocks != 0 && p.UsedBlocks+fp > p.QuotaBlocks {
			s.pmu.Unlock()
			return 0, ErrQuota
		}
		p.UsedBlocks += fp
		p.ObjectCount++
	}
	s.pmu.Unlock()
	rollback := func() {
		s.lockParts()
		if p := s.parts[part]; p != nil {
			p.UsedBlocks -= fp
			p.ObjectCount--
		}
		s.pmu.Unlock()
	}
	idx, err := s.lay.AllocOnode()
	if err != nil {
		rollback()
		return 0, err
	}
	if err := s.lay.CloneOnodeBlocks(&o); err != nil {
		rollback()
		return 0, err
	}
	clone := o
	clone.ObjectID = s.lay.NextObjectID()
	clone.Version = 1
	clone.CreateSec = s.cfg.Clock().Unix()
	if err := s.lay.WriteOnode(idx, &clone); err != nil {
		rollback()
		return 0, err
	}
	s.lockParts()
	err = s.savePartitionsLocked()
	s.pmu.Unlock()
	if err != nil {
		return 0, err
	}
	return clone.ObjectID, nil
}

// Flush forces write-behind data and metadata — including the partition
// table with its usage accounting — to the device.
func (s *Store) Flush() error {
	s.lockParts()
	err := s.savePartitionsLocked()
	s.pmu.Unlock()
	if err != nil {
		return err
	}
	if err := s.cache.Flush(); err != nil {
		return err
	}
	return s.lay.Sync()
}
