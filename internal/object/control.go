package object

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nasd/internal/journal"
	"nasd/internal/layout"
)

// The partition table is persisted in the drive's well-known control
// object (ControlObject, partition 0), so a reopened drive recovers its
// partitions, quotas, and usage accounting without rescanning.
//
// Two encodings exist. The legacy (v1) table is a bare u32 count
// followed by 26-byte records and knows nothing of backends; it is
// still decoded so pre-backend volumes open cleanly, and every such
// partition is classic by construction. The current (v2) table starts
// with a sentinel count no v1 writer can produce, then carries the
// backend kind and the needle metadata object IDs per record.

const (
	partitionRecordSizeV1 = 2 + 8 + 8 + 8
	partitionRecordSizeV2 = 2 + 8 + 8 + 8 + 1 + 8 + 8

	// partTableSentinel marks a versioned table; a v1 count of ~4
	// billion partitions is impossible (the ID space is 16-bit).
	partTableSentinel = 0xFFFFFFFF
	partTableVersion  = 2
)

func encodePartitions(parts map[uint16]*Partition) []byte {
	b := make([]byte, 4+4+4+len(parts)*partitionRecordSizeV2)
	le := binary.LittleEndian
	le.PutUint32(b, partTableSentinel)
	le.PutUint32(b[4:], partTableVersion)
	le.PutUint32(b[8:], uint32(len(parts)))
	off := 12
	for _, p := range parts {
		le.PutUint16(b[off:], p.ID)
		le.PutUint64(b[off+2:], uint64(p.QuotaBlocks))
		le.PutUint64(b[off+10:], uint64(p.UsedBlocks))
		le.PutUint64(b[off+18:], uint64(p.ObjectCount))
		b[off+26] = byte(p.Backend)
		le.PutUint64(b[off+27:], p.metaSegs)
		le.PutUint64(b[off+35:], p.metaIdx)
		off += partitionRecordSizeV2
	}
	return b
}

func decodePartitions(b []byte) (map[uint16]*Partition, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("object: control object too short (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	if le.Uint32(b) != partTableSentinel {
		return decodePartitionsV1(b)
	}
	if len(b) < 12 {
		return nil, fmt.Errorf("object: control object too short (%d bytes)", len(b))
	}
	if v := le.Uint32(b[4:]); v != partTableVersion {
		return nil, fmt.Errorf("object: unsupported partition table version %d", v)
	}
	n := int(le.Uint32(b[8:]))
	if len(b) < 12+n*partitionRecordSizeV2 {
		return nil, fmt.Errorf("object: control object truncated (%d partitions, %d bytes)", n, len(b))
	}
	parts := make(map[uint16]*Partition, n)
	off := 12
	for i := 0; i < n; i++ {
		p := &Partition{
			ID:          le.Uint16(b[off:]),
			QuotaBlocks: int64(le.Uint64(b[off+2:])),
			UsedBlocks:  int64(le.Uint64(b[off+10:])),
			ObjectCount: int64(le.Uint64(b[off+18:])),
			Backend:     BackendKind(b[off+26]),
			metaSegs:    le.Uint64(b[off+27:]),
			metaIdx:     le.Uint64(b[off+35:]),
		}
		parts[p.ID] = p
		off += partitionRecordSizeV2
	}
	return parts, nil
}

func decodePartitionsV1(b []byte) (map[uint16]*Partition, error) {
	le := binary.LittleEndian
	n := int(le.Uint32(b))
	if len(b) < 4+n*partitionRecordSizeV1 {
		return nil, fmt.Errorf("object: control object truncated (%d partitions, %d bytes)", n, len(b))
	}
	parts := make(map[uint16]*Partition, n)
	off := 4
	for i := 0; i < n; i++ {
		p := &Partition{
			ID:          le.Uint16(b[off:]),
			QuotaBlocks: int64(le.Uint64(b[off+2:])),
			UsedBlocks:  int64(le.Uint64(b[off+10:])),
			ObjectCount: int64(le.Uint64(b[off+18:])),
		}
		parts[p.ID] = p
		off += partitionRecordSizeV1
	}
	return parts, nil
}

// savePartitionsLocked persists the partition table to the control
// object. Caller holds pmu (which also covers the control object's
// onode and blocks — no user object maps onto them). On a journaled
// volume the encoded table is committed to the write-ahead journal
// first, so a crash that loses the buffered control-object write
// replays the table at the next mount; each new record supersedes the
// previous one, which is retired immediately.
func (s *Store) savePartitionsLocked() error {
	data := encodePartitions(s.parts)
	lay := s.classic.lay
	if lay.JournalEnabled() {
		lsn, err := lay.JournalAppend(journal.KindPartTable, data)
		switch {
		case errors.Is(err, journal.ErrFull):
			// The table cannot fit even after compaction. Proceed with
			// the buffered write alone — pre-journal durability: the
			// table is safe at the next Flush.
		case err != nil:
			return err
		default:
			if s.partsLSN != 0 {
				lay.JournalApplied(s.partsLSN)
			}
			s.partsLSN = lsn
		}
	}
	idx, ok := lay.FindOnode(ControlObject)
	var o layout.Onode
	if ok {
		var err error
		o, err = lay.ReadOnode(idx)
		if err != nil {
			return err
		}
	} else {
		var err error
		idx, err = lay.AllocOnode()
		if err != nil {
			return err
		}
		o = layout.Onode{ObjectID: ControlObject, Partition: 0, Version: 1}
	}
	if err := s.classic.writeRaw(&o, data); err != nil {
		return err
	}
	return lay.WriteOnode(idx, &o)
}

// loadPartitions reads the partition table from the control object.
func (s *Store) loadPartitions() error {
	s.lockParts()
	defer s.pmu.Unlock()
	data, err := s.classic.loadRaw(ControlObject)
	if err != nil {
		if errors.Is(err, ErrNoObject) {
			return fmt.Errorf("object: control object missing; not an object store")
		}
		return err
	}
	parts, err := decodePartitions(data)
	if err != nil {
		return err
	}
	s.parts = parts
	return nil
}

// metaIDs returns the partition-0 object IDs holding a needle
// partition's segment table and index snapshot.
func (s *Store) metaIDs(part uint16) (segs, idx uint64, err error) {
	s.lockParts()
	defer s.pmu.Unlock()
	p := s.parts[part]
	if p == nil {
		return 0, 0, ErrNoPartition
	}
	if p.Backend != BackendNeedle {
		return 0, 0, ErrBackendMismatch
	}
	return p.metaSegs, p.metaIdx, nil
}
