package object

import (
	"encoding/binary"
	"fmt"

	"nasd/internal/layout"
)

// The partition table is persisted in the drive's well-known control
// object (ControlObject, partition 0), so a reopened drive recovers its
// partitions, quotas, and usage accounting without rescanning.

const partitionRecordSize = 2 + 8 + 8 + 8

func encodePartitions(parts map[uint16]*Partition) []byte {
	b := make([]byte, 4+len(parts)*partitionRecordSize)
	le := binary.LittleEndian
	le.PutUint32(b, uint32(len(parts)))
	off := 4
	for _, p := range parts {
		le.PutUint16(b[off:], p.ID)
		le.PutUint64(b[off+2:], uint64(p.QuotaBlocks))
		le.PutUint64(b[off+10:], uint64(p.UsedBlocks))
		le.PutUint64(b[off+18:], uint64(p.ObjectCount))
		off += partitionRecordSize
	}
	return b
}

func decodePartitions(b []byte) (map[uint16]*Partition, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("object: control object too short (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	n := int(le.Uint32(b))
	if len(b) < 4+n*partitionRecordSize {
		return nil, fmt.Errorf("object: control object truncated (%d partitions, %d bytes)", n, len(b))
	}
	parts := make(map[uint16]*Partition, n)
	off := 4
	for i := 0; i < n; i++ {
		p := &Partition{
			ID:          le.Uint16(b[off:]),
			QuotaBlocks: int64(le.Uint64(b[off+2:])),
			UsedBlocks:  int64(le.Uint64(b[off+10:])),
			ObjectCount: int64(le.Uint64(b[off+18:])),
		}
		parts[p.ID] = p
		off += partitionRecordSize
	}
	return parts, nil
}

// savePartitionsLocked persists the partition table to the control
// object. Caller holds pmu (which also covers the control object's
// onode and blocks — no user object maps onto them).
func (s *Store) savePartitionsLocked() error {
	data := encodePartitions(s.parts)
	idx, ok := s.lay.FindOnode(ControlObject)
	var o layout.Onode
	if ok {
		var err error
		o, err = s.lay.ReadOnode(idx)
		if err != nil {
			return err
		}
	} else {
		var err error
		idx, err = s.lay.AllocOnode()
		if err != nil {
			return err
		}
		o = layout.Onode{ObjectID: ControlObject, Partition: 0, Version: 1}
	}
	if err := s.writeRawLocked(&o, data); err != nil {
		return err
	}
	return s.lay.WriteOnode(idx, &o)
}

// loadPartitions reads the partition table from the control object.
func (s *Store) loadPartitions() error {
	s.lockParts()
	defer s.pmu.Unlock()
	idx, ok := s.lay.FindOnode(ControlObject)
	if !ok {
		return fmt.Errorf("object: control object missing; not an object store")
	}
	o, err := s.lay.ReadOnode(idx)
	if err != nil {
		return err
	}
	data, err := s.readRawLocked(&o)
	if err != nil {
		return err
	}
	parts, err := decodePartitions(data)
	if err != nil {
		return err
	}
	s.parts = parts
	return nil
}

// writeRawLocked replaces an onode's data with data, bypassing
// partition/quota logic (used only for the control object).
func (s *Store) writeRawLocked(o *layout.Onode, data []byte) error {
	bs := int(s.lay.BlockSize())
	buf := make([]byte, bs)
	for done := 0; done < len(data); done += bs {
		fb := int64(done / bs)
		phys, err := s.lay.BMapAlloc(o, fb, 0)
		if err != nil {
			return err
		}
		n := copy(buf, data[done:])
		for i := n; i < bs; i++ {
			buf[i] = 0
		}
		if err := s.cache.WriteBlock(phys, buf); err != nil {
			return err
		}
	}
	o.Size = uint64(len(data))
	return nil
}

// readRawLocked reads an onode's full contents.
func (s *Store) readRawLocked(o *layout.Onode) ([]byte, error) {
	bs := int(s.lay.BlockSize())
	out := make([]byte, o.Size)
	buf := make([]byte, bs)
	for done := 0; done < len(out); done += bs {
		fb := int64(done / bs)
		phys, err := s.lay.BMap(o, fb)
		if err != nil {
			return nil, err
		}
		if phys == 0 {
			continue
		}
		if err := s.cache.ReadBlock(phys, buf); err != nil {
			return nil, err
		}
		copy(out[done:], buf)
	}
	return out, nil
}
