package fmrpc

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/filemgr"
	"nasd/internal/nasdnfs"
	"nasd/internal/rpc"
)

var clientSeq uint64 = 60_000

var testCtx = context.Background()

// newRemoteFM builds drives + a local FM, serves the FM over TCP, and
// returns a remote FM client plus fresh drive connections.
func newRemoteFM(t *testing.T, nDrives int) (*Client, []*client.Drive) {
	t.Helper()
	var targets []filemgr.DriveTarget
	var drives []*client.Drive
	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 16384)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		l := rpc.NewInProcListener("d")
		srv := drv.Serve(l)
		t.Cleanup(srv.Close)
		dial := func() *client.Drive {
			conn, err := l.Dial()
			if err != nil {
				t.Fatal(err)
			}
			clientSeq++
			c := client.New(conn, uint64(1+i), clientSeq)
			t.Cleanup(func() { c.Close() })
			return c
		}
		targets = append(targets, filemgr.DriveTarget{Client: dial(), DriveID: uint64(1 + i), Master: master})
		drives = append(drives, dial())
	}
	fm, err := filemgr.Format(testCtx, filemgr.Config{Drives: targets})
	if err != nil {
		t.Fatal(err)
	}
	// Serve the FM over real TCP.
	l, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmSrv := NewServer(fm).Serve(l)
	t.Cleanup(fmSrv.Close)
	conn, err := rpc.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	t.Cleanup(func() { cli.Close() })
	return cli, drives
}

var alice = filemgr.Identity{UID: 10, GIDs: []uint32{100}}
var bob = filemgr.Identity{UID: 20}

func TestRemoteLookupCapabilityWorksAtDrive(t *testing.T) {
	fm, drives := newRemoteFM(t, 2)
	h, cap, err := fm.Create(testCtx, alice, "/remote.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// The capability that crossed the FM channel authorizes direct
	// drive access.
	payload := bytes.Repeat([]byte("fmrpc"), 2000)
	if err := drives[h.Drive].Write(testCtx, &cap, h.Partition, h.Object, 0, payload); err != nil {
		t.Fatal(err)
	}
	h2, info, rcap, err := fm.Lookup(testCtx, alice, "/remote.txt", capability.Read)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h || info.Size != uint64(len(payload)) {
		t.Fatalf("lookup = %+v, %+v", h2, info)
	}
	got, err := drives[h2.Drive].Read(testCtx, &rcap, h2.Partition, h2.Object, 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("drive-direct read via remote capability: %v", err)
	}
}

func TestTypedErrorsCrossTheWire(t *testing.T) {
	fm, _ := newRemoteFM(t, 1)
	if _, err := fm.Stat(testCtx, alice, "/missing"); !errors.Is(err, filemgr.ErrNotFound) {
		t.Fatalf("not-found: %v", err)
	}
	if _, _, err := fm.Create(testCtx, alice, "/x", 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fm.Create(testCtx, alice, "/x", 0o600); !errors.Is(err, filemgr.ErrExists) {
		t.Fatalf("exists: %v", err)
	}
	if _, _, _, err := fm.Lookup(testCtx, bob, "/x", capability.Read); !errors.Is(err, filemgr.ErrPerm) {
		t.Fatalf("perm: %v", err)
	}
	if _, err := fm.Stat(testCtx, alice, "nope"); !errors.Is(err, filemgr.ErrBadPath) {
		t.Fatalf("bad-path: %v", err)
	}
}

func TestNamespaceOpsOverWire(t *testing.T) {
	fm, _ := newRemoteFM(t, 2)
	if _, err := fm.Mkdir(testCtx, alice, "/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fm.Create(testCtx, alice, "/dir/a", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fm.Rename(testCtx, alice, "/dir/a", "/dir/b"); err != nil {
		t.Fatal(err)
	}
	ents, err := fm.ReadDir(testCtx, alice, "/dir")
	if err != nil || len(ents) != 1 || ents[0].Name != "b" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	if err := fm.Chmod(testCtx, alice, "/dir/b", 0o600); err != nil {
		t.Fatal(err)
	}
	info, err := fm.Stat(testCtx, alice, "/dir/b")
	if err != nil || info.Mode&0o777 != 0o600 {
		t.Fatalf("chmod lost: %+v, %v", info, err)
	}
	if err := fm.Remove(testCtx, alice, "/dir/b"); err != nil {
		t.Fatal(err)
	}
	if err := fm.Remove(testCtx, alice, "/dir"); err != nil {
		t.Fatal(err)
	}
}

func TestRevokeOverWire(t *testing.T) {
	fm, drives := newRemoteFM(t, 1)
	h, cap, err := fm.Create(testCtx, alice, "/seal", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := drives[h.Drive].Write(testCtx, &cap, h.Partition, h.Object, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fm.Revoke(testCtx, alice, "/seal"); err != nil {
		t.Fatal(err)
	}
	if _, err := drives[h.Drive].Read(testCtx, &cap, h.Partition, h.Object, 0, 1); !errors.Is(err, client.ErrAuth) {
		t.Fatalf("capability survived remote revoke: %v", err)
	}
}

// TestNFSPortOverRemoteFM runs the NFS port with the file manager
// across the network — the fully distributed deployment.
func TestNFSPortOverRemoteFM(t *testing.T) {
	fm, drives := newRemoteFM(t, 2)
	cli := nasdnfs.New(fm, drives, alice)
	if err := cli.Mkdir(testCtx, "/home", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cli.Create(testCtx, "/home/doc", 0o644); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 60_000)
	if err := cli.Write(testCtx, "/home/doc", 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Read(testCtx, "/home/doc", 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("remote-FM NFS round trip: %v", err)
	}
	a, err := cli.GetAttr(testCtx, "/home/doc")
	if err != nil || a.Size != uint64(len(payload)) {
		t.Fatalf("getattr: %+v, %v", a, err)
	}
}
