package fmrpc

import (
	"context"
	"time"

	"nasd/internal/capability"
	"nasd/internal/filemgr"
	"nasd/internal/rpc"
)

func unixTime(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

// Server exposes a file manager over the RPC substrate.
type Server struct {
	fm *filemgr.FM
}

// NewServer wraps fm.
func NewServer(fm *filemgr.FM) *Server { return &Server{fm: fm} }

// Handle implements rpc.Handler.
func (s *Server) Handle(req *rpc.Request) *rpc.Reply {
	// The RPC plane carries no deadline metadata; server-side work is
	// bounded by the file manager itself.
	ctx := context.Background()
	d := rpc.NewDecoder(req.Args)
	id := decodeIdentity(d)
	fail := func(err error) *rpc.Reply {
		st, kind := statusFor(err)
		return rpc.Errorf(req.MsgID, st, "%s: %v", kind, err)
	}
	bad := func() *rpc.Reply {
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "bad-args: truncated request")
	}
	switch req.Proc {
	case opLookup:
		path := d.String()
		rights := capability.Rights(d.U32())
		if d.Err() != nil {
			return bad()
		}
		h, info, cap, err := s.fm.Lookup(ctx, id, path, rights)
		if err != nil {
			return fail(err)
		}
		var e rpc.Encoder
		encodeHandle(&e, h)
		encodeInfo(&e, info)
		encodeCapability(&e, cap)
		return &rpc.Reply{Status: rpc.StatusOK, Args: e.Bytes()}
	case opStat:
		path := d.String()
		if d.Err() != nil {
			return bad()
		}
		info, err := s.fm.Stat(ctx, id, path)
		if err != nil {
			return fail(err)
		}
		var e rpc.Encoder
		encodeInfo(&e, info)
		return &rpc.Reply{Status: rpc.StatusOK, Args: e.Bytes()}
	case opCreate:
		path := d.String()
		mode := d.U32()
		if d.Err() != nil {
			return bad()
		}
		h, cap, err := s.fm.Create(ctx, id, path, mode)
		if err != nil {
			return fail(err)
		}
		var e rpc.Encoder
		encodeHandle(&e, h)
		encodeCapability(&e, cap)
		return &rpc.Reply{Status: rpc.StatusOK, Args: e.Bytes()}
	case opMkdir:
		path := d.String()
		mode := d.U32()
		if d.Err() != nil {
			return bad()
		}
		h, err := s.fm.Mkdir(ctx, id, path, mode)
		if err != nil {
			return fail(err)
		}
		var e rpc.Encoder
		encodeHandle(&e, h)
		return &rpc.Reply{Status: rpc.StatusOK, Args: e.Bytes()}
	case opRemove:
		path := d.String()
		if d.Err() != nil {
			return bad()
		}
		if err := s.fm.Remove(ctx, id, path); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opRename:
		oldPath := d.String()
		newPath := d.String()
		if d.Err() != nil {
			return bad()
		}
		if err := s.fm.Rename(ctx, id, oldPath, newPath); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opReadDir:
		path := d.String()
		if d.Err() != nil {
			return bad()
		}
		ents, err := s.fm.ReadDir(ctx, id, path)
		if err != nil {
			return fail(err)
		}
		var e rpc.Encoder
		e.U32(uint32(len(ents)))
		for _, ent := range ents {
			e.String(ent.Name)
			encodeHandle(&e, ent.Handle)
		}
		return &rpc.Reply{Status: rpc.StatusOK, Args: e.Bytes()}
	case opChmod:
		path := d.String()
		mode := d.U32()
		if d.Err() != nil {
			return bad()
		}
		if err := s.fm.Chmod(ctx, id, path, mode); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	case opRevoke:
		path := d.String()
		if d.Err() != nil {
			return bad()
		}
		if err := s.fm.Revoke(ctx, id, path); err != nil {
			return fail(err)
		}
		return &rpc.Reply{Status: rpc.StatusOK}
	default:
		return rpc.Errorf(req.MsgID, rpc.StatusBadRequest, "bad-args: unknown proc %d", req.Proc)
	}
}

var _ rpc.Handler = (*Server)(nil)

// Serve wraps the server in an RPC server on l and starts it.
func (s *Server) Serve(l rpc.Listener, opts ...rpc.ServerOption) *rpc.Server {
	srv := rpc.NewServer(s, opts...)
	go srv.Serve(l)
	return srv
}
