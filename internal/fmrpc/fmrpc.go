// Package fmrpc puts the file manager behind the network: the "secure
// and private protocol external to NASD" by which clients obtain
// capabilities (Section 4.1). Unlike the NASD drive interface — whose
// security model assumes untrusted clients and networks — this channel
// carries capability *private portions*, so a deployment must protect
// it (the paper points at Kerberos; we note the requirement and leave
// transport security to the deployment, e.g. a TLS tunnel or trusted
// network segment).
//
// Identity is asserted by the client on each request, as NFS's
// AUTH_UNIX did; the server may wrap a stricter authenticator around
// the transport.
package fmrpc

import (
	"errors"
	"fmt"

	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/filemgr"
	"nasd/internal/rpc"
)

// Procedure numbers.
const (
	opLookup uint16 = iota + 1
	opStat
	opCreate
	opMkdir
	opRemove
	opRename
	opReadDir
	opChmod
	opRevoke
)

// --- wire helpers -----------------------------------------------------------

func encodeIdentity(e *rpc.Encoder, id filemgr.Identity) {
	e.U32(id.UID)
	e.U32(uint32(len(id.GIDs)))
	for _, g := range id.GIDs {
		e.U32(g)
	}
}

func decodeIdentity(d *rpc.Decoder) filemgr.Identity {
	id := filemgr.Identity{UID: d.U32()}
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		id.GIDs = append(id.GIDs, d.U32())
	}
	return id
}

func encodeHandle(e *rpc.Encoder, h filemgr.Handle) {
	e.U32(uint32(h.Drive))
	e.U64(h.DriveID)
	e.U16(h.Partition)
	e.U64(h.Object)
	if h.IsDir {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

func decodeHandle(d *rpc.Decoder) filemgr.Handle {
	return filemgr.Handle{
		Drive:     int(d.U32()),
		DriveID:   d.U64(),
		Partition: d.U16(),
		Object:    d.U64(),
		IsDir:     d.U8() == 1,
	}
}

func encodeInfo(e *rpc.Encoder, info filemgr.FileInfo) {
	encodeHandle(e, info.Handle)
	e.U64(info.Size)
	e.U32(info.Mode)
	e.U32(info.UID)
	e.U32(info.GID)
	e.I64(info.ModTime.Unix())
}

func decodeInfo(d *rpc.Decoder) filemgr.FileInfo {
	info := filemgr.FileInfo{Handle: decodeHandle(d)}
	info.Size = d.U64()
	info.Mode = d.U32()
	info.UID = d.U32()
	info.GID = d.U32()
	info.ModTime = unixTime(d.I64())
	return info
}

// encodeCapability serializes public portion + private portion. The
// private portion crossing this channel is exactly why the file-manager
// protocol must be private.
func encodeCapability(e *rpc.Encoder, c capability.Capability) {
	e.Bytes32(c.Public.Encode())
	e.Raw(c.Private[:])
}

func decodeCapability(d *rpc.Decoder) (capability.Capability, error) {
	var c capability.Capability
	pubRaw := d.Bytes32()
	priv := d.Raw(crypt.KeySize)
	if err := d.Err(); err != nil {
		return c, err
	}
	pub, err := capability.DecodePublic(pubRaw)
	if err != nil {
		return c, err
	}
	c.Public = pub
	copy(c.Private[:], priv)
	return c, nil
}

// statusFor maps file manager errors onto RPC statuses so clients can
// recover typed errors.
func statusFor(err error) (rpc.Status, string) {
	switch {
	case errors.Is(err, filemgr.ErrNotFound):
		return rpc.StatusNoObject, "not-found"
	case errors.Is(err, filemgr.ErrPerm):
		return rpc.StatusAuthFailure, "perm"
	case errors.Is(err, filemgr.ErrExists):
		return rpc.StatusBadRequest, "exists"
	case errors.Is(err, filemgr.ErrNotDir):
		return rpc.StatusBadRequest, "not-dir"
	case errors.Is(err, filemgr.ErrIsDir):
		return rpc.StatusBadRequest, "is-dir"
	case errors.Is(err, filemgr.ErrNotEmpty):
		return rpc.StatusBadRequest, "not-empty"
	case errors.Is(err, filemgr.ErrBadPath):
		return rpc.StatusBadRequest, "bad-path"
	default:
		return rpc.StatusError, "error"
	}
}

// errorFor reverses statusFor on the client side.
func errorFor(msgKind string, detail string) error {
	switch msgKind {
	case "not-found":
		return fmt.Errorf("%w (%s)", filemgr.ErrNotFound, detail)
	case "perm":
		return fmt.Errorf("%w (%s)", filemgr.ErrPerm, detail)
	case "exists":
		return fmt.Errorf("%w (%s)", filemgr.ErrExists, detail)
	case "not-dir":
		return fmt.Errorf("%w (%s)", filemgr.ErrNotDir, detail)
	case "is-dir":
		return fmt.Errorf("%w (%s)", filemgr.ErrIsDir, detail)
	case "not-empty":
		return fmt.Errorf("%w (%s)", filemgr.ErrNotEmpty, detail)
	case "bad-path":
		return fmt.Errorf("%w (%s)", filemgr.ErrBadPath, detail)
	default:
		return fmt.Errorf("fmrpc: %s", detail)
	}
}
