package fmrpc

import (
	"context"
	"strings"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/filemgr"
	"nasd/internal/rpc"
)

// Client is a remote file manager handle. It implements the same
// method set as *filemgr.FM (and therefore nasdnfs.FileManager), so
// filesystem clients work identically with a local or remote file
// manager.
type Client struct {
	cli *rpc.Client
}

// NewClient wraps a connection to a file manager server.
func NewClient(conn rpc.Conn) *Client { return &Client{cli: rpc.NewClient(conn)} }

// Close releases the connection.
func (c *Client) Close() error { return c.cli.Close() }

func (c *Client) call(ctx context.Context, proc uint16, args []byte) (*rpc.Reply, error) {
	rep, err := c.cli.Call(ctx, &rpc.Request{Proc: proc, Args: args})
	if err != nil {
		return nil, err
	}
	if rep.Status != rpc.StatusOK {
		// Wrap in the unified remote-error shape: errors.Is sees both the
		// mapped filemgr sentinel and the client-level status sentinels.
		kind, detail, _ := strings.Cut(rep.Msg, ": ")
		return nil, &client.RemoteError{Status: rep.Status, Msg: rep.Msg, Err: errorFor(kind, detail)}
	}
	return rep, nil
}

// Lookup resolves a path and returns the piggybacked capability.
func (c *Client) Lookup(ctx context.Context, id filemgr.Identity, path string, want capability.Rights) (filemgr.Handle, filemgr.FileInfo, capability.Capability, error) {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(path)
	e.U32(uint32(want))
	rep, err := c.call(ctx, opLookup, e.Bytes())
	if err != nil {
		return filemgr.Handle{}, filemgr.FileInfo{}, capability.Capability{}, err
	}
	d := rpc.NewDecoder(rep.Args)
	h := decodeHandle(d)
	info := decodeInfo(d)
	cap, cerr := decodeCapability(d)
	if cerr != nil {
		return filemgr.Handle{}, filemgr.FileInfo{}, capability.Capability{}, cerr
	}
	return h, info, cap, d.Err()
}

// Stat returns file metadata.
func (c *Client) Stat(ctx context.Context, id filemgr.Identity, path string) (filemgr.FileInfo, error) {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(path)
	rep, err := c.call(ctx, opStat, e.Bytes())
	if err != nil {
		return filemgr.FileInfo{}, err
	}
	d := rpc.NewDecoder(rep.Args)
	info := decodeInfo(d)
	return info, d.Err()
}

// Create makes a file and returns its handle and a read/write capability.
func (c *Client) Create(ctx context.Context, id filemgr.Identity, path string, mode uint32) (filemgr.Handle, capability.Capability, error) {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(path)
	e.U32(mode)
	rep, err := c.call(ctx, opCreate, e.Bytes())
	if err != nil {
		return filemgr.Handle{}, capability.Capability{}, err
	}
	d := rpc.NewDecoder(rep.Args)
	h := decodeHandle(d)
	cap, cerr := decodeCapability(d)
	if cerr != nil {
		return filemgr.Handle{}, capability.Capability{}, cerr
	}
	return h, cap, d.Err()
}

// Mkdir makes a directory.
func (c *Client) Mkdir(ctx context.Context, id filemgr.Identity, path string, mode uint32) (filemgr.Handle, error) {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(path)
	e.U32(mode)
	rep, err := c.call(ctx, opMkdir, e.Bytes())
	if err != nil {
		return filemgr.Handle{}, err
	}
	d := rpc.NewDecoder(rep.Args)
	h := decodeHandle(d)
	return h, d.Err()
}

// Remove unlinks a file or empty directory.
func (c *Client) Remove(ctx context.Context, id filemgr.Identity, path string) error {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(path)
	_, err := c.call(ctx, opRemove, e.Bytes())
	return err
}

// Rename moves an entry.
func (c *Client) Rename(ctx context.Context, id filemgr.Identity, oldPath, newPath string) error {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(oldPath)
	e.String(newPath)
	_, err := c.call(ctx, opRename, e.Bytes())
	return err
}

// ReadDir lists a directory.
func (c *Client) ReadDir(ctx context.Context, id filemgr.Identity, path string) ([]filemgr.DirEntry, error) {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(path)
	rep, err := c.call(ctx, opReadDir, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := rpc.NewDecoder(rep.Args)
	n := int(d.U32())
	out := make([]filemgr.DirEntry, 0, n)
	for i := 0; i < n; i++ {
		name := d.String()
		h := decodeHandle(d)
		if d.Err() != nil {
			return nil, d.Err()
		}
		out = append(out, filemgr.DirEntry{Name: name, Handle: h})
	}
	return out, nil
}

// Chmod changes mode bits.
func (c *Client) Chmod(ctx context.Context, id filemgr.Identity, path string, mode uint32) error {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(path)
	e.U32(mode)
	_, err := c.call(ctx, opChmod, e.Bytes())
	return err
}

// Revoke invalidates all outstanding capabilities for a file.
func (c *Client) Revoke(ctx context.Context, id filemgr.Identity, path string) error {
	var e rpc.Encoder
	encodeIdentity(&e, id)
	e.String(path)
	_, err := c.call(ctx, opRevoke, e.Bytes())
	return err
}
