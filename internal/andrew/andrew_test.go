package andrew

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// memFS is a trivial in-memory FS for exercising the workload driver.
type memFS struct {
	mu    sync.Mutex
	dirs  map[string]bool
	files map[string][]byte
}

func newMemFS() *memFS {
	return &memFS{dirs: map[string]bool{"/": true, "/bench": true}, files: map[string][]byte{}}
}

func parent(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

func (m *memFS) Mkdir(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[parent(path)] {
		return errors.New("no parent")
	}
	if m.dirs[path] {
		return errors.New("exists")
	}
	m.dirs[path] = true
	return nil
}

func (m *memFS) Create(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[parent(path)] {
		return errors.New("no parent")
	}
	m.files[path] = nil
	return nil
}

func (m *memFS) Write(path string, off uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return errors.New("no file")
	}
	end := int(off) + len(data)
	if end > len(f) {
		f = append(f, make([]byte, end-len(f))...)
	}
	copy(f[off:], data)
	m.files[path] = f
	return nil
}

func (m *memFS) Read(path string, off uint64, n int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, errors.New("no file")
	}
	if int(off) >= len(f) {
		return nil, nil
	}
	end := int(off) + n
	if end > len(f) {
		end = len(f)
	}
	return f[off:end], nil
}

func (m *memFS) Stat(path string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return 0, errors.New("no file")
	}
	return uint64(len(f)), nil
}

func (m *memFS) ReadDir(path string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[path] {
		return nil, errors.New("no dir")
	}
	var out []string
	prefix := path + "/"
	for p := range m.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			out = append(out, p[len(prefix):])
		}
	}
	sort.Strings(out)
	return out, nil
}

func TestPhasesCountsAndContent(t *testing.T) {
	fs := newMemFS()
	cfg := Config{Dirs: 3, FilesPerDir: 4, FileSize: 1024, Seed: 1}
	phases, err := Phases(fs, "/bench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 5 {
		t.Fatalf("phases = %d", len(phases))
	}
	// MakeDir: /bench/src + 3 dirs.
	if phases[0].Mkdirs != 4 {
		t.Fatalf("mkdirs = %d", phases[0].Mkdirs)
	}
	// Copy: 12 creates, 12 writes of 1024 bytes.
	if phases[1].Creates != 12 || phases[1].Writes != 12 || phases[1].BytesW != 12*1024 {
		t.Fatalf("copy = %+v", phases[1])
	}
	// ScanDir: 3 readdirs, 12 stats.
	if phases[2].Dirs != 3 || phases[2].Stats != 12 {
		t.Fatalf("scan = %+v", phases[2])
	}
	// ReadAll: 12 reads of full size.
	if phases[3].Reads != 12 || phases[3].BytesR != 12*1024 {
		t.Fatalf("readall = %+v", phases[3])
	}
	// Make: 12 reads + 12 creates + 12 writes of 60%.
	if phases[4].Reads != 12 || phases[4].Creates != 12 || phases[4].BytesW != 12*614 {
		t.Fatalf("make = %+v", phases[4])
	}
	// Objects exist.
	if _, err := fs.Stat("/bench/dir00/f00.o"); err != nil {
		t.Fatal("object file missing")
	}
}

func TestPhasesDetectsCorruption(t *testing.T) {
	fs := newMemFS()
	cfg := Config{Dirs: 1, FilesPerDir: 1, FileSize: 100, Seed: 1}
	// Break Stat by pre-truncating after copy: wrap the FS.
	if _, err := Phases(brokenStat{fs}, "/bench", cfg); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

type brokenStat struct{ *memFS }

func (b brokenStat) Stat(path string) (uint64, error) { return 1, nil }

func TestCountsAddTotal(t *testing.T) {
	var c Counts
	c.Add(Counts{Mkdirs: 1, Creates: 2, Writes: 3, Reads: 4, Stats: 5, Dirs: 6, BytesR: 7, BytesW: 8})
	c.Add(Counts{Mkdirs: 1})
	if c.Total() != 22 || c.BytesR != 7 || c.Mkdirs != 2 {
		t.Fatalf("counts = %+v total %d", c, c.Total())
	}
}

func TestPhaseNames(t *testing.T) {
	names := PhaseNames()
	if len(names) != 5 || names[0] != "MakeDir" || names[4] != "Make" {
		t.Fatalf("names = %v", names)
	}
}

func TestDefaultsFilled(t *testing.T) {
	fs := newMemFS()
	if _, err := Phases(fs, "/bench", Config{}); err != nil {
		t.Fatal(err)
	}
	// Default tree: 5 dirs x 10 files.
	names, err := fs.ReadDir(fmt.Sprintf("/bench/dir%02d", 4))
	if err != nil || len(names) != 20 { // 10 .c + 10 .o
		t.Fatalf("dir listing = %v, %v", names, err)
	}
}
