// Package andrew implements an Andrew-benchmark-style workload
// [Howard88], the comparison the paper uses for its NFS port: "we found
// that NASD-NFS and NFS had benchmark times within 5% of each other for
// configurations with 1 drive/1 client and 8 drives/8 clients".
//
// The five classic phases: MakeDir (create a directory tree), Copy
// (copy a source tree into it), ScanDir (stat every file), ReadAll
// (read every file), and Make (a compile-like phase that reads sources
// and writes objects).
package andrew

import (
	"fmt"
	"math/rand"
)

// FS is the filesystem interface the workload drives; both the
// NASD-NFS client and the traditional NFS client satisfy it via thin
// adapters.
type FS interface {
	Mkdir(path string) error
	Create(path string) error
	Write(path string, off uint64, data []byte) error
	Read(path string, off uint64, n int) ([]byte, error)
	Stat(path string) (size uint64, err error)
	ReadDir(path string) ([]string, error)
}

// Config shapes the synthetic source tree.
type Config struct {
	Dirs        int // directories in the tree
	FilesPerDir int
	FileSize    int // bytes per file (Andrew sources are small)
	Seed        int64
}

func (c *Config) fill() {
	if c.Dirs <= 0 {
		c.Dirs = 5
	}
	if c.FilesPerDir <= 0 {
		c.FilesPerDir = 10
	}
	if c.FileSize <= 0 {
		c.FileSize = 16 << 10
	}
}

// Counts tallies the operations and bytes each phase performed, the
// input to performance models.
type Counts struct {
	Mkdirs  int
	Creates int
	Writes  int
	Reads   int
	Stats   int
	Dirs    int
	BytesR  int64
	BytesW  int64
}

// Total returns the total operation count.
func (c Counts) Total() int {
	return c.Mkdirs + c.Creates + c.Writes + c.Reads + c.Stats + c.Dirs
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Mkdirs += other.Mkdirs
	c.Creates += other.Creates
	c.Writes += other.Writes
	c.Reads += other.Reads
	c.Stats += other.Stats
	c.Dirs += other.Dirs
	c.BytesR += other.BytesR
	c.BytesW += other.BytesW
}

// Phases runs the five phases under root (which must exist) and
// returns per-phase operation counts in order: MakeDir, Copy, ScanDir,
// ReadAll, Make.
func Phases(fs FS, root string, cfg Config) ([]Counts, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := make([]byte, cfg.FileSize)
	rng.Read(data)
	var phases []Counts

	dir := func(i int) string { return fmt.Sprintf("%s/dir%02d", root, i) }
	file := func(i, j int) string { return fmt.Sprintf("%s/f%02d.c", dir(i), j) }

	// Phase 1: MakeDir.
	var p1 Counts
	if err := fs.Mkdir(root + "/src"); err != nil {
		return nil, fmt.Errorf("andrew mkdir: %w", err)
	}
	p1.Mkdirs++
	for i := 0; i < cfg.Dirs; i++ {
		if err := fs.Mkdir(dir(i)); err != nil {
			return nil, fmt.Errorf("andrew mkdir: %w", err)
		}
		p1.Mkdirs++
	}
	phases = append(phases, p1)

	// Phase 2: Copy (create + write every file).
	var p2 Counts
	for i := 0; i < cfg.Dirs; i++ {
		for j := 0; j < cfg.FilesPerDir; j++ {
			if err := fs.Create(file(i, j)); err != nil {
				return nil, fmt.Errorf("andrew create: %w", err)
			}
			p2.Creates++
			if err := fs.Write(file(i, j), 0, data); err != nil {
				return nil, fmt.Errorf("andrew write: %w", err)
			}
			p2.Writes++
			p2.BytesW += int64(len(data))
		}
	}
	phases = append(phases, p2)

	// Phase 3: ScanDir (readdir + stat everything).
	var p3 Counts
	for i := 0; i < cfg.Dirs; i++ {
		names, err := fs.ReadDir(dir(i))
		if err != nil {
			return nil, fmt.Errorf("andrew readdir: %w", err)
		}
		p3.Dirs++
		for range names {
		}
		for j := 0; j < cfg.FilesPerDir; j++ {
			size, err := fs.Stat(file(i, j))
			if err != nil {
				return nil, fmt.Errorf("andrew stat: %w", err)
			}
			if size != uint64(cfg.FileSize) {
				return nil, fmt.Errorf("andrew stat: %s size %d, want %d", file(i, j), size, cfg.FileSize)
			}
			p3.Stats++
		}
	}
	phases = append(phases, p3)

	// Phase 4: ReadAll.
	var p4 Counts
	for i := 0; i < cfg.Dirs; i++ {
		for j := 0; j < cfg.FilesPerDir; j++ {
			got, err := fs.Read(file(i, j), 0, cfg.FileSize)
			if err != nil {
				return nil, fmt.Errorf("andrew read: %w", err)
			}
			if len(got) != cfg.FileSize {
				return nil, fmt.Errorf("andrew read: %s returned %d bytes", file(i, j), len(got))
			}
			p4.Reads++
			p4.BytesR += int64(len(got))
		}
	}
	phases = append(phases, p4)

	// Phase 5: Make (read each source, write an object ~60% its size).
	var p5 Counts
	obj := data[:cfg.FileSize*6/10]
	for i := 0; i < cfg.Dirs; i++ {
		for j := 0; j < cfg.FilesPerDir; j++ {
			if _, err := fs.Read(file(i, j), 0, cfg.FileSize); err != nil {
				return nil, fmt.Errorf("andrew make read: %w", err)
			}
			p5.Reads++
			p5.BytesR += int64(cfg.FileSize)
			out := fmt.Sprintf("%s/f%02d.o", dir(i), j)
			if err := fs.Create(out); err != nil {
				return nil, fmt.Errorf("andrew make create: %w", err)
			}
			p5.Creates++
			if err := fs.Write(out, 0, obj); err != nil {
				return nil, fmt.Errorf("andrew make write: %w", err)
			}
			p5.Writes++
			p5.BytesW += int64(len(obj))
		}
	}
	phases = append(phases, p5)
	return phases, nil
}

// PhaseNames returns the canonical phase names.
func PhaseNames() []string {
	return []string{"MakeDir", "Copy", "ScanDir", "ReadAll", "Make"}
}
